package repro

// Benchmarks for the extension experiments (E10-E16): the claims the paper
// makes in prose (§1-§2 geo-blocking, §4 striping, §5 expansion, duty
// cycling, wormholing, Space VMs, §3.2 bufferbloat).

import (
	"fmt"
	"testing"
)

func BenchmarkGeoBlocking(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.GeoBlocking()
		if err != nil {
			b.Fatal(err)
		}
		printArtifact("geoblock", func() {
			fmt.Print("E10 geo-blocking (regenerated) spurious rates: ")
			for _, r := range rows[:4] {
				fmt.Printf("%s %.1f%%  ", r.Country, 100*r.StarlinkSpuriousRate)
			}
			fmt.Println()
		})
	}
}

func BenchmarkGroundExpansion(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.GroundExpansion()
		if err != nil {
			b.Fatal(err)
		}
		printArtifact("gs-expansion", func() {
			fmt.Print("E11 expansion (regenerated): ")
			for _, r := range rows[:3] {
				fmt.Printf("%s %.0f->%.0f ms  ", r.Country, r.BaselineMs, r.ExpandedMs)
			}
			fmt.Println()
		})
	}
}

func BenchmarkDutyCycleSweep(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.DutyCycleSweep()
		if err != nil {
			b.Fatal(err)
		}
		printArtifact("duty-sweep", func() {
			fmt.Print("E12 duty sweep (regenerated) medians: ")
			for _, r := range rows {
				fmt.Printf("%d%%:%.1f  ", r.FractionPct, r.MedianMs)
			}
			fmt.Println("ms")
		})
	}
}

func BenchmarkStripingAblation(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.StripingAblation()
		if err != nil {
			b.Fatal(err)
		}
		printArtifact("striping", func() {
			r := rows[0]
			fmt.Printf("E13 striping (regenerated): %s startup %.0f->%.0f ms, %d/%d from space\n",
				r.City, r.ColdStartupMs, r.WarmStartupMs, r.WarmFromSpace, r.Segments)
		})
	}
}

func BenchmarkWormholing(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.Wormholing()
		if err != nil {
			b.Fatal(err)
		}
		printArtifact("wormhole", func() {
			r := rows[1]
			fmt.Printf("E14 wormhole (regenerated): %s %.0f TB in %.0f min vs WAN %.1f h (wins=%v)\n",
				r.Route, r.ObjectTB, r.TransitMin, r.WANHours, r.WormholeWin)
		})
	}
}

func BenchmarkSpaceVMs(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.SpaceVMs()
		if err != nil {
			b.Fatal(err)
		}
		printArtifact("spacevms", func() {
			r := rows[0]
			fmt.Printf("E15 space VMs (regenerated): %s %d handovers, mean %.0f ms, availability %.4f\n",
				r.City, r.Handovers, r.MeanDowntimeMs, r.Availability)
		})
	}
}

func BenchmarkThermalFeasibility(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, maxDuty, err := s.ThermalFeasibility()
		if err != nil {
			b.Fatal(err)
		}
		printArtifact("thermal", func() {
			fmt.Printf("E17 thermal (regenerated): sustainable <= %.0f%%; peaks:", 100*maxDuty)
			for _, r := range rows {
				fmt.Printf(" %d%%:%.1fC", r.FractionPct, r.PeakC)
			}
			fmt.Println()
		})
	}
}

func BenchmarkCacheMissRates(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.CacheMissRates()
		if err != nil {
			b.Fatal(err)
		}
		printArtifact("hitrate", func() {
			fmt.Print("E18 hit rates (regenerated, terr/starlink): ")
			for _, r := range rows {
				if r.Country == "MZ" || r.Country == "KE" || r.Country == "DE" {
					fmt.Printf("%s %.0f%%/%.0f%%  ", r.Country, 100*r.TerrestrialHit, 100*r.StarlinkHit)
				}
			}
			fmt.Println()
		})
	}
}

func BenchmarkBufferbloat(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.Bufferbloat()
		if err != nil {
			b.Fatal(err)
		}
		printArtifact("bufferbloat", func() {
			fmt.Print("E16 bufferbloat (regenerated): ")
			for _, r := range rows {
				fmt.Printf("%s +%.0f ms (%.0f%% >200ms)  ", r.Network, r.MedianInflation, 100*r.Share200)
			}
			fmt.Println()
		})
	}
}
