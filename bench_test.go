// Package repro holds the repository-level benchmark harness: one benchmark
// per table and figure of the paper (each regenerates and prints its rows or
// series once, then times the computation), plus micro-benchmarks of the hot
// paths underneath them.
//
// Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"spacecdn/internal/cache"
	"spacecdn/internal/constellation"
	"spacecdn/internal/content"
	"spacecdn/internal/experiments"
	"spacecdn/internal/geo"
	"spacecdn/internal/groundseg"
	"spacecdn/internal/lsn"
	"spacecdn/internal/report"
	"spacecdn/internal/routing"
	"spacecdn/internal/spacecdn"
	"spacecdn/internal/stats"
	"spacecdn/internal/telemetry"
)

// The shared suite uses the fast configuration so that the full benchmark
// sweep completes in minutes; cmd/spacecdn (without -fast) regenerates the
// full-resolution artifacts.
var (
	suiteOnce sync.Once
	suite     *experiments.Suite
	suiteErr  error
)

func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = experiments.NewSuite(true, 42)
		if suiteErr == nil {
			// Generate the shared datasets outside any timer.
			if _, err := suite.AIM(); err != nil {
				suiteErr = err
				return
			}
			_, suiteErr = suite.Web()
		}
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

var printOnce sync.Map

// printArtifact renders an experiment's output exactly once per process so
// that `go test -bench=.` shows the regenerated rows/series.
func printArtifact(name string, render func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Fprintf(os.Stdout, "\n")
		render()
	}
}

func BenchmarkTable1(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		printArtifact("table1", func() {
			t := report.NewTable("Table 1 (regenerated)",
				"Country", "Terr km", "Terr minRTT", "Star km", "Star minRTT")
			for _, r := range rows {
				t.AddRow(r.Name, r.TerrDistKm, r.TerrMinRTT, r.StarDistKm, r.StarMinRTT)
			}
			_ = t.Render(os.Stdout)
		})
	}
}

func BenchmarkFig2(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, pops, err := s.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		printArtifact("fig2", func() {
			fmt.Printf("Figure 2 (regenerated): %d countries, %d PoPs; first/last deltas: %s %.1f ms ... %s %.1f ms\n",
				len(rows), len(pops), rows[0].Country, rows[0].DeltaMs,
				rows[len(rows)-1].Country, rows[len(rows)-1].DeltaMs)
		})
	}
}

func BenchmarkFig3(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Fig3("")
		if err != nil {
			b.Fatal(err)
		}
		printArtifact("fig3", func() {
			fmt.Printf("Figure 3 (regenerated): Maputo optimal CDN — starlink %s %.0f ms, terrestrial %s %.0f ms\n",
				res.Starlink[0].CDNCity, res.Starlink[0].MedianMs,
				res.Terrestrial[0].CDNCity, res.Terrestrial[0].MedianMs)
		})
	}
}

func BenchmarkFig4(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, err := s.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		printArtifact("fig4", func() {
			fmt.Print("Figure 4 (regenerated) median HRT differences: ")
			for _, sr := range series {
				fmt.Printf("%s %.0f ms  ", sr.Country, sr.CDF.Median())
			}
			fmt.Println()
		})
	}
}

func BenchmarkFig5(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		printArtifact("fig5", func() {
			t := report.NewTable("Figure 5 (regenerated): FCP ms", "Country", "Network", "Median", "Q1", "Q3")
			for _, r := range rows {
				t.AddRow(r.Country, string(r.Network), r.Box.Median, r.Box.Q1, r.Box.Q3)
			}
			_ = t.Render(os.Stdout)
		})
	}
}

func BenchmarkFig7(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		printArtifact("fig7", func() {
			fmt.Print("Figure 7 (regenerated) medians: ")
			for _, n := range experiments.Fig7HopCounts {
				fmt.Printf("%d-isl %.1f ms  ", n, res.Hop[n].Median())
			}
			fmt.Printf("starlink %.1f ms  terrestrial %.1f ms\n",
				res.Starlink.Median(), res.Terrestrial.Median())
		})
	}
}

func BenchmarkFig8(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, terr, err := s.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		printArtifact("fig8", func() {
			fmt.Print("Figure 8 (regenerated) medians: ")
			for _, r := range rows {
				fmt.Printf("%d%% %.1f ms  ", r.FractionPct, r.Box.Median)
			}
			fmt.Printf("(terrestrial median %.1f ms)\n", terr)
		})
	}
}

func BenchmarkAblationReplicas(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.AblationReplicas()
		if err != nil {
			b.Fatal(err)
		}
		printArtifact("ablation", func() {
			fmt.Print("Replica ablation (regenerated): ")
			for _, r := range rows {
				fmt.Printf("k=%d med %.1f ms/%.0f hops  ", r.ReplicasPerPlane, r.MedianRTTMs, r.MedianHops)
			}
			fmt.Println()
		})
	}
}

func BenchmarkCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.PaperCapacity()
		if res.TotalPB < 800 {
			b.Fatal("capacity arithmetic broken")
		}
	}
}

// --- micro-benchmarks of the substrates the experiments run on ---

func benchConstellation(b *testing.B) *constellation.Constellation {
	b.Helper()
	c, err := constellation.New(constellation.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkSnapshot(b *testing.B) {
	c := benchConstellation(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Snapshot(time.Duration(i) * time.Second)
	}
}

func BenchmarkISLGraphBuild(b *testing.B) {
	c := benchConstellation(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := c.Snapshot(time.Duration(i) * time.Second)
		_ = snap.ISLGraph()
	}
}

func BenchmarkDijkstraShell1(b *testing.B) {
	c := benchConstellation(b)
	g := c.Snapshot(0).ISLGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.ShortestPathsFrom(routing.NodeID(i % g.Len()))
	}
}

func BenchmarkVisibleQuery(b *testing.B) {
	c := benchConstellation(b)
	snap := c.Snapshot(0)
	loc := geo.NewPoint(50.11, 8.68)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = snap.Visible(loc)
	}
}

func BenchmarkResolvePath(b *testing.B) {
	c := benchConstellation(b)
	m := lsn.NewModel(c, groundseg.NewCatalog(), lsn.DefaultConfig())
	snap := c.Snapshot(0)
	loc := geo.NewPoint(-25.97, 32.57)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ResolvePath(loc, "MZ", snap); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpaceResolve(b *testing.B) {
	c := benchConstellation(b)
	m := lsn.NewModel(c, groundseg.NewCatalog(), lsn.DefaultConfig())
	sys, err := spacecdn.NewSystem(spacecdn.DefaultConfig(), c, m)
	if err != nil {
		b.Fatal(err)
	}
	obj := content.Object{ID: "bench", Bytes: 1 << 20}
	if _, err := spacecdn.Apply(sys, spacecdn.PerPlaneSpacing{ReplicasPerPlane: 4}, obj); err != nil {
		b.Fatal(err)
	}
	snap := c.Snapshot(0)
	rng := stats.NewRand(1)
	loc := geo.NewPoint(-1.29, 36.82)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Resolve(loc, "KE", obj, snap, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpaceResolveTelemetry is BenchmarkSpaceResolve with telemetry
// attached at the CLI's default 1% trace sampling; comparing the two pins
// the instrumentation overhead on the hot path (budget: <=5%).
func BenchmarkSpaceResolveTelemetry(b *testing.B) {
	c := benchConstellation(b)
	m := lsn.NewModel(c, groundseg.NewCatalog(), lsn.DefaultConfig())
	sys, err := spacecdn.NewSystem(spacecdn.DefaultConfig(), c, m)
	if err != nil {
		b.Fatal(err)
	}
	sys.SetTelemetry(telemetry.New(0.01))
	obj := content.Object{ID: "bench", Bytes: 1 << 20}
	if _, err := spacecdn.Apply(sys, spacecdn.PerPlaneSpacing{ReplicasPerPlane: 4}, obj); err != nil {
		b.Fatal(err)
	}
	snap := c.Snapshot(0)
	rng := stats.NewRand(1)
	loc := geo.NewPoint(-1.29, 36.82)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Resolve(loc, "KE", obj, snap, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFetchAtHops(b *testing.B) {
	c := benchConstellation(b)
	sys, err := spacecdn.NewSystem(spacecdn.DefaultConfig(), c, nil)
	if err != nil {
		b.Fatal(err)
	}
	snap := c.Snapshot(0)
	loc := geo.NewPoint(48.85, 2.35)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.FetchAtHops(loc, 5, snap, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLRUPutGet(b *testing.B) {
	c := cache.NewLRU(1 << 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := cache.Key(fmt.Sprintf("k%d", i%10000))
		c.Put(cache.Item{Key: k, Size: 1 << 10})
		c.Get(k)
	}
}

func BenchmarkCatalogSample(b *testing.B) {
	cat, err := content.GenerateCatalog(content.DefaultCatalogConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cat.Sample(geo.RegionAfrica, rng)
	}
}

func BenchmarkStripePlan(b *testing.B) {
	c := benchConstellation(b)
	sys, err := spacecdn.NewSystem(spacecdn.DefaultConfig(), c, nil)
	if err != nil {
		b.Fatal(err)
	}
	obj := content.Object{ID: "vid", Bytes: 1 << 30, Video: true}
	video, err := content.Segmentize(obj, 10*time.Minute, 10*time.Second, 4_500_000)
	if err != nil {
		b.Fatal(err)
	}
	loc := geo.NewPoint(-34.60, -58.38)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.PlanStripes(loc, video, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- parallel engine: batch resolution at one worker vs the full pool ---

// benchBatch builds a system and a mixed request batch (overhead hits, ISL
// searches, ground fallbacks) once; the ResolveAll twins below time the same
// batch at workers=1 and workers=GOMAXPROCS, so their ratio is the engine's
// speedup on this machine.
func benchBatch(b *testing.B) (*spacecdn.System, []spacecdn.Request, *constellation.Snapshot) {
	b.Helper()
	c := benchConstellation(b)
	m := lsn.NewModel(c, groundseg.NewCatalog(), lsn.DefaultConfig())
	sys, err := spacecdn.NewSystem(spacecdn.DefaultConfig(), c, m)
	if err != nil {
		b.Fatal(err)
	}
	hot := content.Object{ID: "bb-hot", Bytes: 1 << 20, Region: geo.RegionEurope}
	sparse := content.Object{ID: "bb-sparse", Bytes: 1 << 20, Region: geo.RegionEurope}
	cold := content.Object{ID: "bb-cold", Bytes: 1 << 20, Region: geo.RegionEurope}
	if _, err := spacecdn.Apply(sys, spacecdn.PerPlaneSpacing{ReplicasPerPlane: 1}, sparse); err != nil {
		b.Fatal(err)
	}
	snap := c.Snapshot(0)
	clients := []struct {
		loc geo.Point
		iso string
	}{
		{geo.NewPoint(-25.97, 32.57), "MZ"},
		{geo.NewPoint(-1.29, 36.82), "KE"},
		{geo.NewPoint(50.11, 8.68), "DE"},
		{geo.NewPoint(40.42, -3.70), "ES"},
		{geo.NewPoint(-34.60, -58.38), "AR"},
	}
	for _, cl := range clients {
		if up, ok := snap.BestVisible(cl.loc); ok {
			sys.Store(up.ID, hot)
		}
	}
	objs := []content.Object{hot, sparse, cold}
	reqs := make([]spacecdn.Request, 0, 512)
	for i := 0; len(reqs) < cap(reqs); i++ {
		cl := clients[i%len(clients)]
		reqs = append(reqs, spacecdn.Request{Client: cl.loc, ISO2: cl.iso, Obj: objs[i%len(objs)]})
	}
	snap.ISLGraph() // keep the lazy build out of the timed region
	return sys, reqs, snap
}

func BenchmarkResolveAllSequential(b *testing.B) {
	sys, reqs, snap := benchBatch(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.ResolveAll(reqs, snap, stats.NewRand(1), 1)
	}
}

func BenchmarkResolveAllParallel(b *testing.B) {
	sys, reqs, snap := benchBatch(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.ResolveAll(reqs, snap, stats.NewRand(1), 0)
	}
}

// The workload experiment end to end, sequential vs pooled: the same rows
// come out of both (asserted by TestSuiteParallelDeterminism); this pair
// times the difference.
func BenchmarkWorkloadSequential(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SetWorkers(1)
		if _, err := s.ResolveWorkload(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadParallel(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SetWorkers(0)
		if _, err := s.ResolveWorkload(); err != nil {
			b.Fatal(err)
		}
	}
}
