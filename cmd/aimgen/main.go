// Command aimgen emits the synthetic AIM speed-test dataset as CSV (the
// schema mirrors what the paper consumes from Cloudflare's AIM: client
// location, network, target CDN, idle/loaded latency, throughput).
//
// Usage:
//
//	aimgen [-tests N] [-seed N] [-o FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"spacecdn/internal/measure"
)

func main() {
	var (
		tests = flag.Int("tests", 25, "tests per city per network per snapshot")
		seed  = flag.Int64("seed", 42, "random seed")
		out   = flag.String("o", "-", "output file (- for stdout)")
	)
	flag.Parse()

	if err := run(*tests, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "aimgen:", err)
		os.Exit(1)
	}
}

func run(tests int, seed int64, out string) error {
	env, err := measure.NewEnvironment()
	if err != nil {
		return err
	}
	cfg := measure.DefaultAIMConfig()
	cfg.TestsPerCity = tests
	cfg.Seed = seed
	records, err := env.GenerateAIM(cfg)
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return measure.WriteCSV(w, records)
}
