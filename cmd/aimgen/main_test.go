package main

import (
	"bytes"
	"os"
	"testing"
	"time"

	"spacecdn/internal/measure"
)

func TestWriteCSV(t *testing.T) {
	env, err := measure.NewEnvironment()
	if err != nil {
		t.Fatal(err)
	}
	records, err := env.GenerateAIM(measure.AIMConfig{
		TestsPerCity: 2,
		Snapshots:    []time.Duration{0},
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := measure.WriteCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	back, err := measure.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(records) {
		t.Fatalf("round trip lost records: %d vs %d", len(back), len(records))
	}
	for i := range back {
		a, b := records[i], back[i]
		if a.Country != b.Country || a.City != b.City || a.Network != b.Network ||
			a.CDNCity != b.CDNCity {
			t.Fatalf("record %d identity mismatch: %+v vs %+v", i, a, b)
		}
		if diff := a.IdleRTTMs - b.IdleRTTMs; diff > 0.001 || diff < -0.001 {
			t.Fatalf("record %d idle RTT mismatch: %v vs %v", i, a.IdleRTTMs, b.IdleRTTMs)
		}
		if b.LoadedMs < b.IdleRTTMs {
			t.Fatalf("loaded < idle after round trip: %+v", b)
		}
	}
}

func TestRunToFile(t *testing.T) {
	path := t.TempDir() + "/aim.csv"
	if err := run(1, 7, path); err != nil {
		t.Fatal(err)
	}
	f, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) < 1000 {
		t.Errorf("output file too small: %d bytes", len(f))
	}
}
