// Command constview inspects the simulated constellation: satellite
// positions, visibility from a city, ISL topology statistics and the
// serving-window schedule the striping planner relies on.
//
// Usage:
//
//	constview [-t DURATION] [-city NAME] [-windows DURATION]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"spacecdn/internal/constellation"
	"spacecdn/internal/geo"
	"spacecdn/internal/report"
	"spacecdn/internal/routing"
)

func main() {
	var (
		at      = flag.Duration("t", 0, "snapshot time offset from epoch")
		city    = flag.String("city", "Frankfurt, DE", "observer city")
		windows = flag.Duration("windows", 20*time.Minute, "serving-window horizon (0 to skip)")
	)
	flag.Parse()

	if err := run(os.Stdout, *at, *city, *windows); err != nil {
		fmt.Fprintln(os.Stderr, "constview:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, at time.Duration, cityName string, windows time.Duration) error {
	city, ok := geo.CityByName(cityName)
	if !ok {
		return fmt.Errorf("unknown city %q", cityName)
	}
	c, err := constellation.New(constellation.DefaultConfig())
	if err != nil {
		return err
	}
	snap := c.Snapshot(at)

	cfg := c.Config()
	fmt.Fprintf(w, "constellation: %d planes x %d sats @ %.0f km, %.0f deg (t=%v)\n",
		cfg.Walker.Planes, cfg.Walker.SatsPerPlane, cfg.Walker.AltitudeKm,
		cfg.Walker.InclinationDeg, at)

	g := snap.ISLGraph()
	fmt.Fprintf(w, "ISL graph: %d nodes, %d directed edges\n", g.Len(), g.EdgeCount())
	dists := g.ShortestPathsFrom(routing.NodeID(0))
	maxMs := 0.0
	for _, d := range dists {
		if d > maxMs {
			maxMs = d
		}
	}
	fmt.Fprintf(w, "ISL diameter from sat 0: %.1f ms one-way\n", maxMs)

	vis := snap.Visible(city.Loc)
	t := report.NewTable(
		fmt.Sprintf("satellites visible from %s (%d)", city.Name, len(vis)),
		"Sat", "Plane", "Slot", "Elev deg", "Slant km")
	for i, v := range vis {
		if i >= 10 {
			break
		}
		t.AddRow(int(v.ID), c.Plane(v.ID), c.Slot(v.ID), v.ElevationDeg, v.SlantKm)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	if windows > 0 {
		wins := c.OverheadWindows(city.Loc, at, at+windows, 15*time.Second)
		wt := report.NewTable(
			fmt.Sprintf("serving windows over %v", windows),
			"Sat", "Start", "End", "Duration")
		for _, win := range wins {
			wt.AddRow(int(win.Sat), win.Start, win.End, win.End-win.Start)
		}
		return wt.Render(w)
	}
	return nil
}
