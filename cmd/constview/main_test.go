package main

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRunConstview(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 0, "Frankfurt, DE", 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"72 planes x 22 sats",
		"ISL graph: 1584 nodes",
		"visible from Frankfurt",
		"serving windows",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunConstviewNoWindows(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 5*time.Minute, "Tokyo, JP", 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "serving windows") {
		t.Error("windows rendered despite windows=0")
	}
}

func TestRunConstviewUnknownCity(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, 0, "Atlantis", time.Minute); err == nil {
		t.Fatal("unknown city accepted")
	}
}
