// Command netmet is the NetMet browser-plugin equivalent run over a real
// network stack: it starts a loopback HTTP server whose responses are
// latency- and rate-shaped by the simulated access network (Starlink or
// terrestrial, for a chosen country), then fetches page models through
// net/http and reports per-load HTTP response time and a first-contentful-
// paint approximation measured with httptrace on real sockets.
//
// Usage:
//
//	netmet [-country ISO2] [-network starlink|terrestrial] [-loads N] [-seed N]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptrace"
	"os"
	"sync"
	"time"

	"spacecdn/internal/geo"
	"spacecdn/internal/measure"
	"spacecdn/internal/report"
	"spacecdn/internal/stats"
	"spacecdn/internal/webmodel"
)

func main() {
	var (
		country = flag.String("country", "DE", "client country (ISO2)")
		network = flag.String("network", "starlink", "starlink or terrestrial")
		loads   = flag.Int("loads", 3, "loads per page")
		seed    = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	if err := run(os.Stdout, *country, *network, *loads, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "netmet:", err)
		os.Exit(1)
	}
}

// shapedServer serves synthetic pages with injected one-way latency and a
// bounded serving rate, approximating the simulated access path on real
// sockets.
type shapedServer struct {
	mu      sync.Mutex
	rng     *stats.Rand
	rttFn   func(*stats.Rand) time.Duration
	rateBps float64
	pages   map[string]webmodel.Page
}

func (s *shapedServer) delayAndRate() (time.Duration, float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rttFn(s.rng), s.rateBps
}

func (s *shapedServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rtt, rate := s.delayAndRate()
	// The response's first byte arrives one simulated RTT after the request
	// (request propagation + server turn-around + response propagation).
	time.Sleep(rtt)
	var size int64
	if page, ok := s.pages[r.URL.Path]; ok {
		size = page.HTMLBytes
	} else {
		// Assets: size is carried in the query to keep the server stateless.
		if n, err := fmt.Sscanf(r.URL.RawQuery, "bytes=%d", &size); n != 1 || err != nil {
			http.NotFound(w, r)
			return
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	// Rate-shape the body in 32 KiB chunks.
	chunk := make([]byte, 32<<10)
	remaining := size
	for remaining > 0 {
		n := int64(len(chunk))
		if n > remaining {
			n = remaining
		}
		if _, err := w.Write(chunk[:n]); err != nil {
			return
		}
		remaining -= n
		time.Sleep(time.Duration(float64(n) * 8 / rate * float64(time.Second)))
	}
}

func run(w io.Writer, iso, network string, loads int, seed int64) error {
	if loads <= 0 {
		return fmt.Errorf("loads must be positive")
	}
	env, err := measure.NewEnvironment()
	if err != nil {
		return err
	}
	country, ok := geo.CountryByISO(iso)
	if !ok {
		return fmt.Errorf("unknown country %q", iso)
	}
	city, ok := geo.CityByName(country.Capital + ", " + country.ISO2)
	if !ok {
		return fmt.Errorf("no reference city for %s", iso)
	}
	rng := stats.NewRand(seed)

	// Build the simulated access network for the chosen country+network.
	var rttFn func(*stats.Rand) time.Duration
	var rate float64
	switch network {
	case "terrestrial":
		edge := env.CDN.NearestEdge(city.Loc)
		rttFn = func(r *stats.Rand) time.Duration {
			return env.Terrestrial.SampleRTT(city.Loc, edge.City.Loc, city.Region, edge.City.Region, r)
		}
		rate = env.Terrestrial.DownlinkMbps(city.Region, rng) * 1e6
	case "starlink":
		if !country.Starlink {
			return fmt.Errorf("%s has no Starlink coverage in the modelled window", iso)
		}
		path, err := env.Path(city.Loc, iso, 0)
		if err != nil {
			return err
		}
		edge := env.CDN.NearestEdge(path.PoP.Loc)
		rttFn = func(r *stats.Rand) time.Duration {
			return env.LSN.RTTToHost(path, edge.City.Loc, edge.City.Region, env.Terrestrial, r)
		}
		rate = env.LSN.DownlinkMbps(rng) * 1e6
		fmt.Fprintf(w, "starlink path: %s\n", path)
	default:
		return fmt.Errorf("unknown network %q", network)
	}

	// To keep wall-clock time sane we scale the simulated latency down on
	// the real sockets and scale measurements back up.
	const timeScale = 4.0
	pages := webmodel.Top20Pages(seed)[:5]
	srv := &shapedServer{
		rng: rng.Fork("server"),
		rttFn: func(r *stats.Rand) time.Duration {
			return time.Duration(float64(rttFn(r)) / timeScale)
		},
		rateBps: rate * timeScale,
		pages:   map[string]webmodel.Page{},
	}
	for _, p := range pages {
		srv.pages["/"+p.Name] = p
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	httpSrv := &http.Server{Handler: srv}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Shutdown(context.Background())
	base := "http://" + ln.Addr().String()

	client := &http.Client{Timeout: 120 * time.Second}
	table := report.NewTable(
		fmt.Sprintf("NetMet over real sockets: %s / %s (latency shaped 1/%v)", iso, network, timeScale),
		"Page", "Run", "HRT ms", "FCP ms", "Bytes")

	var hrts, fcps []float64
	for run := 0; run < loads; run++ {
		for _, p := range pages {
			res, err := loadPage(client, base, p)
			if err != nil {
				return fmt.Errorf("load %s: %w", p.Name, err)
			}
			hrt := float64(res.hrt) / float64(time.Millisecond) * timeScale
			fcp := float64(res.fcp) / float64(time.Millisecond) * timeScale
			hrts = append(hrts, hrt)
			fcps = append(fcps, fcp)
			table.AddRow(p.Name, run, hrt, fcp, res.bytes)
		}
	}
	if err := table.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "median HRT %.1f ms, median FCP %.1f ms over %d loads\n",
		stats.Median(hrts), stats.Median(fcps), len(hrts))
	return err
}

type loadResult struct {
	hrt   time.Duration
	fcp   time.Duration
	bytes int64
}

// loadPage fetches the page HTML and its critical assets sequentially in
// waves of six, timing TTFB with httptrace — a miniature browser over a real
// TCP stack.
func loadPage(client *http.Client, base string, p webmodel.Page) (loadResult, error) {
	start := time.Now()
	var firstByte time.Duration

	fetch := func(url string) (int64, error) {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			return 0, err
		}
		reqStart := time.Now()
		gotFirst := false
		trace := &httptrace.ClientTrace{
			GotFirstResponseByte: func() {
				if !gotFirst {
					gotFirst = true
					if firstByte == 0 {
						firstByte = time.Since(reqStart)
					}
				}
			},
		}
		req = req.WithContext(httptrace.WithClientTrace(req.Context(), trace))
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		return io.Copy(io.Discard, resp.Body)
	}

	total, err := fetch(base + "/" + p.Name)
	if err != nil {
		return loadResult{}, err
	}
	// Critical assets in waves of six parallel requests.
	crit := p.Critical
	for len(crit) > 0 {
		n := 6
		if n > len(crit) {
			n = len(crit)
		}
		var wg sync.WaitGroup
		errs := make([]error, n)
		sizes := make([]int64, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int, bytes int64) {
				defer wg.Done()
				sizes[i], errs[i] = fetch(fmt.Sprintf("%s/asset?bytes=%d", base, bytes))
			}(i, crit[i])
		}
		wg.Wait()
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				return loadResult{}, errs[i]
			}
			total += sizes[i]
		}
		crit = crit[n:]
	}
	return loadResult{hrt: firstByte, fcp: time.Since(start), bytes: total}, nil
}
