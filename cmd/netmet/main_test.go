package main

import (
	"bytes"
	"context"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"spacecdn/internal/stats"
	"spacecdn/internal/webmodel"
)

// startServer spins up a shaped loopback server for tests and returns its
// base URL plus a shutdown func.
func startServer(t *testing.T, rtt time.Duration, rateBps float64, pages []webmodel.Page) string {
	t.Helper()
	srv := &shapedServer{
		rng:     stats.NewRand(1),
		rttFn:   func(*stats.Rand) time.Duration { return rtt },
		rateBps: rateBps,
		pages:   map[string]webmodel.Page{},
	}
	for _, p := range pages {
		srv.pages["/"+p.Name] = p
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go func() { _ = httpSrv.Serve(ln) }()
	t.Cleanup(func() {
		_ = httpSrv.Shutdown(context.Background())
		_ = ln.Close()
	})
	return "http://" + ln.Addr().String()
}

func TestLoadPageOverRealSockets(t *testing.T) {
	page := webmodel.Page{
		Name:      "test-page",
		HTMLBytes: 64 << 10,
		Critical:  []int64{32 << 10, 32 << 10},
	}
	rtt := 20 * time.Millisecond
	base := startServer(t, rtt, 100e6, []webmodel.Page{page})
	client := &http.Client{Timeout: 30 * time.Second}
	res, err := loadPage(client, base, page)
	if err != nil {
		t.Fatal(err)
	}
	// The injected delay dominates TTFB: HRT >= rtt, and well below 10x.
	if res.hrt < rtt {
		t.Errorf("HRT %v below injected latency %v", res.hrt, rtt)
	}
	if res.hrt > 10*rtt {
		t.Errorf("HRT %v implausibly high", res.hrt)
	}
	if res.fcp < res.hrt {
		t.Errorf("FCP %v below HRT %v", res.fcp, res.hrt)
	}
	if res.bytes != page.TotalBytes() {
		t.Errorf("bytes = %d, want %d", res.bytes, page.TotalBytes())
	}
}

func TestLoadPageLatencyScales(t *testing.T) {
	page := webmodel.Page{Name: "p", HTMLBytes: 16 << 10, Critical: []int64{16 << 10}}
	fastBase := startServer(t, 5*time.Millisecond, 100e6, []webmodel.Page{page})
	slowBase := startServer(t, 60*time.Millisecond, 100e6, []webmodel.Page{page})
	client := &http.Client{Timeout: 30 * time.Second}
	fast, err := loadPage(client, fastBase, page)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := loadPage(client, slowBase, page)
	if err != nil {
		t.Fatal(err)
	}
	if slow.fcp < fast.fcp+50*time.Millisecond {
		t.Errorf("latency did not shape the load: fast %v, slow %v", fast.fcp, slow.fcp)
	}
}

func TestShapedServerUnknownPath(t *testing.T) {
	base := startServer(t, time.Millisecond, 100e6, nil)
	resp, err := http.Get(base + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestShapedServerAssetQuery(t *testing.T) {
	base := startServer(t, time.Millisecond, 100e6, nil)
	resp, err := http.Get(base + "/asset?bytes=1024")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 1024 {
		t.Errorf("asset bytes = %d, want 1024", buf.Len())
	}
}

func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket campaign")
	}
	var buf bytes.Buffer
	if err := run(&buf, "ES", "terrestrial", 1, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "median HRT") || !strings.Contains(out, "ES / terrestrial") {
		t.Errorf("unexpected output: %q", out)
	}
}

func TestRunValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "ES", "terrestrial", 0, 1); err == nil {
		t.Error("zero loads accepted")
	}
	if err := run(&buf, "ZZ", "terrestrial", 1, 1); err == nil {
		t.Error("unknown country accepted")
	}
	if err := run(&buf, "ES", "carrier-pigeon", 1, 1); err == nil {
		t.Error("unknown network accepted")
	}
	// KR has no Starlink coverage in the modelled window.
	if err := run(&buf, "KR", "starlink", 1, 1); err == nil {
		t.Error("uncovered country accepted for starlink")
	}
}
