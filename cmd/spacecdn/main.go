// Command spacecdn regenerates the paper's tables and figures.
//
// Usage:
//
//	spacecdn -exp table1|fig2|fig3|fig4|fig5|fig7|fig8|ablation-replicas|capacity|workload|parallel-bench|resolve-bench|all
//	         [-fast] [-seed N] [-json] [-city NAME] [-workers N]
//	         [-metrics-out FILE] [-trace-sample RATE]
//
// Each experiment prints an aligned text table (or figure sketch) to stdout;
// -json emits machine-readable output instead.
//
// -workers bounds the goroutines each experiment fans work across (0, the
// default, means one per CPU). Results are identical for every worker count.
//
// -metrics-out attaches telemetry to the run and writes the accumulated
// metrics (and sampled request traces) to FILE when every experiment has
// finished: Prometheus text exposition for .prom/.txt files, a JSON snapshot
// otherwise. The resolve-path "workload" experiment is forced into the run
// so the request counters and RTT histogram are populated; -trace-sample
// sets the fraction of requests retained as traces.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"time"

	"spacecdn/internal/experiments"
	"spacecdn/internal/geo"
	"spacecdn/internal/lsn"
	"spacecdn/internal/measure"
	"spacecdn/internal/report"
	"spacecdn/internal/stats"
	"spacecdn/internal/telemetry"
)

// options collects every flag the command accepts, so flag parsing can be
// tested as a round trip and run() has one stable signature.
type options struct {
	Exp         string
	Fast        bool
	Seed        int64
	JSON        bool
	City        string
	MetricsOut  string
	TraceSample float64
	Workers     int
}

// defaultOptions mirrors the flag defaults.
func defaultOptions() options {
	return options{Exp: "all", Seed: 42, TraceSample: 0.01}
}

// parseFlags binds the command's flags onto an options value and parses args.
func parseFlags(fs *flag.FlagSet, args []string) (options, error) {
	opts := defaultOptions()
	fs.StringVar(&opts.Exp, "exp", opts.Exp, "experiment id: table1, fig2, fig3, fig4, fig5, fig7, fig8, ablation-replicas, capacity, geoblock, gs-expansion, duty-sweep, striping, wormhole, spacevms, bufferbloat, thermal, hitrate, rtt-series, workload, parallel-bench, resolve-bench, all")
	fs.BoolVar(&opts.Fast, "fast", opts.Fast, "reduced sample counts (quick preview)")
	fs.Int64Var(&opts.Seed, "seed", opts.Seed, "random seed")
	fs.BoolVar(&opts.JSON, "json", opts.JSON, "emit JSON instead of text tables")
	fs.StringVar(&opts.City, "city", opts.City, "city for fig3 (default Maputo)")
	fs.StringVar(&opts.MetricsOut, "metrics-out", opts.MetricsOut, "write accumulated telemetry to this file (.prom/.txt: Prometheus text, else JSON snapshot)")
	fs.Float64Var(&opts.TraceSample, "trace-sample", opts.TraceSample, "fraction of resolve requests retained as traces (with -metrics-out)")
	fs.IntVar(&opts.Workers, "workers", opts.Workers, "worker goroutines per experiment (0 = one per CPU; results are identical for any value)")
	if err := fs.Parse(args); err != nil {
		return opts, err
	}
	return opts, nil
}

func main() {
	opts, err := parseFlags(flag.CommandLine, os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if err := run(os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "spacecdn:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, opts options) error {
	suite, err := experiments.NewSuite(opts.Fast, opts.Seed)
	if err != nil {
		return err
	}
	suite.SetWorkers(opts.Workers)
	var tel *telemetry.Telemetry
	if opts.MetricsOut != "" {
		tel = telemetry.New(opts.TraceSample)
		suite.SetTelemetry(tel)
	}
	ids := strings.Split(opts.Exp, ",")
	if opts.Exp == "all" {
		ids = []string{
			"table1", "fig2", "fig3", "fig4", "fig5", "fig7", "fig8",
			"ablation-replicas", "capacity",
			"geoblock", "gs-expansion", "duty-sweep", "striping", "wormhole", "spacevms", "bufferbloat", "thermal", "hitrate", "rtt-series",
			"workload",
		}
	}
	if tel != nil && !containsID(ids, "workload") {
		// The resolve-path workload populates the request counters and RTT
		// histogram the metrics file is expected to carry.
		ids = append(ids, "workload")
	}
	for _, id := range ids {
		if err := runOne(w, suite, strings.TrimSpace(id), opts.JSON, opts.City); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintln(w)
	}
	if tel != nil {
		if err := writeMetrics(tel, opts.MetricsOut); err != nil {
			return fmt.Errorf("metrics-out: %w", err)
		}
		fmt.Fprintf(w, "telemetry written to %s\n", opts.MetricsOut)
	}
	return nil
}

func containsID(ids []string, want string) bool {
	for _, id := range ids {
		if strings.TrimSpace(id) == want {
			return true
		}
	}
	return false
}

// writeMetrics exports the run's telemetry, choosing the format from the
// file extension: Prometheus text for .prom/.txt, JSON snapshot otherwise.
func writeMetrics(tel *telemetry.Telemetry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch {
	case strings.HasSuffix(path, ".prom"), strings.HasSuffix(path, ".txt"):
		err = tel.WritePrometheus(f)
	default:
		err = tel.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func runOne(w io.Writer, s *experiments.Suite, id string, asJSON bool, city string) error {
	switch id {
	case "table1":
		rows, err := s.Table1()
		if err != nil {
			return err
		}
		if asJSON {
			return report.WriteJSON(w, rows)
		}
		t := report.NewTable("Table 1: distance to best CDN and median minRTT",
			"Country", "Terr km", "Terr minRTT ms", "Starlink km", "Starlink minRTT ms")
		for _, r := range rows {
			t.AddRow(r.Name, r.TerrDistKm, r.TerrMinRTT, r.StarDistKm, r.StarMinRTT)
		}
		return t.Render(w)

	case "fig2":
		rows, pops, err := s.Fig2()
		if err != nil {
			return err
		}
		if asJSON {
			return report.WriteJSON(w, map[string]interface{}{"deltas": rows, "pops": pops})
		}
		t := report.NewTable("Figure 2: median RTT delta (Starlink - terrestrial) per country",
			"Country", "Delta ms")
		for _, r := range rows {
			t.AddRow(r.Country, r.DeltaMs)
		}
		if err := t.Render(w); err != nil {
			return err
		}
		p := report.NewTable(fmt.Sprintf("Operational PoPs (%d)", len(pops)), "PoP", "City")
		for _, pp := range pops {
			p.AddRow(pp.Name, pp.City)
		}
		return p.Render(w)

	case "fig3":
		res, err := s.Fig3(city)
		if err != nil {
			return err
		}
		if asJSON {
			return report.WriteJSON(w, res)
		}
		for _, side := range []struct {
			name   string
			series []measure.CityCDNLatency
		}{
			{"(a) Starlink", res.Starlink},
			{"(b) Terrestrial", res.Terrestrial},
		} {
			t := report.NewTable(
				fmt.Sprintf("Figure 3 %s: median latency from %s per CDN site", side.name, res.City),
				"CDN", "Median ms", "Samples")
			for _, c := range side.series {
				t.AddRow(c.CDNCity, c.MedianMs, c.N)
			}
			if err := t.Render(w); err != nil {
				return err
			}
		}
		return nil

	case "fig4":
		series, err := s.Fig4()
		if err != nil {
			return err
		}
		if asJSON {
			out := map[string][]float64{}
			for _, sr := range series {
				pts := sr.CDF.Points(21)
				xs := make([]float64, len(pts))
				for i, p := range pts {
					xs[i] = p.X
				}
				out[sr.Country] = xs
			}
			return report.WriteJSON(w, out)
		}
		fig := report.Figure{
			Title:  "Figure 4: HTTP response time difference (Starlink - terrestrial)",
			XLabel: "difference ms", YLabel: "CDF",
		}
		for _, sr := range series {
			pts := sr.CDF.Points(41)
			xs := make([]float64, len(pts))
			ys := make([]float64, len(pts))
			for i, p := range pts {
				xs[i], ys[i] = p.X, p.P
			}
			srs, err := report.NewSeries(sr.Country, xs, ys)
			if err != nil {
				return err
			}
			fig.Series = append(fig.Series, srs)
		}
		return fig.Render(w)

	case "fig5":
		rows, err := s.Fig5()
		if err != nil {
			return err
		}
		if asJSON {
			return report.WriteJSON(w, rows)
		}
		t := report.NewTable("Figure 5: First Contentful Paint (ms)",
			"Country", "Network", "Min", "Q1", "Median", "Q3", "Max", "N")
		for _, r := range rows {
			t.AddRow(r.Country, string(r.Network), r.Box.Min, r.Box.Q1, r.Box.Median, r.Box.Q3, r.Box.Max, r.Box.N)
		}
		return t.Render(w)

	case "fig7":
		res, err := s.Fig7()
		if err != nil {
			return err
		}
		if asJSON {
			out := map[string][]float64{}
			for n, cdf := range res.Hop {
				out[fmt.Sprintf("%d-isl", n)] = quantiles(cdf)
			}
			out["starlink"] = quantiles(res.Starlink)
			out["terrestrial"] = quantiles(res.Terrestrial)
			return report.WriteJSON(w, out)
		}
		fig := report.Figure{
			Title:  "Figure 7: SpaceCDN latency by ISL hop distance vs AIM references",
			XLabel: "latency ms", YLabel: "CDF",
		}
		for _, n := range experiments.Fig7HopCounts {
			fig.Series = append(fig.Series, cdfSeries(fmt.Sprintf("%d ISL", n), res.Hop[n]))
		}
		fig.Series = append(fig.Series,
			cdfSeries("starlink (AIM)", res.Starlink),
			cdfSeries("terrestrial (AIM)", res.Terrestrial),
		)
		return fig.Render(w)

	case "fig8":
		rows, terr, err := s.Fig8()
		if err != nil {
			return err
		}
		if asJSON {
			return report.WriteJSON(w, map[string]interface{}{"rows": rows, "terrestrialMedianMs": terr})
		}
		t := report.NewTable("Figure 8: SpaceCDN latency under duty-cycled caching (ms)",
			"Cache-enabled", "Min", "Q1", "Median", "Q3", "Max", "N")
		for _, r := range rows {
			t.AddRow(fmt.Sprintf("%d%%", r.FractionPct), r.Box.Min, r.Box.Q1, r.Box.Median, r.Box.Q3, r.Box.Max, r.Box.N)
		}
		if err := t.Render(w); err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "terrestrial median reference: %.1f ms\n", terr)
		return err

	case "ablation-replicas":
		rows, err := s.AblationReplicas()
		if err != nil {
			return err
		}
		if asJSON {
			return report.WriteJSON(w, rows)
		}
		t := report.NewTable("Ablation: replicas per plane vs reachability",
			"Replicas/plane", "Median ms", "P90 ms", "Median hops", "Max hops", "Reachable")
		for _, r := range rows {
			t.AddRow(r.ReplicasPerPlane, r.MedianRTTMs, r.P90RTTMs, r.MedianHops, r.MaxHops,
				fmt.Sprintf("%.0f%%", r.Reachable*100))
		}
		return t.Render(w)

	case "capacity":
		res := experiments.PaperCapacity()
		if asJSON {
			return report.WriteJSON(w, res)
		}
		t := report.NewTable("§5 storage arithmetic", "Satellites", "Per-sat TB", "Total PB", "2h videos")
		t.AddRow(res.Satellites, res.PerSatBytes>>40, res.TotalPB, res.VideosStored)
		return t.Render(w)

	case "geoblock":
		rows, err := s.GeoBlocking()
		if err != nil {
			return err
		}
		if asJSON {
			return report.WriteJSON(w, rows)
		}
		t := report.NewTable("Extension E10: spurious geo-blocking (content licensed at home, blocked at the PoP)",
			"Country", "PoP country", "Starlink spurious", "Terrestrial spurious", "Requests")
		for _, r := range rows {
			t.AddRow(r.Country, r.PoPISO,
				fmt.Sprintf("%.1f%%", 100*r.StarlinkSpuriousRate),
				fmt.Sprintf("%.1f%%", 100*r.TerrestrialSpuriousRate), r.Requests)
		}
		return t.Render(w)

	case "gs-expansion":
		rows, err := s.GroundExpansion()
		if err != nil {
			return err
		}
		if asJSON {
			return report.WriteJSON(w, rows)
		}
		t := report.NewTable("Extension E11: ground-segment expansion (local PoPs deployed)",
			"Country", "Baseline ms", "Expanded ms", "Baseline km", "Expanded km")
		for _, r := range rows {
			t.AddRow(r.Country, r.BaselineMs, r.ExpandedMs, r.BaselineDist, r.ExpandedDist)
		}
		return t.Render(w)

	case "duty-sweep":
		rows, err := s.DutyCycleSweep()
		if err != nil {
			return err
		}
		if asJSON {
			return report.WriteJSON(w, rows)
		}
		t := report.NewTable("Extension E12: duty-cycle sweep (one-way accounting, 4 replicas/plane)",
			"Cache-enabled", "Median ms", "P90 ms", "Median hops", "Found")
		for _, r := range rows {
			t.AddRow(fmt.Sprintf("%d%%", r.FractionPct), r.MedianMs, r.P90Ms, r.MedianHops,
				fmt.Sprintf("%.0f%%", 100*r.FoundRate))
		}
		return t.Render(w)

	case "striping":
		rows, err := s.StripingAblation()
		if err != nil {
			return err
		}
		if asJSON {
			return report.WriteJSON(w, rows)
		}
		t := report.NewTable("Extension E13: video striping prefetch ablation",
			"Viewer", "Segments", "Sats", "Cold startup ms", "Warm startup ms", "Warm from space")
		for _, r := range rows {
			t.AddRow(r.City, r.Segments, r.Satellites, r.ColdStartupMs, r.WarmStartupMs,
				fmt.Sprintf("%d/%d", r.WarmFromSpace, r.Segments))
		}
		return t.Render(w)

	case "wormhole":
		rows, err := s.Wormholing()
		if err != nil {
			return err
		}
		if asJSON {
			return report.WriteJSON(w, rows)
		}
		t := report.NewTable("Extension E14: content wormholing vs 10 Gbps WAN push",
			"Route", "Object TB", "Orbit transit min", "WAN hours", "Wormhole wins")
		for _, r := range rows {
			t.AddRow(r.Route, r.ObjectTB, r.TransitMin, r.WANHours, r.WormholeWin)
		}
		return t.Render(w)

	case "rtt-series":
		// A subscriber's latency sawtooth across satellite handovers
		// (paper §2: connectivity changes every few minutes, paths
		// reconfigure every 15 s).
		cityName := city
		if cityName == "" {
			cityName = "Maputo"
		}
		cc, ok := geoCity(cityName)
		if !ok {
			return fmt.Errorf("unknown city %q", cityName)
		}
		rng := stats.NewRand(42)
		series, err := s.Env.LSN.RTTTimeSeries(cc.Loc, cc.Country, 0, 10*time.Minute, rng)
		if err != nil {
			return err
		}
		if asJSON {
			return report.WriteJSON(w, series)
		}
		t := report.NewTable(fmt.Sprintf("RTT time series from %s (15s reconfig intervals)", cc.Name),
			"t", "RTT ms", "Serving sat", "Handover")
		for _, sm := range series {
			t.AddRow(sm.At, float64(sm.RTT)/float64(time.Millisecond), sm.UpSat, sm.Handover)
		}
		if err := t.Render(w); err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "handover rate: %.2f per minute\n", lsnHandoverRate(series))
		return err

	case "thermal":
		rows, maxDuty, err := s.ThermalFeasibility()
		if err != nil {
			return err
		}
		if asJSON {
			return report.WriteJSON(w, map[string]interface{}{"rows": rows, "sustainableDuty": maxDuty})
		}
		t := report.NewTable("Extension E17: thermal feasibility of duty-cycled caching",
			"Cache-enabled", "Peak C", "Time over 30C", "Sustainable")
		for _, r := range rows {
			t.AddRow(fmt.Sprintf("%d%%", r.FractionPct), r.PeakC,
				fmt.Sprintf("%.1f%%", 100*r.OverShare), r.Sustainable)
		}
		if err := t.Render(w); err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "passive-cooling envelope sustains up to %.0f%% duty\n", 100*maxDuty)
		return err

	case "hitrate":
		rows, err := s.CacheMissRates()
		if err != nil {
			return err
		}
		if asJSON {
			return report.WriteJSON(w, rows)
		}
		t := report.NewTable("Extension E18: edge-cache hit rates for home-region content",
			"Country", "Terr edge", "Terr hit", "Starlink edge", "Starlink hit")
		for _, r := range rows {
			t.AddRow(r.Country, r.TerrestrialEdge, fmt.Sprintf("%.0f%%", 100*r.TerrestrialHit),
				r.StarlinkEdge, fmt.Sprintf("%.0f%%", 100*r.StarlinkHit))
		}
		return t.Render(w)

	case "bufferbloat":
		rows, err := s.Bufferbloat()
		if err != nil {
			return err
		}
		if asJSON {
			return report.WriteJSON(w, rows)
		}
		t := report.NewTable("Extension E16: access-link bufferbloat (idle vs loaded RTT)",
			"Network", "Median idle ms", "Median loaded ms", "Median inflation", "P90 inflation", ">200ms share", "N")
		for _, r := range rows {
			t.AddRow(string(r.Network), r.MedianIdleMs, r.MedianLoadedMs,
				r.MedianInflation, r.P90Inflation, fmt.Sprintf("%.0f%%", 100*r.Share200), r.N)
		}
		return t.Render(w)

	case "spacevms":
		rows, err := s.SpaceVMs()
		if err != nil {
			return err
		}
		if asJSON {
			return report.WriteJSON(w, rows)
		}
		t := report.NewTable("Extension E15: Space VM handovers (proactive delta sync vs cold migration)",
			"Area", "Handovers", "Mean downtime ms", "Max ms", "Cold total ms", "Availability", "Cold avail")
		for _, r := range rows {
			t.AddRow(r.City, r.Handovers, r.MeanDowntimeMs, r.MaxDowntimeMs, r.ColdDowntimeMs,
				fmt.Sprintf("%.4f", r.Availability), fmt.Sprintf("%.4f", r.ColdAvailability))
		}
		return t.Render(w)

	case "parallel-bench":
		res, err := s.ParallelBench()
		if err != nil {
			return err
		}
		if asJSON {
			return report.WriteJSON(w, res)
		}
		t := report.NewTable("Parallel engine: batch resolution throughput",
			"Requests", "Workers", "Req/s", "Speedup", "Identical")
		t.AddRow(res.Requests, res.SeqWorkers, res.SeqReqPerSec, 1.0, res.Identical)
		t.AddRow(res.Requests, res.ParWorkers, res.ParReqPerSec, res.Speedup, res.Identical)
		return t.Render(w)

	case "resolve-bench":
		res, err := s.ResolveBench()
		if err != nil {
			return err
		}
		if asJSON {
			return report.WriteJSON(w, res)
		}
		t := report.NewTable("Resolve acceleration: naive vs memoized single-worker pipeline",
			"Pipeline", "Requests", "Req/s", "Allocs/op", "Speedup", "Identical")
		t.AddRow("naive", res.Requests, res.NaiveReqPerSec, res.NaiveAllocsPerOp, 1.0, res.Identical)
		t.AddRow("accelerated", res.Requests, res.AccelReqPerSec, res.AccelAllocsPerOp, res.Speedup, res.Identical)
		t.AddRow("steady-state", res.SteadyRequests, "", res.SteadyAllocsPerOp, "", res.Identical)
		return t.Render(w)

	case "workload":
		res, err := s.ResolveWorkload()
		if err != nil {
			return err
		}
		if asJSON {
			return report.WriteJSON(w, res)
		}
		t := report.NewTable("Resolve workload: hot/warm/cold mix by serving source",
			"Source", "Requests", "Median ms", "P90 ms", "Mean hops")
		for _, r := range res.Rows {
			t.AddRow(r.Source, r.Requests, r.MedianMs, r.P90Ms, r.MeanHops)
		}
		if err := t.Render(w); err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "%d requests, %d errors\n", res.Requests, res.Errors)
		return err

	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
}

func geoCity(name string) (geo.City, bool) { return geo.CityByName(name) }

func lsnHandoverRate(series []lsn.RTTSample) float64 { return lsn.HandoverRate(series) }

func quantiles(c *stats.CDF) []float64 {
	qs := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = c.Quantile(q)
	}
	return out
}

func cdfSeries(name string, c *stats.CDF) report.Series {
	pts := c.Points(41)
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.X, p.P
	}
	return report.Series{Name: name, X: xs, Y: ys}
}
