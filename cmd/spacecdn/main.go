// Command spacecdn regenerates the paper's tables and figures.
//
// Usage:
//
//	spacecdn -exp table1|fig2|fig3|fig4|fig5|fig7|fig8|ablation-replicas|capacity|workload|resilience|traffic|parallel-bench|resolve-bench|sweep-bench|scale-bench|serve-bench|all
//	         [-fast] [-seed N] [-json] [-city NAME] [-workers N]
//	         [-metrics-out FILE] [-trace-sample RATE]
//	         [-series-out FILE] [-series-window DUR] [-trace-out FILE]
//	         [-serve ADDR] [-serve-linger DUR]
//	         [-fault-isls F] [-fault-pops F] [-fault-seed N]
//	spacecdn -list
//
// Each experiment prints an aligned text table (or figure sketch) to stdout;
// -json emits machine-readable output instead. -list prints every registered
// experiment id with a one-line description and exits.
//
// -workers bounds the goroutines each experiment fans work across (0, the
// default, means one per CPU). Results are identical for every worker count.
//
// -metrics-out attaches telemetry to the run and writes the accumulated
// metrics (and sampled request traces) to FILE when every experiment has
// finished: Prometheus text exposition for .prom/.txt files, a JSON snapshot
// otherwise. The resolve-path "workload" experiment is forced into the run
// so the request counters and RTT histogram are populated; -trace-sample
// sets the fraction of requests retained as traces.
//
// -series-out adds the time/space-resolved layer: a windowed series collector
// rides the sweep cursor (window width set by -series-window, default 1m of
// sim time) and the artifact — per-window counter deltas, per-window
// histogram quantiles, the spatial heatmap and sweep-step spans — is written
// as JSON when the run ends. -trace-out writes the sampled request traces and
// sweep-step spans as Perfetto/Chrome trace-event JSON (load it at
// ui.perfetto.dev). -serve starts a live introspection endpoint on ADDR
// (host:0 picks a free port; the bound address is printed) with /metrics,
// /series, /traces, /healthz and /debug/pprof/; -serve-linger keeps it up
// that long after the experiments finish so a scraper can catch the final
// state. Any of these flags attaches telemetry, same as -metrics-out.
//
// The -fault-* flags tune the resilience experiment: -fault-isls / -fault-pops
// pin the ISL and PoP failure fractions (negative, the default, derives them
// from the swept satellite fraction), and -fault-seed seeds fault-plan
// generation (0 reuses -seed).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"spacecdn/internal/experiments"
	"spacecdn/internal/geo"
	"spacecdn/internal/lsn"
	"spacecdn/internal/report"
	"spacecdn/internal/stats"
	"spacecdn/internal/telemetry"
)

// options collects every flag the command accepts, so flag parsing can be
// tested as a round trip and run() has one stable signature.
type options struct {
	Exp         string
	Fast        bool
	Seed        int64
	JSON        bool
	City        string
	MetricsOut  string
	TraceSample float64
	Workers     int
	List        bool

	// Time/space-resolved observability (any of these attaches telemetry).
	SeriesOut    string
	SeriesWindow time.Duration
	TraceOut     string
	Serve        string
	ServeLinger  time.Duration

	// Fault-injection knobs for the resilience experiment; negative
	// fractions mean "derive from the swept satellite fraction", fault seed
	// 0 means "reuse Seed".
	FaultISLs float64
	FaultPoPs float64
	FaultSeed int64
}

// defaultOptions mirrors the flag defaults.
func defaultOptions() options {
	return options{
		Exp: "all", Seed: 42, TraceSample: 0.01, FaultISLs: -1, FaultPoPs: -1,
		SeriesWindow: telemetry.DefaultSeriesWindow,
	}
}

// parseFlags binds the command's flags onto an options value and parses args.
func parseFlags(fs *flag.FlagSet, args []string) (options, error) {
	opts := defaultOptions()
	fs.StringVar(&opts.Exp, "exp", opts.Exp, "experiment id (comma-separable; see -list), or all")
	fs.BoolVar(&opts.Fast, "fast", opts.Fast, "reduced sample counts (quick preview)")
	fs.Int64Var(&opts.Seed, "seed", opts.Seed, "random seed")
	fs.BoolVar(&opts.JSON, "json", opts.JSON, "emit JSON instead of text tables")
	fs.StringVar(&opts.City, "city", opts.City, "city for fig3 (default Maputo)")
	fs.StringVar(&opts.MetricsOut, "metrics-out", opts.MetricsOut, "write accumulated telemetry to this file (.prom/.txt: Prometheus text, else JSON snapshot)")
	fs.Float64Var(&opts.TraceSample, "trace-sample", opts.TraceSample, "fraction of resolve requests retained as traces (with -metrics-out)")
	fs.IntVar(&opts.Workers, "workers", opts.Workers, "worker goroutines per experiment (0 = one per CPU; results are identical for any value)")
	fs.BoolVar(&opts.List, "list", opts.List, "list registered experiments and exit")
	fs.StringVar(&opts.SeriesOut, "series-out", opts.SeriesOut, "write the windowed series + spatial heatmap artifact (JSON) to this file")
	fs.DurationVar(&opts.SeriesWindow, "series-window", opts.SeriesWindow, "sim-time width of each metric window (with -series-out or -serve)")
	fs.StringVar(&opts.TraceOut, "trace-out", opts.TraceOut, "write sampled traces + sweep steps as Perfetto trace-event JSON to this file")
	fs.StringVar(&opts.Serve, "serve", opts.Serve, "serve live introspection (/metrics /series /traces /healthz /debug/pprof) on this host:port; host:0 picks a port")
	fs.DurationVar(&opts.ServeLinger, "serve-linger", opts.ServeLinger, "keep the -serve endpoint up this long after experiments finish")
	fs.Float64Var(&opts.FaultISLs, "fault-isls", opts.FaultISLs, "resilience: ISL failure fraction (negative = half the satellite fraction)")
	fs.Float64Var(&opts.FaultPoPs, "fault-pops", opts.FaultPoPs, "resilience: PoP failure fraction (negative = a quarter of the satellite fraction)")
	fs.Int64Var(&opts.FaultSeed, "fault-seed", opts.FaultSeed, "resilience: fault-plan seed (0 = reuse -seed)")
	if err := fs.Parse(args); err != nil {
		return opts, err
	}
	return opts, nil
}

func main() {
	opts, err := parseFlags(flag.CommandLine, os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if err := run(os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, "spacecdn:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, opts options) error {
	if opts.List {
		return listExperiments(w)
	}
	suite, err := experiments.NewSuite(opts.Fast, opts.Seed)
	if err != nil {
		return err
	}
	suite.SetWorkers(opts.Workers)
	suite.FaultISLFraction = opts.FaultISLs
	suite.FaultPoPFraction = opts.FaultPoPs
	suite.FaultSeed = opts.FaultSeed
	var tel *telemetry.Telemetry
	if opts.MetricsOut != "" || opts.SeriesOut != "" || opts.TraceOut != "" || opts.Serve != "" {
		tel = telemetry.New(opts.TraceSample)
		if opts.SeriesOut != "" || opts.TraceOut != "" || opts.Serve != "" {
			// The series collector rides the experiments' sweep cursors; it
			// also supplies the sweep-step spans the Perfetto export and the
			// /series endpoint carry.
			tel.SetSeries(telemetry.NewSeriesCollector(tel.Registry(), opts.SeriesWindow, 0))
		}
		suite.SetTelemetry(tel)
	}
	var srv *telemetry.Server
	if opts.Serve != "" {
		srv, err = telemetry.Serve(opts.Serve, tel)
		if err != nil {
			return err
		}
		defer srv.Close()
		// Printed before any experiment runs so a scraper tailing stdout can
		// hit the endpoint while the sweep is still advancing.
		fmt.Fprintf(w, "introspection listening on http://%s\n", srv.Addr())
	}
	ids := strings.Split(opts.Exp, ",")
	if opts.Exp == "all" {
		ids = ids[:0]
		for _, e := range registry() {
			if e.inAll {
				ids = append(ids, e.id)
			}
		}
	}
	if tel != nil && !containsID(ids, "workload") {
		// The resolve-path workload populates the request counters and RTT
		// histogram the metrics file is expected to carry.
		ids = append(ids, "workload")
	}
	for _, id := range ids {
		if err := runOne(w, suite, strings.TrimSpace(id), opts); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Fprintln(w)
	}
	if opts.MetricsOut != "" {
		if err := writeMetrics(tel, opts.MetricsOut); err != nil {
			return fmt.Errorf("metrics-out: %w", err)
		}
		fmt.Fprintf(w, "telemetry written to %s\n", opts.MetricsOut)
	}
	if opts.SeriesOut != "" {
		if err := writeArtifact(opts.SeriesOut, tel.WriteSeriesJSON); err != nil {
			return fmt.Errorf("series-out: %w", err)
		}
		fmt.Fprintf(w, "series written to %s\n", opts.SeriesOut)
	}
	if opts.TraceOut != "" {
		if err := writeArtifact(opts.TraceOut, tel.WritePerfettoJSON); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
		fmt.Fprintf(w, "perfetto trace written to %s\n", opts.TraceOut)
	}
	if srv != nil && opts.ServeLinger > 0 {
		fmt.Fprintf(w, "lingering %v for scrapes\n", opts.ServeLinger)
		time.Sleep(opts.ServeLinger)
	}
	return nil
}

// writeArtifact creates path and streams one telemetry artifact into it.
func writeArtifact(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// listExperiments prints every registry entry as "id - description", marking
// the ones "all" skips.
func listExperiments(w io.Writer) error {
	for _, e := range registry() {
		suffix := ""
		if !e.inAll {
			suffix = " (not in \"all\")"
		}
		if _, err := fmt.Fprintf(w, "%-18s %s%s\n", e.id, e.desc, suffix); err != nil {
			return err
		}
	}
	return nil
}

// runOne dispatches a single experiment id through the registry.
func runOne(w io.Writer, s *experiments.Suite, id string, opts options) error {
	for _, e := range registry() {
		if e.id == id {
			return e.run(w, s, opts)
		}
	}
	return fmt.Errorf("unknown experiment %q", id)
}

func containsID(ids []string, want string) bool {
	for _, id := range ids {
		if strings.TrimSpace(id) == want {
			return true
		}
	}
	return false
}

// writeMetrics exports the run's telemetry, choosing the format from the
// file extension: Prometheus text for .prom/.txt, JSON snapshot otherwise.
func writeMetrics(tel *telemetry.Telemetry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch {
	case strings.HasSuffix(path, ".prom"), strings.HasSuffix(path, ".txt"):
		err = tel.WritePrometheus(f)
	default:
		err = tel.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func geoCity(name string) (geo.City, bool) { return geo.CityByName(name) }

func lsnHandoverRate(series []lsn.RTTSample) float64 { return lsn.HandoverRate(series) }

func quantiles(c *stats.CDF) []float64 {
	qs := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = c.Quantile(q)
	}
	return out
}

func cdfSeries(name string, c *stats.CDF) report.Series {
	pts := c.Points(41)
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i], ys[i] = p.X, p.P
	}
	return report.Series{Name: name, X: xs, Y: ys}
}
