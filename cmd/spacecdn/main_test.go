package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "capacity", true, 1, false, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "storage arithmetic") || !strings.Contains(out, "6000") {
		t.Errorf("capacity output wrong: %q", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "nope", true, 1, false, ""); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunCommaSeparated(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "table1, fig2", true, 1, false, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table 1") {
		t.Error("missing table1 output")
	}
	if !strings.Contains(out, "Figure 2") {
		t.Error("missing fig2 output")
	}
	// The paper's Table 1 countries appear.
	for _, name := range []string{"Mozambique", "Spain", "Japan"} {
		if !strings.Contains(out, name) {
			t.Errorf("missing %s row", name)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "table1", true, 1, true, ""); err != nil {
		t.Fatal(err)
	}
	var rows []map[string]interface{}
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &rows); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(rows) != 11 {
		t.Errorf("JSON rows = %d", len(rows))
	}
	if _, ok := rows[0]["StarMinRTT"]; !ok {
		t.Errorf("row missing StarMinRTT: %v", rows[0])
	}
}

func TestRunFig3CustomCity(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig3", true, 1, false, "Nairobi"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Nairobi") {
		t.Error("custom city not honored")
	}
}

func TestRunExtensions(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "geoblock,wormhole,rtt-series", true, 1, false, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "spurious geo-blocking") {
		t.Error("missing geoblock output")
	}
	if !strings.Contains(out, "wormholing") {
		t.Error("missing wormhole output")
	}
	if !strings.Contains(out, "RTT time series") || !strings.Contains(out, "handover rate") {
		t.Error("missing rtt-series output")
	}
}
