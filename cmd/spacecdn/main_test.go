package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spacecdn/internal/telemetry"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{Exp: "capacity", Fast: true, Seed: 1, TraceSample: 0.01}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "storage arithmetic") || !strings.Contains(out, "6000") {
		t.Errorf("capacity output wrong: %q", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{Exp: "nope", Fast: true, Seed: 1, TraceSample: 0.01}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunCommaSeparated(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{Exp: "table1, fig2", Fast: true, Seed: 1, TraceSample: 0.01}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table 1") {
		t.Error("missing table1 output")
	}
	if !strings.Contains(out, "Figure 2") {
		t.Error("missing fig2 output")
	}
	// The paper's Table 1 countries appear.
	for _, name := range []string{"Mozambique", "Spain", "Japan"} {
		if !strings.Contains(out, name) {
			t.Errorf("missing %s row", name)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{Exp: "table1", Fast: true, Seed: 1, JSON: true, TraceSample: 0.01}); err != nil {
		t.Fatal(err)
	}
	var rows []map[string]interface{}
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &rows); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(rows) != 11 {
		t.Errorf("JSON rows = %d", len(rows))
	}
	if _, ok := rows[0]["StarMinRTT"]; !ok {
		t.Errorf("row missing StarMinRTT: %v", rows[0])
	}
}

func TestRunFig3CustomCity(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{Exp: "fig3", Fast: true, Seed: 1, City: "Nairobi", TraceSample: 0.01}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Nairobi") {
		t.Error("custom city not honored")
	}
}

func TestRunExtensions(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{Exp: "geoblock,wormhole,rtt-series", Fast: true, Seed: 1, TraceSample: 0.01}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "spurious geo-blocking") {
		t.Error("missing geoblock output")
	}
	if !strings.Contains(out, "wormholing") {
		t.Error("missing wormhole output")
	}
	if !strings.Contains(out, "RTT time series") || !strings.Contains(out, "handover rate") {
		t.Error("missing rtt-series output")
	}
}

// TestMetricsOutSmoke runs the workload experiment with -metrics-out and
// asserts the JSON snapshot parses, carries non-zero per-source request
// counters, an RTT histogram with quantiles, and at least one sampled trace
// whose span durations sum to its RTT within a microsecond.
func TestMetricsOutSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "metrics.json")
	var buf bytes.Buffer
	if err := run(&buf, options{Exp: "workload", Fast: true, Seed: 1, MetricsOut: out, TraceSample: 0.01}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "telemetry written to") {
		t.Error("missing telemetry confirmation line")
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}

	wantSources := map[string]bool{"overhead": false, "isl": false, "ground": false}
	for _, c := range snap.Counters {
		if c.Name != "spacecdn_resolve_requests_total" {
			continue
		}
		src := c.Labels["source"]
		if _, ok := wantSources[src]; ok && c.Value > 0 {
			wantSources[src] = true
		}
	}
	for src, seen := range wantSources {
		if !seen {
			t.Errorf("no requests counted for source %q", src)
		}
	}

	rtt, ok := snap.Histogram("spacecdn_resolve_rtt_ms")
	if !ok || rtt.Count == 0 {
		t.Fatalf("rtt histogram missing or empty: %+v", rtt)
	}
	if !(rtt.P50 > 0 && rtt.P50 <= rtt.P95 && rtt.P95 <= rtt.P99) {
		t.Errorf("rtt quantiles malformed: p50=%v p95=%v p99=%v", rtt.P50, rtt.P95, rtt.P99)
	}

	if len(snap.Traces) == 0 {
		t.Fatal("no sampled traces at rate 0.01")
	}
	for _, tr := range snap.Traces {
		diff := tr.SpanSum() - tr.RTT
		if diff < -time.Microsecond || diff > time.Microsecond {
			t.Errorf("trace %d (%s): span sum off by %v", tr.Seq, tr.Source, diff)
		}
	}
}

// TestMetricsOutPrometheus checks the .prom extension switches to text
// exposition format.
func TestMetricsOutPrometheus(t *testing.T) {
	out := filepath.Join(t.TempDir(), "metrics.prom")
	var buf bytes.Buffer
	if err := run(&buf, options{Exp: "workload", Fast: true, Seed: 1, MetricsOut: out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{
		"# TYPE spacecdn_resolve_requests_total counter",
		`spacecdn_resolve_requests_total{source="ground"}`,
		"# TYPE spacecdn_resolve_rtt_ms histogram",
		`le="+Inf"`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}

// TestParseFlagsDefaults: no arguments yields the documented defaults.
func TestParseFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("spacecdn", flag.ContinueOnError)
	opts, err := parseFlags(fs, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := options{
		Exp: "all", Seed: 42, TraceSample: 0.01, FaultISLs: -1, FaultPoPs: -1,
		SeriesWindow: telemetry.DefaultSeriesWindow,
	}
	if opts != want {
		t.Errorf("defaults = %+v, want %+v", opts, want)
	}
}

// TestParseFlagsRoundTrip: every flag lands in its options field.
func TestParseFlagsRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("spacecdn", flag.ContinueOnError)
	opts, err := parseFlags(fs, []string{
		"-exp", "workload", "-fast", "-seed", "7", "-json",
		"-city", "Nairobi", "-metrics-out", "m.prom",
		"-trace-sample", "0.5", "-workers", "4", "-list",
		"-series-out", "s.json", "-series-window", "30s",
		"-trace-out", "t.json", "-serve", "127.0.0.1:0", "-serve-linger", "2s",
		"-fault-isls", "0.25", "-fault-pops", "0.125", "-fault-seed", "9",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := options{
		Exp: "workload", Fast: true, Seed: 7, JSON: true,
		City: "Nairobi", MetricsOut: "m.prom", TraceSample: 0.5, Workers: 4,
		List: true, FaultISLs: 0.25, FaultPoPs: 0.125, FaultSeed: 9,
		SeriesOut: "s.json", SeriesWindow: 30 * time.Second,
		TraceOut: "t.json", Serve: "127.0.0.1:0", ServeLinger: 2 * time.Second,
	}
	if opts != want {
		t.Errorf("parsed = %+v, want %+v", opts, want)
	}
}

func TestParseFlagsRejectsUnknown(t *testing.T) {
	fs := flag.NewFlagSet("spacecdn", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	if _, err := parseFlags(fs, []string{"-definitely-not-a-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

// TestRegistryWellFormed: ids are unique and non-empty, every entry has a
// description and a runner, and "all" expands to the registry's inAll subset
// in declaration order.
func TestRegistryWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range registry() {
		if e.id == "" || e.desc == "" || e.run == nil {
			t.Errorf("malformed registry entry: %+v", e)
		}
		if seen[e.id] {
			t.Errorf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
	}
	for _, id := range []string{"table1", "workload", "resilience", "resolve-bench", "serve-bench"} {
		if !seen[id] {
			t.Errorf("registry missing %q", id)
		}
	}
}

// TestRunList: -list prints every registered id with its description and runs
// no experiment (it completes instantly, without building a suite).
func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{List: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, e := range registry() {
		if !strings.Contains(out, e.id) || !strings.Contains(out, e.desc) {
			t.Errorf("list output missing %q", e.id)
		}
	}
	if !strings.Contains(out, `not in "all"`) {
		t.Error("list output does not mark benchmark-only experiments")
	}
}

// TestRunResilienceJSON: the CI artifact path — resilience with -json emits a
// parseable sweep whose zero-fault row proves the fault-free identity.
func TestRunResilienceJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{Exp: "resilience", Fast: true, Seed: 1, JSON: true, FaultISLs: -1, FaultPoPs: -1}); err != nil {
		t.Fatal(err)
	}
	var res struct {
		Rows []struct {
			SatFraction  float64
			Requests     int
			Availability float64
			P99Ms        float64
		}
		ZeroFaultIdentical bool
	}
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &res); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(res.Rows) < 3 {
		t.Fatalf("sweep rows = %d", len(res.Rows))
	}
	if !res.ZeroFaultIdentical {
		t.Error("zero-fault row not identical to the plan-free pipeline")
	}
	if res.Rows[0].SatFraction != 0 || res.Rows[0].Availability != 1 {
		t.Errorf("baseline row malformed: %+v", res.Rows[0])
	}
	for i, r := range res.Rows {
		if r.Requests == 0 || r.P99Ms <= 0 {
			t.Errorf("row %d malformed: %+v", i, r)
		}
	}
}

// TestRunWorkersFlag: the workload experiment honors -workers and produces
// the same report text at 1 and 4 workers (determinism through the CLI).
func TestRunWorkersFlag(t *testing.T) {
	var seq, par bytes.Buffer
	if err := run(&seq, options{Exp: "workload", Fast: true, Seed: 3, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := run(&par, options{Exp: "workload", Fast: true, Seed: 3, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Errorf("workload output differs between -workers 1 and 4:\n%s\n---\n%s", seq.String(), par.String())
	}
}

// TestRunParallelBenchJSON: the CI artifact path — parallel-bench with -json
// emits a parseable record with sane fields.
func TestRunParallelBenchJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, options{Exp: "parallel-bench", Fast: true, Seed: 1, JSON: true}); err != nil {
		t.Fatal(err)
	}
	var res struct {
		Requests     int
		SeqWorkers   int
		ParWorkers   int
		SeqReqPerSec float64
		ParReqPerSec float64
		Speedup      float64
		Identical    bool
	}
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &res); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if res.Requests == 0 || res.SeqWorkers != 1 || res.ParWorkers < 1 {
		t.Errorf("malformed result: %+v", res)
	}
	if !res.Identical {
		t.Errorf("parallel run diverged from sequential: %+v", res)
	}
	if res.SeqReqPerSec <= 0 || res.ParReqPerSec <= 0 {
		t.Errorf("non-positive throughput: %+v", res)
	}
}
