package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"spacecdn/internal/telemetry"
)

// syncBuffer lets the test read run()'s output while run is still writing —
// the introspection address line appears before the experiments start.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenLine = regexp.MustCompile(`introspection listening on (http://\S+)`)

// TestRunObservability drives the full observability surface through run():
// series and Perfetto artifacts on disk, plus a live introspection endpoint
// scraped while the process is still serving (the linger window).
func TestRunObservability(t *testing.T) {
	dir := t.TempDir()
	seriesOut := filepath.Join(dir, "series.json")
	traceOut := filepath.Join(dir, "trace.json")
	opts := options{
		Exp: "workload", Fast: true, Seed: 1, TraceSample: 1,
		SeriesOut: seriesOut, SeriesWindow: time.Minute, TraceOut: traceOut,
		Serve: "127.0.0.1:0", ServeLinger: 3 * time.Second,
		FaultISLs: -1, FaultPoPs: -1,
	}
	var out syncBuffer
	done := make(chan error, 1)
	go func() { done <- run(&out, opts) }()

	// Wait for the address line, then scrape the live endpoint.
	var base string
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
		if m := listenLine.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if base == "" {
		t.Fatalf("no introspection address printed:\n%s", out.String())
	}
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	// /metrics and /series answer whether the workload has finished or not;
	// scraping mid-run is the point of the endpoint.
	if code, _ := get("/metrics"); code != 200 {
		t.Errorf("/metrics = %d", code)
	}
	if code, _ := get("/series"); code != 200 {
		t.Errorf("/series = %d", code)
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// The series artifact: windows present, resolve counters in them, and
	// deltas summing to a positive request count; the spatial block rides
	// along.
	raw, err := os.ReadFile(seriesOut)
	if err != nil {
		t.Fatal(err)
	}
	var art telemetry.SeriesArtifact
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatalf("series artifact does not parse: %v", err)
	}
	if art.Series.WindowNs != time.Minute {
		t.Errorf("windowNs = %v, want 1m", art.Series.WindowNs)
	}
	if len(art.Series.Windows) < 2 {
		t.Fatalf("series windows = %d, want the workload's sim span", len(art.Series.Windows))
	}
	var resolved int64
	for _, w := range art.Series.Windows {
		for _, cv := range w.Counters {
			if cv.Name == "spacecdn_resolve_requests_total" {
				resolved += cv.Value
			}
		}
	}
	if resolved == 0 {
		t.Error("no resolve request deltas in any window")
	}
	if len(art.Series.Steps) == 0 {
		t.Error("no sweep steps in the series artifact")
	}
	if art.Spatial == nil || len(art.Spatial.Cells) == 0 {
		t.Error("spatial block missing or empty")
	}

	// The Perfetto artifact parses and carries request slices.
	raw, err = os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var trace telemetry.PerfettoTrace
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("perfetto artifact does not parse: %v", err)
	}
	reqSlices := 0
	for _, ev := range trace.TraceEvents {
		if ev.Cat == "resolve" {
			reqSlices++
		}
	}
	if reqSlices == 0 {
		t.Errorf("perfetto trace has no request slices among %d events", len(trace.TraceEvents))
	}

	for _, want := range []string{"series written to", "perfetto trace written to", "lingering"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
}
