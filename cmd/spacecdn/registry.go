package main

import (
	"fmt"
	"io"

	"time"

	"spacecdn/internal/experiments"
	"spacecdn/internal/measure"
	"spacecdn/internal/report"
	"spacecdn/internal/stats"
)

// experiment is one registry entry: the id the -exp flag accepts, a one-line
// description (-list), whether "all" includes it, and its runner. The
// benchmarks and the resilience sweep stay out of "all" — they rebuild
// systems repeatedly and would dominate a full regeneration run.
type experiment struct {
	id    string
	desc  string
	inAll bool
	run   func(w io.Writer, s *experiments.Suite, opts options) error
}

// registry lists every experiment in presentation order; the "all" expansion
// and runOne dispatch both derive from it, so an entry added here is
// automatically listable, runnable, and (when inAll) part of "all".
func registry() []experiment {
	return []experiment{
		{"table1", "Table 1: distance and median minRTT to the best CDN per country", true, runTable1},
		{"fig2", "Figure 2: median RTT delta (Starlink - terrestrial) per country", true, runFig2},
		{"fig3", "Figure 3: per-CDN-site latency from one city (-city)", true, runFig3},
		{"fig4", "Figure 4: CDF of the HTTP response time difference", true, runFig4},
		{"fig5", "Figure 5: First Contentful Paint box plots", true, runFig5},
		{"fig7", "Figure 7: SpaceCDN latency by ISL hop distance vs AIM references", true, runFig7},
		{"fig8", "Figure 8: SpaceCDN latency under duty-cycled caching", true, runFig8},
		{"ablation-replicas", "Ablation: replicas per plane vs reachability and latency", true, runAblationReplicas},
		{"capacity", "Section 5 storage arithmetic: fleet-wide cache capacity", true, runCapacity},
		{"geoblock", "Extension: spurious geo-blocking via remote PoPs", true, runGeoblock},
		{"gs-expansion", "Extension: ground-segment expansion with local PoPs", true, runGSExpansion},
		{"duty-sweep", "Extension: duty-cycle sweep (one-way accounting)", true, runDutySweep},
		{"striping", "Extension: video striping prefetch ablation", true, runStriping},
		{"wormhole", "Extension: content wormholing vs WAN push", true, runWormhole},
		{"spacevms", "Extension: Space VM handovers", true, runSpaceVMs},
		{"bufferbloat", "Extension: access-link bufferbloat", true, runBufferbloat},
		{"thermal", "Extension: thermal feasibility of duty-cycled caching", true, runThermal},
		{"hitrate", "Extension: edge-cache hit rates for home-region content", true, runHitrate},
		{"rtt-series", "Subscriber RTT sawtooth across satellite handovers (-city)", true, runRTTSeries},
		{"workload", "Resolve workload: hot/warm/cold mix by serving source", true, runWorkload},
		{"resilience", "Resilience sweep: availability, tail latency and source mix vs failure fraction", false, runResilience},
		{"traffic", "Traffic engine: a million-user streaming day through the resolve path", false, runTraffic},
		{"lifecycle", "Content lifecycle: TTL class mix x churn x purge sweep, coalescing, purge floods", false, runLifecycle},
		{"parallel-bench", "Benchmark: batch resolution throughput vs workers", false, runParallelBench},
		{"resolve-bench", "Benchmark: naive vs accelerated resolve pipeline", false, runResolveBench},
		{"sweep-bench", "Benchmark: incremental sweep vs fresh per-step snapshots", false, runSweepBench},
		{"scale-bench", "Benchmark: snapshot, sweep and resolve costs vs constellation size", false, runScaleBench},
		{"serve-bench", "Benchmark: daemon serving core — worker scaling, allocs/req, replay", false, runServeBench},
	}
}

func runTable1(w io.Writer, s *experiments.Suite, opts options) error {
	rows, err := s.Table1()
	if err != nil {
		return err
	}
	if opts.JSON {
		return report.WriteJSON(w, rows)
	}
	t := report.NewTable("Table 1: distance to best CDN and median minRTT",
		"Country", "Terr km", "Terr minRTT ms", "Starlink km", "Starlink minRTT ms")
	for _, r := range rows {
		t.AddRow(r.Name, r.TerrDistKm, r.TerrMinRTT, r.StarDistKm, r.StarMinRTT)
	}
	return t.Render(w)
}

func runFig2(w io.Writer, s *experiments.Suite, opts options) error {
	rows, pops, err := s.Fig2()
	if err != nil {
		return err
	}
	if opts.JSON {
		return report.WriteJSON(w, map[string]interface{}{"deltas": rows, "pops": pops})
	}
	t := report.NewTable("Figure 2: median RTT delta (Starlink - terrestrial) per country",
		"Country", "Delta ms")
	for _, r := range rows {
		t.AddRow(r.Country, r.DeltaMs)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	p := report.NewTable(fmt.Sprintf("Operational PoPs (%d)", len(pops)), "PoP", "City")
	for _, pp := range pops {
		p.AddRow(pp.Name, pp.City)
	}
	return p.Render(w)
}

func runFig3(w io.Writer, s *experiments.Suite, opts options) error {
	res, err := s.Fig3(opts.City)
	if err != nil {
		return err
	}
	if opts.JSON {
		return report.WriteJSON(w, res)
	}
	for _, side := range []struct {
		name   string
		series []measure.CityCDNLatency
	}{
		{"(a) Starlink", res.Starlink},
		{"(b) Terrestrial", res.Terrestrial},
	} {
		t := report.NewTable(
			fmt.Sprintf("Figure 3 %s: median latency from %s per CDN site", side.name, res.City),
			"CDN", "Median ms", "Samples")
		for _, c := range side.series {
			t.AddRow(c.CDNCity, c.MedianMs, c.N)
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

func runFig4(w io.Writer, s *experiments.Suite, opts options) error {
	series, err := s.Fig4()
	if err != nil {
		return err
	}
	if opts.JSON {
		out := map[string][]float64{}
		for _, sr := range series {
			pts := sr.CDF.Points(21)
			xs := make([]float64, len(pts))
			for i, p := range pts {
				xs[i] = p.X
			}
			out[sr.Country] = xs
		}
		return report.WriteJSON(w, out)
	}
	fig := report.Figure{
		Title:  "Figure 4: HTTP response time difference (Starlink - terrestrial)",
		XLabel: "difference ms", YLabel: "CDF",
	}
	for _, sr := range series {
		pts := sr.CDF.Points(41)
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i], ys[i] = p.X, p.P
		}
		srs, err := report.NewSeries(sr.Country, xs, ys)
		if err != nil {
			return err
		}
		fig.Series = append(fig.Series, srs)
	}
	return fig.Render(w)
}

func runFig5(w io.Writer, s *experiments.Suite, opts options) error {
	rows, err := s.Fig5()
	if err != nil {
		return err
	}
	if opts.JSON {
		return report.WriteJSON(w, rows)
	}
	t := report.NewTable("Figure 5: First Contentful Paint (ms)",
		"Country", "Network", "Min", "Q1", "Median", "Q3", "Max", "N")
	for _, r := range rows {
		t.AddRow(r.Country, string(r.Network), r.Box.Min, r.Box.Q1, r.Box.Median, r.Box.Q3, r.Box.Max, r.Box.N)
	}
	return t.Render(w)
}

func runFig7(w io.Writer, s *experiments.Suite, opts options) error {
	res, err := s.Fig7()
	if err != nil {
		return err
	}
	if opts.JSON {
		out := map[string][]float64{}
		for n, cdf := range res.Hop {
			out[fmt.Sprintf("%d-isl", n)] = quantiles(cdf)
		}
		out["starlink"] = quantiles(res.Starlink)
		out["terrestrial"] = quantiles(res.Terrestrial)
		return report.WriteJSON(w, out)
	}
	fig := report.Figure{
		Title:  "Figure 7: SpaceCDN latency by ISL hop distance vs AIM references",
		XLabel: "latency ms", YLabel: "CDF",
	}
	for _, n := range experiments.Fig7HopCounts {
		fig.Series = append(fig.Series, cdfSeries(fmt.Sprintf("%d ISL", n), res.Hop[n]))
	}
	fig.Series = append(fig.Series,
		cdfSeries("starlink (AIM)", res.Starlink),
		cdfSeries("terrestrial (AIM)", res.Terrestrial),
	)
	return fig.Render(w)
}

func runFig8(w io.Writer, s *experiments.Suite, opts options) error {
	rows, terr, err := s.Fig8()
	if err != nil {
		return err
	}
	if opts.JSON {
		return report.WriteJSON(w, map[string]interface{}{"rows": rows, "terrestrialMedianMs": terr})
	}
	t := report.NewTable("Figure 8: SpaceCDN latency under duty-cycled caching (ms)",
		"Cache-enabled", "Min", "Q1", "Median", "Q3", "Max", "N")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d%%", r.FractionPct), r.Box.Min, r.Box.Q1, r.Box.Median, r.Box.Q3, r.Box.Max, r.Box.N)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "terrestrial median reference: %.1f ms\n", terr)
	return err
}

func runAblationReplicas(w io.Writer, s *experiments.Suite, opts options) error {
	rows, err := s.AblationReplicas()
	if err != nil {
		return err
	}
	if opts.JSON {
		return report.WriteJSON(w, rows)
	}
	t := report.NewTable("Ablation: replicas per plane vs reachability",
		"Replicas/plane", "Median ms", "P90 ms", "Median hops", "Max hops", "Reachable")
	for _, r := range rows {
		t.AddRow(r.ReplicasPerPlane, r.MedianRTTMs, r.P90RTTMs, r.MedianHops, r.MaxHops,
			fmt.Sprintf("%.0f%%", r.Reachable*100))
	}
	return t.Render(w)
}

func runCapacity(w io.Writer, _ *experiments.Suite, opts options) error {
	res := experiments.PaperCapacity()
	if opts.JSON {
		return report.WriteJSON(w, res)
	}
	t := report.NewTable("§5 storage arithmetic", "Satellites", "Per-sat TB", "Total PB", "2h videos")
	t.AddRow(res.Satellites, res.PerSatBytes>>40, res.TotalPB, res.VideosStored)
	return t.Render(w)
}

func runGeoblock(w io.Writer, s *experiments.Suite, opts options) error {
	rows, err := s.GeoBlocking()
	if err != nil {
		return err
	}
	if opts.JSON {
		return report.WriteJSON(w, rows)
	}
	t := report.NewTable("Extension E10: spurious geo-blocking (content licensed at home, blocked at the PoP)",
		"Country", "PoP country", "Starlink spurious", "Terrestrial spurious", "Requests")
	for _, r := range rows {
		t.AddRow(r.Country, r.PoPISO,
			fmt.Sprintf("%.1f%%", 100*r.StarlinkSpuriousRate),
			fmt.Sprintf("%.1f%%", 100*r.TerrestrialSpuriousRate), r.Requests)
	}
	return t.Render(w)
}

func runGSExpansion(w io.Writer, s *experiments.Suite, opts options) error {
	rows, err := s.GroundExpansion()
	if err != nil {
		return err
	}
	if opts.JSON {
		return report.WriteJSON(w, rows)
	}
	t := report.NewTable("Extension E11: ground-segment expansion (local PoPs deployed)",
		"Country", "Baseline ms", "Expanded ms", "Baseline km", "Expanded km")
	for _, r := range rows {
		t.AddRow(r.Country, r.BaselineMs, r.ExpandedMs, r.BaselineDist, r.ExpandedDist)
	}
	return t.Render(w)
}

func runDutySweep(w io.Writer, s *experiments.Suite, opts options) error {
	rows, err := s.DutyCycleSweep()
	if err != nil {
		return err
	}
	if opts.JSON {
		return report.WriteJSON(w, rows)
	}
	t := report.NewTable("Extension E12: duty-cycle sweep (one-way accounting, 4 replicas/plane)",
		"Cache-enabled", "Median ms", "P90 ms", "Median hops", "Found")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d%%", r.FractionPct), r.MedianMs, r.P90Ms, r.MedianHops,
			fmt.Sprintf("%.0f%%", 100*r.FoundRate))
	}
	return t.Render(w)
}

func runStriping(w io.Writer, s *experiments.Suite, opts options) error {
	rows, err := s.StripingAblation()
	if err != nil {
		return err
	}
	if opts.JSON {
		return report.WriteJSON(w, rows)
	}
	t := report.NewTable("Extension E13: video striping prefetch ablation",
		"Viewer", "Segments", "Sats", "Cold startup ms", "Warm startup ms", "Warm from space")
	for _, r := range rows {
		t.AddRow(r.City, r.Segments, r.Satellites, r.ColdStartupMs, r.WarmStartupMs,
			fmt.Sprintf("%d/%d", r.WarmFromSpace, r.Segments))
	}
	return t.Render(w)
}

func runWormhole(w io.Writer, s *experiments.Suite, opts options) error {
	rows, err := s.Wormholing()
	if err != nil {
		return err
	}
	if opts.JSON {
		return report.WriteJSON(w, rows)
	}
	t := report.NewTable("Extension E14: content wormholing vs 10 Gbps WAN push",
		"Route", "Object TB", "Orbit transit min", "WAN hours", "Wormhole wins")
	for _, r := range rows {
		t.AddRow(r.Route, r.ObjectTB, r.TransitMin, r.WANHours, r.WormholeWin)
	}
	return t.Render(w)
}

func runSpaceVMs(w io.Writer, s *experiments.Suite, opts options) error {
	rows, err := s.SpaceVMs()
	if err != nil {
		return err
	}
	if opts.JSON {
		return report.WriteJSON(w, rows)
	}
	t := report.NewTable("Extension E15: Space VM handovers (proactive delta sync vs cold migration)",
		"Area", "Handovers", "Mean downtime ms", "Max ms", "Cold total ms", "Availability", "Cold avail")
	for _, r := range rows {
		t.AddRow(r.City, r.Handovers, r.MeanDowntimeMs, r.MaxDowntimeMs, r.ColdDowntimeMs,
			fmt.Sprintf("%.4f", r.Availability), fmt.Sprintf("%.4f", r.ColdAvailability))
	}
	return t.Render(w)
}

func runBufferbloat(w io.Writer, s *experiments.Suite, opts options) error {
	rows, err := s.Bufferbloat()
	if err != nil {
		return err
	}
	if opts.JSON {
		return report.WriteJSON(w, rows)
	}
	t := report.NewTable("Extension E16: access-link bufferbloat (idle vs loaded RTT)",
		"Network", "Median idle ms", "Median loaded ms", "Median inflation", "P90 inflation", ">200ms share", "N")
	for _, r := range rows {
		t.AddRow(string(r.Network), r.MedianIdleMs, r.MedianLoadedMs,
			r.MedianInflation, r.P90Inflation, fmt.Sprintf("%.0f%%", 100*r.Share200), r.N)
	}
	return t.Render(w)
}

func runThermal(w io.Writer, s *experiments.Suite, opts options) error {
	rows, maxDuty, err := s.ThermalFeasibility()
	if err != nil {
		return err
	}
	if opts.JSON {
		return report.WriteJSON(w, map[string]interface{}{"rows": rows, "sustainableDuty": maxDuty})
	}
	t := report.NewTable("Extension E17: thermal feasibility of duty-cycled caching",
		"Cache-enabled", "Peak C", "Time over 30C", "Sustainable")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d%%", r.FractionPct), r.PeakC,
			fmt.Sprintf("%.1f%%", 100*r.OverShare), r.Sustainable)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "passive-cooling envelope sustains up to %.0f%% duty\n", 100*maxDuty)
	return err
}

func runHitrate(w io.Writer, s *experiments.Suite, opts options) error {
	rows, err := s.CacheMissRates()
	if err != nil {
		return err
	}
	if opts.JSON {
		return report.WriteJSON(w, rows)
	}
	t := report.NewTable("Extension E18: edge-cache hit rates for home-region content",
		"Country", "Terr edge", "Terr hit", "Starlink edge", "Starlink hit")
	for _, r := range rows {
		t.AddRow(r.Country, r.TerrestrialEdge, fmt.Sprintf("%.0f%%", 100*r.TerrestrialHit),
			r.StarlinkEdge, fmt.Sprintf("%.0f%%", 100*r.StarlinkHit))
	}
	return t.Render(w)
}

func runRTTSeries(w io.Writer, s *experiments.Suite, opts options) error {
	// A subscriber's latency sawtooth across satellite handovers (paper §2:
	// connectivity changes every few minutes, paths reconfigure every 15 s).
	cityName := opts.City
	if cityName == "" {
		cityName = "Maputo"
	}
	cc, ok := geoCity(cityName)
	if !ok {
		return fmt.Errorf("unknown city %q", cityName)
	}
	rng := stats.NewRand(42)
	series, err := s.Env.LSN.RTTTimeSeries(cc.Loc, cc.Country, 0, 10*time.Minute, rng)
	if err != nil {
		return err
	}
	if opts.JSON {
		return report.WriteJSON(w, series)
	}
	t := report.NewTable(fmt.Sprintf("RTT time series from %s (15s reconfig intervals)", cc.Name),
		"t", "RTT ms", "Serving sat", "Handover")
	for _, sm := range series {
		t.AddRow(sm.At, float64(sm.RTT)/float64(time.Millisecond), sm.UpSat, sm.Handover)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "handover rate: %.2f per minute\n", lsnHandoverRate(series))
	return err
}

func runWorkload(w io.Writer, s *experiments.Suite, opts options) error {
	res, err := s.ResolveWorkload()
	if err != nil {
		return err
	}
	if opts.JSON {
		return report.WriteJSON(w, res)
	}
	t := report.NewTable("Resolve workload: hot/warm/cold mix by serving source",
		"Source", "Requests", "Median ms", "P90 ms", "Mean hops")
	for _, r := range res.Rows {
		t.AddRow(r.Source, r.Requests, r.MedianMs, r.P90Ms, r.MeanHops)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%d requests, %d errors\n", res.Requests, res.Errors)
	return err
}

func runResilience(w io.Writer, s *experiments.Suite, opts options) error {
	res, err := s.Resilience()
	if err != nil {
		return err
	}
	if opts.JSON {
		return report.WriteJSON(w, res)
	}
	t := report.NewTable("Resilience: serving through a degraded constellation",
		"Sat fail", "ISL fail", "PoP fail", "Outages", "Avail", "Median ms", "P99 ms", "P99 infl",
		"Overhead", "ISL", "Ground", "Failovers (up/rep/pop)")
	for _, r := range res.Rows {
		t.AddRow(
			fmt.Sprintf("%.0f%%", 100*r.SatFraction),
			fmt.Sprintf("%.0f%%", 100*r.ISLFraction),
			fmt.Sprintf("%.0f%%", 100*r.PoPFraction),
			r.Outages,
			fmt.Sprintf("%.2f%%", 100*r.Availability),
			r.MedianMs, r.P99Ms,
			fmt.Sprintf("%+.1f%%", r.P99InflationPct),
			fmt.Sprintf("%.0f%%", 100*r.OverheadShare),
			fmt.Sprintf("%.0f%%", 100*r.ISLShare),
			fmt.Sprintf("%.0f%%", 100*r.GroundShare),
			fmt.Sprintf("%d/%d/%d", r.UplinkFailovers, r.ReplicaFailovers, r.PoPFailovers),
		)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "zero-fault pipeline identical to fault-free build: %v\n", res.ZeroFaultIdentical)
	return err
}

func runTraffic(w io.Writer, s *experiments.Suite, opts options) error {
	res, err := s.Traffic()
	if err != nil {
		return err
	}
	if opts.JSON {
		return report.WriteJSON(w, res)
	}
	t := report.NewTable("Traffic engine: a streaming day through the resolve path",
		"Users", "Sim hours", "Requests", "Peak step", "Sustained req/s", "Resolve req/s")
	t.AddRow(res.Users, res.SimHours, res.Requests, res.PeakStepRequests,
		res.SustainedReqPerSec, res.ResolveReqPerSec)
	if err := t.Render(w); err != nil {
		return err
	}
	m := report.NewTable("Serving mix and client latency",
		"Overhead", "ISL", "Ground", "Mean ms", "P50 ms", "P95 ms", "P99 ms", "Errors")
	m.AddRow(
		fmt.Sprintf("%.0f%%", 100*res.OverheadShare),
		fmt.Sprintf("%.0f%%", 100*res.ISLShare),
		fmt.Sprintf("%.0f%%", 100*res.GroundShare),
		res.MeanMs, res.P50Ms, res.P95Ms, res.P99Ms, res.Errors)
	if err := m.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w,
		"churn: %d releases, %d flash crowds, %d regional events; %d sessions opened (%d re-fetches)\n",
		res.Releases, res.FlashCrowds, res.RegionalEvents, res.SessionsOpened, res.SessionRequests)
	return err
}

func runLifecycle(w io.Writer, s *experiments.Suite, opts options) error {
	res, err := s.Lifecycle()
	if err != nil {
		return err
	}
	if opts.JSON {
		return report.WriteJSON(w, res)
	}
	t := report.NewTable("Content lifecycle: serve mix under TTL class mix x churn x purge rate",
		"Mix", "Step s", "Purges", "Requests", "Fresh", "Stale", "Expired", "Miss",
		"Fetches", "Coalesced", "Inconsistent", "Bulk hits", "Promotions")
	for _, r := range res.Rows {
		t.AddRow(r.Mix, r.StepSeconds, r.PurgesPerStep, r.Requests,
			fmt.Sprintf("%.0f%%", 100*r.FreshShare),
			fmt.Sprintf("%.0f%%", 100*r.StaleShare),
			fmt.Sprintf("%.0f%%", 100*r.ExpiredShare),
			fmt.Sprintf("%.0f%%", 100*r.MissShare),
			r.OriginFetches, r.Coalesced, r.Inconsistent, r.BulkHits, r.Promotions)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	f := report.NewTable("Flash crowd coalescing and purge propagation",
		"Crowd reqs", "Cells", "Origin needed", "Flights", "Reduction", "Purge window ms", "Mean ms", "P99 ms")
	f.AddRow(res.FlashRequests, res.FlashCells, res.FlashOriginNeeded, res.FlashOriginFetches,
		fmt.Sprintf("%.0fx", res.ReductionX), res.PurgeWindowMs, res.PurgeMeanMs, res.PurgeP99Ms)
	if err := f.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w,
		"purge reached %d/%d sats (masked: %d/%d with %d dead); TTL response: %v; disabled path identical: %v\n",
		res.PurgeReached, res.PurgeTotalSats, res.MaskedReached, res.PurgeTotalSats,
		res.MaskedDeadSats, res.TTLResponse, res.DisabledIdentical)
	return err
}

func runParallelBench(w io.Writer, s *experiments.Suite, opts options) error {
	res, err := s.ParallelBench()
	if err != nil {
		return err
	}
	if opts.JSON {
		return report.WriteJSON(w, res)
	}
	t := report.NewTable("Parallel engine: batch resolution throughput",
		"Requests", "Workers", "Req/s", "Speedup", "Identical")
	t.AddRow(res.Requests, res.SeqWorkers, res.SeqReqPerSec, 1.0, res.Identical)
	t.AddRow(res.Requests, res.ParWorkers, res.ParReqPerSec, res.Speedup, res.Identical)
	return t.Render(w)
}

func runResolveBench(w io.Writer, s *experiments.Suite, opts options) error {
	res, err := s.ResolveBench()
	if err != nil {
		return err
	}
	if opts.JSON {
		return report.WriteJSON(w, res)
	}
	t := report.NewTable("Resolve acceleration: naive vs memoized single-worker pipeline",
		"Pipeline", "Requests", "Req/s", "Allocs/op", "Speedup", "Identical")
	t.AddRow("naive", res.Requests, res.NaiveReqPerSec, res.NaiveAllocsPerOp, 1.0, res.Identical)
	t.AddRow("accelerated", res.Requests, res.AccelReqPerSec, res.AccelAllocsPerOp, res.Speedup, res.Identical)
	t.AddRow("steady-state", res.SteadyRequests, "", res.SteadyAllocsPerOp, "", res.Identical)
	return t.Render(w)
}

func runSweepBench(w io.Writer, s *experiments.Suite, opts options) error {
	res, err := s.SweepBench()
	if err != nil {
		return err
	}
	if opts.JSON {
		return report.WriteJSON(w, res)
	}
	t := report.NewTable("Sweep engine: incremental advance vs per-step world rebuild",
		"Pipeline", "Steps", "Steps/s", "Allocs/step", "Speedup", "Identical")
	t.AddRow("fresh", res.Steps, res.FreshStepsPerSec, "", 1.0, res.Identical)
	t.AddRow("sweep", res.Steps, res.SweepStepsPerSec, res.SweepAllocsPerStep, res.Speedup, res.Identical)
	return t.Render(w)
}

func runServeBench(w io.Writer, s *experiments.Suite, opts options) error {
	res, err := s.ServeBench()
	if err != nil {
		return err
	}
	if opts.JSON {
		return report.WriteJSON(w, res)
	}
	t := report.NewTable("Serving daemon: closed-loop throughput vs workers (live sweeper)",
		"Workers", "Requests", "Req/s", "p50 ms", "p95 ms", "p99 ms", "Stale")
	for _, r := range res.Rows {
		t.AddRow(r.Workers, res.RequestsPerRow, r.ReqPerSec, r.P50Ms, r.P95Ms, r.P99Ms, r.Stale)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w,
		"scaling %0.2fx; steady allocs/req %v over %d space-served; replay identical: %v\n"+
			"http %0.0f req/s; %d epoch swaps (p99 %0.3f ms), %d stale-epoch serves\n",
		res.ScalingX, res.SteadyAllocsPerReq, res.SteadyRequests, res.ReplayIdentical,
		res.HTTPReqPerSec, res.EpochSwaps, res.EpochSwapP99Ms, res.StaleServed)
	return err
}

func runScaleBench(w io.Writer, s *experiments.Suite, opts options) error {
	res, err := s.ScaleBench()
	if err != nil {
		return err
	}
	if opts.JSON {
		return report.WriteJSON(w, res)
	}
	t := report.NewTable("Mega-constellation scale sweep",
		"Config", "Sats", "Shells", "Grid", "Memo cap", "Snapshot ms", "Sweep steps/s", "Allocs/step", "Resolve req/s")
	for _, p := range res.Points {
		t.AddRow(p.Name, p.Sats, p.Shells, fmt.Sprintf("%dx%d", p.GridRows, p.GridCols),
			p.MemoCap, p.SnapshotBuildMs, p.SweepStepsPerSec, p.SweepAllocsPerStep, p.ResolveReqPerSec)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "resolve sub-linear in satellite count: %v; sweep zero-alloc at all scales: %v\n",
		res.ResolveSubLinear, res.SweepZeroAlloc)
	return err
}
