// Command spacecdnd is the long-running SpaceCDN serving daemon: an HTTP
// front end over one deployed system, with a background sweeper advancing
// the constellation by epoch publication (DESIGN.md §16).
//
// Usage:
//
//	spacecdnd [-addr HOST:PORT] [-seed N] [-step DUR] [-interval DUR]
//	          [-cities N] [-replay-seed N] [-trace-sample RATE]
//	          [-burst N [-burst-workers N] [-burst-http]]
//	          [-metrics-out FILE]
//
// The daemon deploys a default constellation, places the standard
// hot/warm/cold serving workload (over the -cities largest Starlink
// cities), attaches a content-lifecycle manager, and serves:
//
//	/resolve?lat=&lon=&iso2=&obj=   resolve one request on the current epoch
//	/metrics /series /traces /healthz /debug/pprof   telemetry introspection
//
// Every -interval of wall time the sweeper publishes a fresh epoch -step
// further into sim time; requests pin epochs with one atomic load and are
// never blocked by the swap.
//
// With -burst N the daemon drives itself: it boots, fires N closed-loop
// requests from -burst-workers workers (over real HTTP sockets with
// -burst-http, in-process otherwise), prints the loadgen summary, shuts
// down cleanly and exits 0 — the verify.sh serve stage runs exactly this.
// Without -burst it serves until SIGINT/SIGTERM.
//
// -metrics-out writes the accumulated telemetry on shutdown (Prometheus
// text for .prom/.txt files, a JSON snapshot otherwise — the format
// scripts/checkmetrics.go consumes). -replay-seed switches request rng to
// per-request-index streams so a recorded request log replays
// byte-identically (see internal/serve.Replay).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"spacecdn/internal/lifecycle"
	"spacecdn/internal/measure"
	"spacecdn/internal/serve"
	"spacecdn/internal/serve/loadgen"
	"spacecdn/internal/spacecdn"
	"spacecdn/internal/telemetry"
)

// options collects every flag so parsing round-trips in tests and run()
// has one stable signature.
type options struct {
	Addr        string
	Seed        int64
	Step        time.Duration
	Interval    time.Duration
	Cities      int
	ReplaySeed  int64
	TraceSample float64

	Burst        int
	BurstWorkers int
	BurstHTTP    bool

	MetricsOut string
}

// defaultOptions mirrors the flag defaults: a live local daemon sweeping
// 15 s of sim time every 100 ms.
func defaultOptions() options {
	cfg := serve.DefaultConfig()
	return options{
		Addr:         "127.0.0.1:8080",
		Seed:         cfg.Seed,
		Step:         cfg.Step,
		Interval:     cfg.Interval,
		Cities:       12,
		TraceSample:  0.01,
		BurstWorkers: 4,
	}
}

// parseFlags binds the daemon's flags onto an options value and parses args.
func parseFlags(fs *flag.FlagSet, args []string) (options, error) {
	opts := defaultOptions()
	fs.StringVar(&opts.Addr, "addr", opts.Addr, "HTTP listen address (host:0 picks a port; empty = in-process only)")
	fs.Int64Var(&opts.Seed, "seed", opts.Seed, "seed for per-connection rng streams")
	fs.DurationVar(&opts.Step, "step", opts.Step, "sim time each epoch advances")
	fs.DurationVar(&opts.Interval, "interval", opts.Interval, "wall-clock period between epoch swaps (<= 0 pins the first epoch)")
	fs.IntVar(&opts.Cities, "cities", opts.Cities, "Starlink cities the serving workload spans")
	fs.Int64Var(&opts.ReplaySeed, "replay-seed", opts.ReplaySeed, "non-zero switches to per-request-index rng streams for byte-reproducible replay")
	fs.Float64Var(&opts.TraceSample, "trace-sample", opts.TraceSample, "fraction of requests retained as telemetry traces")
	fs.IntVar(&opts.Burst, "burst", opts.Burst, "self-drive N requests, print the summary and exit (0 = serve until SIGINT)")
	fs.IntVar(&opts.BurstWorkers, "burst-workers", opts.BurstWorkers, "closed-loop workers for -burst")
	fs.BoolVar(&opts.BurstHTTP, "burst-http", opts.BurstHTTP, "drive the -burst over real HTTP sockets instead of in-process")
	fs.StringVar(&opts.MetricsOut, "metrics-out", opts.MetricsOut, "write telemetry on shutdown (.prom/.txt: Prometheus text, else JSON snapshot)")
	if err := fs.Parse(args); err != nil {
		return opts, err
	}
	return opts, nil
}

func main() {
	opts, err := parseFlags(flag.CommandLine, os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if err := run(os.Stdout, opts, nil); err != nil {
		fmt.Fprintln(os.Stderr, "spacecdnd:", err)
		os.Exit(1)
	}
}

// run boots the daemon and blocks until the burst finishes or stop (nil
// means OS signals) fires. It owns the full lifecycle: deploy, serve,
// drain, export, close.
func run(w io.Writer, opts options, stop <-chan struct{}) error {
	env, err := measure.NewEnvironment()
	if err != nil {
		return err
	}
	sys, err := spacecdn.NewSystem(spacecdn.DefaultConfig(), env.Constellation, env.LSN)
	if err != nil {
		return err
	}
	sys.SetTelemetry(telemetry.New(opts.TraceSample))
	sys.SetLifecycle(lifecycle.NewManager(lifecycle.DefaultPolicy(), env.Constellation.Total()))

	srv, err := serve.New(sys, serve.Config{
		Addr:       opts.Addr,
		Seed:       opts.Seed,
		Step:       opts.Step,
		Interval:   opts.Interval,
		ReplaySeed: opts.ReplaySeed,
	})
	if err != nil {
		return err
	}
	wl, err := srv.PlaceWorkload(opts.Cities)
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	if addr := srv.Addr(); addr != "" {
		fmt.Fprintf(w, "spacecdnd serving on http://%s (epoch %d, step %v every %v)\n",
			addr, srv.Epoch().Seq(), opts.Step, opts.Interval)
	}

	if opts.Burst > 0 {
		cfg := loadgen.Config{Workers: opts.BurstWorkers, Requests: opts.Burst}
		if opts.BurstHTTP {
			if srv.Addr() == "" {
				return fmt.Errorf("-burst-http needs a listener; set -addr")
			}
			cfg.Mode = loadgen.HTTP
			cfg.BaseURL = "http://" + srv.Addr()
		}
		res, err := loadgen.Run(srv, wl, cfg)
		if err != nil {
			return err
		}
		st := srv.Stats()
		fmt.Fprintf(w, "burst: %d requests, %d errors, %0.0f req/s (p50 %0.3f ms, p95 %0.3f ms, p99 %0.3f ms)\n",
			res.Requests, res.Errors, res.ReqPerSec, res.P50Ms, res.P95Ms, res.P99Ms)
		fmt.Fprintf(w, "epochs: %d published (swap p99 %0.3f ms), %d stale-epoch serves\n",
			st.Epochs, st.SwapP99Ms, st.StaleServed)
	} else {
		if stop == nil {
			sig := make(chan os.Signal, 1)
			signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
			defer signal.Stop(sig)
			<-sig
		} else {
			<-stop
		}
		fmt.Fprintln(w, "shutting down")
	}

	if err := srv.Close(); err != nil {
		return err
	}
	if opts.MetricsOut != "" {
		if err := writeMetrics(srv.Telemetry(), opts.MetricsOut); err != nil {
			return fmt.Errorf("metrics-out: %w", err)
		}
		fmt.Fprintf(w, "telemetry written to %s\n", opts.MetricsOut)
	}
	return nil
}

// writeMetrics exports the daemon's telemetry, choosing the format from
// the file extension like cmd/spacecdn: Prometheus text for .prom/.txt,
// JSON snapshot otherwise.
func writeMetrics(tel *telemetry.Telemetry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch {
	case strings.HasSuffix(path, ".prom"), strings.HasSuffix(path, ".txt"):
		err = tel.WritePrometheus(f)
	default:
		err = tel.WriteJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
