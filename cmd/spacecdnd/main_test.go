package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spacecdn/internal/telemetry"
)

func TestParseFlagsRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("spacecdnd", flag.ContinueOnError)
	opts, err := parseFlags(fs, []string{
		"-addr", "127.0.0.1:0", "-seed", "7", "-step", "30s", "-interval", "2ms",
		"-cities", "6", "-replay-seed", "99", "-trace-sample", "0.5",
		"-burst", "120", "-burst-workers", "3", "-burst-http",
		"-metrics-out", "m.json",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := options{
		Addr: "127.0.0.1:0", Seed: 7, Step: 30 * time.Second, Interval: 2 * time.Millisecond,
		Cities: 6, ReplaySeed: 99, TraceSample: 0.5,
		Burst: 120, BurstWorkers: 3, BurstHTTP: true,
		MetricsOut: "m.json",
	}
	if opts != want {
		t.Fatalf("parsed %+v, want %+v", opts, want)
	}
	if def := defaultOptions(); def.Burst != 0 || def.Interval <= 0 || def.Addr == "" {
		t.Fatalf("implausible defaults %+v", def)
	}
}

// TestBurstRun is the end-to-end daemon smoke: boot with a live sweeper,
// self-drive a burst over real HTTP sockets, export telemetry, exit clean.
func TestBurstRun(t *testing.T) {
	metrics := filepath.Join(t.TempDir(), "METRICS.json")
	var out bytes.Buffer
	opts := defaultOptions()
	opts.Addr = "127.0.0.1:0"
	opts.Interval = 2 * time.Millisecond
	opts.Cities = 6
	opts.Burst = 120
	opts.BurstWorkers = 2
	opts.BurstHTTP = true
	opts.TraceSample = 0.05
	opts.MetricsOut = metrics
	if err := run(&out, opts, nil); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, want := range []string{"spacecdnd serving on http://", "burst: 120 requests, 0 errors", "epochs:", "telemetry written to"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics artifact not a telemetry snapshot: %v", err)
	}
	var served, swaps int64
	for _, c := range snap.Counters {
		switch c.Name {
		case "serve_requests_total":
			served = c.Value
		case "serve_epoch_swaps_total":
			swaps = c.Value
		}
	}
	if served != 120 || swaps < 1 {
		t.Fatalf("exported serve counters: requests=%d swaps=%d, want 120 and >= 1", served, swaps)
	}
}

// TestServeUntilStop covers the daemon's long-running mode: it serves until
// the stop channel fires, then drains and exits.
func TestServeUntilStop(t *testing.T) {
	var out bytes.Buffer
	opts := defaultOptions()
	opts.Addr = "127.0.0.1:0"
	opts.Interval = 2 * time.Millisecond
	opts.Cities = 4
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- run(&out, opts, stop) }()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down after stop")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("output missing shutdown notice:\n%s", out.String())
	}
}
