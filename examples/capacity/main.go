// Capacity (paper §5): reproduce the storage arithmetic behind "the total
// storage capacity that the satellite constellation might be able to host
// will be upwards of 900 PB i.e. > 300M 2-hour long 1080p videos", and size
// a per-region catalog against a single shell.
package main

import (
	"fmt"
	"log"

	"spacecdn/internal/content"
	"spacecdn/internal/experiments"
	"spacecdn/internal/geo"
)

func main() {
	// The paper's fleet-level arithmetic.
	paper := experiments.PaperCapacity()
	fmt.Printf("paper fleet:  %d satellites x %d TB = %.0f PB = %d 2-hour 1080p videos\n",
		paper.Satellites, paper.PerSatBytes>>40, paper.TotalPB, paper.VideosStored)

	// The same arithmetic for the simulated Shell 1.
	shell1 := experiments.Capacity(1584, 150<<40, 3<<30)
	fmt.Printf("shell 1 only: %d satellites x %d TB = %.0f PB = %d videos\n",
		shell1.Satellites, shell1.PerSatBytes>>40, shell1.TotalPB, shell1.VideosStored)

	// How much of a realistic regional catalog fits on ONE satellite?
	cfg := content.DefaultCatalogConfig()
	cat, err := content.GenerateCatalog(cfg)
	if err != nil {
		log.Fatal(err)
	}
	const perSat = int64(150) << 40
	for _, region := range []geo.Region{geo.RegionAfrica, geo.RegionSouthAmerica} {
		var used int64
		count := 0
		for i := 0; i < cat.Len(); i++ {
			o := cat.ByRank(region, i)
			if used+o.Bytes > perSat {
				break
			}
			used += o.Bytes
			count++
		}
		fmt.Printf("one satellite holds the top %d objects of the %v catalog (%.1f TB of %d TB)\n",
			count, region, float64(used)/(1<<40), perSat>>40)
	}
}
