// Content bubbles (paper §5): prefetch regionally popular content onto
// satellites approaching a region and evict the content of the region they
// leave. The example measures the fraction of each region's top content
// servable from satellites currently overhead, before and after bubble
// management, and shows bubbles following the constellation's motion.
package main

import (
	"fmt"
	"log"
	"time"

	"spacecdn/internal/constellation"
	"spacecdn/internal/content"
	"spacecdn/internal/geo"
	"spacecdn/internal/groundseg"
	"spacecdn/internal/lsn"
	"spacecdn/internal/spacecdn"
)

func main() {
	consts, err := constellation.New(constellation.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	ground := groundseg.NewCatalog()
	access := lsn.NewModel(consts, ground, lsn.DefaultConfig())
	sys, err := spacecdn.NewSystem(spacecdn.DefaultConfig(), consts, access)
	if err != nil {
		log.Fatal(err)
	}
	cat, err := content.GenerateCatalog(content.DefaultCatalogConfig())
	if err != nil {
		log.Fatal(err)
	}
	mgr := spacecdn.NewBubbleManager(sys, cat, spacecdn.DefaultBubbleConfig())

	observers := []struct {
		city   string
		region geo.Region
	}{
		{"Maputo, MZ", geo.RegionAfrica},
		{"Buenos Aires, AR", geo.RegionSouthAmerica},
		{"Tokyo, JP", geo.RegionAsia},
	}

	snap := consts.Snapshot(0)
	fmt.Println("local hit rate of the region's top content from overhead satellites:")
	fmt.Printf("%-18s %10s", "city", "no bubbles")
	for _, o := range observers {
		city, _ := geo.CityByName(o.city)
		fmt.Printf("\n%-18s %9.0f%%", o.city, 100*mgr.LocalHitRate(city.Loc, o.region, snap))
	}

	changed := mgr.Update(0)
	fmt.Printf("\n\nbubble update at t=0 retargeted %d satellites\n", changed)
	fmt.Printf("%-18s %10s", "city", "bubbles on")
	for _, o := range observers {
		city, _ := geo.CityByName(o.city)
		fmt.Printf("\n%-18s %9.0f%%", o.city, 100*mgr.LocalHitRate(city.Loc, o.region, snap))
	}

	// Let the constellation move half an orbit and refresh.
	later := 45 * time.Minute
	changed = mgr.Update(later)
	snapLater := consts.Snapshot(later)
	fmt.Printf("\n\nafter %v, %d satellites crossed regions and re-bubbled\n", later, changed)
	for _, o := range observers {
		city, _ := geo.CityByName(o.city)
		fmt.Printf("%-18s %9.0f%%\n", o.city, 100*mgr.LocalHitRate(city.Loc, o.region, snapLater))
	}

	// Show one satellite's journey.
	sat := constellation.SatID(0)
	fmt.Println("\nsatellite 0's bubble as it moves:")
	for t := time.Duration(0); t <= 90*time.Minute; t += 15 * time.Minute {
		sub := consts.Elements(sat).SubPoint(t)
		fmt.Printf("  t=%-8v subpoint %-22v region %v\n", t, sub, mgr.RegionUnder(sat, t))
	}
}
