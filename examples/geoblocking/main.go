// Geo-blocking (paper §1-§2): "Starlink subscribers experience unwarranted
// geo-blocking from CDNs when their connections are routed to PoPs deployed
// in countries where the requested content is geo-blocked." The example
// builds a licensed catalog, then shows the same subscriber being served
// terrestrially and spuriously blocked over the LSN — and that none of the
// standard request-routing techniques (anycast, DNS redirection, ECS,
// GeoIP) can fix it, because every signal points at the PoP.
package main

import (
	"fmt"
	"log"

	"spacecdn/internal/cdn"
	"spacecdn/internal/content"
	"spacecdn/internal/geo"
	"spacecdn/internal/groundseg"
	"spacecdn/internal/stats"
	"spacecdn/internal/terrestrial"
)

func main() {
	cat, err := content.GenerateCatalog(content.DefaultCatalogConfig())
	if err != nil {
		log.Fatal(err)
	}
	db := cdn.GenerateNationalLicenses(cat, 0.25, 1)
	fmt.Printf("catalog: %d objects, %d under national licenses\n", cat.Len(), db.Len())

	ground := groundseg.NewCatalog()
	client, _ := geo.CityByName("Maputo, MZ")
	pop, _ := ground.AssignPoP("MZ")
	fmt.Printf("subscriber in %s; Starlink PoP in %s (%s)\n\n", client.Name, pop.City, pop.Country)

	// Find a Mozambique-licensed object.
	var mzOnly content.Object
	for i := 0; i < cat.Len(); i++ {
		o := cat.ByRank(geo.RegionAfrica, i)
		l := db.Lookup(o.ID)
		if !l.Unrestricted() && l.Allows("MZ") {
			mzOnly = o
			break
		}
	}
	if mzOnly.ID == "" {
		log.Fatal("no MZ-licensed object in the catalog")
	}
	fmt.Printf("object %s is licensed for Mozambique only\n", mzOnly.ID)

	terr := cdn.CheckAccess(db, mzOnly.ID, "MZ", "MZ")
	sl := cdn.CheckAccess(db, mzOnly.ID, pop.Country, "MZ")
	fmt.Printf("  terrestrial request: allowed=%v\n", terr.Allowed)
	fmt.Printf("  starlink request:    allowed=%v spurious=%v (geolocated to %s)\n\n",
		sl.Allowed, sl.Spurious, sl.GeolocatedISO)

	// No mapping technique rescues the subscriber: every signal the CDN can
	// see points at the PoP.
	network, err := cdn.New(cdn.DefaultConfig(), terrestrial.NewModel())
	if err != nil {
		log.Fatal(err)
	}
	vTerr := cdn.TerrestrialVantage(client.Loc)
	vLSN := cdn.LSNVantage(client.Loc, pop.Loc)
	fmt.Println("request routing per technique (selected edge, mapping error):")
	for _, m := range []cdn.RoutingMethod{
		cdn.MethodAnycast, cdn.MethodDNSResolver, cdn.MethodDNSECS, cdn.MethodGeoIP,
	} {
		et := network.SelectEdge(m, vTerr, nil)
		es := network.SelectEdge(m, vLSN, nil)
		fmt.Printf("  %-13s terrestrial -> %-10s (%5.0f km)   starlink -> %-10s (%5.0f km)\n",
			m, et.City.Name, network.MappingErrorKm(m, vTerr),
			es.City.Name, network.MappingErrorKm(m, vLSN))
	}

	// Aggregate spurious-block rate over a request stream.
	rng := stats.NewRand(2)
	var slStats cdn.GeoBlockStats
	for i := 0; i < 2000; i++ {
		obj := cat.Sample(geo.RegionAfrica, rng)
		d := cdn.CheckAccess(db, obj.ID, pop.Country, "MZ")
		slStats.Record(db, obj.ID, d, "MZ")
	}
	fmt.Printf("\nstarlink request stream from %s: %v\n", client.Name, slStats)
}
