// Maputo case study (paper Figure 3): compare the CDN sites reachable from
// Maputo, Mozambique over Starlink and over a terrestrial ISP, and show the
// inversion the paper highlights — over Starlink the nearest usable CDN is
// in Europe, while terrestrially it is in Maputo itself.
package main

import (
	"fmt"
	"log"
	"os"

	"spacecdn/internal/experiments"
	"spacecdn/internal/report"
)

func main() {
	suite, err := experiments.NewSuite(true /* fast */, 42)
	if err != nil {
		log.Fatal(err)
	}
	res, err := suite.Fig3("Maputo")
	if err != nil {
		log.Fatal(err)
	}

	a := report.NewTable("(a) Starlink: median latency per CDN site from Maputo",
		"CDN site", "Median ms")
	for i, c := range res.Starlink {
		if i >= 8 {
			break
		}
		a.AddRow(c.CDNCity, c.MedianMs)
	}
	if err := a.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	b := report.NewTable("(b) Terrestrial: median latency per CDN site from Maputo",
		"CDN site", "Median ms")
	for i, c := range res.Terrestrial {
		if i >= 8 {
			break
		}
		b.AddRow(c.CDNCity, c.MedianMs)
	}
	if err := b.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("Starlink optimum:    %s at %.0f ms (the paper observes Frankfurt at ~160 ms)\n",
		res.Starlink[0].CDNCity, res.Starlink[0].MedianMs)
	fmt.Printf("Terrestrial optimum: %s at %.0f ms (the paper observes Maputo at ~20 ms)\n",
		res.Terrestrial[0].CDNCity, res.Terrestrial[0].MedianMs)
}
