// Quickstart: build the Starlink Shell 1 constellation, deploy SpaceCDN on
// it, place one object, and fetch it from three client locations — showing
// the three resolution stages of the paper's Figure 6 (overhead satellite,
// ISL neighbour, ground fallback).
package main

import (
	"fmt"
	"log"
	"time"

	"spacecdn/internal/constellation"
	"spacecdn/internal/content"
	"spacecdn/internal/geo"
	"spacecdn/internal/groundseg"
	"spacecdn/internal/lsn"
	"spacecdn/internal/spacecdn"
	"spacecdn/internal/stats"
)

func main() {
	// 1. The constellation: 72 planes x 22 satellites at 550 km.
	consts, err := constellation.New(constellation.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("constellation: %d satellites, orbital period %v\n",
		consts.Total(), consts.Config().Walker.RevisitPeriod().Round(time.Second))

	// 2. The ground segment and the LSN access model (the status quo path).
	ground := groundseg.NewCatalog()
	access := lsn.NewModel(consts, ground, lsn.DefaultConfig())

	// 3. SpaceCDN on top.
	sys, err := spacecdn.NewSystem(spacecdn.DefaultConfig(), consts, access)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Place a popular object with 4 replicas per orbital plane — the
	// paper's density for <= 5 hop reachability.
	obj := content.Object{ID: "news-frontpage", Bytes: 2 << 20, Region: geo.RegionAfrica}
	placed, err := spacecdn.Apply(sys, spacecdn.PerPlaneSpacing{ReplicasPerPlane: 4}, obj)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed %d replicas of %s (%.1f%% of the fleet)\n\n",
		placed, obj.ID, 100*float64(placed)/float64(consts.Total()))

	// 5. Fetch it from three places.
	rng := stats.NewRand(1)
	snap := consts.Snapshot(0)
	clients := []struct {
		name string
		iso  string
	}{
		{"Maputo, MZ", "MZ"},
		{"Nairobi, KE", "KE"},
		{"Frankfurt, DE", "DE"},
	}
	for _, c := range clients {
		city, ok := geo.CityByName(c.name)
		if !ok {
			log.Fatalf("unknown city %s", c.name)
		}
		res, err := sys.Resolve(city.Loc, c.iso, obj, snap, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s -> served from %-8s (%d hops) in %6.1f ms\n",
			c.name, res.Source, res.Hops, float64(res.RTT)/float64(time.Millisecond))
	}

	// 6. Compare with the status quo: the same fetch via the ground CDN.
	fmt.Println()
	maputo, _ := geo.CityByName("Maputo, MZ")
	path, err := access.ResolvePath(maputo.Loc, "MZ", snap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("status quo for Maputo: %v\n", path)
	fmt.Printf("ground-CDN RTT (via %s PoP): %.1f ms\n",
		path.PoP.Name, float64(access.MinRTTToPoP(path))/float64(time.Millisecond))
}
