// Space VMs (paper §5): run a stateful service (think: the coordination
// server of a multiplayer game) for a metro area on the satellites passing
// overhead, migrating the VM's state deltas to the next serving satellite
// over ISLs. Compare proactive delta streaming with cold migration.
package main

import (
	"fmt"
	"log"
	"time"

	"spacecdn/internal/constellation"
	"spacecdn/internal/geo"
	"spacecdn/internal/groundseg"
	"spacecdn/internal/lsn"
	"spacecdn/internal/spacecdn"
)

func main() {
	consts, err := constellation.New(constellation.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	access := lsn.NewModel(consts, groundseg.NewCatalog(), lsn.DefaultConfig())
	sys, err := spacecdn.NewSystem(spacecdn.DefaultConfig(), consts, access)
	if err != nil {
		log.Fatal(err)
	}

	area, _ := geo.CityByName("Buenos Aires, AR")
	dur := 45 * time.Minute

	lead, err := sys.VMPlacementLeadTime(area.Loc, 0, 30*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving area: %s — next satellite known %v in advance\n", area.Name, lead.Round(time.Second))

	for _, cfg := range []struct {
		name string
		vm   spacecdn.VMConfig
	}{
		{"proactive delta sync", spacecdn.DefaultVMConfig()},
		{"cold migration", func() spacecdn.VMConfig {
			c := spacecdn.DefaultVMConfig()
			c.Proactive = false
			return c
		}()},
	} {
		res, err := sys.SimulateVMService(area.Loc, 0, dur, cfg.vm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s over %v:\n", cfg.name, dur)
		fmt.Printf("  handovers:      %d\n", len(res.Handovers))
		fmt.Printf("  total downtime: %v (max %v per handover)\n",
			res.TotalDowntime.Round(time.Millisecond), res.MaxDowntime.Round(time.Millisecond))
		fmt.Printf("  availability:   %.4f\n", res.Availability)
		fmt.Printf("  sync traffic:   %.1f GB\n", float64(res.SyncBytes)/(1<<30))
		if len(res.Handovers) > 0 {
			h := res.Handovers[0]
			fmt.Printf("  first handover: sat %d -> sat %d (%d ISL hops) at %v\n",
				h.From, h.To, h.Hops, h.At.Round(time.Second))
		}
	}
}
