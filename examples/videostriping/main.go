// Video striping (paper §4): stripe a DASH video across the satellites that
// will successively be overhead of a viewer in Buenos Aires, preload the
// stripes to hide the bent-pipe latency, and compare playback with and
// without preloading.
package main

import (
	"fmt"
	"log"
	"time"

	"spacecdn/internal/constellation"
	"spacecdn/internal/content"
	"spacecdn/internal/geo"
	"spacecdn/internal/groundseg"
	"spacecdn/internal/lsn"
	"spacecdn/internal/spacecdn"
	"spacecdn/internal/stats"
)

func main() {
	consts, err := constellation.New(constellation.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	ground := groundseg.NewCatalog()
	access := lsn.NewModel(consts, ground, lsn.DefaultConfig())
	sys, err := spacecdn.NewSystem(spacecdn.DefaultConfig(), consts, access)
	if err != nil {
		log.Fatal(err)
	}

	// A 30-minute 1080p match stream, 10-second DASH segments.
	match := content.Object{
		ID: "superclasico-2026", Bytes: 1 << 30,
		Region: geo.RegionSouthAmerica, Video: true,
	}
	video, err := content.Segmentize(match, 30*time.Minute, 10*time.Second, 4_500_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("video: %d segments, %.1f GB, %v\n",
		len(video.Segments), float64(video.TotalBytes())/(1<<30), video.Duration())

	viewer, _ := geo.CityByName("Buenos Aires, AR")
	plan, err := sys.PlanStripes(viewer.Loc, video, 0)
	if err != nil {
		log.Fatal(err)
	}
	sats := plan.Satellites()
	fmt.Printf("stripe plan: %d serving satellites across the playback window\n", len(sats))
	for i, a := range plan.Assignments {
		if i%36 != 0 { // print one line per ~6 minutes
			continue
		}
		fmt.Printf("  seg %3d -> sat %4d (window %v - %v)\n",
			a.Segment.Index, a.Sat, a.Window.Start, a.Window.End)
	}

	cfg := spacecdn.DefaultPlaybackConfig()

	// Cold: no preloading — every segment takes the bent pipe.
	cold, err := sys.SimulatePlayback(plan, cfg, stats.NewRand(1))
	if err != nil {
		log.Fatal(err)
	}

	// Warm: stripes preloaded onto their satellites ahead of time.
	n := sys.Preload(plan)
	warm, err := sys.SimulatePlayback(plan, cfg, stats.NewRand(1))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\npreloaded %d stripes onto %d satellites\n", n, len(sats))
	fmt.Printf("%-22s %12s %8s %12s %10s\n", "", "startup", "stalls", "stall time", "from space")
	fmt.Printf("%-22s %12v %8d %12v %9d%%\n", "cold (bent pipe)",
		cold.StartupDelay.Round(time.Millisecond), cold.Stalls, cold.StallTime.Round(time.Millisecond),
		100*cold.FromSpace/len(video.Segments))
	fmt.Printf("%-22s %12v %8d %12v %9d%%\n", "striped + preloaded",
		warm.StartupDelay.Round(time.Millisecond), warm.Stalls, warm.StallTime.Round(time.Millisecond),
		100*warm.FromSpace/len(video.Segments))
}
