module spacecdn

go 1.22
