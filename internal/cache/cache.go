// Package cache implements the byte-capacity caches used by both the
// terrestrial CDN edges and the SpaceCDN satellite caches: LRU, LFU and
// TTL-wrapped variants, plus a geography-aware eviction policy for the
// paper's "content bubbles" (§5) — evict objects whose popularity region the
// satellite is leaving.
//
// All caches are instrumented (hits, misses, evictions, bytes) and safe for
// concurrent use.
package cache

import (
	"container/list"
	"fmt"
	"sync"
	"time"
)

// Key identifies a cached object.
type Key string

// Item is a cached object's metadata. Value payloads are not stored — the
// simulator tracks placement and sizes, not contents.
type Item struct {
	Key  Key
	Size int64
	// Tag is opaque metadata the eviction policy may use (the content
	// bubble policy stores the object's popularity region here).
	Tag string

	// Lifecycle metadata (internal/lifecycle). Caches carry these fields
	// opaquely — they never interpret them; classification of an entry as
	// fresh / stale-revalidate / expired happens in the serving path. The
	// zero values mean "unversioned, immutable": exactly the semantics every
	// pre-lifecycle caller gets without changing a line.
	Version    int64         // content version this replica holds
	ExpiresAt  time.Duration // sim time the entry stops being fresh (0 = never)
	StaleUntil time.Duration // sim time the stale-revalidate grace ends (0 = none)
}

// EvictionReason classifies why an item left a cache.
type EvictionReason int

// Eviction reasons. numEvictionReasons must stay last — the name table is
// sized by it, so an added reason without a name fails the round-trip test.
const (
	// EvictCapacity is byte-capacity pressure: the policy's usual victim.
	EvictCapacity EvictionReason = iota
	// EvictRegionChange is the geo-aware policy shedding content tagged for
	// a region the satellite is leaving (the paper's content bubbles, §5).
	EvictRegionChange
	// EvictTTLExpired is the lifecycle layer dropping an entry whose TTL and
	// stale-revalidate grace both ran out before a fresh fill replaced it.
	EvictTTLExpired
	// EvictPurged is a control-plane purge invalidating the entry: the
	// satellite received the purge flood and dropped the stale version.
	EvictPurged

	numEvictionReasons // keep last
)

// evictionReasonNames is the exhaustive name table; indexed by reason.
var evictionReasonNames = [numEvictionReasons]string{
	EvictCapacity:     "capacity",
	EvictRegionChange: "region-change",
	EvictTTLExpired:   "ttl-expired",
	EvictPurged:       "purged",
}

func (r EvictionReason) String() string {
	if r < 0 || r >= numEvictionReasons || evictionReasonNames[r] == "" {
		return fmt.Sprintf("evictionreason(%d)", int(r))
	}
	return evictionReasonNames[r]
}

// EvictionReasonFromString inverts String for the named reasons.
func EvictionReasonFromString(s string) (EvictionReason, bool) {
	for r, name := range evictionReasonNames {
		if name == s {
			return EvictionReason(r), true
		}
	}
	return 0, false
}

// EvictionReasons lists every defined reason, for exhaustive iteration in
// telemetry wiring and tests.
func EvictionReasons() []EvictionReason {
	out := make([]EvictionReason, numEvictionReasons)
	for i := range out {
		out[i] = EvictionReason(i)
	}
	return out
}

// Stats counts cache activity. Retrieved via the Stats method; the zero
// value is a valid empty count.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Inserts   int64
	// ByReason breaks Evictions down by cause; entries sum to Evictions.
	ByReason [numEvictionReasons]int64
}

// EvictionsFor returns the eviction count attributed to one reason.
func (s Stats) EvictionsFor(r EvictionReason) int64 {
	if r < 0 || r >= numEvictionReasons {
		return 0
	}
	return s.ByReason[r]
}

// HitRate returns hits/(hits+misses), or 0 when no lookups happened.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is the common interface of all eviction policies.
type Cache interface {
	// Get reports whether the key is cached and marks it used.
	Get(k Key) bool
	// Peek reports whether the key is cached without side effects.
	Peek(k Key) bool
	// Put inserts an item, evicting as needed. It reports whether the item
	// was admitted (an item larger than the capacity is rejected).
	Put(it Item) bool
	// Entry returns the cached item's metadata without side effects (no
	// recency or frequency update) — the lifecycle layer reads entry
	// versions and expiry stamps through it on the resolve path.
	Entry(k Key) (Item, bool)
	// Remove deletes a key if present.
	Remove(k Key) bool
	// Drop deletes a key if present and counts it as an eviction attributed
	// to the given reason (Remove counts nothing). The lifecycle layer uses
	// it for TTL-expiry and purge invalidations so the eviction-reason
	// telemetry sees them.
	Drop(k Key, reason EvictionReason) bool
	// Len returns the number of cached items.
	Len() int
	// UsedBytes returns the sum of cached item sizes.
	UsedBytes() int64
	// Capacity returns the configured byte capacity.
	Capacity() int64
	// Stats returns a snapshot of the counters.
	Stats() Stats
	// Keys returns the cached keys in policy order (eviction candidates
	// last for LRU; unspecified for others).
	Keys() []Key
}

// LRU is a least-recently-used byte-capacity cache.
type LRU struct {
	mu       sync.Mutex
	cap      int64
	used     int64
	ll       *list.List // front = most recently used
	items    map[Key]*list.Element
	stats    Stats
	onChange func(Key, bool) // membership listener; nil when unset
}

// SetOnChange registers a membership listener, invoked with (key, true) when
// a key enters the cache and (key, false) when it leaves for any reason
// (capacity eviction, region eviction, removal). Overwrites (Put on an
// existing key) are not transitions and do not fire. The listener runs with
// the cache mutex held, so events are delivered in mutation order; it must be
// fast and must not call back into the cache. Pass nil to detach.
func (c *LRU) SetOnChange(fn func(Key, bool)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onChange = fn
}

// notify fires the membership listener; callers hold c.mu.
func (c *LRU) notify(k Key, present bool) {
	if c.onChange != nil {
		c.onChange(k, present)
	}
}

type lruEntry struct{ it Item }

// NewLRU creates an LRU cache with the given byte capacity. It panics on a
// non-positive capacity (a construction bug).
func NewLRU(capacity int64) *LRU {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: non-positive capacity %d", capacity))
	}
	return &LRU{cap: capacity, ll: list.New(), items: make(map[Key]*list.Element)}
}

// Get implements Cache.
func (c *LRU) Get(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.stats.Misses++
		return false
	}
	c.ll.MoveToFront(el)
	c.stats.Hits++
	return true
}

// Peek implements Cache.
func (c *LRU) Peek(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[k]
	return ok
}

// Put implements Cache.
func (c *LRU) Put(it Item) bool {
	if it.Size < 0 || it.Size > c.cap {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[it.Key]; ok {
		old := el.Value.(*lruEntry)
		c.used += it.Size - old.it.Size
		old.it = it
		c.ll.MoveToFront(el)
		c.evictLocked()
		return true
	}
	c.items[it.Key] = c.ll.PushFront(&lruEntry{it: it})
	c.used += it.Size
	c.stats.Inserts++
	c.notify(it.Key, true)
	c.evictLocked()
	return true
}

func (c *LRU) evictLocked() {
	for c.used > c.cap {
		back := c.ll.Back()
		if back == nil {
			return
		}
		e := back.Value.(*lruEntry)
		c.ll.Remove(back)
		delete(c.items, e.it.Key)
		c.used -= e.it.Size
		c.stats.Evictions++
		c.stats.ByReason[EvictCapacity]++
		c.notify(e.it.Key, false)
	}
}

// Entry implements Cache: metadata lookup without promotion.
func (c *LRU) Entry(k Key) (Item, bool) { return c.item(k) }

// Drop implements Cache: remove and count as an eviction for reason.
func (c *LRU) Drop(k Key, reason EvictionReason) bool { return c.evict(k, reason) }

// Remove implements Cache.
func (c *LRU) Remove(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return false
	}
	e := el.Value.(*lruEntry)
	c.ll.Remove(el)
	delete(c.items, k)
	c.used -= e.it.Size
	c.notify(k, false)
	return true
}

// Len implements Cache.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// UsedBytes implements Cache.
func (c *LRU) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Capacity implements Cache.
func (c *LRU) Capacity() int64 { return c.cap }

// Stats implements Cache.
func (c *LRU) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Keys implements Cache: most recently used first.
func (c *LRU) Keys() []Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Key, 0, len(c.items))
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruEntry).it.Key)
	}
	return out
}

var _ Cache = (*LRU)(nil)
