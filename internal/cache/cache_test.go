package cache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestLRUBasics(t *testing.T) {
	c := NewLRU(100)
	if !c.Put(Item{Key: "a", Size: 40}) || !c.Put(Item{Key: "b", Size: 40}) {
		t.Fatal("admission failed")
	}
	if !c.Get("a") {
		t.Error("a should hit")
	}
	if c.Get("zzz") {
		t.Error("missing key should miss")
	}
	// Inserting c (40 bytes) overflows: b is LRU (a was just used).
	c.Put(Item{Key: "c", Size: 40})
	if c.Peek("b") {
		t.Error("b should have been evicted")
	}
	if !c.Peek("a") || !c.Peek("c") {
		t.Error("a and c should remain")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 1 || st.Inserts != 3 {
		t.Errorf("stats = %+v", st)
	}
	if c.UsedBytes() != 80 || c.Len() != 2 {
		t.Errorf("used=%d len=%d", c.UsedBytes(), c.Len())
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := NewLRU(100)
	c.Put(Item{Key: "a", Size: 30})
	c.Put(Item{Key: "a", Size: 50})
	if c.Len() != 1 || c.UsedBytes() != 50 {
		t.Errorf("update broken: len=%d used=%d", c.Len(), c.UsedBytes())
	}
	// Growing an item can trigger eviction of others.
	c.Put(Item{Key: "b", Size: 40})
	c.Put(Item{Key: "a", Size: 90})
	if c.Peek("b") {
		t.Error("b should be evicted after a grew")
	}
}

func TestLRURejectsOversize(t *testing.T) {
	c := NewLRU(100)
	if c.Put(Item{Key: "big", Size: 101}) {
		t.Error("oversize item admitted")
	}
	if c.Put(Item{Key: "neg", Size: -1}) {
		t.Error("negative size admitted")
	}
	if c.Len() != 0 {
		t.Error("rejected items must not be stored")
	}
}

func TestLRURemove(t *testing.T) {
	c := NewLRU(100)
	c.Put(Item{Key: "a", Size: 10})
	if !c.Remove("a") {
		t.Error("remove existing failed")
	}
	if c.Remove("a") {
		t.Error("double remove succeeded")
	}
	if c.UsedBytes() != 0 {
		t.Error("bytes leaked after remove")
	}
	// Removals are not evictions.
	if c.Stats().Evictions != 0 {
		t.Error("remove counted as eviction")
	}
}

func TestLRUKeysOrder(t *testing.T) {
	c := NewLRU(1000)
	for i := 0; i < 5; i++ {
		c.Put(Item{Key: Key(fmt.Sprintf("k%d", i)), Size: 1})
	}
	c.Get("k0") // promote
	keys := c.Keys()
	if keys[0] != "k0" {
		t.Errorf("most recently used should be first: %v", keys)
	}
	if keys[len(keys)-1] != "k1" {
		t.Errorf("least recently used should be last: %v", keys)
	}
}

func TestNewLRUPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero capacity")
		}
	}()
	NewLRU(0)
}

// capacityInvariant checks UsedBytes <= Capacity and UsedBytes equals the
// sum of live item sizes after an arbitrary operation sequence.
func capacityInvariant(t *testing.T, mk func() Cache) {
	t.Helper()
	prop := func(ops []uint16) bool {
		c := mk()
		live := map[Key]int64{}
		for _, op := range ops {
			k := Key(fmt.Sprintf("k%d", op%50))
			size := int64(op%200) + 1
			switch op % 3 {
			case 0:
				if c.Put(Item{Key: k, Size: size}) {
					live[k] = size
				}
			case 1:
				c.Get(k)
			case 2:
				c.Remove(k)
				delete(live, k)
			}
			// Reconcile live set with what survived eviction.
			sum := int64(0)
			for lk := range live {
				if !c.Peek(lk) {
					delete(live, lk)
				}
			}
			for _, s := range live {
				sum += s
			}
			if c.UsedBytes() != sum {
				t.Logf("used=%d sum=%d", c.UsedBytes(), sum)
				return false
			}
			if c.UsedBytes() > c.Capacity() {
				return false
			}
			if c.Len() != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Errorf("capacity invariant violated: %v", err)
	}
}

func TestLRUCapacityInvariant(t *testing.T) {
	capacityInvariant(t, func() Cache { return NewLRU(500) })
}

func TestLFUCapacityInvariant(t *testing.T) {
	capacityInvariant(t, func() Cache { return NewLFU(500) })
}

func TestGeoAwareCapacityInvariant(t *testing.T) {
	capacityInvariant(t, func() Cache { return NewGeoAware(500, "africa") })
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	c := NewLFU(100)
	c.Put(Item{Key: "hot", Size: 40})
	c.Put(Item{Key: "cold", Size: 40})
	for i := 0; i < 10; i++ {
		c.Get("hot")
	}
	c.Put(Item{Key: "new", Size: 40})
	if c.Peek("cold") {
		t.Error("cold should be evicted")
	}
	if !c.Peek("hot") {
		t.Error("hot should survive")
	}
	if !c.Peek("new") {
		t.Error("new should be admitted")
	}
}

func TestLFUDeterministicTieBreak(t *testing.T) {
	// Equal frequencies: the oldest insertion is evicted first.
	c := NewLFU(100)
	c.Put(Item{Key: "first", Size: 40})
	c.Put(Item{Key: "second", Size: 40})
	c.Put(Item{Key: "third", Size: 40})
	if c.Peek("first") {
		t.Error("first (oldest, freq 1) should be evicted")
	}
	if !c.Peek("second") || !c.Peek("third") {
		t.Error("newer entries should survive")
	}
}

func TestLFUProtectsIncoming(t *testing.T) {
	// The just-inserted item must not evict itself even when it has the
	// lowest frequency.
	c := NewLFU(100)
	c.Put(Item{Key: "a", Size: 60})
	for i := 0; i < 5; i++ {
		c.Get("a")
	}
	c.Put(Item{Key: "b", Size: 60})
	if !c.Peek("b") {
		t.Error("incoming item evicted itself")
	}
	if c.Peek("a") {
		t.Error("a should have been evicted to fit b")
	}
}

func TestLFURemoveAndStats(t *testing.T) {
	c := NewLFU(100)
	c.Put(Item{Key: "a", Size: 10})
	c.Get("a")
	c.Get("nope")
	if !c.Remove("a") || c.Remove("a") {
		t.Error("remove semantics broken")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", st.HitRate())
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("empty hit rate should be 0")
	}
}

func TestGeoAwareEvictsOutOfRegionFirst(t *testing.T) {
	c := NewGeoAware(100, "africa")
	c.Put(Item{Key: "af1", Size: 30, Tag: "africa"})
	c.Put(Item{Key: "eu1", Size: 30, Tag: "europe"})
	c.Put(Item{Key: "af2", Size: 30, Tag: "africa"})
	// eu1 is NOT the LRU victim (af1 is older), but it is out of region.
	c.Put(Item{Key: "af3", Size: 30, Tag: "africa"})
	if c.Peek("eu1") {
		t.Error("out-of-region item should be evicted first")
	}
	if !c.Peek("af1") || !c.Peek("af2") || !c.Peek("af3") {
		t.Error("in-region items should survive")
	}
}

func TestGeoAwareRegionChange(t *testing.T) {
	c := NewGeoAware(100, "africa")
	c.Put(Item{Key: "af1", Size: 50, Tag: "africa"})
	c.Put(Item{Key: "eu1", Size: 40, Tag: "europe"})
	// The satellite crosses to Europe: now African content is the ballast.
	c.SetRegion("europe")
	if c.Region() != "europe" {
		t.Fatal("region not updated")
	}
	c.Put(Item{Key: "eu2", Size: 50, Tag: "europe"})
	if c.Peek("af1") {
		t.Error("african content should be evicted after crossing to europe")
	}
	if !c.Peek("eu1") || !c.Peek("eu2") {
		t.Error("european content should survive")
	}
}

func TestGeoAwareFallsBackToLRU(t *testing.T) {
	c := NewGeoAware(100, "africa")
	c.Put(Item{Key: "af1", Size: 50, Tag: "africa"})
	c.Put(Item{Key: "af2", Size: 50, Tag: "africa"})
	c.Get("af1") // af2 becomes LRU among in-region items
	c.Put(Item{Key: "af3", Size: 50, Tag: "africa"})
	if c.Peek("af2") {
		t.Error("LRU in-region item should be evicted when no out-of-region items exist")
	}
	if !c.Peek("af1") || !c.Peek("af3") {
		t.Error("wrong eviction victim")
	}
}

func TestGeoAwareOversize(t *testing.T) {
	c := NewGeoAware(100, "africa")
	if c.Put(Item{Key: "big", Size: 200}) {
		t.Error("oversize admitted")
	}
	if c.String() == "" {
		t.Error("empty String()")
	}
}

func TestCachesConcurrentAccess(t *testing.T) {
	for _, tc := range []struct {
		name string
		c    Cache
	}{
		{"lru", NewLRU(1000)},
		{"lfu", NewLFU(1000)},
		{"geo", NewGeoAware(1000, "africa")},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < 500; i++ {
						k := Key(fmt.Sprintf("k%d", rng.Intn(100)))
						switch rng.Intn(3) {
						case 0:
							tc.c.Put(Item{Key: k, Size: int64(rng.Intn(50) + 1), Tag: "africa"})
						case 1:
							tc.c.Get(k)
						case 2:
							tc.c.Remove(k)
						}
					}
				}(int64(w))
			}
			wg.Wait()
			if tc.c.UsedBytes() > tc.c.Capacity() {
				t.Error("capacity violated under concurrency")
			}
		})
	}
}
