package cache

import "fmt"

// CheckConsistency audits a cache's internal bookkeeping: Keys() must
// enumerate exactly Len() distinct keys, each key must resolve through
// Entry(), and the entry sizes must sum to UsedBytes() without exceeding
// Capacity(). It returns nil when consistent. Tests run it after white-box
// mutation sequences; the replica bitset index silently desyncs when a
// mutation path skips its listener, and a Len/bytes mismatch is the earliest
// observable symptom of the same class of bug.
func CheckConsistency(c Cache) error {
	keys := c.Keys()
	if got, want := len(keys), c.Len(); got != want {
		return fmt.Errorf("cache: Keys() yields %d keys but Len() = %d", got, want)
	}
	seen := make(map[Key]struct{}, len(keys))
	var bytes int64
	for _, k := range keys {
		if _, dup := seen[k]; dup {
			return fmt.Errorf("cache: duplicate key %q in Keys()", k)
		}
		seen[k] = struct{}{}
		it, ok := c.Entry(k)
		if !ok {
			return fmt.Errorf("cache: key %q listed but Entry() misses", k)
		}
		if it.Key != k {
			return fmt.Errorf("cache: entry for %q carries key %q", k, it.Key)
		}
		bytes += it.Size
	}
	if used := c.UsedBytes(); bytes != used {
		return fmt.Errorf("cache: entry sizes sum to %d but UsedBytes() = %d", bytes, used)
	}
	if used, capacity := c.UsedBytes(), c.Capacity(); used > capacity {
		return fmt.Errorf("cache: UsedBytes() %d exceeds Capacity() %d", used, capacity)
	}
	return nil
}
