package cache

import (
	"fmt"
	"sync"
)

// GeoAware is the "content bubble" eviction policy from the paper's §5: a
// satellite crossing from one region to another should evict content tagged
// for the region it is leaving before falling back to recency. Items are
// tagged with their popularity region (Item.Tag); SetRegion updates the
// satellite's current region as it moves.
//
// Eviction order: (1) items whose Tag differs from the current region,
// least recently used first; (2) current-region items, least recently used
// first.
type GeoAware struct {
	mu     sync.Mutex
	lru    *LRU
	region string
}

// NewGeoAware creates a geo-aware cache with the given byte capacity and
// initial region.
func NewGeoAware(capacity int64, region string) *GeoAware {
	return &GeoAware{lru: NewLRU(capacity), region: region}
}

// SetOnChange registers a membership listener on the underlying LRU; all
// geo-aware evictions pass through it, so the listener observes every
// membership transition. See LRU.SetOnChange for the contract.
func (c *GeoAware) SetOnChange(fn func(Key, bool)) { c.lru.SetOnChange(fn) }

// SetRegion updates the region the satellite currently serves.
func (c *GeoAware) SetRegion(region string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.region = region
}

// Region returns the current serving region.
func (c *GeoAware) Region() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.region
}

// Get implements Cache.
func (c *GeoAware) Get(k Key) bool { return c.lru.Get(k) }

// Peek implements Cache.
func (c *GeoAware) Peek(k Key) bool { return c.lru.Peek(k) }

// Put implements Cache. It admits the item, then, if over capacity, evicts
// out-of-region items (LRU order) before in-region ones.
func (c *GeoAware) Put(it Item) bool {
	if it.Size < 0 || it.Size > c.lru.Capacity() {
		return false
	}
	c.mu.Lock()
	region := c.region
	c.mu.Unlock()

	// Admit into the inner LRU without letting it evict on its own: reserve
	// room first by geo-aware eviction.
	c.makeRoom(it.Size, it.Key, region)
	return c.lru.Put(it)
}

// makeRoom evicts until size fits, preferring out-of-region victims.
func (c *GeoAware) makeRoom(size int64, incoming Key, region string) {
	need := c.lru.UsedBytes() + size - c.lru.Capacity()
	if need <= 0 {
		return
	}
	// Pass 1: out-of-region, least recently used first.
	// Keys() returns MRU first, so walk backwards.
	keys := c.lru.Keys()
	for pass := 0; pass < 2 && need > 0; pass++ {
		for i := len(keys) - 1; i >= 0 && need > 0; i-- {
			k := keys[i]
			if k == incoming {
				continue
			}
			e, ok := c.lru.item(k)
			if !ok {
				continue
			}
			outOfRegion := e.Tag != region
			if (pass == 0 && outOfRegion) || pass == 1 {
				reason := EvictCapacity
				if outOfRegion {
					reason = EvictRegionChange
				}
				if c.lru.evict(k, reason) {
					need -= e.Size
				}
			}
		}
	}
}

// item fetches an item's metadata without promotion.
func (c *LRU) item(k Key) (Item, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return Item{}, false
	}
	return el.Value.(*lruEntry).it, true
}

// evict removes a key and counts it as an eviction (not a removal),
// attributed to the given reason.
func (c *LRU) evict(k Key, reason EvictionReason) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return false
	}
	e := el.Value.(*lruEntry)
	c.ll.Remove(el)
	delete(c.items, k)
	c.used -= e.it.Size
	c.stats.Evictions++
	if reason >= 0 && reason < numEvictionReasons {
		c.stats.ByReason[reason]++
	}
	c.notify(k, false)
	return true
}

// Entry implements Cache.
func (c *GeoAware) Entry(k Key) (Item, bool) { return c.lru.Entry(k) }

// Drop implements Cache.
func (c *GeoAware) Drop(k Key, reason EvictionReason) bool { return c.lru.Drop(k, reason) }

// Remove implements Cache.
func (c *GeoAware) Remove(k Key) bool { return c.lru.Remove(k) }

// Len implements Cache.
func (c *GeoAware) Len() int { return c.lru.Len() }

// UsedBytes implements Cache.
func (c *GeoAware) UsedBytes() int64 { return c.lru.UsedBytes() }

// Capacity implements Cache.
func (c *GeoAware) Capacity() int64 { return c.lru.Capacity() }

// Stats implements Cache.
func (c *GeoAware) Stats() Stats { return c.lru.Stats() }

// Keys implements Cache.
func (c *GeoAware) Keys() []Key { return c.lru.Keys() }

// String describes the cache state briefly.
func (c *GeoAware) String() string {
	return fmt.Sprintf("geo-aware(region=%s, %d items, %d/%d bytes)",
		c.Region(), c.Len(), c.UsedBytes(), c.Capacity())
}

var _ Cache = (*GeoAware)(nil)
