package cache

import (
	"container/heap"
	"fmt"
	"sync"
)

// LFU is a least-frequently-used byte-capacity cache. Ties are broken by
// insertion order (older first), which makes eviction deterministic.
type LFU struct {
	mu       sync.Mutex
	cap      int64
	used     int64
	items    map[Key]*lfuEntry
	heap     lfuHeap
	seq      int64
	stats    Stats
	onChange func(Key, bool) // membership listener; nil when unset
}

// SetOnChange registers a membership listener with the same contract as
// LRU.SetOnChange: (key, true) on insert, (key, false) on any departure
// (capacity eviction, Remove, Drop), delivered in mutation order under the
// cache mutex. Overwrites do not fire. Pass nil to detach.
func (c *LFU) SetOnChange(fn func(Key, bool)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onChange = fn
}

// notify fires the membership listener; callers hold c.mu.
func (c *LFU) notify(k Key, present bool) {
	if c.onChange != nil {
		c.onChange(k, present)
	}
}

type lfuEntry struct {
	it    Item
	freq  int64
	seq   int64 // insertion sequence for deterministic ties
	index int   // heap index
}

type lfuHeap []*lfuEntry

func (h lfuHeap) Len() int { return len(h) }
func (h lfuHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].seq < h[j].seq
}
func (h lfuHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *lfuHeap) Push(x interface{}) {
	e := x.(*lfuEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *lfuHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewLFU creates an LFU cache with the given byte capacity.
func NewLFU(capacity int64) *LFU {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: non-positive capacity %d", capacity))
	}
	return &LFU{cap: capacity, items: make(map[Key]*lfuEntry)}
}

// Get implements Cache.
func (c *LFU) Get(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[k]
	if !ok {
		c.stats.Misses++
		return false
	}
	e.freq++
	heap.Fix(&c.heap, e.index)
	c.stats.Hits++
	return true
}

// Peek implements Cache.
func (c *LFU) Peek(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[k]
	return ok
}

// Put implements Cache.
func (c *LFU) Put(it Item) bool {
	if it.Size < 0 || it.Size > c.cap {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[it.Key]; ok {
		c.used += it.Size - e.it.Size
		e.it = it
		e.freq++
		heap.Fix(&c.heap, e.index)
		c.evictLocked(it.Key)
		return true
	}
	c.seq++
	e := &lfuEntry{it: it, freq: 1, seq: c.seq}
	c.items[it.Key] = e
	heap.Push(&c.heap, e)
	c.used += it.Size
	c.stats.Inserts++
	c.notify(it.Key, true)
	c.evictLocked(it.Key)
	return true
}

// evictLocked evicts lowest-frequency entries until within capacity, never
// evicting protect (the just-inserted key).
func (c *LFU) evictLocked(protect Key) {
	for c.used > c.cap && c.heap.Len() > 0 {
		e := c.heap[0]
		if e.it.Key == protect {
			// The newest item is itself the lowest-frequency entry. Evict
			// the next candidate instead; if it is the only entry we are
			// stuck over capacity with protect only, which cannot happen
			// because Put rejects items larger than the capacity.
			if c.heap.Len() == 1 {
				return
			}
			// Temporarily pop protect, evict, then push back.
			heap.Pop(&c.heap)
			c.evictLocked("")
			heap.Push(&c.heap, e)
			return
		}
		heap.Pop(&c.heap)
		delete(c.items, e.it.Key)
		c.used -= e.it.Size
		c.stats.Evictions++
		c.stats.ByReason[EvictCapacity]++
		c.notify(e.it.Key, false)
	}
}

// Entry implements Cache: metadata lookup without a frequency bump.
func (c *LFU) Entry(k Key) (Item, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[k]
	if !ok {
		return Item{}, false
	}
	return e.it, true
}

// Remove implements Cache.
func (c *LFU) Remove(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.removeLocked(k, false, EvictCapacity)
}

// Drop implements Cache: remove and count as an eviction for reason.
func (c *LFU) Drop(k Key, reason EvictionReason) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.removeLocked(k, true, reason)
}

func (c *LFU) removeLocked(k Key, countEviction bool, reason EvictionReason) bool {
	e, ok := c.items[k]
	if !ok {
		return false
	}
	heap.Remove(&c.heap, e.index)
	delete(c.items, k)
	c.used -= e.it.Size
	if countEviction {
		c.stats.Evictions++
		if reason >= 0 && reason < numEvictionReasons {
			c.stats.ByReason[reason]++
		}
	}
	c.notify(k, false)
	return true
}

// Len implements Cache.
func (c *LFU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// UsedBytes implements Cache.
func (c *LFU) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Capacity implements Cache.
func (c *LFU) Capacity() int64 { return c.cap }

// Stats implements Cache.
func (c *LFU) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Keys implements Cache; order is unspecified.
func (c *LFU) Keys() []Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Key, 0, len(c.items))
	for k := range c.items {
		out = append(out, k)
	}
	return out
}

var _ Cache = (*LFU)(nil)
