package cache

import (
	"reflect"
	"testing"
)

// TestLFUOnChangeEvents covers every LFU membership transition: insert,
// capacity eviction, Remove, and Drop all fire; overwrites, Get bumps, and
// misses fire nothing.
func TestLFUOnChangeEvents(t *testing.T) {
	c := NewLFU(30)
	var got []event
	c.SetOnChange(func(k Key, present bool) { got = append(got, event{k, present}) })

	c.Put(Item{Key: "a", Size: 10})
	c.Put(Item{Key: "b", Size: 10})
	c.Get("a")                      // frequency bump: no event
	c.Put(Item{Key: "a", Size: 10}) // overwrite: no event
	c.Put(Item{Key: "c", Size: 20}) // over capacity: evicts lowest-freq ("b")
	c.Remove("c")
	c.Drop("a", EvictPurged)
	c.Remove("missing") // no event

	want := []event{
		{"a", true},
		{"b", true},
		{"c", true},
		{"b", false},
		{"c", false},
		{"a", false},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("event stream mismatch:\n got  %v\n want %v", got, want)
	}
	if n := c.Stats().EvictionsFor(EvictPurged); n != 1 {
		t.Fatalf("Drop(EvictPurged) counted %d, want 1", n)
	}

	c.SetOnChange(nil)
	c.Put(Item{Key: "d", Size: 5})
	if len(got) != len(want) {
		t.Fatalf("events fired after detach: %v", got[len(want):])
	}
}

// TestGeoAwareDropAndEntryEvents extends the GeoAware listener coverage to
// the lifecycle mutation paths (Drop, Entry) that bypass Put/Remove.
func TestGeoAwareDropAndEntryEvents(t *testing.T) {
	g := NewGeoAware(40, "EU")
	var got []event
	g.SetOnChange(func(k Key, present bool) { got = append(got, event{k, present}) })

	g.Put(Item{Key: "a", Size: 10, Tag: "EU", Version: 3, ExpiresAt: 120})
	g.Put(Item{Key: "b", Size: 10, Tag: "EU"})
	if it, ok := g.Entry("a"); !ok || it.Version != 3 || it.ExpiresAt != 120 {
		t.Fatalf("Entry(a) = %+v, %v; want version 3 expiresAt 120", it, ok)
	}
	if !g.Drop("a", EvictTTLExpired) {
		t.Fatal("Drop(a) reported not present")
	}
	if g.Drop("a", EvictTTLExpired) {
		t.Fatal("second Drop(a) reported present")
	}

	want := []event{
		{"a", true},
		{"b", true},
		{"a", false},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("event stream mismatch:\n got  %v\n want %v", got, want)
	}
	if n := g.Stats().EvictionsFor(EvictTTLExpired); n != 1 {
		t.Fatalf("Drop(EvictTTLExpired) counted %d, want 1", n)
	}
}

// TestTieredBasics exercises fills, tier placement, demotion under hot
// pressure, explicit promotion, and capacity eviction from bulk.
func TestTieredBasics(t *testing.T) {
	c := NewTiered(20, 40)
	var got []event
	c.SetOnChange(func(k Key, present bool) { got = append(got, event{k, present}) })

	c.Put(Item{Key: "a", Size: 10})
	c.Put(Item{Key: "b", Size: 10})
	if tier, ok := c.PeekTier("a"); !ok || tier != TierHot {
		t.Fatalf("PeekTier(a) = %v, %v; want hot", tier, ok)
	}
	// Hot is full: the next fill demotes the LRU hot entry ("a") to bulk.
	c.Put(Item{Key: "c", Size: 10})
	if tier, ok := c.PeekTier("a"); !ok || tier != TierBulk {
		t.Fatalf("after demotion PeekTier(a) = %v, %v; want bulk", tier, ok)
	}
	// Demotion is not a membership change: only the three inserts so far.
	want := []event{{"a", true}, {"b", true}, {"c", true}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("event stream mismatch:\n got  %v\n want %v", got, want)
	}

	// Promotion on re-reference: Touch moves "a" back to hot, demoting "b".
	if !c.Touch("a") {
		t.Fatal("Touch(a) reported not present")
	}
	if tier, _ := c.PeekTier("a"); tier != TierHot {
		t.Fatal("Touch did not promote a to hot")
	}
	if tier, _ := c.PeekTier("b"); tier != TierBulk {
		t.Fatal("promotion pressure did not demote b")
	}
	ts := c.TierStats()
	if ts.Promotions != 1 || ts.Demotions != 2 {
		t.Fatalf("TierStats = %+v, want 1 promotion / 2 demotions", ts)
	}

	// An item too large for hot goes straight to bulk. Bulk now holds
	// [big(30), b(10), a? — a was promoted away] and overflows 40 only if it
	// must: it evicts the bulk-LRU ("b") once big lands on a full tier.
	c.Put(Item{Key: "big", Size: 30})
	if tier, ok := c.PeekTier("big"); !ok || tier != TierBulk {
		t.Fatalf("PeekTier(big) = %v, %v; want bulk", tier, ok)
	}
	// Get in bulk must not promote.
	if !c.Get("big") {
		t.Fatal("Get(big) missed")
	}
	if tier, _ := c.PeekTier("big"); tier != TierBulk {
		t.Fatal("Get promoted a bulk entry; promotion must be explicit")
	}

	// Another bulk-bound fill (25 > hot cap) overflows bulk: LRU victims
	// ("b" then, still over, "big") are true capacity evictions.
	c.Put(Item{Key: "big2", Size: 25})
	if c.Peek("b") || c.Peek("big") {
		t.Fatal("bulk capacity pressure did not evict the LRU entries")
	}
	if n := c.Stats().EvictionsFor(EvictCapacity); n == 0 {
		t.Fatal("bulk eviction not counted as capacity eviction")
	}
	if err := CheckConsistency(c); err != nil {
		t.Fatalf("inconsistent after mutations: %v", err)
	}

	// Drop from either tier fires the listener and counts the reason.
	c.Drop("big2", EvictPurged)
	if c.Peek("big2") {
		t.Fatal("Drop left big2 present")
	}
	if n := c.Stats().EvictionsFor(EvictPurged); n != 1 {
		t.Fatalf("Drop(EvictPurged) counted %d, want 1", n)
	}
	last := got[len(got)-1]
	if last != (event{"big2", false}) {
		t.Fatalf("last event = %v, want {big2 false}", last)
	}
}

// TestTieredRejectsOversize checks the admission guard against both tiers.
func TestTieredRejectsOversize(t *testing.T) {
	c := NewTiered(10, 20)
	if c.Put(Item{Key: "huge", Size: 25}) {
		t.Fatal("admitted an item larger than both tiers")
	}
	if c.Put(Item{Key: "neg", Size: -1}) {
		t.Fatal("admitted a negative-size item")
	}
	if c.Len() != 0 || c.UsedBytes() != 0 {
		t.Fatalf("rejected puts mutated state: len=%d used=%d", c.Len(), c.UsedBytes())
	}
}

// TestCheckConsistency runs the exported audit over every policy after a
// mixed mutation sequence, and proves it detects a planted inconsistency.
func TestCheckConsistency(t *testing.T) {
	caches := map[string]Cache{
		"lru":    NewLRU(50),
		"lfu":    NewLFU(50),
		"geo":    NewGeoAware(50, "EU"),
		"tiered": NewTiered(25, 25),
	}
	for name, c := range caches {
		for i := 0; i < 12; i++ {
			c.Put(Item{Key: Key(rune('a' + i)), Size: int64(5 + i%3), Tag: "EU"})
		}
		c.Get("c")
		c.Remove("d")
		c.Drop("e", EvictTTLExpired)
		if err := CheckConsistency(c); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}

	// A cache that lies about UsedBytes must be caught.
	bad := NewLRU(50)
	bad.Put(Item{Key: "a", Size: 10})
	bad.used = 99
	if err := CheckConsistency(bad); err == nil {
		t.Fatal("CheckConsistency missed a corrupted byte count")
	}
}

// TestEvictionReasonRoundTripLifecycle keeps the name table exhaustive for
// the lifecycle reasons.
func TestEvictionReasonRoundTripLifecycle(t *testing.T) {
	for _, r := range []EvictionReason{EvictTTLExpired, EvictPurged} {
		s := r.String()
		back, ok := EvictionReasonFromString(s)
		if !ok || back != r {
			t.Errorf("round trip failed for %v (%q -> %v, %v)", r, s, back, ok)
		}
	}
}
