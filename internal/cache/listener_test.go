package cache

import (
	"reflect"
	"testing"
)

type event struct {
	key     Key
	present bool
}

// TestLRUOnChangeEvents exercises every membership transition path of the
// listener contract: insert fires (k, true); capacity eviction and Remove
// fire (k, false); overwrites and misses fire nothing.
func TestLRUOnChangeEvents(t *testing.T) {
	c := NewLRU(30)
	var got []event
	c.SetOnChange(func(k Key, present bool) { got = append(got, event{k, present}) })

	c.Put(Item{Key: "a", Size: 10})
	c.Put(Item{Key: "b", Size: 10})
	c.Put(Item{Key: "a", Size: 10}) // overwrite: no membership change, no event
	c.Put(Item{Key: "c", Size: 20}) // over capacity: evicts LRU ("b") then fits
	c.Remove("a")
	c.Remove("missing") // no event

	want := []event{
		{"a", true},
		{"b", true},
		{"c", true},
		{"b", false},
		{"a", false},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("event stream mismatch:\n got  %v\n want %v", got, want)
	}

	// Detaching stops delivery.
	c.SetOnChange(nil)
	c.Put(Item{Key: "d", Size: 5})
	if len(got) != len(want) {
		t.Fatalf("events fired after detach: %v", got[len(want):])
	}
}

// TestGeoAwareOnChangeEvents checks that region-change evictions (which
// bypass the inner LRU's own capacity path) still reach the listener.
func TestGeoAwareOnChangeEvents(t *testing.T) {
	g := NewGeoAware(20, "EU")
	var got []event
	g.SetOnChange(func(k Key, present bool) { got = append(got, event{k, present}) })

	g.Put(Item{Key: "na", Size: 10, Tag: "NA"})
	g.Put(Item{Key: "eu", Size: 10, Tag: "EU"})
	// Over capacity: geo policy evicts the out-of-region item first.
	g.Put(Item{Key: "eu2", Size: 10, Tag: "EU"})

	want := []event{
		{"na", true},
		{"eu", true},
		{"na", false},
		{"eu2", true},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("event stream mismatch:\n got  %v\n want %v", got, want)
	}
	if g.Peek("na") {
		t.Fatal("out-of-region item survived capacity pressure")
	}
}
