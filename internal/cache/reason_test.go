package cache

import (
	"strings"
	"testing"
)

// TestEvictionReasonTableExhaustive round-trips every reason through the
// name table, catching silently-added constants without names.
func TestEvictionReasonTableExhaustive(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range EvictionReasons() {
		name := r.String()
		if name == "" || strings.HasPrefix(name, "evictionreason(") {
			t.Fatalf("EvictionReason %d has no name table entry", int(r))
		}
		if seen[name] {
			t.Fatalf("duplicate reason name %q", name)
		}
		seen[name] = true
		back, ok := EvictionReasonFromString(name)
		if !ok || back != r {
			t.Fatalf("round trip %q -> %v, want %v", name, back, r)
		}
	}
	if len(seen) != int(numEvictionReasons) {
		t.Fatalf("EvictionReasons() covered %d of %d reasons", len(seen), numEvictionReasons)
	}
	if _, ok := EvictionReasonFromString("no-such-reason"); ok {
		t.Error("unknown name must not parse")
	}
	if got := EvictionReason(42).String(); got != "evictionreason(42)" {
		t.Errorf("out-of-range stringer = %q", got)
	}
}

// TestEvictionReasonsByPolicy checks each policy attributes evictions to the
// right cause and that the breakdown sums to the total.
func TestEvictionReasonsByPolicy(t *testing.T) {
	// LRU and LFU only evict for capacity.
	lru := NewLRU(100)
	lru.Put(Item{Key: "a", Size: 60})
	lru.Put(Item{Key: "b", Size: 60}) // evicts a
	if st := lru.Stats(); st.EvictionsFor(EvictCapacity) != 1 || st.EvictionsFor(EvictRegionChange) != 0 {
		t.Fatalf("lru reasons = %+v", st.ByReason)
	}
	lfu := NewLFU(100)
	lfu.Put(Item{Key: "a", Size: 60})
	lfu.Put(Item{Key: "b", Size: 60})
	if st := lfu.Stats(); st.EvictionsFor(EvictCapacity) != 1 {
		t.Fatalf("lfu reasons = %+v", st.ByReason)
	}

	// GeoAware prefers out-of-region victims and labels them as such.
	g := NewGeoAware(100, "EU")
	g.Put(Item{Key: "af", Size: 40, Tag: "AF"})
	g.Put(Item{Key: "eu1", Size: 40, Tag: "EU"})
	g.Put(Item{Key: "eu2", Size: 40, Tag: "EU"}) // must evict af first
	st := g.Stats()
	if st.EvictionsFor(EvictRegionChange) != 1 {
		t.Fatalf("geo-aware must attribute the out-of-region eviction: %+v", st.ByReason)
	}
	if g.Peek("af") {
		t.Error("out-of-region item survived")
	}
	// Fill again with in-region content: now the victim is in-region, so the
	// reason is plain capacity.
	g.Put(Item{Key: "eu3", Size: 40, Tag: "EU"})
	st = g.Stats()
	if st.EvictionsFor(EvictCapacity) != 1 {
		t.Fatalf("in-region eviction must count as capacity: %+v", st.ByReason)
	}
	var sum int64
	for _, r := range EvictionReasons() {
		sum += st.EvictionsFor(r)
	}
	if sum != st.Evictions {
		t.Fatalf("reason breakdown %d != total evictions %d", sum, st.Evictions)
	}
	if st.EvictionsFor(EvictionReason(99)) != 0 {
		t.Error("out-of-range reason lookup must read zero")
	}
}
