package cache

import (
	"container/list"
	"fmt"
	"sync"
)

// Tier identifies a storage tier inside a Tiered store.
type Tier int

// Tiers. Hot models on-board RAM (small, fast); Bulk models the bulk
// SSD/flash store (large, slower). numTiers must stay last.
const (
	TierHot Tier = iota
	TierBulk

	numTiers // keep last
)

func (t Tier) String() string {
	switch t {
	case TierHot:
		return "hot"
	case TierBulk:
		return "bulk"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// Tiered is a two-tier byte-capacity store: a hot RAM tier backed by a bulk
// SSD tier, each with its own capacity and (in the serving path) its own hit
// latency. New fills land in the hot tier; hot-tier pressure demotes the
// least recently used entries into bulk instead of dropping them; bulk
// pressure evicts for real. Promotion back to hot is explicit via Touch —
// Get never migrates an entry, so concurrent read-only lookups cannot make
// tier membership depend on goroutine schedule.
//
// The membership listener (SetOnChange) sees union membership: an entry
// moving between tiers is still present, so demotion and promotion fire
// nothing; only a true insert or a true departure fires.
type Tiered struct {
	mu       sync.Mutex
	hotCap   int64
	bulkCap  int64
	hotUsed  int64
	bulkUsed int64
	hot      *list.List // front = most recently used
	bulk     *list.List // front = most recently demoted/promoted-from
	items    map[Key]*list.Element
	stats    Stats
	tstats   TieredStats
	onChange func(Key, bool)
}

type tieredEntry struct {
	it   Item
	tier Tier
}

// TieredStats snapshots tier occupancy and movement counters.
type TieredStats struct {
	HotLen     int
	BulkLen    int
	HotBytes   int64
	BulkBytes  int64
	HotHits    int64
	BulkHits   int64
	Promotions int64 // bulk → hot moves (Touch on a bulk entry)
	Demotions  int64 // hot → bulk moves under hot-tier pressure
}

// NewTiered creates a two-tier store with the given per-tier byte
// capacities. It panics on a non-positive capacity (a construction bug).
func NewTiered(hotCap, bulkCap int64) *Tiered {
	if hotCap <= 0 || bulkCap <= 0 {
		panic(fmt.Sprintf("cache: non-positive tier capacity hot=%d bulk=%d", hotCap, bulkCap))
	}
	return &Tiered{
		hotCap:  hotCap,
		bulkCap: bulkCap,
		hot:     list.New(),
		bulk:    list.New(),
		items:   make(map[Key]*list.Element),
	}
}

// SetOnChange registers a membership listener; same contract as
// LRU.SetOnChange, over the union of both tiers.
func (c *Tiered) SetOnChange(fn func(Key, bool)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onChange = fn
}

func (c *Tiered) notify(k Key, present bool) {
	if c.onChange != nil {
		c.onChange(k, present)
	}
}

// Get implements Cache. A hit in either tier refreshes recency within that
// tier only; it never promotes (see Touch).
func (c *Tiered) Get(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.stats.Misses++
		return false
	}
	e := el.Value.(*tieredEntry)
	c.tierList(e.tier).MoveToFront(el)
	c.stats.Hits++
	if e.tier == TierHot {
		c.tstats.HotHits++
	} else {
		c.tstats.BulkHits++
	}
	return true
}

// Peek implements Cache.
func (c *Tiered) Peek(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[k]
	return ok
}

// PeekTier reports which tier holds the key, with no side effects at all —
// the read-only lookup the sharded resolve phase uses.
func (c *Tiered) PeekTier(k Key) (Tier, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return 0, false
	}
	return el.Value.(*tieredEntry).tier, true
}

// Entry implements Cache.
func (c *Tiered) Entry(k Key) (Item, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return Item{}, false
	}
	return el.Value.(*tieredEntry).it, true
}

// Put implements Cache. Fills land in the hot tier; an item too large for
// hot but fitting bulk goes straight to bulk. Items larger than both tiers
// are rejected.
func (c *Tiered) Put(it Item) bool {
	if it.Size < 0 || (it.Size > c.hotCap && it.Size > c.bulkCap) {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[it.Key]; ok {
		e := el.Value.(*tieredEntry)
		delta := it.Size - e.it.Size
		if e.tier == TierHot {
			c.hotUsed += delta
		} else {
			c.bulkUsed += delta
		}
		e.it = it
		c.tierList(e.tier).MoveToFront(el)
		c.rebalanceLocked(it.Key)
		return true
	}
	e := &tieredEntry{it: it, tier: TierHot}
	if it.Size > c.hotCap {
		e.tier = TierBulk
		c.items[it.Key] = c.bulk.PushFront(e)
		c.bulkUsed += it.Size
	} else {
		c.items[it.Key] = c.hot.PushFront(e)
		c.hotUsed += it.Size
	}
	c.stats.Inserts++
	c.notify(it.Key, true)
	c.rebalanceLocked(it.Key)
	return true
}

// Touch promotes a bulk entry to the hot tier (the re-reference promotion
// from the ISSUE), or refreshes recency of a hot entry. It reports whether
// the key was present. Callers apply promotions sequentially, in batch
// order, so tier state stays deterministic.
func (c *Tiered) Touch(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		return false
	}
	e := el.Value.(*tieredEntry)
	if e.tier == TierHot {
		c.hot.MoveToFront(el)
		return true
	}
	if e.it.Size > c.hotCap {
		// Too large for hot: stays bulk, recency refresh only.
		c.bulk.MoveToFront(el)
		return true
	}
	c.bulk.Remove(el)
	c.bulkUsed -= e.it.Size
	e.tier = TierHot
	c.items[k] = c.hot.PushFront(e)
	c.hotUsed += e.it.Size
	c.tstats.Promotions++
	c.rebalanceLocked(k)
	return true
}

// rebalanceLocked demotes hot overflow into bulk (protecting the key that
// triggered the pressure), then evicts bulk overflow for capacity.
func (c *Tiered) rebalanceLocked(protect Key) {
	for c.hotUsed > c.hotCap {
		back := c.hot.Back()
		if back == nil {
			break
		}
		e := back.Value.(*tieredEntry)
		if e.it.Key == protect && c.hot.Len() == 1 {
			break
		}
		victim := back
		if e.it.Key == protect {
			victim = back.Prev()
			e = victim.Value.(*tieredEntry)
		}
		c.hot.Remove(victim)
		c.hotUsed -= e.it.Size
		if e.it.Size > c.bulkCap {
			// Cannot fit bulk at all: a real eviction.
			delete(c.items, e.it.Key)
			c.stats.Evictions++
			c.stats.ByReason[EvictCapacity]++
			c.notify(e.it.Key, false)
			continue
		}
		e.tier = TierBulk
		c.items[e.it.Key] = c.bulk.PushFront(e)
		c.bulkUsed += e.it.Size
		c.tstats.Demotions++
	}
	for c.bulkUsed > c.bulkCap {
		back := c.bulk.Back()
		if back == nil {
			break
		}
		e := back.Value.(*tieredEntry)
		if e.it.Key == protect {
			if c.bulk.Len() == 1 {
				break
			}
			back = back.Prev()
			e = back.Value.(*tieredEntry)
		}
		c.bulk.Remove(back)
		delete(c.items, e.it.Key)
		c.bulkUsed -= e.it.Size
		c.stats.Evictions++
		c.stats.ByReason[EvictCapacity]++
		c.notify(e.it.Key, false)
	}
}

// Remove implements Cache.
func (c *Tiered) Remove(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.removeLocked(k, false, EvictCapacity)
}

// Drop implements Cache.
func (c *Tiered) Drop(k Key, reason EvictionReason) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.removeLocked(k, true, reason)
}

func (c *Tiered) removeLocked(k Key, countEviction bool, reason EvictionReason) bool {
	el, ok := c.items[k]
	if !ok {
		return false
	}
	e := el.Value.(*tieredEntry)
	c.tierList(e.tier).Remove(el)
	if e.tier == TierHot {
		c.hotUsed -= e.it.Size
	} else {
		c.bulkUsed -= e.it.Size
	}
	delete(c.items, k)
	if countEviction {
		c.stats.Evictions++
		if reason >= 0 && reason < numEvictionReasons {
			c.stats.ByReason[reason]++
		}
	}
	c.notify(k, false)
	return true
}

func (c *Tiered) tierList(t Tier) *list.List {
	if t == TierHot {
		return c.hot
	}
	return c.bulk
}

// Len implements Cache (union of both tiers).
func (c *Tiered) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// UsedBytes implements Cache (union of both tiers).
func (c *Tiered) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hotUsed + c.bulkUsed
}

// Capacity implements Cache (sum of tier capacities).
func (c *Tiered) Capacity() int64 { return c.hotCap + c.bulkCap }

// Stats implements Cache.
func (c *Tiered) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// TierStats snapshots per-tier occupancy and movement counters.
func (c *Tiered) TierStats() TieredStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.tstats
	t.HotLen = c.hot.Len()
	t.BulkLen = c.bulk.Len()
	t.HotBytes = c.hotUsed
	t.BulkBytes = c.bulkUsed
	return t
}

// Keys implements Cache: hot tier MRU-first, then bulk tier.
func (c *Tiered) Keys() []Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Key, 0, len(c.items))
	for el := c.hot.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*tieredEntry).it.Key)
	}
	for el := c.bulk.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*tieredEntry).it.Key)
	}
	return out
}

// String describes the store state briefly.
func (c *Tiered) String() string {
	t := c.TierStats()
	return fmt.Sprintf("tiered(hot %d items %d/%d bytes, bulk %d items %d/%d bytes)",
		t.HotLen, t.HotBytes, c.hotCap, t.BulkLen, t.BulkBytes, c.bulkCap)
}

var _ Cache = (*Tiered)(nil)
