// Package cdn implements the terrestrial content delivery network substrate:
// a Cloudflare-like global edge footprint, anycast server selection (lowest
// latency from the client's network vantage — which, for satellite
// subscribers, is their PoP, not their home), LRU edge caches and origin
// fetches over the WAN.
//
// The paper's core observation lives in the vantage parameter of the
// selection functions: terrestrial clients are localized by their own
// address, LSN clients by their PoP's.
package cdn

import (
	"fmt"
	"sort"
	"time"

	"spacecdn/internal/cache"
	"spacecdn/internal/content"
	"spacecdn/internal/geo"
	"spacecdn/internal/stats"
	"spacecdn/internal/terrestrial"
)

// Edge is one CDN point of presence with its cache.
type Edge struct {
	City  geo.City
	Cache cache.Cache
}

// Config controls CDN construction.
type Config struct {
	// EdgeCacheBytes is the per-edge cache capacity.
	EdgeCacheBytes int64
	// OriginCities host the origin servers (content sources of truth).
	OriginCities []string
	// AnycastSpread is how many nearest edges a client may be mapped to;
	// the paper notes clients from one city often reach several CDN sites
	// in neighbouring countries.
	AnycastSpread int
	// OriginProcMs is the origin's processing time on a cache miss.
	OriginProcMs float64
	// EdgeProcMs is the edge's request processing time.
	EdgeProcMs float64
}

// DefaultConfig returns a realistic global CDN setup.
func DefaultConfig() Config {
	return Config{
		EdgeCacheBytes: 64 << 30, // 64 GiB of hot content per edge
		OriginCities:   []string{"Ashburn, US", "Frankfurt, DE", "Singapore, SG"},
		AnycastSpread:  3,
		OriginProcMs:   15,
		EdgeProcMs:     1.5,
	}
}

// CDN is a deployed content delivery network. Edge caches are mutable (they
// fill as requests flow); the deployment itself is immutable.
type CDN struct {
	cfg     Config
	edges   []*Edge
	origins []geo.City
	terr    *terrestrial.Model
}

// New deploys an edge in every city of the embedded world dataset —
// mirroring a large anycast CDN whose footprint covers essentially every
// sizeable metro, including African ones (the paper's Fig. 3b shows a
// Cloudflare edge in Maputo itself).
func New(cfg Config, t *terrestrial.Model) (*CDN, error) {
	if cfg.EdgeCacheBytes <= 0 {
		return nil, fmt.Errorf("cdn: non-positive edge cache capacity")
	}
	if cfg.AnycastSpread <= 0 {
		return nil, fmt.Errorf("cdn: anycast spread must be positive")
	}
	c := &CDN{cfg: cfg, terr: t}
	for _, city := range geo.Cities() {
		c.edges = append(c.edges, &Edge{
			City:  city,
			Cache: cache.NewLRU(cfg.EdgeCacheBytes),
		})
	}
	for _, name := range cfg.OriginCities {
		city, ok := geo.CityByName(name)
		if !ok {
			return nil, fmt.Errorf("cdn: unknown origin city %q", name)
		}
		c.origins = append(c.origins, city)
	}
	if len(c.origins) == 0 {
		return nil, fmt.Errorf("cdn: need at least one origin")
	}
	return c, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(cfg Config, t *terrestrial.Model) *CDN {
	c, err := New(cfg, t)
	if err != nil {
		panic(err)
	}
	return c
}

// Edges returns the deployment (shared slice; edges are live objects).
func (c *CDN) Edges() []*Edge { return c.edges }

// EdgeIn returns the edge in the given city, if deployed.
func (c *CDN) EdgeIn(cityName string) (*Edge, bool) {
	city, ok := geo.CityByName(cityName)
	if !ok {
		return nil, false
	}
	for _, e := range c.edges {
		if e.City.Name == city.Name && e.City.Country == city.Country {
			return e, true
		}
	}
	return nil, false
}

// EdgesByDistance returns the k edges nearest the vantage point, closest
// first.
func (c *CDN) EdgesByDistance(vantage geo.Point, k int) []*Edge {
	if k <= 0 {
		return nil
	}
	type ed struct {
		e *Edge
		d float64
	}
	all := make([]ed, len(c.edges))
	for i, e := range c.edges {
		all[i] = ed{e: e, d: geo.HaversineKm(vantage, e.City.Loc)}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
	if k > len(all) {
		k = len(all)
	}
	out := make([]*Edge, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].e
	}
	return out
}

// NearestEdge returns the single closest edge to the vantage.
func (c *CDN) NearestEdge(vantage geo.Point) *Edge {
	return c.EdgesByDistance(vantage, 1)[0]
}

// SelectAnycast picks the edge a request lands on: usually the nearest, but
// with geometric fall-off across the AnycastSpread nearest sites — modelling
// BGP anycast's imperfect localization.
func (c *CDN) SelectAnycast(vantage geo.Point, rng *stats.Rand) *Edge {
	cands := c.EdgesByDistance(vantage, c.cfg.AnycastSpread)
	for _, e := range cands[:len(cands)-1] {
		if rng.Bool(0.7) {
			return e
		}
	}
	return cands[len(cands)-1]
}

// NearestOrigin returns the origin city closest to an edge.
func (c *CDN) NearestOrigin(from geo.Point) geo.City {
	best := c.origins[0]
	bestD := geo.HaversineKm(from, best.Loc)
	for _, o := range c.origins[1:] {
		if d := geo.HaversineKm(from, o.Loc); d < bestD {
			bestD = d
			best = o
		}
	}
	return best
}

// FetchResult describes one request served through an edge.
type FetchResult struct {
	Edge     *Edge
	CacheHit bool
	// TTFB is the time from the client issuing the request to the first
	// response byte arriving, given the provided client->edge RTT.
	TTFB time.Duration
	// OriginRTT is the edge->origin round trip paid on a miss (zero on hit).
	OriginRTT time.Duration
}

// Fetch serves an object through an edge. clientRTT is the measured
// client-to-edge round trip (terrestrial or via satellite — the caller
// computed it from its network model). On a miss the edge fetches from the
// nearest origin over the WAN and fills its cache.
func (c *CDN) Fetch(e *Edge, obj content.Object, clientRTT time.Duration, rng *stats.Rand) FetchResult {
	res := FetchResult{Edge: e}
	proc := time.Duration(c.cfg.EdgeProcMs * float64(time.Millisecond))
	if e.Cache.Get(cache.Key(obj.ID)) {
		res.CacheHit = true
		res.TTFB = clientRTT + proc
		return res
	}
	origin := c.NearestOrigin(e.City.Loc)
	originRTT := 2*terrestrial.FiberDelay(geo.HaversineKm(e.City.Loc, origin.Loc)*1.35) +
		time.Duration(c.cfg.OriginProcMs*float64(time.Millisecond))
	// Light transit noise on the WAN leg.
	originRTT += time.Duration(rng.Exponential(2) * float64(time.Millisecond))
	e.Cache.Put(cache.Item{Key: cache.Key(obj.ID), Size: obj.Bytes, Tag: obj.Region.String()})
	res.OriginRTT = originRTT
	res.TTFB = clientRTT + proc + originRTT
	return res
}

// Warm pre-populates an edge cache with a region's most popular objects
// until the byte budget is exhausted.
func Warm(e *Edge, cat *content.Catalog, region geo.Region, budget int64) int {
	placed := 0
	for i := 0; i < cat.Len(); i++ {
		o := cat.ByRank(region, i)
		if o.Bytes > budget {
			continue
		}
		if e.Cache.Put(cache.Item{Key: cache.Key(o.ID), Size: o.Bytes, Tag: o.Region.String()}) {
			budget -= o.Bytes
			placed++
		}
		if budget <= 0 {
			break
		}
	}
	return placed
}
