package cdn

import (
	"testing"
	"time"

	"spacecdn/internal/cache"
	"spacecdn/internal/content"
	"spacecdn/internal/geo"
	"spacecdn/internal/stats"
	"spacecdn/internal/terrestrial"
)

func newCDN(t *testing.T) *CDN {
	t.Helper()
	c, err := New(DefaultConfig(), terrestrial.NewModel())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	tm := terrestrial.NewModel()
	bad := DefaultConfig()
	bad.EdgeCacheBytes = 0
	if _, err := New(bad, tm); err == nil {
		t.Error("zero cache capacity accepted")
	}
	bad = DefaultConfig()
	bad.AnycastSpread = 0
	if _, err := New(bad, tm); err == nil {
		t.Error("zero anycast spread accepted")
	}
	bad = DefaultConfig()
	bad.OriginCities = []string{"Atlantis, XX"}
	if _, err := New(bad, tm); err == nil {
		t.Error("unknown origin accepted")
	}
	bad = DefaultConfig()
	bad.OriginCities = nil
	if _, err := New(bad, tm); err == nil {
		t.Error("no origins accepted")
	}
}

func TestDeploymentCoversWorld(t *testing.T) {
	c := newCDN(t)
	if len(c.Edges()) < 120 {
		t.Errorf("edge count = %d, want one per dataset city", len(c.Edges()))
	}
	// A Maputo edge must exist (paper Fig. 3b).
	if _, ok := c.EdgeIn("Maputo, MZ"); !ok {
		t.Error("no Maputo edge")
	}
	if _, ok := c.EdgeIn("Atlantis"); ok {
		t.Error("unknown city resolved to an edge")
	}
}

func TestNearestEdge(t *testing.T) {
	c := newCDN(t)
	maputo, _ := geo.CityByName("Maputo, MZ")
	e := c.NearestEdge(maputo.Loc)
	if e.City.Name != "Maputo" {
		t.Errorf("nearest edge to Maputo = %s", e.City.Name)
	}
	// From the Frankfurt PoP vantage, the nearest edge is Frankfurt — this
	// is exactly the paper's mis-mapping for African Starlink users.
	fra, _ := geo.CityByName("Frankfurt, DE")
	if e := c.NearestEdge(fra.Loc); e.City.Name != "Frankfurt" {
		t.Errorf("nearest edge to Frankfurt PoP = %s", e.City.Name)
	}
}

func TestEdgesByDistanceSorted(t *testing.T) {
	c := newCDN(t)
	london, _ := geo.CityByName("London, GB")
	edges := c.EdgesByDistance(london.Loc, 5)
	if len(edges) != 5 {
		t.Fatalf("got %d edges", len(edges))
	}
	last := -1.0
	for _, e := range edges {
		d := geo.HaversineKm(london.Loc, e.City.Loc)
		if d < last {
			t.Error("edges not sorted by distance")
		}
		last = d
	}
	if got := c.EdgesByDistance(london.Loc, 0); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := c.EdgesByDistance(london.Loc, 10000); len(got) != len(c.Edges()) {
		t.Error("k beyond deployment should clamp")
	}
}

func TestSelectAnycastSpread(t *testing.T) {
	c := newCDN(t)
	rng := stats.NewRand(1)
	vantage, _ := geo.CityByName("London, GB")
	seen := map[string]int{}
	for i := 0; i < 2000; i++ {
		e := c.SelectAnycast(vantage.Loc, rng)
		seen[e.City.Name]++
	}
	if len(seen) < 2 || len(seen) > DefaultConfig().AnycastSpread {
		t.Errorf("anycast spread hit %d distinct edges, want 2..%d", len(seen), DefaultConfig().AnycastSpread)
	}
	// The nearest edge must dominate.
	if seen["London"] < 1000 {
		t.Errorf("nearest edge selected only %d/2000 times", seen["London"])
	}
}

func TestFetchHitMiss(t *testing.T) {
	c := newCDN(t)
	rng := stats.NewRand(2)
	e, _ := c.EdgeIn("Frankfurt, DE")
	obj := content.Object{ID: "x", Bytes: 1 << 20, Region: geo.RegionEurope}
	clientRTT := 30 * time.Millisecond

	// First fetch: miss, pays origin RTT.
	r1 := c.Fetch(e, obj, clientRTT, rng)
	if r1.CacheHit {
		t.Fatal("first fetch should miss")
	}
	if r1.OriginRTT <= 0 {
		t.Error("miss must pay origin RTT")
	}
	if r1.TTFB <= clientRTT {
		t.Error("TTFB must exceed client RTT")
	}

	// Second fetch: hit, no origin RTT, faster.
	r2 := c.Fetch(e, obj, clientRTT, rng)
	if !r2.CacheHit {
		t.Fatal("second fetch should hit")
	}
	if r2.OriginRTT != 0 {
		t.Error("hit must not pay origin RTT")
	}
	if r2.TTFB >= r1.TTFB {
		t.Errorf("hit TTFB %v should beat miss TTFB %v", r2.TTFB, r1.TTFB)
	}
}

func TestFetchOriginDistanceMatters(t *testing.T) {
	c := newCDN(t)
	rng := stats.NewRand(3)
	// Frankfurt edge has a Frankfurt origin (0 km); Auckland's nearest
	// origin is Singapore (~8,400 km) — a much longer miss penalty.
	fra, _ := c.EdgeIn("Frankfurt, DE")
	akl, _ := c.EdgeIn("Auckland, NZ")
	oFra := content.Object{ID: "of", Bytes: 1 << 20}
	oAkl := content.Object{ID: "oa", Bytes: 1 << 20}
	rFra := c.Fetch(fra, oFra, 0, rng)
	rAkl := c.Fetch(akl, oAkl, 0, rng)
	if rAkl.OriginRTT <= rFra.OriginRTT+20*time.Millisecond {
		t.Errorf("Auckland origin RTT %v should far exceed Frankfurt %v", rAkl.OriginRTT, rFra.OriginRTT)
	}
}

func TestNearestOrigin(t *testing.T) {
	c := newCDN(t)
	tokyo, _ := geo.CityByName("Tokyo, JP")
	if o := c.NearestOrigin(tokyo.Loc); o.Name != "Singapore" {
		t.Errorf("nearest origin to Tokyo = %s, want Singapore", o.Name)
	}
	ny, _ := geo.CityByName("New York, US")
	if o := c.NearestOrigin(ny.Loc); o.Name != "Ashburn" {
		t.Errorf("nearest origin to NY = %s, want Ashburn", o.Name)
	}
}

func TestWarm(t *testing.T) {
	c := newCDN(t)
	cat, err := content.GenerateCatalog(content.CatalogConfig{
		Objects: 500, MeanObjectBytes: 1 << 20, ZipfS: 0.9, RegionBoost: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := c.EdgeIn("Maputo, MZ")
	placed := Warm(e, cat, geo.RegionAfrica, 100<<20)
	if placed == 0 {
		t.Fatal("warm placed nothing")
	}
	if e.Cache.UsedBytes() > 100<<20+e.Cache.Capacity() {
		t.Error("warm exceeded budget wildly")
	}
	// The region's hottest object must now be a hit.
	hot := cat.ByRank(geo.RegionAfrica, 0)
	if !e.Cache.Peek(cache.Key(hot.ID)) {
		t.Error("hottest object not warmed")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on bad config")
		}
	}()
	MustNew(Config{}, terrestrial.NewModel())
}
