package cdn

import (
	"fmt"
	"strings"

	"spacecdn/internal/content"
	"spacecdn/internal/geo"
	"spacecdn/internal/stats"
)

// Geo-blocking (paper §1-§2): CDNs enforce content licensing by IP
// geolocation. A terrestrial subscriber geolocates to their own country; an
// LSN subscriber geolocates to their PoP's country, because the public
// address is assigned at the carrier-grade-NAT egress. "Starlink
// subscribers experience unwarranted geo-blocking from CDNs when their
// connections are routed to PoPs deployed in countries where the requested
// content is geo-blocked."

// License describes where an object may be served.
type License struct {
	// AllowedCountries is the ISO2 whitelist. Empty means unrestricted.
	AllowedCountries []string
}

// Unrestricted reports whether the license allows everyone.
func (l License) Unrestricted() bool { return len(l.AllowedCountries) == 0 }

// Allows reports whether a client geolocated to iso2 may be served.
func (l License) Allows(iso2 string) bool {
	if l.Unrestricted() {
		return true
	}
	iso2 = strings.ToUpper(iso2)
	for _, c := range l.AllowedCountries {
		if c == iso2 {
			return true
		}
	}
	return false
}

// LicenseDB maps objects to licenses. Objects without an entry are
// unrestricted.
type LicenseDB struct {
	byObject map[content.ID]License
}

// NewLicenseDB creates an empty license database.
func NewLicenseDB() *LicenseDB {
	return &LicenseDB{byObject: make(map[content.ID]License)}
}

// Set records an object's license.
func (db *LicenseDB) Set(id content.ID, l License) {
	norm := make([]string, len(l.AllowedCountries))
	for i, c := range l.AllowedCountries {
		norm[i] = strings.ToUpper(c)
	}
	db.byObject[id] = License{AllowedCountries: norm}
}

// Lookup returns the license for an object (unrestricted when absent).
func (db *LicenseDB) Lookup(id content.ID) License {
	return db.byObject[id]
}

// Len returns the number of restricted objects.
func (db *LicenseDB) Len() int { return len(db.byObject) }

// GenerateNationalLicenses marks a fraction of the catalog as licensed only
// for the home country of the object's region: the "national broadcaster"
// pattern behind most real geo-blocks. Deterministic in the seed.
func GenerateNationalLicenses(cat *content.Catalog, fraction float64, seed int64) *LicenseDB {
	db := NewLicenseDB()
	if fraction <= 0 {
		return db
	}
	rng := stats.NewRand(seed)
	// Representative national markets per region.
	markets := map[geo.Region][]string{
		geo.RegionAfrica:       {"ZA", "NG", "KE", "EG", "MZ", "ZM", "RW", "TZ"},
		geo.RegionEurope:       {"GB", "DE", "FR", "ES", "IT", "PL", "LT", "CY"},
		geo.RegionNorthAmerica: {"US", "CA", "MX", "GT", "HT"},
		geo.RegionSouthAmerica: {"BR", "AR", "CL", "CO", "PE"},
		geo.RegionAsia:         {"JP", "KR", "IN", "ID", "PH"},
		geo.RegionOceania:      {"AU", "NZ", "FJ"},
	}
	for i := 0; i < cat.Len(); i++ {
		o := cat.ByRank(geo.RegionEurope, i) // rank order irrelevant; scan all
		if !rng.Bool(fraction) {
			continue
		}
		ms := markets[o.Region]
		if len(ms) == 0 {
			continue
		}
		db.Set(o.ID, License{AllowedCountries: []string{ms[rng.Intn(len(ms))]}})
	}
	return db
}

// AccessDecision is the outcome of a geo-filtered request.
type AccessDecision struct {
	Allowed bool
	// GeolocatedISO is the country the CDN believes the client is in.
	GeolocatedISO string
	// Spurious is true when the request was blocked even though the
	// client's true country is licensed — the paper's "unwarranted
	// geo-blocking" for LSN subscribers.
	Spurious bool
}

// CheckAccess applies the license using the vantage the CDN actually sees:
// geolocatedISO is derived from the client's public address (their own
// country terrestrially, the PoP's country over the LSN); trueISO is where
// the subscriber physically is.
func CheckAccess(db *LicenseDB, obj content.ID, geolocatedISO, trueISO string) AccessDecision {
	l := db.Lookup(obj)
	d := AccessDecision{GeolocatedISO: strings.ToUpper(geolocatedISO)}
	d.Allowed = l.Allows(geolocatedISO)
	if !d.Allowed && l.Allows(trueISO) {
		d.Spurious = true
	}
	return d
}

// GeoBlockStats aggregates access decisions.
type GeoBlockStats struct {
	Requests int
	Blocked  int
	Spurious int
	Falsely  int // allowed although the true country is not licensed
}

// BlockRate returns blocked/requests.
func (s GeoBlockStats) BlockRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Blocked) / float64(s.Requests)
}

// SpuriousRate returns spuriously-blocked/requests.
func (s GeoBlockStats) SpuriousRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Spurious) / float64(s.Requests)
}

// Record folds one decision into the stats, given the true country.
func (s *GeoBlockStats) Record(db *LicenseDB, obj content.ID, d AccessDecision, trueISO string) {
	s.Requests++
	if !d.Allowed {
		s.Blocked++
		if d.Spurious {
			s.Spurious++
		}
		return
	}
	if !db.Lookup(obj).Allows(trueISO) {
		s.Falsely++
	}
}

func (s GeoBlockStats) String() string {
	return fmt.Sprintf("requests=%d blocked=%d (%.1f%%) spurious=%d (%.1f%%) falselyAllowed=%d",
		s.Requests, s.Blocked, 100*s.BlockRate(), s.Spurious, 100*s.SpuriousRate(), s.Falsely)
}
