package cdn

import (
	"testing"

	"spacecdn/internal/content"
	"spacecdn/internal/geo"
)

func TestLicenseAllows(t *testing.T) {
	unrestricted := License{}
	if !unrestricted.Unrestricted() || !unrestricted.Allows("ZZ") {
		t.Error("empty license should allow everyone")
	}
	l := License{AllowedCountries: []string{"MZ", "ZA"}}
	if !l.Allows("MZ") || !l.Allows("mz") {
		t.Error("whitelisted country blocked (case sensitivity?)")
	}
	if l.Allows("DE") {
		t.Error("non-whitelisted country allowed")
	}
}

func TestLicenseDB(t *testing.T) {
	db := NewLicenseDB()
	if db.Len() != 0 {
		t.Fatal("fresh DB not empty")
	}
	db.Set("x", License{AllowedCountries: []string{"de"}})
	if db.Len() != 1 {
		t.Error("Set did not record")
	}
	if !db.Lookup("x").Allows("DE") {
		t.Error("lookup lost normalization")
	}
	if !db.Lookup("unknown").Allows("ANY") {
		t.Error("missing entries must be unrestricted")
	}
}

func TestCheckAccessSpurious(t *testing.T) {
	db := NewLicenseDB()
	db.Set("match", License{AllowedCountries: []string{"MZ"}})

	// Terrestrial Mozambican: geolocated correctly, allowed.
	d := CheckAccess(db, "match", "MZ", "MZ")
	if !d.Allowed || d.Spurious {
		t.Errorf("terrestrial decision wrong: %+v", d)
	}

	// Starlink Mozambican: geolocated at the Frankfurt PoP => blocked even
	// though their true country is licensed. The paper's complaint.
	d = CheckAccess(db, "match", "DE", "MZ")
	if d.Allowed {
		t.Error("PoP-geolocated client should be blocked")
	}
	if !d.Spurious {
		t.Error("block should be flagged spurious")
	}

	// German client blocked legitimately: not spurious.
	d = CheckAccess(db, "match", "DE", "DE")
	if d.Allowed || d.Spurious {
		t.Errorf("legitimate block misclassified: %+v", d)
	}

	// Unrestricted object: always allowed.
	d = CheckAccess(db, "open", "DE", "MZ")
	if !d.Allowed {
		t.Error("unrestricted object blocked")
	}
}

func TestCheckAccessFalselyAllowed(t *testing.T) {
	// The inverse leak: a German Starlink roamer whose PoP is in MZ would be
	// allowed MZ-only content. Stats must count it.
	db := NewLicenseDB()
	db.Set("match", License{AllowedCountries: []string{"MZ"}})
	var s GeoBlockStats
	d := CheckAccess(db, "match", "MZ", "DE")
	s.Record(db, "match", d, "DE")
	if s.Falsely != 1 {
		t.Errorf("falsely allowed not counted: %+v", s)
	}
}

func TestGeoBlockStats(t *testing.T) {
	db := NewLicenseDB()
	db.Set("o", License{AllowedCountries: []string{"MZ"}})
	var s GeoBlockStats
	for i := 0; i < 6; i++ {
		d := CheckAccess(db, "o", "DE", "MZ") // spurious block
		s.Record(db, "o", d, "MZ")
	}
	for i := 0; i < 4; i++ {
		d := CheckAccess(db, "o", "MZ", "MZ") // allowed
		s.Record(db, "o", d, "MZ")
	}
	if s.Requests != 10 || s.Blocked != 6 || s.Spurious != 6 {
		t.Errorf("stats = %+v", s)
	}
	if s.BlockRate() != 0.6 || s.SpuriousRate() != 0.6 {
		t.Errorf("rates = %v/%v", s.BlockRate(), s.SpuriousRate())
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
	var empty GeoBlockStats
	if empty.BlockRate() != 0 || empty.SpuriousRate() != 0 {
		t.Error("empty rates should be 0")
	}
}

func TestGenerateNationalLicenses(t *testing.T) {
	cat, err := content.GenerateCatalog(content.CatalogConfig{
		Objects: 2000, MeanObjectBytes: 1 << 20, ZipfS: 0.9, RegionBoost: 8, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	db := GenerateNationalLicenses(cat, 0.25, 7)
	frac := float64(db.Len()) / float64(cat.Len())
	if frac < 0.18 || frac > 0.32 {
		t.Errorf("licensed fraction = %v, want ~0.25", frac)
	}
	// Licenses are national: exactly one allowed country, in the object's
	// home region's market list.
	checked := 0
	for i := 0; i < cat.Len(); i++ {
		o := cat.ByRank(geo.RegionEurope, i)
		l := db.Lookup(o.ID)
		if l.Unrestricted() {
			continue
		}
		checked++
		if len(l.AllowedCountries) != 1 {
			t.Fatalf("license has %d countries", len(l.AllowedCountries))
		}
		cc, ok := geo.CountryByISO(l.AllowedCountries[0])
		if !ok {
			t.Fatalf("license references unknown country %s", l.AllowedCountries[0])
		}
		if cc.Region != o.Region {
			t.Errorf("object of region %v licensed to %s (%v)", o.Region, cc.ISO2, cc.Region)
		}
	}
	if checked == 0 {
		t.Fatal("no restricted objects inspected")
	}
	// Determinism.
	db2 := GenerateNationalLicenses(cat, 0.25, 7)
	if db2.Len() != db.Len() {
		t.Error("license generation not deterministic")
	}
	// Zero fraction.
	if GenerateNationalLicenses(cat, 0, 7).Len() != 0 {
		t.Error("zero fraction should restrict nothing")
	}
}
