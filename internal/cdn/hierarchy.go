package cdn

import (
	"fmt"
	"time"

	"spacecdn/internal/cache"
	"spacecdn/internal/content"
	"spacecdn/internal/geo"
	"spacecdn/internal/stats"
	"spacecdn/internal/terrestrial"
)

// Hierarchy adds the paper's §2 description — "a content delivery network
// is a hierarchy of geo-distributed servers" — as a second caching tier:
// regional hubs between the edges and the origins. An edge miss tries the
// hub serving the edge's region before falling back to the origin, which is
// exactly how large CDNs bound origin offload.

// regionalHubCities hosts one hub per region.
var regionalHubCities = map[geo.Region]string{
	geo.RegionAfrica:       "Johannesburg, ZA",
	geo.RegionEurope:       "Frankfurt, DE",
	geo.RegionNorthAmerica: "Ashburn, US",
	geo.RegionSouthAmerica: "Sao Paulo, BR",
	geo.RegionAsia:         "Singapore, SG",
	geo.RegionOceania:      "Sydney, AU",
}

// Hub is a regional cache tier.
type Hub struct {
	Region geo.Region
	City   geo.City
	Cache  cache.Cache
}

// Hierarchy is a two-tier cache deployment over a CDN.
type Hierarchy struct {
	cdn  *CDN
	hubs map[geo.Region]*Hub
	// HubCacheBytes is each hub's capacity (typically much larger than an
	// edge).
	hubProcMs float64
}

// NewHierarchy attaches regional hubs to a CDN deployment.
func NewHierarchy(c *CDN, hubCacheBytes int64) (*Hierarchy, error) {
	if hubCacheBytes <= 0 {
		return nil, fmt.Errorf("cdn: hub capacity must be positive")
	}
	h := &Hierarchy{cdn: c, hubs: make(map[geo.Region]*Hub), hubProcMs: 2}
	for region, cityName := range regionalHubCities {
		city, ok := geo.CityByName(cityName)
		if !ok {
			return nil, fmt.Errorf("cdn: unknown hub city %q", cityName)
		}
		h.hubs[region] = &Hub{
			Region: region,
			City:   city,
			Cache:  cache.NewLRU(hubCacheBytes),
		}
	}
	return h, nil
}

// Hub returns the hub serving a region.
func (h *Hierarchy) Hub(r geo.Region) (*Hub, bool) {
	hub, ok := h.hubs[r]
	return hub, ok
}

// Tier labels where a hierarchical fetch was served from.
type Tier int

// Service tiers, nearest first.
const (
	TierEdge Tier = iota
	TierHub
	TierOrigin
)

func (t Tier) String() string {
	switch t {
	case TierEdge:
		return "edge"
	case TierHub:
		return "hub"
	case TierOrigin:
		return "origin"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// HierFetchResult describes one hierarchical fetch.
type HierFetchResult struct {
	Tier Tier
	// TTFB from the client's perspective, given clientRTT to the edge.
	TTFB time.Duration
}

// Fetch serves an object through edge -> hub -> origin, filling caches on
// the way back down.
func (h *Hierarchy) Fetch(e *Edge, obj content.Object, clientRTT time.Duration, rng *stats.Rand) HierFetchResult {
	edgeProc := time.Duration(h.cdn.cfg.EdgeProcMs * float64(time.Millisecond))
	if e.Cache.Get(cache.Key(obj.ID)) {
		return HierFetchResult{Tier: TierEdge, TTFB: clientRTT + edgeProc}
	}
	item := cache.Item{Key: cache.Key(obj.ID), Size: obj.Bytes, Tag: obj.Region.String()}

	hub := h.hubs[e.City.Region]
	hubRTT := 2*terrestrial.FiberDelay(geo.HaversineKm(e.City.Loc, hub.City.Loc)*1.35) +
		time.Duration(h.hubProcMs*float64(time.Millisecond))
	if hub.Cache.Get(cache.Key(obj.ID)) {
		e.Cache.Put(item)
		return HierFetchResult{Tier: TierHub, TTFB: clientRTT + edgeProc + hubRTT}
	}

	origin := h.cdn.NearestOrigin(hub.City.Loc)
	originRTT := 2*terrestrial.FiberDelay(geo.HaversineKm(hub.City.Loc, origin.Loc)*1.35) +
		time.Duration(h.cdn.cfg.OriginProcMs*float64(time.Millisecond)) +
		time.Duration(rng.Exponential(2)*float64(time.Millisecond))
	hub.Cache.Put(item)
	e.Cache.Put(item)
	return HierFetchResult{Tier: TierOrigin, TTFB: clientRTT + edgeProc + hubRTT + originRTT}
}
