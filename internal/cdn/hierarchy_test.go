package cdn

import (
	"testing"
	"time"

	"spacecdn/internal/cache"
	"spacecdn/internal/content"
	"spacecdn/internal/geo"
	"spacecdn/internal/stats"
	"spacecdn/internal/terrestrial"
)

func newHierarchy(t *testing.T) (*CDN, *Hierarchy) {
	t.Helper()
	c, err := New(DefaultConfig(), terrestrial.NewModel())
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHierarchy(c, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	return c, h
}

func TestNewHierarchyValidation(t *testing.T) {
	c, _ := newHierarchy(t)
	if _, err := NewHierarchy(c, 0); err == nil {
		t.Error("zero hub capacity accepted")
	}
}

func TestHierarchyHubsCoverRegions(t *testing.T) {
	_, h := newHierarchy(t)
	for _, r := range geo.Regions() {
		hub, ok := h.Hub(r)
		if !ok {
			t.Errorf("no hub for %v", r)
			continue
		}
		if hub.City.Region != r {
			t.Errorf("hub for %v sits in %v", r, hub.City.Region)
		}
	}
}

func TestHierarchicalFetchTiers(t *testing.T) {
	c, h := newHierarchy(t)
	rng := stats.NewRand(1)
	e, _ := c.EdgeIn("Maputo, MZ")
	obj := content.Object{ID: "tiered", Bytes: 1 << 20, Region: geo.RegionAfrica}
	clientRTT := 20 * time.Millisecond

	// First fetch: misses everywhere -> origin.
	r1 := h.Fetch(e, obj, clientRTT, rng)
	if r1.Tier != TierOrigin {
		t.Fatalf("first fetch tier = %v", r1.Tier)
	}
	// Both tiers are now filled: a different edge in the same region hits
	// the hub.
	e2, _ := c.EdgeIn("Nairobi, KE")
	r2 := h.Fetch(e2, obj, clientRTT, rng)
	if r2.Tier != TierHub {
		t.Fatalf("regional sibling fetch tier = %v, want hub", r2.Tier)
	}
	// And the original edge now serves locally.
	r3 := h.Fetch(e, obj, clientRTT, rng)
	if r3.Tier != TierEdge {
		t.Fatalf("repeat fetch tier = %v, want edge", r3.Tier)
	}
	// Latency ordering: edge < hub < origin.
	if !(r3.TTFB < r2.TTFB && r2.TTFB < r1.TTFB) {
		t.Errorf("TTFB ordering broken: edge %v, hub %v, origin %v", r3.TTFB, r2.TTFB, r1.TTFB)
	}
	// The sibling edge is filled after its hub hit.
	if !e2.Cache.Peek(cache.Key(obj.ID)) {
		t.Error("hub hit did not fill the edge")
	}
	if tierName := TierEdge.String(); tierName != "edge" {
		t.Errorf("tier name = %s", tierName)
	}
}

func TestHierarchyBoundsOriginLoad(t *testing.T) {
	// With the hierarchy, N distinct edges in one region cause exactly one
	// origin fetch per object.
	c, h := newHierarchy(t)
	rng := stats.NewRand(2)
	obj := content.Object{ID: "one-origin-fetch", Bytes: 1 << 20, Region: geo.RegionEurope}
	originFetches := 0
	for _, name := range []string{"Frankfurt, DE", "London, GB", "Paris, FR", "Madrid, ES", "Milan, IT"} {
		e, ok := c.EdgeIn(name)
		if !ok {
			t.Fatalf("no edge in %s", name)
		}
		if h.Fetch(e, obj, 0, rng).Tier == TierOrigin {
			originFetches++
		}
	}
	if originFetches != 1 {
		t.Errorf("origin fetches = %d, want 1", originFetches)
	}
}
