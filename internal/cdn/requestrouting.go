package cdn

import (
	"fmt"

	"spacecdn/internal/geo"
	"spacecdn/internal/stats"
)

// Request routing (paper §2): "user requests are mapped to the 'optimal'
// CDN cache based on network conditions and server load, using techniques
// like DNS-based redirection, anycast routing, and IP geolocation". This
// file implements all three so experiments can show the paper's point is
// structural: for an LSN subscriber behind carrier-grade NAT, every one of
// these signals resolves to the PoP, not the user.

// RoutingMethod selects the mapping technique.
type RoutingMethod int

// The paper's three mapping techniques.
const (
	// MethodAnycast routes by BGP towards the client's network entry point.
	MethodAnycast RoutingMethod = iota
	// MethodDNSResolver maps by the recursive resolver's location (classic
	// DNS-based redirection without ECS).
	MethodDNSResolver
	// MethodDNSECS maps by the EDNS-Client-Subnet prefix — the client's
	// *public* address, which behind CGNAT is the egress, not the home.
	MethodDNSECS
	// MethodGeoIP maps by geolocating the client's public address.
	MethodGeoIP
)

func (m RoutingMethod) String() string {
	switch m {
	case MethodAnycast:
		return "anycast"
	case MethodDNSResolver:
		return "dns-resolver"
	case MethodDNSECS:
		return "dns-ecs"
	case MethodGeoIP:
		return "geoip"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// Vantage carries the signals visible to the mapping system for one client.
type Vantage struct {
	// ClientLoc is where the subscriber physically is (unknown to the CDN).
	ClientLoc geo.Point
	// ResolverLoc is where the ISP's recursive resolver answers from. LSN
	// operators host resolvers at the PoP; terrestrial ISPs in-region.
	ResolverLoc geo.Point
	// PublicIPLoc is where the client's public address geolocates: the home
	// ISP's footprint terrestrially, the CGNAT egress (PoP) over the LSN.
	PublicIPLoc geo.Point
}

// TerrestrialVantage builds the signals for a terrestrial subscriber: every
// signal points at the client's own metro.
func TerrestrialVantage(client geo.Point) Vantage {
	return Vantage{ClientLoc: client, ResolverLoc: client, PublicIPLoc: client}
}

// LSNVantage builds the signals for a satellite subscriber: everything the
// CDN can see points at the PoP.
func LSNVantage(client, pop geo.Point) Vantage {
	return Vantage{ClientLoc: client, ResolverLoc: pop, PublicIPLoc: pop}
}

// SelectEdge maps a request to an edge using the chosen technique. rng is
// used only by anycast's spread; pass nil for the deterministic nearest
// mapping.
func (c *CDN) SelectEdge(m RoutingMethod, v Vantage, rng *stats.Rand) *Edge {
	switch m {
	case MethodAnycast:
		if rng != nil {
			return c.SelectAnycast(v.PublicIPLoc, rng)
		}
		return c.NearestEdge(v.PublicIPLoc)
	case MethodDNSResolver:
		return c.NearestEdge(v.ResolverLoc)
	case MethodDNSECS, MethodGeoIP:
		return c.NearestEdge(v.PublicIPLoc)
	default:
		return c.NearestEdge(v.PublicIPLoc)
	}
}

// MappingErrorKm returns the distance between the client and the edge the
// method selects — the localization error the paper's §3 measures as
// latency.
func (c *CDN) MappingErrorKm(m RoutingMethod, v Vantage) float64 {
	e := c.SelectEdge(m, v, nil)
	return geo.HaversineKm(v.ClientLoc, e.City.Loc)
}
