package cdn

import (
	"testing"

	"spacecdn/internal/geo"
	"spacecdn/internal/stats"
	"spacecdn/internal/terrestrial"
)

func routingCDN(t *testing.T) *CDN {
	t.Helper()
	c, err := New(DefaultConfig(), terrestrial.NewModel())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func allMethods() []RoutingMethod {
	return []RoutingMethod{MethodAnycast, MethodDNSResolver, MethodDNSECS, MethodGeoIP}
}

func TestTerrestrialVantageLocalizesCorrectly(t *testing.T) {
	c := routingCDN(t)
	maputo, _ := geo.CityByName("Maputo, MZ")
	v := TerrestrialVantage(maputo.Loc)
	for _, m := range allMethods() {
		e := c.SelectEdge(m, v, nil)
		if e.City.Name != "Maputo" {
			t.Errorf("%v: terrestrial Maputo mapped to %s", m, e.City.Name)
		}
		if err := c.MappingErrorKm(m, v); err > 50 {
			t.Errorf("%v: terrestrial mapping error %v km", m, err)
		}
	}
}

func TestLSNVantageMislocalizesUnderEveryMethod(t *testing.T) {
	// The paper's structural point: for a CGNAT'd satellite subscriber,
	// every mapping signal (BGP entry, resolver, ECS prefix, GeoIP) points
	// at the PoP, so no technique fixes the mapping.
	c := routingCDN(t)
	maputo, _ := geo.CityByName("Maputo, MZ")
	fra, _ := geo.CityByName("Frankfurt, DE")
	v := LSNVantage(maputo.Loc, fra.Loc)
	for _, m := range allMethods() {
		e := c.SelectEdge(m, v, nil)
		if e.City.Name != "Frankfurt" {
			t.Errorf("%v: LSN Maputo mapped to %s, want Frankfurt", m, e.City.Name)
		}
		if err := c.MappingErrorKm(m, v); err < 8000 {
			t.Errorf("%v: LSN mapping error %v km, want ~8,800", m, err)
		}
	}
}

func TestAnycastSpreadWithRNG(t *testing.T) {
	c := routingCDN(t)
	london, _ := geo.CityByName("London, GB")
	v := TerrestrialVantage(london.Loc)
	rng := stats.NewRand(1)
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		seen[c.SelectEdge(MethodAnycast, v, rng).City.Name] = true
	}
	if len(seen) < 2 {
		t.Error("anycast with rng should spread across nearby sites")
	}
	// Deterministic variant pins the nearest.
	if e := c.SelectEdge(MethodAnycast, v, nil); e.City.Name != "London" {
		t.Errorf("deterministic anycast = %s", e.City.Name)
	}
}

func TestMethodString(t *testing.T) {
	names := map[RoutingMethod]string{
		MethodAnycast:     "anycast",
		MethodDNSResolver: "dns-resolver",
		MethodDNSECS:      "dns-ecs",
		MethodGeoIP:       "geoip",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %s, want %s", int(m), m.String(), want)
		}
	}
	if RoutingMethod(99).String() != "method(99)" {
		t.Error("unknown method name wrong")
	}
}

func TestResolverOnlyDiffersWhenResolverRemote(t *testing.T) {
	// A terrestrial client using a remote public resolver (e.g. a cloud
	// resolver in another country) gets mis-mapped by DNS-resolver routing
	// but not by ECS — the classic argument for ECS, which CGNAT then
	// defeats for LSN users.
	c := routingCDN(t)
	maputo, _ := geo.CityByName("Maputo, MZ")
	lisbon, _ := geo.CityByName("Lisbon, PT")
	v := Vantage{ClientLoc: maputo.Loc, ResolverLoc: lisbon.Loc, PublicIPLoc: maputo.Loc}
	if e := c.SelectEdge(MethodDNSResolver, v, nil); e.City.Name == "Maputo" {
		t.Error("remote resolver should mis-map without ECS")
	}
	if e := c.SelectEdge(MethodDNSECS, v, nil); e.City.Name != "Maputo" {
		t.Errorf("ECS should rescue the mapping, got %s", e.City.Name)
	}
}
