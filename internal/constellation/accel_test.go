package constellation

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"spacecdn/internal/geo"
	"spacecdn/internal/orbit"
	"spacecdn/internal/routing"
)

// randomPoints spreads test ground points over the sphere, biased to include
// the poles, the date line, and the equator — the grid's wraparound edges.
func randomPoints(rng *rand.Rand, n int) []geo.Point {
	pts := []geo.Point{
		geo.NewPoint(89.9, 10),
		geo.NewPoint(-89.9, -170),
		geo.NewPoint(0, 180),
		geo.NewPoint(0, -180),
		geo.NewPoint(53, 179.97),
		geo.NewPoint(-53, 0.01),
	}
	for len(pts) < n {
		pts = append(pts, geo.NewPoint(rng.Float64()*180-90, rng.Float64()*360-180))
	}
	return pts
}

func TestVisibleGridMatchesScan(t *testing.T) {
	c := MustNew(DefaultConfig())
	rng := rand.New(rand.NewSource(42))
	for _, tm := range []time.Duration{0, 97 * time.Second, 31 * time.Minute} {
		snap := c.Snapshot(tm)
		for _, pt := range randomPoints(rng, 60) {
			want := snap.VisibleScan(pt)
			got := snap.Visible(pt)
			if len(got) != len(want) {
				t.Fatalf("t=%v %v: grid found %d sats, scan %d", tm, pt, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("t=%v %v sat %d: grid %+v != scan %+v", tm, pt, i, got[i], want[i])
				}
			}
		}
	}
}

func TestBestVisibleGridMatchesScan(t *testing.T) {
	c := MustNew(DefaultConfig())
	rng := rand.New(rand.NewSource(43))
	snap := c.Snapshot(5 * time.Minute)
	for _, pt := range randomPoints(rng, 120) {
		want, wok := snap.BestVisibleScan(pt)
		got, gok := snap.BestVisible(pt)
		if wok != gok || got != want {
			t.Fatalf("%v: grid (%+v,%v) != scan (%+v,%v)", pt, got, gok, want, wok)
		}
	}
}

func TestNearestGridMatchesScan(t *testing.T) {
	c := MustNew(DefaultConfig())
	rng := rand.New(rand.NewSource(44))
	snap := c.Snapshot(11 * time.Minute)
	for _, pt := range randomPoints(rng, 120) {
		want := snap.NearestScan(pt)
		got := snap.Nearest(pt)
		if got != want {
			t.Fatalf("%v: grid nearest %+v != scan %+v", pt, got, want)
		}
	}
}

func TestBestVisibleZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	c := MustNew(DefaultConfig())
	snap := c.Snapshot(0)
	pt := geo.NewPoint(40.7, -74)
	snap.BestVisible(pt) // build the grid outside the measurement
	allocs := testing.AllocsPerRun(100, func() {
		snap.BestVisible(pt)
	})
	if allocs != 0 {
		t.Fatalf("BestVisible allocs/op = %v, want 0", allocs)
	}
}

// islGraphReference is the pre-acceleration map-deduped build, retained
// verbatim as the order oracle: the production build must emit the same
// edges in the same order so downstream tie-breaking is unchanged.
func islGraphReference(s *Snapshot) *routing.Graph {
	g := routing.NewGraph(len(s.pos))
	type link struct{ a, b SatID }
	seen := make(map[link]bool, 2*len(s.pos))
	for id := 0; id < len(s.pos); id++ {
		for _, nb := range s.ISLNeighbors(SatID(id)) {
			a, b := SatID(id), nb
			if a > b {
				a, b = b, a
			}
			if a == b || seen[link{a, b}] {
				continue
			}
			seen[link{a, b}] = true
			w := s.ISLDistanceKm(a, b) / orbit.LightSpeedKmPerSec * 1000
			g.AddUndirected(routing.NodeID(a), routing.NodeID(b), w)
		}
	}
	return g
}

func assertGraphsIdentical(t *testing.T, got, want *routing.Graph) {
	t.Helper()
	if got.Len() != want.Len() || got.EdgeCount() != want.EdgeCount() {
		t.Fatalf("graph shape: got %d nodes/%d edges, want %d/%d",
			got.Len(), got.EdgeCount(), want.Len(), want.EdgeCount())
	}
	for n := 0; n < want.Len(); n++ {
		ge, we := got.Neighbors(routing.NodeID(n)), want.Neighbors(routing.NodeID(n))
		if len(ge) != len(we) {
			t.Fatalf("node %d: %d edges, want %d", n, len(ge), len(we))
		}
		for i := range we {
			if ge[i] != we[i] {
				t.Fatalf("node %d edge %d: got %+v, want %+v (order must match)", n, i, ge[i], we[i])
			}
		}
	}
}

func TestISLGraphMatchesMapReference(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"default", DefaultConfig()},
		{"no-cross-plane", func() Config {
			cfg := DefaultConfig()
			cfg.CrossPlaneISLs = false
			return cfg
		}()},
		{"two-per-plane", Config{
			// SatsPerPlane=2 makes next-slot and prev-slot the same
			// neighbour — the in-list duplicate case.
			Walker: orbit.Walker{
				AltitudeKm: 550, InclinationDeg: 53,
				Planes: 6, SatsPerPlane: 2, PhasingF: 1,
			},
			MinElevationDeg: 25,
			CrossPlaneISLs:  true,
		}},
		{"asymmetric-phasing", Config{
			Walker: orbit.Walker{
				AltitudeKm: 550, InclinationDeg: 53,
				Planes: 5, SatsPerPlane: 7, PhasingF: 3,
			},
			MinElevationDeg: 25,
			CrossPlaneISLs:  true,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := MustNew(tc.cfg)
			for _, tm := range []time.Duration{0, 13 * time.Minute} {
				snap := c.Snapshot(tm)
				assertGraphsIdentical(t, snap.ISLGraph(), islGraphReference(snap))
			}
		})
	}
}

func TestPathTreeMemo(t *testing.T) {
	c := MustNew(DefaultConfig())
	snap := c.Snapshot(0)
	g := snap.ISLGraph()
	c.ResetPathMemoCounters()

	t1 := snap.PathTree(7)
	if h, m := c.PathMemoCounters(); h != 0 || m != 1 {
		t.Fatalf("after first build: hits=%d misses=%d, want 0/1", h, m)
	}
	t2 := snap.PathTree(7)
	if t1 != t2 {
		t.Fatal("second PathTree call must return the memoized tree")
	}
	if h, _ := c.PathMemoCounters(); h != 1 {
		t.Fatalf("hits = %d, want 1", h)
	}
	// The memoized tree must agree with a direct Dijkstra.
	dist := g.ShortestPathsFrom(7)
	for n := 0; n < g.Len(); n++ {
		if t1.Dist(routing.NodeID(n)) != dist[n] {
			t.Fatalf("node %d: memo dist %v != dijkstra %v", n, t1.Dist(routing.NodeID(n)), dist[n])
		}
	}
	// A bounded query hits the full-tree memo; a cold source does not.
	if t3 := snap.PathTreeWithin(7, 1); t3 != t1 {
		t.Fatal("PathTreeWithin must serve the memoized full tree")
	}
	if t4 := snap.PathTreeWithin(9, 5); t4 == nil {
		t.Fatal("PathTreeWithin on a cold source must compute a bounded tree")
	}
	if t5 := snap.PathTree(9); t5 == nil || !t5.Reachable(0) {
		t.Fatal("full PathTree after a bounded miss must still settle everything")
	}
	if snap.PathTree(-1) != nil || snap.PathTree(SatID(g.Len())) != nil {
		t.Fatal("out-of-range sources must return nil")
	}
}

func TestPathTreeMemoEviction(t *testing.T) {
	cfg := DefaultConfig()
	c := MustNew(cfg)
	snap := c.Snapshot(0)
	// The scaled capacity is max(pathMemoCap, N) = 1,584 at the default
	// scale. Fill past it; the memo must stay bounded and keep serving
	// correct trees. The fill needs more distinct sources than satellites,
	// so roll the memo generation to mint extra keys for the overflow.
	capacity := c.memoCap
	if capacity != c.Total() {
		t.Fatalf("memo capacity = %d, want satellite count %d", capacity, c.Total())
	}
	for i := 0; i < capacity; i++ {
		if snap.PathTree(SatID(i)) == nil {
			t.Fatalf("tree %d is nil", i)
		}
	}
	snap.memoGen++ // retire the old keys, as a sweep step would
	for i := 0; i < 32; i++ {
		if snap.PathTree(SatID(i)) == nil {
			t.Fatalf("post-roll tree %d is nil", i)
		}
	}
	if n := len(snap.memo.nodes); n != capacity {
		t.Fatalf("memo holds %d entries, want cap %d", n, capacity)
	}
	// The most recent sources are still memoized (pointer-equal on re-query).
	hot := snap.PathTree(31)
	if again := snap.PathTree(31); again != hot {
		t.Fatal("recently used tree was evicted")
	}
	snap.memoGen--
	// The oldest source was evicted: a re-query recomputes (equal values,
	// distinct pointer is acceptable — just verify correctness).
	tr := snap.PathTree(0)
	dist := snap.ISLGraph().ShortestPathsFrom(0)
	for n := 0; n < len(dist); n++ {
		if tr.Dist(routing.NodeID(n)) != dist[n] {
			t.Fatalf("recomputed tree wrong at node %d", n)
		}
	}
}

func TestPathTreeZeroAllocOnHit(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	c := MustNew(DefaultConfig())
	snap := c.Snapshot(0)
	snap.PathTree(3) // warm
	allocs := testing.AllocsPerRun(100, func() {
		tr := snap.PathTree(3)
		if _, ok := tr.HopsTo(900); !ok {
			t.Fatal("unreachable")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm PathTree allocs/op = %v, want 0", allocs)
	}
}

func TestVisGridCandidateWindowsAreConservative(t *testing.T) {
	// Every satellite within the slant-range prefilter must be yielded as a
	// candidate — otherwise grid results could silently miss satellites.
	c := MustNew(DefaultConfig())
	snap := c.Snapshot(7 * time.Minute)
	vg := snap.visGridLazy()
	maxSlant := geo.SlantRangeKm(c.cfg.Walker.AltitudeKm, c.cfg.MinElevationDeg)
	rng := rand.New(rand.NewSource(45))
	for _, pt := range randomPoints(rng, 40) {
		gv := pt.ToECEF()
		lam := vg.maxCentralAngleRad(gv.Norm(), maxSlant)
		inWindow := make(map[int32]bool)
		vg.forEachCandidate(pt.LatDeg, pt.LonDeg, lam, func(id int32) {
			if inWindow[id] {
				t.Fatalf("%v: satellite %d yielded twice", pt, id)
			}
			inWindow[id] = true
		})
		for id := range snap.pos {
			if snap.pos[id].Sub(gv).Norm() <= maxSlant && !inWindow[int32(id)] {
				t.Fatalf("%v: satellite %d within slant range but not a candidate", pt, id)
			}
		}
	}
}

func TestVisGridEmptyConstellationNearest(t *testing.T) {
	gm := newGridGeom(0)
	vg := &visGrid{geom: gm,
		start: make([]int32, gm.rows*gm.cols+1), minR: math.Inf(1)}
	if lam := vg.maxCentralAngleRad(geo.EarthRadiusKm, 1000); lam != 0 {
		t.Fatalf("empty grid central angle = %v, want 0", lam)
	}
}

func BenchmarkISLGraphBuild(b *testing.B) {
	c := MustNew(DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := c.Snapshot(time.Duration(i) * time.Second)
		snap.ISLGraph()
	}
}

func BenchmarkBestVisibleGrid(b *testing.B) {
	c := MustNew(DefaultConfig())
	snap := c.Snapshot(0)
	pt := geo.NewPoint(40.7, -74)
	snap.BestVisible(pt)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.BestVisible(pt)
	}
}

func BenchmarkBestVisibleScan(b *testing.B) {
	c := MustNew(DefaultConfig())
	snap := c.Snapshot(0)
	pt := geo.NewPoint(40.7, -74)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap.BestVisibleScan(pt)
	}
}
