// Package constellation assembles orbital mechanics into a queryable LEO
// constellation: satellite identities, time-indexed position snapshots, the
// +grid inter-satellite-link (ISL) topology, and ground visibility queries.
//
// A Snapshot freezes the constellation at one instant; all geometric queries
// (visible satellites, nearest satellite, ISL graph) run against a snapshot
// so that concurrent readers never observe satellites "move".
package constellation

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spacecdn/internal/geo"
	"spacecdn/internal/orbit"
	"spacecdn/internal/routing"
)

// SatID identifies a satellite as a dense index in [0, Total). Within one
// shell ids are plane-major (local index = plane*SatsPerPlane + slot); in a
// multi-shell composite each shell owns a contiguous id range starting at its
// offset, in Config.Shells order.
type SatID int

// WalkerShell is one Walker-delta shell of a (possibly multi-shell)
// constellation: its own altitude, inclination, plane count, satellites per
// plane and phasing factor.
type WalkerShell = orbit.Walker

// Config describes the constellation and its link geometry.
type Config struct {
	// Walker is the single-shell form. Mutually exclusive with Shells.
	Walker orbit.Walker
	// Shells is the multi-shell composite form: each shell contributes a
	// contiguous SatID range and a contiguous global plane-index range, in
	// order. When non-empty, Walker must be the zero value.
	Shells []WalkerShell
	// MinElevationDeg is the user-terminal elevation mask. Starlink
	// terminals track satellites above 25 degrees.
	MinElevationDeg float64
	// CrossPlaneISLs enables the east-west links of the +grid topology.
	// When false only intra-plane (north-south) ISLs exist. ISLs never
	// cross shells: real deployments keep laser links within a shell, where
	// relative geometry is stationary.
	CrossPlaneISLs bool
}

// shellList returns the configured shells in id order — the single Walker as
// a one-element list, or Shells verbatim.
func (cfg *Config) shellList() []orbit.Walker {
	if len(cfg.Shells) > 0 {
		return cfg.Shells
	}
	return []orbit.Walker{cfg.Walker}
}

// DefaultConfig returns the paper's simulation setup: Starlink Shell 1 with
// a 25 degree elevation mask and full +grid ISLs.
func DefaultConfig() Config {
	return Config{
		Walker:          orbit.StarlinkShell1(),
		MinElevationDeg: 25,
		CrossPlaneISLs:  true,
	}
}

// StarlinkGen2Config returns the three-shell Starlink Gen2 system (7,500
// satellites) with the default elevation mask and +grid ISLs.
func StarlinkGen2Config() Config {
	return Config{
		Shells:          orbit.StarlinkGen2(),
		MinElevationDeg: 25,
		CrossPlaneISLs:  true,
	}
}

// KuiperConfig returns the three-shell Project Kuiper system (3,236
// satellites) with the default elevation mask and +grid ISLs.
func KuiperConfig() Config {
	return Config{
		Shells:          orbit.Kuiper(),
		MinElevationDeg: 25,
		CrossPlaneISLs:  true,
	}
}

// shellSpan is one shell's placement in the composite id space: its Walker
// geometry plus the first SatID and first global plane index it owns.
type shellSpan struct {
	w          orbit.Walker
	firstSat   SatID
	firstPlane int
}

// Constellation owns the satellite set. It is immutable after construction
// and safe for concurrent use; the lazily built ISL topology and the sweep
// cursor pool are internal caches of immutable derived state.
type Constellation struct {
	cfg      Config
	shells   []shellSpan // always >= 1; single-shell configs normalize to one span
	elements []orbit.Elements
	eng      *posEngine

	maxSlantKm float64   // slant range at the mask for the highest shell
	geom       *gridGeom // visibility-grid geometry sized to the satellite count
	memoCap    int       // per-snapshot path-memo capacity, scaled with size

	memoHits, memoMisses atomic.Int64 // path-memo effectiveness, per constellation

	topoOnce sync.Once
	topo     *islTopology // time-invariant +grid CSR structure, built once

	sweepPool sync.Pool // recycled *Sweep cursors with their pooled buffers
}

// New builds a constellation from the configuration.
func New(cfg Config) (*Constellation, error) {
	if len(cfg.Shells) > 0 && cfg.Walker != (orbit.Walker{}) {
		return nil, fmt.Errorf("constellation: Config.Walker and Config.Shells are mutually exclusive")
	}
	ws := cfg.shellList()
	for i, w := range ws {
		if err := w.Validate(); err != nil {
			return nil, fmt.Errorf("constellation: shell %d: %w", i, err)
		}
	}
	if cfg.MinElevationDeg < 0 || cfg.MinElevationDeg >= 90 {
		return nil, fmt.Errorf("constellation: elevation mask %v out of range [0,90)", cfg.MinElevationDeg)
	}
	c := &Constellation{cfg: cfg, shells: make([]shellSpan, 0, len(ws))}
	maxAlt := 0.0
	nextSat, nextPlane := SatID(0), 0
	for _, w := range ws {
		c.shells = append(c.shells, shellSpan{w: w, firstSat: nextSat, firstPlane: nextPlane})
		c.elements = append(c.elements, w.All()...)
		nextSat += SatID(w.Total())
		nextPlane += w.Planes
		if w.AltitudeKm > maxAlt {
			maxAlt = w.AltitudeKm
		}
	}
	c.maxSlantKm = geo.SlantRangeKm(maxAlt, cfg.MinElevationDeg)
	c.geom = newGridGeom(len(c.elements))
	c.memoCap = len(c.elements)
	if c.memoCap < pathMemoCap {
		c.memoCap = pathMemoCap
	}
	c.eng = newPosEngine(c.elements)
	return c, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(cfg Config) *Constellation {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the constellation configuration.
func (c *Constellation) Config() Config { return c.cfg }

// Total returns the number of satellites.
func (c *Constellation) Total() int { return len(c.elements) }

// ShellCount returns the number of Walker shells.
func (c *Constellation) ShellCount() int { return len(c.shells) }

// Shell returns the Walker geometry of shell i.
func (c *Constellation) Shell(i int) WalkerShell { return c.shells[i].w }

// ShellRange returns the contiguous SatID range [first, first+count) owned
// by shell i.
func (c *Constellation) ShellRange(i int) (first SatID, count int) {
	return c.shells[i].firstSat, c.shells[i].w.Total()
}

// ShellOf returns the index of the shell owning the satellite.
func (c *Constellation) ShellOf(id SatID) int { return c.shellOf(id) }

// GridDims reports the visibility-grid resolution the adaptive sizing rule
// chose for this constellation's satellite count. Diagnostic — ScaleBench
// records it next to its throughput numbers.
func (c *Constellation) GridDims() (rows, cols int) { return c.geom.rows, c.geom.cols }

// PathMemoCap reports the per-snapshot path-memo capacity, which scales with
// the satellite count so mega-constellation sweeps keep their hit rate.
func (c *Constellation) PathMemoCap() int { return c.memoCap }

// shellOf locates id's shell by a reverse linear scan over the (at most a
// handful of) spans — faster than binary search at realistic shell counts
// and branch-free for the single-shell case.
func (c *Constellation) shellOf(id SatID) int {
	for i := len(c.shells) - 1; i > 0; i-- {
		if id >= c.shells[i].firstSat {
			return i
		}
	}
	return 0
}

// Planes returns the total number of orbital planes across all shells.
// Plane indices are global: shell 0 owns planes [0, P0), shell 1 owns
// [P0, P0+P1), and so on.
func (c *Constellation) Planes() int {
	last := c.shells[len(c.shells)-1]
	return last.firstPlane + last.w.Planes
}

// SatsPerPlane returns the number of satellites per plane of the first
// shell. Every plane of a single-shell constellation has this count;
// multi-shell callers should use PlaneSlots, which is exact per plane.
func (c *Constellation) SatsPerPlane() int { return c.shells[0].w.SatsPerPlane }

// PlaneSlots returns the number of satellites in the given global plane.
func (c *Constellation) PlaneSlots(plane int) int {
	return c.shells[c.shellOfPlane(plane)].w.SatsPerPlane
}

// shellOfPlane locates the shell owning a global plane index.
func (c *Constellation) shellOfPlane(plane int) int {
	for i := len(c.shells) - 1; i > 0; i-- {
		if plane >= c.shells[i].firstPlane {
			return i
		}
	}
	return 0
}

// Plane returns the global plane index of a satellite.
func (c *Constellation) Plane(id SatID) int {
	sh := &c.shells[c.shellOf(id)]
	return sh.firstPlane + (int(id)-int(sh.firstSat))/sh.w.SatsPerPlane
}

// Slot returns the in-plane slot index of a satellite.
func (c *Constellation) Slot(id SatID) int {
	sh := &c.shells[c.shellOf(id)]
	return (int(id) - int(sh.firstSat)) % sh.w.SatsPerPlane
}

// ID returns the satellite identifier for a (global plane, slot) pair.
func (c *Constellation) ID(plane, slot int) SatID {
	sh := &c.shells[c.shellOfPlane(plane)]
	return sh.firstSat + SatID((plane-sh.firstPlane)*sh.w.SatsPerPlane+slot)
}

// Elements returns the orbital elements of a satellite.
func (c *Constellation) Elements(id SatID) orbit.Elements { return c.elements[id] }

// Snapshot captures every satellite position at time t after epoch.
func (c *Constellation) Snapshot(t time.Duration) *Snapshot {
	pos := make([]geo.Vec3, len(c.elements))
	c.eng.positionsInto(t, pos)
	s := &Snapshot{c: c, t: t, pos: pos}
	s.memo.cap = c.memoCap
	return s
}

// Snapshot is the constellation geometry frozen at one instant. It is
// immutable and safe for concurrent use. The ISL graph is built lazily on
// first request and cached; the lazy build is guarded by a sync.Once so
// concurrent first callers (parallel request shards) share one build.
type Snapshot struct {
	c   *Constellation
	t   time.Duration
	pos []geo.Vec3

	islOnce  sync.Once
	islGraph *routing.Graph // built once on first ISLGraph call
	islW     []float64      // per-link weight buffer backing islGraph, topology edge order

	gridOnce sync.Once
	grid     *visGrid // lat/lon cell index, built once on first visibility query

	// memoGen distinguishes sweep steps in the path memo: a sweep cursor
	// mutates its snapshot in place and bumps the generation each advance,
	// so memo keys become (source, step, fault epoch) without any per-step
	// clearing. Always 0 for a fresh immutable snapshot.
	memoGen uint32
	memo    pathMemo // per-snapshot shortest-path trees, keyed (source, generation, fault epoch)

	maskMu sync.Mutex
	masked map[uint64]*MaskedView // fault epoch -> cached fault-aware view

	// Visibility memo: ground stations and city clients query Visible at the
	// same points thousands of times per snapshot, and the list's size (and
	// sort cost) grows with the constellation — without the memo the ground
	// fallback stage alone makes resolve throughput degrade linearly in
	// satellite count. Entries are retired by sweep generation, like the path
	// memo, but with a lazy clear so advances stay allocation-free.
	visMu   sync.Mutex
	visGen  uint32
	visMemo map[geo.Point][]VisibleSat
}

// memoEpoch composes the snapshot's sweep generation with a fault epoch into
// one memo key component. Fault epochs are outage-interval indices and stay
// far below 2^32 for any realistic plan; the top bits carry the generation so
// trees settled over a previous sweep step can never be served after the
// positions moved. For a fresh snapshot (generation 0) the key equals the
// fault epoch, preserving the epoch-0-is-healthy convention.
func (s *Snapshot) memoEpoch(faultEpoch uint64) uint64 {
	return uint64(s.memoGen)<<32 | (faultEpoch & (1<<32 - 1))
}

// clearMasked drops every cached fault-aware view; the sweep cursor calls it
// on advance because masked views cache ISL graphs whose weights would
// otherwise go stale. Deleting in place keeps the map's storage, so the
// steady-state sweep step stays allocation-free.
func (s *Snapshot) clearMasked() {
	s.maskMu.Lock()
	for k := range s.masked {
		delete(s.masked, k)
	}
	s.maskMu.Unlock()
}

// Time returns the snapshot's offset from the constellation epoch.
func (s *Snapshot) Time() time.Duration { return s.t }

// Constellation returns the parent constellation.
func (s *Snapshot) Constellation() *Constellation { return s.c }

// Position returns the ECEF position of a satellite in this snapshot.
func (s *Snapshot) Position(id SatID) geo.Vec3 { return s.pos[id] }

// SubPoint returns the geographic point under a satellite.
func (s *Snapshot) SubPoint(id SatID) geo.Point { return s.pos[id].ToPoint() }

// ISLNeighbors returns the +grid neighbours of a satellite: the two
// intra-plane neighbours (previous and next slot) and, when cross-plane ISLs
// are enabled, the phase-nearest slot in each adjacent plane. Phase-nearest
// pairing keeps link lengths physical across the phasing seam between the
// last and first plane, where same-slot satellites can be a quarter orbit
// apart.
func (s *Snapshot) ISLNeighbors(id SatID) []SatID {
	return s.c.appendISLNeighbors(id, make([]SatID, 0, 4))
}

// appendISLNeighbors appends the +grid neighbours of id to out and returns
// the extended slice. The append count is fixed per configuration: two
// intra-plane entries, plus two cross-plane entries when enabled. Neighbours
// stay within id's shell — plane and slot arithmetic is local to the shell's
// Walker, offset back into the composite id space. The neighbour set depends
// only on plane/slot indices, never on time — which is what lets the
// topology be hoisted out of the per-snapshot build.
func (c *Constellation) appendISLNeighbors(id SatID, out []SatID) []SatID {
	sh := &c.shells[c.shellOf(id)]
	w := sh.w
	base := int(sh.firstSat)
	local := int(id) - base
	p, k := local/w.SatsPerPlane, local%w.SatsPerPlane
	out = append(out,
		SatID(base+p*w.SatsPerPlane+(k+1)%w.SatsPerPlane),
		SatID(base+p*w.SatsPerPlane+(k-1+w.SatsPerPlane)%w.SatsPerPlane),
	)
	if c.cfg.CrossPlaneISLs {
		east := (p + 1) % w.Planes
		west := (p - 1 + w.Planes) % w.Planes
		out = append(out,
			SatID(base+east*w.SatsPerPlane+crossPlaneSlot(w, p, k, east)),
			SatID(base+west*w.SatsPerPlane+crossPlaneSlot(w, p, k, west)),
		)
	}
	return out
}

// crossPlaneSlot returns the slot in plane q of shell w whose orbital phase
// is nearest to that of satellite (p, k). Since all satellites of a shell
// advance at the same rate, the pairing is time-invariant.
func crossPlaneSlot(w orbit.Walker, p, k, q int) int {
	// phase(q, s) = 360*s/S + 360*F*q/(P*S); solve for s nearest to
	// phase(p, k).
	phase := 360*float64(k)/float64(w.SatsPerPlane) +
		360*float64(w.PhasingF)*float64(p)/float64(w.Planes*w.SatsPerPlane)
	base := 360 * float64(w.PhasingF) * float64(q) / float64(w.Planes*w.SatsPerPlane)
	s := int(math.Round((phase - base) * float64(w.SatsPerPlane) / 360))
	s %= w.SatsPerPlane
	if s < 0 {
		s += w.SatsPerPlane
	}
	return s
}

// ISLDistanceKm returns the straight-line distance between two satellites.
func (s *Snapshot) ISLDistanceKm(a, b SatID) float64 {
	return s.pos[a].Sub(s.pos[b]).Norm()
}

// ISLDelay returns the one-way laser-link propagation delay between two
// satellites in this snapshot.
func (s *Snapshot) ISLDelay(a, b SatID) time.Duration {
	return orbit.PropagationDelay(s.ISLDistanceKm(a, b))
}

// ISLGraph returns the +grid ISL topology with edge weights equal to the
// one-way propagation delay in milliseconds. The graph is built once per
// snapshot, safe under concurrent callers; the returned value is shared and
// must not be mutated.
func (s *Snapshot) ISLGraph() *routing.Graph {
	s.islOnce.Do(func() {
		s.islGraph = s.buildISLGraph(nil)
	})
	return s.islGraph
}

// buildISLGraph constructs the +grid graph at this snapshot's positions,
// omitting edges for which skip returns true (nil skips nothing — the full
// graph). The time-invariant adjacency comes from the constellation's shared
// CSR topology; the full build fills it with this instant's weights in one
// pass, and a masked build replays the recorded edge list through the skip
// predicate, so surviving edges keep exactly the adjacency order of the full
// build — a masked build is the full build minus edges, never a reordering.
func (s *Snapshot) buildISLGraph(skip func(lo, hi SatID) bool) *routing.Graph {
	if skip == nil {
		return s.buildISLGraphCSR()
	}
	topo := s.c.topology()
	g := routing.NewGraph(len(s.pos))
	for _, e := range topo.edges {
		if skip(e.A, e.B) {
			continue
		}
		w := s.ISLDistanceKm(e.A, e.B) / orbit.LightSpeedKmPerSec * 1000
		g.AddUndirected(routing.NodeID(e.A), routing.NodeID(e.B), w)
	}
	return g
}

// buildISLGraphScan is the reference implementation of buildISLGraph: the
// incremental dedupe scan that discovers the adjacency from scratch at every
// call. Kept for equivalence tests proving the hoisted topology reproduces
// its edge set, adjacency order and weights exactly.
func (s *Snapshot) buildISLGraphScan(skip func(lo, hi SatID) bool) *routing.Graph {
	n := len(s.pos)
	g := routing.NewGraph(n)
	deg := 2
	if s.c.cfg.CrossPlaneISLs {
		deg = 4
	}
	// Flat neighbour table: node id's list is nbrs[id*deg:(id+1)*deg].
	// Having every list at hand replaces the map-based dedupe with direct
	// ordering checks while keeping the edge insertion order — and hence
	// the adjacency lists downstream algorithms iterate — identical to
	// the map version's first-encounter order.
	nbrs := make([]SatID, 0, deg*n)
	for id := 0; id < n; id++ {
		nbrs = s.c.appendISLNeighbors(SatID(id), nbrs)
	}
	contains := func(list []SatID, x SatID) bool {
		for _, v := range list {
			if v == x {
				return true
			}
		}
		return false
	}
	for id := 0; id < n; id++ {
		a := SatID(id)
		list := nbrs[id*deg : (id+1)*deg]
		for j, b := range list {
			if b == a {
				continue
			}
			// Add the undirected edge only at its first encounter in the
			// scan: skip when the pair already appeared earlier in this
			// node's own list (degenerate small rings), or — for b < a —
			// in b's list, which the scan visited first. The b < a case
			// with a absent from b's list happens under phase-nearest
			// pairing, which is not always symmetric.
			if contains(list[:j], b) {
				continue
			}
			if b < a && contains(nbrs[int(b)*deg:(int(b)+1)*deg], a) {
				continue
			}
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			if skip != nil && skip(lo, hi) {
				continue
			}
			w := s.ISLDistanceKm(lo, hi) / orbit.LightSpeedKmPerSec * 1000
			g.AddUndirected(routing.NodeID(lo), routing.NodeID(hi), w)
		}
	}
	return g
}

// VisibleSat is a satellite visible from a ground point.
type VisibleSat struct {
	ID           SatID
	ElevationDeg float64
	SlantKm      float64
}

// Visible returns all satellites above the configured elevation mask as seen
// from the ground point, sorted by descending elevation (best first). The
// query runs over the snapshot's visibility grid, inspecting only cells whose
// satellites could be within slant range; the result is identical to
// VisibleScan's full scan.
func (s *Snapshot) Visible(ground geo.Point) []VisibleSat {
	return s.visGridLazy().visible(s, ground)
}

// visMemoCap bounds the per-snapshot visibility memo. The working set is the
// fixed ground segment plus the client cities — a few hundred points — so the
// cap only matters for pathological query mixes, where excess points are
// simply served unmemoized.
const visMemoCap = 4096

// VisibleShared returns the same elevation-sorted list as Visible, memoized
// per snapshot and query point. The returned slice is shared with every other
// caller of the same point — treat it as read-only. Ground stations and
// recurring clients resolve thousands of times against one snapshot, and the
// visible list's size grows with the constellation, so memoizing here is what
// keeps the ground-fallback resolve stage sub-linear in satellite count.
// Sweep advances retire entries by generation (lazily, so advances stay
// allocation-free); a duplicate compute during a racing first query is
// harmless because the lists are deterministic.
func (s *Snapshot) VisibleShared(ground geo.Point) []VisibleSat {
	s.visMu.Lock()
	if s.visMemo == nil {
		s.visMemo = make(map[geo.Point][]VisibleSat, 64)
	} else if s.visGen != s.memoGen {
		clear(s.visMemo)
	}
	s.visGen = s.memoGen
	if out, ok := s.visMemo[ground]; ok {
		s.visMu.Unlock()
		return out
	}
	s.visMu.Unlock()
	out := s.Visible(ground)
	s.visMu.Lock()
	if len(s.visMemo) < visMemoCap && s.visGen == s.memoGen {
		s.visMemo[ground] = out
	}
	s.visMu.Unlock()
	return out
}

// VisibleScan is the reference implementation of Visible: a linear scan over
// every satellite. Kept for equivalence tests and benchmark baselines.
func (s *Snapshot) VisibleScan(ground geo.Point) []VisibleSat {
	g := ground.ToECEF()
	// Pre-filter with the coverage cone: a satellite can only be visible if
	// its distance from the ground point is at most the max slant range —
	// taken at the highest shell's altitude, which bounds every lower shell.
	maxSlant := s.c.maxSlantKm
	var out []VisibleSat
	for id, p := range s.pos {
		d := p.Sub(g).Norm()
		if d > maxSlant {
			continue
		}
		el := geo.ElevationDeg(g, p)
		if el >= s.c.cfg.MinElevationDeg {
			out = append(out, VisibleSat{ID: SatID(id), ElevationDeg: el, SlantKm: d})
		}
	}
	sortByElevation(out)
	return out
}

// sortByElevation orders visible satellites best-first, breaking exact
// elevation ties toward the lower id. The explicit tie-break matters for
// multi-shell composites: two shells can park satellites at bit-identical
// elevations (both exactly overhead), where an unstable sort would leave the
// winner to partition luck — and BestVisible's running-max tie-break must
// agree with the sorted order.
func sortByElevation(out []VisibleSat) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].ElevationDeg != out[j].ElevationDeg {
			return out[i].ElevationDeg > out[j].ElevationDeg
		}
		return out[i].ID < out[j].ID
	})
}

// BestVisible returns the highest-elevation visible satellite. ok is false
// when no satellite is above the mask (possible at extreme latitudes for an
// inclined shell). The grid-backed query allocates nothing, which keeps the
// per-request resolve path allocation-free.
func (s *Snapshot) BestVisible(ground geo.Point) (VisibleSat, bool) {
	return s.visGridLazy().bestVisible(s, ground)
}

// BestVisibleScan is the reference implementation of BestVisible (full scan
// and sort). Kept for equivalence tests and benchmark baselines.
func (s *Snapshot) BestVisibleScan(ground geo.Point) (VisibleSat, bool) {
	vis := s.VisibleScan(ground)
	if len(vis) == 0 {
		return VisibleSat{}, false
	}
	return vis[0], true
}

// Nearest returns the satellite with the smallest straight-line distance to
// the ground point, regardless of the elevation mask. It never fails for a
// non-empty constellation. The grid-backed search widens its angular window
// until the best candidate provably beats everything outside the window.
func (s *Snapshot) Nearest(ground geo.Point) VisibleSat {
	return s.visGridLazy().nearest(s, ground)
}

// NearestScan is the reference implementation of Nearest: a linear scan over
// every satellite. Kept for equivalence tests and benchmark baselines.
func (s *Snapshot) NearestScan(ground geo.Point) VisibleSat {
	g := ground.ToECEF()
	best := VisibleSat{ID: -1, SlantKm: math.Inf(1)}
	for id, p := range s.pos {
		if d := p.Sub(g).Norm(); d < best.SlantKm {
			best = VisibleSat{ID: SatID(id), SlantKm: d, ElevationDeg: geo.ElevationDeg(g, p)}
		}
	}
	return best
}

// UpDownDelay returns the one-way radio propagation delay between the ground
// point and the given satellite.
func (s *Snapshot) UpDownDelay(ground geo.Point, id SatID) time.Duration {
	d := s.pos[id].Sub(ground.ToECEF()).Norm()
	return orbit.PropagationDelay(d)
}

// OverheadWindows predicts the future intervals during which each satellite
// serves (is the best visible satellite for) the ground point, scanning
// [from, to) with the given step. Consecutive samples with the same best
// satellite merge into one window. Gaps (no visible satellite) are skipped.
type OverheadWindow struct {
	Sat   SatID
	Start time.Duration
	End   time.Duration
}

// OverheadWindows computes serving windows for a ground point by sampling.
// Step must be positive; typical values are 5-30 seconds. The sampling runs
// over a pooled sweep cursor, so the per-step cost is the incremental world
// update rather than a fresh snapshot build.
func (c *Constellation) OverheadWindows(ground geo.Point, from, to, step time.Duration) []OverheadWindow {
	if step <= 0 || to <= from {
		return nil
	}
	cur := c.Sweep(from, step)
	defer cur.Close()
	return OverheadWindowsOver(cur, ground, to)
}

// OverheadWindowsScan is the reference implementation of OverheadWindows: a
// fresh snapshot per sample. Kept for equivalence tests and benchmark
// baselines.
func (c *Constellation) OverheadWindowsScan(ground geo.Point, from, to, step time.Duration) []OverheadWindow {
	if step <= 0 || to <= from {
		return nil
	}
	cur := c.SweepScan(from, step)
	defer cur.Close()
	return OverheadWindowsOver(cur, ground, to)
}

// OverheadWindowsOver computes serving windows by sampling an existing
// cursor from its current time up to (but excluding) to, advancing it by its
// step. The cursor is left positioned at the last sample; the caller retains
// ownership and must Close it.
func OverheadWindowsOver(cur Cursor, ground geo.Point, to time.Duration) []OverheadWindow {
	step := cur.Step()
	if step <= 0 {
		return nil
	}
	var out []OverheadWindow
	var open *OverheadWindow
	for t := cur.Time(); t < to; t += step {
		snap := cur.AdvanceTo(t)
		best, ok := snap.BestVisible(ground)
		if !ok {
			open = nil
			continue
		}
		if open != nil && open.Sat == best.ID {
			open.End = t + step
			continue
		}
		out = append(out, OverheadWindow{Sat: best.ID, Start: t, End: t + step})
		open = &out[len(out)-1]
	}
	return out
}
