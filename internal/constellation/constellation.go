// Package constellation assembles orbital mechanics into a queryable LEO
// constellation: satellite identities, time-indexed position snapshots, the
// +grid inter-satellite-link (ISL) topology, and ground visibility queries.
//
// A Snapshot freezes the constellation at one instant; all geometric queries
// (visible satellites, nearest satellite, ISL graph) run against a snapshot
// so that concurrent readers never observe satellites "move".
package constellation

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"spacecdn/internal/geo"
	"spacecdn/internal/orbit"
	"spacecdn/internal/routing"
)

// SatID identifies a satellite as a dense index in [0, Total).
// Index = plane*SatsPerPlane + slot.
type SatID int

// Config describes the constellation and its link geometry.
type Config struct {
	Walker orbit.Walker
	// MinElevationDeg is the user-terminal elevation mask. Starlink
	// terminals track satellites above 25 degrees.
	MinElevationDeg float64
	// CrossPlaneISLs enables the east-west links of the +grid topology.
	// When false only intra-plane (north-south) ISLs exist.
	CrossPlaneISLs bool
}

// DefaultConfig returns the paper's simulation setup: Starlink Shell 1 with
// a 25 degree elevation mask and full +grid ISLs.
func DefaultConfig() Config {
	return Config{
		Walker:          orbit.StarlinkShell1(),
		MinElevationDeg: 25,
		CrossPlaneISLs:  true,
	}
}

// Constellation owns the satellite set. It is immutable after construction
// and safe for concurrent use; the lazily built ISL topology and the sweep
// cursor pool are internal caches of immutable derived state.
type Constellation struct {
	cfg      Config
	elements []orbit.Elements
	eng      *posEngine

	topoOnce sync.Once
	topo     *islTopology // time-invariant +grid CSR structure, built once

	sweepPool sync.Pool // recycled *Sweep cursors with their pooled buffers
}

// New builds a constellation from the configuration.
func New(cfg Config) (*Constellation, error) {
	if err := cfg.Walker.Validate(); err != nil {
		return nil, err
	}
	if cfg.MinElevationDeg < 0 || cfg.MinElevationDeg >= 90 {
		return nil, fmt.Errorf("constellation: elevation mask %v out of range [0,90)", cfg.MinElevationDeg)
	}
	els := cfg.Walker.All()
	return &Constellation{cfg: cfg, elements: els, eng: newPosEngine(els)}, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(cfg Config) *Constellation {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the constellation configuration.
func (c *Constellation) Config() Config { return c.cfg }

// Total returns the number of satellites.
func (c *Constellation) Total() int { return len(c.elements) }

// Planes returns the number of orbital planes.
func (c *Constellation) Planes() int { return c.cfg.Walker.Planes }

// SatsPerPlane returns the number of satellites per plane.
func (c *Constellation) SatsPerPlane() int { return c.cfg.Walker.SatsPerPlane }

// Plane returns the plane index of a satellite.
func (c *Constellation) Plane(id SatID) int { return int(id) / c.cfg.Walker.SatsPerPlane }

// Slot returns the in-plane slot index of a satellite.
func (c *Constellation) Slot(id SatID) int { return int(id) % c.cfg.Walker.SatsPerPlane }

// ID returns the satellite identifier for a (plane, slot) pair.
func (c *Constellation) ID(plane, slot int) SatID {
	return SatID(plane*c.cfg.Walker.SatsPerPlane + slot)
}

// Elements returns the orbital elements of a satellite.
func (c *Constellation) Elements(id SatID) orbit.Elements { return c.elements[id] }

// Snapshot captures every satellite position at time t after epoch.
func (c *Constellation) Snapshot(t time.Duration) *Snapshot {
	pos := make([]geo.Vec3, len(c.elements))
	c.eng.positionsInto(t, pos)
	return &Snapshot{c: c, t: t, pos: pos}
}

// Snapshot is the constellation geometry frozen at one instant. It is
// immutable and safe for concurrent use. The ISL graph is built lazily on
// first request and cached; the lazy build is guarded by a sync.Once so
// concurrent first callers (parallel request shards) share one build.
type Snapshot struct {
	c   *Constellation
	t   time.Duration
	pos []geo.Vec3

	islOnce  sync.Once
	islGraph *routing.Graph // built once on first ISLGraph call
	islW     []float64      // per-link weight buffer backing islGraph, topology edge order

	gridOnce sync.Once
	grid     *visGrid // lat/lon cell index, built once on first visibility query

	// memoGen distinguishes sweep steps in the path memo: a sweep cursor
	// mutates its snapshot in place and bumps the generation each advance,
	// so memo keys become (source, step, fault epoch) without any per-step
	// clearing. Always 0 for a fresh immutable snapshot.
	memoGen uint32
	memo    pathMemo // per-snapshot shortest-path trees, keyed (source, generation, fault epoch)

	maskMu sync.Mutex
	masked map[uint64]*MaskedView // fault epoch -> cached fault-aware view
}

// memoEpoch composes the snapshot's sweep generation with a fault epoch into
// one memo key component. Fault epochs are outage-interval indices and stay
// far below 2^32 for any realistic plan; the top bits carry the generation so
// trees settled over a previous sweep step can never be served after the
// positions moved. For a fresh snapshot (generation 0) the key equals the
// fault epoch, preserving the epoch-0-is-healthy convention.
func (s *Snapshot) memoEpoch(faultEpoch uint64) uint64 {
	return uint64(s.memoGen)<<32 | (faultEpoch & (1<<32 - 1))
}

// clearMasked drops every cached fault-aware view; the sweep cursor calls it
// on advance because masked views cache ISL graphs whose weights would
// otherwise go stale. Deleting in place keeps the map's storage, so the
// steady-state sweep step stays allocation-free.
func (s *Snapshot) clearMasked() {
	s.maskMu.Lock()
	for k := range s.masked {
		delete(s.masked, k)
	}
	s.maskMu.Unlock()
}

// Time returns the snapshot's offset from the constellation epoch.
func (s *Snapshot) Time() time.Duration { return s.t }

// Constellation returns the parent constellation.
func (s *Snapshot) Constellation() *Constellation { return s.c }

// Position returns the ECEF position of a satellite in this snapshot.
func (s *Snapshot) Position(id SatID) geo.Vec3 { return s.pos[id] }

// SubPoint returns the geographic point under a satellite.
func (s *Snapshot) SubPoint(id SatID) geo.Point { return s.pos[id].ToPoint() }

// ISLNeighbors returns the +grid neighbours of a satellite: the two
// intra-plane neighbours (previous and next slot) and, when cross-plane ISLs
// are enabled, the phase-nearest slot in each adjacent plane. Phase-nearest
// pairing keeps link lengths physical across the phasing seam between the
// last and first plane, where same-slot satellites can be a quarter orbit
// apart.
func (s *Snapshot) ISLNeighbors(id SatID) []SatID {
	return s.c.appendISLNeighbors(id, make([]SatID, 0, 4))
}

// appendISLNeighbors appends the +grid neighbours of id to out and returns
// the extended slice. The append count is fixed per configuration: two
// intra-plane entries, plus two cross-plane entries when enabled. The
// neighbour set depends only on plane/slot indices, never on time — which is
// what lets the topology be hoisted out of the per-snapshot build.
func (c *Constellation) appendISLNeighbors(id SatID, out []SatID) []SatID {
	w := c.cfg.Walker
	p, k := c.Plane(id), c.Slot(id)
	out = append(out,
		c.ID(p, (k+1)%w.SatsPerPlane),
		c.ID(p, (k-1+w.SatsPerPlane)%w.SatsPerPlane),
	)
	if c.cfg.CrossPlaneISLs {
		east := (p + 1) % w.Planes
		west := (p - 1 + w.Planes) % w.Planes
		out = append(out,
			c.ID(east, c.crossPlaneSlot(p, k, east)),
			c.ID(west, c.crossPlaneSlot(p, k, west)),
		)
	}
	return out
}

// crossPlaneSlot returns the slot in plane q whose orbital phase is nearest
// to that of satellite (p, k). Since all satellites advance at the same rate,
// the pairing is time-invariant.
func (c *Constellation) crossPlaneSlot(p, k, q int) int {
	w := c.cfg.Walker
	// phase(q, s) = 360*s/S + 360*F*q/(P*S); solve for s nearest to
	// phase(p, k).
	phase := 360*float64(k)/float64(w.SatsPerPlane) +
		360*float64(w.PhasingF)*float64(p)/float64(w.Planes*w.SatsPerPlane)
	base := 360 * float64(w.PhasingF) * float64(q) / float64(w.Planes*w.SatsPerPlane)
	s := int(math.Round((phase - base) * float64(w.SatsPerPlane) / 360))
	s %= w.SatsPerPlane
	if s < 0 {
		s += w.SatsPerPlane
	}
	return s
}

// ISLDistanceKm returns the straight-line distance between two satellites.
func (s *Snapshot) ISLDistanceKm(a, b SatID) float64 {
	return s.pos[a].Sub(s.pos[b]).Norm()
}

// ISLDelay returns the one-way laser-link propagation delay between two
// satellites in this snapshot.
func (s *Snapshot) ISLDelay(a, b SatID) time.Duration {
	return orbit.PropagationDelay(s.ISLDistanceKm(a, b))
}

// ISLGraph returns the +grid ISL topology with edge weights equal to the
// one-way propagation delay in milliseconds. The graph is built once per
// snapshot, safe under concurrent callers; the returned value is shared and
// must not be mutated.
func (s *Snapshot) ISLGraph() *routing.Graph {
	s.islOnce.Do(func() {
		s.islGraph = s.buildISLGraph(nil)
	})
	return s.islGraph
}

// buildISLGraph constructs the +grid graph at this snapshot's positions,
// omitting edges for which skip returns true (nil skips nothing — the full
// graph). The time-invariant adjacency comes from the constellation's shared
// CSR topology; the full build fills it with this instant's weights in one
// pass, and a masked build replays the recorded edge list through the skip
// predicate, so surviving edges keep exactly the adjacency order of the full
// build — a masked build is the full build minus edges, never a reordering.
func (s *Snapshot) buildISLGraph(skip func(lo, hi SatID) bool) *routing.Graph {
	if skip == nil {
		return s.buildISLGraphCSR()
	}
	topo := s.c.topology()
	g := routing.NewGraph(len(s.pos))
	for _, e := range topo.edges {
		if skip(e.A, e.B) {
			continue
		}
		w := s.ISLDistanceKm(e.A, e.B) / orbit.LightSpeedKmPerSec * 1000
		g.AddUndirected(routing.NodeID(e.A), routing.NodeID(e.B), w)
	}
	return g
}

// buildISLGraphScan is the reference implementation of buildISLGraph: the
// incremental dedupe scan that discovers the adjacency from scratch at every
// call. Kept for equivalence tests proving the hoisted topology reproduces
// its edge set, adjacency order and weights exactly.
func (s *Snapshot) buildISLGraphScan(skip func(lo, hi SatID) bool) *routing.Graph {
	n := len(s.pos)
	g := routing.NewGraph(n)
	deg := 2
	if s.c.cfg.CrossPlaneISLs {
		deg = 4
	}
	// Flat neighbour table: node id's list is nbrs[id*deg:(id+1)*deg].
	// Having every list at hand replaces the map-based dedupe with direct
	// ordering checks while keeping the edge insertion order — and hence
	// the adjacency lists downstream algorithms iterate — identical to
	// the map version's first-encounter order.
	nbrs := make([]SatID, 0, deg*n)
	for id := 0; id < n; id++ {
		nbrs = s.c.appendISLNeighbors(SatID(id), nbrs)
	}
	contains := func(list []SatID, x SatID) bool {
		for _, v := range list {
			if v == x {
				return true
			}
		}
		return false
	}
	for id := 0; id < n; id++ {
		a := SatID(id)
		list := nbrs[id*deg : (id+1)*deg]
		for j, b := range list {
			if b == a {
				continue
			}
			// Add the undirected edge only at its first encounter in the
			// scan: skip when the pair already appeared earlier in this
			// node's own list (degenerate small rings), or — for b < a —
			// in b's list, which the scan visited first. The b < a case
			// with a absent from b's list happens under phase-nearest
			// pairing, which is not always symmetric.
			if contains(list[:j], b) {
				continue
			}
			if b < a && contains(nbrs[int(b)*deg:(int(b)+1)*deg], a) {
				continue
			}
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			if skip != nil && skip(lo, hi) {
				continue
			}
			w := s.ISLDistanceKm(lo, hi) / orbit.LightSpeedKmPerSec * 1000
			g.AddUndirected(routing.NodeID(lo), routing.NodeID(hi), w)
		}
	}
	return g
}

// VisibleSat is a satellite visible from a ground point.
type VisibleSat struct {
	ID           SatID
	ElevationDeg float64
	SlantKm      float64
}

// Visible returns all satellites above the configured elevation mask as seen
// from the ground point, sorted by descending elevation (best first). The
// query runs over the snapshot's visibility grid, inspecting only cells whose
// satellites could be within slant range; the result is identical to
// VisibleScan's full scan.
func (s *Snapshot) Visible(ground geo.Point) []VisibleSat {
	return s.visGridLazy().visible(s, ground)
}

// VisibleScan is the reference implementation of Visible: a linear scan over
// every satellite. Kept for equivalence tests and benchmark baselines.
func (s *Snapshot) VisibleScan(ground geo.Point) []VisibleSat {
	g := ground.ToECEF()
	// Pre-filter with the coverage cone: a satellite can only be visible if
	// its distance from the ground point is at most the max slant range.
	maxSlant := geo.SlantRangeKm(s.c.cfg.Walker.AltitudeKm, s.c.cfg.MinElevationDeg)
	var out []VisibleSat
	for id, p := range s.pos {
		d := p.Sub(g).Norm()
		if d > maxSlant {
			continue
		}
		el := geo.ElevationDeg(g, p)
		if el >= s.c.cfg.MinElevationDeg {
			out = append(out, VisibleSat{ID: SatID(id), ElevationDeg: el, SlantKm: d})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ElevationDeg > out[j].ElevationDeg })
	return out
}

// BestVisible returns the highest-elevation visible satellite. ok is false
// when no satellite is above the mask (possible at extreme latitudes for an
// inclined shell). The grid-backed query allocates nothing, which keeps the
// per-request resolve path allocation-free.
func (s *Snapshot) BestVisible(ground geo.Point) (VisibleSat, bool) {
	return s.visGridLazy().bestVisible(s, ground)
}

// BestVisibleScan is the reference implementation of BestVisible (full scan
// and sort). Kept for equivalence tests and benchmark baselines.
func (s *Snapshot) BestVisibleScan(ground geo.Point) (VisibleSat, bool) {
	vis := s.VisibleScan(ground)
	if len(vis) == 0 {
		return VisibleSat{}, false
	}
	return vis[0], true
}

// Nearest returns the satellite with the smallest straight-line distance to
// the ground point, regardless of the elevation mask. It never fails for a
// non-empty constellation. The grid-backed search widens its angular window
// until the best candidate provably beats everything outside the window.
func (s *Snapshot) Nearest(ground geo.Point) VisibleSat {
	return s.visGridLazy().nearest(s, ground)
}

// NearestScan is the reference implementation of Nearest: a linear scan over
// every satellite. Kept for equivalence tests and benchmark baselines.
func (s *Snapshot) NearestScan(ground geo.Point) VisibleSat {
	g := ground.ToECEF()
	best := VisibleSat{ID: -1, SlantKm: math.Inf(1)}
	for id, p := range s.pos {
		if d := p.Sub(g).Norm(); d < best.SlantKm {
			best = VisibleSat{ID: SatID(id), SlantKm: d, ElevationDeg: geo.ElevationDeg(g, p)}
		}
	}
	return best
}

// UpDownDelay returns the one-way radio propagation delay between the ground
// point and the given satellite.
func (s *Snapshot) UpDownDelay(ground geo.Point, id SatID) time.Duration {
	d := s.pos[id].Sub(ground.ToECEF()).Norm()
	return orbit.PropagationDelay(d)
}

// OverheadWindows predicts the future intervals during which each satellite
// serves (is the best visible satellite for) the ground point, scanning
// [from, to) with the given step. Consecutive samples with the same best
// satellite merge into one window. Gaps (no visible satellite) are skipped.
type OverheadWindow struct {
	Sat   SatID
	Start time.Duration
	End   time.Duration
}

// OverheadWindows computes serving windows for a ground point by sampling.
// Step must be positive; typical values are 5-30 seconds. The sampling runs
// over a pooled sweep cursor, so the per-step cost is the incremental world
// update rather than a fresh snapshot build.
func (c *Constellation) OverheadWindows(ground geo.Point, from, to, step time.Duration) []OverheadWindow {
	if step <= 0 || to <= from {
		return nil
	}
	cur := c.Sweep(from, step)
	defer cur.Close()
	return OverheadWindowsOver(cur, ground, to)
}

// OverheadWindowsScan is the reference implementation of OverheadWindows: a
// fresh snapshot per sample. Kept for equivalence tests and benchmark
// baselines.
func (c *Constellation) OverheadWindowsScan(ground geo.Point, from, to, step time.Duration) []OverheadWindow {
	if step <= 0 || to <= from {
		return nil
	}
	cur := c.SweepScan(from, step)
	defer cur.Close()
	return OverheadWindowsOver(cur, ground, to)
}

// OverheadWindowsOver computes serving windows by sampling an existing
// cursor from its current time up to (but excluding) to, advancing it by its
// step. The cursor is left positioned at the last sample; the caller retains
// ownership and must Close it.
func OverheadWindowsOver(cur Cursor, ground geo.Point, to time.Duration) []OverheadWindow {
	step := cur.Step()
	if step <= 0 {
		return nil
	}
	var out []OverheadWindow
	var open *OverheadWindow
	for t := cur.Time(); t < to; t += step {
		snap := cur.AdvanceTo(t)
		best, ok := snap.BestVisible(ground)
		if !ok {
			open = nil
			continue
		}
		if open != nil && open.Sat == best.ID {
			open.End = t + step
			continue
		}
		out = append(out, OverheadWindow{Sat: best.ID, Start: t, End: t + step})
		open = &out[len(out)-1]
	}
	return out
}
