package constellation

import (
	"math"
	"sync"
	"testing"
	"time"

	"spacecdn/internal/geo"
	"spacecdn/internal/orbit"
	"spacecdn/internal/routing"
)

func small() *Constellation {
	// A reduced shell keeps geometry realistic but tests fast.
	return MustNew(Config{
		Walker: orbit.Walker{
			AltitudeKm: 550, InclinationDeg: 53,
			Planes: 12, SatsPerPlane: 10, PhasingF: 5,
		},
		MinElevationDeg: 25,
		CrossPlaneISLs:  true,
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Walker: orbit.Walker{}}); err == nil {
		t.Error("invalid walker accepted")
	}
	cfg := DefaultConfig()
	cfg.MinElevationDeg = 95
	if _, err := New(cfg); err == nil {
		t.Error("invalid elevation mask accepted")
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid config")
		}
	}()
	MustNew(Config{})
}

func TestIDMapping(t *testing.T) {
	c := small()
	for p := 0; p < c.Planes(); p++ {
		for k := 0; k < c.SatsPerPlane(); k++ {
			id := c.ID(p, k)
			if c.Plane(id) != p || c.Slot(id) != k {
				t.Fatalf("round trip failed for plane=%d slot=%d: id=%d", p, k, id)
			}
		}
	}
	if c.Total() != 120 {
		t.Errorf("Total = %d, want 120", c.Total())
	}
}

func TestISLNeighborsGrid(t *testing.T) {
	c := small()
	s := c.Snapshot(0)
	id := c.ID(3, 4)
	nbs := s.ISLNeighbors(id)
	if len(nbs) != 4 {
		t.Fatalf("expected 4 +grid neighbours, got %d", len(nbs))
	}
	want := map[SatID]bool{
		c.ID(3, 5): true, c.ID(3, 3): true,
		c.ID(4, 4): true, c.ID(2, 4): true,
	}
	for _, nb := range nbs {
		if !want[nb] {
			t.Errorf("unexpected neighbour %d (plane %d slot %d)", nb, c.Plane(nb), c.Slot(nb))
		}
	}
}

func TestISLNeighborsWrap(t *testing.T) {
	c := small()
	s := c.Snapshot(0)
	nbs := s.ISLNeighbors(c.ID(0, 0))
	// Intra-plane wraps to slot 9; cross-plane east pairs with the
	// phase-nearest slot in plane 1 (slot 0 at a 15 deg offset) and west
	// across the phasing seam with slot 5 in plane 11 (the seam offset is
	// F*(P-1)/P = 4.58 slots, rounding to 5).
	want := map[SatID]bool{
		c.ID(0, 1): true, c.ID(0, 9): true,
		c.ID(1, 0): true, c.ID(11, 5): true,
	}
	for _, nb := range nbs {
		if !want[nb] {
			t.Errorf("wrap neighbour wrong: plane %d slot %d", c.Plane(nb), c.Slot(nb))
		}
	}
	// Neighbour links must pair near-phase satellites. With only 12 planes
	// the seam spans 30 deg of RAAN so links are long, but a mispairing
	// (quarter-orbit offset) would exceed ~9,000 km.
	for _, nb := range nbs {
		if d := s.ISLDistanceKm(c.ID(0, 0), nb); d > 6000 {
			t.Errorf("neighbour %d is %v km away", nb, d)
		}
	}
}

func TestNoCrossPlaneISLs(t *testing.T) {
	cfg := Config{
		Walker:          orbit.Walker{AltitudeKm: 550, InclinationDeg: 53, Planes: 6, SatsPerPlane: 8},
		MinElevationDeg: 25,
	}
	c := MustNew(cfg)
	s := c.Snapshot(0)
	nbs := s.ISLNeighbors(c.ID(2, 3))
	if len(nbs) != 2 {
		t.Fatalf("expected 2 intra-plane neighbours, got %d", len(nbs))
	}
	for _, nb := range nbs {
		if c.Plane(nb) != 2 {
			t.Errorf("cross-plane neighbour present without CrossPlaneISLs: %d", nb)
		}
	}
}

func TestISLGraphShape(t *testing.T) {
	c := small()
	s := c.Snapshot(0)
	g := s.ISLGraph()
	if g.Len() != c.Total() {
		t.Fatalf("graph size %d != %d", g.Len(), c.Total())
	}
	// +grid: every node has degree 4 => directed edge count = 4*N.
	if got, want := g.EdgeCount(), 4*c.Total(); got != want {
		t.Errorf("edge count %d, want %d", got, want)
	}
	// The graph is cached.
	if s.ISLGraph() != g {
		t.Error("ISLGraph not cached")
	}
}

func TestISLGraphConnected(t *testing.T) {
	c := small()
	d := c.Snapshot(0).ISLGraph().ShortestPathsFrom(0)
	for i, v := range d {
		if math.IsInf(v, 1) {
			t.Fatalf("satellite %d unreachable over ISLs", i)
		}
	}
}

func TestISLDistancesPhysical(t *testing.T) {
	// Intra-plane ISL distances for Shell 1 are ~1,930 km (360/22 deg arc at
	// r=6921 km); cross-plane distances vary with latitude but stay below
	// ~2,000 km and above ~100 km.
	c := MustNew(DefaultConfig())
	s := c.Snapshot(0)
	intra := s.ISLDistanceKm(c.ID(0, 0), c.ID(0, 1))
	if intra < 1800 || intra > 2050 {
		t.Errorf("intra-plane ISL = %v km, want ~1930", intra)
	}
	for _, id := range []SatID{0, 500, 1000} {
		for _, nb := range s.ISLNeighbors(id) {
			d := s.ISLDistanceKm(id, nb)
			if d < 50 || d > 2100 {
				t.Errorf("ISL %d-%d distance %v km out of physical range", id, nb, d)
			}
		}
	}
}

func TestISLDelayMatchesDistance(t *testing.T) {
	c := small()
	s := c.Snapshot(0)
	a, b := c.ID(0, 0), c.ID(0, 1)
	wantMs := s.ISLDistanceKm(a, b) / orbit.LightSpeedKmPerSec * 1000
	gotMs := float64(s.ISLDelay(a, b)) / float64(time.Millisecond)
	if math.Abs(wantMs-gotMs) > 1e-6 {
		t.Errorf("ISLDelay = %v ms, want %v ms", gotMs, wantMs)
	}
}

func TestVisibleShell1(t *testing.T) {
	c := MustNew(DefaultConfig())
	s := c.Snapshot(0)
	// Mid-latitude users always see several Shell 1 satellites.
	for _, loc := range []geo.Point{
		geo.NewPoint(50.1, 8.7),    // Frankfurt
		geo.NewPoint(-25.97, 32.6), // Maputo
		geo.NewPoint(40.7, -74.0),  // New York
	} {
		vis := s.Visible(loc)
		if len(vis) == 0 {
			t.Errorf("no visible satellite from %v", loc)
			continue
		}
		for i, v := range vis {
			if v.ElevationDeg < 25 {
				t.Errorf("satellite below mask returned: %+v", v)
			}
			if i > 0 && vis[i-1].ElevationDeg < v.ElevationDeg {
				t.Error("Visible not sorted by elevation")
			}
			maxSlant := geo.SlantRangeKm(550, 25)
			if v.SlantKm > maxSlant+1 {
				t.Errorf("slant %v exceeds max %v", v.SlantKm, maxSlant)
			}
		}
	}
}

func TestVisibleAtPole(t *testing.T) {
	// A 53-degree shell leaves the poles uncovered at a 25-degree mask.
	c := MustNew(DefaultConfig())
	s := c.Snapshot(0)
	if vis := s.Visible(geo.NewPoint(89.9, 0)); len(vis) != 0 {
		t.Errorf("pole should see no Shell 1 satellite above 25 deg, got %d", len(vis))
	}
	if _, ok := s.BestVisible(geo.NewPoint(89.9, 0)); ok {
		t.Error("BestVisible at pole should fail")
	}
}

func TestBestVisibleAgreesWithVisible(t *testing.T) {
	c := MustNew(DefaultConfig())
	s := c.Snapshot(13 * time.Minute)
	loc := geo.NewPoint(48.1, 11.6)
	vis := s.Visible(loc)
	best, ok := s.BestVisible(loc)
	if !ok || len(vis) == 0 {
		t.Fatal("expected visibility in Munich")
	}
	if best.ID != vis[0].ID {
		t.Errorf("BestVisible %d != Visible[0] %d", best.ID, vis[0].ID)
	}
}

func TestNearestAlwaysReturns(t *testing.T) {
	c := MustNew(DefaultConfig())
	s := c.Snapshot(0)
	n := s.Nearest(geo.NewPoint(89.9, 0))
	if n.ID < 0 || n.SlantKm <= 0 {
		t.Errorf("Nearest failed at pole: %+v", n)
	}
	// Nearest from a covered location must match the smallest slant in
	// Visible when something is visible.
	loc := geo.NewPoint(50.1, 8.7)
	vis := s.Visible(loc)
	if len(vis) == 0 {
		t.Fatal("no visibility from Frankfurt")
	}
	minSlant := math.Inf(1)
	for _, v := range vis {
		if v.SlantKm < minSlant {
			minSlant = v.SlantKm
		}
	}
	if got := s.Nearest(loc).SlantKm; got > minSlant+1e-9 {
		t.Errorf("Nearest slant %v exceeds min visible slant %v", got, minSlant)
	}
}

func TestUpDownDelayPhysical(t *testing.T) {
	c := MustNew(DefaultConfig())
	s := c.Snapshot(0)
	loc := geo.NewPoint(50.1, 8.7)
	best, ok := s.BestVisible(loc)
	if !ok {
		t.Fatal("no visible satellite")
	}
	d := s.UpDownDelay(loc, best.ID)
	// 550-1100 km slant => 1.8-3.8 ms one way.
	if d < 1500*time.Microsecond || d > 4*time.Millisecond {
		t.Errorf("up/down delay = %v, want ~2-4 ms", d)
	}
}

func TestSnapshotsDiffer(t *testing.T) {
	c := small()
	s0 := c.Snapshot(0)
	s1 := c.Snapshot(time.Minute)
	moved := s0.Position(0).Sub(s1.Position(0)).Norm()
	// 7.6 km/s * 60 s = ~456 km.
	if moved < 400 || moved > 500 {
		t.Errorf("satellite moved %v km in a minute, want ~456", moved)
	}
	if s0.Time() != 0 || s1.Time() != time.Minute {
		t.Error("snapshot times wrong")
	}
}

func TestOverheadWindows(t *testing.T) {
	c := MustNew(DefaultConfig())
	loc := geo.NewPoint(50.1, 8.7)
	wins := c.OverheadWindows(loc, 0, 30*time.Minute, 15*time.Second)
	if len(wins) < 2 {
		t.Fatalf("expected several serving windows in 30 min, got %d", len(wins))
	}
	var total time.Duration
	for i, w := range wins {
		if w.End <= w.Start {
			t.Errorf("window %d has non-positive span: %+v", i, w)
		}
		if i > 0 && w.Start < wins[i-1].End {
			t.Errorf("windows overlap: %+v then %+v", wins[i-1], w)
		}
		if i > 0 && wins[i-1].Sat == w.Sat && wins[i-1].End == w.Start {
			t.Errorf("adjacent windows for same satellite not merged: %+v %+v", wins[i-1], w)
		}
		dur := w.End - w.Start
		total += dur
		// The paper: satellites leave line-of-sight within 5-10 minutes.
		if dur > 12*time.Minute {
			t.Errorf("serving window too long: %v", dur)
		}
	}
	// Frankfurt is well covered: near-continuous service.
	if total < 25*time.Minute {
		t.Errorf("coverage gap too large: total served %v of 30m", total)
	}
}

func TestOverheadWindowsDegenerate(t *testing.T) {
	c := small()
	if w := c.OverheadWindows(geo.NewPoint(0, 0), 0, time.Minute, 0); w != nil {
		t.Error("zero step should return nil")
	}
	if w := c.OverheadWindows(geo.NewPoint(0, 0), time.Minute, 0, time.Second); w != nil {
		t.Error("empty interval should return nil")
	}
}

func TestISLGraphUsableWithRouting(t *testing.T) {
	c := MustNew(DefaultConfig())
	s := c.Snapshot(0)
	g := s.ISLGraph()
	// Best ISL path between any visible satellite over Maputo and any over
	// Frankfurt. The +grid imposes a geometric stretch (ascending vs
	// descending sheets can be tens of planes apart), so the bound is loose:
	// the path can never beat light over the geodesic and should stay below
	// ~3x of it.
	maputo := geo.NewPoint(-25.97, 32.57)
	frankfurt := geo.NewPoint(50.11, 8.68)
	va := s.Visible(maputo)
	vb := s.Visible(frankfurt)
	if len(va) == 0 || len(vb) == 0 {
		t.Fatal("no visibility")
	}
	best := math.Inf(1)
	bestHops := 0
	for _, a := range va {
		dist := g.ShortestPathsFrom(routing.NodeID(a.ID))
		for _, b := range vb {
			if dist[b.ID] < best {
				best = dist[b.ID]
				p, ok := g.ShortestPath(routing.NodeID(a.ID), routing.NodeID(b.ID))
				if !ok {
					t.Fatalf("inconsistent reachability for %d->%d", a.ID, b.ID)
				}
				bestHops = p.Hops()
			}
		}
	}
	geodesicMs := geo.HaversineKm(maputo, frankfurt) / orbit.LightSpeedKmPerSec * 1000
	if best < geodesicMs {
		t.Errorf("ISL path cost %v ms beats light over the geodesic %v ms", best, geodesicMs)
	}
	if best > geodesicMs*3 {
		t.Errorf("ISL path cost %v ms too slow vs geodesic %v ms", best, geodesicMs)
	}
	if bestHops < 5 || bestHops > 25 {
		t.Errorf("hops = %d for an 8,800 km route, want ~10-20", bestHops)
	}
}

// TestISLGraphConcurrentBuild races many first callers at the lazy graph
// build; under -race this pins the sync.Once guard, and all callers must
// observe the identical shared graph.
func TestISLGraphConcurrentBuild(t *testing.T) {
	snap := small().Snapshot(90 * time.Second)
	const callers = 16
	graphs := make([]*routing.Graph, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			graphs[i] = snap.ISLGraph()
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if graphs[i] != graphs[0] {
			t.Fatalf("caller %d saw a different graph instance", i)
		}
	}
	if graphs[0].EdgeCount() == 0 {
		t.Fatal("concurrently built graph is empty")
	}
}
