package constellation

import (
	"fmt"
	"sync"
	"time"

	"spacecdn/internal/geo"
	"spacecdn/internal/routing"
)

// LinkID identifies an undirected inter-satellite link by its endpoints,
// normalized A < B.
type LinkID struct {
	A, B SatID
}

// NormalizedLink returns the LinkID for the pair in canonical order.
func NormalizedLink(a, b SatID) LinkID {
	if a > b {
		a, b = b, a
	}
	return LinkID{A: a, B: b}
}

// MaskedView is a fault-aware view of a Snapshot: the same geometry with a
// set of satellites and ISLs removed. Visibility queries skip dead
// satellites, the ISL graph drops every edge touching one (and every
// explicitly failed link), and path trees are memoized in the snapshot's
// memo under the view's fault epoch, so degraded routing never corrupts —
// or collides with — the healthy entries at epoch 0.
//
// Views are cached per epoch on the snapshot and shared by all callers, so
// per-request resolution reuses one masked graph build per (snapshot, fault
// state). Immutable and safe for concurrent use.
type MaskedView struct {
	snap      *Snapshot
	epoch     uint64
	deadSats  routing.Bitset
	deadLinks map[LinkID]bool

	islOnce  sync.Once
	islGraph *routing.Graph
}

// Masked returns the fault-aware view of this snapshot for the given fault
// epoch. The first call for an epoch captures the masks; later calls return
// the cached view, so callers must pass the same masks for the same epoch —
// the epoch identifies a fault state, the masks describe it (faults.Plan
// maintains exactly this invariant). Empty masks return a pass-through view
// that shares the healthy graph and memo entries. A non-empty mask with
// epoch 0 is a caller bug — epoch 0 is reserved for the healthy topology —
// and panics rather than silently poisoning the shared memo.
func (s *Snapshot) Masked(epoch uint64, deadSats routing.Bitset, deadLinks []LinkID) *MaskedView {
	if !deadSats.Any() && len(deadLinks) == 0 {
		epoch = 0
	} else if epoch == 0 {
		panic(fmt.Sprintf("constellation: Masked with non-empty masks requires a non-zero epoch (%d dead sats, %d dead links)",
			deadSats.Count(), len(deadLinks)))
	}
	s.maskMu.Lock()
	defer s.maskMu.Unlock()
	if v, ok := s.masked[epoch]; ok {
		return v
	}
	v := &MaskedView{snap: s, epoch: epoch}
	if epoch != 0 {
		v.deadSats = deadSats
		if len(deadLinks) > 0 {
			v.deadLinks = make(map[LinkID]bool, len(deadLinks))
			for _, l := range deadLinks {
				v.deadLinks[NormalizedLink(l.A, l.B)] = true
			}
		}
	}
	if s.masked == nil {
		s.masked = make(map[uint64]*MaskedView)
	}
	s.masked[epoch] = v
	return v
}

// Snapshot returns the underlying healthy snapshot.
func (v *MaskedView) Snapshot() *Snapshot { return v.snap }

// Time returns the snapshot's offset from the constellation epoch.
func (v *MaskedView) Time() time.Duration { return v.snap.t }

// Epoch returns the view's fault epoch (0 for a pass-through view).
func (v *MaskedView) Epoch() uint64 { return v.epoch }

// Alive reports whether the satellite survives in this view.
func (v *MaskedView) Alive(id SatID) bool { return !v.deadSats.Test(int(id)) }

// Visible returns the surviving satellites above the elevation mask, best
// first — the healthy visibility list with dead satellites filtered out.
func (v *MaskedView) Visible(ground geo.Point) []VisibleSat {
	vis := v.snap.Visible(ground)
	if v.epoch == 0 {
		return vis
	}
	// The healthy query allocates a fresh slice per call, so filtering in
	// place never disturbs another caller.
	out := vis[:0]
	for _, sat := range vis {
		if v.Alive(sat.ID) {
			out = append(out, sat)
		}
	}
	return out
}

// VisibleShared is the memo-backed form of Visible: the healthy list comes
// from the snapshot's visibility memo, and a fault-epoch view filters it into
// a fresh slice (never in place — the memoized list is shared). Callers must
// treat the result as read-only, like Snapshot.VisibleShared.
func (v *MaskedView) VisibleShared(ground geo.Point) []VisibleSat {
	vis := v.snap.VisibleShared(ground)
	if v.epoch == 0 {
		return vis
	}
	out := make([]VisibleSat, 0, len(vis))
	for _, sat := range vis {
		if v.Alive(sat.ID) {
			out = append(out, sat)
		}
	}
	return out
}

// BestVisible returns the highest-elevation surviving satellite. When the
// healthy best is alive — the overwhelmingly common case — this costs one
// mask probe on top of the healthy query; the failover scan runs only when
// the serving satellite is actually down.
func (v *MaskedView) BestVisible(ground geo.Point) (VisibleSat, bool) {
	best, ok := v.snap.BestVisible(ground)
	if !ok {
		return VisibleSat{}, false
	}
	if v.Alive(best.ID) {
		return best, true
	}
	for _, sat := range v.snap.VisibleShared(ground) {
		if v.Alive(sat.ID) {
			return sat, true
		}
	}
	return VisibleSat{}, false
}

// ISLGraph returns the masked +grid topology: the healthy graph minus every
// edge with a dead endpoint or a failed link. Dead satellites keep their
// node ids (ids are positional across the whole codebase) but have no
// incident edges, so searches can never route through them. Built once per
// view and shared.
func (v *MaskedView) ISLGraph() *routing.Graph {
	v.islOnce.Do(func() {
		if v.epoch == 0 {
			v.islGraph = v.snap.ISLGraph()
			return
		}
		v.islGraph = v.snap.buildISLGraph(func(lo, hi SatID) bool {
			return v.deadSats.Test(int(lo)) || v.deadSats.Test(int(hi)) || v.deadLinks[LinkID{A: lo, B: hi}]
		})
	})
	return v.islGraph
}

// PathTree returns the shortest-path tree over the masked ISL graph rooted
// at src, memoized in the snapshot's epoch-keyed memo: every request routed
// through the same uplink in the same fault state shares one Dijkstra run,
// and healthy trees (epoch 0) are never shadowed. Returns nil when src is
// out of range or dead — a dead satellite roots no routes.
func (v *MaskedView) PathTree(src SatID) *routing.SPTree {
	if src < 0 || int(src) >= len(v.snap.pos) || !v.Alive(src) {
		return nil
	}
	epoch := v.snap.memoEpoch(v.epoch)
	if t, ok := v.snap.memo.lookup(src, epoch); ok {
		v.snap.c.memoHits.Add(1)
		return t
	}
	v.snap.c.memoMisses.Add(1)
	t := v.ISLGraph().SPTreeFrom(routing.NodeID(src))
	if t != nil {
		v.snap.memo.insert(src, epoch, t)
	}
	return t
}
