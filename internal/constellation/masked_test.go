package constellation

import (
	"testing"

	"spacecdn/internal/geo"
	"spacecdn/internal/routing"
)

func TestMaskedEmptyIsPassThrough(t *testing.T) {
	c := MustNew(DefaultConfig())
	snap := c.Snapshot(0)
	v := snap.Masked(0, nil, nil)
	if v.Epoch() != 0 {
		t.Fatalf("empty mask epoch = %d, want 0", v.Epoch())
	}
	if v.ISLGraph() != snap.ISLGraph() {
		t.Fatal("pass-through view must share the healthy graph")
	}
	// A non-zero epoch with empty masks normalizes to the pass-through view.
	if snap.Masked(7, routing.NewBitset(c.Total()), nil) != v {
		t.Fatal("empty masks must normalize to the epoch-0 view")
	}
	pt := geo.NewPoint(40.7, -74)
	hb, hok := snap.BestVisible(pt)
	mb, mok := v.BestVisible(pt)
	if hok != mok || hb != mb {
		t.Fatal("pass-through BestVisible must match the snapshot")
	}
	if v.PathTree(3) != snap.PathTree(3) {
		t.Fatal("pass-through PathTree must share the healthy memo entry")
	}
}

func TestMaskedEpochZeroWithMasksPanics(t *testing.T) {
	c := MustNew(DefaultConfig())
	snap := c.Snapshot(0)
	dead := routing.NewBitset(c.Total())
	dead.Set(5)
	defer func() {
		if recover() == nil {
			t.Fatal("non-empty masks at epoch 0 must panic")
		}
	}()
	snap.Masked(0, dead, nil)
}

func TestMaskedVisibilitySkipsDeadSats(t *testing.T) {
	c := MustNew(DefaultConfig())
	snap := c.Snapshot(0)
	pt := geo.NewPoint(40.7, -74)
	healthy := snap.Visible(pt)
	if len(healthy) < 2 {
		t.Fatalf("need at least two visible satellites, have %d", len(healthy))
	}
	best := healthy[0]
	dead := routing.NewBitset(c.Total())
	dead.Set(int(best.ID))
	v := snap.Masked(1, dead, nil)

	if v.Alive(best.ID) {
		t.Fatal("dead satellite reported alive")
	}
	vis := v.Visible(pt)
	if len(vis) != len(healthy)-1 {
		t.Fatalf("masked visible = %d, want %d", len(vis), len(healthy)-1)
	}
	for _, s := range vis {
		if s.ID == best.ID {
			t.Fatal("dead satellite still visible")
		}
	}
	// BestVisible fails over to the next surviving satellite by elevation.
	got, ok := v.BestVisible(pt)
	if !ok || got != healthy[1] {
		t.Fatalf("failover best = %+v ok=%v, want %+v", got, ok, healthy[1])
	}
}

func TestMaskedBestVisibleAllDead(t *testing.T) {
	c := MustNew(DefaultConfig())
	snap := c.Snapshot(0)
	pt := geo.NewPoint(40.7, -74)
	dead := routing.NewBitset(c.Total())
	for _, s := range snap.Visible(pt) {
		dead.Set(int(s.ID))
	}
	v := snap.Masked(2, dead, nil)
	if _, ok := v.BestVisible(pt); ok {
		t.Fatal("no survivor should mean no best visible")
	}
	if len(v.Visible(pt)) != 0 {
		t.Fatal("no survivor should mean empty visible list")
	}
}

func TestMaskedGraphDropsDeadSatEdges(t *testing.T) {
	c := MustNew(DefaultConfig())
	snap := c.Snapshot(0)
	const victim = SatID(17)
	dead := routing.NewBitset(c.Total())
	dead.Set(int(victim))
	v := snap.Masked(1, dead, nil)

	g := v.ISLGraph()
	if len(g.Neighbors(routing.NodeID(victim))) != 0 {
		t.Fatal("dead satellite must have no incident edges")
	}
	for _, e := range snap.ISLGraph().Neighbors(routing.NodeID(victim)) {
		for _, back := range g.Neighbors(e.To) {
			if back.To == routing.NodeID(victim) {
				t.Fatalf("edge %d->%d survived the mask", e.To, victim)
			}
		}
	}
	// Survivors keep their healthy edges except those into the victim.
	healthyDeg := len(snap.ISLGraph().Neighbors(5))
	if got := len(g.Neighbors(5)); got != healthyDeg {
		t.Fatalf("unrelated node degree changed: %d vs %d", got, healthyDeg)
	}
	// PathTree: nil at the dead root, routes around it elsewhere.
	if v.PathTree(victim) != nil {
		t.Fatal("dead root must have no path tree")
	}
	tree := v.PathTree(0)
	if tree == nil || tree.Reachable(routing.NodeID(victim)) {
		t.Fatal("masked tree must not reach the dead satellite")
	}
	if !snap.PathTree(0).Reachable(routing.NodeID(victim)) {
		t.Fatal("healthy memo entry must stay intact alongside the masked one")
	}
}

func TestMaskedGraphDropsDeadLinks(t *testing.T) {
	c := MustNew(DefaultConfig())
	snap := c.Snapshot(0)
	nbrs := snap.ISLGraph().Neighbors(0)
	if len(nbrs) == 0 {
		t.Fatal("node 0 has no neighbors")
	}
	other := SatID(nbrs[0].To)
	// Pass the link denormalized; the view must normalize it.
	v := snap.Masked(3, nil, []LinkID{{A: other, B: 0}})
	g := v.ISLGraph()
	for _, e := range g.Neighbors(0) {
		if e.To == routing.NodeID(other) {
			t.Fatal("dead link survived")
		}
	}
	if len(g.Neighbors(0)) != len(nbrs)-1 {
		t.Fatalf("node 0 degree = %d, want %d", len(g.Neighbors(0)), len(nbrs)-1)
	}
	// Both endpoints stay routable over the remaining grid.
	tree := v.PathTree(0)
	if tree == nil || !tree.Reachable(routing.NodeID(other)) {
		t.Fatal("endpoints must remain reachable around a single dead link")
	}
}

func TestMaskedViewCachedPerEpoch(t *testing.T) {
	c := MustNew(DefaultConfig())
	snap := c.Snapshot(0)
	dead := routing.NewBitset(c.Total())
	dead.Set(4)
	a := snap.Masked(9, dead, nil)
	b := snap.Masked(9, dead, nil)
	if a != b {
		t.Fatal("same epoch must return the cached view")
	}
	if a.ISLGraph() != b.ISLGraph() {
		t.Fatal("cached view must share one masked graph")
	}
}
