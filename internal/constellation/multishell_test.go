package constellation

import (
	"math/rand"
	"testing"
	"time"

	"spacecdn/internal/geo"
	"spacecdn/internal/orbit"
)

// Multi-shell composites: shell-offset id layout, per-shell topology, the
// adaptive visibility grid, and the scale-aware memo — proven against the
// same naive oracles as the single-shell forms.

// twoShellPhased is a small two-shell composite with non-default phasing in
// both shells and different plane sizes, so any arithmetic that assumes a
// global SatsPerPlane or phase factor fails loudly.
func twoShellPhased() Config {
	return Config{
		Shells: []WalkerShell{
			{AltitudeKm: 550, InclinationDeg: 53, Planes: 12, SatsPerPlane: 10, PhasingF: 7},
			{AltitudeKm: 620, InclinationDeg: 70, Planes: 9, SatsPerPlane: 16, PhasingF: 4},
		},
		MinElevationDeg: 25,
		CrossPlaneISLs:  true,
	}
}

func TestMultiShellPresetShapes(t *testing.T) {
	gen2 := MustNew(StarlinkGen2Config())
	if gen2.Total() != 7500 || gen2.ShellCount() != 3 {
		t.Fatalf("Gen2: %d sats in %d shells, want 7500 in 3", gen2.Total(), gen2.ShellCount())
	}
	kuiper := MustNew(KuiperConfig())
	if kuiper.Total() != 3236 || kuiper.ShellCount() != 3 {
		t.Fatalf("Kuiper: %d sats in %d shells, want 3236 in 3", kuiper.Total(), kuiper.ShellCount())
	}
	// Shell ranges tile [0, Total) in order, and global plane counts add up.
	for _, c := range []*Constellation{gen2, kuiper} {
		next, planes := SatID(0), 0
		for i := 0; i < c.ShellCount(); i++ {
			first, count := c.ShellRange(i)
			if first != next {
				t.Fatalf("shell %d starts at %d, want %d", i, first, next)
			}
			next += SatID(count)
			planes += c.Shell(i).Planes
		}
		if int(next) != c.Total() || planes != c.Planes() {
			t.Fatalf("shells cover %d sats / %d planes, want %d / %d",
				next, planes, c.Total(), c.Planes())
		}
	}
}

func TestMultiShellConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shells = orbit.Kuiper()
	if _, err := New(cfg); err == nil {
		t.Fatal("Walker and Shells set together must be rejected")
	}
	bad := KuiperConfig()
	bad.Shells[1].SatsPerPlane = 0
	if _, err := New(bad); err == nil {
		t.Fatal("malformed shell must be rejected")
	}
}

func TestMultiShellIDRoundTrip(t *testing.T) {
	// Property: ID(Plane(id), Slot(id)) == id for every satellite, the slot
	// stays within its plane's size, and the id maps into the shell whose
	// range contains it — across presets and non-default phasing.
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"shell1", DefaultConfig()},
		{"gen2", StarlinkGen2Config()},
		{"kuiper", KuiperConfig()},
		{"two-shell-phased", twoShellPhased()},
	} {
		c := MustNew(tc.cfg)
		slots := 0
		for plane := 0; plane < c.Planes(); plane++ {
			slots += c.PlaneSlots(plane)
		}
		if slots != c.Total() {
			t.Fatalf("%s: plane slots sum to %d, want %d", tc.name, slots, c.Total())
		}
		for id := SatID(0); int(id) < c.Total(); id++ {
			p, k := c.Plane(id), c.Slot(id)
			if back := c.ID(p, k); back != id {
				t.Fatalf("%s: ID(%d,%d) = %d, want %d", tc.name, p, k, back, id)
			}
			if k < 0 || k >= c.PlaneSlots(p) {
				t.Fatalf("%s: sat %d slot %d outside plane %d's %d slots",
					tc.name, id, k, p, c.PlaneSlots(p))
			}
			sh := c.ShellOf(id)
			first, count := c.ShellRange(sh)
			if id < first || int(id) >= int(first)+count {
				t.Fatalf("%s: sat %d attributed to shell %d [%d,%d)",
					tc.name, id, sh, first, int(first)+count)
			}
		}
	}
}

func TestMultiShellISLNeighborSymmetry(t *testing.T) {
	// The +grid symmetry property must survive the shell stitching, and no
	// neighbour may ever cross a shell boundary: ISLs are intra-shell.
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"gen2", StarlinkGen2Config()},
		{"kuiper", KuiperConfig()},
		{"two-shell-phased", twoShellPhased()},
	} {
		c := MustNew(tc.cfg)
		s := c.Snapshot(0)
		asym := 0
		for id := 0; id < c.Total(); id++ {
			shell := c.ShellOf(SatID(id))
			for _, nb := range s.ISLNeighbors(SatID(id)) {
				if c.ShellOf(nb) != shell {
					t.Fatalf("%s: sat %d (shell %d) links to %d (shell %d)",
						tc.name, id, shell, nb, c.ShellOf(nb))
				}
				back := false
				for _, rev := range s.ISLNeighbors(nb) {
					if rev == SatID(id) {
						back = true
						break
					}
				}
				if !back {
					asym++
				}
			}
		}
		if asym > c.Total()/50 {
			t.Errorf("%s: %d asymmetric neighbour entries over %d sats",
				tc.name, asym, c.Total())
		}
	}
}

func TestMultiShellPositionsMatchElements(t *testing.T) {
	// Kuiper's three altitudes exercise the per-group mean motions of the
	// SoA engine; every shell's positions must match direct propagation.
	c := MustNew(KuiperConfig())
	for _, dt := range []time.Duration{0, 7 * time.Minute, time.Hour} {
		s := c.Snapshot(dt)
		for sh := 0; sh < c.ShellCount(); sh++ {
			first, count := c.ShellRange(sh)
			for _, off := range []int{0, count / 3, count - 1} {
				id := first + SatID(off)
				want := c.Elements(id).PositionECEF(dt)
				if got := s.Position(id); got.Sub(want).Norm() > 1e-9 {
					t.Fatalf("shell %d sat %d at %v: %v != %v", sh, id, dt, got, want)
				}
			}
		}
	}
}

// multiShellQueryPoints mixes random ground points with polar and dateline
// adversaries — the cap-merge and wraparound paths of the adaptive grid.
func multiShellQueryPoints(rng *rand.Rand) []geo.Point {
	pts := randomPoints(rng, 25)
	return append(pts,
		geo.Point{LatDeg: 89.9, LonDeg: 45},
		geo.Point{LatDeg: -89.9, LonDeg: -135},
		geo.Point{LatDeg: 72, LonDeg: -179.95},
		geo.Point{LatDeg: -71, LonDeg: 179.95},
		geo.Point{LatDeg: 55, LonDeg: 0},
	)
}

func TestMultiShellGridMatchesScan(t *testing.T) {
	// The adaptive grid (Kuiper: 21x42 cells) against the naive full-scan
	// oracles, over mixed-altitude shells.
	c := MustNew(KuiperConfig())
	rng := rand.New(rand.NewSource(91))
	pts := multiShellQueryPoints(rng)
	for _, dt := range []time.Duration{0, 11 * time.Minute, 3 * time.Hour} {
		s := c.Snapshot(dt)
		for _, pt := range pts {
			gv, wv := s.Visible(pt), s.VisibleScan(pt)
			if len(gv) != len(wv) {
				t.Fatalf("t=%v %+v: %d visible vs scan %d", dt, pt, len(gv), len(wv))
			}
			for i := range wv {
				if gv[i] != wv[i] {
					t.Fatalf("t=%v %+v visible[%d]: %+v != %+v", dt, pt, i, gv[i], wv[i])
				}
			}
			gb, gok := s.BestVisible(pt)
			wb, wok := s.BestVisibleScan(pt)
			if gok != wok || gb != wb {
				t.Fatalf("t=%v %+v best: %+v,%v != %+v,%v", dt, pt, gb, gok, wb, wok)
			}
			if gn, wn := s.Nearest(pt), s.NearestScan(pt); gn != wn {
				t.Fatalf("t=%v %+v nearest: %+v != %+v", dt, pt, gn, wn)
			}
		}
	}
}

func TestPolarShellGridMatchesScan(t *testing.T) {
	// A sun-synchronous-style polar shell drives satellites through the
	// merged cap rows every orbit; grid answers must still match the scan,
	// including for observers inside the caps.
	c := MustNew(Config{
		Shells: []WalkerShell{
			{AltitudeKm: 560, InclinationDeg: 97.6, Planes: 12, SatsPerPlane: 24, PhasingF: 3},
			{AltitudeKm: 550, InclinationDeg: 53, Planes: 18, SatsPerPlane: 20, PhasingF: 5},
		},
		MinElevationDeg: 25,
		CrossPlaneISLs:  true,
	})
	rng := rand.New(rand.NewSource(17))
	pts := append(multiShellQueryPoints(rng),
		geo.Point{LatDeg: 84, LonDeg: 10},
		geo.Point{LatDeg: -78, LonDeg: -60},
	)
	for _, dt := range []time.Duration{0, 23 * time.Minute} {
		s := c.Snapshot(dt)
		for _, pt := range pts {
			gb, gok := s.BestVisible(pt)
			wb, wok := s.BestVisibleScan(pt)
			if gok != wok || gb != wb {
				t.Fatalf("t=%v %+v best: %+v,%v != %+v,%v", dt, pt, gb, gok, wb, wok)
			}
			if gn, wn := s.Nearest(pt), s.NearestScan(pt); gn != wn {
				t.Fatalf("t=%v %+v nearest: %+v != %+v", dt, pt, gn, wn)
			}
		}
	}
}

func TestMultiShellSweepMatchesScan(t *testing.T) {
	// The pooled sweep cursor against the fresh-snapshot reference on a
	// multi-shell composite: positions, visibility, ISL graph and path trees
	// at every step, plus a long jump that migrates satellites across many
	// cells (and through the polar caps).
	c := MustNew(KuiperConfig())
	rng := rand.New(rand.NewSource(53))
	pts := randomPoints(rng, 8)

	const step = 15 * time.Second
	sw := c.Sweep(0, step)
	defer sw.Close()
	sc := c.SweepScan(0, step)

	assertSnapshotsEquivalent(t, sw.At(), sc.At(), pts)
	for i := 0; i < 10; i++ {
		assertSnapshotsEquivalent(t, sw.Advance(), sc.Advance(), pts)
	}
	jump := sw.Time() + 9*time.Minute
	assertSnapshotsEquivalent(t, sw.AdvanceTo(jump), sc.AdvanceTo(jump), pts)
}

func TestAdaptiveGridSizing(t *testing.T) {
	// The resolution rule: rows = max(18, ceil(sqrt(N/8))), cols = 2*rows,
	// with ~20 degree polar caps at any resolution. Shell 1 must keep the
	// original 18x36 grid so single-shell behaviour is unchanged.
	for _, tc := range []struct {
		n          int
		rows, caps int
	}{
		{0, 18, 2},
		{1584, 18, 2},
		{3236, 21, 2},
		{7500, 31, 3},
		{10736, 37, 4},
	} {
		gm := newGridGeom(tc.n)
		if gm.rows != tc.rows || gm.cols != 2*tc.rows || gm.capRows != tc.caps {
			t.Fatalf("n=%d: grid %dx%d caps %d, want %dx%d caps %d",
				tc.n, gm.rows, gm.cols, gm.capRows, tc.rows, 2*tc.rows, tc.caps)
		}
	}
}

func TestPathMemoCapScalesWithSize(t *testing.T) {
	small := MustNew(Config{
		Walker:          orbit.Walker{AltitudeKm: 550, InclinationDeg: 53, Planes: 6, SatsPerPlane: 8},
		MinElevationDeg: 25,
	})
	if small.memoCap != pathMemoCap {
		t.Fatalf("small constellation memo cap %d, want floor %d", small.memoCap, pathMemoCap)
	}
	big := MustNew(StarlinkGen2Config())
	if big.memoCap != big.Total() {
		t.Fatalf("Gen2 memo cap %d, want %d", big.memoCap, big.Total())
	}
}

func TestPerConstellationMemoCounters(t *testing.T) {
	// Two constellations in one process must account their memo traffic
	// independently — the gauge isolation the multi-shell experiments need.
	a := MustNew(DefaultConfig())
	b := MustNew(KuiperConfig())
	a.ResetPathMemoCounters()
	b.ResetPathMemoCounters()
	sa, sb := a.Snapshot(0), b.Snapshot(0)
	sa.PathTree(3)
	sa.PathTree(3)
	sb.PathTree(5)
	if h, m := a.PathMemoCounters(); h != 1 || m != 1 {
		t.Fatalf("constellation A counters %d/%d, want 1/1", h, m)
	}
	if h, m := b.PathMemoCounters(); h != 0 || m != 1 {
		t.Fatalf("constellation B counters %d/%d, want 0/1", h, m)
	}
}

func TestSweepAdvanceZeroAllocsGen2Scale(t *testing.T) {
	// The headline scale guarantee: at 10k+ satellites (Gen2 + Kuiper
	// composite) a steady-state sweep step still allocates nothing.
	if raceEnabled {
		t.Skip("allocation counts are not exact under the race detector")
	}
	if testing.Short() {
		t.Skip("10k-satellite constellation build in -short mode")
	}
	cfg := StarlinkGen2Config()
	cfg.Shells = append(cfg.Shells, orbit.Kuiper()...)
	c := MustNew(cfg)
	if c.Total() != 10736 {
		t.Fatalf("composite holds %d sats, want 10736", c.Total())
	}
	sw := c.Sweep(0, 15*time.Second)
	defer sw.Close()
	sw.At().ISLGraph()
	for i := 0; i < 20; i++ {
		sw.Advance()
	}
	if avg := testing.AllocsPerRun(50, func() { sw.Advance() }); avg != 0 {
		t.Fatalf("Gen2-scale sweep advance allocates %.1f objects/step, want 0", avg)
	}
}
