package constellation

import "time"

// CursorObserver receives cursor progress: a Tick with the new sim time
// after every advance, and a RecordStep with the advance's sim interval and
// wall-clock cost. telemetry.SeriesCollector satisfies it — this interface
// exists so the constellation package stays free of a telemetry dependency.
type CursorObserver interface {
	Tick(t time.Duration)
	RecordStep(prev, at, wall time.Duration)
}

// ObserveCursor wraps a cursor so every advance reports to the observer —
// the hook the windowed series collector rides to key metric windows by sim
// time and to collect sweep-step phase spans. The observer is ticked once at
// the current position so the first window aligns to the cursor's start. A
// nil observer returns the cursor unwrapped.
func ObserveCursor(c Cursor, o CursorObserver) Cursor {
	if o == nil {
		return c
	}
	o.Tick(c.Time())
	return &observedCursor{inner: c, o: o}
}

type observedCursor struct {
	inner Cursor
	o     CursorObserver
}

func (c *observedCursor) At() *Snapshot       { return c.inner.At() }
func (c *observedCursor) Time() time.Duration { return c.inner.Time() }
func (c *observedCursor) Step() time.Duration { return c.inner.Step() }
func (c *observedCursor) Close()              { c.inner.Close() }

func (c *observedCursor) Advance() *Snapshot {
	prev := c.inner.Time()
	start := time.Now()
	s := c.inner.Advance()
	c.report(prev, start)
	return s
}

func (c *observedCursor) AdvanceTo(t time.Duration) *Snapshot {
	prev := c.inner.Time()
	start := time.Now()
	s := c.inner.AdvanceTo(t)
	c.report(prev, start)
	return s
}

func (c *observedCursor) report(prev time.Duration, start time.Time) {
	at := c.inner.Time()
	if at != prev {
		c.o.RecordStep(prev, at, time.Since(start))
	}
	c.o.Tick(at)
}
