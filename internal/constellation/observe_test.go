package constellation

import (
	"testing"
	"time"
)

// recordingObserver captures Tick/RecordStep calls for assertion.
type recordingObserver struct {
	ticks []time.Duration
	steps [][2]time.Duration // prev, at
	walls []time.Duration
}

func (o *recordingObserver) Tick(t time.Duration) { o.ticks = append(o.ticks, t) }
func (o *recordingObserver) RecordStep(prev, at, wall time.Duration) {
	o.steps = append(o.steps, [2]time.Duration{prev, at})
	o.walls = append(o.walls, wall)
}

func TestObserveCursorReportsAdvances(t *testing.T) {
	c := small()
	obs := &recordingObserver{}
	cur := ObserveCursor(c.Sweep(0, 30*time.Second), obs)
	defer cur.Close()

	// Wrapping ticks once at the start position, so the first window aligns.
	if len(obs.ticks) != 1 || obs.ticks[0] != 0 {
		t.Fatalf("initial ticks = %v, want [0]", obs.ticks)
	}
	cur.Advance()
	cur.AdvanceTo(2 * time.Minute)
	cur.AdvanceTo(2 * time.Minute) // no movement: Tick only, no step span
	if got := cur.Time(); got != 2*time.Minute {
		t.Fatalf("cursor time = %v", got)
	}
	wantTicks := []time.Duration{0, 30 * time.Second, 2 * time.Minute, 2 * time.Minute}
	if len(obs.ticks) != len(wantTicks) {
		t.Fatalf("ticks = %v, want %v", obs.ticks, wantTicks)
	}
	for i, want := range wantTicks {
		if obs.ticks[i] != want {
			t.Fatalf("ticks = %v, want %v", obs.ticks, wantTicks)
		}
	}
	if len(obs.steps) != 2 {
		t.Fatalf("steps = %v, want two (the no-op advance records none)", obs.steps)
	}
	if obs.steps[0] != [2]time.Duration{0, 30 * time.Second} ||
		obs.steps[1] != [2]time.Duration{30 * time.Second, 2 * time.Minute} {
		t.Errorf("step intervals = %v", obs.steps)
	}
	for i, w := range obs.walls {
		if w <= 0 {
			t.Errorf("step %d wall time = %v, want > 0", i, w)
		}
	}
}

// TestObserveCursorTransparent: the wrapper must not change what the cursor
// yields — snapshots, times, and step width pass straight through.
func TestObserveCursorTransparent(t *testing.T) {
	c := small()
	plain := c.Sweep(0, time.Minute)
	defer plain.Close()
	wrapped := ObserveCursor(c.Sweep(0, time.Minute), &recordingObserver{})
	defer wrapped.Close()

	if wrapped.Step() != plain.Step() {
		t.Fatalf("step %v != %v", wrapped.Step(), plain.Step())
	}
	for i := 0; i < 3; i++ {
		a, b := plain.Advance(), wrapped.Advance()
		if a.Time() != b.Time() {
			t.Fatalf("advance %d: time %v != %v", i, b.Time(), a.Time())
		}
	}
	if wrapped.At().Time() != plain.At().Time() {
		t.Fatal("At() mismatch")
	}
}

func TestObserveCursorNilObserver(t *testing.T) {
	c := small()
	inner := c.Sweep(0, time.Minute)
	defer inner.Close()
	if got := ObserveCursor(inner, nil); got != inner {
		t.Fatal("nil observer must return the cursor unwrapped")
	}
}
