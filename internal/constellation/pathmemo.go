package constellation

import (
	"sync"

	"spacecdn/internal/routing"
)

// pathMemoCap is the floor of the per-snapshot tree memo capacity. The
// working set is every uplink satellite visible from the client cities — the
// CDN resolve path roots trees at each city's serving satellite (~100
// sources) and the ground fallback prices every visible uplink (~450 sources
// fleet-wide at the default scale) — so 1024 covers the paper's shell with
// headroom while bounding the worst-case footprint to ~20 MB per snapshot
// (1024 trees x ~20 KB). Bigger constellations have proportionally more
// visible uplinks, so the effective capacity scales with the satellite
// count: max(1024, N), set per constellation (Constellation.memoCap).
const pathMemoCap = 1024

// PathMemoCounters returns this constellation's path-tree memo hit and miss
// counts. Counters are per constellation — multi-shell experiments running
// several constellations in one process read their own effectiveness — and
// aggregate across the constellation's snapshots, because snapshots are
// created per instant and per system and would vanish with their counters.
func (c *Constellation) PathMemoCounters() (hits, misses int64) {
	return c.memoHits.Load(), c.memoMisses.Load()
}

// ResetPathMemoCounters zeroes the memo counters (test isolation).
func (c *Constellation) ResetPathMemoCounters() {
	c.memoHits.Store(0)
	c.memoMisses.Store(0)
}

// memoKey identifies one memoized tree: the source satellite and the
// composite epoch (Snapshot.memoEpoch) of the topology it was settled over —
// sweep generation in the high bits, fault epoch in the low. Epoch 0 is the
// healthy graph of a fresh snapshot; fault-masked views (Snapshot.Masked)
// memoize under their own fault epochs and sweep steps under their own
// generations, so a degraded or stale tree can never be served for a healthy
// current-step query or vice versa. Entries from past sweep steps simply age
// out of the LRU.
type memoKey struct {
	src   SatID
	epoch uint64
}

// memoNode is one LRU entry: a keyed settled tree, linked into a recency
// list (head = most recent).
type memoNode struct {
	key        memoKey
	tree       *routing.SPTree
	prev, next *memoNode
}

// pathMemo is a bounded, mutex-guarded LRU from (source, fault epoch) to
// shortest-path tree. Trees are computed outside the lock — a duplicate
// computation during a race is harmless because trees are deterministic, and
// it keeps Dijkstra latency out of the critical section.
type pathMemo struct {
	mu         sync.Mutex
	cap        int // max entries; 0 falls back to pathMemoCap
	nodes      map[memoKey]*memoNode
	head, tail *memoNode
}

// lookup returns the memoized tree for (src, epoch), refreshing its recency.
func (m *pathMemo) lookup(src SatID, epoch uint64) (*routing.SPTree, bool) {
	m.mu.Lock()
	nd := m.nodes[memoKey{src: src, epoch: epoch}]
	if nd == nil {
		m.mu.Unlock()
		return nil, false
	}
	m.moveToFront(nd)
	t := nd.tree
	m.mu.Unlock()
	return t, true
}

// insert memoizes a freshly computed tree, evicting the least recently used
// entry beyond capacity. If a racing goroutine inserted the key first, the
// existing entry is kept (both trees are identical).
func (m *pathMemo) insert(src SatID, epoch uint64, t *routing.SPTree) {
	m.mu.Lock()
	defer m.mu.Unlock()
	capacity := m.cap
	if capacity <= 0 {
		capacity = pathMemoCap
	}
	if m.nodes == nil {
		m.nodes = make(map[memoKey]*memoNode, capacity)
	}
	key := memoKey{src: src, epoch: epoch}
	if nd := m.nodes[key]; nd != nil {
		m.moveToFront(nd)
		return
	}
	nd := &memoNode{key: key, tree: t}
	m.nodes[key] = nd
	m.pushFront(nd)
	if len(m.nodes) > capacity {
		lru := m.tail
		m.unlink(lru)
		delete(m.nodes, lru.key)
	}
}

func (m *pathMemo) pushFront(nd *memoNode) {
	nd.prev = nil
	nd.next = m.head
	if m.head != nil {
		m.head.prev = nd
	}
	m.head = nd
	if m.tail == nil {
		m.tail = nd
	}
}

func (m *pathMemo) unlink(nd *memoNode) {
	if nd.prev != nil {
		nd.prev.next = nd.next
	} else {
		m.head = nd.next
	}
	if nd.next != nil {
		nd.next.prev = nd.prev
	} else {
		m.tail = nd.prev
	}
	nd.prev, nd.next = nil, nil
}

func (m *pathMemo) moveToFront(nd *memoNode) {
	if m.head == nd {
		return
	}
	m.unlink(nd)
	m.pushFront(nd)
}

// PathTree returns the single-source shortest-path tree over the snapshot's
// ISL graph rooted at src, memoized per snapshot under fault epoch 0 (the
// healthy topology): every client resolving through the same uplink
// satellite shares one Dijkstra run. Returns nil when src is out of range.
func (s *Snapshot) PathTree(src SatID) *routing.SPTree {
	epoch := s.memoEpoch(0)
	if t, ok := s.memo.lookup(src, epoch); ok {
		s.c.memoHits.Add(1)
		return t
	}
	s.c.memoMisses.Add(1)
	t := s.ISLGraph().SPTreeFrom(routing.NodeID(src))
	if t != nil {
		s.memo.insert(src, epoch, t)
	}
	return t
}

// PathTreeWithin returns a tree whose entries are exact for every node with
// distance at most maxCost from src. A memoized full tree satisfies any
// bound and is served directly; on a miss, a cost-bounded Dijkstra runs
// without populating the memo (bounded trees must not masquerade as full
// ones). Returns nil when src is out of range.
func (s *Snapshot) PathTreeWithin(src SatID, maxCost float64) *routing.SPTree {
	if t, ok := s.memo.lookup(src, s.memoEpoch(0)); ok {
		s.c.memoHits.Add(1)
		return t
	}
	s.c.memoMisses.Add(1)
	return s.ISLGraph().SPTreeFromWithin(routing.NodeID(src), maxCost)
}
