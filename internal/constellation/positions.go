package constellation

import (
	"math"
	"time"

	"spacecdn/internal/geo"
	"spacecdn/internal/orbit"
)

// posEngine propagates every satellite of the constellation into a caller
// buffer in one pass. It is the single source of positions for both fresh
// snapshots and the sweep cursor, so the two are bit-identical by
// construction — an equivalence the sweep engine's byte-identical-output
// guarantee rests on.
//
// For a circular orbit the argument of latitude is u(t) = phase + n*t, and
// the ECEF position is a fixed per-satellite basis pair combined by
// (cos u, sin u) and rotated by the Earth angle. Satellites sharing one
// altitude share one mean motion n, so cos(n*t)/sin(n*t) is computed once
// per group and each satellite costs a handful of multiply-adds — no
// per-satellite trigonometry. A multi-shell composite contributes one group
// per contiguous equal-altitude run (shells are contiguous by construction),
// so the fast path covers every configuration; a single shell is exactly one
// group, reproducing the single-shell engine operation for operation. The
// basis arrays are the pooled SoA layout the sweep advances into.
type posEngine struct {
	groups []posGroup

	// Per-satellite, time-invariant: cos/sin of the epoch phase and the
	// radius-scaled ECI basis vectors. ECI(t) = cosU*basisA + sinU*basisB.
	cosP, sinP     []float64
	basisA, basisB []geo.Vec3
}

// posGroup is a contiguous id range sharing one mean motion.
type posGroup struct {
	n      float64 // shared mean motion, rad/s
	lo, hi int     // satellite index range [lo, hi)
}

func newPosEngine(els []orbit.Elements) *posEngine {
	pe := &posEngine{}
	if len(els) == 0 {
		return pe
	}
	for i, e := range els {
		if len(pe.groups) == 0 || e.AltitudeKm != els[pe.groups[len(pe.groups)-1].lo].AltitudeKm {
			pe.groups = append(pe.groups, posGroup{n: e.MeanMotionRadPerSec(), lo: i})
		}
		pe.groups[len(pe.groups)-1].hi = i + 1
	}
	pe.cosP = make([]float64, len(els))
	pe.sinP = make([]float64, len(els))
	pe.basisA = make([]geo.Vec3, len(els))
	pe.basisB = make([]geo.Vec3, len(els))
	for i, e := range els {
		phase := e.PhaseDeg * math.Pi / 180
		pe.cosP[i], pe.sinP[i] = math.Cos(phase), math.Sin(phase)
		inc := e.InclinationDeg * math.Pi / 180
		raan := e.RAANDeg * math.Pi / 180
		r := e.RadiusKm()
		cr, sr := math.Cos(raan), math.Sin(raan)
		ci, si := math.Cos(inc), math.Sin(inc)
		// From PositionECI: ECI = cosU*(r*cr, r*sr, 0) + sinU*(-r*sr*ci, r*cr*ci, r*si).
		pe.basisA[i] = geo.Vec3{X: r * cr, Y: r * sr}
		pe.basisB[i] = geo.Vec3{X: -r * sr * ci, Y: r * cr * ci, Z: r * si}
	}
	return pe
}

// positionsInto writes the ECEF position of every satellite at time t into
// dst (len must equal the satellite count). It never allocates.
func (pe *posEngine) positionsInto(t time.Duration, dst []geo.Vec3) {
	sec := t.Seconds()
	theta := orbit.EarthRotationRadPerSec * sec
	ct, st := math.Cos(theta), math.Sin(theta)
	for _, gr := range pe.groups {
		cnt, snt := math.Cos(gr.n*sec), math.Sin(gr.n*sec)
		for i := gr.lo; i < gr.hi; i++ {
			cu := pe.cosP[i]*cnt - pe.sinP[i]*snt
			su := pe.sinP[i]*cnt + pe.cosP[i]*snt
			a, b := pe.basisA[i], pe.basisB[i]
			x := cu*a.X + su*b.X
			y := cu*a.Y + su*b.Y
			z := cu*a.Z + su*b.Z
			// ECEF = Rz(-theta) * ECI.
			dst[i] = geo.Vec3{X: x*ct + y*st, Y: y*ct - x*st, Z: z}
		}
	}
}
