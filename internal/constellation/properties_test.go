package constellation

import (
	"testing"
	"time"

	"spacecdn/internal/geo"
	"spacecdn/internal/orbit"
)

// Cross-cutting invariants of the constellation geometry.

func TestISLNeighborSymmetry(t *testing.T) {
	// Property: the +grid must be symmetric — if a lists b as a neighbour,
	// b lists a. Asymmetry would make the undirected ISL graph depend on
	// construction order.
	for _, cfg := range []Config{
		DefaultConfig(),
		{Walker: orbit.Walker{AltitudeKm: 550, InclinationDeg: 53, Planes: 12, SatsPerPlane: 10, PhasingF: 5},
			MinElevationDeg: 25, CrossPlaneISLs: true},
		{Walker: orbit.Walker{AltitudeKm: 600, InclinationDeg: 70, Planes: 18, SatsPerPlane: 14, PhasingF: 7},
			MinElevationDeg: 25, CrossPlaneISLs: true},
	} {
		c := MustNew(cfg)
		s := c.Snapshot(0)
		asym := 0
		for id := 0; id < c.Total(); id++ {
			for _, nb := range s.ISLNeighbors(SatID(id)) {
				back := false
				for _, rev := range s.ISLNeighbors(nb) {
					if rev == SatID(id) {
						back = true
						break
					}
				}
				if !back {
					asym++
				}
			}
		}
		// The phase-nearest pairing can produce isolated asymmetric pairs at
		// half-slot ties; the graph construction dedups them, but the count
		// must be negligible.
		if asym > c.Total()/50 {
			t.Errorf("config %dx%d: %d asymmetric neighbour entries", cfg.Walker.Planes, cfg.Walker.SatsPerPlane, asym)
		}
	}
}

func TestSnapshotPositionsMatchElements(t *testing.T) {
	c := MustNew(DefaultConfig())
	for _, dt := range []time.Duration{0, 7 * time.Minute, time.Hour} {
		s := c.Snapshot(dt)
		for _, id := range []SatID{0, 123, 791, 1583} {
			want := c.Elements(id).PositionECEF(dt)
			if got := s.Position(id); got.Sub(want).Norm() > 1e-9 {
				t.Fatalf("snapshot position mismatch for sat %d at %v", id, dt)
			}
		}
	}
}

func TestVisibleConsistentOverMask(t *testing.T) {
	// A stricter elevation mask must yield a subset of the satellites.
	loose := MustNew(Config{Walker: orbit.StarlinkShell1(), MinElevationDeg: 15, CrossPlaneISLs: true})
	strict := MustNew(Config{Walker: orbit.StarlinkShell1(), MinElevationDeg: 40, CrossPlaneISLs: true})
	for _, city := range geo.Cities()[:30] {
		lv := loose.Snapshot(0).Visible(city.Loc)
		sv := strict.Snapshot(0).Visible(city.Loc)
		if len(sv) > len(lv) {
			t.Fatalf("%s: strict mask sees more satellites (%d > %d)", city.Name, len(sv), len(lv))
		}
		inLoose := map[SatID]bool{}
		for _, v := range lv {
			inLoose[v.ID] = true
		}
		for _, v := range sv {
			if !inLoose[v.ID] {
				t.Fatalf("%s: sat %d visible at 40deg but not 15deg", city.Name, v.ID)
			}
		}
	}
}

func TestCoverageAcrossLatitudes(t *testing.T) {
	// Shell 1 covers the mid-latitudes continuously and leaves the poles
	// dark; coverage (visible count) should peak near the inclination.
	c := MustNew(DefaultConfig())
	s := c.Snapshot(0)
	counts := map[int]int{}
	for lat := -80; lat <= 80; lat += 10 {
		total := 0
		for lon := -180; lon < 180; lon += 30 {
			total += len(s.Visible(geo.NewPoint(float64(lat), float64(lon))))
		}
		counts[lat] = total
	}
	if counts[50] <= counts[0] {
		t.Errorf("coverage at 50 deg (%d) should exceed equator (%d) for a 53-deg shell",
			counts[50], counts[0])
	}
	if counts[80] != 0 || counts[-80] != 0 {
		t.Errorf("polar coverage should be zero: %d / %d", counts[80], counts[-80])
	}
	if counts[-50] == 0 || counts[50] == 0 {
		t.Error("mid-latitudes must be covered")
	}
}

func TestISLGraphStableDistances(t *testing.T) {
	// The +grid's topology is time-invariant (same neighbour pairs), and
	// intra-plane distances are constant; cross-plane distances oscillate
	// with latitude but stay within physical bounds at all times.
	c := MustNew(DefaultConfig())
	s0 := c.Snapshot(0)
	s1 := c.Snapshot(20 * time.Minute)
	for id := 0; id < c.Total(); id += 97 {
		n0 := s0.ISLNeighbors(SatID(id))
		n1 := s1.ISLNeighbors(SatID(id))
		if len(n0) != len(n1) {
			t.Fatalf("sat %d neighbour count changed", id)
		}
		for i := range n0 {
			if n0[i] != n1[i] {
				t.Fatalf("sat %d neighbour set changed over time", id)
			}
		}
		for _, nb := range n1 {
			if d := s1.ISLDistanceKm(SatID(id), nb); d < 50 || d > 2100 {
				t.Fatalf("sat %d-%d distance %v km out of bounds at t=20m", id, nb, d)
			}
		}
	}
}
