package constellation

import (
	"fmt"
	"time"

	"spacecdn/internal/geo"
)

// Cursor is a monotonic time cursor over the constellation: the common
// interface of the incremental Sweep engine and its naive SweepScan
// reference. Time-stepped consumers (RTT time series, overhead windows,
// striping schedules, resilience sweeps) are written against the interface,
// so the equivalence of the two forms can be proven at the consumer's own
// output stream.
type Cursor interface {
	// At returns the snapshot at the cursor's current time without moving.
	At() *Snapshot
	// Time returns the cursor's current offset from the constellation epoch.
	Time() time.Duration
	// Step returns the cursor's nominal step (0 for AdvanceTo-only cursors).
	Step() time.Duration
	// Advance moves one step forward and returns the snapshot there.
	Advance() *Snapshot
	// AdvanceTo moves to an arbitrary time at or after the current time and
	// returns the snapshot there. Moving backwards panics.
	AdvanceTo(t time.Duration) *Snapshot
	// Close releases the cursor's pooled buffers. Snapshots obtained from
	// the cursor must not be used after Close.
	Close()
}

// Sweep is the temporal-coherence engine: a cursor that advances one
// reusable snapshot in place instead of rebuilding the world each step.
// Positions are recomputed into the pooled SoA buffer, the visibility grid
// migrates only the satellites that crossed a cell boundary, the ISL graph
// (once materialized) has its edge weights refreshed in place over the
// constellation's shared CSR topology, and the path memo survives across
// steps keyed by (step generation, fault epoch). At steady state an advance
// performs zero allocations, and every query against the advanced snapshot
// returns results byte-identical to a fresh Snapshot(t).
//
// The snapshot returned by At/Advance/AdvanceTo is only valid until the next
// advance or Close: a sweep trades the immutability of fresh snapshots for
// O(what moved) steps. Concurrent readers of the current snapshot are safe
// (experiments fan batch resolution out over it); advancing while any reader
// is still active is a data race, exactly like mutating any shared value.
type Sweep struct {
	c      *Constellation
	step   time.Duration
	snap   *Snapshot
	closed bool
}

// Sweep returns a cursor positioned at start. Advance moves by step; pass
// step 0 for a cursor driven only through AdvanceTo. Cursors are pooled per
// constellation — Close returns the buffers for reuse, making steady-state
// sweep construction cheap as well.
func (c *Constellation) Sweep(start, step time.Duration) *Sweep {
	w, _ := c.sweepPool.Get().(*Sweep)
	if w == nil {
		n := len(c.elements)
		w = &Sweep{c: c}
		w.snap = &Snapshot{c: c, pos: make([]geo.Vec3, n)}
		w.snap.memo.cap = c.memoCap
		w.snap.grid = newSweepGrid(c)
		w.snap.gridOnce.Do(func() {}) // the grid is owned, never lazily built
	}
	w.closed = false
	w.step = step
	s := w.snap
	c.eng.positionsInto(start, s.pos)
	s.t = start
	s.grid.rebuildLists(s)
	if s.islGraph != nil {
		// A pooled cursor keeps its CSR graph across sweeps (the topology
		// is per-constellation); only the weights need refreshing.
		s.refreshISLWeights()
	}
	// The generation strictly increases across the cursor's whole pooled
	// lifetime (never reset), so memo entries from an earlier sweep can
	// never collide with the new one. Fresh snapshots are generation 0;
	// sweep snapshots always advance past it.
	s.memoGen++
	s.clearMasked()
	return w
}

// At returns the snapshot at the cursor's current time.
func (w *Sweep) At() *Snapshot { return w.snap }

// Time returns the cursor's current offset from the constellation epoch.
func (w *Sweep) Time() time.Duration { return w.snap.t }

// Step returns the cursor's nominal step.
func (w *Sweep) Step() time.Duration { return w.step }

// Advance moves the cursor one step forward and returns the snapshot there.
func (w *Sweep) Advance() *Snapshot {
	if w.step <= 0 {
		panic("constellation: Advance on a Sweep with no step; use AdvanceTo")
	}
	return w.AdvanceTo(w.snap.t + w.step)
}

// AdvanceTo moves the cursor to time t (at or after the current time) and
// returns the snapshot there. The update is O(what moved): full position
// recompute into the pooled buffer (pure arithmetic on the SoA basis), grid
// migration for boundary crossers only, in-place ISL weight refresh, and a
// generation bump that retires stale memo entries without touching them.
func (w *Sweep) AdvanceTo(t time.Duration) *Snapshot {
	if w.closed {
		panic("constellation: use of a closed Sweep")
	}
	s := w.snap
	if t < s.t {
		panic(fmt.Sprintf("constellation: sweep cannot move backwards (%v -> %v)", s.t, t))
	}
	if t == s.t {
		return s
	}
	w.c.eng.positionsInto(t, s.pos)
	s.t = t
	s.grid.advance(s)
	if s.islGraph != nil {
		s.refreshISLWeights()
	}
	s.memoGen++
	s.clearMasked()
	return s
}

// Close returns the cursor to the constellation's pool. Idempotent.
func (w *Sweep) Close() {
	if w.closed {
		return
	}
	w.closed = true
	w.c.sweepPool.Put(w)
}

// SweepScan is the reference cursor: a fresh immutable Snapshot per
// position. It is the naive form every Sweep-backed consumer is proven
// against — same interface, same outputs, none of the reuse.
type SweepScan struct {
	c    *Constellation
	step time.Duration
	snap *Snapshot
}

// SweepScan returns a naive cursor positioned at start.
func (c *Constellation) SweepScan(start, step time.Duration) *SweepScan {
	return &SweepScan{c: c, step: step, snap: c.Snapshot(start)}
}

// At returns the snapshot at the cursor's current time.
func (w *SweepScan) At() *Snapshot { return w.snap }

// Time returns the cursor's current offset from the constellation epoch.
func (w *SweepScan) Time() time.Duration { return w.snap.t }

// Step returns the cursor's nominal step.
func (w *SweepScan) Step() time.Duration { return w.step }

// Advance moves the cursor one step forward and returns a fresh snapshot.
func (w *SweepScan) Advance() *Snapshot {
	if w.step <= 0 {
		panic("constellation: Advance on a SweepScan with no step; use AdvanceTo")
	}
	return w.AdvanceTo(w.snap.t + w.step)
}

// AdvanceTo moves the cursor to time t and returns a fresh snapshot there.
func (w *SweepScan) AdvanceTo(t time.Duration) *Snapshot {
	if t < w.snap.t {
		panic(fmt.Sprintf("constellation: sweep cannot move backwards (%v -> %v)", w.snap.t, t))
	}
	if t == w.snap.t {
		return w.snap
	}
	w.snap = w.c.Snapshot(t)
	return w.snap
}

// Close is a no-op; fresh snapshots are garbage collected as usual.
func (w *SweepScan) Close() {}
