package constellation

import (
	"math/rand"
	"testing"
	"time"

	"spacecdn/internal/geo"
	"spacecdn/internal/orbit"
	"spacecdn/internal/routing"
)

// assertSnapshotsEquivalent proves a sweep snapshot indistinguishable from the
// naive reference at the same instant: bit-identical positions, identical
// visibility answers over a spread of ground points, an edge-for-edge
// identical ISL graph, and equal shortest-path distances.
func assertSnapshotsEquivalent(t *testing.T, got, want *Snapshot, pts []geo.Point) {
	t.Helper()
	if got.Time() != want.Time() {
		t.Fatalf("time mismatch: %v vs %v", got.Time(), want.Time())
	}
	for i := range want.pos {
		if got.pos[i] != want.pos[i] {
			t.Fatalf("t=%v sat %d position %v != %v", want.Time(), i, got.pos[i], want.pos[i])
		}
	}
	for _, p := range pts {
		gv, wv := got.Visible(p), want.Visible(p)
		if len(gv) != len(wv) {
			t.Fatalf("t=%v %+v: %d visible vs %d", want.Time(), p, len(gv), len(wv))
		}
		for i := range wv {
			if gv[i] != wv[i] {
				t.Fatalf("t=%v %+v visible[%d]: %+v != %+v", want.Time(), p, i, gv[i], wv[i])
			}
		}
		gb, gok := got.BestVisible(p)
		wb, wok := want.BestVisible(p)
		if gok != wok || gb != wb {
			t.Fatalf("t=%v %+v best: %+v,%v != %+v,%v", want.Time(), p, gb, gok, wb, wok)
		}
		if gn, wn := got.Nearest(p), want.Nearest(p); gn != wn {
			t.Fatalf("t=%v %+v nearest: %+v != %+v", want.Time(), p, gn, wn)
		}
	}
	assertGraphsIdentical(t, got.ISLGraph(), want.ISLGraph())
	if gm, wm := got.ISLGraph().MaxEdgeWeight(), want.ISLGraph().MaxEdgeWeight(); gm != wm {
		t.Fatalf("t=%v max edge weight %v != %v", want.Time(), gm, wm)
	}
	for _, src := range []SatID{0, SatID(len(want.pos) / 3), SatID(len(want.pos) / 2)} {
		gt, wt := got.PathTree(src), want.PathTree(src)
		for n := 0; n < len(want.pos); n += 97 {
			if gd, wd := gt.Dist(routing.NodeID(n)), wt.Dist(routing.NodeID(n)); gd != wd {
				t.Fatalf("t=%v tree %d dist to %d: %v != %v", want.Time(), src, n, gd, wd)
			}
		}
	}
}

// TestSweepMatchesScanEveryStep is the tentpole equivalence proof: an
// incremental sweep and the fresh-snapshot reference walked in lockstep must
// be indistinguishable at every step, including after an irregular AdvanceTo
// jump that migrates many satellites at once.
func TestSweepMatchesScanEveryStep(t *testing.T) {
	c := MustNew(DefaultConfig())
	rng := rand.New(rand.NewSource(7))
	pts := randomPoints(rng, 12)

	const step = 15 * time.Second
	sw := c.Sweep(0, step)
	defer sw.Close()
	sc := c.SweepScan(0, step)

	assertSnapshotsEquivalent(t, sw.At(), sc.At(), pts)
	for i := 0; i < 24; i++ {
		assertSnapshotsEquivalent(t, sw.Advance(), sc.Advance(), pts)
	}
	// A long jump crosses many cell boundaries in one advance.
	jump := sw.Time() + 11*time.Minute
	assertSnapshotsEquivalent(t, sw.AdvanceTo(jump), sc.AdvanceTo(jump), pts)
	for i := 0; i < 6; i++ {
		assertSnapshotsEquivalent(t, sw.Advance(), sc.Advance(), pts)
	}
	if sw.Step() != step || sc.Step() != step {
		t.Fatalf("step accessors: %v, %v, want %v", sw.Step(), sc.Step(), step)
	}
}

// TestSweepMatchesScanAcrossConfigs re-proves the equivalence on the
// degenerate Walker shells where the +grid dedupe and grid migration are
// easiest to get subtly wrong.
func TestSweepMatchesScanAcrossConfigs(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no-cross-plane", func() Config {
			cfg := DefaultConfig()
			cfg.CrossPlaneISLs = false
			return cfg
		}()},
		{"two-per-plane", Config{
			Walker: orbit.Walker{
				AltitudeKm: 550, InclinationDeg: 53,
				Planes: 6, SatsPerPlane: 2, PhasingF: 1,
			},
			MinElevationDeg: 25,
			CrossPlaneISLs:  true,
		}},
		{"asymmetric-phasing", Config{
			Walker: orbit.Walker{
				AltitudeKm: 550, InclinationDeg: 53,
				Planes: 5, SatsPerPlane: 7, PhasingF: 3,
			},
			MinElevationDeg: 25,
			CrossPlaneISLs:  true,
		}},
	}
	rng := rand.New(rand.NewSource(11))
	pts := randomPoints(rng, 8)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := MustNew(tc.cfg)
			sw := c.Sweep(3*time.Minute, 30*time.Second)
			defer sw.Close()
			sc := c.SweepScan(3*time.Minute, 30*time.Second)
			assertSnapshotsEquivalent(t, sw.At(), sc.At(), pts)
			for i := 0; i < 10; i++ {
				assertSnapshotsEquivalent(t, sw.Advance(), sc.Advance(), pts)
			}
		})
	}
}

// TestSweepMaskedMatchesFresh proves fault-masked routing over a sweep
// snapshot identical to the same mask over a fresh snapshot, step after step:
// masked graph builds replay the shared topology's edge list, and the
// composite memo epoch keeps per-step degraded trees from leaking across
// advances.
func TestSweepMaskedMatchesFresh(t *testing.T) {
	c := MustNew(DefaultConfig())
	dead := routing.NewBitset(c.Total())
	dead.Set(17)
	dead.Set(400)
	links := []LinkID{NormalizedLink(3, SatID(c.SatsPerPlane()+3))}

	sw := c.Sweep(0, 15*time.Second)
	defer sw.Close()
	for i := 0; i < 8; i++ {
		snap := sw.Advance()
		fresh := c.Snapshot(snap.Time())
		gv := snap.Masked(9, dead, links)
		wv := fresh.Masked(9, dead, links)
		assertGraphsIdentical(t, gv.ISLGraph(), wv.ISLGraph())
		gt, wt := gv.PathTree(0), wv.PathTree(0)
		for n := 0; n < c.Total(); n += 131 {
			if gd, wd := gt.Dist(routing.NodeID(n)), wt.Dist(routing.NodeID(n)); gd != wd {
				t.Fatalf("step %d masked dist to %d: %v != %v", i, n, gd, wd)
			}
		}
		if gt.Reachable(17) || gt.Reachable(400) {
			t.Fatalf("step %d: masked tree reaches a dead satellite", i)
		}
	}
}

// TestSweepPooledReuse proves a cursor recycled through the pool starts a new
// sweep from clean state: same outputs as an unpooled reference, and memo
// generations never collide with the previous sweep's entries.
func TestSweepPooledReuse(t *testing.T) {
	c := MustNew(DefaultConfig())
	rng := rand.New(rand.NewSource(23))
	pts := randomPoints(rng, 6)

	first := c.Sweep(0, time.Minute)
	first.At().ISLGraph() // materialize so the pooled cursor carries a CSR graph
	first.Advance()
	first.Close()

	// Likely the pooled cursor from above; correctness must not depend on it.
	sw := c.Sweep(7*time.Minute, 20*time.Second)
	defer sw.Close()
	sc := c.SweepScan(7*time.Minute, 20*time.Second)
	assertSnapshotsEquivalent(t, sw.At(), sc.At(), pts)
	for i := 0; i < 5; i++ {
		assertSnapshotsEquivalent(t, sw.Advance(), sc.Advance(), pts)
	}
}

// TestSweepContractViolationsPanic pins the cursor misuse contract: moving
// backwards, advancing a stepless cursor, and advancing after Close are all
// programming errors, not silently wrong answers.
func TestSweepContractViolationsPanic(t *testing.T) {
	c := MustNew(DefaultConfig())
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	sw := c.Sweep(time.Minute, 0)
	if got := sw.AdvanceTo(time.Minute); got != sw.At() {
		t.Fatal("AdvanceTo(current) must be a no-op returning the snapshot")
	}
	mustPanic("stepless Advance", func() { sw.Advance() })
	mustPanic("backwards AdvanceTo", func() { sw.AdvanceTo(30 * time.Second) })
	sw.Close()
	sw.Close() // idempotent
	mustPanic("AdvanceTo after Close", func() { sw.AdvanceTo(2 * time.Minute) })

	sc := c.SweepScan(time.Minute, 0)
	mustPanic("stepless scan Advance", func() { sc.Advance() })
	mustPanic("backwards scan AdvanceTo", func() { sc.AdvanceTo(0) })
}

// TestOverheadWindowsMatchesScan proves the incremental window sampler emits
// the same serving windows as the fresh-snapshot form.
func TestOverheadWindowsMatchesScan(t *testing.T) {
	c := MustNew(DefaultConfig())
	for _, p := range []geo.Point{
		{LatDeg: 47.6, LonDeg: -122.3},
		{LatDeg: -33.9, LonDeg: 151.2},
		{LatDeg: 78.2, LonDeg: 15.6}, // above the shell's coverage band
	} {
		got := c.OverheadWindows(p, 0, 20*time.Minute, 15*time.Second)
		want := c.OverheadWindowsScan(p, 0, 20*time.Minute, 15*time.Second)
		if len(got) != len(want) {
			t.Fatalf("%+v: %d windows vs %d", p, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%+v window %d: %+v != %+v", p, i, got[i], want[i])
			}
		}
	}
}

// TestSweepAdvanceZeroAllocs is the steady-state guarantee: once the cursor is
// warm (grid lists built, CSR graph materialized), advancing the world —
// positions, grid migration, in-place weight refresh, memo retirement —
// performs zero allocations per step.
func TestSweepAdvanceZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not exact under the race detector")
	}
	c := MustNew(DefaultConfig())
	sw := c.Sweep(0, 15*time.Second)
	defer sw.Close()
	sw.At().ISLGraph()
	for i := 0; i < 20; i++ {
		sw.Advance()
	}
	if avg := testing.AllocsPerRun(100, func() { sw.Advance() }); avg != 0 {
		t.Fatalf("sweep advance allocates %.1f objects/step, want 0", avg)
	}
}

// TestCSRGraphRejectsAddEdge pins the guard that keeps the shared CSR backing
// array from being corrupted by incremental mutation.
func TestCSRGraphRejectsAddEdge(t *testing.T) {
	c := MustNew(DefaultConfig())
	g := c.Snapshot(0).ISLGraph()
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge on a CSR-built graph did not panic")
		}
	}()
	g.AddEdge(0, 1, 1.0)
}
