package constellation

import (
	"spacecdn/internal/orbit"
	"spacecdn/internal/routing"
)

// islTopology is the time-invariant structure of the +grid ISL graph in
// compressed-sparse-row form. The +grid adjacency depends only on plane and
// slot indices (phase-nearest cross-plane pairing is time-invariant), so it
// is computed once per constellation; every snapshot materializes its ISL
// graph by filling the shared structure with that instant's edge weights,
// and a sweep cursor refreshes the weights of an existing graph in place.
//
// The layouts reproduce the incremental build exactly: edges holds the
// undirected links in the first-encounter order of the dedupe scan, and the
// directed CSR arrays replay AddUndirected over that edge list, so each
// node's adjacency order — which downstream algorithms' tie-breaking depends
// on — is bit-identical to the graph buildISLGraphScan constructs.
type islTopology struct {
	edges []LinkID // undirected links, first-encounter order, A < B

	offsets []int32 // n+1 prefix offsets into targets
	targets []int32 // directed neighbour per CSR slot
	widx    []int32 // CSR slot -> index into edges (shared by both directions)

	// slotA/slotB invert widx: the two directed CSR slots of undirected edge
	// k. The sweep engine's per-step weight refresh walks the undirected
	// edges once and writes both slots directly, instead of re-deriving the
	// mapping through widx for every directed edge.
	slotA, slotB []int32
}

// topology returns the constellation's ISL structure, built once on first
// use; concurrent first callers share one build.
func (c *Constellation) topology() *islTopology {
	c.topoOnce.Do(func() { c.topo = buildTopology(c) })
	return c.topo
}

// buildTopology runs the +grid dedupe scan once and records its outcome as
// an edge list plus CSR adjacency.
func buildTopology(c *Constellation) *islTopology {
	n := len(c.elements)
	deg := 2
	if c.cfg.CrossPlaneISLs {
		deg = 4
	}
	// Flat neighbour table and first-encounter dedupe, exactly as the scan
	// build performs it (see buildISLGraphScan for the rationale).
	nbrs := make([]SatID, 0, deg*n)
	for id := 0; id < n; id++ {
		nbrs = c.appendISLNeighbors(SatID(id), nbrs)
	}
	contains := func(list []SatID, x SatID) bool {
		for _, v := range list {
			if v == x {
				return true
			}
		}
		return false
	}
	t := &islTopology{edges: make([]LinkID, 0, deg*n/2)}
	for id := 0; id < n; id++ {
		a := SatID(id)
		list := nbrs[id*deg : (id+1)*deg]
		for j, b := range list {
			if b == a {
				continue
			}
			if contains(list[:j], b) {
				continue
			}
			if b < a && contains(nbrs[int(b)*deg:(int(b)+1)*deg], a) {
				continue
			}
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			t.edges = append(t.edges, LinkID{A: lo, B: hi})
		}
	}
	// Replay AddUndirected(lo, hi) over the edge list to lay out the
	// directed CSR arrays: each node's adjacency receives its incident
	// edges in edge order, matching the insertion order of the scan build.
	t.offsets = make([]int32, n+1)
	for _, e := range t.edges {
		t.offsets[e.A+1]++
		t.offsets[e.B+1]++
	}
	for i := 1; i <= n; i++ {
		t.offsets[i] += t.offsets[i-1]
	}
	t.targets = make([]int32, 2*len(t.edges))
	t.widx = make([]int32, 2*len(t.edges))
	t.slotA = make([]int32, len(t.edges))
	t.slotB = make([]int32, len(t.edges))
	fill := make([]int32, n)
	put := func(from, to SatID, k int) int32 {
		at := t.offsets[from] + fill[from]
		t.targets[at] = int32(to)
		t.widx[at] = int32(k)
		fill[from]++
		return at
	}
	for k, e := range t.edges {
		t.slotA[k] = put(e.A, e.B, k)
		t.slotB[k] = put(e.B, e.A, k)
	}
	return t
}

// islWeights fills w (one slot per undirected link, in topology edge order)
// with the one-way propagation delay of each link in milliseconds at this
// snapshot's positions. It never allocates.
func (s *Snapshot) islWeights(topo *islTopology, w []float64) {
	for k, e := range topo.edges {
		w[k] = s.ISLDistanceKm(e.A, e.B) / orbit.LightSpeedKmPerSec * 1000
	}
}

// refreshISLWeights recomputes the materialized ISL graph's edge weights in
// place at this snapshot's positions: one fused pass over the undirected
// links writing both directed slots of each. Produces exactly the weights
// and max-weight bound a fresh CSR build computes. Sweep advance hot path;
// never allocates.
func (s *Snapshot) refreshISLWeights() {
	topo := s.c.topology()
	s.islWeights(topo, s.islW)
	s.islGraph.SetCSRWeightsUndirected(topo.slotA, topo.slotB, s.islW)
}

// buildISLGraphCSR materializes the snapshot's full ISL graph over the shared
// topology: one weight computation per physical link, one contiguous edge
// array, no adjacency reconstruction. The weight buffer lives on the snapshot
// so a sweep cursor can refresh the graph in place on later steps.
func (s *Snapshot) buildISLGraphCSR() *routing.Graph {
	topo := s.c.topology()
	if s.islW == nil {
		s.islW = make([]float64, len(topo.edges))
	}
	s.islWeights(topo, s.islW)
	return routing.NewGraphCSR(topo.offsets, topo.targets, topo.widx, s.islW)
}
