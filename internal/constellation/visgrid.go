package constellation

import (
	"math"
	"sort"

	"spacecdn/internal/geo"
)

// visGrid is a lat/lon cell index over the snapshot's satellite sub-points.
// Ground visibility queries against 1,584 satellites used to scan all of
// them; the coverage cone of a 550 km satellite above a 25 degree mask spans
// under ten degrees of central angle, so only a handful of grid cells can
// hold visible satellites. The grid maps a ground point to those cells with
// conservative spherical bounds and re-checks each candidate with the exact
// slant/elevation predicate, so query results are identical to the full scan.
//
// The grid has two layouts sharing one query path:
//
//   - Counting sort (fresh snapshots): cell (r, c) owns
//     sats[start[r*cols+c] : start[r*cols+c+1]], ids ascending within a
//     cell. Immutable after build and shared by concurrent readers.
//   - Intrusive lists (sweep cursors): head[cell] chains satellites through
//     next/prev, so migrating a satellite between cells on a sweep step is
//     O(1) and allocation-free.
//
// Query results are identical under either layout: every query re-checks
// candidates with the exact predicate and resolves order via sorts or
// explicit id tie-breaks, so within-cell order is immaterial.
type visGrid struct {
	rows, cols       int
	latStep, lonStep float64 // degrees per cell
	start            []int32 // len rows*cols+1 prefix offsets into sats
	sats             []int32
	minR, maxR       float64 // satellite orbital radius bounds, km

	// List layout (non-nil head selects it): per-cell doubly-linked lists
	// over a fixed satellite arena, plus each satellite's current cell.
	head       []int32
	next, prev []int32
	cellOf     []int32
}

// visGridRows/Cols give 10 degree cells: 648 cells for the sphere, a few
// satellites per cell at Starlink Shell 1 density, and candidate windows of
// roughly a dozen cells per query.
const (
	visGridRows = 18
	visGridCols = 36
)

// visGridLazy builds the grid on first use; concurrent first callers share
// one build.
func (s *Snapshot) visGridLazy() *visGrid {
	s.gridOnce.Do(func() { s.grid = buildVisGrid(s) })
	return s.grid
}

func buildVisGrid(s *Snapshot) *visGrid {
	g := &visGrid{
		rows:    visGridRows,
		cols:    visGridCols,
		latStep: 180.0 / visGridRows,
		lonStep: 360.0 / visGridCols,
		minR:    math.Inf(1),
	}
	n := len(s.pos)
	cell := make([]int32, n)
	g.start = make([]int32, g.rows*g.cols+1)
	for i, p := range s.pos {
		r := p.Norm()
		if r < g.minR {
			g.minR = r
		}
		if r > g.maxR {
			g.maxR = r
		}
		pt := p.ToPoint()
		cell[i] = int32(g.cellIndex(pt.LatDeg, pt.LonDeg))
		g.start[cell[i]+1]++
	}
	for i := 1; i < len(g.start); i++ {
		g.start[i] += g.start[i-1]
	}
	g.sats = make([]int32, n)
	fill := make([]int32, g.rows*g.cols)
	for i := 0; i < n; i++ {
		c := cell[i]
		g.sats[g.start[c]+fill[c]] = int32(i)
		fill[c]++
	}
	return g
}

// cellIndex maps a sub-point to its cell, clamping the boundary cases
// (lat = 90, lon = 180) into the last row/column.
func (g *visGrid) cellIndex(latDeg, lonDeg float64) int {
	r := int((latDeg + 90) / g.latStep)
	if r < 0 {
		r = 0
	} else if r >= g.rows {
		r = g.rows - 1
	}
	c := int((lonDeg + 180) / g.lonStep)
	if c < 0 {
		c = 0
	} else if c >= g.cols {
		c = g.cols - 1
	}
	return r*g.cols + c
}

// maxCentralAngleRad returns the largest possible central angle between a
// ground point at radius rg and the sub-point of any satellite within
// maxSlant km. From the chord law d^2 = rg^2 + rs^2 - 2*rg*rs*cos(A), the
// bound must hold for every satellite radius rs in [minR, maxR]; cos(A) is
// minimized at the interval endpoints or at the interior critical point
// rs = sqrt(rg^2 - d^2).
func (g *visGrid) maxCentralAngleRad(rg, maxSlant float64) float64 {
	if g.maxR == 0 {
		return 0 // empty constellation
	}
	worst := 1.0
	eval := func(rs float64) {
		if c := (rg*rg + rs*rs - maxSlant*maxSlant) / (2 * rg * rs); c < worst {
			worst = c
		}
	}
	eval(g.minR)
	eval(g.maxR)
	if crit := math.Sqrt(math.Max(0, rg*rg-maxSlant*maxSlant)); crit > g.minR && crit < g.maxR {
		eval(crit)
	}
	if worst < -1 {
		worst = -1
	} else if worst > 1 {
		worst = 1
	}
	return math.Acos(worst)
}

// chordLowerBoundKm returns the smallest possible straight-line distance from
// a ground point at radius rg to any satellite whose central angle exceeds
// lamRad. Minimizing d^2(rs) = rg^2 + rs^2 - 2*rg*rs*cos(lam) over
// rs in [minR, maxR]: the critical point is rs = rg*cos(lam).
func (g *visGrid) chordLowerBoundKm(rg, lamRad float64) float64 {
	cosLam := math.Cos(lamRad)
	best := math.Inf(1)
	eval := func(rs float64) {
		if d2 := rg*rg + rs*rs - 2*rg*rs*cosLam; d2 < best {
			best = d2
		}
	}
	eval(g.minR)
	eval(g.maxR)
	if crit := rg * cosLam; crit > g.minR && crit < g.maxR {
		eval(crit)
	}
	return math.Sqrt(math.Max(0, best))
}

// forEachCandidate yields every satellite whose sub-point could lie within
// lamRad central angle of the ground point. The latitude band is exact; the
// per-row longitude half-width follows from the haversine identity
// hav(A) >= cos(lat1)*cos(lat2)*hav(dLon), taken conservatively over the
// row's latitude range (rows touching a pole widen to the full circle).
// Candidates are a superset — callers re-check each one exactly.
func (g *visGrid) forEachCandidate(latDeg, lonDeg, lamRad float64, yield func(int32)) {
	lamDeg := lamRad * 180 / math.Pi
	r0 := int(math.Floor((latDeg - lamDeg + 90) / g.latStep))
	if r0 < 0 {
		r0 = 0
	}
	r1 := int(math.Floor((latDeg + lamDeg + 90) / g.latStep))
	if r1 >= g.rows {
		r1 = g.rows - 1
	}
	cosG := math.Cos(latDeg * math.Pi / 180)
	sinHalf := math.Sin(lamRad / 2)
	c0 := int((lonDeg + 180) / g.lonStep)
	if c0 < 0 {
		c0 = 0
	} else if c0 >= g.cols {
		c0 = g.cols - 1
	}
	for r := r0; r <= r1; r++ {
		bandLo := -90 + float64(r)*g.latStep
		bandHi := bandLo + g.latStep
		minCos := math.Min(math.Cos(bandLo*math.Pi/180), math.Cos(bandHi*math.Pi/180))
		span := g.cols // cells on each side of c0; cols means the full circle
		if denom := cosG * minCos; denom > 1e-12 {
			if q := sinHalf / math.Sqrt(denom); q < 1 {
				dLonDeg := 2 * math.Asin(q) * 180 / math.Pi
				span = int(dLonDeg/g.lonStep) + 1
			}
		}
		if 2*span+1 >= g.cols {
			for c := 0; c < g.cols; c++ {
				g.yieldCell(r, c, yield)
			}
			continue
		}
		for dc := -span; dc <= span; dc++ {
			c := c0 + dc
			if c < 0 {
				c += g.cols
			} else if c >= g.cols {
				c -= g.cols
			}
			g.yieldCell(r, c, yield)
		}
	}
}

func (g *visGrid) yieldCell(r, c int, yield func(int32)) {
	idx := r*g.cols + c
	if g.head != nil {
		for id := g.head[idx]; id >= 0; id = g.next[id] {
			yield(id)
		}
		return
	}
	for _, id := range g.sats[g.start[idx]:g.start[idx+1]] {
		yield(id)
	}
}

// newSweepGrid allocates an empty list-layout grid over n satellites; the
// sweep cursor owns it and (re)fills it with rebuildLists.
func newSweepGrid(n int) *visGrid {
	return &visGrid{
		rows:    visGridRows,
		cols:    visGridCols,
		latStep: 180.0 / visGridRows,
		lonStep: 360.0 / visGridCols,
		head:    make([]int32, visGridRows*visGridCols),
		next:    make([]int32, n),
		prev:    make([]int32, n),
		cellOf:  make([]int32, n),
	}
}

// rebuildLists recomputes every satellite's cell from scratch — the sweep's
// reset path. The per-cell order is insertion order, which queries are
// insensitive to; the radius bounds are computed with exactly the fresh
// build's operation sequence so they match it bit for bit.
func (g *visGrid) rebuildLists(s *Snapshot) {
	for i := range g.head {
		g.head[i] = -1
	}
	g.minR, g.maxR = math.Inf(1), 0
	for i, p := range s.pos {
		r := p.Norm()
		if r < g.minR {
			g.minR = r
		}
		if r > g.maxR {
			g.maxR = r
		}
		pt := p.ToPoint()
		c := int32(g.cellIndex(pt.LatDeg, pt.LonDeg))
		g.cellOf[i] = c
		g.linkFront(int32(i), c)
	}
}

// advance refreshes the grid after the sweep moved the positions: satellites
// provably still inside their cell (the common case — one 15 s step moves a
// satellite about a tenth of a 10 degree cell) are untouched; boundary
// crossers are relocated by probing the eight neighbouring cells with the
// same multiplication-only test, and only the rare satellite that lands
// within the margin of a boundary (or jumped several cells in one AdvanceTo)
// pays the exact asin/atan2 recompute. The relink is O(1); the radius bounds
// are recomputed with the fresh build's operation sequence. Allocation-free.
func (g *visGrid) advance(s *Snapshot) {
	minR, maxR := math.Inf(1), 0.0
	for i, p := range s.pos {
		r := p.Norm()
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
		old := g.cellOf[i]
		// The stayer test is inCell inlined by hand: the compiler refuses the
		// full function, and one opaque call per satellite per step is the
		// single largest cost of an advance. Keep in lockstep with inCell.
		row := int(old) / visGridCols
		col := int(old) % visGridCols
		if p.Z >= r*cellBoundsTab.sinLo[row] && p.Z <= r*cellBoundsTab.sinHi[row] {
			m := cellBoundMargin * r
			if cellBoundsTab.cosB[col]*p.Y-cellBoundsTab.sinB[col]*p.X >= m &&
				cellBoundsTab.cosB[col+1]*p.Y-cellBoundsTab.sinB[col+1]*p.X <= -m {
				continue
			}
		}
		nc := g.neighborCell(old, p, r)
		if nc < 0 {
			pt := p.ToPoint()
			nc = int32(g.cellIndex(pt.LatDeg, pt.LonDeg))
		}
		if nc != old {
			g.unlink(int32(i), old)
			g.linkFront(int32(i), nc)
			g.cellOf[i] = nc
		}
	}
	g.minR, g.maxR = minR, maxR
}

// neighborCellOffsets orders the probe around an abandoned cell: latitude
// neighbours first (orbital motion is mostly meridional away from the
// inclination turnaround), then longitude, then diagonals.
var neighborCellOffsets = [8][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}, {1, -1}, {-1, 1}, {-1, -1}}

// neighborCell locates a boundary-crossing satellite's new cell without
// trigonometry: one sweep step moves a satellite a fraction of a cell, so the
// destination is almost always one of the eight neighbours, and the same
// margin-shrunk inCell test that cleared the stayers proves membership — a
// true result implies the exact cellIndex recompute would agree (cells are
// disjoint, so at most one can test true). Returns -1 when no neighbour
// strictly contains the point (large AdvanceTo jumps, or a sub-point within
// the margin of a boundary); the caller then falls back to the exact
// asin/atan2 recompute.
func (g *visGrid) neighborCell(old int32, p geo.Vec3, r float64) int32 {
	row := int(old) / visGridCols
	col := int(old) % visGridCols
	for _, d := range neighborCellOffsets {
		nr := row + d[0]
		if nr < 0 || nr >= visGridRows {
			continue // latitude rows do not wrap
		}
		nc := col + d[1]
		if nc < 0 {
			nc += visGridCols
		} else if nc >= visGridCols {
			nc -= visGridCols
		}
		if idx := int32(nr*visGridCols + nc); g.inCell(idx, p, r) {
			return idx
		}
	}
	return -1
}

func (g *visGrid) linkFront(i, cell int32) {
	g.next[i] = g.head[cell]
	g.prev[i] = -1
	if g.head[cell] >= 0 {
		g.prev[g.head[cell]] = i
	}
	g.head[cell] = i
}

func (g *visGrid) unlink(i, cell int32) {
	if g.prev[i] >= 0 {
		g.next[g.prev[i]] = g.next[i]
	} else {
		g.head[cell] = g.next[i]
	}
	if g.next[i] >= 0 {
		g.prev[g.next[i]] = g.prev[i]
	}
}

// cellBoundMargin is the safety margin (radians-scale) of the in-cell fast
// test. A satellite within the margin of any cell boundary falls back to the
// exact asin/atan2 recompute, so the fast test can never disagree with
// cellIndex: sin is 1-Lipschitz in latitude and the longitude test measures
// the sine of the angle to the boundary meridian, so passing the shrunk
// bounds proves the sub-point lies strictly inside the cell by at least the
// margin — about six orders of magnitude beyond double rounding error.
const cellBoundMargin = 1e-9

// cellBoundsTab precomputes the boundary geometry of the fixed grid: per-row
// sin(latitude) band bounds (margin-shrunk) and the unit direction of each
// column boundary meridian.
var cellBoundsTab = func() (t struct {
	sinLo, sinHi [visGridRows]float64
	cosB, sinB   [visGridCols + 1]float64
}) {
	latStep := 180.0 / visGridRows
	for r := 0; r < visGridRows; r++ {
		lo := (-90 + float64(r)*latStep) * math.Pi / 180
		hi := (-90 + float64(r+1)*latStep) * math.Pi / 180
		t.sinLo[r] = math.Sin(lo) + cellBoundMargin
		t.sinHi[r] = math.Sin(hi) - cellBoundMargin
	}
	lonStep := 360.0 / visGridCols
	for c := 0; c <= visGridCols; c++ {
		a := (-180 + float64(c)*lonStep) * math.Pi / 180
		t.cosB[c], t.sinB[c] = math.Cos(a), math.Sin(a)
	}
	return t
}()

// inCell reports whether the position (with norm r) provably maps to cell
// idx under cellIndex, using only multiplications: the latitude band becomes
// a z-range, and longitude containment becomes two cross products against
// the boundary meridians (cosB*y - sinB*x = rho*sin(lon-alpha), positive
// within 180 degrees east of the boundary; for a cell narrower than 180
// degrees the two half-plane tests intersect in exactly the cell's wedge).
// False only forces the exact recompute, so false negatives are harmless.
func (g *visGrid) inCell(idx int32, p geo.Vec3, r float64) bool {
	// The fixed compile-time dimensions let the row/col split compile to a
	// multiply-shift instead of an integer division — this runs once per
	// satellite per sweep step.
	row := int(idx) / visGridCols
	col := int(idx) % visGridCols
	if p.Z < r*cellBoundsTab.sinLo[row] || p.Z > r*cellBoundsTab.sinHi[row] {
		return false
	}
	m := cellBoundMargin * r
	if cellBoundsTab.cosB[col]*p.Y-cellBoundsTab.sinB[col]*p.X < m {
		return false
	}
	if cellBoundsTab.cosB[col+1]*p.Y-cellBoundsTab.sinB[col+1]*p.X > -m {
		return false
	}
	return true
}

// visible implements Snapshot.Visible. Candidates are collected, restored to
// ascending id order (the full scan's iteration order), filtered with the
// exact predicate, and sorted with the same comparator — so the output slice
// is element-for-element identical to VisibleScan's.
func (g *visGrid) visible(s *Snapshot, ground geo.Point) []VisibleSat {
	gv := ground.ToECEF()
	maxSlant := geo.SlantRangeKm(s.c.cfg.Walker.AltitudeKm, s.c.cfg.MinElevationDeg)
	lam := g.maxCentralAngleRad(gv.Norm(), maxSlant)
	var cand []int32
	g.forEachCandidate(ground.LatDeg, ground.LonDeg, lam, func(id int32) {
		cand = append(cand, id)
	})
	sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })
	var out []VisibleSat
	for _, id := range cand {
		p := s.pos[id]
		d := p.Sub(gv).Norm()
		if d > maxSlant {
			continue
		}
		el := geo.ElevationDeg(gv, p)
		if el >= s.c.cfg.MinElevationDeg {
			out = append(out, VisibleSat{ID: SatID(id), ElevationDeg: el, SlantKm: d})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ElevationDeg > out[j].ElevationDeg })
	return out
}

// bestVisible implements Snapshot.BestVisible without allocating: it tracks
// the running best over the candidate cells instead of materializing and
// sorting the visible set. Strictly higher elevation wins; exact elevation
// ties (measure zero for real geometry) break toward the lower id.
func (g *visGrid) bestVisible(s *Snapshot, ground geo.Point) (VisibleSat, bool) {
	gv := ground.ToECEF()
	maxSlant := geo.SlantRangeKm(s.c.cfg.Walker.AltitudeKm, s.c.cfg.MinElevationDeg)
	lam := g.maxCentralAngleRad(gv.Norm(), maxSlant)
	best := VisibleSat{ID: -1}
	g.forEachCandidate(ground.LatDeg, ground.LonDeg, lam, func(id int32) {
		p := s.pos[id]
		d := p.Sub(gv).Norm()
		if d > maxSlant {
			return
		}
		el := geo.ElevationDeg(gv, p)
		if el < s.c.cfg.MinElevationDeg {
			return
		}
		if best.ID < 0 || el > best.ElevationDeg || (el == best.ElevationDeg && SatID(id) < best.ID) {
			best = VisibleSat{ID: SatID(id), ElevationDeg: el, SlantKm: d}
		}
	})
	if best.ID < 0 {
		return VisibleSat{}, false
	}
	return best, true
}

// nearest implements Snapshot.Nearest: an expanding angular window around the
// ground point. The search stops once the best candidate's chord distance is
// provably smaller than anything outside the window; a strict-less comparison
// with lower-id tie-break reproduces the full scan's first-minimum choice.
func (g *visGrid) nearest(s *Snapshot, ground geo.Point) VisibleSat {
	gv := ground.ToECEF()
	rg := gv.Norm()
	lam := 1.5 * g.latStep * math.Pi / 180
	for {
		bestID := int32(-1)
		bestD := math.Inf(1)
		g.forEachCandidate(ground.LatDeg, ground.LonDeg, lam, func(id int32) {
			d := s.pos[id].Sub(gv).Norm()
			if d < bestD || (d == bestD && id < bestID) {
				bestID, bestD = id, d
			}
		})
		if bestID >= 0 && bestD <= g.chordLowerBoundKm(rg, lam) {
			return VisibleSat{ID: SatID(bestID), SlantKm: bestD, ElevationDeg: geo.ElevationDeg(gv, s.pos[bestID])}
		}
		if lam >= math.Pi { // whole sphere scanned
			if bestID < 0 {
				return VisibleSat{ID: -1, SlantKm: math.Inf(1)}
			}
			return VisibleSat{ID: SatID(bestID), SlantKm: bestD, ElevationDeg: geo.ElevationDeg(gv, s.pos[bestID])}
		}
		lam *= 2
	}
}
