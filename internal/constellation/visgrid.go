package constellation

import (
	"math"
	"sort"

	"spacecdn/internal/geo"
)

// visGrid is a lat/lon cell index over the snapshot's satellite sub-points.
// Ground visibility queries used to scan every satellite; the coverage cone
// of a ~550 km satellite above a 25 degree mask spans under ten degrees of
// central angle, so only a handful of grid cells can hold visible
// satellites. The grid maps a ground point to those cells with conservative
// spherical bounds and re-checks each candidate with the exact
// slant/elevation predicate, so query results are identical to the full scan.
//
// The grid has two layouts sharing one query path:
//
//   - Counting sort (fresh snapshots): cell (r, c) owns
//     sats[start[r*cols+c] : start[r*cols+c+1]], ids ascending within a
//     cell. Immutable after build and shared by concurrent readers.
//   - Intrusive lists (sweep cursors): head[cell] chains satellites through
//     next/prev, so migrating a satellite between cells on a sweep step is
//     O(1) and allocation-free.
//
// Query results are identical under either layout: every query re-checks
// candidates with the exact predicate and resolves order via sorts or
// explicit id tie-breaks, so within-cell order is immaterial.
type visGrid struct {
	geom       *gridGeom // shared per-constellation cell geometry
	start      []int32   // len rows*cols+1 prefix offsets into sats
	sats       []int32
	minR, maxR float64 // satellite orbital radius bounds, km

	// List layout (non-nil head selects it): per-cell doubly-linked lists
	// over a fixed satellite arena, plus each satellite's current cell as a
	// (row, col) pair — split so the sweep's hot stayer test never divides
	// by the runtime column count.
	head         []int32
	next, prev   []int32
	rowOf, colOf []int32
}

// visGridMinRows/visGridCellOccupancy size the grid to the constellation.
// The resolution rule rows = max(18, ceil(sqrt(N/8))), cols = 2*rows keeps
// the expected satellites per cell bounded (~8 at the equator, fewer toward
// the poles) as N grows: cells shrink like 1/sqrt(N), so candidate windows
// stay a few dozen satellites at any scale. N = 1,584 (Starlink Shell 1)
// sits below the breakpoint and keeps the original 18x36 grid of 10 degree
// cells.
const (
	visGridMinRows       = 18
	visGridCellOccupancy = 8
)

// gridGeom is the cell geometry of a constellation's visibility grids,
// computed once per constellation and shared by every fresh-snapshot grid
// and pooled sweep grid: cell steps, the merged polar caps, and the
// margin-shrunk boundary tables of the in-cell fast test.
//
// Polar caps: rows poleward of roughly +-70 degrees latitude merge all
// longitude columns into the row's column-0 cell. An inclined shell
// concentrates sub-points near its inclination turnaround, and longitude
// converges at the poles — a polar row's cells all neighbour each other, so
// the per-column pre-filter degenerates into a whole-band scan anyway.
// Merging makes that explicit: one cell per cap row, one yield per query,
// and a z-band-only membership test.
type gridGeom struct {
	rows, cols       int
	latStep, lonStep float64 // degrees per cell
	capRows          int     // rows at each pole merged into one cell per row

	sinLo, sinHi []float64 // per-row sin(latitude) band bounds, margin-shrunk
	cosB, sinB   []float64 // unit direction of each column boundary meridian
}

// newGridGeom builds the geometry for an n-satellite constellation.
func newGridGeom(n int) *gridGeom {
	rows := visGridMinRows
	if r := int(math.Ceil(math.Sqrt(float64(n) / visGridCellOccupancy))); r > rows {
		rows = r
	}
	cols := 2 * rows
	gm := &gridGeom{
		rows:    rows,
		cols:    cols,
		latStep: 180.0 / float64(rows),
		lonStep: 360.0 / float64(cols),
		// rows/9 caps the ~20 degrees nearest each pole at any resolution
		// (2 rows of the 18-row grid, 4 of a 37-row grid).
		capRows: rows / 9,
		sinLo:   make([]float64, rows),
		sinHi:   make([]float64, rows),
		cosB:    make([]float64, cols+1),
		sinB:    make([]float64, cols+1),
	}
	for r := 0; r < rows; r++ {
		lo := (-90 + float64(r)*gm.latStep) * math.Pi / 180
		hi := (-90 + float64(r+1)*gm.latStep) * math.Pi / 180
		gm.sinLo[r] = math.Sin(lo) + cellBoundMargin
		gm.sinHi[r] = math.Sin(hi) - cellBoundMargin
	}
	for c := 0; c <= cols; c++ {
		a := (-180 + float64(c)*gm.lonStep) * math.Pi / 180
		gm.cosB[c], gm.sinB[c] = math.Cos(a), math.Sin(a)
	}
	return gm
}

// capRow reports whether row r belongs to a merged polar cap.
func (gm *gridGeom) capRow(r int) bool {
	return r < gm.capRows || r >= gm.rows-gm.capRows
}

// cellRC maps a sub-point to its (row, col) cell, clamping the boundary
// cases (lat = 90, lon = 180) into the last row/column. Cap rows map every
// longitude to column 0 — the row's single merged cell.
func (gm *gridGeom) cellRC(latDeg, lonDeg float64) (int, int) {
	r := int((latDeg + 90) / gm.latStep)
	if r < 0 {
		r = 0
	} else if r >= gm.rows {
		r = gm.rows - 1
	}
	if gm.capRow(r) {
		return r, 0
	}
	c := int((lonDeg + 180) / gm.lonStep)
	if c < 0 {
		c = 0
	} else if c >= gm.cols {
		c = gm.cols - 1
	}
	return r, c
}

// cellIndex is cellRC flattened into the grid's cell array.
func (gm *gridGeom) cellIndex(latDeg, lonDeg float64) int {
	r, c := gm.cellRC(latDeg, lonDeg)
	return r*gm.cols + c
}

// visGridLazy builds the grid on first use; concurrent first callers share
// one build.
func (s *Snapshot) visGridLazy() *visGrid {
	s.gridOnce.Do(func() { s.grid = buildVisGrid(s) })
	return s.grid
}

func buildVisGrid(s *Snapshot) *visGrid {
	gm := s.c.geom
	g := &visGrid{geom: gm, minR: math.Inf(1)}
	n := len(s.pos)
	cell := make([]int32, n)
	g.start = make([]int32, gm.rows*gm.cols+1)
	for i, p := range s.pos {
		r := p.Norm()
		if r < g.minR {
			g.minR = r
		}
		if r > g.maxR {
			g.maxR = r
		}
		pt := p.ToPoint()
		cell[i] = int32(gm.cellIndex(pt.LatDeg, pt.LonDeg))
		g.start[cell[i]+1]++
	}
	for i := 1; i < len(g.start); i++ {
		g.start[i] += g.start[i-1]
	}
	g.sats = make([]int32, n)
	fill := make([]int32, gm.rows*gm.cols)
	for i := 0; i < n; i++ {
		c := cell[i]
		g.sats[g.start[c]+fill[c]] = int32(i)
		fill[c]++
	}
	return g
}

// maxCentralAngleRad returns the largest possible central angle between a
// ground point at radius rg and the sub-point of any satellite within
// maxSlant km. From the chord law d^2 = rg^2 + rs^2 - 2*rg*rs*cos(A), the
// bound must hold for every satellite radius rs in [minR, maxR]; cos(A) is
// minimized at the interval endpoints or at the interior critical point
// rs = sqrt(rg^2 - d^2).
func (g *visGrid) maxCentralAngleRad(rg, maxSlant float64) float64 {
	if g.maxR == 0 {
		return 0 // empty constellation
	}
	worst := 1.0
	eval := func(rs float64) {
		if c := (rg*rg + rs*rs - maxSlant*maxSlant) / (2 * rg * rs); c < worst {
			worst = c
		}
	}
	eval(g.minR)
	eval(g.maxR)
	if crit := math.Sqrt(math.Max(0, rg*rg-maxSlant*maxSlant)); crit > g.minR && crit < g.maxR {
		eval(crit)
	}
	if worst < -1 {
		worst = -1
	} else if worst > 1 {
		worst = 1
	}
	return math.Acos(worst)
}

// chordLowerBoundKm returns the smallest possible straight-line distance from
// a ground point at radius rg to any satellite whose central angle exceeds
// lamRad. Minimizing d^2(rs) = rg^2 + rs^2 - 2*rg*rs*cos(lam) over
// rs in [minR, maxR]: the critical point is rs = rg*cos(lam).
func (g *visGrid) chordLowerBoundKm(rg, lamRad float64) float64 {
	cosLam := math.Cos(lamRad)
	best := math.Inf(1)
	eval := func(rs float64) {
		if d2 := rg*rg + rs*rs - 2*rg*rs*cosLam; d2 < best {
			best = d2
		}
	}
	eval(g.minR)
	eval(g.maxR)
	if crit := rg * cosLam; crit > g.minR && crit < g.maxR {
		eval(crit)
	}
	return math.Sqrt(math.Max(0, best))
}

// forEachCandidate yields every satellite whose sub-point could lie within
// lamRad central angle of the ground point. The latitude band is exact; the
// per-row longitude half-width follows from the haversine identity
// hav(A) >= cos(lat1)*cos(lat2)*hav(dLon), taken conservatively over the
// row's latitude range (rows touching a pole widen to the full circle). A
// cap row holds its whole band in one merged cell, yielded once.
// Candidates are a superset — callers re-check each one exactly.
func (g *visGrid) forEachCandidate(latDeg, lonDeg, lamRad float64, yield func(int32)) {
	gm := g.geom
	lamDeg := lamRad * 180 / math.Pi
	r0 := int(math.Floor((latDeg - lamDeg + 90) / gm.latStep))
	if r0 < 0 {
		r0 = 0
	}
	r1 := int(math.Floor((latDeg + lamDeg + 90) / gm.latStep))
	if r1 >= gm.rows {
		r1 = gm.rows - 1
	}
	cosG := math.Cos(latDeg * math.Pi / 180)
	sinHalf := math.Sin(lamRad / 2)
	c0 := int((lonDeg + 180) / gm.lonStep)
	if c0 < 0 {
		c0 = 0
	} else if c0 >= gm.cols {
		c0 = gm.cols - 1
	}
	for r := r0; r <= r1; r++ {
		if gm.capRow(r) {
			g.yieldCell(r, 0, yield)
			continue
		}
		bandLo := -90 + float64(r)*gm.latStep
		bandHi := bandLo + gm.latStep
		minCos := math.Min(math.Cos(bandLo*math.Pi/180), math.Cos(bandHi*math.Pi/180))
		span := gm.cols // cells on each side of c0; cols means the full circle
		if denom := cosG * minCos; denom > 1e-12 {
			if q := sinHalf / math.Sqrt(denom); q < 1 {
				dLonDeg := 2 * math.Asin(q) * 180 / math.Pi
				span = int(dLonDeg/gm.lonStep) + 1
			}
		}
		if 2*span+1 >= gm.cols {
			for c := 0; c < gm.cols; c++ {
				g.yieldCell(r, c, yield)
			}
			continue
		}
		for dc := -span; dc <= span; dc++ {
			c := c0 + dc
			if c < 0 {
				c += gm.cols
			} else if c >= gm.cols {
				c -= gm.cols
			}
			g.yieldCell(r, c, yield)
		}
	}
}

func (g *visGrid) yieldCell(r, c int, yield func(int32)) {
	idx := r*g.geom.cols + c
	if g.head != nil {
		for id := g.head[idx]; id >= 0; id = g.next[id] {
			yield(id)
		}
		return
	}
	for _, id := range g.sats[g.start[idx]:g.start[idx+1]] {
		yield(id)
	}
}

// newSweepGrid allocates an empty list-layout grid over the constellation's
// satellites; the sweep cursor owns it and (re)fills it with rebuildLists.
func newSweepGrid(c *Constellation) *visGrid {
	gm := c.geom
	n := c.Total()
	return &visGrid{
		geom:  gm,
		head:  make([]int32, gm.rows*gm.cols),
		next:  make([]int32, n),
		prev:  make([]int32, n),
		rowOf: make([]int32, n),
		colOf: make([]int32, n),
	}
}

// rebuildLists recomputes every satellite's cell from scratch — the sweep's
// reset path. The per-cell order is insertion order, which queries are
// insensitive to; the radius bounds are computed with exactly the fresh
// build's operation sequence so they match it bit for bit.
func (g *visGrid) rebuildLists(s *Snapshot) {
	gm := g.geom
	for i := range g.head {
		g.head[i] = -1
	}
	g.minR, g.maxR = math.Inf(1), 0
	for i, p := range s.pos {
		r := p.Norm()
		if r < g.minR {
			g.minR = r
		}
		if r > g.maxR {
			g.maxR = r
		}
		pt := p.ToPoint()
		row, col := gm.cellRC(pt.LatDeg, pt.LonDeg)
		g.rowOf[i], g.colOf[i] = int32(row), int32(col)
		g.linkFront(int32(i), int32(row*gm.cols+col))
	}
}

// advance refreshes the grid after the sweep moved the positions: satellites
// provably still inside their cell (the common case — one 15 s step moves a
// satellite about a tenth of a 10 degree cell) are untouched; boundary
// crossers are relocated by probing the eight neighbouring cells with the
// same multiplication-only test, and only the rare satellite that lands
// within the margin of a boundary (or jumped several cells in one AdvanceTo)
// pays the exact asin/atan2 recompute. The relink is O(1); the radius bounds
// are recomputed with the fresh build's operation sequence. Allocation-free.
func (g *visGrid) advance(s *Snapshot) {
	gm := g.geom
	minR, maxR := math.Inf(1), 0.0
	for i, p := range s.pos {
		r := p.Norm()
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
		row := int(g.rowOf[i])
		col := int(g.colOf[i])
		// The stayer test is inCellRC inlined by hand: the compiler refuses
		// the full function, and one opaque call per satellite per step is
		// the single largest cost of an advance. Keep in lockstep with
		// inCellRC. A cap cell spans every longitude, so its test is the
		// z-band alone.
		if p.Z >= r*gm.sinLo[row] && p.Z <= r*gm.sinHi[row] {
			if gm.capRow(row) {
				continue
			}
			m := cellBoundMargin * r
			if gm.cosB[col]*p.Y-gm.sinB[col]*p.X >= m &&
				gm.cosB[col+1]*p.Y-gm.sinB[col+1]*p.X <= -m {
				continue
			}
		}
		nr, nc := g.neighborCell(row, col, p, r)
		if nr < 0 {
			pt := p.ToPoint()
			nr, nc = gm.cellRC(pt.LatDeg, pt.LonDeg)
		}
		if nr != row || nc != col {
			g.unlink(int32(i), int32(row*gm.cols+col))
			g.linkFront(int32(i), int32(nr*gm.cols+nc))
			g.rowOf[i], g.colOf[i] = int32(nr), int32(nc)
		}
	}
	g.minR, g.maxR = minR, maxR
}

// neighborCellOffsets orders the probe around an abandoned cell: latitude
// neighbours first (orbital motion is mostly meridional away from the
// inclination turnaround), then longitude, then diagonals.
var neighborCellOffsets = [8][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}, {1, 1}, {1, -1}, {-1, 1}, {-1, -1}}

// neighborCell locates a boundary-crossing satellite's new cell without
// trigonometry: one sweep step moves a satellite a fraction of a cell, so the
// destination is almost always one of the eight neighbours, and the same
// margin-shrunk inCellRC test that cleared the stayers proves membership — a
// true result implies the exact cellRC recompute would agree (cells are
// disjoint, so at most one can test true). A neighbour row inside a polar
// cap collapses to the row's merged cell. Returns row -1 when no neighbour
// strictly contains the point (large AdvanceTo jumps, or a sub-point within
// the margin of a boundary); the caller then falls back to the exact
// asin/atan2 recompute.
func (g *visGrid) neighborCell(row, col int, p geo.Vec3, r float64) (int, int) {
	gm := g.geom
	for _, d := range neighborCellOffsets {
		nr := row + d[0]
		if nr < 0 || nr >= gm.rows {
			continue // latitude rows do not wrap
		}
		nc := col + d[1]
		if nc < 0 {
			nc += gm.cols
		} else if nc >= gm.cols {
			nc -= gm.cols
		}
		if gm.capRow(nr) {
			nc = 0
		}
		if gm.inCellRC(nr, nc, p, r) {
			return nr, nc
		}
	}
	return -1, -1
}

func (g *visGrid) linkFront(i, cell int32) {
	g.next[i] = g.head[cell]
	g.prev[i] = -1
	if g.head[cell] >= 0 {
		g.prev[g.head[cell]] = i
	}
	g.head[cell] = i
}

func (g *visGrid) unlink(i, cell int32) {
	if g.prev[i] >= 0 {
		g.next[g.prev[i]] = g.next[i]
	} else {
		g.head[cell] = g.next[i]
	}
	if g.next[i] >= 0 {
		g.prev[g.next[i]] = g.prev[i]
	}
}

// cellBoundMargin is the safety margin (radians-scale) of the in-cell fast
// test. A satellite within the margin of any cell boundary falls back to the
// exact asin/atan2 recompute, so the fast test can never disagree with
// cellRC: sin is 1-Lipschitz in latitude and the longitude test measures
// the sine of the angle to the boundary meridian, so passing the shrunk
// bounds proves the sub-point lies strictly inside the cell by at least the
// margin — about six orders of magnitude beyond double rounding error.
const cellBoundMargin = 1e-9

// inCellRC reports whether the position (with norm r) provably maps to cell
// (row, col) under cellRC, using only multiplications: the latitude band
// becomes a z-range, and longitude containment becomes two cross products
// against the boundary meridians (cosB*y - sinB*x = rho*sin(lon-alpha),
// positive within 180 degrees east of the boundary; for a cell narrower than
// 180 degrees the two half-plane tests intersect in exactly the cell's
// wedge). A merged cap cell owns its entire latitude band, so the z-range is
// the whole test. False only forces the exact recompute, so false negatives
// are harmless.
func (gm *gridGeom) inCellRC(row, col int, p geo.Vec3, r float64) bool {
	if p.Z < r*gm.sinLo[row] || p.Z > r*gm.sinHi[row] {
		return false
	}
	if gm.capRow(row) {
		return true
	}
	m := cellBoundMargin * r
	if gm.cosB[col]*p.Y-gm.sinB[col]*p.X < m {
		return false
	}
	if gm.cosB[col+1]*p.Y-gm.sinB[col+1]*p.X > -m {
		return false
	}
	return true
}

// visible implements Snapshot.Visible. Candidates are collected, restored to
// ascending id order (the full scan's iteration order), filtered with the
// exact predicate, and sorted with the same comparator — so the output slice
// is element-for-element identical to VisibleScan's.
func (g *visGrid) visible(s *Snapshot, ground geo.Point) []VisibleSat {
	gv := ground.ToECEF()
	maxSlant := s.c.maxSlantKm
	lam := g.maxCentralAngleRad(gv.Norm(), maxSlant)
	var cand []int32
	g.forEachCandidate(ground.LatDeg, ground.LonDeg, lam, func(id int32) {
		cand = append(cand, id)
	})
	sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })
	var out []VisibleSat
	for _, id := range cand {
		p := s.pos[id]
		d := p.Sub(gv).Norm()
		if d > maxSlant {
			continue
		}
		el := geo.ElevationDeg(gv, p)
		if el >= s.c.cfg.MinElevationDeg {
			out = append(out, VisibleSat{ID: SatID(id), ElevationDeg: el, SlantKm: d})
		}
	}
	sortByElevation(out)
	return out
}

// bestVisible implements Snapshot.BestVisible without allocating: it tracks
// the running best over the candidate cells instead of materializing and
// sorting the visible set. Strictly higher elevation wins; exact elevation
// ties (measure zero for real geometry) break toward the lower id.
func (g *visGrid) bestVisible(s *Snapshot, ground geo.Point) (VisibleSat, bool) {
	gv := ground.ToECEF()
	maxSlant := s.c.maxSlantKm
	lam := g.maxCentralAngleRad(gv.Norm(), maxSlant)
	best := VisibleSat{ID: -1}
	g.forEachCandidate(ground.LatDeg, ground.LonDeg, lam, func(id int32) {
		p := s.pos[id]
		d := p.Sub(gv).Norm()
		if d > maxSlant {
			return
		}
		el := geo.ElevationDeg(gv, p)
		if el < s.c.cfg.MinElevationDeg {
			return
		}
		if best.ID < 0 || el > best.ElevationDeg || (el == best.ElevationDeg && SatID(id) < best.ID) {
			best = VisibleSat{ID: SatID(id), ElevationDeg: el, SlantKm: d}
		}
	})
	if best.ID < 0 {
		return VisibleSat{}, false
	}
	return best, true
}

// nearest implements Snapshot.Nearest: an expanding angular window around the
// ground point. The search stops once the best candidate's chord distance is
// provably smaller than anything outside the window; a strict-less comparison
// with lower-id tie-break reproduces the full scan's first-minimum choice.
func (g *visGrid) nearest(s *Snapshot, ground geo.Point) VisibleSat {
	gv := ground.ToECEF()
	rg := gv.Norm()
	lam := 1.5 * g.geom.latStep * math.Pi / 180
	for {
		bestID := int32(-1)
		bestD := math.Inf(1)
		g.forEachCandidate(ground.LatDeg, ground.LonDeg, lam, func(id int32) {
			d := s.pos[id].Sub(gv).Norm()
			if d < bestD || (d == bestD && id < bestID) {
				bestID, bestD = id, d
			}
		})
		if bestID >= 0 && bestD <= g.chordLowerBoundKm(rg, lam) {
			return VisibleSat{ID: SatID(bestID), SlantKm: bestD, ElevationDeg: geo.ElevationDeg(gv, s.pos[bestID])}
		}
		if lam >= math.Pi { // whole sphere scanned
			if bestID < 0 {
				return VisibleSat{ID: -1, SlantKm: math.Inf(1)}
			}
			return VisibleSat{ID: SatID(bestID), SlantKm: bestD, ElevationDeg: geo.ElevationDeg(gv, s.pos[bestID])}
		}
		lam *= 2
	}
}
