// Package content models what CDNs deliver: object catalogs with Zipf
// popularity, per-region popularity skews (the paper's geographically
// popular content — "a Boca Juniors vs River Plate game is popular mostly
// over South America"), DASH-style video objects split into segments, and
// deterministic request generators.
package content

import (
	"fmt"
	"math"
	"sort"
	"time"

	"spacecdn/internal/geo"
	"spacecdn/internal/stats"
)

// ID identifies a content object.
type ID string

// Class partitions the catalog by content lifecycle: how long an object
// stays fresh and how it is revalidated. The zero value is ClassStatic —
// immutable content — so catalogs generated before classes existed keep
// their semantics unchanged.
type Class int

// Content classes, ordered roughly by TTL (longest first). numClasses must
// stay last; the name table is sized by it.
const (
	// ClassStatic is immutable content (software downloads, media files,
	// versioned web assets): effectively infinite TTL.
	ClassStatic Class = iota
	// ClassNews is breaking-news style content: minutes-scale TTL with a
	// stale-while-revalidate grace.
	ClassNews
	// ClassLiveSegment is a live-video segment: seconds-scale TTL, no grace
	// worth serving once the next segment exists.
	ClassLiveSegment
	// ClassAPI is a dynamic API response: short TTL, short grace.
	ClassAPI

	numClasses // keep last
)

var classNames = [numClasses]string{
	ClassStatic:      "static",
	ClassNews:        "news",
	ClassLiveSegment: "live-segment",
	ClassAPI:         "api",
}

func (c Class) String() string {
	if c < 0 || c >= numClasses {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// NumClasses returns the number of defined content classes.
func NumClasses() int { return int(numClasses) }

// Classes lists every defined class, for exhaustive iteration.
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// Object is a cacheable content object.
type Object struct {
	ID     ID
	Bytes  int64
	Region geo.Region // home region whose users favour this object
	Video  bool
	Class  Class // lifecycle class; zero value = static (immutable)
}

// Catalog is an immutable set of objects with popularity structure.
type Catalog struct {
	objects []Object
	index   map[ID]int
	// rankByRegion[r][i] is the index (into objects) of the i-th most
	// popular object for region r.
	rankByRegion map[geo.Region][]int
	zipfS        float64
	weights      []float64 // zipf weight by rank position
	cumWeights   []float64
}

// CatalogConfig controls synthetic catalog generation.
type CatalogConfig struct {
	Objects int
	// MeanObjectBytes is the mean size of a non-video object (web assets:
	// pages, images, scripts). Sizes are lognormal around this.
	MeanObjectBytes int64
	// VideoFraction of objects are long videos with VideoBytes size.
	VideoFraction float64
	VideoBytes    int64
	// ZipfS is the Zipf exponent for popularity (typical CDN: 0.8-1.2).
	ZipfS float64
	// RegionBoost is how strongly an object's home region prefers it: the
	// object's rank in its home region improves by roughly this factor.
	RegionBoost float64
	Seed        int64
	// ClassMix assigns lifecycle classes: fractions of the catalog that are
	// news, live segments, and API responses; the remainder stays static.
	// All-zero (the default) skips class assignment entirely, leaving every
	// object static and the catalog bit-identical to a pre-lifecycle one.
	NewsFraction float64
	LiveFraction float64
	APIFraction  float64
}

// classSeedSalt decorrelates the class-assignment stream from the main
// catalog stream. Classes are drawn in a second pass from an independent
// rng so enabling a class mix cannot shift the region/size/video draws of
// the existing seeded catalogs (which eq-gated benchmarks depend on).
const classSeedSalt = 0x1f5ec1a55

// DefaultCatalogConfig returns a web-plus-video mix of 10k objects.
func DefaultCatalogConfig() CatalogConfig {
	return CatalogConfig{
		Objects:         10000,
		MeanObjectBytes: 256 << 10, // 256 KiB
		VideoFraction:   0.05,
		VideoBytes:      4 << 30, // 2h 1080p at ~4.5 Mbps
		ZipfS:           0.9,
		RegionBoost:     8,
		Seed:            1,
	}
}

// GenerateCatalog builds a deterministic synthetic catalog.
func GenerateCatalog(cfg CatalogConfig) (*Catalog, error) {
	if cfg.Objects <= 0 {
		return nil, fmt.Errorf("content: need positive object count, got %d", cfg.Objects)
	}
	if cfg.ZipfS <= 0 {
		return nil, fmt.Errorf("content: zipf exponent must be positive, got %v", cfg.ZipfS)
	}
	rng := stats.NewRand(cfg.Seed)
	regions := geo.Regions()
	objs := make([]Object, cfg.Objects)
	for i := range objs {
		region := regions[rng.Intn(len(regions))]
		video := rng.Bool(cfg.VideoFraction)
		size := int64(rng.LogNormal(0, 0.8) * float64(cfg.MeanObjectBytes))
		if size < 1024 {
			size = 1024
		}
		if video {
			size = cfg.VideoBytes
		}
		objs[i] = Object{
			ID:     ID(fmt.Sprintf("obj-%05d", i)),
			Bytes:  size,
			Region: region,
			Video:  video,
		}
	}
	if cfg.NewsFraction < 0 || cfg.LiveFraction < 0 || cfg.APIFraction < 0 ||
		cfg.NewsFraction+cfg.LiveFraction+cfg.APIFraction > 1 {
		return nil, fmt.Errorf("content: class mix fractions must be non-negative and sum to at most 1")
	}
	if cfg.NewsFraction+cfg.LiveFraction+cfg.APIFraction > 0 {
		crng := stats.NewRand(cfg.Seed ^ classSeedSalt)
		for i := range objs {
			u := crng.Float64()
			switch {
			case u < cfg.NewsFraction:
				objs[i].Class = ClassNews
			case u < cfg.NewsFraction+cfg.LiveFraction:
				objs[i].Class = ClassLiveSegment
			case u < cfg.NewsFraction+cfg.LiveFraction+cfg.APIFraction:
				objs[i].Class = ClassAPI
			}
		}
	}
	c := &Catalog{
		objects:      objs,
		index:        make(map[ID]int, len(objs)),
		rankByRegion: make(map[geo.Region][]int, len(regions)),
		zipfS:        cfg.ZipfS,
	}
	for i, o := range objs {
		c.index[o.ID] = i
	}
	// Global base rank = catalog order. Regional rank: home-region objects
	// move up by RegionBoost (deterministic score re-sort).
	for _, r := range regions {
		idx := make([]int, len(objs))
		for i := range idx {
			idx[i] = i
		}
		boost := cfg.RegionBoost
		if boost < 1 {
			boost = 1
		}
		sort.SliceStable(idx, func(a, b int) bool {
			sa := float64(idx[a]) // lower = more popular
			sb := float64(idx[b])
			if objs[idx[a]].Region == r {
				sa /= boost
			}
			if objs[idx[b]].Region == r {
				sb /= boost
			}
			return sa < sb
		})
		c.rankByRegion[r] = idx
	}
	// Zipf weights by rank position.
	c.weights = make([]float64, len(objs))
	c.cumWeights = make([]float64, len(objs))
	sum := 0.0
	for i := range c.weights {
		w := 1 / powF(float64(i+1), cfg.ZipfS)
		c.weights[i] = w
		sum += w
		c.cumWeights[i] = sum
	}
	return c, nil
}

func powF(base, exp float64) float64 {
	if base <= 0 {
		return 1
	}
	return math.Pow(base, exp)
}

// Len returns the catalog size.
func (c *Catalog) Len() int { return len(c.objects) }

// Object returns the object with the given ID.
func (c *Catalog) Object(id ID) (Object, bool) {
	i, ok := c.index[id]
	if !ok {
		return Object{}, false
	}
	return c.objects[i], true
}

// ByRank returns the i-th most popular object for a region (0 = hottest).
func (c *Catalog) ByRank(r geo.Region, i int) Object {
	idx := c.rankByRegion[r]
	if len(idx) == 0 {
		return c.objects[i]
	}
	return c.objects[idx[i]]
}

// TopN returns the n most popular objects for a region.
func (c *Catalog) TopN(r geo.Region, n int) []Object {
	if n > len(c.objects) {
		n = len(c.objects)
	}
	out := make([]Object, n)
	for i := 0; i < n; i++ {
		out[i] = c.ByRank(r, i)
	}
	return out
}

// Sample draws an object according to Zipf popularity for the region.
func (c *Catalog) Sample(r geo.Region, rng *stats.Rand) Object {
	u := rng.Float64() * c.cumWeights[len(c.cumWeights)-1]
	i := sort.SearchFloat64s(c.cumWeights, u)
	if i >= len(c.objects) {
		i = len(c.objects) - 1
	}
	return c.ByRank(r, i)
}

// RegionAffinity returns the fraction of the top-n ranks for region r that
// are home-region objects: a measure of how localized popularity is.
func (c *Catalog) RegionAffinity(r geo.Region, n int) float64 {
	if n <= 0 {
		return 0
	}
	if n > len(c.objects) {
		n = len(c.objects)
	}
	hits := 0
	for i := 0; i < n; i++ {
		if c.ByRank(r, i).Region == r {
			hits++
		}
	}
	return float64(hits) / float64(n)
}

// Video is a DASH-style video: an ordered list of fixed-duration segments.
type Video struct {
	Object   Object
	Segments []Segment
}

// Segment is one DASH segment of a video.
type Segment struct {
	ID       ID
	Index    int
	Bytes    int64
	Duration time.Duration
}

// Segmentize splits a video object into fixed-duration DASH segments.
// segDur must be positive and bitrate (bits per second) positive.
func Segmentize(o Object, totalDur, segDur time.Duration, bitrateBps int64) (Video, error) {
	if !o.Video {
		return Video{}, fmt.Errorf("content: object %s is not a video", o.ID)
	}
	if segDur <= 0 || totalDur <= 0 || bitrateBps <= 0 {
		return Video{}, fmt.Errorf("content: invalid segmentation parameters")
	}
	n := int((totalDur + segDur - 1) / segDur)
	segBytes := int64(float64(bitrateBps) / 8 * segDur.Seconds())
	v := Video{Object: o, Segments: make([]Segment, n)}
	for i := range v.Segments {
		d := segDur
		if rem := totalDur - time.Duration(i)*segDur; rem < segDur {
			d = rem
		}
		v.Segments[i] = Segment{
			ID:       ID(fmt.Sprintf("%s/seg-%04d", o.ID, i)),
			Index:    i,
			Bytes:    segBytes,
			Duration: d,
		}
	}
	return v, nil
}

// TotalBytes returns the summed segment size.
func (v Video) TotalBytes() int64 {
	var t int64
	for _, s := range v.Segments {
		t += s.Bytes
	}
	return t
}

// Duration returns the summed segment duration.
func (v Video) Duration() time.Duration {
	var t time.Duration
	for _, s := range v.Segments {
		t += s.Duration
	}
	return t
}

// Request is one client content request.
type Request struct {
	Object Object
	At     time.Duration // offset from experiment start
	From   geo.Point
	Region geo.Region
}

// RequestGenerator produces a deterministic request stream for a client
// population in one region.
type RequestGenerator struct {
	Catalog *Catalog
	Region  geo.Region
	Loc     geo.Point
	// MeanInterarrival between requests.
	MeanInterarrival time.Duration
	rng              *stats.Rand
	now              time.Duration
}

// NewRequestGenerator creates a generator with its own random stream.
func NewRequestGenerator(c *Catalog, r geo.Region, loc geo.Point, meanIat time.Duration, seed int64) *RequestGenerator {
	return &RequestGenerator{
		Catalog:          c,
		Region:           r,
		Loc:              loc,
		MeanInterarrival: meanIat,
		rng:              stats.NewRand(seed),
	}
}

// Next returns the next request in the stream.
func (g *RequestGenerator) Next() Request {
	g.now += time.Duration(g.rng.Exponential(float64(g.MeanInterarrival)))
	return Request{
		Object: g.Catalog.Sample(g.Region, g.rng),
		At:     g.now,
		From:   g.Loc,
		Region: g.Region,
	}
}

// Take returns the next n requests.
func (g *RequestGenerator) Take(n int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
