package content

import (
	"testing"
	"time"

	"spacecdn/internal/geo"
	"spacecdn/internal/stats"
)

func smallCatalog(t *testing.T) *Catalog {
	t.Helper()
	cfg := DefaultCatalogConfig()
	cfg.Objects = 2000
	c, err := GenerateCatalog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenerateCatalogValidation(t *testing.T) {
	if _, err := GenerateCatalog(CatalogConfig{Objects: 0, ZipfS: 1}); err == nil {
		t.Error("zero objects accepted")
	}
	if _, err := GenerateCatalog(CatalogConfig{Objects: 10, ZipfS: 0}); err == nil {
		t.Error("zero zipf exponent accepted")
	}
}

func TestCatalogDeterminism(t *testing.T) {
	cfg := DefaultCatalogConfig()
	cfg.Objects = 500
	a, _ := GenerateCatalog(cfg)
	b, _ := GenerateCatalog(cfg)
	for i := 0; i < a.Len(); i++ {
		oa := a.ByRank(geo.RegionEurope, i)
		ob := b.ByRank(geo.RegionEurope, i)
		if oa != ob {
			t.Fatalf("catalogs differ at rank %d: %+v vs %+v", i, oa, ob)
		}
	}
}

func TestCatalogLookup(t *testing.T) {
	c := smallCatalog(t)
	o := c.ByRank(geo.RegionAfrica, 0)
	got, ok := c.Object(o.ID)
	if !ok || got != o {
		t.Errorf("lookup failed for %s", o.ID)
	}
	if _, ok := c.Object("nope"); ok {
		t.Error("unknown ID resolved")
	}
	if c.Len() != 2000 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestObjectSizes(t *testing.T) {
	c := smallCatalog(t)
	videos, web := 0, 0
	for i := 0; i < c.Len(); i++ {
		o := c.ByRank(geo.RegionEurope, i)
		if o.Bytes < 1024 {
			t.Fatalf("object %s below minimum size: %d", o.ID, o.Bytes)
		}
		if o.Video {
			videos++
			if o.Bytes != DefaultCatalogConfig().VideoBytes {
				t.Fatalf("video size %d unexpected", o.Bytes)
			}
		} else {
			web++
		}
	}
	// ~5% videos.
	if videos < 50 || videos > 250 {
		t.Errorf("videos = %d of 2000, want ~100", videos)
	}
	if web == 0 {
		t.Error("no web objects")
	}
}

func TestRegionalRanksDiffer(t *testing.T) {
	c := smallCatalog(t)
	same := 0
	n := 100
	for i := 0; i < n; i++ {
		if c.ByRank(geo.RegionAfrica, i).ID == c.ByRank(geo.RegionAsia, i).ID {
			same++
		}
	}
	if same == n {
		t.Error("regional rankings identical — boost has no effect")
	}
}

func TestRegionAffinity(t *testing.T) {
	c := smallCatalog(t)
	// With boost, a region's top-100 should over-represent home content
	// relative to the uniform share (1/6).
	for _, r := range geo.Regions() {
		aff := c.RegionAffinity(r, 100)
		if aff < 1.0/6 {
			t.Errorf("region %v affinity %.2f below uniform share", r, aff)
		}
	}
	if c.RegionAffinity(geo.RegionAfrica, 0) != 0 {
		t.Error("zero-n affinity should be 0")
	}
}

func TestSampleZipfSkew(t *testing.T) {
	c := smallCatalog(t)
	rng := stats.NewRand(42)
	counts := map[ID]int{}
	n := 30000
	for i := 0; i < n; i++ {
		counts[c.Sample(geo.RegionEurope, rng).ID]++
	}
	// The top-ranked object must be sampled far more often than a mid-rank
	// object.
	top := counts[c.ByRank(geo.RegionEurope, 0).ID]
	mid := counts[c.ByRank(geo.RegionEurope, 1000).ID]
	if top < 20 {
		t.Errorf("top object sampled only %d times", top)
	}
	if top <= mid*5 {
		t.Errorf("zipf skew too weak: top=%d mid=%d", top, mid)
	}
}

func TestSegmentize(t *testing.T) {
	o := Object{ID: "vid", Bytes: 4 << 30, Video: true}
	v, err := Segmentize(o, 2*time.Hour, 10*time.Second, 4_500_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Segments) != 720 {
		t.Errorf("segments = %d, want 720", len(v.Segments))
	}
	if v.Duration() != 2*time.Hour {
		t.Errorf("duration = %v", v.Duration())
	}
	// 4.5 Mbps * 10 s / 8 = 5.625 MB per segment.
	if v.Segments[0].Bytes != 5_625_000 {
		t.Errorf("segment bytes = %d", v.Segments[0].Bytes)
	}
	for i, s := range v.Segments {
		if s.Index != i {
			t.Fatalf("segment %d has index %d", i, s.Index)
		}
	}
	// Non-divisible tail.
	v2, err := Segmentize(o, 95*time.Second, 30*time.Second, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(v2.Segments) != 4 {
		t.Fatalf("segments = %d, want 4", len(v2.Segments))
	}
	if v2.Segments[3].Duration != 5*time.Second {
		t.Errorf("tail duration = %v, want 5s", v2.Segments[3].Duration)
	}
}

func TestSegmentizeErrors(t *testing.T) {
	web := Object{ID: "page", Bytes: 1024}
	if _, err := Segmentize(web, time.Hour, 10*time.Second, 1e6); err == nil {
		t.Error("non-video accepted")
	}
	vid := Object{ID: "vid", Video: true}
	if _, err := Segmentize(vid, 0, 10*time.Second, 1e6); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Segmentize(vid, time.Hour, 0, 1e6); err == nil {
		t.Error("zero segment duration accepted")
	}
	if _, err := Segmentize(vid, time.Hour, 10*time.Second, 0); err == nil {
		t.Error("zero bitrate accepted")
	}
}

func TestRequestGenerator(t *testing.T) {
	c := smallCatalog(t)
	loc := geo.NewPoint(-25.97, 32.57)
	g := NewRequestGenerator(c, geo.RegionAfrica, loc, time.Second, 7)
	reqs := g.Take(500)
	if len(reqs) != 500 {
		t.Fatalf("got %d requests", len(reqs))
	}
	var last time.Duration = -1
	for _, r := range reqs {
		if r.At <= last {
			t.Fatal("request times must be strictly increasing")
		}
		last = r.At
		if r.Region != geo.RegionAfrica || r.From != loc {
			t.Fatal("request metadata wrong")
		}
		if _, ok := c.Object(r.Object.ID); !ok {
			t.Fatal("request references unknown object")
		}
	}
	// Mean interarrival should be near 1s.
	mean := float64(reqs[len(reqs)-1].At) / float64(len(reqs)) / float64(time.Second)
	if mean < 0.8 || mean > 1.25 {
		t.Errorf("mean interarrival = %.2fs, want ~1s", mean)
	}
	// Determinism.
	g2 := NewRequestGenerator(c, geo.RegionAfrica, loc, time.Second, 7)
	r2 := g2.Take(500)
	for i := range reqs {
		if reqs[i] != r2[i] {
			t.Fatal("generator not deterministic")
		}
	}
}
