package content

import (
	"testing"

	"spacecdn/internal/geo"
	"spacecdn/internal/stats"
)

// TestClassMixAssignsClasses checks the second-pass class assignment hits
// every class at roughly the configured fractions.
func TestClassMixAssignsClasses(t *testing.T) {
	cfg := DefaultCatalogConfig()
	cfg.Objects = 4000
	cfg.NewsFraction = 0.2
	cfg.LiveFraction = 0.1
	cfg.APIFraction = 0.15
	c, err := GenerateCatalog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, NumClasses())
	for i := 0; i < c.Len(); i++ {
		counts[c.ByRank(geo.Regions()[0], i).Class]++
	}
	total := float64(cfg.Objects)
	wantShares := map[Class]float64{
		ClassStatic:      0.55,
		ClassNews:        0.2,
		ClassLiveSegment: 0.1,
		ClassAPI:         0.15,
	}
	for cls, want := range wantShares {
		got := float64(counts[cls]) / total
		if got < want-0.03 || got > want+0.03 {
			t.Errorf("class %v share = %.3f, want ~%.2f", cls, got, want)
		}
	}
}

// TestClassMixDoesNotPerturbCatalog proves enabling a class mix changes
// ONLY the Class field: region, size, and video draws stay bit-identical,
// because classes come from an independent seeded stream in a second pass.
func TestClassMixDoesNotPerturbCatalog(t *testing.T) {
	base := DefaultCatalogConfig()
	base.Objects = 500
	plain, err := GenerateCatalog(base)
	if err != nil {
		t.Fatal(err)
	}
	mixed := base
	mixed.NewsFraction, mixed.LiveFraction, mixed.APIFraction = 0.3, 0.1, 0.1
	withMix, err := GenerateCatalog(mixed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < plain.Len(); i++ {
		a := plain.ByRank(geo.Regions()[0], i)
		b := withMix.ByRank(geo.Regions()[0], i)
		a.Class, b.Class = 0, 0
		if a != b {
			t.Fatalf("object %d differs beyond Class:\n plain %+v\n mixed %+v", i, a, b)
		}
	}
	// And all-zero mix means all static.
	for i := 0; i < plain.Len(); i++ {
		if got := plain.ByRank(geo.Regions()[0], i).Class; got != ClassStatic {
			t.Fatalf("zero-mix catalog object has class %v", got)
		}
	}
}

// TestClassMixValidation rejects impossible mixes.
func TestClassMixValidation(t *testing.T) {
	cfg := DefaultCatalogConfig()
	cfg.Objects = 10
	cfg.NewsFraction = 0.8
	cfg.APIFraction = 0.5 // sums over 1
	if _, err := GenerateCatalog(cfg); err == nil {
		t.Fatal("accepted class mix summing over 1")
	}
	cfg.NewsFraction, cfg.APIFraction = -0.1, 0
	if _, err := GenerateCatalog(cfg); err == nil {
		t.Fatal("accepted negative class fraction")
	}
}

// TestSingleObjectCatalogRanks exercises the regional rank tables at the
// smallest catalog: one object. Every region's table must rank it, and the
// regions the object does not call home (the "empty region" case — zero
// home-region objects) must still rank, sample, and score affinity sanely.
func TestSingleObjectCatalogRanks(t *testing.T) {
	cfg := DefaultCatalogConfig()
	cfg.Objects = 1
	c, err := GenerateCatalog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("catalog len = %d, want 1", c.Len())
	}
	only := c.ByRank(geo.Regions()[0], 0)
	rng := stats.NewRand(7)
	for _, r := range geo.Regions() {
		if got := c.ByRank(r, 0); got.ID != only.ID {
			t.Errorf("region %v ByRank(0) = %v, want %v", r, got.ID, only.ID)
		}
		if top := c.TopN(r, 5); len(top) != 1 || top[0].ID != only.ID {
			t.Errorf("region %v TopN(5) = %v, want exactly the one object", r, top)
		}
		if got := c.Sample(r, rng); got.ID != only.ID {
			t.Errorf("region %v Sample = %v, want %v", r, got.ID, only.ID)
		}
		wantAff := 0.0
		if r == only.Region {
			wantAff = 1.0
		}
		if got := c.RegionAffinity(r, 1); got != wantAff {
			t.Errorf("region %v affinity = %v, want %v", r, got, wantAff)
		}
	}
	if got := c.RegionAffinity(only.Region, 0); got != 0 {
		t.Errorf("affinity over zero ranks = %v, want 0", got)
	}
}

// TestRankTablesArePermutations checks that every region's rank table is a
// complete permutation of the catalog — including regions with zero
// home-region objects, which the boost re-sort must not drop or duplicate.
func TestRankTablesArePermutations(t *testing.T) {
	cfg := DefaultCatalogConfig()
	cfg.Objects = 97 // small and prime, so region buckets are uneven
	cfg.Seed = 3
	c, err := GenerateCatalog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Count home objects per region; with 97 objects across all regions at
	// least the distribution is uneven, and the permutation property must
	// hold regardless of whether a region has 0, 1, or many home objects.
	homeCount := make(map[geo.Region]int)
	for i := 0; i < c.Len(); i++ {
		homeCount[c.ByRank(geo.Regions()[0], i).Region]++
	}
	for _, r := range geo.Regions() {
		seen := make(map[ID]int, c.Len())
		for i := 0; i < c.Len(); i++ {
			seen[c.ByRank(r, i).ID]++
		}
		if len(seen) != c.Len() {
			t.Errorf("region %v (home objects: %d): rank table covers %d of %d objects",
				r, homeCount[r], len(seen), c.Len())
		}
		for id, n := range seen {
			if n != 1 {
				t.Errorf("region %v: object %v appears %d times in rank table", r, id, n)
			}
		}
	}
}

// TestClassStringsRoundTrip keeps the class name table exhaustive.
func TestClassStringsRoundTrip(t *testing.T) {
	seen := make(map[string]bool)
	for _, cls := range Classes() {
		s := cls.String()
		if s == "" || seen[s] {
			t.Errorf("class %d has empty or duplicate name %q", int(cls), s)
		}
		seen[s] = true
	}
	if Class(-1).String() == ClassStatic.String() {
		t.Error("out-of-range class collides with a named class")
	}
}
