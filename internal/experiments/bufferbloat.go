package experiments

import (
	"fmt"

	"spacecdn/internal/measure"
	"spacecdn/internal/stats"
)

// BufferbloatRow quantifies §3.2's claim that "Starlink suffers from
// significant bufferbloat ... we observed > 200 ms during active downloads"
// while terrestrial access queues stay modest (E16).
type BufferbloatRow struct {
	Network        measure.Network
	MedianIdleMs   float64
	MedianLoadedMs float64
	// MedianInflation is the median per-test (loaded - idle) delta.
	MedianInflation float64
	P90Inflation    float64
	// Share200 is the fraction of tests whose loaded RTT exceeds 200 ms.
	Share200 float64
	N        int
}

// Bufferbloat (E16) aggregates idle-vs-loaded RTTs from the AIM dataset per
// network.
func (s *Suite) Bufferbloat() ([]BufferbloatRow, error) {
	tests, err := s.AIM()
	if err != nil {
		return nil, err
	}
	var rows []BufferbloatRow
	for _, net := range []measure.Network{measure.NetworkStarlink, measure.NetworkTerrestrial} {
		var idle, loaded, inflation []float64
		over200 := 0
		for _, ts := range tests {
			if ts.Network != net {
				continue
			}
			idle = append(idle, ts.IdleRTTMs)
			loaded = append(loaded, ts.LoadedMs)
			inflation = append(inflation, ts.LoadedMs-ts.IdleRTTMs)
			if ts.LoadedMs > 200 {
				over200++
			}
		}
		if len(idle) == 0 {
			return nil, fmt.Errorf("experiments: no %s tests", net)
		}
		rows = append(rows, BufferbloatRow{
			Network:         net,
			MedianIdleMs:    stats.Median(idle),
			MedianLoadedMs:  stats.Median(loaded),
			MedianInflation: stats.Median(inflation),
			P90Inflation:    stats.Quantile(inflation, 0.9),
			Share200:        float64(over200) / float64(len(loaded)),
			N:               len(idle),
		})
	}
	return rows, nil
}
