package experiments

import (
	"testing"

	"spacecdn/internal/measure"
)

func TestBufferbloat(t *testing.T) {
	s := testSuite(t)
	rows, err := s.Bufferbloat()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	byNet := map[measure.Network]BufferbloatRow{}
	for _, r := range rows {
		byNet[r.Network] = r
		if r.N == 0 || r.MedianLoadedMs <= r.MedianIdleMs {
			t.Errorf("%s: degenerate row %+v", r.Network, r)
		}
	}
	sl := byNet[measure.NetworkStarlink]
	te := byNet[measure.NetworkTerrestrial]
	// Paper: Starlink inflates by >200 ms under load; terrestrial stays
	// modest (tens of ms).
	if sl.MedianInflation < 100 || sl.MedianInflation > 400 {
		t.Errorf("Starlink median inflation = %.0f ms, paper observes 100-350", sl.MedianInflation)
	}
	if te.MedianInflation > 50 {
		t.Errorf("terrestrial median inflation = %.0f ms, want modest", te.MedianInflation)
	}
	if sl.Share200 < 0.5 {
		t.Errorf("Starlink share of loaded RTTs >200 ms = %.2f, paper observes it routinely", sl.Share200)
	}
	if te.Share200 > 0.2 {
		t.Errorf("terrestrial share >200 ms = %.2f, want rare", te.Share200)
	}
}
