package experiments

// CapacityResult reproduces the paper's §5 storage arithmetic (E9): "the
// same high-end server comes with ~150 TB ... 6000 satellites ... upwards
// of 900 PB i.e. > 300M 2-hour long 1080p videos at 30FPS".
type CapacityResult struct {
	Satellites   int
	PerSatBytes  int64
	TotalBytes   int64
	TotalPB      float64
	VideoBytes   int64
	VideosStored int64
}

// Capacity computes fleet storage for a satellite count, per-satellite
// capacity and representative video size.
func Capacity(satellites int, perSatBytes, videoBytes int64) CapacityResult {
	total := int64(satellites) * perSatBytes
	r := CapacityResult{
		Satellites:  satellites,
		PerSatBytes: perSatBytes,
		TotalBytes:  total,
		TotalPB:     float64(total) / (1 << 50),
		VideoBytes:  videoBytes,
	}
	if videoBytes > 0 {
		r.VideosStored = total / videoBytes
	}
	return r
}

// PaperCapacity evaluates the paper's own numbers: 6,000 satellites with
// 150 TB each against a 2-hour 1080p video (~3 GB at ~3.3 Mbps effective).
func PaperCapacity() CapacityResult {
	const perSat = 150 << 40     // 150 TB
	const video = int64(3 << 30) // ~3 GB for 2h 1080p
	return Capacity(6000, perSat, video)
}
