package experiments

import "testing"

// The paper's §5 arithmetic: 6,000 satellites x 150 TB is ~879 PB (the
// paper rounds up to "upwards of 900 PB"), which at ~3 GB per 2-hour 1080p
// video is exactly 307,200,000 stored copies.
func TestPaperCapacity(t *testing.T) {
	r := PaperCapacity()
	if r.Satellites != 6000 {
		t.Errorf("satellites = %d, want 6000", r.Satellites)
	}
	if r.PerSatBytes != 150<<40 {
		t.Errorf("per-sat bytes = %d, want 150 TB", r.PerSatBytes)
	}
	if r.TotalBytes != int64(6000)*(150<<40) {
		t.Errorf("total bytes = %d, want 6000 x 150 TB", r.TotalBytes)
	}
	if r.TotalPB < 850 || r.TotalPB > 900 {
		t.Errorf("total = %.0f PB, want ~879 (6000 x 150 TB)", r.TotalPB)
	}
	if r.VideosStored != 307_200_000 {
		t.Errorf("videos = %d, want exactly 307,200,000", r.VideosStored)
	}
	if r.VideosStored < 300_000_000 {
		t.Errorf("videos = %d, want > 300M (paper claim)", r.VideosStored)
	}
}

func TestCapacityArithmetic(t *testing.T) {
	r := Capacity(10, 1<<30, 1<<20)
	if r.TotalBytes != 10<<30 {
		t.Errorf("total = %d, want 10 GiB", r.TotalBytes)
	}
	if r.VideosStored != 10<<10 {
		t.Errorf("videos = %d, want 10Ki", r.VideosStored)
	}
	// TotalPB is the byte total expressed in pebibytes.
	if want := float64(r.TotalBytes) / (1 << 50); r.TotalPB != want {
		t.Errorf("TotalPB = %v, want %v", r.TotalPB, want)
	}
}

func TestCapacityDegenerate(t *testing.T) {
	// Zero video size must not divide by zero — it stores zero videos.
	if got := Capacity(10, 100, 0); got.VideosStored != 0 {
		t.Error("zero video size should store zero videos")
	}
	if got := Capacity(0, 150<<40, 3<<30); got.TotalBytes != 0 || got.VideosStored != 0 {
		t.Errorf("empty fleet stores nothing, got %+v", got)
	}
}
