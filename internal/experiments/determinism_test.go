package experiments

import "testing"

// TestSuiteDeterminism runs the headline experiment twice with identical
// seeds on fresh suites (fresh environments, fresh caches) and demands
// bit-identical rows — the property EXPERIMENTS.md promises.
func TestSuiteDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two environments")
	}
	a, err := NewSuite(true, 77)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSuite(true, 77)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.Table1()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != len(rb) {
		t.Fatalf("row counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Errorf("row %d differs:\n  %+v\n  %+v", i, ra[i], rb[i])
		}
	}
	// A different seed must actually change the samples.
	c, err := NewSuite(true, 78)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := c.Table1()
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range ra {
		if ra[i] != rc[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical results")
	}
}
