package experiments

import (
	"reflect"
	"testing"
)

// TestSuiteDeterminism runs the headline experiment twice with identical
// seeds on fresh suites (fresh environments, fresh caches) and demands
// bit-identical rows — the property EXPERIMENTS.md promises.
func TestSuiteDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two environments")
	}
	a, err := NewSuite(true, 77)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSuite(true, 77)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := a.Table1()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != len(rb) {
		t.Fatalf("row counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Errorf("row %d differs:\n  %+v\n  %+v", i, ra[i], rb[i])
		}
	}
	// A different seed must actually change the samples.
	c, err := NewSuite(true, 78)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := c.Table1()
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range ra {
		if ra[i] != rc[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical results")
	}
}

// TestSuiteParallelDeterminism is the engine's headline guarantee: a suite
// running on one worker and a suite running on four produce byte-identical
// datasets and workload results for the same seed. Fresh suites (fresh
// environments, fresh caches) make this a property of the sharded-RNG
// scheme, not of shared memoization.
func TestSuiteParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two environments")
	}
	seq, err := NewSuite(true, 91)
	if err != nil {
		t.Fatal(err)
	}
	seq.SetWorkers(1)
	par, err := NewSuite(true, 91)
	if err != nil {
		t.Fatal(err)
	}
	par.SetWorkers(4)

	aimSeq, err := seq.AIM()
	if err != nil {
		t.Fatal(err)
	}
	aimPar, err := par.AIM()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(aimSeq, aimPar) {
		t.Error("AIM dataset differs between workers=1 and workers=4")
	}

	webSeq, err := seq.Web()
	if err != nil {
		t.Fatal(err)
	}
	webPar, err := par.Web()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(webSeq, webPar) {
		t.Error("NetMet campaign differs between workers=1 and workers=4")
	}

	wlSeq, err := seq.ResolveWorkload()
	if err != nil {
		t.Fatal(err)
	}
	wlPar, err := par.ResolveWorkload()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wlSeq, wlPar) {
		t.Errorf("workload differs between workers=1 and workers=4:\n  seq %+v\n  par %+v", wlSeq, wlPar)
	}
}
