package experiments

import (
	"sync"
	"testing"

	"spacecdn/internal/measure"
)

// One fast suite shared by every test in the package: suite construction
// builds the constellation and the first AIM call generates the dataset.
var (
	suiteOnce sync.Once
	suite     *Suite
	suiteErr  error
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() { suite, suiteErr = NewSuite(true, 1) })
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suite
}

func TestTable1(t *testing.T) {
	s := testSuite(t)
	rows, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table1Countries) {
		t.Fatalf("rows = %d, want %d", len(rows), len(Table1Countries))
	}
	for _, r := range rows {
		if r.Name == "" {
			t.Errorf("row %s missing country name", r.Country)
		}
		if r.TerrMinRTT <= 0 || r.StarMinRTT <= 0 {
			t.Errorf("row %s has non-positive RTTs: %+v", r.Country, r)
		}
		// The paper's qualitative claim: Starlink is worse everywhere except
		// where a local PoP makes it merely comparable — never better by a
		// wide margin.
		if r.StarMinRTT < r.TerrMinRTT-10 {
			t.Errorf("row %s: Starlink (%.1f) beats terrestrial (%.1f) too much",
				r.Country, r.StarMinRTT, r.TerrMinRTT)
		}
	}
	// Spot-check the shape against the paper's extremes.
	byISO := map[string]Table1Row{}
	for _, r := range rows {
		byISO[r.Country] = r
	}
	mz := byISO["MZ"]
	if mz.StarDistKm < 5000 || mz.StarMinRTT < 90 {
		t.Errorf("MZ row lacks the paper's remote-PoP signature: %+v", mz)
	}
	es := byISO["ES"]
	if es.StarDistKm > 700 {
		t.Errorf("ES Starlink distance = %.0f, want local (paper: 13.4)", es.StarDistKm)
	}
	// Starlink distance exceeds terrestrial distance for the unserved
	// countries.
	for _, iso := range []string{"MZ", "KE", "ZM", "GT", "HT"} {
		r := byISO[iso]
		if r.StarDistKm <= r.TerrDistKm {
			t.Errorf("%s: Starlink CDN distance should exceed terrestrial: %+v", iso, r)
		}
	}
}

func TestFig2(t *testing.T) {
	s := testSuite(t)
	rows, pops, err := s.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(pops) != 22 {
		t.Errorf("PoPs = %d, want 22", len(pops))
	}
	if len(rows) < 40 {
		t.Fatalf("countries = %d, want >= 40", len(rows))
	}
	pos := 0
	for _, r := range rows {
		if r.DeltaMs > 0 {
			pos++
		}
	}
	if float64(pos) < 0.8*float64(len(rows)) {
		t.Errorf("positive deltas = %d/%d; terrestrial should nearly always win", pos, len(rows))
	}
}

func TestFig3(t *testing.T) {
	s := testSuite(t)
	res, err := s.Fig3("")
	if err != nil {
		t.Fatal(err)
	}
	if res.City != "Maputo" {
		t.Errorf("default city = %s", res.City)
	}
	if len(res.Starlink) == 0 || len(res.Terrestrial) == 0 {
		t.Fatal("missing series")
	}
	// Fig 3a: the optimal Starlink CDN is remote (~160 ms); Fig 3b: the
	// optimal terrestrial CDN is Maputo (~20 ms).
	if res.Starlink[0].MedianMs < 100 {
		t.Errorf("Starlink best CDN = %.1f ms, want >= 100", res.Starlink[0].MedianMs)
	}
	if res.Terrestrial[0].CDNCity != "Maputo" {
		t.Errorf("terrestrial best CDN = %s", res.Terrestrial[0].CDNCity)
	}
	if _, err := s.Fig3("Atlantis"); err == nil {
		t.Error("unknown city accepted")
	}
}

func TestFig4(t *testing.T) {
	s := testSuite(t)
	series, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(Fig4Countries) {
		t.Fatalf("series = %d", len(series))
	}
	med := map[string]float64{}
	for _, sr := range series {
		if sr.CDF.N() == 0 {
			t.Fatalf("%s: empty CDF", sr.Country)
		}
		med[sr.Country] = sr.CDF.Median()
	}
	// GB/DE/CA medians positive (terrestrial faster); Nigeria is the
	// paper's outlier — its curve sits left of the others.
	for _, iso := range []string{"GB", "DE", "CA"} {
		if med[iso] <= 0 {
			t.Errorf("%s median diff = %.1f, want > 0", iso, med[iso])
		}
	}
	if med["NG"] >= med["GB"] {
		t.Errorf("NG median (%.1f) should sit left of GB (%.1f)", med["NG"], med["GB"])
	}
}

func TestFig5(t *testing.T) {
	s := testSuite(t)
	rows, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // DE/GB x starlink/terrestrial
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(iso string, n measure.Network) float64 {
		for _, r := range rows {
			if r.Country == iso && r.Network == n {
				return r.Box.Median
			}
		}
		t.Fatalf("missing %s/%s", iso, n)
		return 0
	}
	for _, iso := range []string{"DE", "GB"} {
		gap := get(iso, measure.NetworkStarlink) - get(iso, measure.NetworkTerrestrial)
		if gap < 60 || gap > 600 {
			t.Errorf("%s FCP gap = %.0f ms, paper ~200", iso, gap)
		}
	}
}

func TestFig7(t *testing.T) {
	s := testSuite(t)
	res, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	// Monotone in hop count.
	prev := 0.0
	for _, n := range Fig7HopCounts {
		cdf := res.Hop[n]
		if cdf == nil || cdf.N() == 0 {
			t.Fatalf("missing CDF for %d hops", n)
		}
		m := cdf.Median()
		if m <= prev {
			t.Errorf("median at %d hops (%.1f) not greater than previous (%.1f)", n, m, prev)
		}
		prev = m
	}
	// Paper claims: <= 5 hops is competitive with terrestrial CDN access;
	// 10 hops still beats the Starlink status quo handily.
	if res.Hop[5].Median() > res.Terrestrial.Median()*2.2 {
		t.Errorf("5-hop median %.1f not competitive with terrestrial %.1f",
			res.Hop[5].Median(), res.Terrestrial.Median())
	}
	if res.Hop[10].Median() >= res.Starlink.Median() {
		t.Errorf("10-hop median %.1f should beat Starlink median %.1f",
			res.Hop[10].Median(), res.Starlink.Median())
	}
	// In the tail the gap widens: Starlink's p90 dwarfs 10-hop p90.
	if res.Hop[10].Quantile(0.9) >= res.Starlink.Quantile(0.9) {
		t.Errorf("10-hop p90 %.1f should beat Starlink p90 %.1f",
			res.Hop[10].Quantile(0.9), res.Starlink.Quantile(0.9))
	}
}

func TestFig8(t *testing.T) {
	s := testSuite(t)
	rows, terrMedian, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if terrMedian <= 0 {
		t.Fatal("terrestrial median missing")
	}
	med := map[int]float64{}
	for _, r := range rows {
		if r.Box.N == 0 {
			t.Fatalf("empty box for %d%%", r.FractionPct)
		}
		med[r.FractionPct] = r.Box.Median
	}
	// Fewer caches -> slower.
	if !(med[30] >= med[50] && med[50] >= med[80]) {
		t.Errorf("medians not monotone: %v", med)
	}
	// Paper: >= 50% duty cycle is competitive with the terrestrial median.
	if med[50] > terrMedian*2.2 {
		t.Errorf("50%% median %.1f not competitive with terrestrial %.1f", med[50], terrMedian)
	}
}

func TestAblationReplicas(t *testing.T) {
	s := testSuite(t)
	rows, err := s.AblationReplicas()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].ReplicasPerPlane <= rows[i-1].ReplicasPerPlane {
			t.Fatal("rows out of order")
		}
		// More replicas never hurt.
		if rows[i].MedianHops > rows[i-1].MedianHops+0.5 {
			t.Errorf("median hops increased with density: %+v -> %+v", rows[i-1], rows[i])
		}
	}
	// The paper's claim: with 4 replicas/plane everything reachable within
	// the 10-hop search, and hop counts small.
	for _, r := range rows {
		if r.ReplicasPerPlane >= 4 {
			if r.Reachable < 0.99 {
				t.Errorf("k=%d reachable = %.2f", r.ReplicasPerPlane, r.Reachable)
			}
			if r.MedianHops > 5 {
				t.Errorf("k=%d median hops = %.1f, want <= 5", r.ReplicasPerPlane, r.MedianHops)
			}
		}
	}
}
