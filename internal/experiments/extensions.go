package experiments

import (
	"fmt"
	"sort"
	"time"

	"spacecdn/internal/cdn"
	"spacecdn/internal/content"
	"spacecdn/internal/geo"
	"spacecdn/internal/groundseg"
	"spacecdn/internal/lsn"
	"spacecdn/internal/spacecdn"
	"spacecdn/internal/stats"
)

// This file implements the extension experiments DESIGN.md calls out beyond
// the paper's published figures: geo-blocking quantification (E10),
// ground-segment expansion (E11), a duty-cycle sweep (E12), the striping
// prefetch ablation (E13), content wormholing (E14) and Space-VM handover
// analysis (E15). Each grounds a claim the paper makes in prose.

// GeoBlockRow quantifies §1-§2's "unwarranted geo-blocking" for one country.
type GeoBlockRow struct {
	Country string
	PoPISO  string // where Starlink clients geolocate
	// SpuriousRate is the fraction of requests for content licensed in the
	// client's own country that get blocked anyway over Starlink.
	StarlinkSpuriousRate float64
	// TerrestrialSpuriousRate is the baseline (should be ~0).
	TerrestrialSpuriousRate float64
	Requests                int
}

// GeoBlocking (E10) measures spurious geo-blocks: clients request their
// region's popular content, a quarter of which carries national licenses;
// the CDN geolocates terrestrial clients correctly and Starlink clients at
// their PoP.
func (s *Suite) GeoBlocking() ([]GeoBlockRow, error) {
	cat, err := content.GenerateCatalog(content.CatalogConfig{
		Objects: 4000, MeanObjectBytes: 256 << 10, ZipfS: 0.9, RegionBoost: 8, Seed: s.Seed,
	})
	if err != nil {
		return nil, err
	}
	db := cdn.GenerateNationalLicenses(cat, 0.25, s.Seed)
	requests := 400
	if s.Fast {
		requests = 150
	}
	countries := []string{"MZ", "KE", "ZM", "RW", "GT", "HT", "DE", "ES", "US", "NG"}
	var rows []GeoBlockRow
	for _, iso := range countries {
		country, ok := geo.CountryByISO(iso)
		if !ok || !country.Starlink {
			continue
		}
		loc, ok := geo.CountryCentroid(iso)
		if !ok {
			continue
		}
		pop, ok := s.Env.Ground.AssignPoPForClient(iso, loc)
		if !ok {
			continue
		}
		rng := stats.NewRand(s.Seed).Fork("geoblock/" + iso)
		var sl, te cdn.GeoBlockStats
		for i := 0; i < requests; i++ {
			obj := cat.Sample(country.Region, rng)
			// Terrestrial: geolocated at home.
			dt := cdn.CheckAccess(db, obj.ID, iso, iso)
			te.Record(db, obj.ID, dt, iso)
			// Starlink: geolocated at the PoP's country.
			ds := cdn.CheckAccess(db, obj.ID, pop.Country, iso)
			sl.Record(db, obj.ID, ds, iso)
		}
		rows = append(rows, GeoBlockRow{
			Country:                 iso,
			PoPISO:                  pop.Country,
			StarlinkSpuriousRate:    sl.SpuriousRate(),
			TerrestrialSpuriousRate: te.SpuriousRate(),
			Requests:                requests,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		return rows[i].StarlinkSpuriousRate > rows[j].StarlinkSpuriousRate
	})
	return rows, nil
}

// ExpansionRow compares a country's Starlink CDN floor before and after
// ground-segment expansion.
type ExpansionRow struct {
	Country      string
	BaselineMs   float64 // minRTT to CDN via today's PoP assignment
	ExpandedMs   float64 // minRTT with a local PoP deployed
	BaselineDist float64
	ExpandedDist float64
}

// expansionPlan deploys hypothetical PoPs in the underserved markets the
// paper's Table 1 highlights.
var expansionPlan = []struct {
	pop  string
	city string
	isos []string
}{
	{"nbo", "Nairobi, KE", []string{"KE"}},
	{"mpm", "Maputo, MZ", []string{"MZ", "SZ"}},
	{"lun", "Lusaka, ZM", []string{"ZM", "MW", "ZW", "BW"}},
	{"kgl", "Kigali, RW", []string{"RW"}},
	{"gua", "Guatemala City, GT", []string{"GT"}},
	{"pap", "Port-au-Prince, HT", []string{"HT"}},
}

// GroundExpansion (E11) tests §5's claim that "even with sufficient and
// steady ground infrastructure expansion, we only foresee the best case
// latency to hover around 20-30 ms": it deploys local PoPs in the
// underserved Table 1 countries and recomputes the Starlink CDN floor.
func (s *Suite) GroundExpansion() ([]ExpansionRow, error) {
	var opts []groundseg.Option
	targetISOs := map[string]bool{}
	for _, e := range expansionPlan {
		opts = append(opts, groundseg.WithPoP(e.pop, e.city))
		for _, iso := range e.isos {
			opts = append(opts, groundseg.WithAssignment(iso, e.pop))
			targetISOs[iso] = true
		}
	}
	expandedGround := groundseg.NewCatalog(opts...)
	expandedLSN := lsn.NewModel(s.Env.Constellation, expandedGround, lsn.DefaultConfig())

	var rows []ExpansionRow
	var isos []string
	for iso := range targetISOs {
		isos = append(isos, iso)
	}
	sort.Strings(isos)
	for _, iso := range isos {
		loc, ok := geo.CountryCentroid(iso)
		if !ok {
			return nil, fmt.Errorf("experiments: no centroid for %s", iso)
		}
		row := ExpansionRow{Country: iso}
		baseBest, expBest := -1.0, -1.0
		for _, at := range s.snapshotTimes() {
			snap := s.Env.Snapshot(at)
			if p, err := s.Env.LSN.ResolvePath(loc, iso, snap); err == nil {
				if v := msF(s.Env.LSN.MinRTTToPoP(p)); baseBest < 0 || v < baseBest {
					baseBest = v
					row.BaselineDist = geo.HaversineKm(loc, p.PoP.Loc)
				}
			}
			if p, err := expandedLSN.ResolvePath(loc, iso, snap); err == nil {
				if v := msF(expandedLSN.MinRTTToPoP(p)); expBest < 0 || v < expBest {
					expBest = v
					row.ExpandedDist = geo.HaversineKm(loc, p.PoP.Loc)
				}
			}
		}
		if baseBest < 0 || expBest < 0 {
			return nil, fmt.Errorf("experiments: no coverage for %s", iso)
		}
		row.BaselineMs = baseBest
		row.ExpandedMs = expBest
		rows = append(rows, row)
	}
	return rows, nil
}

// DutySweepRow is one point of the duty-cycle sweep (E12).
type DutySweepRow struct {
	FractionPct int
	MedianMs    float64
	P90Ms       float64
	MedianHops  float64
	FoundRate   float64
}

// DutyCycleSweep (E12) extends Figure 8 beyond {30,50,80}: a full sweep of
// the caching fraction, in the same one-way accounting as the figure.
func (s *Suite) DutyCycleSweep() ([]DutySweepRow, error) {
	fractions := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0}
	obj := content.Object{ID: "sweep-popular", Bytes: 1 << 30, Region: geo.RegionEurope}
	cities := s.clientCities()
	rng := stats.NewRand(s.Seed).Fork("dutysweep")
	var rows []DutySweepRow
	for _, f := range fractions {
		cfg := spacecdn.DefaultConfig()
		cfg.Latency = spacecdn.LatencyOneWayPropagation
		if f < 1 {
			cfg.DutyCycle = &spacecdn.DutyCycleConfig{Fraction: f, Slot: 5 * time.Minute, Seed: s.Seed}
		}
		sys, err := s.newSystem(cfg)
		if err != nil {
			return nil, err
		}
		if _, err := spacecdn.Apply(sys, spacecdn.PerPlaneSpacing{ReplicasPerPlane: 4}, obj); err != nil {
			return nil, err
		}
		var xs, hops []float64
		attempts, found := 0, 0
		for _, at := range s.snapshotTimes() {
			snap := s.Env.Snapshot(at)
			for _, city := range cities {
				attempts++
				rtt, h, ok := sys.NearestReplicaRTT(city.Loc, obj.ID, snap, rng)
				if !ok {
					continue
				}
				found++
				xs = append(xs, msF(rtt))
				hops = append(hops, float64(h))
			}
		}
		if len(xs) == 0 {
			return nil, fmt.Errorf("experiments: duty sweep empty at %v", f)
		}
		rows = append(rows, DutySweepRow{
			FractionPct: int(f * 100),
			MedianMs:    stats.Median(xs),
			P90Ms:       stats.Quantile(xs, 0.9),
			MedianHops:  stats.Median(hops),
			FoundRate:   float64(found) / float64(attempts),
		})
	}
	return rows, nil
}

// StripingRow compares DASH playback with and without stripe preloading
// from one viewer location (E13).
type StripingRow struct {
	City            string
	Segments        int
	Satellites      int
	ColdStartupMs   float64
	WarmStartupMs   float64
	ColdFromGround  int
	WarmFromSpace   int
	ColdStallTimeMs float64
	WarmStallTimeMs float64
}

// StripingAblation (E13) quantifies §4's claim that preloading stripes onto
// the satellites that will be overhead "hides the latency of the bent-pipe".
func (s *Suite) StripingAblation() ([]StripingRow, error) {
	viewers := []string{"Buenos Aires, AR", "Maputo, MZ", "Jakarta, ID"}
	duration := 20 * time.Minute
	if s.Fast {
		duration = 10 * time.Minute
	}
	var rows []StripingRow
	for _, name := range viewers {
		city, ok := geo.CityByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown viewer %q", name)
		}
		obj := content.Object{ID: content.ID("stripe-" + city.Name), Bytes: 1 << 30,
			Region: city.Region, Video: true}
		video, err := content.Segmentize(obj, duration, 10*time.Second, 4_500_000)
		if err != nil {
			return nil, err
		}
		sys, err := s.newSystem(spacecdn.DefaultConfig())
		if err != nil {
			return nil, err
		}
		plan, err := sys.PlanStripes(city.Loc, video, 0)
		if err != nil {
			return nil, err
		}
		cold, err := sys.SimulatePlayback(plan, spacecdn.DefaultPlaybackConfig(), stats.NewRand(s.Seed))
		if err != nil {
			return nil, err
		}
		sys.Preload(plan)
		warm, err := sys.SimulatePlayback(plan, spacecdn.DefaultPlaybackConfig(), stats.NewRand(s.Seed))
		if err != nil {
			return nil, err
		}
		rows = append(rows, StripingRow{
			City:            city.Name,
			Segments:        len(video.Segments),
			Satellites:      len(plan.Satellites()),
			ColdStartupMs:   msF(cold.StartupDelay),
			WarmStartupMs:   msF(warm.StartupDelay),
			ColdFromGround:  cold.FromGround,
			WarmFromSpace:   warm.FromSpace,
			ColdStallTimeMs: msF(cold.StallTime),
			WarmStallTimeMs: msF(warm.StallTime),
		})
	}
	return rows, nil
}

// WormholeRow compares orbital content transport against a WAN push (E14).
type WormholeRow struct {
	Route       string
	ObjectTB    float64
	TransitMin  float64
	WANHours    float64
	WormholeWin bool
}

// Wormholing (E14) quantifies §5's "content wormholing": carrying bulk
// content on a crossing satellite instead of pushing it over the WAN.
func (s *Suite) Wormholing() ([]WormholeRow, error) {
	routes := []struct {
		name     string
		src, dst string
	}{
		{"New York -> London", "New York, US", "London, GB"},
		{"Frankfurt -> Nairobi", "Frankfurt, DE", "Nairobi, KE"},
		{"Tokyo -> Sydney", "Tokyo, JP", "Sydney, AU"},
	}
	sizes := []int64{1 << 40, 50 << 40} // 1 TB and 50 TB
	const wanRate = 10e9                // provisioned 10 Gbps WAN path
	var rows []WormholeRow
	for _, r := range routes {
		src, ok1 := geo.CityByName(r.src)
		dst, ok2 := geo.CityByName(r.dst)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("experiments: unknown wormhole route %q", r.name)
		}
		for _, size := range sizes {
			sys, err := s.newSystem(spacecdn.DefaultConfig())
			if err != nil {
				return nil, err
			}
			obj := content.Object{ID: content.ID(fmt.Sprintf("bulk-%s-%d", r.name, size)), Bytes: size}
			transit, wan, wins, err := sys.WormholeAdvantage(src.Loc, dst.Loc, obj, 0, 3*time.Hour, wanRate)
			if err != nil {
				return nil, err
			}
			rows = append(rows, WormholeRow{
				Route:       r.name,
				ObjectTB:    float64(size) / (1 << 40),
				TransitMin:  transit.Minutes(),
				WANHours:    wan.Hours(),
				WormholeWin: wins,
			})
		}
	}
	return rows, nil
}

// VMRow summarizes Space-VM service continuity for one area (E15).
type VMRow struct {
	City             string
	Handovers        int
	MeanDowntimeMs   float64
	MaxDowntimeMs    float64
	ColdDowntimeMs   float64 // total downtime without proactive sync
	Availability     float64
	ColdAvailability float64
}

// SpaceVMs (E15) quantifies §5's replicated-VM sketch: service downtime per
// satellite handover with and without proactive state-delta streaming.
func (s *Suite) SpaceVMs() ([]VMRow, error) {
	areas := []string{"Buenos Aires, AR", "Frankfurt, DE", "Nairobi, KE"}
	dur := 30 * time.Minute
	if s.Fast {
		dur = 15 * time.Minute
	}
	var rows []VMRow
	for _, name := range areas {
		city, ok := geo.CityByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown VM area %q", name)
		}
		sys, err := s.newSystem(spacecdn.DefaultConfig())
		if err != nil {
			return nil, err
		}
		warm, err := sys.SimulateVMService(city.Loc, 0, dur, spacecdn.DefaultVMConfig())
		if err != nil {
			return nil, err
		}
		coldCfg := spacecdn.DefaultVMConfig()
		coldCfg.Proactive = false
		cold, err := sys.SimulateVMService(city.Loc, 0, dur, coldCfg)
		if err != nil {
			return nil, err
		}
		row := VMRow{
			City:             city.Name,
			Handovers:        len(warm.Handovers),
			MaxDowntimeMs:    msF(warm.MaxDowntime),
			ColdDowntimeMs:   msF(cold.TotalDowntime),
			Availability:     warm.Availability,
			ColdAvailability: cold.Availability,
		}
		if len(warm.Handovers) > 0 {
			row.MeanDowntimeMs = msF(warm.TotalDowntime) / float64(len(warm.Handovers))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func msF(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
