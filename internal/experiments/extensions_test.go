package experiments

import (
	"testing"
)

func TestGeoBlocking(t *testing.T) {
	s := testSuite(t)
	rows, err := s.GeoBlocking()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	byISO := map[string]GeoBlockRow{}
	for _, r := range rows {
		byISO[r.Country] = r
		// Terrestrial clients are geolocated correctly: never spuriously
		// blocked.
		if r.TerrestrialSpuriousRate != 0 {
			t.Errorf("%s terrestrial spurious rate = %v", r.Country, r.TerrestrialSpuriousRate)
		}
		if r.Requests == 0 {
			t.Errorf("%s has no requests", r.Country)
		}
	}
	// Countries whose PoP sits abroad suffer spurious blocks; countries with
	// a domestic PoP do not.
	for _, iso := range []string{"MZ", "KE", "ZM"} {
		r := byISO[iso]
		if r.PoPISO == iso {
			t.Errorf("%s unexpectedly has a domestic PoP", iso)
		}
		if r.StarlinkSpuriousRate <= 0 {
			t.Errorf("%s Starlink spurious rate = %v, want > 0", iso, r.StarlinkSpuriousRate)
		}
	}
	for _, iso := range []string{"DE", "ES", "US", "NG"} {
		r := byISO[iso]
		if r.PoPISO != iso {
			t.Errorf("%s should have a domestic PoP, got %s", iso, r.PoPISO)
			continue
		}
		if r.StarlinkSpuriousRate != 0 {
			t.Errorf("%s with domestic PoP has spurious blocks: %v", iso, r.StarlinkSpuriousRate)
		}
	}
	// Sorted by descending spurious rate.
	for i := 1; i < len(rows); i++ {
		if rows[i].StarlinkSpuriousRate > rows[i-1].StarlinkSpuriousRate {
			t.Fatal("rows not sorted")
		}
	}
}

func TestGroundExpansion(t *testing.T) {
	s := testSuite(t)
	rows, err := s.GroundExpansion()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Expansion must shrink both the PoP distance and the latency floor.
		if r.ExpandedDist >= r.BaselineDist {
			t.Errorf("%s: distance did not shrink (%.0f -> %.0f km)",
				r.Country, r.BaselineDist, r.ExpandedDist)
		}
		if r.ExpandedMs >= r.BaselineMs {
			t.Errorf("%s: latency did not improve (%.1f -> %.1f ms)",
				r.Country, r.BaselineMs, r.ExpandedMs)
		}
		// §5's claim: the best case hovers around 20-30 ms even with local
		// infrastructure (scheduling floor + radio legs).
		if r.ExpandedMs < 20 || r.ExpandedMs > 45 {
			t.Errorf("%s expanded floor = %.1f ms, want ~20-40", r.Country, r.ExpandedMs)
		}
	}
}

func TestDutyCycleSweep(t *testing.T) {
	s := testSuite(t)
	rows, err := s.DutyCycleSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].FractionPct <= rows[i-1].FractionPct {
			t.Fatal("fractions out of order")
		}
		// More caching never hurts the median (allow small sampling noise).
		if rows[i].MedianMs > rows[i-1].MedianMs+2 {
			t.Errorf("median not monotone: %d%% %.1f -> %d%% %.1f",
				rows[i-1].FractionPct, rows[i-1].MedianMs,
				rows[i].FractionPct, rows[i].MedianMs)
		}
	}
	// Full fleet: hops mostly 0-1 for 4/plane placement.
	full := rows[len(rows)-1]
	if full.FractionPct != 100 || full.MedianHops > 1 {
		t.Errorf("full-fleet row wrong: %+v", full)
	}
	// Everything found within the bound at >= 30%.
	for _, r := range rows {
		if r.FractionPct >= 30 && r.FoundRate < 0.95 {
			t.Errorf("%d%%: found rate %.2f", r.FractionPct, r.FoundRate)
		}
	}
}

func TestStripingAblation(t *testing.T) {
	s := testSuite(t)
	rows, err := s.StripingAblation()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Segments == 0 || r.Satellites < 2 {
			t.Errorf("%s: degenerate plan %+v", r.City, r)
		}
		// Preloading serves everything from space and improves startup.
		if r.WarmFromSpace != r.Segments {
			t.Errorf("%s: warm playback served %d/%d from space", r.City, r.WarmFromSpace, r.Segments)
		}
		if r.ColdFromGround != r.Segments {
			t.Errorf("%s: cold playback should be all bent-pipe", r.City)
		}
		if r.WarmStartupMs >= r.ColdStartupMs {
			t.Errorf("%s: preloading did not improve startup (%.0f vs %.0f ms)",
				r.City, r.WarmStartupMs, r.ColdStartupMs)
		}
		if r.WarmStallTimeMs > r.ColdStallTimeMs {
			t.Errorf("%s: preloading increased stalls", r.City)
		}
	}
}

func TestWormholing(t *testing.T) {
	s := testSuite(t)
	rows, err := s.Wormholing()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 routes x 2 sizes
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TransitMin <= 0 {
			t.Errorf("%s: non-positive transit", r.Route)
		}
		// The 50 TB pre-position always wins against a 10 Gbps WAN
		// (12+ hours of WAN transfer vs tens of minutes of orbit).
		if r.ObjectTB == 50 && !r.WormholeWin {
			t.Errorf("%s: 50 TB wormhole should win (transit %.0f min vs WAN %.1f h)",
				r.Route, r.TransitMin, r.WANHours)
		}
	}
}

func TestSpaceVMs(t *testing.T) {
	s := testSuite(t)
	rows, err := s.SpaceVMs()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Handovers < 1 {
			t.Errorf("%s: no handovers in the window", r.City)
		}
		if r.Availability <= r.ColdAvailability {
			t.Errorf("%s: proactive sync should beat cold migration", r.City)
		}
		if r.Availability < 0.99 {
			t.Errorf("%s: availability %.4f too low", r.City, r.Availability)
		}
		if r.MeanDowntimeMs <= 0 || r.MaxDowntimeMs < r.MeanDowntimeMs {
			t.Errorf("%s: inconsistent downtimes %+v", r.City, r)
		}
	}
}
