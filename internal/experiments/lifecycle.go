package experiments

import (
	"fmt"
	"time"

	"spacecdn/internal/constellation"
	"spacecdn/internal/content"
	"spacecdn/internal/faults"
	"spacecdn/internal/geo"
	"spacecdn/internal/lifecycle"
	"spacecdn/internal/spacecdn"
	"spacecdn/internal/stats"
)

// This file drives the content lifecycle subsystem end to end (experiment id
// "lifecycle"): a sweep over TTL class mixes, churn rates, and purge rates
// through the versioned serving path on a two-tier store, a flash-crowd
// batch proving request coalescing collapses origin fan-in, purge floods
// over healthy and fault-masked topologies with their inconsistency
// windows, and a replay proving the disabled path is byte-identical to the
// pre-lifecycle pipeline. CI emits the result as BENCH_lifecycle.json and
// the bench-regression gate holds every commit to its bands.

// lifecycleMix is one TTL class mix point of the sweep: the catalog
// fractions assigned to each dynamic class (the remainder stays static).
type lifecycleMix struct {
	name string
	news float64
	live float64
	api  float64
}

func lifecycleMixes() []lifecycleMix {
	return []lifecycleMix{
		{name: "static"},
		{name: "mixed", news: 0.3, live: 0.1, api: 0.1},
		{name: "dynamic", news: 0.4, live: 0.3, api: 0.2},
	}
}

// LifecycleRow is one sweep cell: a class mix served under one churn rate
// (sim-time advance per request batch, which is what ages TTLs) and one
// purge rate.
type LifecycleRow struct {
	Mix           string
	StepSeconds   float64
	PurgesPerStep int
	Steps         int
	Requests      int
	Errors        int

	// Serve mix over successful requests.
	FreshShare   float64
	StaleShare   float64
	ExpiredShare float64
	MissShare    float64

	// Origin traffic and coalescing.
	OriginNeeded  int64
	OriginFetches int64
	Coalesced     int64

	// Purge-driven effects.
	Inconsistent      int64
	PurgesIssued      int64
	PurgeWindowMsMean float64

	// Two-tier store movement.
	HotHits    int64
	BulkHits   int64
	Promotions int64
	Demotions  int64
}

// LifecycleResult is the outcome of the lifecycle experiment.
type LifecycleResult struct {
	Rows []LifecycleRow
	// TTLResponse: the serve mix responded to the TTL sweep — the dynamic
	// mix under fast churn served a strictly smaller fresh share than the
	// same mix under slow churn, and the static mix never left fresh/miss.
	TTLResponse bool

	// Flash crowd: one batch of identical cold requests per cell.
	FlashRequests      int
	FlashCells         int
	FlashOriginNeeded  int64
	FlashOriginFetches int64
	FlashCoalesced     int64
	// ReductionX is origin contacts needed over flights actually dispatched
	// (the coalescing win; acceptance floor is 10x).
	ReductionX float64

	// Purge flood over the healthy topology.
	PurgeTotalSats int
	PurgeReached   int
	ConvergedAll   bool
	PurgeWindowMs  float64 // issue-to-last-receipt
	PurgeMeanMs    float64 // mean receipt latency
	PurgeP99Ms     float64
	// PreReceiptInconsistent counts serves of the superseded version before
	// the serving satellite's receipt — the inconsistency window observed
	// from the client side.
	PreReceiptInconsistent int64

	// Purge flood over a fault-masked topology: dead satellites never
	// receive, bounding convergence at the live population.
	MaskedDeadSats int
	MaskedReached  int

	// DisabledIdentical: with no TTLs and no purges, the resolve stream was
	// byte-identical to a system without the subsystem attached.
	DisabledIdentical bool
}

// lifecycleTiers sizes the per-satellite two-tier store for the sweep:
// a hot tier a few objects deep so re-reference pressure forces real
// promotion/demotion traffic over the bulk tier.
func lifecycleTiers() spacecdn.TierSizing {
	return spacecdn.TierSizing{HotBytes: 2 << 20, BulkBytes: 16 << 20}
}

// lifecycleCatalog builds the sweep catalog for one mix.
func (s *Suite) lifecycleCatalog(mix lifecycleMix) (*content.Catalog, error) {
	cfg := content.DefaultCatalogConfig()
	cfg.Seed = s.Seed
	cfg.Objects = 2000
	if s.Fast {
		cfg.Objects = 400
	}
	cfg.NewsFraction = mix.news
	cfg.LiveFraction = mix.live
	cfg.APIFraction = mix.api
	return content.GenerateCatalog(cfg)
}

// lifecycleCities returns the client population for the sweep, kept small:
// every row builds its own system and replays the same request schedule.
func (s *Suite) lifecycleCities() []geo.City {
	cities := s.clientCities()
	if len(cities) > 16 {
		cities = cities[:16]
	}
	return cities
}

// Lifecycle runs the content lifecycle experiment. Every phase is
// deterministic for any worker count: batches go through ResolveAll's
// fixed-shard two-phase form, purge floods are pure functions of the
// topology, and all randomness forks off the suite seed.
func (s *Suite) Lifecycle() (LifecycleResult, error) {
	res := LifecycleResult{}
	if err := s.lifecycleSweep(&res); err != nil {
		return res, err
	}
	if err := s.lifecycleFlashCrowd(&res); err != nil {
		return res, err
	}
	if err := s.lifecyclePurge(&res); err != nil {
		return res, err
	}
	if err := s.lifecycleDisabledReplay(&res); err != nil {
		return res, err
	}
	return res, nil
}

// lifecycleSweep fills res.Rows: mixes x churn (step seconds) x purge rate.
func (s *Suite) lifecycleSweep(res *LifecycleResult) error {
	steps := 10
	reqsPerCity := 6
	if s.Fast {
		steps = 6
		reqsPerCity = 4
	}
	cities := s.lifecycleCities()
	churns := []time.Duration{15 * time.Second, 90 * time.Second}
	purgeRates := []int{0, 2}
	row := 0
	for _, mix := range lifecycleMixes() {
		cat, err := s.lifecycleCatalog(mix)
		if err != nil {
			return err
		}
		for _, step := range churns {
			for _, purges := range purgeRates {
				r, err := s.lifecycleRow(mix, cat, cities, steps, reqsPerCity, step, purges, row)
				if err != nil {
					return fmt.Errorf("lifecycle row %s/%v/%d: %w", mix.name, step, purges, err)
				}
				res.Rows = append(res.Rows, r)
				row++
			}
		}
	}
	// The TTL-response acceptance: under the dynamic mix, faster churn
	// (more sim time per batch) must strictly erode the fresh share, while
	// the static mix never produces stale or expired serves at all.
	share := func(mixName string, step time.Duration, purges int) *LifecycleRow {
		for i := range res.Rows {
			r := &res.Rows[i]
			if r.Mix == mixName && r.StepSeconds == step.Seconds() && r.PurgesPerStep == purges {
				return r
			}
		}
		return nil
	}
	slow := share("dynamic", churns[0], 0)
	fast := share("dynamic", churns[1], 0)
	static := share("static", churns[1], 0)
	res.TTLResponse = slow != nil && fast != nil && static != nil &&
		fast.FreshShare < slow.FreshShare &&
		fast.StaleShare+fast.ExpiredShare > 0 &&
		static.StaleShare == 0 && static.ExpiredShare == 0
	return nil
}

// lifecycleRow runs one sweep cell on a fresh system.
func (s *Suite) lifecycleRow(mix lifecycleMix, cat *content.Catalog, cities []geo.City,
	steps, reqsPerCity int, step time.Duration, purges, rowIdx int) (LifecycleRow, error) {
	row := LifecycleRow{
		Mix: mix.name, StepSeconds: step.Seconds(), PurgesPerStep: purges, Steps: steps,
	}
	sys, err := s.newSystem(spacecdn.DefaultConfig())
	if err != nil {
		return row, err
	}
	if err := sys.UseTieredStore(lifecycleTiers()); err != nil {
		return row, err
	}
	sys.SetLifecycle(lifecycle.NewManager(lifecycle.DefaultPolicy(), sys.Constellation().Total()))

	rng := stats.NewRand(s.Seed).Fork("lifecycle").Fork(fmt.Sprintf("row-%d", rowIdx))
	cur := s.sweepCursor(0)
	defer cur.Close()

	// Initial placement: the hottest objects of each city's region land on
	// its overhead satellite, stamped at t=0 so the sweep ages them.
	seed := cur.AdvanceTo(0)
	for _, city := range cities {
		if up, ok := seed.BestVisible(city.Loc); ok {
			for _, o := range cat.TopN(city.Region, 8) {
				sys.StoreVersioned(up.ID, o, 0)
			}
		}
	}

	var windowMsSum float64
	var windows int
	purgeIdx := 0
	for i := 0; i < steps; i++ {
		at := time.Duration(i) * step
		snap := cur.AdvanceTo(at)
		reqs := make([]spacecdn.Request, 0, len(cities)*reqsPerCity)
		for _, city := range cities {
			for k := 0; k < reqsPerCity; k++ {
				reqs = append(reqs, spacecdn.Request{
					Client: city.Loc, ISO2: city.Country, Obj: cat.Sample(city.Region, rng),
				})
			}
		}
		for _, r := range sys.ResolveAll(reqs, snap, rng, s.Workers) {
			row.Requests++
			if r.Err != nil {
				row.Errors++
			}
		}
		// Purge the hottest objects round-robin: content updates arriving
		// from the origin, flooded fleet-wide at this step's topology.
		for p := 0; p < purges; p++ {
			obj := cat.ByRank(cities[0].Region, purgeIdx%16)
			purgeIdx++
			pr, err := sys.IssuePurge(obj.ID, cities[purgeIdx%len(cities)].Loc, snap)
			if err != nil {
				return row, err
			}
			windowMsSum += float64(pr.Window()) / float64(time.Millisecond)
			windows++
		}
	}

	ls := sys.LifecycleStats()
	served := float64(ls.FreshServes + ls.StaleServes + ls.ExpiredServes + ls.MissServes)
	if served > 0 {
		row.FreshShare = float64(ls.FreshServes) / served
		row.StaleShare = float64(ls.StaleServes) / served
		row.ExpiredShare = float64(ls.ExpiredServes) / served
		row.MissShare = float64(ls.MissServes) / served
	}
	row.OriginNeeded = ls.OriginNeeded
	row.OriginFetches = ls.OriginFetches
	row.Coalesced = ls.Coalesced
	row.Inconsistent = ls.InconsistentServes
	row.PurgesIssued = ls.PurgesIssued
	if windows > 0 {
		row.PurgeWindowMsMean = windowMsSum / float64(windows)
	}
	row.HotHits = ls.HotHits
	row.BulkHits = ls.BulkHits
	row.Promotions = ls.Promotions
	row.Demotions = ls.Demotions
	return row, nil
}

// lifecycleFlashCrowd proves coalescing: every cell's crowd of identical
// cold requests collapses to one origin flight per cell.
func (s *Suite) lifecycleFlashCrowd(res *LifecycleResult) error {
	sys, err := s.newSystem(spacecdn.DefaultConfig())
	if err != nil {
		return err
	}
	sys.SetLifecycle(lifecycle.NewManager(lifecycle.DefaultPolicy(), sys.Constellation().Total()))
	cities := s.lifecycleCities()
	if len(cities) > 8 {
		cities = cities[:8]
	}
	const crowd = 25
	viral := content.Object{ID: "lc-viral", Bytes: 8 << 20, Region: geo.RegionEurope, Class: content.ClassNews}
	reqs := make([]spacecdn.Request, 0, crowd*len(cities))
	cells := map[int]struct{}{}
	for _, city := range cities {
		cells[lifecycle.Cell(city.Loc)] = struct{}{}
		for k := 0; k < crowd; k++ {
			reqs = append(reqs, spacecdn.Request{Client: city.Loc, ISO2: city.Country, Obj: viral})
		}
	}
	snap := s.Env.Constellation.Snapshot(0)
	rng := stats.NewRand(s.Seed).Fork("lifecycle-flash")
	for _, r := range sys.ResolveAll(reqs, snap, rng, s.Workers) {
		if r.Err != nil {
			return fmt.Errorf("flash crowd resolve: %w", r.Err)
		}
	}
	ls := sys.LifecycleStats()
	res.FlashRequests = len(reqs)
	res.FlashCells = len(cells)
	res.FlashOriginNeeded = ls.OriginNeeded
	res.FlashOriginFetches = ls.OriginFetches
	res.FlashCoalesced = ls.Coalesced
	if ls.OriginFetches > 0 {
		res.ReductionX = float64(ls.OriginNeeded) / float64(ls.OriginFetches)
	}
	return nil
}

// lifecyclePurge measures flood convergence: healthy (every satellite
// receives, finite window) and fault-masked (dead satellites never do).
func (s *Suite) lifecyclePurge(res *LifecycleResult) error {
	sys, err := s.newSystem(spacecdn.DefaultConfig())
	if err != nil {
		return err
	}
	// Zero TTL policy: only the purge drives classification here.
	total := sys.Constellation().Total()
	sys.SetLifecycle(lifecycle.NewManager(lifecycle.Policy{}, total))
	city := s.lifecycleCities()[0]
	snap := s.Env.Constellation.Snapshot(0)
	obj := content.Object{ID: "lc-purged", Bytes: 8 << 20, Region: city.Region}
	up, ok := snap.BestVisible(city.Loc)
	if !ok {
		return fmt.Errorf("no satellite visible from %s", city.Name)
	}
	sys.StoreVersioned(up.ID, obj, 0)

	pr, err := sys.IssuePurge(obj.ID, city.Loc, snap)
	if err != nil {
		return err
	}
	res.PurgeTotalSats = total
	res.PurgeReached = pr.Reached
	res.ConvergedAll = pr.Reached == total
	res.PurgeWindowMs = float64(pr.Window()) / float64(time.Millisecond)
	var ms []float64
	var sum float64
	for _, r := range pr.Receipts {
		if r >= 0 {
			m := float64(r-pr.IssuedAt) / float64(time.Millisecond)
			ms = append(ms, m)
			sum += m
		}
	}
	if len(ms) > 0 {
		res.PurgeMeanMs = sum / float64(len(ms))
		res.PurgeP99Ms = stats.NewCDF(ms).Quantile(0.99)
	}
	// Inside the window the old version still serves — the client-visible
	// inconsistency the receipts bound.
	if _, err := sys.Resolve(city.Loc, city.Country, obj, snap, stats.NewRand(s.Seed)); err != nil {
		return err
	}
	res.PreReceiptInconsistent = sys.LifecycleStats().InconsistentServes

	// Masked flood: kill a satellite band; the flood routes around it but
	// those caches never learn of the purge (stale-while-partitioned).
	masked, err := s.newSystem(spacecdn.DefaultConfig())
	if err != nil {
		return err
	}
	masked.SetLifecycle(lifecycle.NewManager(lifecycle.Policy{}, total))
	const deadSats = 40
	outages := make([]faults.Outage, 0, deadSats)
	for i := 0; i < deadSats; i++ {
		outages = append(outages, faults.Outage{
			Kind: faults.KindSatellite, Sat: constellation.SatID(100 + i), Start: 0, End: time.Hour,
		})
	}
	masked.SetFaultPlan(faults.NewPlanFromOutages(total, outages))
	mr, err := masked.IssuePurge(obj.ID, city.Loc, snap)
	if err != nil {
		return err
	}
	res.MaskedDeadSats = deadSats
	res.MaskedReached = mr.Reached
	return nil
}

// lifecycleDisabledReplay proves the inert path: a system with the
// subsystem attached but no TTLs and no purges replays a mixed workload
// byte-identically to a system without it.
func (s *Suite) lifecycleDisabledReplay(res *LifecycleResult) error {
	build := func(withManager bool) (*spacecdn.System, error) {
		sys, err := s.newSystem(spacecdn.DefaultConfig())
		if err != nil {
			return nil, err
		}
		if withManager {
			sys.SetLifecycle(lifecycle.NewManager(lifecycle.Policy{}, sys.Constellation().Total()))
		}
		return sys, nil
	}
	with, err := build(true)
	if err != nil {
		return err
	}
	without, err := build(false)
	if err != nil {
		return err
	}
	cities := s.lifecycleCities()
	identical := true
	for _, at := range []time.Duration{0, 42 * time.Second} {
		snap := s.Env.Constellation.Snapshot(at)
		reqs := make([]spacecdn.Request, 0, 2*len(cities))
		for i, city := range cities {
			hot := content.Object{ID: content.ID(fmt.Sprintf("lc-replay-%d", i)), Bytes: 4 << 20, Region: city.Region}
			if up, ok := snap.BestVisible(city.Loc); ok {
				with.Store(up.ID, hot)
				without.Store(up.ID, hot)
			}
			cold := content.Object{ID: content.ID(fmt.Sprintf("lc-replay-cold-%d", i)), Bytes: 4 << 20, Region: city.Region}
			reqs = append(reqs,
				spacecdn.Request{Client: city.Loc, ISO2: city.Country, Obj: hot},
				spacecdn.Request{Client: city.Loc, ISO2: city.Country, Obj: cold})
		}
		a := with.ResolveAll(reqs, snap, stats.NewRand(s.Seed), s.Workers)
		b := without.ResolveAll(reqs, snap, stats.NewRand(s.Seed), s.Workers)
		for i := range a {
			if (a[i].Err == nil) != (b[i].Err == nil) || a[i].Resolution != b[i].Resolution {
				identical = false
			}
		}
	}
	if ls := with.LifecycleStats(); ls != (spacecdn.LifecycleStats{}) {
		identical = false
	}
	res.DisabledIdentical = identical
	return nil
}
