package experiments

import (
	"reflect"
	"testing"
)

func TestLifecycleExperiment(t *testing.T) {
	s := testSuite(t)
	res, err := s.Lifecycle()
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(lifecycleMixes()) * 2 * 2
	if len(res.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(res.Rows), wantRows)
	}
	for _, r := range res.Rows {
		if r.Requests == 0 || r.Errors > 0 {
			t.Fatalf("row %s/%v/%d: requests %d errors %d", r.Mix, r.StepSeconds, r.PurgesPerStep, r.Requests, r.Errors)
		}
		sum := r.FreshShare + r.StaleShare + r.ExpiredShare + r.MissShare
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("row %s/%v/%d: serve shares sum to %v", r.Mix, r.StepSeconds, r.PurgesPerStep, sum)
		}
		if r.OriginNeeded != r.OriginFetches+r.Coalesced {
			t.Fatalf("row %s/%v/%d: needed %d != fetches %d + coalesced %d",
				r.Mix, r.StepSeconds, r.PurgesPerStep, r.OriginNeeded, r.OriginFetches, r.Coalesced)
		}
		if r.PurgesPerStep == 0 {
			if r.PurgesIssued != 0 || r.PurgeWindowMsMean != 0 {
				t.Fatalf("row %s/%v/0 reports purge activity: %+v", r.Mix, r.StepSeconds, r)
			}
			if r.Mix == "static" && (r.StaleShare != 0 || r.ExpiredShare != 0) {
				t.Fatalf("static mix without purges produced non-fresh serves: %+v", r)
			}
		} else if r.PurgesIssued == 0 || r.PurgeWindowMsMean <= 0 {
			t.Fatalf("row %s/%v/%d missing purge activity: %+v", r.Mix, r.StepSeconds, r.PurgesPerStep, r)
		}
		if r.Promotions > r.BulkHits {
			t.Fatalf("row %s/%v/%d: %d promotions exceed %d bulk hits",
				r.Mix, r.StepSeconds, r.PurgesPerStep, r.Promotions, r.BulkHits)
		}
	}
	if !res.TTLResponse {
		t.Error("serve mix did not respond to the TTL sweep")
	}
	if res.ReductionX < 10 {
		t.Errorf("coalescing reduction %.1fx below the 10x acceptance floor", res.ReductionX)
	}
	if res.FlashOriginNeeded != res.FlashOriginFetches+res.FlashCoalesced {
		t.Errorf("flash accounting: %d != %d + %d", res.FlashOriginNeeded, res.FlashOriginFetches, res.FlashCoalesced)
	}
	if int64(res.FlashCells) != res.FlashOriginFetches {
		t.Errorf("flights %d != populated cells %d", res.FlashOriginFetches, res.FlashCells)
	}
	if !res.ConvergedAll || res.PurgeReached != res.PurgeTotalSats {
		t.Errorf("healthy purge reached %d/%d", res.PurgeReached, res.PurgeTotalSats)
	}
	if res.PurgeWindowMs <= 0 || res.PurgeMeanMs <= 0 || res.PurgeP99Ms > res.PurgeWindowMs {
		t.Errorf("purge window malformed: window %v mean %v p99 %v", res.PurgeWindowMs, res.PurgeMeanMs, res.PurgeP99Ms)
	}
	if res.PreReceiptInconsistent < 1 {
		t.Error("no inconsistent serve observed inside the purge window")
	}
	if res.MaskedReached != res.PurgeTotalSats-res.MaskedDeadSats {
		t.Errorf("masked purge reached %d, want %d live satellites",
			res.MaskedReached, res.PurgeTotalSats-res.MaskedDeadSats)
	}
	if !res.DisabledIdentical {
		t.Error("disabled lifecycle path diverged from the plain pipeline")
	}
}

func TestLifecycleWorkerInvariance(t *testing.T) {
	s := testSuite(t)
	defer s.SetWorkers(0)
	s.SetWorkers(1)
	seq, err := s.Lifecycle()
	if err != nil {
		t.Fatal(err)
	}
	s.SetWorkers(6)
	par, err := s.Lifecycle()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("results diverge across worker counts:\n  seq %+v\n  par %+v", seq, par)
	}
}
