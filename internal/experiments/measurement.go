package experiments

import (
	"fmt"
	"sort"

	"spacecdn/internal/geo"
	"spacecdn/internal/measure"
	"spacecdn/internal/stats"
)

// This file regenerates the measurement-study artifacts: Table 1 (E1),
// Figure 2 (E2), Figure 3 (E3), Figure 4 (E4) and Figure 5 (E5).

// Table1Row matches the paper's Table 1 schema: per country, the average
// distance to the best CDN and the median minimum RTT, on both networks.
type Table1Row struct {
	Country    string
	Name       string
	TerrDistKm float64
	TerrMinRTT float64
	StarDistKm float64
	StarMinRTT float64
}

// Table1Countries is the paper's row order.
var Table1Countries = []string{"GT", "MZ", "CY", "SZ", "HT", "KE", "ZM", "RW", "LT", "ES", "JP"}

// Table1 (E1) regenerates the paper's Table 1.
func (s *Suite) Table1() ([]Table1Row, error) {
	tests, err := s.AIM()
	if err != nil {
		return nil, err
	}
	byCountry := measure.ByCountry(measure.OptimalPerCity(tests))
	var rows []Table1Row
	for _, iso := range Table1Countries {
		nets, ok := byCountry[iso]
		if !ok {
			return nil, fmt.Errorf("experiments: no AIM data for %s", iso)
		}
		country, _ := geo.CountryByISO(iso)
		star, okS := nets[measure.NetworkStarlink]
		terr, okT := nets[measure.NetworkTerrestrial]
		if !okS || !okT {
			return nil, fmt.Errorf("experiments: %s missing a network", iso)
		}
		rows = append(rows, Table1Row{
			Country:    iso,
			Name:       country.Name,
			TerrDistKm: terr.AvgDistKm,
			TerrMinRTT: terr.MinRTTMs,
			StarDistKm: star.AvgDistKm,
			StarMinRTT: star.MinRTTMs,
		})
	}
	return rows, nil
}

// Fig2Row is one country's bar in Figure 2: the delta of median RTTs to the
// optimal CDN (Starlink minus terrestrial).
type Fig2Row struct {
	Country string
	DeltaMs float64
}

// Fig2PoP is a PoP marker on the Figure 2 map.
type Fig2PoP struct {
	Name string
	City string
	Loc  geo.Point
}

// Fig2 (E2) regenerates Figure 2: per-country deltas plus the 22 PoPs.
func (s *Suite) Fig2() ([]Fig2Row, []Fig2PoP, error) {
	tests, err := s.AIM()
	if err != nil {
		return nil, nil, err
	}
	countries, deltas := measure.DeltaByCountry(tests)
	rows := make([]Fig2Row, len(countries))
	for i := range countries {
		rows[i] = Fig2Row{Country: countries[i], DeltaMs: deltas[i]}
	}
	var pops []Fig2PoP
	for _, p := range s.Env.Ground.PoPs() {
		pops = append(pops, Fig2PoP{Name: p.Name, City: p.City, Loc: p.Loc})
	}
	return rows, pops, nil
}

// Fig3Result is the Maputo case study: median latency to every reachable
// CDN site on each network.
type Fig3Result struct {
	City        string
	Starlink    []measure.CityCDNLatency
	Terrestrial []measure.CityCDNLatency
}

// Fig3 (E3) regenerates Figure 3 for the paper's city (Maputo) — or any
// other city when cityName is non-empty.
func (s *Suite) Fig3(cityName string) (Fig3Result, error) {
	if cityName == "" {
		cityName = "Maputo"
	}
	tests, err := s.AIM()
	if err != nil {
		return Fig3Result{}, err
	}
	res := Fig3Result{
		City:        cityName,
		Starlink:    measure.PerCDNFromCity(tests, cityName, measure.NetworkStarlink),
		Terrestrial: measure.PerCDNFromCity(tests, cityName, measure.NetworkTerrestrial),
	}
	if len(res.Starlink) == 0 && len(res.Terrestrial) == 0 {
		return Fig3Result{}, fmt.Errorf("experiments: no AIM data for city %q", cityName)
	}
	return res, nil
}

// Fig4Countries is the paper's Figure 4 legend.
var Fig4Countries = []string{"CA", "GB", "DE", "NG"}

// Fig4Series is one country's CDF of HTTP-response-time differences.
type Fig4Series struct {
	Country string
	CDF     *stats.CDF
}

// Fig4 (E4) regenerates Figure 4: per-country CDFs of paired HRT
// differences (Starlink minus terrestrial).
func (s *Suite) Fig4() ([]Fig4Series, error) {
	web, err := s.Web()
	if err != nil {
		return nil, err
	}
	var out []Fig4Series
	for _, iso := range Fig4Countries {
		diffs := measure.HRTDifference(web, iso)
		if len(diffs) == 0 {
			return nil, fmt.Errorf("experiments: no paired web data for %s", iso)
		}
		out = append(out, Fig4Series{Country: iso, CDF: stats.NewCDF(diffs)})
	}
	return out, nil
}

// Fig5Row is one box of Figure 5: FCP distribution for a (country, network).
type Fig5Row struct {
	Country string
	Network measure.Network
	Box     stats.Boxplot
}

// Fig5 (E5) regenerates Figure 5: FCP boxplots for DE and GB on both
// networks.
func (s *Suite) Fig5() ([]Fig5Row, error) {
	web, err := s.Web()
	if err != nil {
		return nil, err
	}
	var out []Fig5Row
	for _, iso := range []string{"GB", "DE"} {
		byNet := measure.FCPByNetwork(web, iso)
		for _, net := range []measure.Network{measure.NetworkStarlink, measure.NetworkTerrestrial} {
			samples := byNet[net]
			if len(samples) == 0 {
				return nil, fmt.Errorf("experiments: no FCP samples for %s/%s", iso, net)
			}
			out = append(out, Fig5Row{Country: iso, Network: net, Box: stats.NewBoxplot(samples)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Country != out[j].Country {
			return out[i].Country < out[j].Country
		}
		return out[i].Network < out[j].Network
	})
	return out, nil
}
