package experiments

import (
	"fmt"
	"time"

	"spacecdn/internal/content"
	"spacecdn/internal/geo"
	"spacecdn/internal/parallel"
	"spacecdn/internal/spacecdn"
	"spacecdn/internal/stats"
)

// ParallelBenchResult reports batch-resolution throughput at one worker
// versus the suite's worker pool, over the same requests and seed. CI runs
// this (experiment id "parallel-bench") and uploads the JSON as a build
// artifact, so every commit records the engine's scaling on the runner.
type ParallelBenchResult struct {
	Requests     int     // batch size timed per run
	SeqWorkers   int     // always 1
	ParWorkers   int     // resolved pool size (GOMAXPROCS when Workers <= 0)
	SeqReqPerSec float64 // sequential throughput
	ParReqPerSec float64 // parallel throughput
	Speedup      float64 // ParReqPerSec / SeqReqPerSec
	Identical    bool    // parallel results matched sequential byte-for-byte
}

// ParallelBench times ResolveAll over the workload's hot/warm/cold request
// mix at workers=1 and workers=N, and verifies both runs returned identical
// results — the benchmark doubles as a determinism check on real hardware.
func (s *Suite) ParallelBench() (ParallelBenchResult, error) {
	sys, err := s.newSystem(spacecdn.DefaultConfig())
	if err != nil {
		return ParallelBenchResult{}, err
	}
	hot := content.Object{ID: "pb-hot", Bytes: 64 << 20, Region: geo.RegionEurope}
	warm := content.Object{ID: "pb-warm", Bytes: 256 << 20, Region: geo.RegionEurope}
	cold := content.Object{ID: "pb-cold", Bytes: 1 << 30, Region: geo.RegionEurope}
	if _, err := spacecdn.Apply(sys, spacecdn.PerPlaneSpacing{ReplicasPerPlane: 4}, hot); err != nil {
		return ParallelBenchResult{}, err
	}
	if _, err := spacecdn.Apply(sys, spacecdn.PerPlaneSpacing{ReplicasPerPlane: 1}, warm); err != nil {
		return ParallelBenchResult{}, err
	}
	snap := s.Env.Snapshot(0)
	cities := s.clientCities()
	base := make([]spacecdn.Request, 0, 3*len(cities))
	for _, city := range cities {
		if up, ok := snap.BestVisible(city.Loc); ok {
			sys.Store(up.ID, hot)
		}
		for _, o := range []content.Object{hot, warm, cold} {
			base = append(base, spacecdn.Request{Client: city.Loc, ISO2: city.Country, Obj: o})
		}
	}
	target := 6000
	if s.Fast {
		target = 1500
	}
	reqs := make([]spacecdn.Request, 0, target)
	for len(reqs) < target {
		reqs = append(reqs, base...)
	}
	reqs = reqs[:target]

	// Warm the lazy snapshot state so neither timed run pays the build.
	snap.ISLGraph()

	res := ParallelBenchResult{
		Requests:   len(reqs),
		SeqWorkers: 1,
		ParWorkers: parallel.Workers(s.Workers),
	}
	seqStart := time.Now()
	seq := sys.ResolveAll(reqs, snap, stats.NewRand(s.Seed), 1)
	seqDur := time.Since(seqStart)
	parStart := time.Now()
	par := sys.ResolveAll(reqs, snap, stats.NewRand(s.Seed), res.ParWorkers)
	parDur := time.Since(parStart)

	res.Identical = len(seq) == len(par)
	for i := 0; res.Identical && i < len(seq); i++ {
		if seq[i].Resolution != par[i].Resolution || (seq[i].Err == nil) != (par[i].Err == nil) {
			res.Identical = false
		}
	}
	if !res.Identical {
		return res, fmt.Errorf("experiments: parallel batch diverged from sequential")
	}
	res.SeqReqPerSec = float64(len(reqs)) / seqDur.Seconds()
	res.ParReqPerSec = float64(len(reqs)) / parDur.Seconds()
	res.Speedup = res.ParReqPerSec / res.SeqReqPerSec
	return res, nil
}
