package experiments

import (
	"fmt"
	"time"

	"spacecdn/internal/content"
	"spacecdn/internal/faults"
	"spacecdn/internal/geo"
	"spacecdn/internal/spacecdn"
	"spacecdn/internal/stats"
)

// This file implements the resilience experiment (id "resilience"): serve the
// workload's hot/warm/cold request mix through a degraded constellation and
// sweep the failure fraction against availability, tail-latency inflation,
// and the serving-source mix. CI emits the result as BENCH_resilience.json,
// so every commit records how gracefully the resolve path sheds load from
// space to ground as hardware dies.

// ResilienceRow aggregates one failure fraction of the sweep.
type ResilienceRow struct {
	// SatFraction is the satellite failure fraction this row injected; the
	// ISL and PoP fractions follow it (half and a quarter) unless the suite
	// pins them (FaultISLFraction / FaultPoPFraction >= 0).
	SatFraction float64
	ISLFraction float64
	PoPFraction float64
	// Outages is the number of planned outage windows across the horizon.
	Outages int

	Requests int
	Errors   int
	// Degraded counts requests that ran the fault-aware pipeline (at least
	// one outage active at their snapshot time).
	Degraded int64
	// Availability is the served fraction, 1 - Errors/Requests.
	Availability float64

	MedianMs float64
	P99Ms    float64
	// P99InflationPct is this row's p99 RTT relative to the zero-fault row,
	// in percent (0 for the baseline row itself).
	P99InflationPct float64

	// Source mix over served requests — the shift from space to ground is
	// the sweep's qualitative story.
	OverheadShare float64
	ISLShare      float64
	GroundShare   float64

	UplinkFailovers  int64
	ReplicaFailovers int64
	PoPFailovers     int64
}

// ResilienceResult is the outcome of a Resilience sweep.
type ResilienceResult struct {
	Rows []ResilienceRow
	// ZeroFaultIdentical reports that the zero-fraction row, replayed with no
	// fault plan attached at all, produced an identical result stream — the
	// acceptance proof that fault injection is free when nothing fails.
	ZeroFaultIdentical bool
}

// resilienceFractions returns the satellite failure fractions to sweep.
func (s *Suite) resilienceFractions() []float64 {
	if s.Fast {
		return []float64{0, 0.10, 0.30}
	}
	return []float64{0, 0.05, 0.10, 0.20, 0.35, 0.50}
}

// resilienceFaultConfig derives the fault-plan configuration for one
// satellite failure fraction.
func (s *Suite) resilienceFaultConfig(satFraction float64) faults.Config {
	cfg := faults.DefaultConfig()
	cfg.Seed = s.FaultSeed
	if cfg.Seed == 0 {
		cfg.Seed = s.Seed
	}
	cfg.SatFraction = satFraction
	cfg.ISLFraction = satFraction / 2
	if s.FaultISLFraction >= 0 {
		cfg.ISLFraction = s.FaultISLFraction
	}
	cfg.PoPFraction = satFraction / 4
	if s.FaultPoPFraction >= 0 {
		cfg.PoPFraction = s.FaultPoPFraction
	}
	return cfg
}

// popNames lists the ground-segment PoP codes fault plans draw from.
func (s *Suite) popNames() []string {
	pops := s.Env.Ground.PoPs()
	names := make([]string, len(pops))
	for i, p := range pops {
		names[i] = p.Name
	}
	return names
}

// Resilience sweeps the failure fraction and serves the workload mix through
// each degraded constellation. Every row deploys a fresh system so caches,
// fault counters and random draws are row-independent: rows differ only by
// their fault plan, and the whole sweep is reproducible for any worker count.
func (s *Suite) Resilience() (ResilienceResult, error) {
	res := ResilienceResult{}
	for _, f := range s.resilienceFractions() {
		cfg := s.resilienceFaultConfig(f)
		plan, err := faults.NewPlan(cfg, s.Env.Constellation, s.popNames())
		if err != nil {
			return res, err
		}
		row, stream, sys, err := s.resilienceRun(plan)
		if err != nil {
			return res, err
		}
		row.SatFraction = cfg.SatFraction
		row.ISLFraction = cfg.ISLFraction
		row.PoPFraction = cfg.PoPFraction
		row.Outages = len(plan.Outages())

		if f == 0 {
			// Acceptance check: with the (empty) plan attached the pipeline
			// must match a system with no fault injection at all, result for
			// result, and must never have entered the degraded path.
			bare, bareStream, bareSys, err := s.resilienceRun(nil)
			if err != nil {
				return res, err
			}
			res.ZeroFaultIdentical = row.Requests == bare.Requests &&
				sys.FaultStats() == (spacecdn.FaultStats{}) &&
				bareSys.FaultStats() == (spacecdn.FaultStats{}) &&
				streamsEqual(stream, bareStream)
			if !res.ZeroFaultIdentical {
				return res, fmt.Errorf("experiments: zero-fault resilience row diverged from the plan-free pipeline")
			}
		}
		res.Rows = append(res.Rows, row)
	}
	// Tail inflation is relative to the zero-fault row (always Rows[0]).
	base := res.Rows[0].P99Ms
	for i := range res.Rows {
		if base > 0 {
			res.Rows[i].P99InflationPct = 100 * (res.Rows[i].P99Ms/base - 1)
		}
	}
	return res, nil
}

// resilienceRun deploys a fresh system, attaches the plan (nil for a bare
// system), and serves the workload mix at every snapshot time. It returns the
// aggregated row, the raw result stream (request order), and the system so
// the caller can read its fault counters.
func (s *Suite) resilienceRun(plan *faults.Plan) (ResilienceRow, []spacecdn.BatchResult, *spacecdn.System, error) {
	sys, err := s.newSystem(spacecdn.DefaultConfig())
	if err != nil {
		return ResilienceRow{}, nil, nil, err
	}
	if plan != nil {
		sys.SetFaultPlan(plan)
	}
	hot := content.Object{ID: "rs-hot", Bytes: 64 << 20, Region: geo.RegionEurope}
	warm := content.Object{ID: "rs-warm", Bytes: 256 << 20, Region: geo.RegionEurope}
	cold := content.Object{ID: "rs-cold", Bytes: 1 << 30, Region: geo.RegionEurope}
	if _, err := spacecdn.Apply(sys, spacecdn.PerPlaneSpacing{ReplicasPerPlane: 4}, hot); err != nil {
		return ResilienceRow{}, nil, nil, err
	}
	if _, err := spacecdn.Apply(sys, spacecdn.PerPlaneSpacing{ReplicasPerPlane: 1}, warm); err != nil {
		return ResilienceRow{}, nil, nil, err
	}

	// Every run forks the same stream, so two runs over the same plan state
	// draw identical jitter — the zero-fault identity check depends on it.
	rng := stats.NewRand(s.Seed).Fork("resilience")
	var stream []spacecdn.BatchResult
	cur := s.sweepCursor(s.snapshotTimes()[0])
	defer cur.Close()
	for _, at := range s.snapshotTimes() {
		snap := cur.AdvanceTo(at)
		// Placement pass, as in ResolveWorkload: pin the hot object on each
		// client's overhead satellite, sequentially, before anything resolves.
		// Placement ignores the fault state — a dead satellite's cache keeps
		// its contents; the outage only makes them unreachable.
		reqs := make([]spacecdn.Request, 0, 3*len(s.clientCities()))
		for _, city := range s.clientCities() {
			if up, ok := snap.BestVisible(city.Loc); ok {
				sys.Store(up.ID, hot)
			}
			for _, o := range []content.Object{hot, warm, cold} {
				reqs = append(reqs, spacecdn.Request{Client: city.Loc, ISO2: city.Country, Obj: o})
			}
		}
		stream = append(stream, sys.ResolveAll(reqs, snap, rng, s.Workers)...)
	}

	row := ResilienceRow{Requests: len(stream)}
	var ms []float64
	served := [3]int{}
	for _, r := range stream {
		if r.Err != nil {
			row.Errors++
			continue
		}
		served[r.Source]++
		ms = append(ms, float64(r.RTT)/float64(time.Millisecond))
	}
	if row.Requests > 0 {
		row.Availability = float64(row.Requests-row.Errors) / float64(row.Requests)
	}
	if n := row.Requests - row.Errors; n > 0 {
		cdf := stats.NewCDF(ms)
		row.MedianMs = cdf.Median()
		row.P99Ms = cdf.Quantile(0.99)
		row.OverheadShare = float64(served[spacecdn.SourceOverhead]) / float64(n)
		row.ISLShare = float64(served[spacecdn.SourceISL]) / float64(n)
		row.GroundShare = float64(served[spacecdn.SourceGround]) / float64(n)
	}
	fs := sys.FaultStats()
	row.Degraded = fs.DegradedRequests
	row.UplinkFailovers = fs.UplinkFailovers
	row.ReplicaFailovers = fs.ReplicaFailovers
	row.PoPFailovers = fs.PoPFailovers
	return row, stream, sys, nil
}

// streamsEqual compares two result streams element-wise: same resolutions,
// errors in the same positions.
func streamsEqual(a, b []spacecdn.BatchResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Resolution != b[i].Resolution || (a[i].Err == nil) != (b[i].Err == nil) {
			return false
		}
	}
	return true
}
