package experiments

import (
	"reflect"
	"testing"
)

func TestResilience(t *testing.T) {
	s := testSuite(t)
	res, err := s.Resilience()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Rows), len(s.resilienceFractions()); got != want {
		t.Fatalf("rows = %d, want %d", got, want)
	}
	if !res.ZeroFaultIdentical {
		t.Error("zero-fault row not identical to the plan-free pipeline")
	}

	base := res.Rows[0]
	if base.SatFraction != 0 || base.ISLFraction != 0 || base.PoPFraction != 0 {
		t.Errorf("baseline row has nonzero fractions: %+v", base)
	}
	if base.Degraded != 0 || base.Outages != 0 {
		t.Errorf("baseline row saw faults: %+v", base)
	}
	if base.Errors != 0 || base.Availability != 1 {
		t.Errorf("baseline row not fully available: %+v", base)
	}
	if base.P99InflationPct != 0 {
		t.Errorf("baseline inflation = %v, want 0", base.P99InflationPct)
	}

	for i, row := range res.Rows {
		if row.Requests != base.Requests {
			t.Errorf("row %d requests = %d, want %d (same workload per row)", i, row.Requests, base.Requests)
		}
		if i == 0 {
			continue
		}
		if row.SatFraction <= res.Rows[i-1].SatFraction {
			t.Errorf("fractions not increasing at row %d", i)
		}
		if row.Outages == 0 || row.Degraded == 0 {
			t.Errorf("row %d injected no observable faults: %+v", i, row)
		}
		// Failures must not cascade into request errors: every client with a
		// surviving path keeps being served. Moderate fractions stay near
		// fully available; the partitioned-constellation regression test in
		// the spacecdn package covers the no-path-at-all edge.
		if row.SatFraction <= 0.3 && row.Availability < 0.95 {
			t.Errorf("row %d availability = %v at fraction %v", i, row.Availability, row.SatFraction)
		}
		sum := row.OverheadShare + row.ISLShare + row.GroundShare
		if row.Availability > 0 && (sum < 0.999 || sum > 1.001) {
			t.Errorf("row %d source shares sum to %v", i, sum)
		}
	}
	last := res.Rows[len(res.Rows)-1]
	if last.UplinkFailovers+last.ReplicaFailovers+last.PoPFailovers == 0 {
		t.Errorf("heaviest row recorded no failovers: %+v", last)
	}
}

func TestResilienceWorkerInvariance(t *testing.T) {
	s := testSuite(t)
	defer s.SetWorkers(s.Workers)
	var runs []ResilienceResult
	for _, w := range []int{1, 7} {
		s.SetWorkers(w)
		res, err := s.Resilience()
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, res)
	}
	if !reflect.DeepEqual(runs[0], runs[1]) {
		t.Errorf("resilience sweep differs across worker counts:\n1 worker: %+v\n7 workers: %+v", runs[0], runs[1])
	}
}

func TestResilienceFaultConfigOverrides(t *testing.T) {
	s := testSuite(t)
	cfg := s.resilienceFaultConfig(0.2)
	if cfg.ISLFraction != 0.1 || cfg.PoPFraction != 0.05 {
		t.Errorf("derived fractions = %v/%v, want 0.1/0.05", cfg.ISLFraction, cfg.PoPFraction)
	}
	if cfg.Seed != s.Seed {
		t.Errorf("seed = %d, want suite seed %d", cfg.Seed, s.Seed)
	}

	s2 := *s
	s2.FaultISLFraction, s2.FaultPoPFraction, s2.FaultSeed = 0.4, 0, 99
	cfg = s2.resilienceFaultConfig(0.2)
	if cfg.ISLFraction != 0.4 || cfg.PoPFraction != 0 || cfg.Seed != 99 {
		t.Errorf("pinned config not honored: %+v", cfg)
	}
}
