package experiments

import (
	"fmt"
	"runtime"
	"time"

	"spacecdn/internal/content"
	"spacecdn/internal/geo"
	"spacecdn/internal/spacecdn"
	"spacecdn/internal/stats"
)

// ResolveBenchResult compares the accelerated single-worker resolve path
// against the preserved naive pipeline over the same request stream and seed.
// CI runs this (experiment id "resolve-bench") and uploads the JSON as a
// build artifact next to BENCH_parallel.json, so every commit records both
// the speedup and the steady-state allocation count on the runner.
type ResolveBenchResult struct {
	Requests       int     // batch size timed per run
	NaiveReqPerSec float64 // ResolveReference throughput, one worker
	AccelReqPerSec float64 // Resolve throughput, one worker
	Speedup        float64 // AccelReqPerSec / NaiveReqPerSec

	NaiveAllocsPerOp float64 // heap allocations per naive resolve (full mix)
	AccelAllocsPerOp float64 // heap allocations per accelerated resolve (full mix)

	// SteadyRequests / SteadyAllocsPerOp cover only the warm overhead and
	// ISL resolutions (the ground stage legitimately allocates a path). The
	// acceptance bar is SteadyAllocsPerOp == 0 with telemetry detached.
	SteadyRequests    int
	SteadyAllocsPerOp float64

	Identical bool // accelerated results matched the naive pipeline exactly
}

// ResolveBench times the accelerated and naive resolve pipelines over the
// workload's hot/warm/cold request mix. The system is built without
// telemetry so the allocation counts measure the resolve path itself. The
// benchmark doubles as an equivalence check: both pipelines must return
// identical Resolution streams or it fails.
func (s *Suite) ResolveBench() (ResolveBenchResult, error) {
	// Deliberately not s.newSystem: telemetry must stay detached so the
	// steady-state allocation measurement reflects the resolve path alone.
	sys, err := spacecdn.NewSystem(spacecdn.DefaultConfig(), s.Env.Constellation, s.Env.LSN)
	if err != nil {
		return ResolveBenchResult{}, err
	}
	hot := content.Object{ID: "rb-hot", Bytes: 64 << 20, Region: geo.RegionEurope}
	warm := content.Object{ID: "rb-warm", Bytes: 256 << 20, Region: geo.RegionEurope}
	cold := content.Object{ID: "rb-cold", Bytes: 1 << 30, Region: geo.RegionEurope}
	if _, err := spacecdn.Apply(sys, spacecdn.PerPlaneSpacing{ReplicasPerPlane: 1}, warm); err != nil {
		return ResolveBenchResult{}, err
	}
	snap := s.Env.Snapshot(0)
	cities := s.clientCities()
	base := make([]spacecdn.Request, 0, 3*len(cities))
	for _, city := range cities {
		up, ok := snap.BestVisible(city.Loc)
		if !ok {
			// High-latitude cities outside the shell's coverage cannot
			// resolve at all; keep the benchmark stream error-free.
			continue
		}
		sys.Store(up.ID, hot)
		// 3:2:1 hot:warm:cold — five of six requests are cache-served
		// (overhead or ISL), matching a healthy CDN hit ratio; the sixth
		// exercises the ground fallback, which both pipelines share.
		for _, o := range []content.Object{hot, hot, hot, warm, warm, cold} {
			base = append(base, spacecdn.Request{Client: city.Loc, ISO2: city.Country, Obj: o})
		}
	}
	target := 5000
	if s.Fast {
		target = 1200
	}
	reqs := make([]spacecdn.Request, 0, target)
	for len(reqs) < target {
		reqs = append(reqs, base...)
	}
	reqs = reqs[:target]

	// Warm every lazy layer — ISL graph, visibility grid, path memo, scratch
	// pools — so neither timed run pays first-touch costs, and collect the
	// per-request sources for the steady-state subset.
	naiveWarm := make([]spacecdn.Resolution, len(reqs))
	rng := stats.NewRand(s.Seed)
	for i, r := range reqs {
		if naiveWarm[i], err = sys.ResolveReference(r.Client, r.ISO2, r.Obj, snap, rng); err != nil {
			return ResolveBenchResult{}, err
		}
	}
	accelWarm := make([]spacecdn.Resolution, len(reqs))
	rng = stats.NewRand(s.Seed)
	for i, r := range reqs {
		if accelWarm[i], err = sys.Resolve(r.Client, r.ISO2, r.Obj, snap, rng); err != nil {
			return ResolveBenchResult{}, err
		}
	}
	res := ResolveBenchResult{Requests: len(reqs), Identical: true}
	for i := range reqs {
		if naiveWarm[i] != accelWarm[i] {
			res.Identical = false
			return res, fmt.Errorf("experiments: accelerated resolve diverged from naive at request %d: %+v != %+v",
				i, accelWarm[i], naiveWarm[i])
		}
	}

	timeRun := func(resolve func(spacecdn.Request, *stats.Rand) error) (float64, float64, error) {
		rng := stats.NewRand(s.Seed)
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for _, r := range reqs {
			if err := resolve(r, rng); err != nil {
				return 0, 0, err
			}
		}
		dur := time.Since(start)
		runtime.ReadMemStats(&after)
		allocs := float64(after.Mallocs-before.Mallocs) / float64(len(reqs))
		return float64(len(reqs)) / dur.Seconds(), allocs, nil
	}
	res.NaiveReqPerSec, res.NaiveAllocsPerOp, err = timeRun(func(r spacecdn.Request, rng *stats.Rand) error {
		_, err := sys.ResolveReference(r.Client, r.ISO2, r.Obj, snap, rng)
		return err
	})
	if err != nil {
		return res, err
	}
	res.AccelReqPerSec, res.AccelAllocsPerOp, err = timeRun(func(r spacecdn.Request, rng *stats.Rand) error {
		_, err := sys.Resolve(r.Client, r.ISO2, r.Obj, snap, rng)
		return err
	})
	if err != nil {
		return res, err
	}
	res.Speedup = res.AccelReqPerSec / res.NaiveReqPerSec

	// Steady state: warm overhead and ISL requests only, telemetry detached.
	var steady []spacecdn.Request
	for i, r := range reqs {
		if accelWarm[i].Source == spacecdn.SourceOverhead || accelWarm[i].Source == spacecdn.SourceISL {
			steady = append(steady, r)
		}
	}
	res.SteadyRequests = len(steady)
	if len(steady) > 0 {
		rng := stats.NewRand(s.Seed)
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		for _, r := range steady {
			if _, err := sys.Resolve(r.Client, r.ISO2, r.Obj, snap, rng); err != nil {
				return res, err
			}
		}
		runtime.ReadMemStats(&after)
		res.SteadyAllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(len(steady))
	}
	return res, nil
}
