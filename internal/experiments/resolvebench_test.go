package experiments

import "testing"

func TestResolveBench(t *testing.T) {
	s := testSuite(t)
	res, err := s.ResolveBench()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Fatal("accelerated pipeline diverged from naive reference")
	}
	if res.Requests == 0 || res.NaiveReqPerSec <= 0 || res.AccelReqPerSec <= 0 {
		t.Fatalf("degenerate throughput result: %+v", res)
	}
	if res.SteadyRequests == 0 {
		t.Fatal("no warm overhead/ISL requests in the steady-state subset")
	}
	// The acceptance bar: zero allocations per steady-state resolve with
	// telemetry detached. Exact, not approximate — any regression that
	// reintroduces a per-request allocation fails here. (Race
	// instrumentation allocates on the hot path, so only the plain build
	// enforces it.)
	if !raceEnabled && res.SteadyAllocsPerOp != 0 {
		t.Fatalf("steady-state allocs/op = %v, want 0", res.SteadyAllocsPerOp)
	}
	// Speedup is hardware-dependent; require only that acceleration does not
	// make the single-worker path slower. The >=3x bar is checked on the CI
	// artifact where run conditions are controlled.
	if res.Speedup < 1 {
		t.Errorf("accelerated pipeline slower than naive: speedup %.2f", res.Speedup)
	}
}
