package experiments

import (
	"fmt"
	"runtime"
	"time"

	"spacecdn/internal/constellation"
	"spacecdn/internal/content"
	"spacecdn/internal/geo"
	"spacecdn/internal/groundseg"
	"spacecdn/internal/lsn"
	"spacecdn/internal/orbit"
	"spacecdn/internal/spacecdn"
	"spacecdn/internal/stats"
)

// ScalePoint is one constellation size in the scale sweep, with the three
// costs the mega-constellation work keeps flat-ish: snapshot construction
// (positions + visibility grid + ISL graph), sweep advance rate, and resolve
// throughput through a full SpaceCDN deployment.
type ScalePoint struct {
	Name   string // configuration label ("shell1", "shell1+kuiper", ...)
	Sats   int    // total satellites
	Shells int    // Walker shells in the composite

	// Data-structure shapes chosen by the scale-adaptive sizing rules.
	GridRows int
	GridCols int
	MemoCap  int

	SnapshotBuildMs    float64 // fresh snapshot with grid + ISL graph materialized
	SweepStepsPerSec   float64 // warm incremental cursor, 15 s steps
	SweepAllocsPerStep float64 // steady-state advances; bar is exactly 0
	ResolveReqPerSec   float64 // single-worker accelerated resolve, telemetry detached
	Requests           int     // timed resolve batch size
}

// ScaleBenchResult is the scale sweep plus the two acceptance flags the
// bench-regression gate pins: resolve throughput must degrade sub-linearly
// in satellite count, and sweep advances must stay allocation-free at every
// scale.
type ScaleBenchResult struct {
	Points []ScalePoint

	// ResolveSubLinear is true when, for every consecutive pair of points,
	// resolve throughput fell by a smaller factor than the satellite count
	// grew — i.e. per-request cost grows sub-linearly in constellation size.
	ResolveSubLinear bool
	// SweepZeroAlloc is true when every point's steady-state sweep advance
	// allocated nothing.
	SweepZeroAlloc bool
}

// scaleConfig is one entry of the sweep: a named multi-shell composite.
type scaleConfig struct {
	name   string
	shells []orbit.Walker
}

// scaleConfigs returns the sweep in ascending size: Starlink Shell 1 alone
// (the paper's setup, 1,584 sats), Shell 1 plus Kuiper (4,820), and Starlink
// Gen2 plus Kuiper (10,736) — the "every mega-constellation at once" stress
// point. Fast mode keeps the smallest two; the CI scale stage runs fast.
func scaleConfigs(fast bool) []scaleConfig {
	cfgs := []scaleConfig{
		{"shell1", []orbit.Walker{orbit.StarlinkShell1()}},
		{"shell1+kuiper", append([]orbit.Walker{orbit.StarlinkShell1()}, orbit.Kuiper()...)},
		{"gen2+kuiper", append(append([]orbit.Walker{}, orbit.StarlinkGen2()...), orbit.Kuiper()...)},
	}
	if fast {
		cfgs = cfgs[:2]
	}
	return cfgs
}

// ScaleBench sweeps constellation size and measures how the per-satellite
// data structures hold up: snapshot-build time, sweep steps/sec and
// allocations, and end-to-end resolve throughput, at 1.5k, 4.8k and 10.7k
// satellites. Each point deploys a complete SpaceCDN system (ground catalog,
// LSN model, placement, request mix) over its own constellation; telemetry
// stays detached so the numbers measure the engine, not the instrumentation.
func (s *Suite) ScaleBench() (ScaleBenchResult, error) {
	var res ScaleBenchResult
	for _, sc := range scaleConfigs(s.Fast) {
		pt, err := s.scalePoint(sc)
		if err != nil {
			return res, fmt.Errorf("experiments: scale point %s: %w", sc.name, err)
		}
		res.Points = append(res.Points, pt)
	}

	res.ResolveSubLinear = true
	res.SweepZeroAlloc = true
	for i, pt := range res.Points {
		if pt.SweepAllocsPerStep != 0 {
			res.SweepZeroAlloc = false
		}
		if i == 0 {
			continue
		}
		prev := res.Points[i-1]
		growth := float64(pt.Sats) / float64(prev.Sats)
		decline := prev.ResolveReqPerSec / pt.ResolveReqPerSec
		if decline >= growth {
			res.ResolveSubLinear = false
		}
	}
	return res, nil
}

// scalePoint benchmarks one constellation size end to end.
func (s *Suite) scalePoint(sc scaleConfig) (ScalePoint, error) {
	cfg := constellation.Config{
		Shells:          sc.shells,
		MinElevationDeg: 25,
		CrossPlaneISLs:  true,
	}
	c, err := constellation.New(cfg)
	if err != nil {
		return ScalePoint{}, err
	}
	pt := ScalePoint{Name: sc.name, Sats: c.Total(), Shells: c.ShellCount(), MemoCap: c.PathMemoCap()}
	pt.GridRows, pt.GridCols = c.GridDims()

	probe := geo.Point{LatDeg: 47.6, LonDeg: -122.3} // any mid-latitude ground point

	// Snapshot build: positions, visibility grid (one BestVisible forces the
	// lazy build) and the CSR ISL graph, scored by the fastest of several
	// builds at distinct times so no layer can carry over.
	const buildReps = 4
	buildDur := time.Duration(1<<63 - 1)
	for rep := 0; rep < buildReps; rep++ {
		t := time.Duration(rep) * 37 * time.Second
		start := time.Now()
		snap := c.Snapshot(t)
		snap.BestVisible(probe)
		snap.ISLGraph()
		if d := time.Since(start); d < buildDur {
			buildDur = d
		}
	}
	pt.SnapshotBuildMs = float64(buildDur) / float64(time.Millisecond)

	// Sweep rate: steady-state advances of a warm cursor with the same light
	// query load sweep-bench uses, min-of-reps against scheduler noise.
	const step = 15 * time.Second
	steps := 240
	if s.Fast {
		steps = 100
	}
	cur := c.Sweep(0, step)
	sweepBenchStep(cur.At(), []geo.Point{probe}) // materialize grid lists and graph
	sink := 0.0
	sweepDur := time.Duration(1<<63 - 1)
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		for i := 0; i < steps; i++ {
			acc, _ := sweepBenchStep(cur.Advance(), []geo.Point{probe})
			sink += acc
		}
		if d := time.Since(start); d < sweepDur {
			sweepDur = d
		}
	}
	pt.SweepStepsPerSec = float64(steps) / sweepDur.Seconds()

	// Steady-state allocations over bare advances of the warm cursor.
	var before, after runtime.MemStats
	const allocSteps = 120
	runtime.ReadMemStats(&before)
	for i := 0; i < allocSteps; i++ {
		cur.Advance()
	}
	runtime.ReadMemStats(&after)
	cur.Close()
	pt.SweepAllocsPerStep = float64(after.Mallocs-before.Mallocs) / float64(allocSteps)
	_ = sink

	// Resolve throughput: a full SpaceCDN deployment over this constellation
	// with the resolve-bench hot/warm/cold mix. Telemetry stays detached.
	ground := groundseg.NewCatalog()
	model := lsn.NewModel(c, ground, lsn.DefaultConfig())
	sys, err := spacecdn.NewSystem(spacecdn.DefaultConfig(), c, model)
	if err != nil {
		return pt, err
	}
	hot := content.Object{ID: "sb-hot", Bytes: 64 << 20, Region: geo.RegionEurope}
	warm := content.Object{ID: "sb-warm", Bytes: 256 << 20, Region: geo.RegionEurope}
	cold := content.Object{ID: "sb-cold", Bytes: 1 << 30, Region: geo.RegionEurope}
	if _, err := spacecdn.Apply(sys, spacecdn.PerPlaneSpacing{ReplicasPerPlane: 1}, warm); err != nil {
		return pt, err
	}
	snap := c.Snapshot(0)
	base := make([]spacecdn.Request, 0, 6*len(s.clientCities()))
	for _, city := range s.clientCities() {
		up, ok := snap.BestVisible(city.Loc)
		if !ok {
			continue
		}
		sys.Store(up.ID, hot)
		for _, o := range []content.Object{hot, hot, hot, warm, warm, cold} {
			base = append(base, spacecdn.Request{Client: city.Loc, ISO2: city.Country, Obj: o})
		}
	}
	target := 3000
	if s.Fast {
		target = 900
	}
	reqs := make([]spacecdn.Request, 0, target)
	for len(reqs) < target {
		reqs = append(reqs, base...)
	}
	reqs = reqs[:target]
	pt.Requests = len(reqs)

	// Warm pass materializes every lazy layer and surfaces errors untimed.
	rng := stats.NewRand(s.Seed)
	for _, r := range reqs {
		if _, err := sys.Resolve(r.Client, r.ISO2, r.Obj, snap, rng); err != nil {
			return pt, err
		}
	}
	resolveDur := time.Duration(1<<63 - 1)
	for rep := 0; rep < 2; rep++ {
		rng := stats.NewRand(s.Seed)
		start := time.Now()
		for _, r := range reqs {
			if _, err := sys.Resolve(r.Client, r.ISO2, r.Obj, snap, rng); err != nil {
				return pt, err
			}
		}
		if d := time.Since(start); d < resolveDur {
			resolveDur = d
		}
	}
	pt.ResolveReqPerSec = float64(len(reqs)) / resolveDur.Seconds()
	return pt, nil
}
