package experiments

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"spacecdn/internal/telemetry"
)

// labelKey renders a label map deterministically for cross-checking window
// deltas against aggregates.
func labelKey(name string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := name
	for _, k := range keys {
		s += fmt.Sprintf("|%s=%s", k, labels[k])
	}
	return s
}

// TestResolveWorkloadSeries runs the resolve workload with the full
// time/space-resolved layer attached and checks the end-to-end invariants:
// per-window counter deltas sum exactly to the aggregate counters, windowed
// histogram counts sum to the aggregate count, the sweep steps were captured
// through the cursor wrapper, and the spatial heatmap is populated.
func TestResolveWorkloadSeries(t *testing.T) {
	s := testSuite(t)
	tel := telemetry.New(0.05)
	sc := telemetry.NewSeriesCollector(tel.Registry(), time.Minute, 0)
	tel.SetSeries(sc)
	s.SetTelemetry(tel)
	defer func() { s.SetTelemetry(nil); s.Env.LSN.SetTelemetry(nil) }()

	res, err := s.ResolveWorkload()
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("workload resolved nothing")
	}

	series := sc.Snapshot()
	if len(series.Windows) < 2 {
		t.Fatalf("windows = %d, want at least two (the workload spans sim minutes)", len(series.Windows))
	}
	if series.DroppedWindows != 0 {
		t.Fatalf("dropped windows = %d; the invariant check needs the full ring", series.DroppedWindows)
	}
	if len(series.Steps) == 0 {
		t.Error("no sweep steps captured — the cursor wrapper is not wired")
	}
	for _, st := range series.Steps {
		if st.AtNs <= st.PrevNs {
			t.Errorf("step span not forward: %+v", st)
		}
	}

	// Sum every counter's window deltas and compare against the aggregates.
	counterSums := map[string]int64{}
	histSums := map[string]int64{}
	for _, w := range series.Windows {
		for _, cv := range w.Counters {
			counterSums[labelKey(cv.Name, cv.Labels)] += cv.Value
		}
		for _, wh := range w.Histograms {
			histSums[labelKey(wh.Name, wh.Labels)] += wh.Count
			if wh.Count > 0 && (wh.P50 < 0 || wh.P99 < wh.P50) {
				t.Errorf("window %d %s quantiles malformed: %+v", w.Index, wh.Name, wh)
			}
		}
	}
	agg := tel.Snapshot()
	for _, cv := range agg.Counters {
		if got := counterSums[labelKey(cv.Name, cv.Labels)]; got != cv.Value {
			t.Errorf("counter %s: window deltas sum to %d, aggregate %d",
				labelKey(cv.Name, cv.Labels), got, cv.Value)
		}
	}
	for _, hv := range agg.Histograms {
		if got := histSums[labelKey(hv.Name, hv.Labels)]; got != hv.Count {
			t.Errorf("histogram %s: window counts sum to %d, aggregate %d",
				labelKey(hv.Name, hv.Labels), got, hv.Count)
		}
	}

	// The spatial heatmap saw the workload: serving satellites and client
	// cells are hot, and total cell sources equal the served request count.
	heat := tel.Spatial().Snapshot()
	if len(heat.Sats) == 0 || len(heat.Cells) == 0 {
		t.Fatalf("spatial heatmap empty: %d sats, %d cells", len(heat.Sats), len(heat.Cells))
	}
	var cellSources int64
	for _, cell := range heat.Cells {
		cellSources += cell.Overhead + cell.ISL + cell.Ground
	}
	if served := int64(res.Requests - res.Errors); cellSources != served {
		t.Errorf("cell source events = %d, want %d (one per served request)", cellSources, served)
	}

	// The combined artifact serializes with both layers present.
	art := tel.SeriesArtifact()
	if len(art.Series.Windows) != len(series.Windows) && len(art.Series.Windows) != len(series.Windows)+1 {
		t.Errorf("artifact windows = %d, series snapshot had %d", len(art.Series.Windows), len(series.Windows))
	}
	if art.Spatial == nil {
		t.Error("artifact missing the spatial block")
	}
}
