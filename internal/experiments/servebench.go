package experiments

import (
	"bytes"
	"fmt"
	"time"

	"spacecdn/internal/serve"
	"spacecdn/internal/serve/loadgen"
	"spacecdn/internal/spacecdn"
)

// ServeBenchRow is one worker-count point of the serving-throughput sweep:
// closed-loop in-process workers against a live daemon whose sweeper keeps
// swapping epochs underneath them.
type ServeBenchRow struct {
	Workers   int
	ReqPerSec float64
	P50Ms     float64
	P95Ms     float64
	P99Ms     float64
	Stale     int64 // requests that finished on a superseded epoch
}

// ServeBenchResult is the daemon serving benchmark (experiment id
// "serve-bench"). CI uploads the JSON as BENCH_serve.json and benchdiff
// gates it, so every commit records the serving core's throughput scaling,
// its steady-state allocation count, and the deterministic-replay bit.
type ServeBenchResult struct {
	// RequestsPerRow is the closed-loop request budget behind each row.
	RequestsPerRow int
	Rows           []ServeBenchRow
	// ScalingX is the last row's throughput over the first row's — the
	// worker-scaling figure of merit (bounded by the runner's core count).
	ScalingX float64

	// SteadyRequests / SteadyAllocsPerReq cover the pinned-epoch in-process
	// path over space-served requests only (the ground stage legitimately
	// allocates its path). The acceptance bar is SteadyAllocsPerReq == 0
	// with telemetry attached and trace sampling off.
	SteadyRequests     int
	SteadyAllocsPerReq float64

	// ReplayIdentical reports that replaying one recorded request log was
	// byte-identical across worker counts 1, 2 and 8.
	ReplayIdentical bool

	// HTTPReqPerSec is a full-surface sanity point: closed-loop HTTP
	// clients through a real listener (sockets, parsing, JSON encode).
	HTTPReqPerSec float64

	// Sweeper-side counters from the live server: epochs published while
	// the sweep ran, build-and-publish p99, and stale-epoch serves across
	// every row.
	EpochSwaps     uint64
	EpochSwapP99Ms float64
	StaleServed    int64
}

// ServeBench measures the spacecdnd serving core. Two servers run in
// sequence: a pinned-epoch one (no sweeper) for the allocation and replay
// contracts, then a live one — sweeper advancing sim time every 2 ms —
// for the worker-scaling sweep and the HTTP surface point.
func (s *Suite) ServeBench() (ServeBenchResult, error) {
	var res ServeBenchResult

	// Pinned server: steady-state allocations and deterministic replay.
	// Telemetry is attached (serve.New insists on it) with trace sampling
	// off — the zero-alloc bar includes the metrics hot path.
	sysA, err := spacecdn.NewSystem(spacecdn.DefaultConfig(), s.Env.Constellation, s.Env.LSN)
	if err != nil {
		return res, err
	}
	srvA, err := serve.New(sysA, serve.Config{Seed: s.Seed, ReplaySeed: s.Seed + 1})
	if err != nil {
		return res, err
	}
	defer srvA.Close()
	wlA, err := srvA.PlaceWorkload(8)
	if err != nil {
		return res, err
	}
	probe := 240
	if s.Fast {
		probe = 120
	}
	sc := srvA.AcquireScratch()
	var steady []spacecdn.Request
	for i := 0; i < probe; i++ {
		req := wlA.Request(uint64(i))
		r, err := srvA.ResolveOnce(req, sc)
		if err != nil {
			srvA.ReleaseScratch(sc)
			return res, err
		}
		if r.Res.Source != spacecdn.SourceGround {
			steady = append(steady, req)
		}
	}
	srvA.ReleaseScratch(sc)
	res.SteadyRequests = len(steady)
	if res.SteadyAllocsPerReq, err = loadgen.MeasureAllocs(srvA, steady); err != nil {
		return res, err
	}

	logN := 960
	if s.Fast {
		logN = 240
	}
	log := wlA.Log(logN)
	base, err := srvA.Replay(log, 1)
	if err != nil {
		return res, err
	}
	res.ReplayIdentical = true
	for _, workers := range []int{2, 8} {
		got, err := srvA.Replay(log, workers)
		if err != nil {
			return res, err
		}
		if !bytes.Equal(got, base) {
			res.ReplayIdentical = false
			return res, fmt.Errorf("experiments: replay with %d workers diverged from the sequential stream", workers)
		}
	}

	// Live server: sweeper swapping epochs every 2 ms while closed-loop
	// workers hammer the in-process path, then an HTTP burst through the
	// real listener.
	sysB, err := spacecdn.NewSystem(spacecdn.DefaultConfig(), s.Env.Constellation, s.Env.LSN)
	if err != nil {
		return res, err
	}
	srvB, err := serve.New(sysB, serve.Config{
		Seed:     s.Seed,
		Step:     15 * time.Second,
		Interval: 2 * time.Millisecond,
		Addr:     "127.0.0.1:0",
	})
	if err != nil {
		return res, err
	}
	defer srvB.Close()
	wlB, err := srvB.PlaceWorkload(8)
	if err != nil {
		return res, err
	}
	if err := srvB.Start(); err != nil {
		return res, err
	}
	res.RequestsPerRow = 4000
	httpN := 1200
	if s.Fast {
		res.RequestsPerRow = 600
		httpN = 150
	}
	for _, workers := range []int{1, 2, 8} {
		r, err := loadgen.Run(srvB, wlB, loadgen.Config{Workers: workers, Requests: res.RequestsPerRow})
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, ServeBenchRow{
			Workers:   workers,
			ReqPerSec: r.ReqPerSec,
			P50Ms:     r.P50Ms,
			P95Ms:     r.P95Ms,
			P99Ms:     r.P99Ms,
			Stale:     r.Stale,
		})
	}
	res.ScalingX = res.Rows[len(res.Rows)-1].ReqPerSec / res.Rows[0].ReqPerSec

	httpRes, err := loadgen.Run(srvB, wlB, loadgen.Config{
		Workers: 4, Requests: httpN, Mode: loadgen.HTTP, BaseURL: "http://" + srvB.Addr(),
	})
	if err != nil {
		return res, err
	}
	res.HTTPReqPerSec = httpRes.ReqPerSec

	if err := srvB.Close(); err != nil {
		return res, err
	}
	st := srvB.Stats()
	res.EpochSwaps = st.Epochs
	res.EpochSwapP99Ms = st.SwapP99Ms
	res.StaleServed = st.StaleServed
	return res, nil
}
