package experiments

import (
	"fmt"
	"time"

	"spacecdn/internal/content"
	"spacecdn/internal/geo"
	"spacecdn/internal/measure"
	"spacecdn/internal/spacecdn"
	"spacecdn/internal/stats"
)

// This file regenerates the SpaceCDN simulation artifacts: Figure 7 (E6),
// Figure 8 (E7) and the replica-placement ablation (E8).

// Fig7HopCounts are the paper's simulated replica distances.
var Fig7HopCounts = []int{1, 3, 5, 10}

// Fig7Result bundles Figure 7's six curves: SpaceCDN at each hop distance
// plus the AIM-derived Starlink and terrestrial reference CDFs.
type Fig7Result struct {
	Hop         map[int]*stats.CDF
	Starlink    *stats.CDF
	Terrestrial *stats.CDF
}

// clientCities returns the Starlink-covered sample population.
func (s *Suite) clientCities() []geo.City {
	var out []geo.City
	for _, c := range geo.Cities() {
		country, ok := geo.CountryByISO(c.Country)
		if !ok || !country.Starlink {
			continue
		}
		out = append(out, c)
	}
	if s.Fast && len(out) > 40 {
		out = out[:40]
	}
	return out
}

// Fig7 (E6) regenerates Figure 7: the CDF of the latency to fetch an object
// cached n ISL hops away, for n in {1,3,5,10}, against the Starlink and
// terrestrial CDN latencies from the AIM dataset.
//
// Accounting note (also recorded in EXPERIMENTS.md): the paper's SpaceCDN
// curves come from a xeoverse propagation simulation and are only
// numerically consistent with one-way latencies without MAC scheduling,
// while its AIM reference curves are measured round trips. We reproduce the
// figure as published by running the SpaceCDN system in
// LatencyOneWayPropagation mode.
func (s *Suite) Fig7() (Fig7Result, error) {
	tests, err := s.AIM()
	if err != nil {
		return Fig7Result{}, err
	}
	cfg := spacecdn.DefaultConfig()
	cfg.Latency = spacecdn.LatencyOneWayPropagation
	sys, err := s.newSystem(cfg)
	if err != nil {
		return Fig7Result{}, err
	}
	rng := stats.NewRand(s.Seed).Fork("fig7")
	samplesPerCity := 8
	if s.Fast {
		samplesPerCity = 3
	}
	res := Fig7Result{
		Hop:         map[int]*stats.CDF{},
		Starlink:    measure.IdleCDF(tests, measure.NetworkStarlink),
		Terrestrial: measure.IdleCDF(tests, measure.NetworkTerrestrial),
	}
	cities := s.clientCities()
	times := s.snapshotTimes()
	for _, n := range Fig7HopCounts {
		var xs []float64
		cur := s.sweepCursor(times[0])
		for _, at := range times {
			snap := cur.AdvanceTo(at)
			for _, city := range cities {
				for k := 0; k < samplesPerCity; k++ {
					rtt, err := sys.FetchAtHops(city.Loc, n, snap, rng)
					if err != nil {
						continue // no coverage at this instant
					}
					xs = append(xs, float64(rtt)/float64(time.Millisecond))
				}
			}
		}
		cur.Close()
		if len(xs) == 0 {
			return Fig7Result{}, fmt.Errorf("experiments: no fig7 samples at %d hops", n)
		}
		res.Hop[n] = stats.NewCDF(xs)
	}
	return res, nil
}

// Fig8Fractions are the duty-cycle fractions the paper evaluates.
var Fig8Fractions = []float64{0.3, 0.5, 0.8}

// Fig8Row is one boxplot of Figure 8.
type Fig8Row struct {
	FractionPct int
	Box         stats.Boxplot
}

// Fig8 (E7) regenerates Figure 8: SpaceCDN latency distributions when only
// x% of satellites duty-cycle as caches, with the terrestrial median as the
// reference line. Content is densely replicated (4 copies per plane), so
// the latency cost isolates the duty cycle itself.
func (s *Suite) Fig8() ([]Fig8Row, float64, error) {
	tests, err := s.AIM()
	if err != nil {
		return nil, 0, err
	}
	terrMedian := measure.IdleCDF(tests, measure.NetworkTerrestrial).Median()

	obj := content.Object{ID: "fig8-popular", Bytes: 1 << 30, Region: geo.RegionEurope}
	rng := stats.NewRand(s.Seed).Fork("fig8")
	cities := s.clientCities()
	var rows []Fig8Row
	for _, f := range Fig8Fractions {
		cfg := spacecdn.DefaultConfig()
		cfg.Latency = spacecdn.LatencyOneWayPropagation // see Fig7 accounting note
		cfg.DutyCycle = &spacecdn.DutyCycleConfig{Fraction: f, Slot: 5 * time.Minute, Seed: s.Seed}
		sys, err := s.newSystem(cfg)
		if err != nil {
			return nil, 0, err
		}
		if _, err := spacecdn.Apply(sys, spacecdn.PerPlaneSpacing{ReplicasPerPlane: 4}, obj); err != nil {
			return nil, 0, err
		}
		var xs []float64
		cur := s.sweepCursor(s.snapshotTimes()[0])
		for _, at := range s.snapshotTimes() {
			snap := cur.AdvanceTo(at)
			for _, city := range cities {
				rtt, _, found := sys.NearestReplicaRTT(city.Loc, obj.ID, snap, rng)
				if !found {
					continue
				}
				xs = append(xs, float64(rtt)/float64(time.Millisecond))
			}
		}
		cur.Close()
		if len(xs) == 0 {
			return nil, 0, fmt.Errorf("experiments: no fig8 samples at fraction %v", f)
		}
		rows = append(rows, Fig8Row{FractionPct: int(f * 100), Box: stats.NewBoxplot(xs)})
	}
	return rows, terrMedian, nil
}

// AblationRow summarizes one replica-density configuration (E8).
type AblationRow struct {
	ReplicasPerPlane int
	CrossPlaneISLs   bool
	MedianRTTMs      float64
	P90RTTMs         float64
	MedianHops       float64
	MaxHops          int
	Reachable        float64 // fraction of samples finding a replica in bound
}

// AblationReplicas (E8) quantifies the paper's "4 copies per plane =>
// reachable within 5 hops" claim: it sweeps replicas-per-plane and measures
// the hop count and latency to the nearest replica.
func (s *Suite) AblationReplicas() ([]AblationRow, error) {
	rng := stats.NewRand(s.Seed).Fork("ablation")
	cities := s.clientCities()
	var rows []AblationRow
	for _, k := range []int{1, 2, 4, 8} {
		cfg := spacecdn.DefaultConfig()
		sys, err := s.newSystem(cfg)
		if err != nil {
			return nil, err
		}
		obj := content.Object{ID: content.ID(fmt.Sprintf("abl-%d", k)), Bytes: 1 << 30}
		if _, err := spacecdn.Apply(sys, spacecdn.PerPlaneSpacing{ReplicasPerPlane: k}, obj); err != nil {
			return nil, err
		}
		var rtts, hops []float64
		maxHops := 0
		attempts, found := 0, 0
		cur := s.sweepCursor(s.snapshotTimes()[0])
		for _, at := range s.snapshotTimes() {
			snap := cur.AdvanceTo(at)
			for _, city := range cities {
				attempts++
				rtt, h, ok := sys.NearestReplicaRTT(city.Loc, obj.ID, snap, rng)
				if !ok {
					continue
				}
				found++
				rtts = append(rtts, float64(rtt)/float64(time.Millisecond))
				hops = append(hops, float64(h))
				if h > maxHops {
					maxHops = h
				}
			}
		}
		cur.Close()
		if len(rtts) == 0 {
			return nil, fmt.Errorf("experiments: ablation k=%d found nothing", k)
		}
		rows = append(rows, AblationRow{
			ReplicasPerPlane: k,
			CrossPlaneISLs:   true,
			MedianRTTMs:      stats.Median(rtts),
			P90RTTMs:         stats.Quantile(rtts, 0.9),
			MedianHops:       stats.Median(hops),
			MaxHops:          maxHops,
			Reachable:        float64(found) / float64(attempts),
		})
	}
	return rows, nil
}
