// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is a method on Suite returning structured
// results that cmd/spacecdn renders and bench_test.go exercises; the
// experiment IDs follow DESIGN.md's index (E1 = Table 1, E2 = Figure 2, ...).
package experiments

import (
	"time"

	"spacecdn/internal/constellation"
	"spacecdn/internal/measure"
	"spacecdn/internal/spacecdn"
	"spacecdn/internal/telemetry"
	"spacecdn/internal/traffic"
)

// Suite owns the environment and memoizes the expensive datasets so that
// several experiments can share one AIM generation run.
type Suite struct {
	Env *measure.Environment
	// Fast trades sample count for speed (used by tests; benchmarks use the
	// full configuration).
	Fast bool
	Seed int64
	// Workers bounds the goroutines each experiment fans work across; <= 0
	// means one per CPU. Results are identical for every worker count —
	// sharding and randomness depend only on the work and the seed.
	Workers int
	// ScanSweeps forces the time-stepped experiments onto fresh per-step
	// snapshots instead of the incremental sweep cursor. Outputs are proven
	// identical either way; equivalence tests flip this and diff streams.
	ScanSweeps bool

	// Fault-injection knobs for the resilience experiment (E-resilience).
	// The sweep varies the satellite failure fraction; the ISL and PoP
	// fractions follow it at half and a quarter of its value unless pinned
	// here with a non-negative override. FaultSeed seeds plan generation;
	// 0 means reuse the suite seed.
	FaultISLFraction float64
	FaultPoPFraction float64
	FaultSeed        int64

	// TrafficConfig overrides the traffic-engine configuration (E22). Nil
	// selects the fast or full preset by the Fast flag; tests pin tiny
	// populations here. Seed and Workers are NOT overridden from the suite
	// when this is set — the override is taken verbatim.
	TrafficConfig *traffic.Config

	aim []measure.SpeedTest
	web []measure.WebMeasurement
	tel *telemetry.Telemetry
}

// NewSuite builds a suite with a fresh environment.
func NewSuite(fast bool, seed int64) (*Suite, error) {
	env, err := measure.NewEnvironment()
	if err != nil {
		return nil, err
	}
	return &Suite{
		Env: env, Fast: fast, Seed: seed,
		// -1 selects the derived sweep fractions; see Resilience.
		FaultISLFraction: -1,
		FaultPoPFraction: -1,
	}, nil
}

// SetWorkers sets the worker-pool bound for subsequent experiment runs.
// It does not invalidate memoized datasets — it never needs to, because the
// worker count cannot change any result.
func (s *Suite) SetWorkers(n int) { s.Workers = n }

// SetTelemetry attaches telemetry to the suite: every SpaceCDN system the
// experiments deploy from here on is instrumented with it, so one registry
// accumulates the whole run. The environment's cache-effectiveness gauges
// register alongside. Pass nil to detach.
func (s *Suite) SetTelemetry(t *telemetry.Telemetry) {
	s.tel = t
	s.Env.SetTelemetry(t)
}

// Telemetry returns the suite's attached telemetry, or nil.
func (s *Suite) Telemetry() *telemetry.Telemetry { return s.tel }

// newSystem deploys a SpaceCDN over the suite's environment and attaches the
// suite's telemetry when one is set. Every experiment builds its systems
// through this helper so instrumentation is uniform.
func (s *Suite) newSystem(cfg spacecdn.Config) (*spacecdn.System, error) {
	sys, err := spacecdn.NewSystem(cfg, s.Env.Constellation, s.Env.LSN)
	if err != nil {
		return nil, err
	}
	if s.tel != nil {
		sys.SetTelemetry(s.tel)
	}
	return sys, nil
}

// aimConfig returns the AIM generation settings for the current mode.
func (s *Suite) aimConfig() measure.AIMConfig {
	cfg := measure.DefaultAIMConfig()
	cfg.Seed = s.Seed
	cfg.Workers = s.Workers
	if s.Fast {
		cfg.TestsPerCity = 6
		cfg.Snapshots = []time.Duration{0, 17 * time.Minute}
	}
	return cfg
}

// AIM returns the (memoized) synthetic AIM dataset.
func (s *Suite) AIM() ([]measure.SpeedTest, error) {
	if s.aim != nil {
		return s.aim, nil
	}
	tests, err := s.Env.GenerateAIM(s.aimConfig())
	if err != nil {
		return nil, err
	}
	s.aim = tests
	return tests, nil
}

// webConfig returns the NetMet campaign settings for the current mode.
func (s *Suite) webConfig() measure.WebConfig {
	cfg := measure.DefaultWebConfig()
	cfg.Seed = s.Seed
	cfg.Workers = s.Workers
	if s.Fast {
		cfg.LoadsPerSite = 6
	}
	return cfg
}

// Web returns the (memoized) NetMet campaign results.
func (s *Suite) Web() ([]measure.WebMeasurement, error) {
	if s.web != nil {
		return s.web, nil
	}
	ms, err := s.Env.RunNetMet(s.webConfig())
	if err != nil {
		return nil, err
	}
	s.web = ms
	return ms, nil
}

// snapshotTimes returns the constellation sample times used by the
// space-side experiments.
func (s *Suite) snapshotTimes() []time.Duration {
	if s.Fast {
		return []time.Duration{0, 23 * time.Minute}
	}
	return []time.Duration{0, 11 * time.Minute, 23 * time.Minute, 37 * time.Minute, 51 * time.Minute}
}

// sweepCursor returns an AdvanceTo-driven cursor positioned at start for
// walking snapshotTimes, honouring the ScanSweeps flag. Callers must Close
// it; the sweep form is pooled, so per-configuration cursors are cheap.
// When the attached telemetry carries a windowed series collector, the cursor
// is wrapped so every advance ticks the collector — this is what keys metric
// windows to sim time across a whole suite run. The concrete-nil check avoids
// handing ObserveCursor a non-nil interface wrapping a nil *SeriesCollector.
func (s *Suite) sweepCursor(start time.Duration) constellation.Cursor {
	var cur constellation.Cursor
	if s.ScanSweeps {
		cur = s.Env.SweepScan(start, 0)
	} else {
		cur = s.Env.Sweep(start, 0)
	}
	if sc := s.tel.Series(); sc != nil {
		cur = constellation.ObserveCursor(cur, sc)
	}
	return cur
}
