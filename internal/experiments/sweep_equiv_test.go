package experiments

import (
	"testing"

	"spacecdn/internal/faults"
	"spacecdn/internal/spacecdn"
)

// streamItem is the comparable projection of one batch result: resolution
// plus whether it errored (errors carry non-comparable context strings).
type streamItem struct {
	res    spacecdn.Resolution
	failed bool
}

// TestResilienceSweepMatchesScan proves the resilience pipeline's result
// stream identical whether the snapshot times are walked by the incremental
// sweep cursor or by fresh per-step snapshots — including under an active
// fault plan, where masked views and degraded path trees ride on the sweep's
// composite memo epochs.
func TestResilienceSweepMatchesScan(t *testing.T) {
	run := func(scan bool) ([]streamItem, ResilienceRow) {
		t.Helper()
		s, err := NewSuite(true, 1)
		if err != nil {
			t.Fatal(err)
		}
		s.ScanSweeps = scan
		cfg := s.resilienceFaultConfig(0.05)
		plan, err := faults.NewPlan(cfg, s.Env.Constellation, s.popNames())
		if err != nil {
			t.Fatal(err)
		}
		row, stream, _, err := s.resilienceRun(plan)
		if err != nil {
			t.Fatal(err)
		}
		items := make([]streamItem, len(stream))
		for i, r := range stream {
			items[i] = streamItem{res: r.Resolution, failed: r.Err != nil}
		}
		return items, row
	}
	sweep, sweepRow := run(false)
	scan, scanRow := run(true)
	if len(sweep) != len(scan) {
		t.Fatalf("stream lengths diverge: %d vs %d", len(sweep), len(scan))
	}
	for i := range scan {
		if sweep[i] != scan[i] {
			t.Fatalf("result %d diverges:\nsweep: %+v\nscan:  %+v", i, sweep[i], scan[i])
		}
	}
	if sweepRow != scanRow {
		t.Fatalf("aggregate rows diverge:\nsweep: %+v\nscan:  %+v", sweepRow, scanRow)
	}
}
