package experiments

import (
	"fmt"
	"runtime"
	"time"

	"spacecdn/internal/constellation"
	"spacecdn/internal/geo"
	"spacecdn/internal/stats"
)

// SweepBenchResult compares the temporal-coherence sweep engine against the
// fresh-snapshot pipeline over the same time-stepped simulation. CI runs this
// (experiment id "sweep-bench") and uploads the JSON as a build artifact next
// to the other benchmarks, so every commit records the steps/sec ratio and
// the steady-state allocation count on the runner.
type SweepBenchResult struct {
	Steps       int     // timed steps per pipeline
	StepSeconds float64 // simulated seconds per step

	FreshStepsPerSec float64 // rebuild-everything pipeline
	SweepStepsPerSec float64 // incremental pipeline
	Speedup          float64 // SweepStepsPerSec / FreshStepsPerSec

	// SweepAllocsPerStep is measured over bare advances of a warm cursor
	// (positions, grid migration, ISL weight refresh, memo retirement). The
	// acceptance bar is exactly 0.
	SweepAllocsPerStep float64

	// Identical is true when the untimed equivalence pass — per-step
	// visibility answers, graph weights, and a subscriber RTT series —
	// matched between the two pipelines bit for bit.
	Identical bool
}

// sweepBenchStep is the per-step world maintenance plus a realistic query
// load: a handful of uplink selections and the routing bound. Deliberately no
// Dijkstra — path trees cost the same under either pipeline and would only
// dilute the ratio this benchmark exists to measure.
func sweepBenchStep(snap *constellation.Snapshot, pts []geo.Point) (float64, int) {
	acc := snap.ISLGraph().MaxEdgeWeight()
	served := 0
	for _, p := range pts {
		if v, ok := snap.BestVisible(p); ok {
			acc += v.ElevationDeg
			served++
		}
	}
	return acc, served
}

// SweepBench measures the sweep engine: steps/sec for the incremental cursor
// versus fresh per-step snapshots over an identical simulation, allocations
// per steady-state advance, and an equivalence check over the full output
// stream of both pipelines (including an lsn RTT time series).
func (s *Suite) SweepBench() (SweepBenchResult, error) {
	const step = 15 * time.Second
	steps := 600
	if s.Fast {
		steps = 150
	}
	res := SweepBenchResult{Steps: steps, StepSeconds: step.Seconds()}
	c := s.Env.Constellation

	// Query loads: the equivalence pass checks several ground points per step;
	// the timed loops query a single point — just enough to force grid and
	// graph materialization under both pipelines without drowning the
	// world-maintenance cost this benchmark isolates (queries cost the same
	// either way; heavy per-step query mixes are parallel-bench's domain).
	cities := s.clientCities()
	if len(cities) > 3 {
		cities = cities[:3]
	}
	pts := make([]geo.Point, len(cities))
	for i, city := range cities {
		pts[i] = city.Loc
	}
	timedPts := pts[:1]

	// Equivalence pass (untimed): walk both cursors in lockstep and require
	// identical query streams at every step.
	sw := c.Sweep(0, step)
	sc := c.SweepScan(0, step)
	checkSteps := 40
	if s.Fast {
		checkSteps = 15
	}
	for i := 0; i < checkSteps; i++ {
		a, an := sweepBenchStep(sw.Advance(), pts)
		b, bn := sweepBenchStep(sc.Advance(), pts)
		if a != b || an != bn {
			sw.Close()
			return res, fmt.Errorf("experiments: sweep diverged from fresh snapshots at step %d: %v/%d != %v/%d", i, a, an, b, bn)
		}
	}
	sw.Close()

	// The consumer-level stream: a subscriber's RTT sawtooth must be
	// byte-identical whether sampled over the sweep or over fresh snapshots.
	city := cities[0]
	seriesSweep, err := s.Env.LSN.RTTTimeSeries(city.Loc, city.Country, 0, 10*time.Minute, stats.NewRand(s.Seed))
	if err != nil {
		return res, err
	}
	seriesScan, err := s.Env.LSN.RTTTimeSeriesScan(city.Loc, city.Country, 0, 10*time.Minute, stats.NewRand(s.Seed))
	if err != nil {
		return res, err
	}
	if len(seriesSweep) != len(seriesScan) {
		return res, fmt.Errorf("experiments: RTT series lengths diverge: %d vs %d", len(seriesSweep), len(seriesScan))
	}
	for i := range seriesScan {
		if seriesSweep[i] != seriesScan[i] {
			return res, fmt.Errorf("experiments: RTT series diverged at sample %d: %+v != %+v", i, seriesSweep[i], seriesScan[i])
		}
	}
	res.Identical = true

	// Both pipelines are timed over several repetitions and scored by their
	// fastest one — the sweep's whole timed window is a few milliseconds, so
	// a single scheduler hiccup on a shared runner would otherwise halve its
	// rate. Minimum-of-reps is the standard noise floor for short benchmarks.
	const reps = 3

	// Timed: fresh pipeline. Each step rebuilds the world from scratch —
	// positions, visibility grid, ISL graph — exactly what every time-stepped
	// consumer paid before the sweep engine.
	sink := 0.0
	freshDur := time.Duration(1<<63 - 1)
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		for i := 1; i <= steps; i++ {
			snap := c.Snapshot(time.Duration(i) * step)
			acc, _ := sweepBenchStep(snap, timedPts)
			sink += acc
		}
		if d := time.Since(start); d < freshDur {
			freshDur = d
		}
	}
	res.FreshStepsPerSec = float64(steps) / freshDur.Seconds()

	// Timed: sweep pipeline, identical work against the advancing cursor
	// (later reps keep advancing — steady state is the regime being measured).
	cur := c.Sweep(0, step)
	sweepBenchStep(cur.At(), timedPts) // materialize grid lists and CSR graph
	sweepDur := time.Duration(1<<63 - 1)
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		for i := 0; i < steps; i++ {
			acc, _ := sweepBenchStep(cur.Advance(), timedPts)
			sink += acc
		}
		if d := time.Since(start); d < sweepDur {
			sweepDur = d
		}
	}
	res.SweepStepsPerSec = float64(steps) / sweepDur.Seconds()
	res.Speedup = res.SweepStepsPerSec / res.FreshStepsPerSec

	// Steady-state allocations over bare advances of the (already warm)
	// cursor. MemStats brackets the loop; the query layer is excluded so the
	// number isolates the engine's own per-step cost.
	var before, after runtime.MemStats
	allocSteps := 200
	runtime.ReadMemStats(&before)
	for i := 0; i < allocSteps; i++ {
		cur.Advance()
	}
	runtime.ReadMemStats(&after)
	cur.Close()
	res.SweepAllocsPerStep = float64(after.Mallocs-before.Mallocs) / float64(allocSteps)

	_ = sink
	return res, nil
}
