package experiments

import (
	"fmt"
	"sort"
	"time"

	"spacecdn/internal/cache"
	"spacecdn/internal/cdn"
	"spacecdn/internal/constellation"
	"spacecdn/internal/content"
	"spacecdn/internal/geo"
	"spacecdn/internal/spacecdn"
	"spacecdn/internal/stats"
)

// ThermalRow reports thermal feasibility of one duty-cycle fraction (E17).
type ThermalRow struct {
	FractionPct int
	// PeakC is the highest temperature across the sampled satellites.
	PeakC float64
	// OverShare is the fraction of satellite-time spent above the safety
	// threshold.
	OverShare float64
	// Sustainable is the analytic long-run verdict.
	Sustainable bool
}

// ThermalFeasibility (E17) integrates the §5 thermal model across duty
// fractions and a 24-hour horizon, connecting Figure 8's latency results to
// their physical constraint: the passive-cooling envelope supports ~60%
// duty, comfortably covering the paper's feasible 50% point.
func (s *Suite) ThermalFeasibility() ([]ThermalRow, float64, error) {
	cfg := spacecdn.DefaultThermalConfig()
	horizon := 24 * time.Hour
	sats := 24
	if s.Fast {
		horizon = 8 * time.Hour
		sats = 8
	}
	var rows []ThermalRow
	for _, f := range []float64{0.3, 0.5, 0.6, 0.8, 1.0} {
		d := spacecdn.NewDutyCycler(spacecdn.DutyCycleConfig{
			Fraction: f, Slot: 5 * time.Minute, Seed: s.Seed,
		}, s.Env.Constellation.Total())
		peak := cfg.AmbientC
		var over, total time.Duration
		for i := 0; i < sats; i++ {
			ts, err := spacecdn.NewThermalSim(cfg)
			if err != nil {
				return nil, 0, err
			}
			id := constellation.SatID(i * s.Env.Constellation.Total() / sats)
			ts.RunDutyCycle(d, id, horizon, time.Minute)
			if ts.PeakC > peak {
				peak = ts.PeakC
			}
			over += ts.OverThreshold
			total += horizon
		}
		rows = append(rows, ThermalRow{
			FractionPct: int(f * 100),
			PeakC:       peak,
			OverShare:   float64(over) / float64(total),
			Sustainable: f <= cfg.MaxSustainableDuty(),
		})
	}
	return rows, cfg.MaxSustainableDuty(), nil
}

// HitRateRow reports edge-cache hit rates for one country (E18).
type HitRateRow struct {
	Country string
	// StarlinkEdge / TerrestrialEdge are the serving edge cities.
	StarlinkEdge    string
	TerrestrialEdge string
	StarlinkHit     float64
	TerrestrialHit  float64
}

// CacheMissRates (E18) quantifies §2's "cache miss rates and content
// fetches over WANs are high for these users": edges are warmed with the
// content popular in their own region, then clients request their home
// region's popular content — terrestrial users hit their local edge,
// Starlink users hit the edge near their PoP, which on another continent
// holds the wrong region's content.
func (s *Suite) CacheMissRates() ([]HitRateRow, error) {
	cat, err := content.GenerateCatalog(content.CatalogConfig{
		Objects: 5000, MeanObjectBytes: 512 << 10, ZipfS: 0.9, RegionBoost: 25, Seed: s.Seed,
	})
	if err != nil {
		return nil, err
	}
	// A fresh CDN so warming is controlled (the suite's shared CDN has
	// traffic-dependent state).
	cd, err := cdn.New(cdn.DefaultConfig(), s.Env.Terrestrial)
	if err != nil {
		return nil, err
	}
	// Warm every edge with its own region's popular content.
	const warmBudget = 256 << 20
	for _, e := range cd.Edges() {
		cdn.Warm(e, cat, e.City.Region, warmBudget)
	}
	requests := 600
	if s.Fast {
		requests = 200
	}
	countries := []string{"MZ", "KE", "ZM", "GT", "HT", "DE", "ES", "JP", "US", "NG"}
	var rows []HitRateRow
	for _, iso := range countries {
		country, ok := geo.CountryByISO(iso)
		if !ok || !country.Starlink {
			continue
		}
		loc, ok := geo.CountryCentroid(iso)
		if !ok {
			continue
		}
		pop, ok := s.Env.Ground.AssignPoPForClient(iso, loc)
		if !ok {
			continue
		}
		terrEdge := cd.NearestEdge(loc)
		starEdge := cd.NearestEdge(pop.Loc)
		rng := stats.NewRand(s.Seed).Fork("hitrate/" + iso)
		terrHits, starHits := 0, 0
		for i := 0; i < requests; i++ {
			obj := cat.Sample(country.Region, rng)
			if terrEdge.Cache.Peek(cache.Key(obj.ID)) {
				terrHits++
			}
			if starEdge.Cache.Peek(cache.Key(obj.ID)) {
				starHits++
			}
		}
		rows = append(rows, HitRateRow{
			Country:         iso,
			StarlinkEdge:    starEdge.City.Name,
			TerrestrialEdge: terrEdge.City.Name,
			StarlinkHit:     float64(starHits) / float64(requests),
			TerrestrialHit:  float64(terrHits) / float64(requests),
		})
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("experiments: no hit-rate rows")
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Country < rows[j].Country })
	return rows, nil
}
