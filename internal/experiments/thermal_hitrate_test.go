package experiments

import "testing"

func TestThermalFeasibility(t *testing.T) {
	s := testSuite(t)
	rows, maxDuty, err := s.ThermalFeasibility()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if maxDuty < 0.5 || maxDuty > 0.7 {
		t.Errorf("sustainable bound = %v, want ~0.6", maxDuty)
	}
	byPct := map[int]ThermalRow{}
	for _, r := range rows {
		byPct[r.FractionPct] = r
		if r.PeakC <= 0 {
			t.Errorf("%d%%: no peak recorded", r.FractionPct)
		}
	}
	// The paper's feasible point (50%) stays thermally safe; 100% does not.
	if r := byPct[50]; !r.Sustainable || r.OverShare > 0.02 {
		t.Errorf("50%% should be sustainable: %+v", r)
	}
	if r := byPct[100]; r.Sustainable || r.OverShare == 0 {
		t.Errorf("100%% should overheat: %+v", r)
	}
	// Peak temperature grows with the duty fraction.
	if byPct[30].PeakC > byPct[80].PeakC {
		t.Errorf("peaks not monotone: 30%%=%.1f 80%%=%.1f", byPct[30].PeakC, byPct[80].PeakC)
	}
}

func TestCacheMissRates(t *testing.T) {
	s := testSuite(t)
	rows, err := s.CacheMissRates()
	if err != nil {
		t.Fatal(err)
	}
	byISO := map[string]HitRateRow{}
	for _, r := range rows {
		byISO[r.Country] = r
		if r.TerrestrialHit <= 0 {
			t.Errorf("%s: terrestrial hit rate %v, edges were warmed", r.Country, r.TerrestrialHit)
		}
	}
	// §2's claim: Starlink users in PoP-remote countries see far worse hit
	// rates than terrestrial users in the same country, because the remote
	// edge caches another region's content.
	for _, iso := range []string{"MZ", "KE", "ZM"} {
		r, ok := byISO[iso]
		if !ok {
			t.Fatalf("missing row for %s", iso)
		}
		if r.StarlinkEdge == r.TerrestrialEdge {
			t.Errorf("%s: same serving edge on both networks (%s)", iso, r.StarlinkEdge)
		}
		if r.StarlinkHit >= r.TerrestrialHit {
			t.Errorf("%s: Starlink hit rate %.2f should be below terrestrial %.2f",
				iso, r.StarlinkHit, r.TerrestrialHit)
		}
		if r.TerrestrialHit-r.StarlinkHit < 0.1 {
			t.Errorf("%s: hit-rate gap %.2f too small for the paper's claim",
				iso, r.TerrestrialHit-r.StarlinkHit)
		}
	}
	// Countries with a domestic PoP in the same region see similar rates.
	for _, iso := range []string{"DE", "ES", "JP", "US"} {
		r, ok := byISO[iso]
		if !ok {
			t.Fatalf("missing row for %s", iso)
		}
		if gap := r.TerrestrialHit - r.StarlinkHit; gap > 0.25 {
			t.Errorf("%s: unexpected hit-rate gap %.2f with a local PoP", iso, gap)
		}
	}
}
