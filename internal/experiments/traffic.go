package experiments

import (
	"time"

	"spacecdn/internal/spacecdn"
	"spacecdn/internal/stats"
	"spacecdn/internal/traffic"
)

// This file drives the streaming traffic engine (experiment id "traffic"):
// a modeled production day from a million-user population resolved through
// the full CDN while the constellation sweeps underneath it. CI emits the
// result as BENCH_traffic.json and the bench-regression gate
// (scripts/benchdiff.go) holds every commit to its bands, so this is the
// standing load harness the scale-out and serving-daemon work is measured
// against.

// Placement tiers: the hottest objects ride four replicas per plane, the
// next tier one. Tiers re-apply whenever a release permutes the ranks —
// the admission policy a popularity-driven control plane converges to.
const (
	trafficHotTier  = 24
	trafficWarmTier = 96
)

// TrafficResult is the outcome of one traffic day.
type TrafficResult struct {
	Users    int     // modeled subscriber population
	Steps    int     // batches resolved (one sweep advance each)
	SimHours float64 // simulated span
	Cells    int     // populated cities

	Requests int // resolved requests (arrivals + session re-fetches)
	Errors   int
	// PeakStepRequests is the largest single batch — the load spike the
	// diurnal peak pushes through ResolveAll.
	PeakStepRequests int

	// Generation-side counters.
	Arrivals        int64
	SessionsOpened  int64
	SessionRequests int64
	Releases        int
	FlashCrowds     int
	RegionalEvents  int

	// Throughput: Sustained covers the whole engine loop (generation +
	// sweep advance + resolve); the split rates isolate the two halves.
	Workers            int
	SustainedReqPerSec float64
	GenReqPerSec       float64
	ResolveReqPerSec   float64

	// Serving mix over successful requests.
	OverheadShare float64
	ISLShare      float64
	GroundShare   float64

	// Client-observed latency over successful requests.
	MeanMs float64
	P50Ms  float64
	P95Ms  float64
	P99Ms  float64
}

// trafficConfig derives the generator configuration: the suite override
// when set (tests use tiny populations), else the fast or full preset.
func (s *Suite) trafficConfig() traffic.Config {
	if s.TrafficConfig != nil {
		return *s.TrafficConfig
	}
	cfg := traffic.DefaultConfig()
	if s.Fast {
		cfg = traffic.FastConfig()
	}
	cfg.Seed = s.Seed
	cfg.Workers = s.Workers
	return cfg
}

// Traffic streams a production day through the resolve path riding the
// sweep cursor: each step advances the constellation to the batch's sim
// time, refreshes tiered placement if catalog ranks moved, and fans the
// batch across the worker pool. The whole run is deterministic for any
// worker count — generation shards, batch shards, and placement all key
// their randomness off the seed, never the schedule.
func (s *Suite) Traffic() (TrafficResult, error) {
	cfg := s.trafficConfig()
	gen, err := traffic.New(cfg)
	if err != nil {
		return TrafficResult{}, err
	}
	sys, err := s.newSystem(spacecdn.DefaultConfig())
	if err != nil {
		return TrafficResult{}, err
	}
	res := TrafficResult{
		Users:    gen.Users(),
		Steps:    gen.Steps(),
		SimHours: (time.Duration(gen.Steps()) * gen.Step()).Hours(),
		Cells:    gen.Cells(),
		Workers:  cfg.Workers,
	}

	place := func() error {
		for i, o := range gen.Top(trafficHotTier + trafficWarmTier) {
			pl := spacecdn.PerPlaneSpacing{ReplicasPerPlane: 1}
			if i < trafficHotTier {
				pl.ReplicasPerPlane = 4
			}
			if _, err := spacecdn.Apply(sys, pl, o); err != nil {
				return err
			}
		}
		return nil
	}

	rng := stats.NewRand(s.Seed).Fork("traffic-resolve")
	cur := s.sweepCursor(0)
	defer cur.Close()
	var (
		ms       []float64
		sumMs    float64
		served   [3]int
		genDur   time.Duration
		resDur   time.Duration
		placedAt = -1
	)
	start := time.Now()
	for {
		g0 := time.Now()
		reqs, at, ok := gen.NextBatch()
		genDur += time.Since(g0)
		if !ok {
			break
		}
		snap := cur.AdvanceTo(at)
		// Placement mutates caches, so it runs sequentially between
		// batches; resolution over the placed state is read-only.
		if gen.Releases() != placedAt {
			if err := place(); err != nil {
				return res, err
			}
			placedAt = gen.Releases()
		}
		r0 := time.Now()
		out := sys.ResolveAll(reqs, snap, rng, s.Workers)
		resDur += time.Since(r0)
		if len(reqs) > res.PeakStepRequests {
			res.PeakStepRequests = len(reqs)
		}
		for i := range out {
			res.Requests++
			if out[i].Err != nil {
				res.Errors++
				continue
			}
			served[out[i].Source]++
			m := float64(out[i].RTT) / float64(time.Millisecond)
			sumMs += m
			ms = append(ms, m)
		}
	}
	wall := time.Since(start)

	gs := gen.Stats()
	res.Arrivals = gs.Arrivals
	res.SessionsOpened = gs.SessionsOpened
	res.SessionRequests = gs.SessionRequests
	res.Releases = gs.Releases
	res.FlashCrowds = gs.FlashCrowds
	res.RegionalEvents = gs.RegionalEvents

	if res.Requests > 0 && wall > 0 {
		res.SustainedReqPerSec = float64(res.Requests) / wall.Seconds()
	}
	if res.Requests > 0 && genDur > 0 {
		res.GenReqPerSec = float64(res.Requests) / genDur.Seconds()
	}
	if res.Requests > 0 && resDur > 0 {
		res.ResolveReqPerSec = float64(res.Requests) / resDur.Seconds()
	}
	if n := len(ms); n > 0 {
		res.OverheadShare = float64(served[spacecdn.SourceOverhead]) / float64(n)
		res.ISLShare = float64(served[spacecdn.SourceISL]) / float64(n)
		res.GroundShare = float64(served[spacecdn.SourceGround]) / float64(n)
		res.MeanMs = sumMs / float64(n)
		cdf := stats.NewCDF(ms)
		res.P50Ms = cdf.Median()
		res.P95Ms = cdf.Quantile(0.95)
		res.P99Ms = cdf.Quantile(0.99)
	}
	return res, nil
}
