package experiments

import (
	"testing"
	"time"

	"spacecdn/internal/traffic"
)

// tinyTrafficConfig keeps the full model (diurnal arrivals, churn, sessions)
// at a population small enough for the test suite.
func tinyTrafficConfig(workers int) *traffic.Config {
	cfg := traffic.DefaultConfig()
	cfg.Users = 20_000
	cfg.Horizon = 2 * time.Hour
	cfg.Step = 15 * time.Minute
	cfg.ReqPerUserDay = 3
	cfg.CatalogSize = 256
	cfg.ReleaseEvery = 40 * time.Minute
	cfg.Seed = 1
	cfg.Workers = workers
	return &cfg
}

func TestTrafficExperiment(t *testing.T) {
	s := testSuite(t)
	s.TrafficConfig = tinyTrafficConfig(0)
	defer func() { s.TrafficConfig = nil }()

	res, err := s.Traffic()
	if err != nil {
		t.Fatal(err)
	}
	if res.Users != 20_000 || res.Steps != 8 || res.Cells == 0 {
		t.Fatalf("shape wrong: %+v", res)
	}
	if res.Requests == 0 || res.Requests != int(res.Arrivals+res.SessionRequests) {
		t.Fatalf("requests %d != arrivals %d + session re-fetches %d",
			res.Requests, res.Arrivals, res.SessionRequests)
	}
	if res.Errors > res.Requests/10 {
		t.Fatalf("errors = %d of %d requests", res.Errors, res.Requests)
	}
	served := res.Requests - res.Errors
	if served > 0 {
		sum := res.OverheadShare + res.ISLShare + res.GroundShare
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("serving shares sum to %v", sum)
		}
		if res.P50Ms <= 0 || res.P50Ms > res.P95Ms || res.P95Ms > res.P99Ms {
			t.Fatalf("latency percentiles out of order: %+v", res)
		}
	}
	if res.SustainedReqPerSec <= 0 || res.ResolveReqPerSec <= 0 {
		t.Fatalf("throughput not reported: %+v", res)
	}
	if res.PeakStepRequests == 0 || res.PeakStepRequests > res.Requests {
		t.Fatalf("peak step %d outside (0, %d]", res.PeakStepRequests, res.Requests)
	}
}

// The end-to-end result — generation plus batch resolution — is identical
// for every worker count; only the timings may differ.
func TestTrafficWorkerInvariance(t *testing.T) {
	s := testSuite(t)
	defer func() { s.TrafficConfig = nil; s.SetWorkers(0) }()

	strip := func(r TrafficResult) TrafficResult {
		r.SustainedReqPerSec = 0
		r.GenReqPerSec = 0
		r.ResolveReqPerSec = 0
		r.Workers = 0
		return r
	}
	s.TrafficConfig = tinyTrafficConfig(1)
	s.SetWorkers(1)
	seq, err := s.Traffic()
	if err != nil {
		t.Fatal(err)
	}
	s.TrafficConfig = tinyTrafficConfig(6)
	s.SetWorkers(6)
	par, err := s.Traffic()
	if err != nil {
		t.Fatal(err)
	}
	if strip(seq) != strip(par) {
		t.Fatalf("results diverge across worker counts:\n  seq %+v\n  par %+v", strip(seq), strip(par))
	}
}
