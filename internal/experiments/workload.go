package experiments

import (
	"fmt"
	"time"

	"spacecdn/internal/content"
	"spacecdn/internal/geo"
	"spacecdn/internal/spacecdn"
	"spacecdn/internal/stats"
)

// This file drives the full three-stage Resolve path as a request workload
// (experiment id "workload"). Unlike the figure experiments, which use the
// measurement APIs (FetchAtHops, NearestReplicaRTT), this one exercises
// Resolve itself — the path the telemetry layer instruments — with a content
// mix constructed so every serving source appears: a hot object pinned on
// each client's overhead satellite, a warm object sparsely replicated so it
// is reached over ISLs, and a cold object served from the ground CDN.

// WorkloadRow aggregates the requests one serving source answered.
type WorkloadRow struct {
	Source   string
	Requests int
	MedianMs float64
	P90Ms    float64
	MeanHops float64
}

// WorkloadResult is the outcome of a ResolveWorkload run.
type WorkloadResult struct {
	Rows     []WorkloadRow
	Requests int
	Errors   int
}

// ResolveWorkload resolves the hot/warm/cold mix from every Starlink-covered
// client city at each snapshot time and aggregates latency per serving
// source. With suite telemetry attached, this experiment populates the
// per-source request counters, the RTT histogram, and the sampled traces.
//
// Each snapshot runs in two phases: a sequential placement pass that pins
// the hot object on every client's overhead satellite, then a read-only
// ResolveAll over the snapshot's whole request batch sharded across
// s.Workers. Aggregation walks results in request order, so the outcome is
// identical for every worker count.
func (s *Suite) ResolveWorkload() (WorkloadResult, error) {
	sys, err := s.newSystem(spacecdn.DefaultConfig())
	if err != nil {
		return WorkloadResult{}, err
	}
	hot := content.Object{ID: "wl-hot", Bytes: 64 << 20, Region: geo.RegionEurope}
	warm := content.Object{ID: "wl-warm", Bytes: 256 << 20, Region: geo.RegionEurope}
	cold := content.Object{ID: "wl-cold", Bytes: 1 << 30, Region: geo.RegionEurope}
	if _, err := spacecdn.Apply(sys, spacecdn.PerPlaneSpacing{ReplicasPerPlane: 4}, hot); err != nil {
		return WorkloadResult{}, err
	}
	if _, err := spacecdn.Apply(sys, spacecdn.PerPlaneSpacing{ReplicasPerPlane: 1}, warm); err != nil {
		return WorkloadResult{}, err
	}

	rng := stats.NewRand(s.Seed).Fork("workload")
	type agg struct {
		ms   []float64
		hops int
	}
	bySource := map[spacecdn.Source]*agg{}
	res := WorkloadResult{}
	cur := s.sweepCursor(s.snapshotTimes()[0])
	defer cur.Close()
	for _, at := range s.snapshotTimes() {
		snap := cur.AdvanceTo(at)
		// Placement pass: pin the hot object on the satellite currently
		// overhead each city, the steady state a popularity-driven admission
		// policy converges to. Placement mutates caches, so it stays
		// sequential and completes before any request resolves.
		reqs := make([]spacecdn.Request, 0, 3*len(s.clientCities()))
		for _, city := range s.clientCities() {
			if up, ok := snap.BestVisible(city.Loc); ok {
				sys.Store(up.ID, hot)
			}
			for _, o := range []content.Object{hot, warm, cold} {
				reqs = append(reqs, spacecdn.Request{Client: city.Loc, ISO2: city.Country, Obj: o})
			}
		}
		// Resolve pass: read-only over the placed state, sharded.
		for _, r := range sys.ResolveAll(reqs, snap, rng, s.Workers) {
			res.Requests++
			if r.Err != nil {
				res.Errors++
				continue
			}
			a := bySource[r.Source]
			if a == nil {
				a = &agg{}
				bySource[r.Source] = a
			}
			a.ms = append(a.ms, float64(r.RTT)/float64(time.Millisecond))
			a.hops += r.Hops
		}
	}
	for _, src := range spacecdn.Sources() {
		a := bySource[src]
		if a == nil {
			continue
		}
		cdf := stats.NewCDF(a.ms)
		res.Rows = append(res.Rows, WorkloadRow{
			Source:   src.String(),
			Requests: len(a.ms),
			MedianMs: cdf.Median(),
			P90Ms:    cdf.Quantile(0.9),
			MeanHops: float64(a.hops) / float64(len(a.ms)),
		})
	}
	// Rows follow Source declaration order (overhead, isl, ground).
	if len(res.Rows) != 3 {
		return res, fmt.Errorf("experiments: workload reached %d of 3 sources", len(res.Rows))
	}
	return res, nil
}
