package experiments

import (
	"testing"

	"spacecdn/internal/telemetry"
)

func TestResolveWorkload(t *testing.T) {
	s := testSuite(t)
	tel := telemetry.New(0.05)
	s.SetTelemetry(tel)
	defer func() { s.SetTelemetry(nil); s.Env.LSN.SetTelemetry(nil) }()
	if s.Telemetry() != tel {
		t.Fatal("suite telemetry accessor broken")
	}

	res, err := s.ResolveWorkload()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want one per source", len(res.Rows))
	}
	order := []string{"overhead", "isl", "ground"}
	for i, row := range res.Rows {
		if row.Source != order[i] {
			t.Errorf("row %d source = %s, want %s", i, row.Source, order[i])
		}
		if row.Requests == 0 || row.MedianMs <= 0 {
			t.Errorf("source %s: %+v", row.Source, row)
		}
	}
	// Overhead is the cheapest source by construction; ISL and ground trade
	// places depending on how well a client's country is served, so no
	// ordering is asserted between them.
	if res.Rows[0].MedianMs >= res.Rows[1].MedianMs || res.Rows[0].MedianMs >= res.Rows[2].MedianMs {
		t.Errorf("overhead not cheapest: %+v", res.Rows)
	}
	if res.Rows[1].MeanHops <= 0 {
		t.Errorf("isl requests report no hops: %+v", res.Rows[1])
	}
	if res.Errors > res.Requests/10 {
		t.Errorf("errors = %d of %d requests", res.Errors, res.Requests)
	}

	// The suite-attached telemetry observed the whole workload.
	snapshot := tel.Snapshot()
	var counted int64
	for _, row := range res.Rows {
		cv, ok := snapshot.Counter("spacecdn_resolve_requests_total",
			map[string]string{"source": row.Source})
		if !ok || cv.Value != int64(row.Requests) {
			t.Errorf("counter{source=%s} = %+v, want %d", row.Source, cv, row.Requests)
		}
		counted += cv.Value
	}
	hv, ok := snapshot.Histogram("spacecdn_resolve_rtt_ms")
	if !ok || hv.Count != counted {
		t.Errorf("rtt histogram count = %+v, want %d", hv, counted)
	}
	if len(snapshot.Traces) == 0 {
		t.Error("no traces sampled at rate 0.05")
	}
	for _, tr := range snapshot.Traces {
		if d := tr.SpanSum() - tr.RTT; d != 0 {
			t.Errorf("trace %d span sum off by %v", tr.Seq, d)
		}
	}
}
