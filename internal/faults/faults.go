// Package faults generates deterministic fault-injection plans for the LEO
// CDN: satellite outages with repair times, ISL link flaps, and ground-PoP
// blackouts. A plan is seeded and reproducible — the same configuration over
// the same constellation always yields the same outage schedule — and is
// queryable at any simulation time as a View whose dead-satellite mask is a
// routing.Bitset, composing directly with the resolve path's ActiveSet and
// replica-bitset machinery.
//
// Views carry a fault epoch: all times between the same two outage
// boundaries share one immutable View (and one epoch), so downstream caches
// — notably the constellation's epoch-keyed path-tree memo — can key on the
// epoch instead of the raw time. Epoch 0 is reserved for "no active faults";
// any view with active outages has a non-zero epoch.
package faults

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"spacecdn/internal/constellation"
	"spacecdn/internal/routing"
	"spacecdn/internal/stats"
)

// Kind classifies what an outage takes down.
type Kind int

const (
	KindSatellite Kind = iota // whole satellite: cache, relay, and visibility
	KindISL                   // one inter-satellite link
	KindPoP                   // a ground PoP and its fiber tail

	numKinds // keep last: sizes the name table
)

// kindNames is the exhaustive name table; the [numKinds] bound makes a
// constant added without a name a compile error.
var kindNames = [numKinds]string{
	KindSatellite: "satellite",
	KindISL:       "isl",
	KindPoP:       "pop",
}

func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// KindFromString maps a kind name back to its constant.
func KindFromString(name string) (Kind, bool) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), true
		}
	}
	return 0, false
}

// Kinds returns every fault kind, in declaration order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Outage is one scheduled failure: the named entity is down during
// [Start, End) and healthy outside it.
type Outage struct {
	Kind Kind
	// Sat is the failed satellite (KindSatellite).
	Sat constellation.SatID
	// Link is the failed inter-satellite link (KindISL), endpoints normalized
	// A < B.
	Link constellation.LinkID
	// PoP is the blacked-out PoP name, lower-case (KindPoP).
	PoP string

	Start time.Duration
	End   time.Duration
}

// ActiveAt reports whether the outage is in effect at time t.
func (o Outage) ActiveAt(t time.Duration) bool {
	return t >= o.Start && t < o.End
}

// Config parameterizes plan generation. Fractions are the expected share of
// each entity class that fails at least once within the horizon; repair times
// are exponentially distributed around the per-kind mean.
type Config struct {
	// Seed drives all random draws. Same seed, same constellation, same
	// config — same plan.
	Seed int64
	// Horizon is the window outage start times are drawn from. Outages may
	// end after the horizon (a failure near the edge still takes its full
	// repair time).
	Horizon time.Duration

	SatFraction   float64
	SatMeanOutage time.Duration

	ISLFraction   float64
	ISLMeanOutage time.Duration

	PoPFraction   float64
	PoPMeanOutage time.Duration
}

// DefaultConfig returns zero failure fractions (an empty plan) with repair
// times in the order real operators report: satellites stay down longest
// (deorbit/respawn), ISLs flap briefly, PoPs recover within an ops shift.
func DefaultConfig() Config {
	return Config{
		Horizon:       time.Hour,
		SatMeanOutage: 20 * time.Minute,
		ISLMeanOutage: 5 * time.Minute,
		PoPMeanOutage: 15 * time.Minute,
	}
}

// Validate reports a descriptive error for unusable configuration.
func (c Config) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"satellite", c.SatFraction},
		{"isl", c.ISLFraction},
		{"pop", c.PoPFraction},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("faults: %s failure fraction %v out of range [0,1]", f.name, f.v)
		}
	}
	if c.SatFraction > 0 || c.ISLFraction > 0 || c.PoPFraction > 0 {
		if c.Horizon <= 0 {
			return fmt.Errorf("faults: horizon must be positive when any failure fraction is")
		}
		if c.SatFraction > 0 && c.SatMeanOutage <= 0 {
			return fmt.Errorf("faults: satellite mean outage must be positive")
		}
		if c.ISLFraction > 0 && c.ISLMeanOutage <= 0 {
			return fmt.Errorf("faults: isl mean outage must be positive")
		}
		if c.PoPFraction > 0 && c.PoPMeanOutage <= 0 {
			return fmt.Errorf("faults: pop mean outage must be positive")
		}
	}
	return nil
}

// View is the fault state over one inter-boundary interval: immutable,
// shared by every query whose time falls inside the interval, and safe for
// concurrent use. The zero view (Epoch 0, nil masks) means "everything up".
type View struct {
	// Epoch identifies the fault state. 0 is reserved for "no active
	// outages"; distinct non-empty states have distinct non-zero epochs.
	Epoch uint64
	// DeadSats has a bit set per failed satellite (nil when none are down).
	DeadSats routing.Bitset
	// DeadLinks lists failed ISLs, endpoints normalized, sorted.
	DeadLinks []constellation.LinkID
	// DeadPoPs maps lower-case PoP names to blackout (nil when none).
	DeadPoPs map[string]bool
}

// Empty reports whether no outage is active in this view.
func (v *View) Empty() bool {
	return v.DeadSats == nil && len(v.DeadLinks) == 0 && len(v.DeadPoPs) == 0
}

// SatDead reports whether the satellite is down.
func (v *View) SatDead(id constellation.SatID) bool {
	return v.DeadSats.Test(int(id))
}

// LinkDead reports whether the ISL between a and b is down (in either
// endpoint order). A link whose endpoint satellite is down is already gone
// from the masked topology; LinkDead covers only explicit link outages.
func (v *View) LinkDead(a, b constellation.SatID) bool {
	want := constellation.NormalizedLink(a, b)
	for _, l := range v.DeadLinks {
		if l == want {
			return true
		}
	}
	return false
}

// PoPDead reports whether the named PoP is blacked out (case-insensitive).
func (v *View) PoPDead(name string) bool {
	return v.DeadPoPs[strings.ToLower(name)]
}

// emptyView is the canonical "everything up" view, shared by every plan and
// every fault-free interval.
var emptyView = &View{}

// Plan is an immutable outage schedule plus a cache of per-interval views.
// Safe for concurrent use.
type Plan struct {
	total   int // satellites in the constellation, sizes DeadSats masks
	outages []Outage
	bounds  []time.Duration // sorted unique outage start/end times

	mu    sync.Mutex
	views map[int]*View // interval index -> view, built on first query
}

// NewPlan draws an outage schedule for the constellation and PoP set.
// Each entity class consumes an independent forked stream, so changing one
// class's fraction never shifts another's draws. ISL candidates are the
// +grid links of the constellation (time-invariant pairing); PoP candidates
// are the given names, iterated in sorted order for determinism.
func NewPlan(cfg Config, c *constellation.Constellation, pops []string) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if c == nil {
		return nil, fmt.Errorf("faults: constellation is required")
	}
	rng := stats.NewRand(cfg.Seed)
	satRng, islRng, popRng := rng.Fork("sats"), rng.Fork("isls"), rng.Fork("pops")

	var outages []Outage
	total := c.Total()
	if cfg.SatFraction > 0 {
		for id := 0; id < total; id++ {
			if !satRng.Bool(cfg.SatFraction) {
				continue
			}
			start, end := drawWindow(satRng, cfg.Horizon, cfg.SatMeanOutage)
			outages = append(outages, Outage{
				Kind: KindSatellite, Sat: constellation.SatID(id),
				Start: start, End: end,
			})
		}
	}
	if cfg.ISLFraction > 0 {
		for _, link := range constellationLinks(c) {
			if !islRng.Bool(cfg.ISLFraction) {
				continue
			}
			start, end := drawWindow(islRng, cfg.Horizon, cfg.ISLMeanOutage)
			outages = append(outages, Outage{
				Kind: KindISL, Link: link,
				Start: start, End: end,
			})
		}
	}
	if cfg.PoPFraction > 0 {
		names := make([]string, 0, len(pops))
		for _, n := range pops {
			names = append(names, strings.ToLower(n))
		}
		sort.Strings(names)
		for _, name := range names {
			if !popRng.Bool(cfg.PoPFraction) {
				continue
			}
			start, end := drawWindow(popRng, cfg.Horizon, cfg.PoPMeanOutage)
			outages = append(outages, Outage{
				Kind: KindPoP, PoP: name,
				Start: start, End: end,
			})
		}
	}
	return newPlan(total, outages), nil
}

// NewPlanFromOutages builds a plan from a handcrafted outage list — the
// entry point for scripted scenarios and regression tests. total sizes the
// dead-satellite masks; link endpoints are normalized and PoP names
// lower-cased; outages with empty windows are dropped.
func NewPlanFromOutages(total int, outages []Outage) *Plan {
	kept := make([]Outage, 0, len(outages))
	for _, o := range outages {
		if o.End <= o.Start {
			continue
		}
		if o.Kind == KindISL {
			o.Link = constellation.NormalizedLink(o.Link.A, o.Link.B)
		}
		if o.Kind == KindPoP {
			o.PoP = strings.ToLower(o.PoP)
		}
		kept = append(kept, o)
	}
	return newPlan(total, kept)
}

func newPlan(total int, outages []Outage) *Plan {
	p := &Plan{total: total, outages: outages, views: make(map[int]*View)}
	seen := make(map[time.Duration]bool, 2*len(outages))
	for _, o := range outages {
		for _, t := range [2]time.Duration{o.Start, o.End} {
			if !seen[t] {
				seen[t] = true
				p.bounds = append(p.bounds, t)
			}
		}
	}
	sort.Slice(p.bounds, func(i, j int) bool { return p.bounds[i] < p.bounds[j] })
	return p
}

// drawWindow draws one outage window: a uniform start within the horizon and
// an exponential duration around the mean, floored at one second so every
// outage is observable.
func drawWindow(rng *stats.Rand, horizon, mean time.Duration) (start, end time.Duration) {
	start = time.Duration(rng.Uniform(0, float64(horizon)))
	dur := time.Duration(rng.Exponential(float64(mean)))
	if dur < time.Second {
		dur = time.Second
	}
	return start, start + dur
}

// constellationLinks enumerates the +grid ISLs once, endpoints normalized,
// in the deterministic first-encounter order of the snapshot graph build.
// The pairing is time-invariant, so the t=0 snapshot defines the link set.
func constellationLinks(c *constellation.Constellation) []constellation.LinkID {
	g := c.Snapshot(0).ISLGraph()
	var links []constellation.LinkID
	for n := 0; n < g.Len(); n++ {
		for _, e := range g.Neighbors(routing.NodeID(n)) {
			if int(e.To) < n {
				continue // undirected: count each link at its lower endpoint
			}
			links = append(links, constellation.LinkID{A: constellation.SatID(n), B: constellation.SatID(e.To)})
		}
	}
	return links
}

// Outages returns a copy of the schedule.
func (p *Plan) Outages() []Outage {
	return append([]Outage(nil), p.outages...)
}

// Empty reports whether the plan schedules no outages at all.
func (p *Plan) Empty() bool { return len(p.outages) == 0 }

// ViewAt returns the fault state at time t. Times between the same two
// outage boundaries share one cached View; times with no active outage
// share the canonical empty view with Epoch 0.
func (p *Plan) ViewAt(t time.Duration) *View {
	if len(p.outages) == 0 {
		return emptyView
	}
	// Interval index: the number of boundaries at or before t. Index 0 is
	// the interval before the first outage starts.
	idx := sort.Search(len(p.bounds), func(i int) bool { return p.bounds[i] > t })
	p.mu.Lock()
	if v, ok := p.views[idx]; ok {
		p.mu.Unlock()
		return v
	}
	p.mu.Unlock()
	v := p.buildView(t, idx)
	p.mu.Lock()
	if prev, ok := p.views[idx]; ok {
		v = prev // racing builder won; identical content
	} else {
		p.views[idx] = v
	}
	p.mu.Unlock()
	return v
}

// buildView materializes the view for the interval containing t. Any
// interval with at least one active outage has a boundary at or before t,
// so idx >= 1 there and the non-zero epoch invariant holds.
func (p *Plan) buildView(t time.Duration, idx int) *View {
	var deadSats routing.Bitset
	var deadLinks []constellation.LinkID
	var deadPoPs map[string]bool
	for _, o := range p.outages {
		if !o.ActiveAt(t) {
			continue
		}
		switch o.Kind {
		case KindSatellite:
			if deadSats == nil {
				deadSats = routing.NewBitset(p.total)
			}
			deadSats.Set(int(o.Sat))
		case KindISL:
			deadLinks = append(deadLinks, o.Link)
		case KindPoP:
			if deadPoPs == nil {
				deadPoPs = make(map[string]bool)
			}
			deadPoPs[o.PoP] = true
		}
	}
	if deadSats == nil && len(deadLinks) == 0 && len(deadPoPs) == 0 {
		return emptyView
	}
	sort.Slice(deadLinks, func(i, j int) bool {
		if deadLinks[i].A != deadLinks[j].A {
			return deadLinks[i].A < deadLinks[j].A
		}
		return deadLinks[i].B < deadLinks[j].B
	})
	return &View{
		Epoch:     uint64(idx),
		DeadSats:  deadSats,
		DeadLinks: deadLinks,
		DeadPoPs:  deadPoPs,
	}
}
