package faults

import (
	"testing"
	"time"

	"spacecdn/internal/constellation"
	"spacecdn/internal/orbit"
)

func smallConst(t *testing.T) *constellation.Constellation {
	t.Helper()
	cfg := constellation.Config{
		Walker: orbit.Walker{
			Planes: 6, SatsPerPlane: 8, InclinationDeg: 53,
			AltitudeKm: 550, PhasingF: 1,
		},
		MinElevationDeg: 25,
		CrossPlaneISLs:  true,
	}
	return constellation.MustNew(cfg)
}

func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		name := k.String()
		if name == "" {
			t.Fatalf("kind %d has no name", int(k))
		}
		back, ok := KindFromString(name)
		if !ok || back != k {
			t.Fatalf("round trip %v -> %q -> %v, ok=%v", k, name, back, ok)
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Fatalf("out-of-range stringer = %q", Kind(99).String())
	}
	if _, ok := KindFromString("nope"); ok {
		t.Fatal("unknown name must not resolve")
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := cfg
	bad.SatFraction = 1.5
	if bad.Validate() == nil {
		t.Fatal("fraction > 1 must fail")
	}
	bad = cfg
	bad.SatFraction = 0.1
	bad.Horizon = 0
	if bad.Validate() == nil {
		t.Fatal("zero horizon with non-zero fraction must fail")
	}
	bad = cfg
	bad.ISLFraction = 0.1
	bad.ISLMeanOutage = 0
	if bad.Validate() == nil {
		t.Fatal("zero mean outage with non-zero fraction must fail")
	}
}

func TestEmptyPlan(t *testing.T) {
	c := smallConst(t)
	cfg := DefaultConfig()
	p, err := NewPlan(cfg, c, []string{"frankfurt"})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Empty() {
		t.Fatal("zero fractions must yield an empty plan")
	}
	for _, at := range []time.Duration{0, time.Minute, time.Hour} {
		v := p.ViewAt(at)
		if !v.Empty() || v.Epoch != 0 {
			t.Fatalf("empty plan view at %v: %+v", at, v)
		}
	}
}

func TestPlanDeterminism(t *testing.T) {
	c := smallConst(t)
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.SatFraction = 0.5
	cfg.ISLFraction = 0.3
	cfg.PoPFraction = 0.5
	pops := []string{"Frankfurt", "Seattle", "Sydney"}
	a, err := NewPlan(cfg, c, pops)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(cfg, c, pops)
	if err != nil {
		t.Fatal(err)
	}
	oa, ob := a.Outages(), b.Outages()
	if len(oa) == 0 {
		t.Fatal("expected outages at these fractions")
	}
	if len(oa) != len(ob) {
		t.Fatalf("outage counts differ: %d vs %d", len(oa), len(ob))
	}
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatalf("outage %d differs: %+v vs %+v", i, oa[i], ob[i])
		}
	}
	// A different seed must produce a different schedule.
	cfg.Seed = 8
	d, err := NewPlan(cfg, c, pops)
	if err != nil {
		t.Fatal(err)
	}
	od := d.Outages()
	same := len(od) == len(oa)
	if same {
		for i := range oa {
			if oa[i] != od[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestForkedStreamsIndependent(t *testing.T) {
	c := smallConst(t)
	cfg := DefaultConfig()
	cfg.Seed = 11
	cfg.SatFraction = 0.4
	base, err := NewPlan(cfg, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Enabling PoP faults must not shift the satellite outage draws.
	cfg.PoPFraction = 1
	both, err := NewPlan(cfg, c, []string{"frankfurt", "tokyo"})
	if err != nil {
		t.Fatal(err)
	}
	var satsBase, satsBoth []Outage
	for _, o := range base.Outages() {
		if o.Kind == KindSatellite {
			satsBase = append(satsBase, o)
		}
	}
	for _, o := range both.Outages() {
		if o.Kind == KindSatellite {
			satsBoth = append(satsBoth, o)
		}
	}
	if len(satsBase) != len(satsBoth) {
		t.Fatalf("satellite outage count changed with pop faults: %d vs %d", len(satsBase), len(satsBoth))
	}
	for i := range satsBase {
		if satsBase[i] != satsBoth[i] {
			t.Fatalf("satellite outage %d shifted: %+v vs %+v", i, satsBase[i], satsBoth[i])
		}
	}
}

func TestViewAtIntervals(t *testing.T) {
	p := NewPlanFromOutages(48, []Outage{
		{Kind: KindSatellite, Sat: 3, Start: 10 * time.Minute, End: 20 * time.Minute},
		{Kind: KindISL, Link: constellation.LinkID{A: 9, B: 2}, Start: 15 * time.Minute, End: 25 * time.Minute},
		{Kind: KindPoP, PoP: "Frankfurt", Start: 5 * time.Minute, End: 12 * time.Minute},
	})
	// Before anything starts: the canonical empty view.
	if v := p.ViewAt(0); !v.Empty() || v.Epoch != 0 {
		t.Fatalf("t=0 view should be empty, got %+v", v)
	}
	// t=6m: only the PoP blackout.
	v := p.ViewAt(6 * time.Minute)
	if v.Empty() || v.Epoch == 0 {
		t.Fatal("t=6m must have active faults with a non-zero epoch")
	}
	if !v.PoPDead("frankfurt") || !v.PoPDead("FRANKFURT") {
		t.Fatal("PoP blackout missed (lookup must be case-insensitive)")
	}
	if v.SatDead(3) || v.LinkDead(2, 9) {
		t.Fatal("sat/link outages must not be active yet")
	}
	// t=16m: all three active; link lookup normalizes endpoint order.
	v16 := p.ViewAt(16 * time.Minute)
	if !v16.SatDead(3) || !v16.LinkDead(2, 9) || !v16.LinkDead(9, 2) {
		t.Fatalf("t=16m faults wrong: %+v", v16)
	}
	if v16.PoPDead("frankfurt") {
		t.Fatal("PoP must have recovered by 16m")
	}
	// Same interval shares the identical cached view; different intervals
	// have different epochs.
	if p.ViewAt(17*time.Minute) != v16 {
		t.Fatal("same interval must return the same cached view")
	}
	if v.Epoch == v16.Epoch {
		t.Fatal("distinct fault states must have distinct epochs")
	}
	// After everything repairs: empty again.
	if after := p.ViewAt(time.Hour); !after.Empty() || after.Epoch != 0 {
		t.Fatalf("post-repair view should be empty, got %+v", after)
	}
}

func TestNewPlanFromOutagesNormalizes(t *testing.T) {
	p := NewPlanFromOutages(10, []Outage{
		{Kind: KindSatellite, Sat: 1, Start: time.Minute, End: time.Minute}, // empty window: dropped
		{Kind: KindISL, Link: constellation.LinkID{A: 7, B: 4}, Start: 0, End: time.Minute},
	})
	got := p.Outages()
	if len(got) != 1 {
		t.Fatalf("want 1 outage after normalization, got %d", len(got))
	}
	if got[0].Link != (constellation.LinkID{A: 4, B: 7}) {
		t.Fatalf("link endpoints not normalized: %+v", got[0].Link)
	}
}

func TestPlanLinkCandidatesCoverGrid(t *testing.T) {
	c := smallConst(t)
	cfg := DefaultConfig()
	cfg.Seed = 3
	cfg.ISLFraction = 1 // every link fails once
	p, err := NewPlan(cfg, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	// EdgeCount counts directed edges; each undirected link stores two.
	want := c.Snapshot(0).ISLGraph().EdgeCount() / 2
	if got := len(p.Outages()); got != want {
		t.Fatalf("fraction 1 must fail every link: got %d, grid has %d", got, want)
	}
	for _, o := range p.Outages() {
		if o.Kind != KindISL || o.Link.A >= o.Link.B {
			t.Fatalf("bad link outage %+v", o)
		}
	}
}
