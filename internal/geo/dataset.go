package geo

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Region is a coarse continental region used for popularity modelling and
// infrastructure placement.
type Region int

// Continental regions.
const (
	RegionUnknown Region = iota
	RegionAfrica
	RegionEurope
	RegionNorthAmerica
	RegionSouthAmerica
	RegionAsia
	RegionOceania
)

var regionNames = map[Region]string{
	RegionUnknown:      "unknown",
	RegionAfrica:       "africa",
	RegionEurope:       "europe",
	RegionNorthAmerica: "north-america",
	RegionSouthAmerica: "south-america",
	RegionAsia:         "asia",
	RegionOceania:      "oceania",
}

func (r Region) String() string {
	if s, ok := regionNames[r]; ok {
		return s
	}
	return fmt.Sprintf("region(%d)", int(r))
}

// Regions lists all concrete regions (excluding RegionUnknown).
func Regions() []Region {
	return []Region{
		RegionAfrica, RegionEurope, RegionNorthAmerica,
		RegionSouthAmerica, RegionAsia, RegionOceania,
	}
}

// City is an embedded world-city record.
type City struct {
	Name    string
	Country string // ISO 3166-1 alpha-2
	Loc     Point
	Region  Region
}

// Country is an embedded country record. Centroid is approximated by the
// country's most significant population centre in the city table.
type Country struct {
	ISO2     string
	Name     string
	Region   Region
	Capital  string // city name used as the country's reference location
	Starlink bool   // Starlink consumer coverage as of the paper's study (2024)
}

// city constructs a City record; keeps the table below compact.
func city(name, iso2 string, lat, lon float64, r Region) City {
	return City{Name: name, Country: iso2, Loc: NewPoint(lat, lon), Region: r}
}

// cities is the embedded world-city dataset. Coordinates are city centres,
// rounded to ~100 m. The set is chosen to cover: every country named in the
// paper's Table 1 and figures, the Starlink PoP cities of Fig. 2, a
// Cloudflare-like CDN footprint on all continents, and enough extra
// population centres to sample "55 countries with Starlink coverage".
var cities = []City{
	// --- Africa ---
	city("Maputo", "MZ", -25.9692, 32.5732, RegionAfrica),
	city("Beira", "MZ", -19.8436, 34.8389, RegionAfrica),
	city("Johannesburg", "ZA", -26.2041, 28.0473, RegionAfrica),
	city("Cape Town", "ZA", -33.9249, 18.4241, RegionAfrica),
	city("Durban", "ZA", -29.8587, 31.0218, RegionAfrica),
	city("Nairobi", "KE", -1.2921, 36.8219, RegionAfrica),
	city("Mombasa", "KE", -4.0435, 39.6682, RegionAfrica),
	city("Lagos", "NG", 6.5244, 3.3792, RegionAfrica),
	city("Abuja", "NG", 9.0765, 7.3986, RegionAfrica),
	city("Kigali", "RW", -1.9441, 30.0619, RegionAfrica),
	city("Lusaka", "ZM", -15.3875, 28.3228, RegionAfrica),
	city("Ndola", "ZM", -12.9587, 28.6366, RegionAfrica),
	city("Mbabane", "SZ", -26.3054, 31.1367, RegionAfrica),
	city("Manzini", "SZ", -26.4833, 31.3667, RegionAfrica),
	city("Dar es Salaam", "TZ", -6.7924, 39.2083, RegionAfrica),
	city("Kampala", "UG", 0.3476, 32.5825, RegionAfrica),
	city("Accra", "GH", 5.6037, -0.1870, RegionAfrica),
	city("Abidjan", "CI", 5.3600, -4.0083, RegionAfrica),
	city("Dakar", "SN", 14.7167, -17.4677, RegionAfrica),
	city("Cairo", "EG", 30.0444, 31.2357, RegionAfrica),
	city("Casablanca", "MA", 33.5731, -7.5898, RegionAfrica),
	city("Tunis", "TN", 36.8065, 10.1815, RegionAfrica),
	city("Luanda", "AO", -8.8390, 13.2894, RegionAfrica),
	city("Harare", "ZW", -17.8252, 31.0335, RegionAfrica),
	city("Gaborone", "BW", -24.6282, 25.9231, RegionAfrica),
	city("Windhoek", "NA", -22.5609, 17.0658, RegionAfrica),
	city("Antananarivo", "MG", -18.8792, 47.5079, RegionAfrica),
	city("Lilongwe", "MW", -13.9626, 33.7741, RegionAfrica),
	city("Kinshasa", "CD", -4.4419, 15.2663, RegionAfrica),
	city("Addis Ababa", "ET", 9.0054, 38.7636, RegionAfrica),

	// --- Europe ---
	city("London", "GB", 51.5074, -0.1278, RegionEurope),
	city("Manchester", "GB", 53.4808, -2.2426, RegionEurope),
	city("Frankfurt", "DE", 50.1109, 8.6821, RegionEurope),
	city("Berlin", "DE", 52.5200, 13.4050, RegionEurope),
	city("Munich", "DE", 48.1351, 11.5820, RegionEurope),
	city("Paris", "FR", 48.8566, 2.3522, RegionEurope),
	city("Marseille", "FR", 43.2965, 5.3698, RegionEurope),
	city("Madrid", "ES", 40.4168, -3.7038, RegionEurope),
	city("Barcelona", "ES", 41.3874, 2.1686, RegionEurope),
	city("Lisbon", "PT", 38.7223, -9.1393, RegionEurope),
	city("Milan", "IT", 45.4642, 9.1900, RegionEurope),
	city("Rome", "IT", 41.9028, 12.4964, RegionEurope),
	city("Amsterdam", "NL", 52.3676, 4.9041, RegionEurope),
	city("Brussels", "BE", 50.8503, 4.3517, RegionEurope),
	city("Zurich", "CH", 47.3769, 8.5417, RegionEurope),
	city("Vienna", "AT", 48.2082, 16.3738, RegionEurope),
	city("Warsaw", "PL", 52.2297, 21.0122, RegionEurope),
	city("Prague", "CZ", 50.0755, 14.4378, RegionEurope),
	city("Stockholm", "SE", 59.3293, 18.0686, RegionEurope),
	city("Oslo", "NO", 59.9139, 10.7522, RegionEurope),
	city("Copenhagen", "DK", 55.6761, 12.5683, RegionEurope),
	city("Helsinki", "FI", 60.1699, 24.9384, RegionEurope),
	city("Dublin", "IE", 53.3498, -6.2603, RegionEurope),
	city("Vilnius", "LT", 54.6872, 25.2797, RegionEurope),
	city("Kaunas", "LT", 54.8985, 23.9036, RegionEurope),
	city("Riga", "LV", 56.9496, 24.1052, RegionEurope),
	city("Tallinn", "EE", 59.4370, 24.7536, RegionEurope),
	city("Athens", "GR", 37.9838, 23.7275, RegionEurope),
	city("Nicosia", "CY", 35.1856, 33.3823, RegionEurope),
	city("Limassol", "CY", 34.7071, 33.0226, RegionEurope),
	city("Sofia", "BG", 42.6977, 23.3219, RegionEurope),
	city("Bucharest", "RO", 44.4268, 26.1025, RegionEurope),
	city("Budapest", "HU", 47.4979, 19.0402, RegionEurope),
	city("Zagreb", "HR", 45.8150, 15.9819, RegionEurope),
	city("Kyiv", "UA", 50.4501, 30.5234, RegionEurope),
	city("Istanbul", "TR", 41.0082, 28.9784, RegionEurope),
	city("Reykjavik", "IS", 64.1466, -21.9426, RegionEurope),

	// --- North America & Caribbean ---
	city("Seattle", "US", 47.6062, -122.3321, RegionNorthAmerica),
	city("Los Angeles", "US", 34.0522, -118.2437, RegionNorthAmerica),
	city("San Jose", "US", 37.3382, -121.8863, RegionNorthAmerica),
	city("Denver", "US", 39.7392, -104.9903, RegionNorthAmerica),
	city("Dallas", "US", 32.7767, -96.7970, RegionNorthAmerica),
	city("Chicago", "US", 41.8781, -87.6298, RegionNorthAmerica),
	city("Atlanta", "US", 33.7490, -84.3880, RegionNorthAmerica),
	city("Ashburn", "US", 39.0438, -77.4874, RegionNorthAmerica),
	city("New York", "US", 40.7128, -74.0060, RegionNorthAmerica),
	city("Miami", "US", 25.7617, -80.1918, RegionNorthAmerica),
	city("Kansas City", "US", 39.0997, -94.5786, RegionNorthAmerica),
	city("Phoenix", "US", 33.4484, -112.0740, RegionNorthAmerica),
	city("Anchorage", "US", 61.2181, -149.9003, RegionNorthAmerica),
	city("Honolulu", "US", 21.3069, -157.8583, RegionNorthAmerica),
	city("Toronto", "CA", 43.6532, -79.3832, RegionNorthAmerica),
	city("Vancouver", "CA", 49.2827, -123.1207, RegionNorthAmerica),
	city("Montreal", "CA", 45.5017, -73.5673, RegionNorthAmerica),
	city("Calgary", "CA", 51.0447, -114.0719, RegionNorthAmerica),
	city("Winnipeg", "CA", 49.8951, -97.1384, RegionNorthAmerica),
	city("Mexico City", "MX", 19.4326, -99.1332, RegionNorthAmerica),
	city("Queretaro", "MX", 20.5888, -100.3899, RegionNorthAmerica),
	city("Guadalajara", "MX", 20.6597, -103.3496, RegionNorthAmerica),
	city("Guatemala City", "GT", 14.6349, -90.5069, RegionNorthAmerica),
	city("Quetzaltenango", "GT", 14.8347, -91.5181, RegionNorthAmerica),
	city("Port-au-Prince", "HT", 18.5944, -72.3074, RegionNorthAmerica),
	city("Cap-Haitien", "HT", 19.7580, -72.2042, RegionNorthAmerica),
	city("San Juan", "PR", 18.4655, -66.1057, RegionNorthAmerica),
	city("Santo Domingo", "DO", 18.4861, -69.9312, RegionNorthAmerica),
	city("Panama City", "PA", 8.9824, -79.5199, RegionNorthAmerica),
	city("San Jose CR", "CR", 9.9281, -84.0907, RegionNorthAmerica),
	city("Kingston", "JM", 17.9714, -76.7922, RegionNorthAmerica),

	// --- South America ---
	city("Sao Paulo", "BR", -23.5505, -46.6333, RegionSouthAmerica),
	city("Rio de Janeiro", "BR", -22.9068, -43.1729, RegionSouthAmerica),
	city("Fortaleza", "BR", -3.7319, -38.5267, RegionSouthAmerica),
	city("Porto Alegre", "BR", -30.0346, -51.2177, RegionSouthAmerica),
	city("Buenos Aires", "AR", -34.6037, -58.3816, RegionSouthAmerica),
	city("Cordoba", "AR", -31.4201, -64.1888, RegionSouthAmerica),
	city("Santiago", "CL", -33.4489, -70.6693, RegionSouthAmerica),
	city("Punta Arenas", "CL", -53.1638, -70.9171, RegionSouthAmerica),
	city("Lima", "PE", -12.0464, -77.0428, RegionSouthAmerica),
	city("Bogota", "CO", 4.7110, -74.0721, RegionSouthAmerica),
	city("Quito", "EC", -0.1807, -78.4678, RegionSouthAmerica),
	city("Asuncion", "PY", -25.2637, -57.5759, RegionSouthAmerica),
	city("Montevideo", "UY", -34.9011, -56.1645, RegionSouthAmerica),
	city("La Paz", "BO", -16.4897, -68.1193, RegionSouthAmerica),
	city("Caracas", "VE", 10.4806, -66.9036, RegionSouthAmerica),

	// --- Asia & Middle East ---
	city("Tokyo", "JP", 35.6762, 139.6503, RegionAsia),
	city("Osaka", "JP", 34.6937, 135.5023, RegionAsia),
	city("Sapporo", "JP", 43.0618, 141.3545, RegionAsia),
	city("Seoul", "KR", 37.5665, 126.9780, RegionAsia),
	city("Singapore", "SG", 1.3521, 103.8198, RegionAsia),
	city("Kuala Lumpur", "MY", 3.1390, 101.6869, RegionAsia),
	city("Jakarta", "ID", -6.2088, 106.8456, RegionAsia),
	city("Manila", "PH", 14.5995, 120.9842, RegionAsia),
	city("Bangkok", "TH", 13.7563, 100.5018, RegionAsia),
	city("Hanoi", "VN", 21.0285, 105.8542, RegionAsia),
	city("Hong Kong", "HK", 22.3193, 114.1694, RegionAsia),
	city("Taipei", "TW", 25.0330, 121.5654, RegionAsia),
	city("Mumbai", "IN", 19.0760, 72.8777, RegionAsia),
	city("Delhi", "IN", 28.7041, 77.1025, RegionAsia),
	city("Chennai", "IN", 13.0827, 80.2707, RegionAsia),
	city("Karachi", "PK", 24.8607, 67.0011, RegionAsia),
	city("Dubai", "AE", 25.2048, 55.2708, RegionAsia),
	city("Doha", "QA", 25.2854, 51.5310, RegionAsia),
	city("Riyadh", "SA", 24.7136, 46.6753, RegionAsia),
	city("Tel Aviv", "IL", 32.0853, 34.7818, RegionAsia),
	city("Amman", "JO", 31.9454, 35.9284, RegionAsia),
	city("Almaty", "KZ", 43.2220, 76.8512, RegionAsia),
	city("Ulaanbaatar", "MN", 47.8864, 106.9057, RegionAsia),

	// --- Oceania ---
	city("Sydney", "AU", -33.8688, 151.2093, RegionOceania),
	city("Melbourne", "AU", -37.8136, 144.9631, RegionOceania),
	city("Perth", "AU", -31.9505, 115.8605, RegionOceania),
	city("Brisbane", "AU", -27.4698, 153.0251, RegionOceania),
	city("Auckland", "NZ", -36.8509, 174.7645, RegionOceania),
	city("Christchurch", "NZ", -43.5321, 172.6362, RegionOceania),
	city("Suva", "FJ", -18.1248, 178.4501, RegionOceania),
	city("Port Moresby", "PG", -9.4438, 147.1803, RegionOceania),
}

// countries is the embedded country dataset. The Starlink flag marks consumer
// availability during the paper's measurement window (March–June 2024); it
// gates which countries contribute "Starlink client" samples.
var countries = []Country{
	{"MZ", "Mozambique", RegionAfrica, "Maputo", true},
	{"ZA", "South Africa", RegionAfrica, "Johannesburg", false},
	{"KE", "Kenya", RegionAfrica, "Nairobi", true},
	{"NG", "Nigeria", RegionAfrica, "Lagos", true},
	{"RW", "Rwanda", RegionAfrica, "Kigali", true},
	{"ZM", "Zambia", RegionAfrica, "Lusaka", true},
	{"SZ", "Swaziland", RegionAfrica, "Mbabane", true},
	{"TZ", "Tanzania", RegionAfrica, "Dar es Salaam", false},
	{"UG", "Uganda", RegionAfrica, "Kampala", false},
	{"GH", "Ghana", RegionAfrica, "Accra", false},
	{"CI", "Ivory Coast", RegionAfrica, "Abidjan", false},
	{"SN", "Senegal", RegionAfrica, "Dakar", false},
	{"EG", "Egypt", RegionAfrica, "Cairo", false},
	{"MA", "Morocco", RegionAfrica, "Casablanca", false},
	{"TN", "Tunisia", RegionAfrica, "Tunis", false},
	{"AO", "Angola", RegionAfrica, "Luanda", false},
	{"ZW", "Zimbabwe", RegionAfrica, "Harare", true},
	{"BW", "Botswana", RegionAfrica, "Gaborone", true},
	{"NA", "Namibia", RegionAfrica, "Windhoek", false},
	{"MG", "Madagascar", RegionAfrica, "Antananarivo", true},
	{"MW", "Malawi", RegionAfrica, "Lilongwe", true},
	{"CD", "DR Congo", RegionAfrica, "Kinshasa", false},
	{"ET", "Ethiopia", RegionAfrica, "Addis Ababa", false},

	{"GB", "United Kingdom", RegionEurope, "London", true},
	{"DE", "Germany", RegionEurope, "Frankfurt", true},
	{"FR", "France", RegionEurope, "Paris", true},
	{"ES", "Spain", RegionEurope, "Madrid", true},
	{"PT", "Portugal", RegionEurope, "Lisbon", true},
	{"IT", "Italy", RegionEurope, "Milan", true},
	{"NL", "Netherlands", RegionEurope, "Amsterdam", true},
	{"BE", "Belgium", RegionEurope, "Brussels", true},
	{"CH", "Switzerland", RegionEurope, "Zurich", true},
	{"AT", "Austria", RegionEurope, "Vienna", true},
	{"PL", "Poland", RegionEurope, "Warsaw", true},
	{"CZ", "Czechia", RegionEurope, "Prague", true},
	{"SE", "Sweden", RegionEurope, "Stockholm", true},
	{"NO", "Norway", RegionEurope, "Oslo", true},
	{"DK", "Denmark", RegionEurope, "Copenhagen", true},
	{"FI", "Finland", RegionEurope, "Helsinki", true},
	{"IE", "Ireland", RegionEurope, "Dublin", true},
	{"LT", "Lithuania", RegionEurope, "Vilnius", true},
	{"LV", "Latvia", RegionEurope, "Riga", true},
	{"EE", "Estonia", RegionEurope, "Tallinn", true},
	{"GR", "Greece", RegionEurope, "Athens", true},
	{"CY", "Cyprus", RegionEurope, "Nicosia", true},
	{"BG", "Bulgaria", RegionEurope, "Sofia", true},
	{"RO", "Romania", RegionEurope, "Bucharest", true},
	{"HU", "Hungary", RegionEurope, "Budapest", true},
	{"HR", "Croatia", RegionEurope, "Zagreb", true},
	{"UA", "Ukraine", RegionEurope, "Kyiv", true},
	{"TR", "Turkey", RegionEurope, "Istanbul", false},
	{"IS", "Iceland", RegionEurope, "Reykjavik", true},

	{"US", "United States", RegionNorthAmerica, "Chicago", true},
	{"CA", "Canada", RegionNorthAmerica, "Toronto", true},
	{"MX", "Mexico", RegionNorthAmerica, "Mexico City", true},
	{"GT", "Guatemala", RegionNorthAmerica, "Guatemala City", true},
	{"HT", "Haiti", RegionNorthAmerica, "Port-au-Prince", true},
	{"PR", "Puerto Rico", RegionNorthAmerica, "San Juan", true},
	{"DO", "Dominican Republic", RegionNorthAmerica, "Santo Domingo", true},
	{"PA", "Panama", RegionNorthAmerica, "Panama City", true},
	{"CR", "Costa Rica", RegionNorthAmerica, "San Jose CR", true},
	{"JM", "Jamaica", RegionNorthAmerica, "Kingston", true},

	{"BR", "Brazil", RegionSouthAmerica, "Sao Paulo", true},
	{"AR", "Argentina", RegionSouthAmerica, "Buenos Aires", true},
	{"CL", "Chile", RegionSouthAmerica, "Santiago", true},
	{"PE", "Peru", RegionSouthAmerica, "Lima", true},
	{"CO", "Colombia", RegionSouthAmerica, "Bogota", true},
	{"EC", "Ecuador", RegionSouthAmerica, "Quito", true},
	{"PY", "Paraguay", RegionSouthAmerica, "Asuncion", true},
	{"UY", "Uruguay", RegionSouthAmerica, "Montevideo", true},
	{"BO", "Bolivia", RegionSouthAmerica, "La Paz", false},
	{"VE", "Venezuela", RegionSouthAmerica, "Caracas", false},

	{"JP", "Japan", RegionAsia, "Tokyo", true},
	{"KR", "South Korea", RegionAsia, "Seoul", false},
	{"SG", "Singapore", RegionAsia, "Singapore", false},
	{"MY", "Malaysia", RegionAsia, "Kuala Lumpur", true},
	{"ID", "Indonesia", RegionAsia, "Jakarta", true},
	{"PH", "Philippines", RegionAsia, "Manila", true},
	{"TH", "Thailand", RegionAsia, "Bangkok", false},
	{"VN", "Vietnam", RegionAsia, "Hanoi", false},
	{"HK", "Hong Kong", RegionAsia, "Hong Kong", false},
	{"TW", "Taiwan", RegionAsia, "Taipei", false},
	{"IN", "India", RegionAsia, "Mumbai", false},
	{"PK", "Pakistan", RegionAsia, "Karachi", false},
	{"AE", "UAE", RegionAsia, "Dubai", false},
	{"QA", "Qatar", RegionAsia, "Doha", false},
	{"SA", "Saudi Arabia", RegionAsia, "Riyadh", false},
	{"IL", "Israel", RegionAsia, "Tel Aviv", false},
	{"JO", "Jordan", RegionAsia, "Amman", false},
	{"KZ", "Kazakhstan", RegionAsia, "Almaty", false},
	{"MN", "Mongolia", RegionAsia, "Ulaanbaatar", true},

	{"AU", "Australia", RegionOceania, "Sydney", true},
	{"NZ", "New Zealand", RegionOceania, "Auckland", true},
	{"FJ", "Fiji", RegionOceania, "Suva", true},
	{"PG", "Papua New Guinea", RegionOceania, "Port Moresby", false},
}

var (
	indexOnce      sync.Once
	cityByKey      map[string]*City // "name|CC"
	cityByName     map[string]*City // first match by name
	countryByISO   map[string]*Country
	citiesByISO    map[string][]*City
	starlinkISOSet []string
)

func buildIndexes() {
	cityByKey = make(map[string]*City, len(cities))
	cityByName = make(map[string]*City, len(cities))
	countryByISO = make(map[string]*Country, len(countries))
	citiesByISO = make(map[string][]*City)
	for i := range cities {
		c := &cities[i]
		cityByKey[strings.ToLower(c.Name)+"|"+c.Country] = c
		if _, ok := cityByName[strings.ToLower(c.Name)]; !ok {
			cityByName[strings.ToLower(c.Name)] = c
		}
		citiesByISO[c.Country] = append(citiesByISO[c.Country], c)
	}
	for i := range countries {
		countryByISO[countries[i].ISO2] = &countries[i]
		if countries[i].Starlink {
			starlinkISOSet = append(starlinkISOSet, countries[i].ISO2)
		}
	}
	sort.Strings(starlinkISOSet)
}

// Cities returns a copy of the embedded city dataset.
func Cities() []City {
	out := make([]City, len(cities))
	copy(out, cities)
	return out
}

// Countries returns a copy of the embedded country dataset.
func Countries() []Country {
	out := make([]Country, len(countries))
	copy(out, countries)
	return out
}

// CityByName looks a city up by name, optionally qualified as "Name, CC".
// Lookup is case-insensitive.
func CityByName(name string) (City, bool) {
	indexOnce.Do(buildIndexes)
	name = strings.TrimSpace(name)
	if i := strings.LastIndexByte(name, ','); i >= 0 {
		base := strings.TrimSpace(name[:i])
		cc := strings.ToUpper(strings.TrimSpace(name[i+1:]))
		if c, ok := cityByKey[strings.ToLower(base)+"|"+cc]; ok {
			return *c, true
		}
		return City{}, false
	}
	if c, ok := cityByName[strings.ToLower(name)]; ok {
		return *c, true
	}
	return City{}, false
}

// CountryByISO returns the country record for an ISO 3166-1 alpha-2 code.
func CountryByISO(iso2 string) (Country, bool) {
	indexOnce.Do(buildIndexes)
	c, ok := countryByISO[strings.ToUpper(iso2)]
	if !ok {
		return Country{}, false
	}
	return *c, true
}

// CitiesInCountry returns all embedded cities for the given ISO code.
func CitiesInCountry(iso2 string) []City {
	indexOnce.Do(buildIndexes)
	src := citiesByISO[strings.ToUpper(iso2)]
	out := make([]City, len(src))
	for i, c := range src {
		out[i] = *c
	}
	return out
}

// CountryCentroid returns the country's reference location (its capital /
// largest city in the dataset).
func CountryCentroid(iso2 string) (Point, bool) {
	c, ok := CountryByISO(iso2)
	if !ok {
		return Point{}, false
	}
	cc, ok := CityByName(c.Capital + ", " + c.ISO2)
	if !ok {
		return Point{}, false
	}
	return cc.Loc, true
}

// StarlinkCountries returns the ISO codes of countries with Starlink
// consumer coverage in the modelled measurement window, sorted.
func StarlinkCountries() []string {
	indexOnce.Do(buildIndexes)
	out := make([]string, len(starlinkISOSet))
	copy(out, starlinkISOSet)
	return out
}
