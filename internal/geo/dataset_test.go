package geo

import (
	"strings"
	"testing"
)

func TestDatasetIntegrity(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Cities() {
		if c.Name == "" || len(c.Country) != 2 {
			t.Errorf("malformed city record: %+v", c)
		}
		if !c.Loc.Valid() {
			t.Errorf("invalid coordinates for %s: %v", c.Name, c.Loc)
		}
		if c.Region == RegionUnknown {
			t.Errorf("city %s has unknown region", c.Name)
		}
		key := c.Name + "|" + c.Country
		if seen[key] {
			t.Errorf("duplicate city record %s", key)
		}
		seen[key] = true
		if _, ok := CountryByISO(c.Country); !ok {
			t.Errorf("city %s references unknown country %s", c.Name, c.Country)
		}
	}
	if len(seen) < 120 {
		t.Errorf("expected at least 120 cities, got %d", len(seen))
	}
}

func TestCountryIntegrity(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Countries() {
		if len(c.ISO2) != 2 || c.ISO2 != strings.ToUpper(c.ISO2) {
			t.Errorf("bad ISO code %q", c.ISO2)
		}
		if seen[c.ISO2] {
			t.Errorf("duplicate country %s", c.ISO2)
		}
		seen[c.ISO2] = true
		if _, ok := CountryCentroid(c.ISO2); !ok {
			t.Errorf("country %s (%s) has no resolvable capital %q", c.ISO2, c.Name, c.Capital)
		}
		if c.Region == RegionUnknown {
			t.Errorf("country %s has unknown region", c.ISO2)
		}
	}
}

func TestTable1CountriesPresent(t *testing.T) {
	// Every country in the paper's Table 1 must exist, be marked as Starlink
	// covered, and have at least one city.
	for _, iso := range []string{"GT", "MZ", "CY", "SZ", "HT", "KE", "ZM", "RW", "LT", "ES", "JP"} {
		c, ok := CountryByISO(iso)
		if !ok {
			t.Fatalf("Table 1 country %s missing", iso)
		}
		if !c.Starlink {
			t.Errorf("Table 1 country %s must have Starlink coverage", iso)
		}
		if len(CitiesInCountry(iso)) == 0 {
			t.Errorf("Table 1 country %s has no cities", iso)
		}
	}
}

func TestStarlinkCountriesCount(t *testing.T) {
	// The paper reports measurements from 55 countries (~60% of coverage).
	// Our dataset models the covered set; it must be large enough to sample
	// tens of countries on both networks.
	got := StarlinkCountries()
	if len(got) < 50 {
		t.Errorf("expected >= 50 Starlink countries, got %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Errorf("StarlinkCountries not sorted: %s >= %s", got[i-1], got[i])
		}
	}
}

func TestCityLookup(t *testing.T) {
	c, ok := CityByName("Maputo")
	if !ok || c.Country != "MZ" {
		t.Fatalf("Maputo lookup failed: %+v ok=%v", c, ok)
	}
	c, ok = CityByName("maputo, mz")
	if !ok || c.Name != "Maputo" {
		t.Fatalf("qualified lookup failed: %+v ok=%v", c, ok)
	}
	if _, ok := CityByName("Atlantis"); ok {
		t.Fatal("nonexistent city should not resolve")
	}
	if _, ok := CityByName("Maputo, US"); ok {
		t.Fatal("wrong-country qualified lookup should not resolve")
	}
}

func TestCitiesInCountry(t *testing.T) {
	us := CitiesInCountry("us")
	if len(us) < 10 {
		t.Errorf("expected >= 10 US cities, got %d", len(us))
	}
	for _, c := range us {
		if c.Country != "US" {
			t.Errorf("non-US city returned: %+v", c)
		}
	}
	if len(CitiesInCountry("XX")) != 0 {
		t.Error("unknown country should return no cities")
	}
}

func TestCountryCentroidsReasonable(t *testing.T) {
	p, ok := CountryCentroid("MZ")
	if !ok {
		t.Fatal("MZ centroid missing")
	}
	if HaversineKm(p, NewPoint(-25.9692, 32.5732)) > 1 {
		t.Errorf("MZ centroid should be Maputo, got %v", p)
	}
}

func TestRegionsString(t *testing.T) {
	for _, r := range Regions() {
		if r.String() == "unknown" || strings.HasPrefix(r.String(), "region(") {
			t.Errorf("region %d has no name", int(r))
		}
	}
	if RegionUnknown.String() != "unknown" {
		t.Errorf("unknown region name = %q", RegionUnknown.String())
	}
	if Region(99).String() != "region(99)" {
		t.Errorf("out-of-range region = %q", Region(99).String())
	}
}
