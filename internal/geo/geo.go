// Package geo provides spherical-Earth geodesy primitives used throughout the
// simulator: geographic coordinates, Earth-centered Earth-fixed (ECEF)
// vectors, great-circle distances, bearings, and satellite-to-ground slant
// geometry.
//
// The simulator uses a spherical Earth (radius EarthRadiusKm). The error
// relative to WGS84 is below 0.5%, far smaller than the latency modelling
// noise, and a sphere keeps orbit propagation and visibility math exact and
// cheap.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius in kilometres.
const EarthRadiusKm = 6371.0

// Point is a geographic coordinate in degrees. Positive latitudes are north,
// positive longitudes are east.
type Point struct {
	LatDeg float64
	LonDeg float64
}

// NewPoint returns a Point with the longitude normalized to (-180, 180] and
// the latitude clamped to [-90, 90].
func NewPoint(latDeg, lonDeg float64) Point {
	return Point{LatDeg: clampLat(latDeg), LonDeg: NormalizeLonDeg(lonDeg)}
}

func clampLat(lat float64) float64 {
	if lat > 90 {
		return 90
	}
	if lat < -90 {
		return -90
	}
	return lat
}

// NormalizeLonDeg maps an arbitrary longitude in degrees to (-180, 180].
func NormalizeLonDeg(lon float64) float64 {
	lon = math.Mod(lon, 360)
	if lon <= -180 {
		lon += 360
	} else if lon > 180 {
		lon -= 360
	}
	return lon
}

func (p Point) String() string {
	ns, ew := "N", "E"
	lat, lon := p.LatDeg, p.LonDeg
	if lat < 0 {
		ns, lat = "S", -lat
	}
	if lon < 0 {
		ew, lon = "W", -lon
	}
	return fmt.Sprintf("%.3f%s%s %.3f%s%s", lat, "°", ns, lon, "°", ew)
}

// Valid reports whether the point holds finite, in-range coordinates.
func (p Point) Valid() bool {
	return !math.IsNaN(p.LatDeg) && !math.IsNaN(p.LonDeg) &&
		p.LatDeg >= -90 && p.LatDeg <= 90 &&
		p.LonDeg >= -180 && p.LonDeg <= 180
}

// Radians returns the latitude and longitude in radians.
func (p Point) Radians() (lat, lon float64) {
	return p.LatDeg * math.Pi / 180, p.LonDeg * math.Pi / 180
}

// Vec3 is a vector in the Earth-centered Earth-fixed frame, in kilometres.
// +X pierces the equator at the prime meridian, +Z the north pole.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v x w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v in kilometres.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Unit returns v scaled to unit length. The zero vector is returned unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// ToECEF converts a surface point to an ECEF vector on the spherical Earth.
func (p Point) ToECEF() Vec3 {
	return p.ToECEFAltitude(0)
}

// ToECEFAltitude converts a point at altKm kilometres above the surface to an
// ECEF vector.
func (p Point) ToECEFAltitude(altKm float64) Vec3 {
	lat, lon := p.Radians()
	r := EarthRadiusKm + altKm
	cl := math.Cos(lat)
	return Vec3{
		X: r * cl * math.Cos(lon),
		Y: r * cl * math.Sin(lon),
		Z: r * math.Sin(lat),
	}
}

// ToPoint converts an ECEF vector back to a geographic point, ignoring
// altitude.
func (v Vec3) ToPoint() Point {
	r := v.Norm()
	if r == 0 {
		return Point{}
	}
	lat := math.Asin(v.Z/r) * 180 / math.Pi
	lon := math.Atan2(v.Y, v.X) * 180 / math.Pi
	return Point{LatDeg: lat, LonDeg: lon}
}

// AltitudeKm returns the height of the ECEF vector above the spherical
// surface in kilometres.
func (v Vec3) AltitudeKm() float64 { return v.Norm() - EarthRadiusKm }

// HaversineKm returns the great-circle surface distance between a and b in
// kilometres.
func HaversineKm(a, b Point) float64 {
	lat1, lon1 := a.Radians()
	lat2, lon2 := b.Radians()
	dLat := lat2 - lat1
	dLon := lon2 - lon1
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// CentralAngleRad returns the central angle between two surface points.
func CentralAngleRad(a, b Point) float64 {
	return HaversineKm(a, b) / EarthRadiusKm
}

// LineOfSightKm returns the straight-line (chord) distance between two ECEF
// positions in kilometres. This is the propagation distance for a free-space
// radio or laser link.
func LineOfSightKm(a, b Vec3) float64 {
	return a.Sub(b).Norm()
}

// ElevationDeg returns the elevation angle, in degrees, of a target at ECEF
// position sat as seen from a ground point at ECEF position ground.
// 90 means directly overhead; negative values are below the horizon.
func ElevationDeg(ground, sat Vec3) float64 {
	up := ground.Unit()
	d := sat.Sub(ground)
	dn := d.Norm()
	if dn == 0 {
		return 90
	}
	s := d.Dot(up) / dn
	if s > 1 {
		s = 1
	} else if s < -1 {
		s = -1
	}
	return math.Asin(s) * 180 / math.Pi
}

// SlantRangeKm returns the distance from a ground observer to a satellite at
// altitude altKm observed at elevation elevDeg. It solves the triangle formed
// by the Earth's center, the observer and the satellite.
func SlantRangeKm(altKm, elevDeg float64) float64 {
	re := EarthRadiusKm
	rs := re + altKm
	e := elevDeg * math.Pi / 180
	// Law of cosines with the angle at the observer being 90 deg + elevation.
	return -re*math.Sin(e) + math.Sqrt(rs*rs-re*re*math.Cos(e)*math.Cos(e))
}

// CoverageAngleRad returns the maximum central angle between a satellite's
// sub-point and a ground user that still sees the satellite at or above
// minElevDeg, for a satellite at altitude altKm.
func CoverageAngleRad(altKm, minElevDeg float64) float64 {
	re := EarthRadiusKm
	rs := re + altKm
	e := minElevDeg * math.Pi / 180
	// beta = acos(re/rs * cos(e)) - e
	return math.Acos(re/rs*math.Cos(e)) - e
}

// InitialBearingDeg returns the initial great-circle bearing from a to b in
// degrees clockwise from north, in [0, 360).
func InitialBearingDeg(a, b Point) float64 {
	lat1, lon1 := a.Radians()
	lat2, lon2 := b.Radians()
	dLon := lon2 - lon1
	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	brng := math.Atan2(y, x) * 180 / math.Pi
	if brng < 0 {
		brng += 360
	}
	return brng
}

// Destination returns the point reached by travelling distKm kilometres from
// start along the given initial bearing.
func Destination(start Point, bearingDeg, distKm float64) Point {
	lat1, lon1 := start.Radians()
	brng := bearingDeg * math.Pi / 180
	d := distKm / EarthRadiusKm
	lat2 := math.Asin(math.Sin(lat1)*math.Cos(d) + math.Cos(lat1)*math.Sin(d)*math.Cos(brng))
	lon2 := lon1 + math.Atan2(
		math.Sin(brng)*math.Sin(d)*math.Cos(lat1),
		math.Cos(d)-math.Sin(lat1)*math.Sin(lat2),
	)
	return NewPoint(lat2*180/math.Pi, lon2*180/math.Pi)
}

// Midpoint returns the great-circle midpoint between a and b.
func Midpoint(a, b Point) Point {
	va := a.ToECEF()
	vb := b.ToECEF()
	m := va.Add(vb)
	if m.Norm() == 0 {
		// Antipodal points: midpoint is ill-defined; pick the pole route.
		return NewPoint((a.LatDeg+b.LatDeg)/2, a.LonDeg)
	}
	return m.ToPoint()
}
