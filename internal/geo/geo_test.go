package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNormalizeLonDeg(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{180, 180},
		{-180, 180},
		{181, -179},
		{-181, 179},
		{360, 0},
		{540, 180},
		{720, 0},
		{-359, 1},
	}
	for _, c := range cases {
		if got := NormalizeLonDeg(c.in); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("NormalizeLonDeg(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNewPointClamps(t *testing.T) {
	p := NewPoint(95, 200)
	if p.LatDeg != 90 {
		t.Errorf("latitude not clamped: %v", p.LatDeg)
	}
	if p.LonDeg != -160 {
		t.Errorf("longitude not normalized: %v", p.LonDeg)
	}
	if !p.Valid() {
		t.Errorf("clamped point should be valid: %v", p)
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	cases := []struct {
		name   string
		a, b   Point
		wantKm float64
		tolKm  float64
	}{
		{"same-point", NewPoint(10, 20), NewPoint(10, 20), 0, 1e-9},
		{"london-newyork", NewPoint(51.5074, -0.1278), NewPoint(40.7128, -74.0060), 5570, 30},
		{"maputo-frankfurt", NewPoint(-25.9692, 32.5732), NewPoint(50.1109, 8.6821), 8776, 80},
		{"equator-quarter", NewPoint(0, 0), NewPoint(0, 90), 2 * math.Pi * EarthRadiusKm / 4, 1},
		{"pole-to-pole", NewPoint(90, 0), NewPoint(-90, 0), math.Pi * EarthRadiusKm, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := HaversineKm(c.a, c.b)
			if !almostEqual(got, c.wantKm, c.tolKm) {
				t.Errorf("HaversineKm = %.1f, want %.1f +/- %.1f", got, c.wantKm, c.tolKm)
			}
		})
	}
}

func TestHaversineProperties(t *testing.T) {
	gen := func(latA, lonA, latB, lonB float64) (Point, Point) {
		a := NewPoint(math.Mod(latA, 90), math.Mod(lonA, 180))
		b := NewPoint(math.Mod(latB, 90), math.Mod(lonB, 180))
		return a, b
	}
	symmetric := func(latA, lonA, latB, lonB float64) bool {
		a, b := gen(latA, lonA, latB, lonB)
		return almostEqual(HaversineKm(a, b), HaversineKm(b, a), 1e-6)
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Errorf("haversine not symmetric: %v", err)
	}
	bounded := func(latA, lonA, latB, lonB float64) bool {
		a, b := gen(latA, lonA, latB, lonB)
		d := HaversineKm(a, b)
		return d >= 0 && d <= math.Pi*EarthRadiusKm+1e-6
	}
	if err := quick.Check(bounded, nil); err != nil {
		t.Errorf("haversine out of bounds: %v", err)
	}
}

func TestECEFRoundTrip(t *testing.T) {
	prop := func(lat, lon float64) bool {
		p := NewPoint(math.Mod(lat, 89), math.Mod(lon, 179))
		q := p.ToECEF().ToPoint()
		return almostEqual(p.LatDeg, q.LatDeg, 1e-9) && almostEqual(p.LonDeg, q.LonDeg, 1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("ECEF round trip failed: %v", err)
	}
}

func TestECEFAltitude(t *testing.T) {
	p := NewPoint(45, 45)
	v := p.ToECEFAltitude(550)
	if !almostEqual(v.Norm(), EarthRadiusKm+550, 1e-6) {
		t.Errorf("radius = %v, want %v", v.Norm(), EarthRadiusKm+550)
	}
	if !almostEqual(v.AltitudeKm(), 550, 1e-6) {
		t.Errorf("altitude = %v, want 550", v.AltitudeKm())
	}
}

func TestChordVsArc(t *testing.T) {
	// A straight-line chord must never exceed the surface arc between the
	// same two surface points.
	prop := func(latA, lonA, latB, lonB float64) bool {
		a := NewPoint(math.Mod(latA, 90), math.Mod(lonA, 180))
		b := NewPoint(math.Mod(latB, 90), math.Mod(lonB, 180))
		chord := LineOfSightKm(a.ToECEF(), b.ToECEF())
		arc := HaversineKm(a, b)
		return chord <= arc+1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("chord exceeded arc: %v", err)
	}
}

func TestElevationDeg(t *testing.T) {
	ground := NewPoint(0, 0).ToECEF()
	overhead := NewPoint(0, 0).ToECEFAltitude(550)
	if e := ElevationDeg(ground, overhead); !almostEqual(e, 90, 1e-4) {
		t.Errorf("overhead elevation = %v, want 90", e)
	}
	// A satellite on the opposite side of the Earth is far below the horizon.
	antipode := NewPoint(0, 180).ToECEFAltitude(550)
	if e := ElevationDeg(ground, antipode); e > -45 {
		t.Errorf("antipodal elevation = %v, want strongly negative", e)
	}
}

func TestSlantRange(t *testing.T) {
	// At 90 deg elevation the slant range equals the altitude.
	if r := SlantRangeKm(550, 90); !almostEqual(r, 550, 1e-6) {
		t.Errorf("slant at zenith = %v, want 550", r)
	}
	// Slant range grows monotonically as elevation drops.
	prev := 0.0
	for e := 90.0; e >= 10; e -= 10 {
		r := SlantRangeKm(550, e)
		if r < prev {
			t.Fatalf("slant range not monotone: %v at elev %v < %v", r, e, prev)
		}
		prev = r
	}
	// At 25 deg elevation and 550 km altitude the slant is ~1100 km.
	if r := SlantRangeKm(550, 25); r < 1000 || r > 1250 {
		t.Errorf("slant at 25deg = %v, want ~1100", r)
	}
}

func TestSlantRangeConsistentWithElevation(t *testing.T) {
	// Place a satellite at the coverage-edge central angle and verify the
	// observed elevation matches the requested minimum elevation.
	for _, minElev := range []float64{5, 15, 25, 40} {
		beta := CoverageAngleRad(550, minElev)
		user := NewPoint(0, 0)
		subpoint := Destination(user, 90, beta*EarthRadiusKm)
		sat := subpoint.ToECEFAltitude(550)
		got := ElevationDeg(user.ToECEF(), sat)
		if !almostEqual(got, minElev, 0.01) {
			t.Errorf("elevation at coverage edge = %v, want %v", got, minElev)
		}
	}
}

func TestBearingAndDestination(t *testing.T) {
	start := NewPoint(0, 0)
	// Due east along the equator.
	p := Destination(start, 90, 1000)
	if !almostEqual(p.LatDeg, 0, 1e-6) {
		t.Errorf("eastward destination drifted in latitude: %v", p)
	}
	wantLon := 1000 / EarthRadiusKm * 180 / math.Pi
	if !almostEqual(p.LonDeg, wantLon, 1e-6) {
		t.Errorf("eastward lon = %v, want %v", p.LonDeg, wantLon)
	}
	if b := InitialBearingDeg(start, p); !almostEqual(b, 90, 1e-6) {
		t.Errorf("bearing = %v, want 90", b)
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	prop := func(lat, lon, bearing, dist float64) bool {
		start := NewPoint(math.Mod(lat, 80), math.Mod(lon, 180))
		b := math.Mod(math.Abs(bearing), 360)
		d := math.Mod(math.Abs(dist), 5000)
		end := Destination(start, b, d)
		return almostEqual(HaversineKm(start, end), d, 1e-6*d+1e-6)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("destination distance mismatch: %v", err)
	}
}

func TestMidpoint(t *testing.T) {
	a := NewPoint(0, 0)
	b := NewPoint(0, 90)
	m := Midpoint(a, b)
	if !almostEqual(m.LatDeg, 0, 1e-9) || !almostEqual(m.LonDeg, 45, 1e-9) {
		t.Errorf("midpoint = %v, want 0,45", m)
	}
	da := HaversineKm(a, m)
	db := HaversineKm(b, m)
	if !almostEqual(da, db, 1e-6) {
		t.Errorf("midpoint not equidistant: %v vs %v", da, db)
	}
}

func TestCoverageAngle(t *testing.T) {
	// Shell 1 at 550 km with a 25 deg mask covers a cap of roughly 940 km
	// great-circle radius.
	beta := CoverageAngleRad(550, 25)
	radiusKm := beta * EarthRadiusKm
	if radiusKm < 800 || radiusKm > 1100 {
		t.Errorf("coverage radius = %v km, want ~940", radiusKm)
	}
	// Lower masks cover more ground.
	if CoverageAngleRad(550, 5) <= CoverageAngleRad(550, 40) {
		t.Error("coverage angle should shrink with a higher elevation mask")
	}
}

func TestVec3Ops(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, 5, 6}
	if got := v.Add(w); got != (Vec3{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec3{-3, -3, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Cross(w); got != (Vec3{-3, 6, -3}) {
		t.Errorf("Cross = %v", got)
	}
	if u := v.Unit(); !almostEqual(u.Norm(), 1, 1e-12) {
		t.Errorf("Unit norm = %v", u.Norm())
	}
	if z := (Vec3{}).Unit(); z != (Vec3{}) {
		t.Errorf("zero Unit = %v", z)
	}
}

func TestPointString(t *testing.T) {
	s := NewPoint(-25.9692, 32.5732).String()
	if s == "" {
		t.Fatal("empty String()")
	}
	n := NewPoint(51.5, -0.1).String()
	if n == s {
		t.Fatal("distinct points should render differently")
	}
}
