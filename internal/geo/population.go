package geo

// Metro-area populations for the embedded city dataset, in thousands of
// inhabitants (2024 UN/city-agency estimates, rounded). The traffic engine
// uses these as placement weights — a million simulated users land in cities
// in proportion to these figures — so relative magnitude matters and the
// absolute precision does not. Keyed "name|CC" like the dataset index.
var cityPopulationK = map[string]int64{
	// Africa
	"Maputo|MZ": 1130, "Beira|MZ": 530,
	"Johannesburg|ZA": 6060, "Cape Town|ZA": 4800, "Durban|ZA": 3200,
	"Nairobi|KE": 5120, "Mombasa|KE": 1340,
	"Lagos|NG": 16100, "Abuja|NG": 3840,
	"Kigali|RW": 1250, "Lusaka|ZM": 3180, "Ndola|ZM": 630,
	"Mbabane|SZ": 100, "Manzini|SZ": 120,
	"Dar es Salaam|TZ": 7780, "Kampala|UG": 3850,
	"Accra|GH": 2660, "Abidjan|CI": 5680, "Dakar|SN": 3940,
	"Cairo|EG": 22180, "Casablanca|MA": 3840, "Tunis|TN": 2440,
	"Luanda|AO": 9290, "Harare|ZW": 2150, "Gaborone|BW": 270,
	"Windhoek|NA": 450, "Antananarivo|MG": 3700, "Lilongwe|MW": 1230,
	"Kinshasa|CD": 16320, "Addis Ababa|ET": 5700,

	// Europe
	"London|GB": 9650, "Manchester|GB": 2790,
	"Frankfurt|DE": 2720, "Berlin|DE": 3570, "Munich|DE": 1590,
	"Paris|FR": 11210, "Marseille|FR": 1620,
	"Madrid|ES": 6750, "Barcelona|ES": 5690, "Lisbon|PT": 3000,
	"Milan|IT": 3150, "Rome|IT": 4320,
	"Amsterdam|NL": 2480, "Brussels|BE": 2120, "Zurich|CH": 1420,
	"Vienna|AT": 2010, "Warsaw|PL": 1800, "Prague|CZ": 1340,
	"Stockholm|SE": 1700, "Oslo|NO": 1070, "Copenhagen|DK": 1380,
	"Helsinki|FI": 1330, "Dublin|IE": 1270,
	"Vilnius|LT": 580, "Kaunas|LT": 300, "Riga|LV": 610, "Tallinn|EE": 450,
	"Athens|GR": 3640, "Nicosia|CY": 350, "Limassol|CY": 250,
	"Sofia|BG": 1290, "Bucharest|RO": 1780, "Budapest|HU": 1780,
	"Zagreb|HR": 810, "Kyiv|UA": 3010, "Istanbul|TR": 15850,
	"Reykjavik|IS": 230,

	// North America & Caribbean
	"Seattle|US": 4050, "Los Angeles|US": 12900, "San Jose|US": 2000,
	"Denver|US": 3000, "Dallas|US": 7950, "Chicago|US": 9260,
	"Atlanta|US": 6300, "Ashburn|US": 350, "New York|US": 19620,
	"Miami|US": 6140, "Kansas City|US": 2200, "Phoenix|US": 5070,
	"Anchorage|US": 290, "Honolulu|US": 1000,
	"Toronto|CA": 6700, "Vancouver|CA": 2850, "Montreal|CA": 4310,
	"Calgary|CA": 1640, "Winnipeg|CA": 850,
	"Mexico City|MX": 22500, "Queretaro|MX": 1590, "Guadalajara|MX": 5340,
	"Guatemala City|GT": 3160, "Quetzaltenango|GT": 300,
	"Port-au-Prince|HT": 2940, "Cap-Haitien|HT": 420,
	"San Juan|PR": 2440, "Santo Domingo|DO": 3590,
	"Panama City|PA": 2110, "San Jose CR|CR": 1620, "Kingston|JM": 1220,

	// South America
	"Sao Paulo|BR": 22620, "Rio de Janeiro|BR": 13730,
	"Fortaleza|BR": 4230, "Porto Alegre|BR": 4400,
	"Buenos Aires|AR": 15490, "Cordoba|AR": 1610,
	"Santiago|CL": 6950, "Punta Arenas|CL": 140,
	"Lima|PE": 11200, "Bogota|CO": 11340, "Quito|EC": 2000,
	"Asuncion|PY": 3480, "Montevideo|UY": 1780, "La Paz|BO": 1950,
	"Caracas|VE": 2940,

	// Asia & Middle East
	"Tokyo|JP": 37120, "Osaka|JP": 18970, "Sapporo|JP": 2670,
	"Seoul|KR": 25510, "Singapore|SG": 6040,
	"Kuala Lumpur|MY": 8420, "Jakarta|ID": 33430, "Manila|PH": 14670,
	"Bangkok|TH": 17070, "Hanoi|VN": 8590,
	"Hong Kong|HK": 7500, "Taipei|TW": 7040,
	"Mumbai|IN": 21670, "Delhi|IN": 33810, "Chennai|IN": 12050,
	"Karachi|PK": 17650, "Dubai|AE": 3610, "Doha|QA": 2410,
	"Riyadh|SA": 7680, "Tel Aviv|IL": 4420, "Amman|JO": 4640,
	"Almaty|KZ": 2150, "Ulaanbaatar|MN": 1670,

	// Oceania
	"Sydney|AU": 5310, "Melbourne|AU": 5210, "Perth|AU": 2240,
	"Brisbane|AU": 2630, "Auckland|NZ": 1710, "Christchurch|NZ": 400,
	"Suva|FJ": 200, "Port Moresby|PG": 400,
}

// defaultPopulationK keeps a city added to the dataset without a population
// entry usable as a traffic source instead of silently invisible.
const defaultPopulationK = 500

// CityPopulation returns the metro population of an embedded city, in
// persons. Unknown cities weigh in at a small-town default so dataset and
// population table can evolve independently (the population test pins the
// two tables together for the committed dataset).
func CityPopulation(c City) int64 {
	if k, ok := cityPopulationK[c.Name+"|"+c.Country]; ok {
		return k * 1000
	}
	return defaultPopulationK * 1000
}

// TotalPopulation sums CityPopulation over the given cities.
func TotalPopulation(cities []City) int64 {
	var sum int64
	for _, c := range cities {
		sum += CityPopulation(c)
	}
	return sum
}
