package geo

import "testing"

// Every embedded city must carry an explicit metro population — a new city
// added to the dataset without one silently falls back to the default and
// skews traffic apportionment.
func TestEveryCityHasExplicitPopulation(t *testing.T) {
	for _, c := range Cities() {
		if _, ok := cityPopulationK[c.Name+"|"+c.Country]; !ok {
			t.Errorf("city %s (%s) missing from cityPopulationK", c.Name, c.Country)
		}
	}
	for key := range cityPopulationK {
		found := false
		for _, c := range Cities() {
			if key == c.Name+"|"+c.Country {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("population entry %q matches no embedded city", key)
		}
	}
}

func TestCityPopulationValues(t *testing.T) {
	tokyo, ok := CityByName("Tokyo")
	if !ok {
		t.Fatal("Tokyo missing from dataset")
	}
	if p := CityPopulation(tokyo); p < 30_000_000 {
		t.Fatalf("Tokyo population %d implausibly small", p)
	}
	reyk, ok := CityByName("Reykjavik")
	if !ok {
		t.Fatal("Reykjavik missing from dataset")
	}
	if CityPopulation(reyk) >= CityPopulation(tokyo) {
		t.Fatal("Reykjavik outweighs Tokyo")
	}
	// Unknown cities fall back to the default rather than zero, so a future
	// dataset addition degrades gracefully instead of dropping users.
	if p := CityPopulation(City{Name: "Nowhere", Country: "XX"}); p != defaultPopulationK*1000 {
		t.Fatalf("fallback population %d, want %d", p, defaultPopulationK*1000)
	}
	total := TotalPopulation(Cities())
	if total < 500_000_000 {
		t.Fatalf("dataset total population %d implausibly small", total)
	}
}
