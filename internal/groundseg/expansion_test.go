package groundseg

import (
	"testing"

	"spacecdn/internal/geo"
)

func TestWithPoPExpansion(t *testing.T) {
	c := NewCatalog(
		WithPoP("nbo", "Nairobi, KE"),
		WithPoP("mpm", "Maputo, MZ"),
		WithAssignment("KE", "nbo"),
		WithAssignment("MZ", "mpm"),
	)
	if got := len(c.PoPs()); got != 24 {
		t.Fatalf("PoPs = %d, want 24", got)
	}
	p, ok := c.AssignPoP("KE")
	if !ok || p.Name != "nbo" {
		t.Errorf("KE assigned to %v", p.Name)
	}
	p, ok = c.AssignPoP("MZ")
	if !ok || p.Name != "mpm" {
		t.Errorf("MZ assigned to %v", p.Name)
	}
	// Every new PoP has a colocated station.
	if gs := c.StationsForPoP("nbo"); len(gs) != 1 || gs[0].Name != "gs-nbo" {
		t.Errorf("nbo stations = %v", gs)
	}
	// Unrelated assignments untouched.
	p, _ = c.AssignPoP("ZM")
	if p.Name != "fra" {
		t.Errorf("ZM assignment changed: %s", p.Name)
	}
	// The baseline catalog is unaffected by options applied to another
	// instance (no global state leaks).
	base := NewCatalog()
	if got := len(base.PoPs()); got != 22 {
		t.Errorf("baseline PoPs = %d after expansion elsewhere", got)
	}
	if p, _ := base.AssignPoP("KE"); p.Name != "fra" {
		t.Errorf("baseline KE assignment changed: %s", p.Name)
	}
}

func TestWithPoPPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate PoP should panic")
		}
	}()
	NewCatalog(WithPoP("fra", "Frankfurt, DE"))
}

func TestWithPoPPanicsOnUnknownCity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown city should panic")
		}
	}()
	NewCatalog(WithPoP("zzz", "Atlantis, XX"))
}

func TestWithAssignmentPanicsOnUnknownPoP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown PoP should panic")
		}
	}()
	NewCatalog(WithAssignment("KE", "nope"))
}

func TestExpansionShrinksDistance(t *testing.T) {
	base := NewCatalog()
	expanded := NewCatalog(WithPoP("mpm", "Maputo, MZ"), WithAssignment("MZ", "mpm"))
	centroid, _ := geo.CountryCentroid("MZ")
	before, _ := base.AssignPoP("MZ")
	after, _ := expanded.AssignPoP("MZ")
	dBefore := geo.HaversineKm(centroid, before.Loc)
	dAfter := geo.HaversineKm(centroid, after.Loc)
	if dAfter >= dBefore/10 {
		t.Errorf("expansion did not shrink PoP distance: %v -> %v km", dBefore, dAfter)
	}
}
