// Package groundseg models the LEO operator's ground segment: points of
// presence (PoPs) where subscriber traffic enters the Internet, ground
// stations (GSs) that terminate the space segment, and the country-to-PoP
// assignment policy that the paper identifies as the root cause of poor CDN
// mapping for satellite subscribers.
//
// The catalog mirrors the 22 operational Starlink PoP locations shown in the
// paper's Figure 2 (as of mid-2024): nine in the United States, four in
// Latin America, five in Europe, Tokyo, Sydney, Auckland, and Lagos as the
// single African PoP. Countries without a local PoP are assigned to a remote
// one — the paper's Table 1 implies Frankfurt for most of southern/eastern
// Africa and Lagos for a few (Rwanda, Eswatini), which this table encodes.
package groundseg

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"spacecdn/internal/geo"
)

// PoP is a point of presence: the carrier-grade-NAT egress where subscriber
// traffic is handed to the terrestrial Internet and where anycast "sees" the
// subscriber.
type PoP struct {
	Name    string // short code, e.g. "fra"
	City    string
	Country string // ISO2
	Loc     geo.Point
}

// GroundStation terminates satellite downlinks and forwards traffic to its
// home PoP over terrestrial fiber.
type GroundStation struct {
	Name string
	Loc  geo.Point
	PoP  string // Name of the home PoP
}

func pop(name, cityName string) PoP {
	c, ok := geo.CityByName(cityName)
	if !ok {
		panic(fmt.Sprintf("groundseg: unknown city %q", cityName))
	}
	return PoP{Name: name, City: c.Name, Country: c.Country, Loc: c.Loc}
}

// pops is the embedded 22-PoP catalog (paper Fig. 2).
var pops = []PoP{
	// United States (9)
	pop("sea", "Seattle, US"),
	pop("lax", "Los Angeles, US"),
	pop("dfw", "Dallas, US"),
	pop("den", "Denver, US"),
	pop("ord", "Chicago, US"),
	pop("iad", "Ashburn, US"),
	pop("atl", "Atlanta, US"),
	pop("nyc", "New York, US"),
	pop("mia", "Miami, US"),
	// Latin America (4)
	pop("qro", "Queretaro, MX"),
	pop("lim", "Lima, PE"),
	pop("scl", "Santiago, CL"),
	pop("gru", "Sao Paulo, BR"),
	// Europe (5)
	pop("lhr", "London, GB"),
	pop("fra", "Frankfurt, DE"),
	pop("mad", "Madrid, ES"),
	pop("mxp", "Milan, IT"),
	pop("waw", "Warsaw, PL"),
	// Asia-Pacific (3)
	pop("tyo", "Tokyo, JP"),
	pop("syd", "Sydney, AU"),
	pop("akl", "Auckland, NZ"),
	// Africa (1)
	pop("los", "Lagos, NG"),
}

// extraGS places additional ground stations away from PoP cities so that
// domestic bent-pipe paths in large well-served countries do not all land on
// a PoP rooftop. Each is homed on its nearest PoP.
var extraGS = []struct {
	name string
	lat  float64
	lon  float64
	pop  string
}{
	{"gs-kansas", 39.1, -94.6, "ord"},
	{"gs-boise", 43.6, -116.2, "sea"},
	{"gs-elpaso", 31.8, -106.4, "dfw"},
	{"gs-charlotte", 35.2, -80.8, "atl"},
	{"gs-winnipeg", 49.9, -97.1, "ord"},
	{"gs-calgary", 51.0, -114.1, "sea"},
	{"gs-hermosillo", 29.1, -110.9, "qro"},
	{"gs-cordoba-ar", -31.4, -64.2, "scl"},
	{"gs-fortaleza", -3.7, -38.5, "gru"},
	{"gs-manchester", 53.5, -2.2, "lhr"},
	{"gs-toulouse", 43.6, 1.4, "mad"},
	{"gs-hamburg", 53.6, 10.0, "fra"},
	{"gs-turin", 45.1, 7.7, "mxp"},
	{"gs-gdansk", 54.4, 18.6, "waw"},
	{"gs-sendai", 38.3, 140.9, "tyo"},
	{"gs-brisbane", -27.5, 153.0, "syd"},
	{"gs-perth", -31.9, 115.9, "syd"},
	{"gs-christchurch", -43.5, 172.6, "akl"},
	{"gs-abuja", 9.1, 7.4, "los"},
}

// countryPoP assigns countries without their own obvious nearest PoP. It
// encodes the paper's observed routing: most of sub-Saharan Africa lands in
// Frankfurt; Rwanda and Eswatini land in Lagos (their Table 1 distances match
// the Lagos geodesic); the Caribbean lands in Ashburn (Haiti's 2,063 km
// matches Ashburn, not Miami); Southeast Asia lands in Sydney or Tokyo.
var countryPoP = map[string]string{
	// Africa
	"NG": "los",
	"RW": "los",
	"SZ": "los",
	"MZ": "fra",
	"KE": "fra",
	"ZM": "fra",
	"ZW": "fra",
	"BW": "fra",
	"MG": "fra",
	"MW": "fra",

	// Europe
	"GB": "lhr", "IE": "lhr", "FR": "lhr", "BE": "lhr", "NL": "lhr", "IS": "lhr",
	"DE": "fra", "AT": "fra", "CH": "fra", "CZ": "fra",
	"DK": "fra", "SE": "fra", "NO": "fra", "FI": "fra",
	"LT": "fra", "LV": "fra", "EE": "fra", "CY": "fra", "GR": "fra",
	"PL": "waw", "UA": "waw", "HU": "waw", "RO": "waw", "BG": "waw", "HR": "waw",
	"ES": "mad", "PT": "mad",
	"IT": "mxp",

	// Americas
	"MX": "qro", "GT": "qro", "CR": "qro", "PA": "qro",
	"HT": "iad", "PR": "iad", "DO": "iad", "JM": "iad",
	"PE": "lim", "CO": "lim", "EC": "lim",
	"CL": "scl", "BO": "scl",
	"BR": "gru", "AR": "gru", "PY": "gru", "UY": "gru",

	// Asia-Pacific
	"JP": "tyo", "MN": "tyo",
	"MY": "syd", "ID": "syd", "PH": "syd",
	"AU": "syd", "PG": "syd",
	"NZ": "akl", "FJ": "akl",
}

// Catalog bundles the ground segment and answers assignment queries. It is
// immutable after construction and safe for concurrent use; construct with
// NewCatalog, optionally extended with WithPoP/WithAssignment options (the
// paper's §5 discusses how ground-segment expansion changes the picture).
type Catalog struct {
	pops     []PoP
	popIdx   map[string]int
	stations []GroundStation
	byPoP    map[string][]int  // PoP name -> station indices
	assign   map[string]string // ISO2 -> PoP name
}

// Option customizes a Catalog under construction.
type Option func(*Catalog)

// WithPoP deploys an additional PoP (with a colocated ground station) in the
// named city — modelling ground-segment expansion.
func WithPoP(name, cityName string) Option {
	return func(c *Catalog) {
		p := pop(name, cityName)
		if _, dup := c.popIdx[p.Name]; dup {
			panic(fmt.Sprintf("groundseg: duplicate PoP %q", p.Name))
		}
		c.popIdx[p.Name] = len(c.pops)
		c.pops = append(c.pops, p)
		c.addStation(GroundStation{Name: "gs-" + p.Name, Loc: p.Loc, PoP: p.Name})
	}
}

// WithAssignment overrides the serving PoP for a country (applied after all
// PoPs are registered; the PoP must exist).
func WithAssignment(iso2, popName string) Option {
	return func(c *Catalog) {
		if _, ok := c.popIdx[strings.ToLower(popName)]; !ok {
			panic(fmt.Sprintf("groundseg: assignment for %s references unknown PoP %q", iso2, popName))
		}
		c.assign[strings.ToUpper(iso2)] = strings.ToLower(popName)
	}
}

// NewCatalog builds the embedded ground-segment catalog: the 22 PoPs, one
// colocated ground station per PoP, and the extra inland stations. Options
// add PoPs and reassign countries on top of the baseline.
func NewCatalog(opts ...Option) *Catalog {
	c := &Catalog{
		pops:   append([]PoP(nil), pops...),
		popIdx: make(map[string]int, len(pops)),
		byPoP:  make(map[string][]int),
		assign: make(map[string]string, len(countryPoP)),
	}
	for i, p := range c.pops {
		c.popIdx[p.Name] = i
	}
	for _, p := range c.pops {
		c.addStation(GroundStation{Name: "gs-" + p.Name, Loc: p.Loc, PoP: p.Name})
	}
	for _, e := range extraGS {
		if _, ok := c.popIdx[e.pop]; !ok {
			panic(fmt.Sprintf("groundseg: extra GS %s references unknown PoP %s", e.name, e.pop))
		}
		c.addStation(GroundStation{Name: e.name, Loc: geo.NewPoint(e.lat, e.lon), PoP: e.pop})
	}
	for iso, name := range countryPoP {
		c.assign[iso] = name
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

func (c *Catalog) addStation(gs GroundStation) {
	c.byPoP[gs.PoP] = append(c.byPoP[gs.PoP], len(c.stations))
	c.stations = append(c.stations, gs)
}

// PoPs returns the PoP catalog (copy).
func (c *Catalog) PoPs() []PoP {
	return append([]PoP(nil), c.pops...)
}

// Stations returns all ground stations (copy).
func (c *Catalog) Stations() []GroundStation {
	return append([]GroundStation(nil), c.stations...)
}

// PoPByName resolves a PoP short code.
func (c *Catalog) PoPByName(name string) (PoP, bool) {
	i, ok := c.popIdx[strings.ToLower(name)]
	if !ok {
		return PoP{}, false
	}
	return c.pops[i], true
}

// NearestPoP returns the geographically closest PoP to a point.
func (c *Catalog) NearestPoP(p geo.Point) PoP {
	best := 0
	bestD := math.Inf(1)
	for i, pp := range c.pops {
		if d := geo.HaversineKm(p, pp.Loc); d < bestD {
			bestD = d
			best = i
		}
	}
	return c.pops[best]
}

// AssignPoP returns the PoP serving subscribers in the given country. The
// explicit table (including option overrides) wins; countries not listed
// fall back to the nearest PoP from the country centroid. ok is false for
// unknown countries.
func (c *Catalog) AssignPoP(iso2 string) (PoP, bool) {
	iso2 = strings.ToUpper(iso2)
	if name, ok := c.assign[iso2]; ok {
		p, ok2 := c.PoPByName(name)
		return p, ok2
	}
	centroid, ok := geo.CountryCentroid(iso2)
	if !ok {
		return PoP{}, false
	}
	return c.NearestPoP(centroid), true
}

// AssignPoPForClient returns the serving PoP for a client at a location in a
// country. US and Canadian subscribers use their nearest PoP (domestic PoP
// diversity); everyone else uses the country assignment.
func (c *Catalog) AssignPoPForClient(iso2 string, loc geo.Point) (PoP, bool) {
	iso2 = strings.ToUpper(iso2)
	if iso2 == "US" || iso2 == "CA" {
		return c.NearestPoP(loc), true
	}
	return c.AssignPoP(iso2)
}

// StationsForPoP returns the ground stations homed on a PoP.
func (c *Catalog) StationsForPoP(name string) []GroundStation {
	idx := c.byPoP[strings.ToLower(name)]
	out := make([]GroundStation, len(idx))
	for i, j := range idx {
		out[i] = c.stations[j]
	}
	return out
}

// NearestStationForPoP returns, among the ground stations homed on the given
// PoP, the one closest to the reference point. This is the landing site for
// bent-pipe traffic that must egress at that specific PoP. ok is false for an
// unknown PoP.
func (c *Catalog) NearestStationForPoP(name string, ref geo.Point) (GroundStation, bool) {
	idx := c.byPoP[strings.ToLower(name)]
	if len(idx) == 0 {
		return GroundStation{}, false
	}
	best := idx[0]
	bestD := math.Inf(1)
	for _, j := range idx {
		if d := geo.HaversineKm(ref, c.stations[j].Loc); d < bestD {
			bestD = d
			best = j
		}
	}
	return c.stations[best], true
}

// CountriesServed returns the ISO codes with an explicit PoP assignment,
// sorted. Useful for reporting and tests.
func CountriesServed() []string {
	out := make([]string, 0, len(countryPoP))
	for iso := range countryPoP {
		out = append(out, iso)
	}
	sort.Strings(out)
	return out
}
