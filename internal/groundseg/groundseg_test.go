package groundseg

import (
	"testing"

	"spacecdn/internal/geo"
)

func TestCatalogShape(t *testing.T) {
	c := NewCatalog()
	if got := len(c.PoPs()); got != 22 {
		t.Errorf("PoP count = %d, want 22 (paper Fig. 2)", got)
	}
	if got := len(c.Stations()); got < 22+len(extraGS) {
		t.Errorf("station count = %d, want >= %d", got, 22+len(extraGS))
	}
	// Exactly one African PoP: Lagos.
	african := 0
	for _, p := range c.PoPs() {
		cc, ok := geo.CountryByISO(p.Country)
		if !ok {
			t.Fatalf("PoP %s has unknown country %s", p.Name, p.Country)
		}
		if cc.Region == geo.RegionAfrica {
			african++
			if p.Name != "los" {
				t.Errorf("unexpected African PoP %s", p.Name)
			}
		}
	}
	if african != 1 {
		t.Errorf("African PoPs = %d, want 1", african)
	}
}

func TestEveryStationHasValidPoP(t *testing.T) {
	c := NewCatalog()
	for _, gs := range c.Stations() {
		p, ok := c.PoPByName(gs.PoP)
		if !ok {
			t.Errorf("station %s references unknown PoP %s", gs.Name, gs.PoP)
			continue
		}
		// Stations serve their home PoP from within a continental distance.
		if d := geo.HaversineKm(gs.Loc, p.Loc); d > 4500 {
			t.Errorf("station %s is %v km from its PoP %s", gs.Name, d, p.Name)
		}
		if !gs.Loc.Valid() {
			t.Errorf("station %s has invalid location", gs.Name)
		}
	}
}

func TestPoPByName(t *testing.T) {
	c := NewCatalog()
	p, ok := c.PoPByName("fra")
	if !ok || p.City != "Frankfurt" {
		t.Fatalf("fra lookup: %+v ok=%v", p, ok)
	}
	if _, ok := c.PoPByName("xxx"); ok {
		t.Error("unknown PoP resolved")
	}
	// Case-insensitive.
	if _, ok := c.PoPByName("FRA"); !ok {
		t.Error("uppercase lookup failed")
	}
}

func TestAssignPoPPaperGeography(t *testing.T) {
	c := NewCatalog()
	// The assignments that drive the paper's Table 1 shape.
	cases := map[string]string{
		"MZ": "fra", // Maputo -> Frankfurt, ~8,776 km
		"KE": "fra",
		"ZM": "fra",
		"RW": "los", // Rwanda's Table 1 distance matches Lagos
		"SZ": "los",
		"NG": "los", // the paper's outlier: local PoP
		"LT": "fra", // Vilnius -> Frankfurt ~1,243 km
		"CY": "fra",
		"ES": "mad", // local PoP -> near parity with terrestrial
		"JP": "tyo",
		"DE": "fra",
		"GB": "lhr",
		"GT": "qro", // Guatemala City -> Queretaro ~1,221 km
		"HT": "iad", // Port-au-Prince -> Ashburn ~2,063 km
	}
	for iso, want := range cases {
		p, ok := c.AssignPoP(iso)
		if !ok {
			t.Errorf("AssignPoP(%s) failed", iso)
			continue
		}
		if p.Name != want {
			t.Errorf("AssignPoP(%s) = %s, want %s", iso, p.Name, want)
		}
	}
}

func TestAssignPoPDistancesMatchTable1(t *testing.T) {
	// The geodesic from the country's capital to its assigned PoP should be
	// within ~20% of the paper's Table 1 "Starlink distance" column (their
	// distances are averages over client cities; ours use the capital).
	c := NewCatalog()
	cases := []struct {
		iso    string
		paper  float64
		relTol float64
	}{
		{"GT", 1220.9, 0.25},
		{"MZ", 8776.5, 0.15},
		{"CY", 2595.3, 0.15},
		{"HT", 2063.2, 0.15},
		{"KE", 6310.8, 0.15},
		{"ZM", 7545.9, 0.15},
		{"LT", 1243.2, 0.15},
	}
	for _, tc := range cases {
		p, ok := c.AssignPoP(tc.iso)
		if !ok {
			t.Fatalf("AssignPoP(%s) failed", tc.iso)
		}
		centroid, _ := geo.CountryCentroid(tc.iso)
		d := geo.HaversineKm(centroid, p.Loc)
		if d < tc.paper*(1-tc.relTol) || d > tc.paper*(1+tc.relTol) {
			t.Errorf("%s: capital->PoP distance %.0f km, paper %.0f km", tc.iso, d, tc.paper)
		}
	}
}

func TestAssignPoPFallback(t *testing.T) {
	c := NewCatalog()
	// US is not in the explicit table: falls back to nearest from centroid.
	if _, ok := c.AssignPoP("US"); !ok {
		t.Error("US fallback failed")
	}
	if _, ok := c.AssignPoP("ZZ"); ok {
		t.Error("unknown country should fail")
	}
}

func TestAssignPoPForClient(t *testing.T) {
	c := NewCatalog()
	// US clients use their nearest PoP, not a single national one.
	seattle, _ := geo.CityByName("Seattle, US")
	miami, _ := geo.CityByName("Miami, US")
	p1, _ := c.AssignPoPForClient("US", seattle.Loc)
	p2, _ := c.AssignPoPForClient("US", miami.Loc)
	if p1.Name != "sea" || p2.Name != "mia" {
		t.Errorf("US clients: %s/%s, want sea/mia", p1.Name, p2.Name)
	}
	// Non-US clients use the country table regardless of location.
	beira, _ := geo.CityByName("Beira, MZ")
	p3, _ := c.AssignPoPForClient("MZ", beira.Loc)
	if p3.Name != "fra" {
		t.Errorf("MZ client PoP = %s, want fra", p3.Name)
	}
}

func TestNearestPoP(t *testing.T) {
	c := NewCatalog()
	ffm, _ := geo.CityByName("Frankfurt, DE")
	if p := c.NearestPoP(ffm.Loc); p.Name != "fra" {
		t.Errorf("nearest to Frankfurt = %s", p.Name)
	}
	nairobi, _ := geo.CityByName("Nairobi, KE")
	p := c.NearestPoP(nairobi.Loc)
	// Geographically nearest to Nairobi is Lagos (3,800 km) — the point of
	// the paper is that assignment does NOT use it for Kenya.
	if p.Name != "los" {
		t.Errorf("nearest to Nairobi = %s, want los", p.Name)
	}
	assigned, _ := c.AssignPoP("KE")
	if assigned.Name == p.Name {
		t.Error("Kenya's assigned PoP should differ from its nearest PoP")
	}
}

func TestStationsForPoP(t *testing.T) {
	c := NewCatalog()
	fra := c.StationsForPoP("fra")
	if len(fra) < 2 { // colocated + Hamburg
		t.Errorf("fra stations = %d, want >= 2", len(fra))
	}
	for _, gs := range fra {
		if gs.PoP != "fra" {
			t.Errorf("station %s not homed on fra", gs.Name)
		}
	}
	if got := c.StationsForPoP("nope"); len(got) != 0 {
		t.Error("unknown PoP should have no stations")
	}
}

func TestNearestStationForPoP(t *testing.T) {
	c := NewCatalog()
	// From Hamburg, the nearest fra-homed station is the Hamburg GS.
	gs, ok := c.NearestStationForPoP("fra", geo.NewPoint(53.55, 9.99))
	if !ok {
		t.Fatal("no station for fra")
	}
	if gs.Name != "gs-hamburg" {
		t.Errorf("nearest fra station from Hamburg = %s", gs.Name)
	}
	if _, ok := c.NearestStationForPoP("nope", geo.NewPoint(0, 0)); ok {
		t.Error("unknown PoP should fail")
	}
}

func TestCountriesServed(t *testing.T) {
	served := CountriesServed()
	if len(served) < 40 {
		t.Errorf("explicit assignments = %d, want >= 40", len(served))
	}
	for i := 1; i < len(served); i++ {
		if served[i-1] >= served[i] {
			t.Error("CountriesServed not sorted")
		}
	}
	// Every explicitly served country must exist in the geo dataset and
	// resolve to a real PoP.
	c := NewCatalog()
	for _, iso := range served {
		if _, ok := geo.CountryByISO(iso); !ok {
			t.Errorf("served country %s missing from geo dataset", iso)
		}
		if _, ok := c.AssignPoP(iso); !ok {
			t.Errorf("served country %s does not resolve to a PoP", iso)
		}
	}
}
