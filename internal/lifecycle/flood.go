package lifecycle

import (
	"fmt"
	"time"

	"spacecdn/internal/constellation"
	"spacecdn/internal/content"
	"spacecdn/internal/geo"
	"spacecdn/internal/routing"
)

// Topology prices ISL paths from a seed satellite. Satisfied by
// *constellation.Snapshot (healthy) and *constellation.MaskedView (fault-
// masked) — the same duality the serving path uses, so a purge flood under
// faults automatically routes around dead satellites and links and leaves
// partitioned satellites unreached.
type Topology interface {
	PathTree(constellation.SatID) *routing.SPTree
}

// NeverReceived marks a satellite a flood never reached.
const NeverReceived = time.Duration(-1)

// FloodReceipts models a purge flood injected at the seed satellite at time
// at: every satellite's receipt epoch is the first-arrival time of the
// flood, which over an ISL broadcast equals the shortest-path delay from
// the seed (propagation plus perHopMs switching per hop), plus the uplink
// delay of getting the purge from the ground into the seed. Satellites the
// topology cannot reach from the seed get NeverReceived.
//
// The computation is a pure function of the topology and the seed — no
// randomness — so flood ordering is identical across worker counts by
// construction.
func FloodReceipts(topo Topology, n int, seed constellation.SatID, at time.Duration, perHopMs, uplinkMs float64) (receipts []time.Duration, reached int) {
	receipts = make([]time.Duration, n)
	tree := topo.PathTree(seed)
	for i := range receipts {
		if tree == nil {
			receipts[i] = NeverReceived
			continue
		}
		node := routing.NodeID(i)
		if !tree.Reachable(node) {
			receipts[i] = NeverReceived
			continue
		}
		hops, _ := tree.HopsTo(node)
		delayMs := uplinkMs + tree.Dist(node) + float64(hops)*perHopMs
		receipts[i] = at + time.Duration(delayMs*float64(time.Millisecond))
		reached++
	}
	return receipts, reached
}

// PurgeResult summarizes one issued purge.
type PurgeResult struct {
	Object     content.ID
	NewVersion int64
	Seed       constellation.SatID
	IssuedAt   time.Duration
	// Reached counts satellites the flood arrived at; Total is the fleet.
	Reached int
	Total   int
	// ConvergedAt is the last finite receipt epoch — when the whole
	// reachable fleet agrees. Equal to IssuedAt when nothing was reached.
	ConvergedAt time.Duration
	// Receipts holds every satellite's receipt epoch (NeverReceived for
	// satellites the flood could not reach).
	Receipts []time.Duration
}

// Window returns the purge's inconsistency window: how long after issuance
// some reachable satellite could still serve the superseded version.
func (r PurgeResult) Window() time.Duration { return r.ConvergedAt - r.IssuedAt }

// IssuePurge bumps the object's authoritative version and floods the purge
// from the seed satellite across the given topology at time at. The
// returned result carries the full receipt vector for inconsistency-window
// analysis; the manager retains it to answer KnownVersion.
func (m *Manager) IssuePurge(obj content.ID, topo Topology, seed constellation.SatID, at time.Duration, perHopMs, uplinkMs float64) (PurgeResult, error) {
	if topo == nil {
		return PurgeResult{}, fmt.Errorf("lifecycle: purge needs a topology")
	}
	if int(seed) < 0 || int(seed) >= m.numSats {
		return PurgeResult{}, fmt.Errorf("lifecycle: purge seed %d out of range [0,%d)", seed, m.numSats)
	}
	receipts, reached := FloodReceipts(topo, m.numSats, seed, at, perHopMs, uplinkMs)
	res := PurgeResult{
		Object:      obj,
		Seed:        seed,
		IssuedAt:    at,
		Reached:     reached,
		Total:       m.numSats,
		ConvergedAt: at,
		Receipts:    receipts,
	}
	for _, r := range receipts {
		if r > res.ConvergedAt {
			res.ConvergedAt = r
		}
	}

	m.mu.Lock()
	v := m.latestLocked(obj) + 1
	m.versions[obj] = v
	m.purges[obj] = append(m.purges[obj], purgeWave{version: v, issuedAt: at, receipts: receipts})
	m.mu.Unlock()
	m.active.Store(true)

	res.NewVersion = v
	return res, nil
}

// cellDegrees is the coalescing cell size: requests from the same ~10°
// lat/lon cell for the same object version share one origin fetch. 10° is
// roughly the footprint a handful of adjacent satellites serve, matching
// the ISSUE's "one ground bounce per cell" framing.
const cellDegrees = 10.0

// Cell quantizes a ground point into the coalescing cell grid.
func Cell(p geo.Point) int {
	row := int((p.LatDeg + 90) / cellDegrees)
	col := int((p.LonDeg + 180) / cellDegrees)
	maxRow := int(180/cellDegrees) - 1
	maxCol := int(360/cellDegrees) - 1
	if row < 0 {
		row = 0
	} else if row > maxRow {
		row = maxRow
	}
	if col < 0 {
		col = 0
	} else if col > maxCol {
		col = maxCol
	}
	return row*int(360/cellDegrees) + col
}

// FlightKey is the single-flight coalescing key: concurrent origin fetches
// for the same object version from the same cell collapse into one.
type FlightKey struct {
	Object  content.ID
	Version int64
	Cell    int
}
