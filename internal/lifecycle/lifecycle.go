// Package lifecycle gives cached content a life: versions, per-class TTLs
// with stale-while-revalidate grace, and control-plane purges that must
// physically propagate to every moving cache over the ISL topology.
//
// The package is deliberately passive: it classifies and stamps, but never
// touches a cache or serves a request itself. The serving path
// (internal/spacecdn) consults a Manager at each cache hit and acts on the
// verdict. A zero-policy Manager with no purges issued is inert — the
// serving path checks Active() before anything else and runs its
// pre-lifecycle pipeline byte-identically.
package lifecycle

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"spacecdn/internal/cache"
	"spacecdn/internal/content"
)

// Freshness classifies a cache hit against the entry's lifecycle stamps.
type Freshness int

// Freshness verdicts. numFreshness must stay last; the name table and the
// serving path's per-verdict counters are sized by it.
const (
	// Fresh: within TTL (or immutable); serve directly.
	Fresh Freshness = iota
	// StaleRevalidate: past TTL but within the stale-while-revalidate
	// grace; serve the cached copy and revalidate against origin off-path.
	StaleRevalidate
	// Expired: past grace, version-invalidated by a received purge, or
	// otherwise unservable; treat as a miss and refetch.
	Expired

	numFreshness // keep last
)

var freshnessNames = [numFreshness]string{
	Fresh:           "fresh",
	StaleRevalidate: "stale-revalidate",
	Expired:         "expired",
}

func (f Freshness) String() string {
	if f < 0 || f >= numFreshness {
		return fmt.Sprintf("freshness(%d)", int(f))
	}
	return freshnessNames[f]
}

// NumFreshness returns the number of freshness verdicts.
func NumFreshness() int { return int(numFreshness) }

// FreshnessValues lists every verdict, for exhaustive iteration.
func FreshnessValues() []Freshness {
	out := make([]Freshness, numFreshness)
	for i := range out {
		out[i] = Freshness(i)
	}
	return out
}

// ClassTTL is the lifecycle policy for one content class. The zero value
// means immutable: never expires, no grace needed.
type ClassTTL struct {
	// TTL is how long a fill stays fresh. 0 = immutable.
	TTL time.Duration
	// StaleFor extends servability past the TTL: the stale-while-revalidate
	// grace. Ignored when TTL is 0.
	StaleFor time.Duration
}

// Policy maps content classes to their TTLs. The zero value is the inert
// policy: every class immutable, exactly the pre-lifecycle world.
type Policy struct {
	Static      ClassTTL
	News        ClassTTL
	LiveSegment ClassTTL
	API         ClassTTL
}

// For returns the class's TTL configuration.
func (p Policy) For(c content.Class) ClassTTL {
	switch c {
	case content.ClassNews:
		return p.News
	case content.ClassLiveSegment:
		return p.LiveSegment
	case content.ClassAPI:
		return p.API
	default:
		return p.Static
	}
}

// Zero reports whether the policy is inert (all classes immutable).
func (p Policy) Zero() bool {
	return p == Policy{}
}

// DefaultPolicy returns CDN-typical TTLs: static immutable, news on a
// minutes-scale TTL with generous grace, live segments on seconds with
// barely any, API responses in between.
func DefaultPolicy() Policy {
	return Policy{
		News:        ClassTTL{TTL: 5 * time.Minute, StaleFor: 5 * time.Minute},
		LiveSegment: ClassTTL{TTL: 10 * time.Second, StaleFor: 4 * time.Second},
		API:         ClassTTL{TTL: 30 * time.Second, StaleFor: 30 * time.Second},
	}
}

// purgeWave is one issued purge: the version it established and when each
// satellite learned about it (receipt epoch; negative = never, e.g. the
// satellite was partitioned from the flood).
type purgeWave struct {
	version  int64
	issuedAt time.Duration
	receipts []time.Duration
}

// Manager is the content lifecycle authority: current object versions, the
// TTL policy, and the receipt epochs of every purge flood. It is safe for
// concurrent use; classification takes a read lock and the Active gate is a
// single atomic load, so an inert manager costs the serving path one branch.
type Manager struct {
	mu      sync.RWMutex
	policy  Policy
	numSats int
	active  atomic.Bool
	// versions holds the latest authoritative version per object; absent
	// means version 1 (every object starts at 1, and unstamped cache entries
	// with Version 0 are read as 1).
	versions map[content.ID]int64
	purges   map[content.ID][]purgeWave
}

// NewManager creates a lifecycle manager over a fleet of numSats caches.
// A zero policy yields an inert manager until the first purge is issued.
func NewManager(policy Policy, numSats int) *Manager {
	m := &Manager{
		policy:   policy,
		numSats:  numSats,
		versions: make(map[content.ID]int64),
		purges:   make(map[content.ID][]purgeWave),
	}
	if !policy.Zero() {
		m.active.Store(true)
	}
	return m
}

// Active reports whether the manager can affect serving at all: false only
// for a zero policy with no purges ever issued. The serving path gates on
// this before any other lifecycle work.
func (m *Manager) Active() bool { return m.active.Load() }

// Policy returns the TTL policy.
func (m *Manager) Policy() Policy {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.policy
}

// NumSats returns the fleet size receipts are tracked for.
func (m *Manager) NumSats() int { return m.numSats }

// LatestVersion returns the current authoritative version of an object.
func (m *Manager) LatestVersion(obj content.ID) int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.latestLocked(obj)
}

func (m *Manager) latestLocked(obj content.ID) int64 {
	if v, ok := m.versions[obj]; ok {
		return v
	}
	return 1
}

// KnownVersion returns the version satellite sat believes current at time
// now: the highest purge-established version whose flood receipt has
// arrived, else 1.
func (m *Manager) KnownVersion(sat int, obj content.ID, now time.Duration) int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.knownLocked(sat, obj, now)
}

func (m *Manager) knownLocked(sat int, obj content.ID, now time.Duration) int64 {
	known := int64(1)
	for _, w := range m.purges[obj] {
		if sat >= 0 && sat < len(w.receipts) {
			if r := w.receipts[sat]; r >= 0 && r <= now && w.version > known {
				known = w.version
			}
		}
	}
	return known
}

// Stamp fills an entry's lifecycle metadata at fill time: the current
// authoritative version and the policy expiry stamps for the class.
func (m *Manager) Stamp(it *cache.Item, class content.Class, obj content.ID, now time.Duration) {
	m.mu.RLock()
	it.Version = m.latestLocked(obj)
	ct := m.policy.For(class)
	m.mu.RUnlock()
	if ct.TTL > 0 {
		it.ExpiresAt = now + ct.TTL
		if ct.StaleFor > 0 {
			it.StaleUntil = it.ExpiresAt + ct.StaleFor
		} else {
			it.StaleUntil = it.ExpiresAt
		}
	} else {
		it.ExpiresAt = 0
		it.StaleUntil = 0
	}
}

// Classify judges a cache hit on satellite sat at time now. inconsistent
// reports a measurable stale serve inside a purge's inconsistency window:
// the entry was superseded by a purge the satellite has not yet received,
// so it (correctly, per its own knowledge) serves the old version.
func (m *Manager) Classify(sat int, entry cache.Item, obj content.ID, now time.Duration) (f Freshness, inconsistent bool) {
	if !m.active.Load() {
		return Fresh, false
	}
	m.mu.RLock()
	latest := m.latestLocked(obj)
	known := m.knownLocked(sat, obj, now)
	m.mu.RUnlock()

	ev := entry.Version
	if ev == 0 {
		ev = 1 // unstamped pre-lifecycle entries hold the initial version
	}
	if ev < known {
		// The satellite has received a purge superseding this entry.
		return Expired, false
	}
	switch {
	case entry.ExpiresAt == 0 || now <= entry.ExpiresAt:
		f = Fresh
	case now <= entry.StaleUntil:
		f = StaleRevalidate
	default:
		f = Expired
	}
	if f != Expired && ev < latest {
		inconsistent = true
	}
	return f, inconsistent
}

// Superseded reports whether the entry holds a version behind what the
// satellite already knows — i.e. a received purge invalidated it. The
// serving path uses this to attribute an Expired verdict to the purge
// (EvictPurged) rather than TTL expiry.
func (m *Manager) Superseded(sat int, entry cache.Item, obj content.ID, now time.Duration) bool {
	if !m.active.Load() {
		return false
	}
	ev := entry.Version
	if ev == 0 {
		ev = 1
	}
	return ev < m.KnownVersion(sat, obj, now)
}

// PurgeCount returns how many purges have been issued for an object.
func (m *Manager) PurgeCount(obj content.ID) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.purges[obj])
}
