package lifecycle

import (
	"testing"
	"time"

	"spacecdn/internal/cache"
	"spacecdn/internal/constellation"
	"spacecdn/internal/content"
	"spacecdn/internal/geo"
	"spacecdn/internal/orbit"
	"spacecdn/internal/routing"
)

func smallConst(t *testing.T) *constellation.Constellation {
	t.Helper()
	return constellation.MustNew(constellation.Config{
		Walker: orbit.Walker{
			Planes: 6, SatsPerPlane: 8, InclinationDeg: 53,
			AltitudeKm: 550, PhasingF: 1,
		},
		MinElevationDeg: 25,
		CrossPlaneISLs:  true,
	})
}

func TestInertManagerClassifiesEverythingFresh(t *testing.T) {
	m := NewManager(Policy{}, 10)
	if m.Active() {
		t.Fatal("zero-policy manager reports active")
	}
	it := cache.Item{Key: "x", Version: 0, ExpiresAt: 1, StaleUntil: 2}
	f, inc := m.Classify(3, it, "x", 100*time.Hour)
	if f != Fresh || inc {
		t.Fatalf("inert Classify = %v/%v, want fresh/consistent", f, inc)
	}
	// Stamping through an inert manager leaves immutable semantics.
	var fill cache.Item
	m.Stamp(&fill, content.ClassNews, "x", time.Minute)
	if fill.Version != 1 || fill.ExpiresAt != 0 || fill.StaleUntil != 0 {
		t.Fatalf("inert Stamp = %+v, want version 1 and no expiry", fill)
	}
}

func TestTTLClassification(t *testing.T) {
	p := DefaultPolicy()
	m := NewManager(p, 4)
	if !m.Active() {
		t.Fatal("non-zero policy manager must be active")
	}
	now := 10 * time.Minute
	var it cache.Item
	m.Stamp(&it, content.ClassNews, "n1", now)
	if it.Version != 1 {
		t.Fatalf("stamped version = %d, want 1", it.Version)
	}
	wantExp := now + p.News.TTL
	if it.ExpiresAt != wantExp || it.StaleUntil != wantExp+p.News.StaleFor {
		t.Fatalf("stamp = exp %v stale %v, want %v / %v", it.ExpiresAt, it.StaleUntil, wantExp, wantExp+p.News.StaleFor)
	}

	cases := []struct {
		at   time.Duration
		want Freshness
	}{
		{now, Fresh},
		{wantExp, Fresh},
		{wantExp + time.Second, StaleRevalidate},
		{wantExp + p.News.StaleFor, StaleRevalidate},
		{wantExp + p.News.StaleFor + time.Second, Expired},
	}
	for _, c := range cases {
		f, inc := m.Classify(0, it, "n1", c.at)
		if f != c.want || inc {
			t.Errorf("Classify at %v = %v/%v, want %v/consistent", c.at, f, inc, c.want)
		}
	}

	// Static class: immutable regardless of elapsed time.
	var st cache.Item
	m.Stamp(&st, content.ClassStatic, "s1", now)
	if f, _ := m.Classify(0, st, "s1", now+1000*time.Hour); f != Fresh {
		t.Fatalf("static content classified %v, want fresh", f)
	}
}

func TestPurgeFloodReceiptsAndInconsistency(t *testing.T) {
	cst := smallConst(t)
	snap := cst.Snapshot(0)
	n := cst.Total()
	m := NewManager(Policy{}, n)

	var it cache.Item
	m.Stamp(&it, content.ClassStatic, "obj", 0)

	res, err := m.IssuePurge("obj", snap, 0, time.Minute, 0.35, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Active() {
		t.Fatal("manager must become active after a purge")
	}
	if res.NewVersion != 2 || res.Reached != n || res.Total != n {
		t.Fatalf("purge result %+v, want version 2 reaching all %d", res, n)
	}
	if res.Window() <= 0 {
		t.Fatal("inconsistency window must be positive: receipts cannot be instantaneous")
	}
	// The seed's receipt is earliest (uplink only) and every receipt is
	// within the window.
	for i, r := range res.Receipts {
		if r < res.Receipts[0] {
			t.Fatalf("sat %d receipt %v earlier than seed's %v", i, r, res.Receipts[0])
		}
		if r < res.IssuedAt || r > res.ConvergedAt {
			t.Fatalf("sat %d receipt %v outside [%v, %v]", i, r, res.IssuedAt, res.ConvergedAt)
		}
	}

	// Before any receipt: every satellite still serves the old version —
	// fresh but inconsistent.
	if f, inc := m.Classify(3, it, "obj", time.Minute); f != Fresh || !inc {
		t.Fatalf("pre-receipt serve = %v/%v, want fresh/inconsistent", f, inc)
	}
	// After its receipt: the same satellite expires the entry.
	after := res.Receipts[3] + time.Millisecond
	if f, inc := m.Classify(3, it, "obj", after); f != Expired || inc {
		t.Fatalf("post-receipt serve = %v/%v, want expired/consistent", f, inc)
	}
	if got := m.KnownVersion(3, "obj", after); got != 2 {
		t.Fatalf("post-receipt KnownVersion = %d, want 2", got)
	}
	// A refill stamped after the purge serves fresh again.
	var refill cache.Item
	m.Stamp(&refill, content.ClassStatic, "obj", after)
	if refill.Version != 2 {
		t.Fatalf("refill version = %d, want 2", refill.Version)
	}
	if f, inc := m.Classify(3, refill, "obj", after+time.Hour); f != Fresh || inc {
		t.Fatalf("refill serve = %v/%v, want fresh/consistent", f, inc)
	}
}

func TestPurgeFloodUnderPartition(t *testing.T) {
	cst := smallConst(t)
	snap := cst.Snapshot(0)
	n := cst.Total()

	// Kill every ISL neighbor reachable from satellite 17 except itself by
	// killing 17's plane boundaries — simpler: kill a band of satellites
	// isolating the seed's component. Here: kill all sats in planes 2-3
	// (ids 16..31) except the seed 17, leaving 17 islanded from the rest of
	// its plane neighbors only via cross-plane links, which still exist; so
	// instead verify the weaker but sufficient property: dead satellites
	// never receive, and the flood still reaches the surviving component.
	dead := routing.NewBitset(n)
	for id := 16; id < 32; id++ {
		if id != 17 {
			dead.Set(id)
		}
	}
	view := snap.Masked(1, dead, nil)

	m := NewManager(Policy{}, n)
	res, err := m.IssuePurge("obj", view, 0, 0, 0.35, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached >= n {
		t.Fatalf("flood reached %d of %d despite %d dead sats", res.Reached, n, dead.Count())
	}
	for id := 16; id < 32; id++ {
		if id == 17 {
			continue
		}
		if res.Receipts[id] != NeverReceived {
			t.Fatalf("dead sat %d has receipt %v", id, res.Receipts[id])
		}
	}
	// A partitioned (never-notified) satellite keeps serving the old
	// version forever: stale-while-partitioned.
	var it cache.Item
	it.Version = 1
	if f, inc := m.Classify(20, it, "obj", 1000*time.Hour); f != Fresh || !inc {
		t.Fatalf("partitioned serve = %v/%v, want fresh/inconsistent", f, inc)
	}
}

func TestFloodReceiptsDeterministic(t *testing.T) {
	cst := smallConst(t)
	snap := cst.Snapshot(90 * time.Second)
	n := cst.Total()
	a, ra := FloodReceipts(snap, n, 5, time.Second, 0.35, 5)
	b, rb := FloodReceipts(snap, n, 5, time.Second, 0.35, 5)
	if ra != rb {
		t.Fatalf("reached differs: %d vs %d", ra, rb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("receipt %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSequentialPurgesStackVersions(t *testing.T) {
	cst := smallConst(t)
	snap := cst.Snapshot(0)
	n := cst.Total()
	m := NewManager(Policy{}, n)
	r1, err := m.IssuePurge("obj", snap, 0, time.Minute, 0.35, 5)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.IssuePurge("obj", snap, 3, 2*time.Minute, 0.35, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r1.NewVersion != 2 || r2.NewVersion != 3 {
		t.Fatalf("versions = %d, %d; want 2, 3", r1.NewVersion, r2.NewVersion)
	}
	if m.LatestVersion("obj") != 3 || m.PurgeCount("obj") != 2 {
		t.Fatalf("latest %d purges %d, want 3 and 2", m.LatestVersion("obj"), m.PurgeCount("obj"))
	}
	// After both receipts a v1 entry is two versions behind.
	late := r2.ConvergedAt + time.Second
	if got := m.KnownVersion(0, "obj", late); got != 3 {
		t.Fatalf("KnownVersion = %d, want 3", got)
	}
}

func TestIssuePurgeValidation(t *testing.T) {
	m := NewManager(Policy{}, 4)
	if _, err := m.IssuePurge("obj", nil, 0, 0, 0, 0); err == nil {
		t.Fatal("nil topology accepted")
	}
	cst := smallConst(t)
	if _, err := m.IssuePurge("obj", cst.Snapshot(0), 99, 0, 0, 0); err == nil {
		t.Fatal("out-of-range seed accepted")
	}
}

func TestCellQuantization(t *testing.T) {
	cases := []struct {
		a, b geo.Point
		same bool
	}{
		{geo.Point{LatDeg: 40.7, LonDeg: -74.0}, geo.Point{LatDeg: 41.2, LonDeg: -73.1}, true},   // NYC area
		{geo.Point{LatDeg: 40.7, LonDeg: -74.0}, geo.Point{LatDeg: 51.5, LonDeg: -0.1}, false},   // NYC vs London
		{geo.Point{LatDeg: -89.9, LonDeg: -179.9}, geo.Point{LatDeg: -89.1, LonDeg: -178}, true}, // corner cell
		{geo.Point{LatDeg: 90, LonDeg: 180}, geo.Point{LatDeg: 89.5, LonDeg: 179.5}, true},       // boundary clamps in-range
	}
	for _, c := range cases {
		ca, cb := Cell(c.a), Cell(c.b)
		if (ca == cb) != c.same {
			t.Errorf("Cell(%v)=%d vs Cell(%v)=%d, want same=%v", c.a, ca, c.b, cb, c.same)
		}
	}
	nCells := (180 / 10) * (360 / 10)
	for _, p := range []geo.Point{{LatDeg: -90, LonDeg: -180}, {LatDeg: 90, LonDeg: 180}, {LatDeg: 0, LonDeg: 0}} {
		if c := Cell(p); c < 0 || c >= nCells {
			t.Errorf("Cell(%v) = %d out of [0,%d)", p, c, nCells)
		}
	}
}

func TestFreshnessStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range FreshnessValues() {
		s := f.String()
		if s == "" || seen[s] {
			t.Errorf("freshness %d has empty/duplicate name %q", int(f), s)
		}
		seen[s] = true
	}
	if len(seen) != NumFreshness() {
		t.Errorf("%d names for %d verdicts", len(seen), NumFreshness())
	}
}
