// Package lsn models the LEO satellite network access path — the simulator's
// equivalent of Starlink's production network. A subscriber's traffic goes:
//
//	terminal --Ku-band--> satellite --(0..n ISLs)--> satellite --> ground
//	station --fiber--> PoP --> Internet
//
// The PoP (not the subscriber) is what the terrestrial Internet and CDN
// anycast "see", which is the root of the paper's observations. Subscribers
// in countries without nearby ground infrastructure ride inter-satellite
// links to a remote ground station (e.g. Mozambique to Frankfurt), adding
// tens of milliseconds and — more importantly — landing at a PoP on another
// continent.
//
// Latency composition per direction: radio up/down (speed of light over the
// slant range), laser ISL hops (speed of light, plus per-hop switching),
// ground-station-to-PoP fiber, and the MAC scheduling delay of the
// frame-based Ku-band access link. Under load, the access queue adds the
// severe bufferbloat the paper reports (>200 ms).
package lsn

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"spacecdn/internal/constellation"
	"spacecdn/internal/geo"
	"spacecdn/internal/groundseg"
	"spacecdn/internal/orbit"
	"spacecdn/internal/routing"
	"spacecdn/internal/stats"
	"spacecdn/internal/telemetry"
	"spacecdn/internal/terrestrial"
)

// ErrNoVisibility is returned when the client or ground station has no
// satellite above the elevation mask.
var ErrNoVisibility = errors.New("lsn: no satellite above elevation mask")

// Config tunes the non-geometric latency components, all in milliseconds.
type Config struct {
	// SchedFloorRTTMs is the fixed two-way MAC/PHY overhead of the access
	// link (frame alignment, grant cycles, FEC). Starlink's observed ~20 ms
	// floor over and above propagation is dominated by this.
	SchedFloorRTTMs float64
	// SchedJitterMs is the upper bound of the additional uniform two-way
	// scheduling delay (frame phase).
	SchedJitterMs float64
	// PerHopProcMs is the switching delay per ISL hop, per direction.
	PerHopProcMs float64
	// GatewayProcRTTMs covers GS modem + PoP CGNAT processing, two-way.
	GatewayProcRTTMs float64
	// QueueNoiseMeanMs is the mean of the exponential idle queueing noise.
	QueueNoiseMeanMs float64
	// BloatLoadedMinMs/MaxMs bound the uniform bufferbloat added under
	// active load (the paper observes >200 ms during downloads).
	BloatLoadedMinMs float64
	BloatLoadedMaxMs float64
}

// DefaultConfig is calibrated so that a subscriber with a local PoP sees a
// ~30-35 ms idle minimum RTT to a nearby host (paper Table 1: Spain 33 ms,
// Japan 34 ms), and loaded RTTs inflate by 100-350 ms.
func DefaultConfig() Config {
	return Config{
		SchedFloorRTTMs:  18,
		SchedJitterMs:    14,
		PerHopProcMs:     0.35,
		GatewayProcRTTMs: 4,
		QueueNoiseMeanMs: 7,
		BloatLoadedMinMs: 100,
		BloatLoadedMaxMs: 350,
	}
}

// Model computes subscriber paths over a constellation and ground segment.
// It is safe for concurrent use once wired (SetTelemetry must happen before
// concurrent callers start).
type Model struct {
	Constellation *constellation.Constellation
	Ground        *groundseg.Catalog
	cfg           Config

	// Telemetry handles; nil (the default) keeps instrumentation off the
	// hot path entirely.
	pathDurUs *telemetry.Histogram
	pathErrs  *telemetry.Counter
}

// SetTelemetry wires path-computation observability: a wall-time histogram
// of ResolvePath (which is dominated by the per-uplink-candidate Dijkstra
// sweeps) and an error counter. Pass nil to disable.
func (m *Model) SetTelemetry(t *telemetry.Telemetry) {
	if t == nil {
		m.pathDurUs = nil
		m.pathErrs = nil
		return
	}
	reg := t.Registry()
	m.pathDurUs = reg.Histogram("lsn_path_compute_us", telemetry.ComputeBucketsUs)
	m.pathErrs = reg.Counter("lsn_path_errors_total")
}

// NewModel assembles the LSN access model.
func NewModel(c *constellation.Constellation, g *groundseg.Catalog, cfg Config) *Model {
	return &Model{Constellation: c, Ground: g, cfg: cfg}
}

// Config returns the model's latency configuration.
func (m *Model) Config() Config { return m.cfg }

// Path is a resolved subscriber path at one constellation snapshot.
type Path struct {
	Client geo.Point
	PoP    groundseg.PoP
	GS     groundseg.GroundStation

	UpSat   constellation.SatID // satellite serving the terminal
	DownSat constellation.SatID // satellite over the ground station

	UplinkDelay   time.Duration // one-way terminal -> UpSat
	ISLDelay      time.Duration // one-way UpSat -> DownSat over ISLs
	ISLHops       int
	DownlinkDelay time.Duration // one-way DownSat -> GS
	GSFiberDelay  time.Duration // one-way GS -> PoP terrestrial fiber
}

// OneWayPropagation returns the total one-way propagation delay of the path,
// excluding scheduling and processing.
func (p Path) OneWayPropagation() time.Duration {
	return p.UplinkDelay + p.ISLDelay + p.DownlinkDelay + p.GSFiberDelay
}

func (p Path) String() string {
	return fmt.Sprintf("client->sat%d -(%d isl, %.1fms)-> sat%d ->%s ->pop %s (oneway %.1fms)",
		p.UpSat, p.ISLHops, float64(p.ISLDelay)/float64(time.Millisecond),
		p.DownSat, p.GS.Name, p.PoP.Name,
		float64(p.OneWayPropagation())/float64(time.Millisecond))
}

// maxUplinkCandidates bounds how many client-visible satellites are
// evaluated as serving candidates. The operator's scheduler can serve the
// terminal from any sufficiently elevated satellite; evaluating the top few
// by elevation captures that without scanning the whole sky.
const maxUplinkCandidates = 6

// ResolvePath computes the subscriber's path to their assigned PoP at a
// snapshot. It evaluates the top visible satellites at the terminal against
// every visible satellite at each ground station homed on the PoP, and picks
// the pair minimizing total one-way propagation — modelling an operator that
// schedules terminals and gateways onto the cheapest space path.
func (m *Model) ResolvePath(client geo.Point, iso2 string, snap *constellation.Snapshot) (Path, error) {
	if m.pathDurUs == nil {
		return m.resolvePath(client, iso2, snap)
	}
	start := time.Now()
	p, err := m.resolvePath(client, iso2, snap)
	m.pathDurUs.Observe(float64(time.Since(start)) / float64(time.Microsecond))
	if err != nil {
		m.pathErrs.Inc()
	}
	return p, err
}

// topology is what path resolution prices against: the healthy snapshot, or
// a fault-masked view of one. Both expose elevation-sorted visibility and
// memoized shortest-path trees; a masked topology simply lacks the dead
// satellites and their edges. Visibility goes through the shared (memoized)
// form: path resolution queries the same ground stations and recurring
// clients against one snapshot thousands of times, and re-enumerating a
// visible list that grows with the constellation made the ground stage
// degrade linearly in satellite count. The shared lists are read-only here —
// the uplink list is only re-sliced, never written.
type topology interface {
	VisibleShared(geo.Point) []constellation.VisibleSat
	PathTree(constellation.SatID) *routing.SPTree
}

func (m *Model) resolvePath(client geo.Point, iso2 string, snap *constellation.Snapshot) (Path, error) {
	pop, ok := m.Ground.AssignPoPForClient(iso2, client)
	if !ok {
		return Path{}, fmt.Errorf("lsn: no PoP assignment for country %q", iso2)
	}
	return m.resolvePathVia(snap, client, pop)
}

// resolvePathVia prices the client's path to one fixed PoP over the given
// topology — the PoP-assignment-free core of resolvePath.
func (m *Model) resolvePathVia(snap topology, client geo.Point, pop groundseg.PoP) (Path, error) {
	ups := snap.VisibleShared(client)
	if len(ups) == 0 {
		return Path{}, fmt.Errorf("%w: client at %v", ErrNoVisibility, client)
	}
	if len(ups) > maxUplinkCandidates {
		ups = ups[:maxUplinkCandidates]
	}
	stations := m.Ground.StationsForPoP(pop.Name)
	if len(stations) == 0 {
		return Path{}, fmt.Errorf("lsn: PoP %s has no ground stations", pop.Name)
	}
	// Pre-compute visibility and the fiber tail per station.
	type gsInfo struct {
		gs    groundseg.GroundStation
		vis   []constellation.VisibleSat
		fiber time.Duration
	}
	var gss []gsInfo
	for _, gs := range stations {
		vis := snap.VisibleShared(gs.Loc)
		if len(vis) == 0 {
			continue
		}
		gss = append(gss, gsInfo{
			gs:    gs,
			vis:   vis,
			fiber: terrestrial.FiberDelay(geo.HaversineKm(gs.Loc, pop.Loc) * 1.4),
		})
	}
	if len(gss) == 0 {
		return Path{}, fmt.Errorf("%w: no station of PoP %s has coverage", ErrNoVisibility, pop.Name)
	}

	best := Path{}
	bestCost := time.Duration(1<<63 - 1)
	found := false
	for _, up := range ups {
		// The snapshot memoizes one shortest-path tree per uplink satellite,
		// so repeated resolves through the same serving satellite — every
		// client in a city — price their candidates off a single Dijkstra.
		tree := snap.PathTree(up.ID)
		if tree == nil {
			continue
		}
		for _, gi := range gss {
			for _, down := range gi.vis {
				islMs := tree.Dist(routing.NodeID(down.ID))
				if math.IsInf(islMs, 1) {
					continue
				}
				p := Path{
					Client:        client,
					PoP:           pop,
					GS:            gi.gs,
					UpSat:         up.ID,
					DownSat:       down.ID,
					UplinkDelay:   orbit.PropagationDelay(up.SlantKm),
					ISLDelay:      time.Duration(islMs * float64(time.Millisecond)),
					DownlinkDelay: orbit.PropagationDelay(down.SlantKm),
					GSFiberDelay:  gi.fiber,
				}
				if cost := p.OneWayPropagation(); cost < bestCost {
					bestCost = cost
					best = p
					found = true
				}
			}
		}
	}
	if !found {
		return Path{}, fmt.Errorf("%w: no ISL route to PoP %s", ErrNoVisibility, pop.Name)
	}
	if best.UpSat != best.DownSat {
		if hops, ok := snap.PathTree(best.UpSat).HopsTo(routing.NodeID(best.DownSat)); ok {
			best.ISLHops = hops
		}
	}
	return best, nil
}

// ResolvePathDegraded computes the subscriber path over a fault-masked
// constellation view, failing over blacked-out PoPs: the healthy country
// assignment is tried first; when it is dark or unreachable over the
// surviving topology, the remaining live PoPs are tried nearest-first from
// the client until one resolves. failover reports whether the served PoP
// differs from the healthy assignment. deadPoP marks blacked-out PoPs by
// name (nil means all alive). An error means no PoP is reachable at all —
// no ground path exists in this fault state. Telemetry observes it like
// ResolvePath.
func (m *Model) ResolvePathDegraded(client geo.Point, iso2 string, view *constellation.MaskedView, deadPoP func(string) bool) (Path, bool, error) {
	if m.pathDurUs == nil {
		return m.resolvePathDegraded(client, iso2, view, deadPoP)
	}
	start := time.Now()
	p, failover, err := m.resolvePathDegraded(client, iso2, view, deadPoP)
	m.pathDurUs.Observe(float64(time.Since(start)) / float64(time.Microsecond))
	if err != nil {
		m.pathErrs.Inc()
	}
	return p, failover, err
}

func (m *Model) resolvePathDegraded(client geo.Point, iso2 string, view *constellation.MaskedView, deadPoP func(string) bool) (Path, bool, error) {
	assigned, ok := m.Ground.AssignPoPForClient(iso2, client)
	if !ok {
		return Path{}, false, fmt.Errorf("lsn: no PoP assignment for country %q", iso2)
	}
	dead := func(name string) bool { return deadPoP != nil && deadPoP(name) }
	var lastErr error
	if !dead(assigned.Name) {
		p, err := m.resolvePathVia(view, client, assigned)
		if err == nil {
			return p, false, nil
		}
		lastErr = err
	}
	// Failover sweep: every other live PoP, nearest to the client first
	// (ties broken by name for determinism).
	pops := m.Ground.PoPs()
	sort.Slice(pops, func(i, j int) bool {
		di := geo.HaversineKm(client, pops[i].Loc)
		dj := geo.HaversineKm(client, pops[j].Loc)
		if di != dj {
			return di < dj
		}
		return pops[i].Name < pops[j].Name
	})
	for _, pop := range pops {
		if pop.Name == assigned.Name || dead(pop.Name) {
			continue
		}
		p, err := m.resolvePathVia(view, client, pop)
		if err == nil {
			return p, true, nil
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("lsn: every PoP is blacked out")
	}
	return Path{}, true, fmt.Errorf("lsn: degraded: no reachable PoP for country %q: %w", iso2, lastErr)
}

// MinRTTToPoP returns the floor round-trip time from the client to its PoP:
// two-way propagation plus the fixed scheduling and processing overheads.
func (m *Model) MinRTTToPoP(p Path) time.Duration {
	rtt := 2 * p.OneWayPropagation()
	rtt += time.Duration((m.cfg.SchedFloorRTTMs + m.cfg.GatewayProcRTTMs) * float64(time.Millisecond))
	rtt += time.Duration(2 * float64(p.ISLHops) * m.cfg.PerHopProcMs * float64(time.Millisecond))
	return rtt
}

// SampleRTTToPoP draws one idle RTT measurement to the PoP: the floor plus
// frame-phase jitter and light queueing.
func (m *Model) SampleRTTToPoP(p Path, rng *stats.Rand) time.Duration {
	rtt := m.MinRTTToPoP(p)
	jitter := rng.Uniform(0, m.cfg.SchedJitterMs) + rng.Exponential(m.cfg.QueueNoiseMeanMs)
	return rtt + time.Duration(jitter*float64(time.Millisecond))
}

// LoadedRTTToPoP draws an RTT under concurrent load: idle sample plus the
// access-link bufferbloat.
func (m *Model) LoadedRTTToPoP(p Path, rng *stats.Rand) time.Duration {
	bloat := rng.Uniform(m.cfg.BloatLoadedMinMs, m.cfg.BloatLoadedMaxMs)
	return m.SampleRTTToPoP(p, rng) + time.Duration(bloat*float64(time.Millisecond))
}

// RTTToHost composes the satellite path with the terrestrial leg from the
// PoP to a host (e.g. a CDN edge): sample = satellite RTT + fiber RTT from
// PoP to host. The PoP-side leg has no last-mile component — it leaves from
// a datacenter — so only routed propagation and small transit noise apply.
func (m *Model) RTTToHost(p Path, host geo.Point, hostRegion geo.Region, t *terrestrial.Model, rng *stats.Rand) time.Duration {
	popRegion := regionOf(p.PoP.Country)
	fiber := 2 * terrestrial.FiberDelay(routedKm(p.PoP.Loc, host, popRegion, hostRegion, t))
	transitNoise := time.Duration(rng.Exponential(2) * float64(time.Millisecond))
	return m.SampleRTTToPoP(p, rng) + fiber + transitNoise
}

// MinRTTToHost is the floor composition of MinRTTToPoP and the PoP-to-host
// fiber leg.
func (m *Model) MinRTTToHost(p Path, host geo.Point, hostRegion geo.Region, t *terrestrial.Model) time.Duration {
	popRegion := regionOf(p.PoP.Country)
	fiber := 2 * terrestrial.FiberDelay(routedKm(p.PoP.Loc, host, popRegion, hostRegion, t))
	return m.MinRTTToPoP(p) + fiber
}

// DownlinkMbps samples the subscriber's access throughput. Starlink consumer
// service delivers tens to ~200 Mbps with high variance.
func (m *Model) DownlinkMbps(rng *stats.Rand) float64 {
	return rng.PositiveNormal(110, 45, 15)
}

func regionOf(iso2 string) geo.Region {
	if c, ok := geo.CountryByISO(iso2); ok {
		return c.Region
	}
	return geo.RegionUnknown
}

// routedKm mirrors the terrestrial model's route-stretch policy for the
// PoP-to-host leg.
func routedKm(a, b geo.Point, ra, rb geo.Region, t *terrestrial.Model) float64 {
	d := geo.HaversineKm(a, b)
	stretch := terrestrial.ProfileFor(ra).PathStretch
	if ra != rb {
		stretch = t.InterRegionStretch
	} else if s := terrestrial.ProfileFor(rb).PathStretch; s > stretch {
		stretch = s
	}
	return d * stretch
}
