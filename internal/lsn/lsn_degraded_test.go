package lsn

import (
	"strings"
	"testing"

	"spacecdn/internal/routing"
)

func TestResolvePathDegradedHealthyMatchesResolvePath(t *testing.T) {
	m := testModel()
	snap := testConst.Snapshot(0)
	madrid := mustCity(t, "Madrid, ES")
	want, err := m.ResolvePath(madrid.Loc, "ES", snap)
	if err != nil {
		t.Fatal(err)
	}
	view := snap.Masked(0, nil, nil)
	got, failover, err := m.ResolvePathDegraded(madrid.Loc, "ES", view, nil)
	if err != nil {
		t.Fatal(err)
	}
	if failover {
		t.Fatal("healthy view must not fail over")
	}
	if got != want {
		t.Fatalf("degraded path over healthy view differs:\n got %+v\nwant %+v", got, want)
	}
}

func TestResolvePathDegradedDeadPoPFailsOver(t *testing.T) {
	m := testModel()
	snap := testConst.Snapshot(0)
	madrid := mustCity(t, "Madrid, ES")
	view := snap.Masked(0, nil, nil)
	dead := func(name string) bool { return name == "mad" }
	p, failover, err := m.ResolvePathDegraded(madrid.Loc, "ES", view, dead)
	if err != nil {
		t.Fatal(err)
	}
	if !failover {
		t.Fatal("dead assigned PoP must report a failover")
	}
	if p.PoP.Name == "mad" {
		t.Fatal("served from the blacked-out PoP")
	}
	// Nearest-first sweep: the replacement should be European, not another
	// continent.
	if p.PoP.Country != "ES" && !strings.Contains("DE GB FR IT", p.PoP.Country) {
		t.Logf("failover PoP = %s (%s)", p.PoP.Name, p.PoP.Country)
	}
	healthy, err := m.ResolvePath(madrid.Loc, "ES", snap)
	if err != nil {
		t.Fatal(err)
	}
	if p.OneWayPropagation() < healthy.OneWayPropagation() {
		t.Fatal("failover path cannot beat the healthy assignment")
	}
}

func TestResolvePathDegradedAllPoPsDeadErrors(t *testing.T) {
	m := testModel()
	snap := testConst.Snapshot(0)
	madrid := mustCity(t, "Madrid, ES")
	view := snap.Masked(0, nil, nil)
	dead := func(string) bool { return true }
	_, failover, err := m.ResolvePathDegraded(madrid.Loc, "ES", view, dead)
	if err == nil {
		t.Fatal("all PoPs dead must error")
	}
	if !failover {
		t.Fatal("a failed sweep is still a failover")
	}
}

func TestResolvePathDegradedRoutesAroundDeadUplink(t *testing.T) {
	m := testModel()
	snap := testConst.Snapshot(0)
	madrid := mustCity(t, "Madrid, ES")
	healthy, err := m.ResolvePath(madrid.Loc, "ES", snap)
	if err != nil {
		t.Fatal(err)
	}
	deadSats := routing.NewBitset(testConst.Total())
	deadSats.Set(int(healthy.UpSat))
	view := snap.Masked(1, deadSats, nil)
	p, failover, err := m.ResolvePathDegraded(madrid.Loc, "ES", view, nil)
	if err != nil {
		t.Fatal(err)
	}
	if failover {
		t.Fatal("a dead satellite is not a PoP failover")
	}
	if p.UpSat == healthy.UpSat || p.DownSat == healthy.UpSat {
		t.Fatal("path still uses the dead satellite")
	}
}
