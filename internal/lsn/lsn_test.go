package lsn

import (
	"testing"
	"time"

	"spacecdn/internal/constellation"
	"spacecdn/internal/geo"
	"spacecdn/internal/groundseg"
	"spacecdn/internal/stats"
	"spacecdn/internal/terrestrial"
)

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

var (
	testConst  = constellation.MustNew(constellation.DefaultConfig())
	testGround = groundseg.NewCatalog()
)

func testModel() *Model {
	return NewModel(testConst, testGround, DefaultConfig())
}

func mustCity(t *testing.T, name string) geo.City {
	t.Helper()
	c, ok := geo.CityByName(name)
	if !ok {
		t.Fatalf("city %q not found", name)
	}
	return c
}

func TestResolvePathLocalPoP(t *testing.T) {
	m := testModel()
	snap := testConst.Snapshot(0)
	madrid := mustCity(t, "Madrid, ES")
	p, err := m.ResolvePath(madrid.Loc, "ES", snap)
	if err != nil {
		t.Fatal(err)
	}
	if p.PoP.Name != "mad" {
		t.Errorf("PoP = %s, want mad", p.PoP.Name)
	}
	// Local PoP: few or no ISL hops, one-way propagation under ~12 ms.
	if p.ISLHops > 4 {
		t.Errorf("ISL hops = %d for a local PoP, want <= 4", p.ISLHops)
	}
	if ow := ms(p.OneWayPropagation()); ow > 15 {
		t.Errorf("one-way propagation %v ms too high for local PoP", ow)
	}
	if p.UplinkDelay <= 0 || p.DownlinkDelay <= 0 {
		t.Error("radio legs must be positive")
	}
	if p.String() == "" {
		t.Error("empty String()")
	}
}

func TestResolvePathRemotePoP(t *testing.T) {
	m := testModel()
	snap := testConst.Snapshot(0)
	maputo := mustCity(t, "Maputo, MZ")
	p, err := m.ResolvePath(maputo.Loc, "MZ", snap)
	if err != nil {
		t.Fatal(err)
	}
	if p.PoP.Name != "fra" {
		t.Fatalf("PoP = %s, want fra", p.PoP.Name)
	}
	// ~8,800 km over the ISL grid: many hops, tens of ms one way.
	if p.ISLHops < 5 {
		t.Errorf("ISL hops = %d, want >= 5 for an intercontinental path", p.ISLHops)
	}
	ow := ms(p.OneWayPropagation())
	if ow < 30 || ow > 110 {
		t.Errorf("one-way propagation = %v ms, want ~40-90", ow)
	}
}

func TestMinRTTMatchesTable1(t *testing.T) {
	// Paper Table 1, Starlink column (median minRTT in ms). The model should
	// land within a generous band — the shape (which countries are bad and
	// by how much) is the target, not the third digit.
	m := testModel()
	cases := []struct {
		city   string
		iso    string
		paper  float64
		tolLow float64 // fraction below
		tolHi  float64 // fraction above
	}{
		{"Madrid, ES", "ES", 33, 0.35, 0.35},
		{"Tokyo, JP", "JP", 34, 0.35, 0.35},
		{"Maputo, MZ", "MZ", 138.7, 0.30, 0.45},
		{"Nairobi, KE", "KE", 110.9, 0.30, 0.45},
		{"Lusaka, ZM", "ZM", 143.5, 0.30, 0.45},
		{"Vilnius, LT", "LT", 40, 0.35, 0.45},
		{"Guatemala City, GT", "GT", 44.2, 0.35, 0.45},
		{"Port-au-Prince, HT", "HT", 50, 0.35, 0.45},
	}
	// minRTT over a few snapshot times (the paper's is a min over weeks).
	snaps := []*constellation.Snapshot{
		testConst.Snapshot(0),
		testConst.Snapshot(11 * time.Minute),
		testConst.Snapshot(29 * time.Minute),
		testConst.Snapshot(53 * time.Minute),
	}
	for _, tc := range cases {
		t.Run(tc.iso, func(t *testing.T) {
			c := mustCity(t, tc.city)
			best := time.Duration(1<<63 - 1)
			for _, snap := range snaps {
				p, err := m.ResolvePath(c.Loc, tc.iso, snap)
				if err != nil {
					t.Fatal(err)
				}
				// RTT to a CDN colocated with the PoP (the "optimal" CDN
				// in the paper's methodology).
				if rtt := m.MinRTTToPoP(p); rtt < best {
					best = rtt
				}
			}
			got := ms(best)
			if got < tc.paper*(1-tc.tolLow) || got > tc.paper*(1+tc.tolHi) {
				t.Errorf("minRTT = %.1f ms, paper %.1f ms", got, tc.paper)
			}
		})
	}
}

func TestSamplesAboveFloor(t *testing.T) {
	m := testModel()
	snap := testConst.Snapshot(0)
	rng := stats.NewRand(4)
	c := mustCity(t, "London, GB")
	p, err := m.ResolvePath(c.Loc, "GB", snap)
	if err != nil {
		t.Fatal(err)
	}
	floor := m.MinRTTToPoP(p)
	for i := 0; i < 2000; i++ {
		if s := m.SampleRTTToPoP(p, rng); s < floor {
			t.Fatalf("sample %v below floor %v", s, floor)
		}
	}
}

func TestLoadedBufferbloat(t *testing.T) {
	// The paper: >200 ms RTT inflation during active downloads.
	m := testModel()
	snap := testConst.Snapshot(0)
	rng := stats.NewRand(5)
	c := mustCity(t, "London, GB")
	p, err := m.ResolvePath(c.Loc, "GB", snap)
	if err != nil {
		t.Fatal(err)
	}
	var idle, loaded []float64
	for i := 0; i < 3000; i++ {
		idle = append(idle, ms(m.SampleRTTToPoP(p, rng)))
		loaded = append(loaded, ms(m.LoadedRTTToPoP(p, rng)))
	}
	inflation := stats.Median(loaded) - stats.Median(idle)
	if inflation < 100 || inflation > 400 {
		t.Errorf("median bufferbloat inflation = %v ms, want 100-400", inflation)
	}
	if stats.Quantile(loaded, 0.9) < 200 {
		t.Errorf("p90 loaded RTT = %v ms, paper observes >200", stats.Quantile(loaded, 0.9))
	}
}

func TestRTTToHostCompose(t *testing.T) {
	m := testModel()
	tm := terrestrial.NewModel()
	snap := testConst.Snapshot(0)
	rng := stats.NewRand(6)
	maputo := mustCity(t, "Maputo, MZ")
	p, err := m.ResolvePath(maputo.Loc, "MZ", snap)
	if err != nil {
		t.Fatal(err)
	}
	fra := mustCity(t, "Frankfurt, DE")
	cpt := mustCity(t, "Cape Town, ZA")

	// Frankfurt CDN (next to the PoP) must beat Cape Town CDN (a long
	// terrestrial leg from Frankfurt) — the paper's Fig. 3a inversion.
	fraRTT := ms(m.MinRTTToHost(p, fra.Loc, fra.Region, tm))
	cptRTT := ms(m.MinRTTToHost(p, cpt.Loc, cpt.Region, tm))
	if fraRTT >= cptRTT {
		t.Errorf("Frankfurt CDN (%v ms) should beat Cape Town CDN (%v ms) over Starlink", fraRTT, cptRTT)
	}
	// Paper: Frankfurt ~160 ms, African CDNs often exceeding 250 ms.
	if fraRTT < 90 || fraRTT > 210 {
		t.Errorf("Maputo->fra CDN = %v ms, paper ~160", fraRTT)
	}
	if cptRTT < 180 {
		t.Errorf("Maputo->Cape Town CDN over Starlink = %v ms, paper >250", cptRTT)
	}
	// Samples include the floor.
	for i := 0; i < 500; i++ {
		if got := m.RTTToHost(p, fra.Loc, fra.Region, tm, rng); ms(got) < fraRTT {
			t.Fatalf("sampled host RTT %v below floor %v", ms(got), fraRTT)
		}
	}
}

func TestUnknownCountry(t *testing.T) {
	m := testModel()
	snap := testConst.Snapshot(0)
	if _, err := m.ResolvePath(geo.NewPoint(0, 0), "ZZ", snap); err == nil {
		t.Error("unknown country should fail")
	}
}

func TestNoVisibilityAtPole(t *testing.T) {
	m := testModel()
	snap := testConst.Snapshot(0)
	_, err := m.ResolvePath(geo.NewPoint(89.5, 0), "NO", snap)
	if err == nil {
		t.Error("pole should have no Shell 1 coverage at 25 deg mask")
	}
}

func TestDownlinkThroughput(t *testing.T) {
	m := testModel()
	rng := stats.NewRand(7)
	var xs []float64
	for i := 0; i < 2000; i++ {
		v := m.DownlinkMbps(rng)
		if v < 15 {
			t.Fatalf("throughput %v below floor", v)
		}
		xs = append(xs, v)
	}
	med := stats.Median(xs)
	if med < 60 || med > 180 {
		t.Errorf("median downlink = %v Mbps, want ~110", med)
	}
}

func TestPathDeterminism(t *testing.T) {
	m := testModel()
	snap := testConst.Snapshot(17 * time.Minute)
	c := mustCity(t, "Nairobi, KE")
	p1, err1 := m.ResolvePath(c.Loc, "KE", snap)
	p2, err2 := m.ResolvePath(c.Loc, "KE", snap)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if p1 != p2 {
		t.Errorf("path resolution not deterministic: %+v vs %+v", p1, p2)
	}
}
