package lsn

import (
	"testing"

	"spacecdn/internal/telemetry"
)

func TestResolvePathTelemetry(t *testing.T) {
	m := testModel()
	tel := telemetry.New(0)
	m.SetTelemetry(tel)
	snap := testConst.Snapshot(0)
	madrid := mustCity(t, "Madrid, ES")

	if _, err := m.ResolvePath(madrid.Loc, "ES", snap); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ResolvePath(madrid.Loc, "??", snap); err == nil {
		t.Fatal("unknown country must fail")
	}

	snapshot := tel.Snapshot()
	hv, ok := snapshot.Histogram("lsn_path_compute_us")
	if !ok || hv.Count != 2 {
		t.Fatalf("lsn_path_compute_us = %+v, want 2 observations", hv)
	}
	if hv.Sum <= 0 {
		t.Error("path compute wall time must be positive")
	}
	cv, ok := snapshot.Counter("lsn_path_errors_total", nil)
	if !ok || cv.Value != 1 {
		t.Fatalf("lsn_path_errors_total = %+v, want 1", cv)
	}

	// Detaching restores the uninstrumented path.
	m.SetTelemetry(nil)
	if _, err := m.ResolvePath(madrid.Loc, "ES", snap); err != nil {
		t.Fatal(err)
	}
	if hv2, _ := tel.Snapshot().Histogram("lsn_path_compute_us"); hv2.Count != 2 {
		t.Errorf("detached model still observed: %+v", hv2)
	}
}
