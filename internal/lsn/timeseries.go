package lsn

import (
	"fmt"
	"time"

	"spacecdn/internal/constellation"
	"spacecdn/internal/geo"
	"spacecdn/internal/stats"
)

// ReconfigInterval is the scheduling granularity at which the operator
// re-plans terminal-satellite assignments (Starlink reconfigures paths every
// 15 seconds; the paper's §2 describes the constantly changing connectivity
// this produces).
const ReconfigInterval = 15 * time.Second

// RTTSample is one point of a subscriber's latency time series.
type RTTSample struct {
	At  time.Duration
	RTT time.Duration
	// UpSat is the serving satellite during this interval; changes mark
	// handovers.
	UpSat int
	// Handover is true when the serving satellite changed at this sample.
	Handover bool
}

// RTTTimeSeries samples a subscriber's RTT to their PoP every
// ReconfigInterval across [from, to): each interval re-resolves the path
// (satellites have moved) and draws one measured RTT. The series shows the
// sawtooth the paper's background describes — latency drifts as the serving
// satellite moves, then steps at handover. The sampling advances a pooled
// sweep cursor, so each interval costs the incremental world update rather
// than a rebuild.
func (m *Model) RTTTimeSeries(client geo.Point, iso2 string, from, to time.Duration, rng *stats.Rand) ([]RTTSample, error) {
	cur := m.Constellation.Sweep(from, ReconfigInterval)
	defer cur.Close()
	return m.rttTimeSeriesOver(cur, client, iso2, to, rng)
}

// RTTTimeSeriesScan is the naive reference form of RTTTimeSeries: a fresh
// snapshot per interval. Kept for the sweep-equivalence proof; the two must
// produce byte-identical series.
func (m *Model) RTTTimeSeriesScan(client geo.Point, iso2 string, from, to time.Duration, rng *stats.Rand) ([]RTTSample, error) {
	cur := m.Constellation.SweepScan(from, ReconfigInterval)
	return m.rttTimeSeriesOver(cur, client, iso2, to, rng)
}

func (m *Model) rttTimeSeriesOver(cur constellation.Cursor, client geo.Point, iso2 string, to time.Duration, rng *stats.Rand) ([]RTTSample, error) {
	if to <= cur.Time() {
		return nil, fmt.Errorf("lsn: empty time range")
	}
	var out []RTTSample
	prevSat := -1
	for snap := cur.At(); snap.Time() < to; snap = cur.Advance() {
		t := snap.Time()
		path, err := m.ResolvePath(client, iso2, snap)
		if err != nil {
			// Coverage gap: skip the interval, keep the series going.
			continue
		}
		s := RTTSample{
			At:       t,
			RTT:      m.SampleRTTToPoP(path, rng),
			UpSat:    int(path.UpSat),
			Handover: prevSat >= 0 && int(path.UpSat) != prevSat,
		}
		prevSat = int(path.UpSat)
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lsn: no coverage for %v during the window", client)
	}
	return out, nil
}

// HandoverRate returns handovers per minute over a series.
func HandoverRate(series []RTTSample) float64 {
	if len(series) < 2 {
		return 0
	}
	handovers := 0
	for _, s := range series {
		if s.Handover {
			handovers++
		}
	}
	span := series[len(series)-1].At - series[0].At
	if span <= 0 {
		return 0
	}
	return float64(handovers) / span.Minutes()
}
