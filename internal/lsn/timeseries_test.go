package lsn

import (
	"testing"
	"time"

	"spacecdn/internal/geo"
	"spacecdn/internal/stats"
)

func TestRTTTimeSeries(t *testing.T) {
	m := testModel()
	rng := stats.NewRand(9)
	c := mustCity(t, "Madrid, ES")
	series, err := m.RTTTimeSeries(c.Loc, "ES", 0, 10*time.Minute, rng)
	if err != nil {
		t.Fatal(err)
	}
	// 10 minutes at 15 s = 40 intervals; Madrid has continuous coverage.
	if len(series) != 40 {
		t.Fatalf("samples = %d, want 40", len(series))
	}
	for i, s := range series {
		if s.RTT <= 0 {
			t.Fatalf("sample %d has non-positive RTT", i)
		}
		if i > 0 && s.At <= series[i-1].At {
			t.Fatal("timestamps not increasing")
		}
		if i == 0 && s.Handover {
			t.Error("first sample cannot be a handover")
		}
	}
	// Over 10 minutes the serving satellite must change at least once
	// (satellites leave view within 5-10 minutes per the paper).
	sats := map[int]bool{}
	for _, s := range series {
		sats[s.UpSat] = true
	}
	if len(sats) < 2 {
		t.Errorf("serving satellite never changed over 10 minutes")
	}
	// Handover flags agree with satellite changes.
	for i := 1; i < len(series); i++ {
		want := series[i].UpSat != series[i-1].UpSat
		if series[i].Handover != want {
			t.Fatalf("sample %d handover flag %v, want %v", i, series[i].Handover, want)
		}
	}
}

func TestHandoverRate(t *testing.T) {
	m := testModel()
	rng := stats.NewRand(10)
	c := mustCity(t, "London, GB")
	series, err := m.RTTTimeSeries(c.Loc, "GB", 0, 20*time.Minute, rng)
	if err != nil {
		t.Fatal(err)
	}
	rate := HandoverRate(series)
	// Serving windows of 1-10 minutes imply roughly 0.1-1.5 handovers per
	// minute.
	if rate <= 0 || rate > 4 {
		t.Errorf("handover rate = %v per minute", rate)
	}
	if HandoverRate(nil) != 0 || HandoverRate(series[:1]) != 0 {
		t.Error("degenerate series should have zero rate")
	}
}

func TestRTTTimeSeriesDeterministic(t *testing.T) {
	m := testModel()
	c := mustCity(t, "Madrid, ES")
	a, err := m.RTTTimeSeries(c.Loc, "ES", 0, 10*time.Minute, stats.NewRand(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.RTTTimeSeries(c.Loc, "ES", 0, 10*time.Minute, stats.NewRand(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs with the same seed: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestRTTTimeSeriesSweepMatchesScan proves the cursor-backed series
// byte-identical to the fresh-snapshot reference — positions, resolution,
// and RTT draws all agree sample for sample.
func TestRTTTimeSeriesSweepMatchesScan(t *testing.T) {
	m := testModel()
	for _, name := range []string{"Madrid, ES", "London, GB"} {
		c := mustCity(t, name)
		iso2 := c.Country
		got, err := m.RTTTimeSeries(c.Loc, iso2, 2*time.Minute, 22*time.Minute, stats.NewRand(5))
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.RTTTimeSeriesScan(c.Loc, iso2, 2*time.Minute, 22*time.Minute, stats.NewRand(5))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d samples vs %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s sample %d: sweep %+v != scan %+v", name, i, got[i], want[i])
			}
		}
	}
}

// TestRTTTimeSeriesCoverageGapSkip exercises the gap path: a client near the
// shell's coverage edge loses service for some intervals, which are skipped
// rather than aborting the series or emitting zero samples.
func TestRTTTimeSeriesCoverageGapSkip(t *testing.T) {
	m := testModel()
	// Scan northwards until a latitude shows intermittent coverage over the
	// window; the 53-degree shell guarantees one exists below the hard cutoff.
	for lat := 54.0; lat < 62.0; lat += 0.5 {
		loc := geo.NewPoint(lat, -1.0)
		series, err := m.RTTTimeSeries(loc, "GB", 0, 30*time.Minute, stats.NewRand(3))
		if err != nil {
			continue // fully uncovered already; done
		}
		if len(series) == 120 {
			continue // fully covered at this latitude; go higher
		}
		// Partial coverage: skipped intervals leave holes, never zero-RTT
		// placeholders, and timestamps stay strictly increasing.
		for i, s := range series {
			if s.RTT <= 0 {
				t.Fatalf("gap produced a non-positive RTT at sample %d", i)
			}
			if i > 0 && s.At <= series[i-1].At {
				t.Fatal("timestamps not strictly increasing across a gap")
			}
		}
		return
	}
	t.Fatal("no latitude with intermittent coverage found below 62N")
}

func TestRTTTimeSeriesErrors(t *testing.T) {
	m := testModel()
	rng := stats.NewRand(11)
	c := mustCity(t, "Madrid, ES")
	if _, err := m.RTTTimeSeries(c.Loc, "ES", time.Minute, time.Minute, rng); err == nil {
		t.Error("empty range accepted")
	}
	// No coverage at the pole.
	if _, err := m.RTTTimeSeries(geo.NewPoint(89.5, 0), "NO", 0, 5*time.Minute, rng); err == nil {
		t.Error("uncovered client accepted")
	}
}
