package measure

import (
	"sort"

	"spacecdn/internal/geo"
	"spacecdn/internal/stats"
)

// This file implements the paper's aggregation pipeline (§3.1): "Since
// Cloudflare uses anycast ... clients from the same city often target
// several CDN servers ... We use the median of the idle latencies over both
// Starlink and terrestrial from a city to determine the optimal CDN server
// for the network at that location."

// CityOptimal is a city's optimal-CDN summary for one network.
type CityOptimal struct {
	Country  string
	City     string
	Network  Network
	CDNCity  string  // the optimal (lowest median idle RTT) CDN target
	MedianMs float64 // median idle RTT to the optimal CDN
	MinMs    float64 // minimum idle RTT observed to the optimal CDN
	DistKm   float64 // geodesic to the optimal CDN
	N        int     // samples behind the choice
}

// OptimalPerCity groups speed tests by (city, network) and picks the optimal
// CDN target per the paper's methodology.
func OptimalPerCity(tests []SpeedTest) []CityOptimal {
	type key struct {
		city    string
		country string
		network Network
	}
	type perCDN struct {
		samples []float64
		dist    float64
	}
	groups := map[key]map[string]*perCDN{}
	for _, t := range tests {
		k := key{city: t.City, country: t.Country, network: t.Network}
		if groups[k] == nil {
			groups[k] = map[string]*perCDN{}
		}
		pc := groups[k][t.CDNCity]
		if pc == nil {
			pc = &perCDN{dist: t.DistKm}
			groups[k][t.CDNCity] = pc
		}
		pc.samples = append(pc.samples, t.IdleRTTMs)
	}
	var out []CityOptimal
	for k, cdns := range groups {
		best := CityOptimal{Country: k.country, City: k.city, Network: k.network}
		first := true
		for cdnCity, pc := range cdns {
			med := stats.Median(pc.samples)
			if first || med < best.MedianMs {
				first = false
				best.CDNCity = cdnCity
				best.MedianMs = med
				best.MinMs = stats.Min(pc.samples)
				best.DistKm = pc.dist
				best.N = len(pc.samples)
			}
		}
		out = append(out, best)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Country != out[j].Country {
			return out[i].Country < out[j].Country
		}
		if out[i].City != out[j].City {
			return out[i].City < out[j].City
		}
		return out[i].Network < out[j].Network
	})
	return out
}

// CountryStat aggregates a country's optimal-CDN experience on one network.
type CountryStat struct {
	Country string
	Network Network
	// MedianMs is the median (across cities) of per-city optimal medians.
	MedianMs float64
	// MinRTTMs is the median (across cities) of per-city minimum RTTs —
	// Table 1's "minRTT".
	MinRTTMs float64
	// AvgDistKm is the mean geodesic to the optimal CDN — Table 1's
	// "Distance".
	AvgDistKm float64
	Cities    int
}

// ByCountry rolls city optima up to countries.
func ByCountry(cities []CityOptimal) map[string]map[Network]CountryStat {
	type key struct {
		c string
		n Network
	}
	meds := map[key][]float64{}
	mins := map[key][]float64{}
	dists := map[key][]float64{}
	for _, c := range cities {
		k := key{c: c.Country, n: c.Network}
		meds[k] = append(meds[k], c.MedianMs)
		mins[k] = append(mins[k], c.MinMs)
		dists[k] = append(dists[k], c.DistKm)
	}
	out := map[string]map[Network]CountryStat{}
	for k, m := range meds {
		if out[k.c] == nil {
			out[k.c] = map[Network]CountryStat{}
		}
		out[k.c][k.n] = CountryStat{
			Country:   k.c,
			Network:   k.n,
			MedianMs:  stats.Median(m),
			MinRTTMs:  stats.Median(mins[k]),
			AvgDistKm: stats.Mean(dists[k]),
			Cities:    len(m),
		}
	}
	return out
}

// DeltaByCountry computes Figure 2's series: median RTT difference
// (Starlink - terrestrial) per country where both networks have data,
// sorted by country code.
func DeltaByCountry(tests []SpeedTest) ([]string, []float64) {
	byCountry := ByCountry(OptimalPerCity(tests))
	sl := map[string]float64{}
	te := map[string]float64{}
	for iso, nets := range byCountry {
		if s, ok := nets[NetworkStarlink]; ok {
			sl[iso] = s.MedianMs
		}
		if t, ok := nets[NetworkTerrestrial]; ok {
			te[iso] = t.MedianMs
		}
	}
	return stats.DeltaSeries(sl, te)
}

// CityCDNLatency is the per-CDN-site median latency from one city — the
// paper's Figure 3 (Maputo case study) series.
type CityCDNLatency struct {
	CDNCity  string
	CDNLoc   geo.Point
	MedianMs float64
	N        int
}

// PerCDNFromCity returns, for one city and network, the median idle latency
// to every CDN site observed, sorted by latency.
func PerCDNFromCity(tests []SpeedTest, city string, network Network) []CityCDNLatency {
	agg := map[string]*CityCDNLatency{}
	samples := map[string][]float64{}
	for _, t := range tests {
		if t.City != city || t.Network != network {
			continue
		}
		if agg[t.CDNCity] == nil {
			agg[t.CDNCity] = &CityCDNLatency{CDNCity: t.CDNCity, CDNLoc: t.CDNLoc}
		}
		samples[t.CDNCity] = append(samples[t.CDNCity], t.IdleRTTMs)
	}
	var out []CityCDNLatency
	for cdnCity, a := range agg {
		a.MedianMs = stats.Median(samples[cdnCity])
		a.N = len(samples[cdnCity])
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].MedianMs < out[j].MedianMs })
	return out
}

// IdleCDF builds the latency CDF over all tests of one network — Figure 7's
// Starlink/terrestrial reference curves.
func IdleCDF(tests []SpeedTest, network Network) *stats.CDF {
	var xs []float64
	for _, t := range tests {
		if t.Network == network {
			xs = append(xs, t.IdleRTTMs)
		}
	}
	return stats.NewCDF(xs)
}
