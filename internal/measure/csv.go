package measure

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// CSV codec for the synthetic AIM dataset. The schema mirrors the fields the
// paper consumes from Cloudflare AIM; cmd/aimgen writes it and downstream
// analysis can round-trip it.

// csvHeader is the canonical column order.
var csvHeader = []string{
	"country", "city", "network", "cdn_city", "cdn_lat", "cdn_lon",
	"distance_km", "idle_rtt_ms", "loaded_rtt_ms", "down_mbps", "at_seconds",
}

// WriteCSV writes speed-test records with a header row.
func WriteCSV(w io.Writer, records []SpeedTest) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
	for _, r := range records {
		row := []string{
			r.Country, r.City, string(r.Network), r.CDNCity,
			f(r.CDNLoc.LatDeg), f(r.CDNLoc.LonDeg),
			f(r.DistKm), f(r.IdleRTTMs), f(r.LoadedMs), f(r.DownMbps),
			f(r.At.Seconds()),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses records written by WriteCSV.
func ReadCSV(r io.Reader) ([]SpeedTest, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("measure: reading CSV header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("measure: CSV has %d columns, want %d", len(header), len(csvHeader))
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return nil, fmt.Errorf("measure: CSV column %d is %q, want %q", i, header[i], h)
		}
	}
	var out []SpeedTest
	line := 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("measure: reading CSV: %w", err)
		}
		line++
		rec, err := parseCSVRow(row)
		if err != nil {
			return nil, fmt.Errorf("measure: CSV line %d: %w", line, err)
		}
		out = append(out, rec)
	}
}

func parseCSVRow(row []string) (SpeedTest, error) {
	var rec SpeedTest
	fl := func(s string) (float64, error) { return strconv.ParseFloat(s, 64) }

	rec.Country = row[0]
	rec.City = row[1]
	switch Network(row[2]) {
	case NetworkStarlink, NetworkTerrestrial:
		rec.Network = Network(row[2])
	default:
		return rec, fmt.Errorf("unknown network %q", row[2])
	}
	rec.CDNCity = row[3]
	lat, err := fl(row[4])
	if err != nil {
		return rec, err
	}
	lon, err := fl(row[5])
	if err != nil {
		return rec, err
	}
	rec.CDNLoc.LatDeg, rec.CDNLoc.LonDeg = lat, lon
	if rec.DistKm, err = fl(row[6]); err != nil {
		return rec, err
	}
	if rec.IdleRTTMs, err = fl(row[7]); err != nil {
		return rec, err
	}
	if rec.LoadedMs, err = fl(row[8]); err != nil {
		return rec, err
	}
	if rec.DownMbps, err = fl(row[9]); err != nil {
		return rec, err
	}
	secs, err := fl(row[10])
	if err != nil {
		return rec, err
	}
	rec.At = time.Duration(secs * float64(time.Second))
	return rec, nil
}
