package measure

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"spacecdn/internal/geo"
)

func sampleRecords() []SpeedTest {
	return []SpeedTest{
		{
			Country: "MZ", City: "Maputo", Network: NetworkStarlink,
			CDNCity: "Frankfurt", CDNLoc: geo.NewPoint(50.1109, 8.6821),
			DistKm: 8776.5, IdleRTTMs: 164.2, LoadedMs: 380.7, DownMbps: 95.3,
			At: 13 * time.Minute,
		},
		{
			Country: "MZ", City: "Maputo", Network: NetworkTerrestrial,
			CDNCity: "Maputo", CDNLoc: geo.NewPoint(-25.9692, 32.5732),
			DistKm: 0, IdleRTTMs: 20.3, LoadedMs: 42.1, DownMbps: 48.9,
			At: 0,
		},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	if len(back) != len(want) {
		t.Fatalf("records = %d", len(back))
	}
	for i := range back {
		a, b := want[i], back[i]
		if a.Country != b.Country || a.Network != b.Network || a.CDNCity != b.CDNCity {
			t.Errorf("record %d mismatch: %+v vs %+v", i, a, b)
		}
		// Floats survive to 4 decimal places; At to sub-millisecond.
		if d := a.IdleRTTMs - b.IdleRTTMs; d > 1e-3 || d < -1e-3 {
			t.Errorf("idle mismatch: %v vs %v", a.IdleRTTMs, b.IdleRTTMs)
		}
		if d := a.At - b.At; d > time.Millisecond || d < -time.Millisecond {
			t.Errorf("At mismatch: %v vs %v", a.At, b.At)
		}
	}
}

func TestCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Errorf("records = %d", len(back))
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty input", ""},
		{"wrong column count", "a,b,c\n"},
		{"wrong header name", strings.Replace(strings.Join(csvHeader, ","), "country", "nation", 1) + "\n"},
		{"bad network", strings.Join(csvHeader, ",") + "\nMZ,Maputo,carrier-pigeon,X,0,0,0,1,2,3,4\n"},
		{"bad float", strings.Join(csvHeader, ",") + "\nMZ,Maputo,starlink,X,zero,0,0,1,2,3,4\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tc.in)); err == nil {
				t.Error("expected error")
			}
		})
	}
}
