package measure

// lru is a minimal bounded map with least-recently-used eviction, used to
// keep the environment's memoization caches from growing with the length of
// a campaign. Not safe for concurrent use — the Environment guards its
// caches with one mutex.
type lru[K comparable, V any] struct {
	cap        int
	nodes      map[K]*lruEntry[K, V]
	head, tail *lruEntry[K, V]
}

type lruEntry[K comparable, V any] struct {
	key        K
	val        V
	prev, next *lruEntry[K, V]
}

func newLRU[K comparable, V any](capacity int) *lru[K, V] {
	return &lru[K, V]{cap: capacity, nodes: make(map[K]*lruEntry[K, V], capacity)}
}

func (l *lru[K, V]) len() int { return len(l.nodes) }

// get returns the cached value and refreshes its recency.
func (l *lru[K, V]) get(k K) (V, bool) {
	nd, ok := l.nodes[k]
	if !ok {
		var zero V
		return zero, false
	}
	l.moveToFront(nd)
	return nd.val, true
}

// put inserts a value, evicting the least recently used entry beyond
// capacity. When the key is already present the existing value wins and is
// returned — racing computations of the same deterministic value converge on
// one shared instance.
func (l *lru[K, V]) put(k K, v V) V {
	if nd, ok := l.nodes[k]; ok {
		l.moveToFront(nd)
		return nd.val
	}
	nd := &lruEntry[K, V]{key: k, val: v}
	l.nodes[k] = nd
	l.pushFront(nd)
	if len(l.nodes) > l.cap {
		lru := l.tail
		l.unlink(lru)
		delete(l.nodes, lru.key)
	}
	return v
}

func (l *lru[K, V]) pushFront(nd *lruEntry[K, V]) {
	nd.prev = nil
	nd.next = l.head
	if l.head != nil {
		l.head.prev = nd
	}
	l.head = nd
	if l.tail == nil {
		l.tail = nd
	}
}

func (l *lru[K, V]) unlink(nd *lruEntry[K, V]) {
	if nd.prev != nil {
		nd.prev.next = nd.next
	} else {
		l.head = nd.next
	}
	if nd.next != nil {
		nd.next.prev = nd.prev
	} else {
		l.tail = nd.prev
	}
	nd.prev, nd.next = nil, nil
}

func (l *lru[K, V]) moveToFront(nd *lruEntry[K, V]) {
	if l.head == nd {
		return
	}
	l.unlink(nd)
	l.pushFront(nd)
}
