package measure

import (
	"testing"
	"time"

	"spacecdn/internal/telemetry"
)

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	l := newLRU[int, string](3)
	l.put(1, "a")
	l.put(2, "b")
	l.put(3, "c")
	// Touch 1 so 2 becomes the eviction victim.
	if v, ok := l.get(1); !ok || v != "a" {
		t.Fatalf("get(1) = %q, %v", v, ok)
	}
	l.put(4, "d")
	if _, ok := l.get(2); ok {
		t.Error("2 survived past capacity despite being least recently used")
	}
	for _, k := range []int{1, 3, 4} {
		if _, ok := l.get(k); !ok {
			t.Errorf("%d missing after eviction of the LRU entry", k)
		}
	}
	if l.len() != 3 {
		t.Errorf("len = %d, want 3", l.len())
	}
}

func TestLRUDuplicatePutFirstStoreWins(t *testing.T) {
	l := newLRU[string, int](2)
	if got := l.put("k", 1); got != 1 {
		t.Fatalf("first put returned %d", got)
	}
	// Racing computations of the same deterministic value must converge on
	// the first stored instance.
	if got := l.put("k", 2); got != 1 {
		t.Errorf("duplicate put returned %d, want the existing 1", got)
	}
	if v, _ := l.get("k"); v != 1 {
		t.Errorf("get returned %d, want 1", v)
	}
	if l.len() != 1 {
		t.Errorf("len = %d, want 1", l.len())
	}
}

func TestLRUSingleEntryChurn(t *testing.T) {
	l := newLRU[int, int](1)
	for i := 0; i < 10; i++ {
		l.put(i, i)
		if l.len() != 1 {
			t.Fatalf("len = %d after put %d, want 1", l.len(), i)
		}
	}
	if v, ok := l.get(9); !ok || v != 9 {
		t.Fatalf("newest entry lost: %d, %v", v, ok)
	}
}

// TestSnapshotCacheBounded drives more distinct snapshot times than the cache
// holds and checks the LRU keeps the environment's footprint flat while the
// hit/miss counters account for every lookup.
func TestSnapshotCacheBounded(t *testing.T) {
	e := testEnv(t)
	_, m0, _, _ := e.CacheCounters()
	n := snapCacheCap + 16
	for i := 0; i < n; i++ {
		e.Snapshot(time.Duration(i) * 31 * time.Millisecond)
	}
	e.mu.Lock()
	size := e.snapCache.len()
	e.mu.Unlock()
	if size > snapCacheCap {
		t.Errorf("snapshot cache grew to %d, cap %d", size, snapCacheCap)
	}
	h1, m1, _, _ := e.CacheCounters()
	if m1-m0 < int64(n) {
		t.Errorf("misses advanced by %d, want at least %d distinct-time misses", m1-m0, n)
	}
	// A repeated recent time must hit.
	last := time.Duration(n-1) * 31 * time.Millisecond
	e.Snapshot(last)
	if h2, _, _, _ := e.CacheCounters(); h2 <= h1 {
		t.Error("repeated lookup of a cached snapshot did not count as a hit")
	}
}

// TestCacheGaugesExported attaches telemetry and checks the collector
// publishes the environment's cache counters as gauges at exposition time.
func TestCacheGaugesExported(t *testing.T) {
	e := testEnv(t)
	tel := telemetry.New(0)
	e.SetTelemetry(tel)
	e.Snapshot(0)
	e.Snapshot(0) // at least one hit and one lookup on record
	sh, sm, ph, pm := e.CacheCounters()
	want := map[string]float64{
		"measure_snap_cache_hits":   float64(sh),
		"measure_snap_cache_misses": float64(sm),
		"measure_path_cache_hits":   float64(ph),
		"measure_path_cache_misses": float64(pm),
	}
	snap := tel.Registry().Snapshot()
	seen := map[string]float64{}
	for _, g := range snap.Gauges {
		seen[g.Name] = g.Value
	}
	for name, v := range want {
		got, ok := seen[name]
		if !ok {
			t.Errorf("gauge %s not exported", name)
			continue
		}
		// Counters only grow, and the gauge is sampled at exposition — after
		// the CacheCounters read above — so it can never lag behind it.
		if got < v {
			t.Errorf("gauge %s = %v, behind counter %v", name, got, v)
		}
	}
	if seen["measure_snap_cache_hits"] < 1 {
		t.Errorf("snap hits gauge = %v, want >= 1 after repeated Snapshot(0)", seen["measure_snap_cache_hits"])
	}
}
