// Package measure is the simulator's stand-in for the paper's two data
// sources: the Cloudflare AIM crowdsourced speed-test dataset and the NetMet
// browser-plugin campaign. It generates synthetic measurement records with
// the same schema and aggregation pipeline the paper applies — per-city
// optimal-CDN medians, country-level deltas, paired web-browsing timings —
// driven by the geometric network models instead of production traffic.
package measure

import (
	"fmt"
	"time"

	"spacecdn/internal/cdn"
	"spacecdn/internal/constellation"
	"spacecdn/internal/geo"
	"spacecdn/internal/groundseg"
	"spacecdn/internal/lsn"
	"spacecdn/internal/stats"
	"spacecdn/internal/terrestrial"
)

// Network labels a measurement's access network.
type Network string

// The two access networks the paper compares.
const (
	NetworkStarlink    Network = "starlink"
	NetworkTerrestrial Network = "terrestrial"
)

// Environment bundles every model the measurement campaigns need. Build one
// with NewEnvironment and share it across experiments — constructing the
// constellation is the expensive part.
type Environment struct {
	Constellation *constellation.Constellation
	Ground        *groundseg.Catalog
	LSN           *lsn.Model
	Terrestrial   *terrestrial.Model
	CDN           *cdn.CDN

	// pathCache memoizes LSN path resolution per (city, snapshot).
	pathCache map[pathKey]lsn.Path
	snapCache map[time.Duration]*constellation.Snapshot
}

type pathKey struct {
	lat, lon float64
	iso      string
	t        time.Duration
}

// NewEnvironment assembles the default simulation environment.
func NewEnvironment() (*Environment, error) {
	c, err := constellation.New(constellation.DefaultConfig())
	if err != nil {
		return nil, err
	}
	ground := groundseg.NewCatalog()
	terr := terrestrial.NewModel()
	cd, err := cdn.New(cdn.DefaultConfig(), terr)
	if err != nil {
		return nil, err
	}
	return &Environment{
		Constellation: c,
		Ground:        ground,
		LSN:           lsn.NewModel(c, ground, lsn.DefaultConfig()),
		Terrestrial:   terr,
		CDN:           cd,
		pathCache:     make(map[pathKey]lsn.Path),
		snapCache:     make(map[time.Duration]*constellation.Snapshot),
	}, nil
}

// Snapshot returns a memoized constellation snapshot.
func (e *Environment) Snapshot(t time.Duration) *constellation.Snapshot {
	if s, ok := e.snapCache[t]; ok {
		return s
	}
	s := e.Constellation.Snapshot(t)
	e.snapCache[t] = s
	return s
}

// Path returns a memoized LSN path for a client.
func (e *Environment) Path(loc geo.Point, iso string, t time.Duration) (lsn.Path, error) {
	k := pathKey{lat: loc.LatDeg, lon: loc.LonDeg, iso: iso, t: t}
	if p, ok := e.pathCache[k]; ok {
		return p, nil
	}
	p, err := e.LSN.ResolvePath(loc, iso, e.Snapshot(t))
	if err != nil {
		return lsn.Path{}, err
	}
	e.pathCache[k] = p
	return p, nil
}

// SpeedTest is one synthetic AIM record.
type SpeedTest struct {
	Country   string // ISO2
	City      string
	Network   Network
	CDNCity   string // serving CDN edge
	CDNLoc    geo.Point
	DistKm    float64 // client -> CDN geodesic
	IdleRTTMs float64
	LoadedMs  float64
	DownMbps  float64
	At        time.Duration
}

// AIMConfig controls dataset generation.
type AIMConfig struct {
	// TestsPerCity per network per snapshot.
	TestsPerCity int
	// Snapshots are the constellation times sampled (spread over an orbit
	// so satellite geometry varies like a weeks-long campaign).
	Snapshots []time.Duration
	Seed      int64
}

// DefaultAIMConfig spreads four snapshots over an orbital period.
func DefaultAIMConfig() AIMConfig {
	return AIMConfig{
		TestsPerCity: 25,
		Snapshots: []time.Duration{
			0, 13 * time.Minute, 31 * time.Minute, 53 * time.Minute,
		},
		Seed: 42,
	}
}

// GenerateAIM produces the synthetic AIM dataset: Starlink tests from every
// covered country and terrestrial tests from every country in the dataset.
func (e *Environment) GenerateAIM(cfg AIMConfig) ([]SpeedTest, error) {
	if cfg.TestsPerCity <= 0 || len(cfg.Snapshots) == 0 {
		return nil, fmt.Errorf("measure: need positive tests and snapshots")
	}
	rng := stats.NewRand(cfg.Seed)
	var out []SpeedTest
	for _, country := range geo.Countries() {
		cities := geo.CitiesInCountry(country.ISO2)
		for _, city := range cities {
			// Terrestrial tests: everyone has some terrestrial ISP.
			tst, err := e.terrestrialTests(city, cfg, rng.Fork("terr/"+city.Name))
			if err != nil {
				return nil, err
			}
			out = append(out, tst...)
			// Starlink tests only where coverage exists.
			if country.Starlink {
				sts, err := e.starlinkTests(city, cfg, rng.Fork("sl/"+city.Name))
				if err != nil {
					return nil, err
				}
				out = append(out, sts...)
			}
		}
	}
	return out, nil
}

func (e *Environment) terrestrialTests(city geo.City, cfg AIMConfig, rng *stats.Rand) ([]SpeedTest, error) {
	var out []SpeedTest
	for _, at := range cfg.Snapshots {
		for i := 0; i < cfg.TestsPerCity; i++ {
			edge := e.CDN.SelectAnycast(city.Loc, rng)
			idle := e.Terrestrial.SampleRTT(city.Loc, edge.City.Loc, city.Region, edge.City.Region, rng)
			loaded := idle + e.Terrestrial.Bloat(rng)
			out = append(out, SpeedTest{
				Country:   city.Country,
				City:      city.Name,
				Network:   NetworkTerrestrial,
				CDNCity:   edge.City.Name,
				CDNLoc:    edge.City.Loc,
				DistKm:    geo.HaversineKm(city.Loc, edge.City.Loc),
				IdleRTTMs: ms(idle),
				LoadedMs:  ms(loaded),
				DownMbps:  e.Terrestrial.DownlinkMbps(city.Region, rng),
				At:        at,
			})
		}
	}
	return out, nil
}

func (e *Environment) starlinkTests(city geo.City, cfg AIMConfig, rng *stats.Rand) ([]SpeedTest, error) {
	var out []SpeedTest
	for _, at := range cfg.Snapshots {
		path, err := e.Path(city.Loc, city.Country, at)
		if err != nil {
			// No coverage at this instant (e.g. extreme latitude): skip.
			continue
		}
		for i := 0; i < cfg.TestsPerCity; i++ {
			// Anycast sees the PoP, not the subscriber.
			edge := e.CDN.SelectAnycast(path.PoP.Loc, rng)
			idle := e.LSN.RTTToHost(path, edge.City.Loc, edge.City.Region, e.Terrestrial, rng)
			loaded := idle + time.Duration(rng.Uniform(
				e.LSN.Config().BloatLoadedMinMs, e.LSN.Config().BloatLoadedMaxMs)*float64(time.Millisecond))
			out = append(out, SpeedTest{
				Country:   city.Country,
				City:      city.Name,
				Network:   NetworkStarlink,
				CDNCity:   edge.City.Name,
				CDNLoc:    edge.City.Loc,
				DistKm:    geo.HaversineKm(city.Loc, edge.City.Loc),
				IdleRTTMs: ms(idle),
				LoadedMs:  ms(loaded),
				DownMbps:  e.LSN.DownlinkMbps(rng),
				At:        at,
			})
		}
	}
	return out, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
