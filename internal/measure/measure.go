// Package measure is the simulator's stand-in for the paper's two data
// sources: the Cloudflare AIM crowdsourced speed-test dataset and the NetMet
// browser-plugin campaign. It generates synthetic measurement records with
// the same schema and aggregation pipeline the paper applies — per-city
// optimal-CDN medians, country-level deltas, paired web-browsing timings —
// driven by the geometric network models instead of production traffic.
package measure

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"spacecdn/internal/cdn"
	"spacecdn/internal/constellation"
	"spacecdn/internal/geo"
	"spacecdn/internal/groundseg"
	"spacecdn/internal/lsn"
	"spacecdn/internal/parallel"
	"spacecdn/internal/stats"
	"spacecdn/internal/telemetry"
	"spacecdn/internal/terrestrial"
)

// Network labels a measurement's access network.
type Network string

// The two access networks the paper compares.
const (
	NetworkStarlink    Network = "starlink"
	NetworkTerrestrial Network = "terrestrial"
)

// Environment bundles every model the measurement campaigns need. Build one
// with NewEnvironment and share it across experiments — constructing the
// constellation is the expensive part.
type Environment struct {
	Constellation *constellation.Constellation
	Ground        *groundseg.Catalog
	LSN           *lsn.Model
	Terrestrial   *terrestrial.Model
	CDN           *cdn.CDN

	// mu guards the memoization caches below; campaign generation shards
	// cities across workers, and all shards share one Environment. Both
	// caches are LRU-bounded so a long campaign cannot grow them without
	// limit: snapshots are few but heavy (each can hold an ISL graph and a
	// path-tree memo), paths are light but numerous.
	mu sync.Mutex
	// pathCache memoizes LSN path resolution per (city, snapshot).
	pathCache *lru[pathKey, lsn.Path]
	snapCache *lru[time.Duration, *constellation.Snapshot]

	// Cache effectiveness counters, exported as telemetry gauges by
	// SetTelemetry. Atomics so reads never contend with the cache mutex.
	snapHits, snapMisses atomic.Int64
	pathHits, pathMisses atomic.Int64
}

// Cache bounds. Snapshots cover the handful of sample instants an experiment
// run touches (snapshotTimes, AIM snapshots, benches at t=0) with generous
// headroom; paths cover a full campaign's (city, snapshot) working set.
const (
	snapCacheCap = 64
	pathCacheCap = 4096
)

type pathKey struct {
	lat, lon float64
	iso      string
	t        time.Duration
}

// NewEnvironment assembles the default simulation environment.
func NewEnvironment() (*Environment, error) {
	c, err := constellation.New(constellation.DefaultConfig())
	if err != nil {
		return nil, err
	}
	ground := groundseg.NewCatalog()
	terr := terrestrial.NewModel()
	cd, err := cdn.New(cdn.DefaultConfig(), terr)
	if err != nil {
		return nil, err
	}
	return &Environment{
		Constellation: c,
		Ground:        ground,
		LSN:           lsn.NewModel(c, ground, lsn.DefaultConfig()),
		Terrestrial:   terr,
		CDN:           cd,
		pathCache:     newLRU[pathKey, lsn.Path](pathCacheCap),
		snapCache:     newLRU[time.Duration, *constellation.Snapshot](snapCacheCap),
	}, nil
}

// Snapshot returns a memoized constellation snapshot. Concurrent callers
// may compute a missing snapshot twice; the first store wins so every
// caller converges on one shared (and one lazily-built ISL graph) instance.
func (e *Environment) Snapshot(t time.Duration) *constellation.Snapshot {
	e.mu.Lock()
	s, ok := e.snapCache.get(t)
	e.mu.Unlock()
	if ok {
		e.snapHits.Add(1)
		return s
	}
	e.snapMisses.Add(1)
	s = e.Constellation.Snapshot(t)
	e.mu.Lock()
	s = e.snapCache.put(t, s)
	e.mu.Unlock()
	return s
}

// Sweep returns an incremental cursor over the environment's constellation —
// the preferred access pattern for monotonic time loops, leaving Snapshot's
// random-access cache for parallel generation.
func (e *Environment) Sweep(start, step time.Duration) *constellation.Sweep {
	return e.Constellation.Sweep(start, step)
}

// SweepScan returns the naive fresh-snapshot cursor (sweep-equivalence
// reference).
func (e *Environment) SweepScan(start, step time.Duration) *constellation.SweepScan {
	return e.Constellation.SweepScan(start, step)
}

// Path returns a memoized LSN path for a client. Path resolution is
// deterministic, so a concurrent duplicate computation stores an identical
// value and the cache never affects results — only wall time.
func (e *Environment) Path(loc geo.Point, iso string, t time.Duration) (lsn.Path, error) {
	k := pathKey{lat: loc.LatDeg, lon: loc.LonDeg, iso: iso, t: t}
	e.mu.Lock()
	p, ok := e.pathCache.get(k)
	e.mu.Unlock()
	if ok {
		e.pathHits.Add(1)
		return p, nil
	}
	e.pathMisses.Add(1)
	p, err := e.LSN.ResolvePath(loc, iso, e.Snapshot(t))
	if err != nil {
		return lsn.Path{}, err
	}
	e.mu.Lock()
	p = e.pathCache.put(k, p)
	e.mu.Unlock()
	return p, nil
}

// CacheCounters returns the environment's memoization effectiveness:
// snapshot-cache and path-cache hits and misses.
func (e *Environment) CacheCounters() (snapHits, snapMisses, pathHits, pathMisses int64) {
	return e.snapHits.Load(), e.snapMisses.Load(), e.pathHits.Load(), e.pathMisses.Load()
}

// SetTelemetry exports the environment's cache effectiveness as gauges,
// sampled by a collector at exposition time (the counters are cheap to read
// but pointless to push per lookup). Nil detaches nothing — collectors only
// Set gauges, so a detached registry simply stops being read.
func (e *Environment) SetTelemetry(t *telemetry.Telemetry) {
	if t == nil {
		return
	}
	reg := t.Registry()
	snapHits := reg.Gauge("measure_snap_cache_hits")
	snapMisses := reg.Gauge("measure_snap_cache_misses")
	pathHits := reg.Gauge("measure_path_cache_hits")
	pathMisses := reg.Gauge("measure_path_cache_misses")
	reg.RegisterCollector(func() {
		sh, sm, ph, pm := e.CacheCounters()
		snapHits.Set(float64(sh))
		snapMisses.Set(float64(sm))
		pathHits.Set(float64(ph))
		pathMisses.Set(float64(pm))
	})
}

// SpeedTest is one synthetic AIM record.
type SpeedTest struct {
	Country   string // ISO2
	City      string
	Network   Network
	CDNCity   string // serving CDN edge
	CDNLoc    geo.Point
	DistKm    float64 // client -> CDN geodesic
	IdleRTTMs float64
	LoadedMs  float64
	DownMbps  float64
	At        time.Duration
}

// AIMConfig controls dataset generation.
type AIMConfig struct {
	// TestsPerCity per network per snapshot.
	TestsPerCity int
	// Snapshots are the constellation times sampled (spread over an orbit
	// so satellite geometry varies like a weeks-long campaign).
	Snapshots []time.Duration
	Seed      int64
	// Workers bounds the goroutines generating per-city records; <= 0 means
	// one per CPU. The dataset is identical for every worker count.
	Workers int
}

// DefaultAIMConfig spreads four snapshots over an orbital period.
func DefaultAIMConfig() AIMConfig {
	return AIMConfig{
		TestsPerCity: 25,
		Snapshots: []time.Duration{
			0, 13 * time.Minute, 31 * time.Minute, 53 * time.Minute,
		},
		Seed: 42,
	}
}

// GenerateAIM produces the synthetic AIM dataset: Starlink tests from every
// covered country and terrestrial tests from every country in the dataset.
// Cities generate in parallel (cfg.Workers); every city's streams are forked
// from the seed up front in a fixed order and results merge in city order,
// so the dataset is byte-identical for any worker count.
func (e *Environment) GenerateAIM(cfg AIMConfig) ([]SpeedTest, error) {
	if cfg.TestsPerCity <= 0 || len(cfg.Snapshots) == 0 {
		return nil, fmt.Errorf("measure: need positive tests and snapshots")
	}
	rng := stats.NewRand(cfg.Seed)
	type cityJob struct {
		city geo.City
		terr *stats.Rand
		sl   *stats.Rand // nil where Starlink has no coverage
	}
	var jobs []cityJob
	for _, country := range geo.Countries() {
		for _, city := range geo.CitiesInCountry(country.ISO2) {
			j := cityJob{city: city, terr: rng.Fork("terr/" + city.Name)}
			if country.Starlink {
				j.sl = rng.Fork("sl/" + city.Name)
			}
			jobs = append(jobs, j)
		}
	}
	// Warm the snapshot cache before the fan-out so jobs mostly read it.
	for _, at := range cfg.Snapshots {
		e.Snapshot(at)
	}
	results := make([][]SpeedTest, len(jobs))
	err := parallel.Run(cfg.Workers, len(jobs), func(i int) error {
		j := jobs[i]
		tst, err := e.terrestrialTests(j.city, cfg, j.terr)
		if err != nil {
			return err
		}
		results[i] = tst
		if j.sl != nil {
			sts, err := e.starlinkTests(j.city, cfg, j.sl)
			if err != nil {
				return err
			}
			results[i] = append(results[i], sts...)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []SpeedTest
	for _, r := range results {
		out = append(out, r...)
	}
	return out, nil
}

func (e *Environment) terrestrialTests(city geo.City, cfg AIMConfig, rng *stats.Rand) ([]SpeedTest, error) {
	var out []SpeedTest
	for _, at := range cfg.Snapshots {
		for i := 0; i < cfg.TestsPerCity; i++ {
			edge := e.CDN.SelectAnycast(city.Loc, rng)
			idle := e.Terrestrial.SampleRTT(city.Loc, edge.City.Loc, city.Region, edge.City.Region, rng)
			loaded := idle + e.Terrestrial.Bloat(rng)
			out = append(out, SpeedTest{
				Country:   city.Country,
				City:      city.Name,
				Network:   NetworkTerrestrial,
				CDNCity:   edge.City.Name,
				CDNLoc:    edge.City.Loc,
				DistKm:    geo.HaversineKm(city.Loc, edge.City.Loc),
				IdleRTTMs: ms(idle),
				LoadedMs:  ms(loaded),
				DownMbps:  e.Terrestrial.DownlinkMbps(city.Region, rng),
				At:        at,
			})
		}
	}
	return out, nil
}

func (e *Environment) starlinkTests(city geo.City, cfg AIMConfig, rng *stats.Rand) ([]SpeedTest, error) {
	var out []SpeedTest
	for _, at := range cfg.Snapshots {
		path, err := e.Path(city.Loc, city.Country, at)
		if err != nil {
			// No coverage at this instant (e.g. extreme latitude): skip.
			continue
		}
		for i := 0; i < cfg.TestsPerCity; i++ {
			// Anycast sees the PoP, not the subscriber.
			edge := e.CDN.SelectAnycast(path.PoP.Loc, rng)
			idle := e.LSN.RTTToHost(path, edge.City.Loc, edge.City.Region, e.Terrestrial, rng)
			loaded := idle + time.Duration(rng.Uniform(
				e.LSN.Config().BloatLoadedMinMs, e.LSN.Config().BloatLoadedMaxMs)*float64(time.Millisecond))
			out = append(out, SpeedTest{
				Country:   city.Country,
				City:      city.Name,
				Network:   NetworkStarlink,
				CDNCity:   edge.City.Name,
				CDNLoc:    edge.City.Loc,
				DistKm:    geo.HaversineKm(city.Loc, edge.City.Loc),
				IdleRTTMs: ms(idle),
				LoadedMs:  ms(loaded),
				DownMbps:  e.LSN.DownlinkMbps(rng),
				At:        at,
			})
		}
	}
	return out, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
