package measure

import (
	"sync"
	"testing"
	"time"

	"spacecdn/internal/stats"
)

// The environment is expensive (1,584-satellite constellation); share one
// across the package's tests.
var (
	envOnce sync.Once
	env     *Environment
	envErr  error
)

func testEnv(t *testing.T) *Environment {
	t.Helper()
	envOnce.Do(func() { env, envErr = NewEnvironment() })
	if envErr != nil {
		t.Fatal(envErr)
	}
	return env
}

// smallAIM generates a reduced dataset quickly.
func smallAIM(t *testing.T) []SpeedTest {
	t.Helper()
	e := testEnv(t)
	cfg := AIMConfig{
		TestsPerCity: 6,
		Snapshots:    []time.Duration{0, 17 * time.Minute},
		Seed:         1,
	}
	tests, err := e.GenerateAIM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tests
}

var (
	aimOnce sync.Once
	aimData []SpeedTest
)

func sharedAIM(t *testing.T) []SpeedTest {
	t.Helper()
	aimOnce.Do(func() { aimData = smallAIM(t) })
	return aimData
}

func TestGenerateAIMValidation(t *testing.T) {
	e := testEnv(t)
	if _, err := e.GenerateAIM(AIMConfig{TestsPerCity: 0, Snapshots: []time.Duration{0}}); err == nil {
		t.Error("zero tests accepted")
	}
	if _, err := e.GenerateAIM(AIMConfig{TestsPerCity: 1}); err == nil {
		t.Error("no snapshots accepted")
	}
}

func TestAIMDatasetShape(t *testing.T) {
	tests := sharedAIM(t)
	if len(tests) < 2500 {
		t.Fatalf("dataset too small: %d", len(tests))
	}
	countries := map[string]map[Network]bool{}
	for _, ts := range tests {
		if ts.IdleRTTMs <= 0 {
			t.Fatalf("non-positive RTT: %+v", ts)
		}
		if ts.LoadedMs < ts.IdleRTTMs {
			t.Fatalf("loaded < idle: %+v", ts)
		}
		if ts.DownMbps <= 0 {
			t.Fatalf("non-positive throughput: %+v", ts)
		}
		if ts.CDNCity == "" {
			t.Fatalf("missing CDN city: %+v", ts)
		}
		if countries[ts.Country] == nil {
			countries[ts.Country] = map[Network]bool{}
		}
		countries[ts.Country][ts.Network] = true
	}
	both := 0
	for _, nets := range countries {
		if nets[NetworkStarlink] && nets[NetworkTerrestrial] {
			both++
		}
	}
	// The paper has 55 countries with Starlink measurements; we model the
	// covered subset of our dataset — expect dozens.
	if both < 40 {
		t.Errorf("countries with both networks = %d, want >= 40", both)
	}
}

func TestStarlinkAnycastSeesPoP(t *testing.T) {
	// Starlink tests from Maputo must be served by a CDN near Frankfurt,
	// not near Maputo (the paper's core finding).
	tests := sharedAIM(t)
	for _, ts := range tests {
		if ts.City != "Maputo" {
			continue
		}
		if ts.Network == NetworkStarlink {
			if ts.DistKm < 5000 {
				t.Fatalf("Starlink Maputo mapped to nearby CDN %s (%.0f km)", ts.CDNCity, ts.DistKm)
			}
		} else {
			if ts.DistKm > 2000 {
				t.Fatalf("terrestrial Maputo mapped to far CDN %s (%.0f km)", ts.CDNCity, ts.DistKm)
			}
		}
	}
}

func TestOptimalPerCity(t *testing.T) {
	tests := sharedAIM(t)
	cities := OptimalPerCity(tests)
	if len(cities) == 0 {
		t.Fatal("no city optima")
	}
	seen := map[string]bool{}
	for _, c := range cities {
		key := c.Country + "/" + c.City + "/" + string(c.Network)
		if seen[key] {
			t.Fatalf("duplicate city entry %s", key)
		}
		seen[key] = true
		if c.MedianMs <= 0 || c.MinMs <= 0 || c.MinMs > c.MedianMs {
			t.Fatalf("inconsistent optima: %+v", c)
		}
		if c.N == 0 {
			t.Fatalf("zero samples behind %+v", c)
		}
	}
}

func TestByCountryTable1Shape(t *testing.T) {
	tests := sharedAIM(t)
	byC := ByCountry(OptimalPerCity(tests))

	check := func(iso string, starMin, starMax, terrMin, terrMax float64) {
		t.Helper()
		nets, ok := byC[iso]
		if !ok {
			t.Fatalf("no data for %s", iso)
		}
		s, t1 := nets[NetworkStarlink], nets[NetworkTerrestrial]
		if s.MinRTTMs < starMin || s.MinRTTMs > starMax {
			t.Errorf("%s Starlink minRTT = %.1f, want [%v,%v]", iso, s.MinRTTMs, starMin, starMax)
		}
		if t1.MinRTTMs < terrMin || t1.MinRTTMs > terrMax {
			t.Errorf("%s terrestrial minRTT = %.1f, want [%v,%v]", iso, t1.MinRTTMs, terrMin, terrMax)
		}
	}
	// Paper Table 1 bands (generous: the shape matters).
	check("MZ", 95, 210, 3, 25) // paper: 138.7 vs 7.2
	check("ES", 20, 50, 2, 30)  // paper: 33 vs 14.3
	check("JP", 20, 55, 2, 25)  // paper: 34 vs 9
	check("KE", 80, 190, 5, 40) // paper: 110.9 vs 16
	check("GT", 28, 75, 2, 25)  // paper: 44.2 vs 7

	// Starlink distance to optimal CDN for Mozambique ~ thousands of km.
	if d := byC["MZ"][NetworkStarlink].AvgDistKm; d < 5000 {
		t.Errorf("MZ Starlink distance = %.0f km, want >5000", d)
	}
	if d := byC["MZ"][NetworkTerrestrial].AvgDistKm; d > 2000 {
		t.Errorf("MZ terrestrial distance = %.0f km, want local", d)
	}
}

func TestDeltaByCountryFig2Shape(t *testing.T) {
	tests := sharedAIM(t)
	countries, deltas := DeltaByCountry(tests)
	if len(countries) < 40 {
		t.Fatalf("delta countries = %d", len(countries))
	}
	idx := map[string]float64{}
	for i, c := range countries {
		idx[c] = deltas[i]
	}
	// Terrestrial nearly always wins (positive delta).
	positive := 0
	for _, d := range deltas {
		if d > 0 {
			positive++
		}
	}
	if float64(positive) < 0.8*float64(len(deltas)) {
		t.Errorf("only %d/%d countries have Starlink slower", positive, len(deltas))
	}
	// African countries without local PoPs: delta ~ 100-150 ms in the paper.
	for _, iso := range []string{"MZ", "KE", "ZM"} {
		if d, ok := idx[iso]; !ok || d < 70 {
			t.Errorf("%s delta = %v, want >= 70 ms (paper: 120-150)", iso, d)
		}
	}
	// Countries with local PoPs: modest deltas (paper: ~20-40 ms).
	for _, iso := range []string{"ES", "JP", "DE", "GB", "US"} {
		if d, ok := idx[iso]; !ok || d > 70 {
			t.Errorf("%s delta = %v, want < 70 ms", iso, d)
		}
	}
}

func TestPerCDNFromCityFig3Shape(t *testing.T) {
	tests := sharedAIM(t)
	// Starlink from Maputo: the best CDN is in Europe (Frankfurt region).
	sl := PerCDNFromCity(tests, "Maputo", NetworkStarlink)
	if len(sl) == 0 {
		t.Fatal("no Starlink CDN sites from Maputo")
	}
	bestSl := sl[0]
	if bestSl.MedianMs < 100 || bestSl.MedianMs > 230 {
		t.Errorf("Maputo Starlink best CDN median = %.1f ms, paper ~160", bestSl.MedianMs)
	}
	// Terrestrial from Maputo: the best CDN is Maputo itself at ~20 ms.
	te := PerCDNFromCity(tests, "Maputo", NetworkTerrestrial)
	if len(te) == 0 {
		t.Fatal("no terrestrial CDN sites from Maputo")
	}
	if te[0].CDNCity != "Maputo" {
		t.Errorf("terrestrial best CDN = %s, want Maputo", te[0].CDNCity)
	}
	if te[0].MedianMs > 45 {
		t.Errorf("terrestrial Maputo median = %.1f ms, paper ~20", te[0].MedianMs)
	}
	// Sorted ascending.
	for i := 1; i < len(sl); i++ {
		if sl[i].MedianMs < sl[i-1].MedianMs {
			t.Fatal("per-CDN series not sorted")
		}
	}
}

func TestIdleCDF(t *testing.T) {
	tests := sharedAIM(t)
	slCDF := IdleCDF(tests, NetworkStarlink)
	teCDF := IdleCDF(tests, NetworkTerrestrial)
	if slCDF.N() == 0 || teCDF.N() == 0 {
		t.Fatal("empty CDFs")
	}
	if slCDF.Median() <= teCDF.Median() {
		t.Errorf("Starlink median %.1f should exceed terrestrial %.1f",
			slCDF.Median(), teCDF.Median())
	}
}

func TestAIMDeterminism(t *testing.T) {
	e := testEnv(t)
	cfg := AIMConfig{TestsPerCity: 2, Snapshots: []time.Duration{0}, Seed: 9}
	a, err := e.GenerateAIM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.GenerateAIM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("records differ at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPathMemoization(t *testing.T) {
	e := testEnv(t)
	c := stats.NewRand(0)
	_ = c
	loc := mustLoc(t, "Nairobi, KE")
	p1, err := e.Path(loc, "KE", 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.Path(loc, "KE", 0)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("memoized paths differ")
	}
}
