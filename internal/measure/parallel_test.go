package measure

import (
	"reflect"
	"testing"
	"time"

	"spacecdn/internal/geo"
)

// TestGenerateAIMWorkerInvariance: the dataset is byte-identical for any
// worker count — the per-city streams are forked before the fan-out and
// results merge in city order.
func TestGenerateAIMWorkerInvariance(t *testing.T) {
	e := testEnv(t)
	cfg := AIMConfig{
		TestsPerCity: 3,
		Snapshots:    []time.Duration{0, 29 * time.Minute},
		Seed:         11,
	}
	cfg.Workers = 1
	seq, err := e.GenerateAIM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := e.GenerateAIM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 {
		t.Fatal("empty dataset")
	}
	if !reflect.DeepEqual(seq, par) {
		for i := range seq {
			if i < len(par) && seq[i] != par[i] {
				t.Fatalf("record %d differs:\n  seq %+v\n  par %+v", i, seq[i], par[i])
			}
		}
		t.Fatalf("datasets differ in length: %d vs %d", len(seq), len(par))
	}
}

// TestRunNetMetWorkerInvariance: the paired campaign is identical for any
// worker count — each country's stream is keyed on its ISO code alone.
func TestRunNetMetWorkerInvariance(t *testing.T) {
	e := testEnv(t)
	cfg := WebConfig{
		Countries:    []string{"DE", "NG", "ES", "BR"},
		LoadsPerSite: 2,
		Snapshot:     0,
		Seed:         23,
	}
	cfg.Workers = 1
	seq, err := e.RunNetMet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := e.RunNetMet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 {
		t.Fatal("empty campaign")
	}
	if !reflect.DeepEqual(seq, par) {
		for i := range seq {
			if i < len(par) && seq[i] != par[i] {
				t.Fatalf("record %d differs:\n  seq %+v\n  par %+v", i, seq[i], par[i])
			}
		}
		t.Fatalf("campaigns differ in length: %d vs %d", len(seq), len(par))
	}
}

// TestEnvironmentCachesUnderConcurrency hammers the memoized Snapshot and
// Path accessors from parallel goroutines; it exists to fail under -race if
// the cache maps lose their locking.
func TestEnvironmentCachesUnderConcurrency(t *testing.T) {
	e := testEnv(t)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			at := time.Duration(g%3) * 19 * time.Minute
			if e.Snapshot(at) == nil {
				done <- nil
				return
			}
			loc := geo.NewPoint(50.11+float64(g%2), 8.68)
			_, err := e.Path(loc, "DE", at)
			done <- err
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}
