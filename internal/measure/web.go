package measure

import (
	"fmt"
	"time"

	"spacecdn/internal/geo"
	"spacecdn/internal/parallel"
	"spacecdn/internal/stats"
	"spacecdn/internal/webmodel"
)

// WebMeasurement is one NetMet-style page-load record.
type WebMeasurement struct {
	Country string // ISO2
	City    string
	Network Network
	Site    string
	Run     int // paired index: the same (site, run) exists on both networks
	HRTMs   float64
	FCPMs   float64
}

// WebConfig controls a NetMet campaign.
type WebConfig struct {
	// Countries to probe (ISO2). Each uses its reference city.
	Countries []string
	// LoadsPerSite per network.
	LoadsPerSite int
	// Snapshot is the constellation time used for Starlink paths.
	Snapshot time.Duration
	Seed     int64
	// Workers bounds the goroutines probing countries; <= 0 means one per
	// CPU. Results are identical for every worker count.
	Workers int
}

// DefaultWebConfig probes the paper's NetMet deployment countries: LEOScope
// probes in GB, DE, CA and NG plus volunteer locations.
func DefaultWebConfig() WebConfig {
	return WebConfig{
		Countries:    []string{"GB", "DE", "CA", "NG", "ES", "US", "AU", "BR"},
		LoadsPerSite: 25,
		Snapshot:     0,
		Seed:         7,
	}
}

// RunNetMet performs the paired web-browsing campaign: for each country it
// loads the top-20 page set over both Starlink and a terrestrial ISP from
// the same location, exactly like the paper's dockerized probe setup.
// Countries probe in parallel (cfg.Workers); every country's randomness is
// an independent stream keyed on its ISO code and results merge in country
// order, so the campaign is identical for any worker count.
func (e *Environment) RunNetMet(cfg WebConfig) ([]WebMeasurement, error) {
	if cfg.LoadsPerSite <= 0 {
		return nil, fmt.Errorf("measure: need positive loads per site")
	}
	if len(cfg.Countries) == 0 {
		return nil, fmt.Errorf("measure: no countries configured")
	}
	pages := webmodel.Top20Pages(cfg.Seed)
	type countryJob struct {
		iso     string
		country geo.Country
		city    geo.City
	}
	jobs := make([]countryJob, 0, len(cfg.Countries))
	for _, iso := range cfg.Countries {
		country, ok := geo.CountryByISO(iso)
		if !ok {
			return nil, fmt.Errorf("measure: unknown country %q", iso)
		}
		city, ok := geo.CityByName(country.Capital + ", " + country.ISO2)
		if !ok {
			return nil, fmt.Errorf("measure: no reference city for %s", iso)
		}
		jobs = append(jobs, countryJob{iso: iso, country: country, city: city})
	}
	e.Snapshot(cfg.Snapshot)
	results := make([][]WebMeasurement, len(jobs))
	err := parallel.Run(cfg.Workers, len(jobs), func(i int) error {
		j := jobs[i]
		recs, err := e.netmetCountry(j.iso, j.country, j.city, pages, cfg)
		results[i] = recs
		return err
	})
	if err != nil {
		return nil, err
	}
	var out []WebMeasurement
	for _, r := range results {
		out = append(out, r...)
	}
	return out, nil
}

// netmetCountry runs one country's paired campaign. Its rng derives from the
// seed and ISO code alone, never from another country's draws.
func (e *Environment) netmetCountry(iso string, country geo.Country, city geo.City, pages []webmodel.Page, cfg WebConfig) ([]WebMeasurement, error) {
	rng := stats.NewRand(cfg.Seed).Fork("netmet/" + iso)
	var out []WebMeasurement

	// Terrestrial side.
	tEdge := e.CDN.NearestEdge(city.Loc)
	tParams := webmodel.NetParams{
		RTTSample: func(r *stats.Rand) time.Duration {
			return e.Terrestrial.SampleRTT(city.Loc, tEdge.City.Loc, city.Region, tEdge.City.Region, r)
		},
		DownlinkMbps: e.Terrestrial.DownlinkMbps(city.Region, rng),
		DNSCachedP:   0.3,
		Connections:  6,
	}
	tms, err := e.runLoads(pages, tParams, cfg.LoadsPerSite, rng.Fork("terr"))
	if err != nil {
		return nil, err
	}
	for i, m := range tms {
		out = append(out, WebMeasurement{
			Country: iso, City: city.Name, Network: NetworkTerrestrial,
			Site: pages[i%len(pages)].Name, Run: i / len(pages),
			HRTMs: ms(m.HRT), FCPMs: ms(m.FCP),
		})
	}

	// Starlink side (skip countries without coverage).
	if !country.Starlink {
		return out, nil
	}
	path, err := e.Path(city.Loc, iso, cfg.Snapshot)
	if err != nil {
		return out, nil
	}
	sEdge := e.CDN.NearestEdge(path.PoP.Loc)
	sParams := webmodel.NetParams{
		RTTSample: func(r *stats.Rand) time.Duration {
			return e.LSN.RTTToHost(path, sEdge.City.Loc, sEdge.City.Region, e.Terrestrial, r)
		},
		DownlinkMbps: e.LSN.DownlinkMbps(rng),
		DNSCachedP:   0.3,
		Connections:  6,
	}
	sms, err := e.runLoads(pages, sParams, cfg.LoadsPerSite, rng.Fork("sl"))
	if err != nil {
		return nil, err
	}
	for i, m := range sms {
		out = append(out, WebMeasurement{
			Country: iso, City: city.Name, Network: NetworkStarlink,
			Site: pages[i%len(pages)].Name, Run: i / len(pages),
			HRTMs: ms(m.HRT), FCPMs: ms(m.FCP),
		})
	}
	return out, nil
}

func (e *Environment) runLoads(pages []webmodel.Page, p webmodel.NetParams, runs int, rng *stats.Rand) ([]webmodel.LoadResult, error) {
	var out []webmodel.LoadResult
	for run := 0; run < runs; run++ {
		for _, pg := range pages {
			r, err := webmodel.LoadPage(pg, p, rng)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// HRTDifference pairs Starlink and terrestrial loads by (site, run) within a
// country and returns the per-pair HRT differences (Starlink minus
// terrestrial) in milliseconds — the series behind Figure 4.
func HRTDifference(ms []WebMeasurement, country string) []float64 {
	type key struct {
		site string
		run  int
	}
	sl := map[key]float64{}
	te := map[key]float64{}
	for _, m := range ms {
		if m.Country != country {
			continue
		}
		k := key{site: m.Site, run: m.Run}
		switch m.Network {
		case NetworkStarlink:
			sl[k] = m.HRTMs
		case NetworkTerrestrial:
			te[k] = m.HRTMs
		}
	}
	var out []float64
	for k, s := range sl {
		if t, ok := te[k]; ok {
			out = append(out, s-t)
		}
	}
	return out
}

// FCPByNetwork extracts a country's FCP samples per network in milliseconds
// — the series behind Figure 5.
func FCPByNetwork(ms []WebMeasurement, country string) map[Network][]float64 {
	out := map[Network][]float64{}
	for _, m := range ms {
		if m.Country == country {
			out[m.Network] = append(out[m.Network], m.FCPMs)
		}
	}
	return out
}
