package measure

import (
	"sync"
	"testing"

	"spacecdn/internal/geo"
	"spacecdn/internal/stats"
)

func mustLoc(t *testing.T, name string) geo.Point {
	t.Helper()
	c, ok := geo.CityByName(name)
	if !ok {
		t.Fatalf("city %q missing", name)
	}
	return c.Loc
}

var (
	webOnce sync.Once
	webData []WebMeasurement
)

func sharedWeb(t *testing.T) []WebMeasurement {
	t.Helper()
	webOnce.Do(func() {
		e := testEnv(t)
		cfg := WebConfig{
			Countries:    []string{"GB", "DE", "CA", "NG", "MZ"},
			LoadsPerSite: 5,
			Seed:         3,
		}
		var err error
		webData, err = e.RunNetMet(cfg)
		if err != nil {
			t.Fatal(err)
		}
	})
	return webData
}

func TestRunNetMetValidation(t *testing.T) {
	e := testEnv(t)
	if _, err := e.RunNetMet(WebConfig{Countries: []string{"GB"}, LoadsPerSite: 0}); err == nil {
		t.Error("zero loads accepted")
	}
	if _, err := e.RunNetMet(WebConfig{LoadsPerSite: 1}); err == nil {
		t.Error("no countries accepted")
	}
	if _, err := e.RunNetMet(WebConfig{Countries: []string{"ZZ"}, LoadsPerSite: 1}); err == nil {
		t.Error("unknown country accepted")
	}
}

func TestNetMetPairedMeasurements(t *testing.T) {
	ms := sharedWeb(t)
	if len(ms) == 0 {
		t.Fatal("no measurements")
	}
	byCountry := map[string]map[Network]int{}
	for _, m := range ms {
		if m.HRTMs <= 0 || m.FCPMs <= 0 || m.FCPMs < m.HRTMs {
			t.Fatalf("inconsistent timings: %+v", m)
		}
		if byCountry[m.Country] == nil {
			byCountry[m.Country] = map[Network]int{}
		}
		byCountry[m.Country][m.Network]++
	}
	// Every probed country with coverage has both networks, equal counts.
	for _, iso := range []string{"GB", "DE", "CA", "NG", "MZ"} {
		counts := byCountry[iso]
		if counts[NetworkStarlink] == 0 || counts[NetworkTerrestrial] == 0 {
			t.Errorf("%s missing a network: %v", iso, counts)
			continue
		}
		if counts[NetworkStarlink] != counts[NetworkTerrestrial] {
			t.Errorf("%s unpaired counts: %v", iso, counts)
		}
	}
}

func TestHRTDifferenceFig4Shape(t *testing.T) {
	ms := sharedWeb(t)
	// GB/DE/CA: terrestrial faster, typical difference ~20-50 ms (paper).
	for _, iso := range []string{"GB", "DE", "CA"} {
		diffs := HRTDifference(ms, iso)
		if len(diffs) == 0 {
			t.Fatalf("no paired diffs for %s", iso)
		}
		med := stats.Median(diffs)
		if med < 5 || med > 90 {
			t.Errorf("%s median HRT difference = %.1f ms, want ~20-60", iso, med)
		}
	}
	// Mozambique: the difference is much larger (no local PoP).
	mz := stats.Median(HRTDifference(ms, "MZ"))
	gb := stats.Median(HRTDifference(ms, "GB"))
	if mz <= gb+30 {
		t.Errorf("MZ diff (%.1f) should far exceed GB diff (%.1f)", mz, gb)
	}
	// Nigeria is the paper's outlier: local PoP plus weak terrestrial
	// infrastructure makes Starlink competitive — difference distribution
	// shifted left of Mozambique's and of the other African country.
	ng := stats.Median(HRTDifference(ms, "NG"))
	if ng >= mz {
		t.Errorf("NG diff (%.1f) should be below MZ diff (%.1f)", ng, mz)
	}
}

func TestFCPByNetworkFig5Shape(t *testing.T) {
	ms := sharedWeb(t)
	for _, iso := range []string{"DE", "GB"} {
		fcp := FCPByNetwork(ms, iso)
		sl := fcp[NetworkStarlink]
		te := fcp[NetworkTerrestrial]
		if len(sl) == 0 || len(te) == 0 {
			t.Fatalf("%s missing FCP samples", iso)
		}
		slMed := stats.Median(sl)
		teMed := stats.Median(te)
		gap := slMed - teMed
		// Paper: ~200 ms higher median FCP on Starlink even with local PoPs.
		if gap < 60 || gap > 600 {
			t.Errorf("%s FCP gap = %.0f ms, paper ~200", iso, gap)
		}
		// FCP magnitudes are sub-~3s for top-20 landing pages.
		if teMed < 200 || teMed > 2500 {
			t.Errorf("%s terrestrial FCP median = %.0f ms, implausible", iso, teMed)
		}
	}
}

func TestNetMetDeterminism(t *testing.T) {
	e := testEnv(t)
	cfg := WebConfig{Countries: []string{"GB"}, LoadsPerSite: 3, Seed: 5}
	a, err := e.RunNetMet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.RunNetMet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("sizes differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("records differ at %d", i)
		}
	}
}
