package measure

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV codec for NetMet-style web measurements, mirroring what the paper's
// plugin uploads: per-load country, network, site and timings.

var webCSVHeader = []string{
	"country", "city", "network", "site", "run", "hrt_ms", "fcp_ms",
}

// WriteWebCSV writes web measurements with a header row.
func WriteWebCSV(w io.Writer, ms []WebMeasurement) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(webCSVHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
	for _, m := range ms {
		row := []string{
			m.Country, m.City, string(m.Network), m.Site,
			strconv.Itoa(m.Run), f(m.HRTMs), f(m.FCPMs),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadWebCSV parses measurements written by WriteWebCSV.
func ReadWebCSV(r io.Reader) ([]WebMeasurement, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("measure: reading web CSV header: %w", err)
	}
	if len(header) != len(webCSVHeader) {
		return nil, fmt.Errorf("measure: web CSV has %d columns, want %d", len(header), len(webCSVHeader))
	}
	for i, h := range webCSVHeader {
		if header[i] != h {
			return nil, fmt.Errorf("measure: web CSV column %d is %q, want %q", i, header[i], h)
		}
	}
	var out []WebMeasurement
	line := 1
	for {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("measure: reading web CSV: %w", err)
		}
		line++
		var m WebMeasurement
		m.Country, m.City, m.Site = row[0], row[1], row[3]
		switch Network(row[2]) {
		case NetworkStarlink, NetworkTerrestrial:
			m.Network = Network(row[2])
		default:
			return nil, fmt.Errorf("measure: web CSV line %d: unknown network %q", line, row[2])
		}
		if m.Run, err = strconv.Atoi(row[4]); err != nil {
			return nil, fmt.Errorf("measure: web CSV line %d: %w", line, err)
		}
		if m.HRTMs, err = strconv.ParseFloat(row[5], 64); err != nil {
			return nil, fmt.Errorf("measure: web CSV line %d: %w", line, err)
		}
		if m.FCPMs, err = strconv.ParseFloat(row[6], 64); err != nil {
			return nil, fmt.Errorf("measure: web CSV line %d: %w", line, err)
		}
		out = append(out, m)
	}
}
