package measure

import (
	"bytes"
	"strings"
	"testing"
)

func sampleWeb() []WebMeasurement {
	return []WebMeasurement{
		{Country: "DE", City: "Frankfurt", Network: NetworkStarlink, Site: "site-00", Run: 0, HRTMs: 52.3, FCPMs: 640.1},
		{Country: "DE", City: "Frankfurt", Network: NetworkTerrestrial, Site: "site-00", Run: 0, HRTMs: 19.8, FCPMs: 451.7},
	}
}

func TestWebCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWebCSV(&buf, sampleWeb()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWebCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleWeb()
	if len(back) != len(want) {
		t.Fatalf("records = %d", len(back))
	}
	for i := range back {
		if back[i] != want[i] {
			t.Errorf("record %d: %+v vs %+v", i, back[i], want[i])
		}
	}
}

func TestWebCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWebCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWebCSV(&buf)
	if err != nil || len(back) != 0 {
		t.Errorf("empty round trip: %v, %d records", err, len(back))
	}
}

func TestReadWebCSVErrors(t *testing.T) {
	h := strings.Join(webCSVHeader, ",")
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad column count", "a,b\n"},
		{"bad header", strings.Replace(h, "site", "page", 1) + "\n"},
		{"bad network", h + "\nDE,Frankfurt,pigeon,s,0,1,2\n"},
		{"bad run", h + "\nDE,Frankfurt,starlink,s,x,1,2\n"},
		{"bad hrt", h + "\nDE,Frankfurt,starlink,s,0,x,2\n"},
		{"bad fcp", h + "\nDE,Frankfurt,starlink,s,0,1,x\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadWebCSV(strings.NewReader(tc.in)); err == nil {
				t.Error("expected error")
			}
		})
	}
}
