// Package netsim is a small discrete-event network simulator: an event
// queue, store-and-forward links with finite rates and drop-tail queues, and
// flow transfers pipelined across link paths.
//
// It exists to reproduce emergent timing behaviour that closed-form models
// miss — most importantly the access-link bufferbloat the paper measures on
// Starlink (idle RTTs of tens of ms inflating past 200 ms during downloads),
// and the interleaving of parallel object downloads during a page load.
package netsim

import (
	"container/heap"
	"fmt"
	"time"
)

// Tap observes link-level events as they happen in virtual time, turning
// emergent behaviour (queue growth, drops, utilization) into a stream a
// telemetry layer can aggregate instead of something inferred from probe
// RTTs after the fact. All callbacks are optional; they run synchronously on
// the simulation goroutine and must not re-enter the simulator.
type Tap struct {
	// OnQueue fires after a packet is accepted into a link's queue, with the
	// post-enqueue depth in bytes.
	OnQueue func(l *Link, queuedBytes int64, at time.Duration)
	// OnDrop fires when a drop-tail queue rejects a packet.
	OnDrop func(l *Link, droppedBytes int64, at time.Duration)
	// OnDeliver fires when a packet finishes serializing (the instant its
	// bytes count as delivered), before propagation completes.
	OnDeliver func(l *Link, deliveredBytes int64, at time.Duration)
}

// Simulator owns virtual time and the pending event set. It is strictly
// single-goroutine: callbacks run inside Run on the calling goroutine.
type Simulator struct {
	now    time.Duration
	events eventHeap
	seq    int64
	tap    *Tap
}

// SetTap installs an event tap (nil removes it). Install before scheduling
// traffic; events already in flight keep the tap they were sent under.
func (s *Simulator) SetTap(t *Tap) { s.tap = t }

type event struct {
	at  time.Duration
	seq int64 // tie-break: FIFO among same-time events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewSimulator returns a simulator at time zero.
func NewSimulator() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Schedule runs fn at the given absolute virtual time. Times in the past are
// clamped to now (the event runs next).
func (s *Simulator) Schedule(at time.Duration, fn func()) {
	if fn == nil {
		return
	}
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.events, event{at: at, seq: s.seq, fn: fn})
}

// After schedules fn after a delay from now.
func (s *Simulator) After(d time.Duration, fn func()) {
	s.Schedule(s.now+d, fn)
}

// Run processes events until none remain. It returns the final virtual time.
func (s *Simulator) Run() time.Duration {
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		e.fn()
	}
	return s.now
}

// RunUntil processes events up to and including time t, then stops. Pending
// later events remain queued.
func (s *Simulator) RunUntil(t time.Duration) {
	for s.events.Len() > 0 && s.events[0].at <= t {
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		e.fn()
	}
	if s.now < t {
		s.now = t
	}
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return s.events.Len() }

// Link is a store-and-forward link: packets serialize at RateBps, wait in a
// drop-tail queue bounded by QueueBytes, and arrive Prop later.
type Link struct {
	Name       string
	RateBps    float64
	Prop       time.Duration
	QueueBytes int64 // 0 means unbounded

	busyUntil time.Duration
	queued    int64

	// Stats
	Delivered   int64 // bytes delivered
	Dropped     int64 // bytes dropped at the queue
	MaxQueueObs int64
}

// NewLink constructs a link; it panics on a non-positive rate (construction
// bug).
func NewLink(name string, rateBps float64, prop time.Duration, queueBytes int64) *Link {
	if rateBps <= 0 {
		panic(fmt.Sprintf("netsim: link %s has non-positive rate", name))
	}
	return &Link{Name: name, RateBps: rateBps, Prop: prop, QueueBytes: queueBytes}
}

// TxTime returns the serialization time of n bytes on this link.
func (l *Link) TxTime(n int64) time.Duration {
	return time.Duration(float64(n) * 8 / l.RateBps * float64(time.Second))
}

// QueueDelay returns how long a packet enqueued now would wait before its
// first bit is transmitted.
func (l *Link) QueueDelay(now time.Duration) time.Duration {
	if l.busyUntil <= now {
		return 0
	}
	return l.busyUntil - now
}

// QueuedBytes returns the bytes currently waiting or in transmission.
func (l *Link) QueuedBytes() int64 { return l.queued }

// Utilization returns the fraction of the given window the link spent
// serializing its delivered bytes — the standard link-load figure a
// telemetry tap exports per experiment window. Clamped to [0,1].
func (l *Link) Utilization(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	u := float64(l.TxTime(l.Delivered)) / float64(window)
	if u > 1 {
		u = 1
	}
	return u
}

// Send enqueues n bytes. onDelivered runs when the last bit arrives at the
// far end; onDropped (optional) runs immediately if the drop-tail queue is
// full. Exactly one of the callbacks fires.
func (l *Link) Send(s *Simulator, n int64, onDelivered func(), onDropped func()) {
	if n <= 0 {
		if onDelivered != nil {
			s.After(l.Prop, onDelivered)
		}
		return
	}
	tap := s.tap
	if l.QueueBytes > 0 && l.queued+n > l.QueueBytes {
		l.Dropped += n
		if tap != nil && tap.OnDrop != nil {
			tap.OnDrop(l, n, s.Now())
		}
		if onDropped != nil {
			s.Schedule(s.Now(), onDropped)
		}
		return
	}
	l.queued += n
	if l.queued > l.MaxQueueObs {
		l.MaxQueueObs = l.queued
	}
	if tap != nil && tap.OnQueue != nil {
		tap.OnQueue(l, l.queued, s.Now())
	}
	start := s.Now()
	if l.busyUntil > start {
		start = l.busyUntil
	}
	done := start + l.TxTime(n)
	l.busyUntil = done
	arrive := done + l.Prop
	s.Schedule(done, func() {
		l.queued -= n
		l.Delivered += n
		if tap != nil && tap.OnDeliver != nil {
			tap.OnDeliver(l, n, s.Now())
		}
	})
	if onDelivered != nil {
		s.Schedule(arrive, onDelivered)
	}
}

// Path is an ordered sequence of links from source to destination.
type Path []*Link

// PropagationDelay returns the sum of link propagation delays.
func (p Path) PropagationDelay() time.Duration {
	var d time.Duration
	for _, l := range p {
		d += l.Prop
	}
	return d
}

// Transfer moves total bytes along the path in chunkBytes pieces, pipelining
// chunks across links (chunk i+1 can occupy link 1 while chunk i is on link
// 2). onComplete fires when the last chunk arrives at the destination;
// onDrop (optional) fires per dropped chunk, which is then lost (no
// retransmit — callers model reliability).
func Transfer(s *Simulator, p Path, total, chunkBytes int64, onComplete func(), onDrop func()) {
	if len(p) == 0 || total <= 0 {
		if onComplete != nil {
			s.Schedule(s.Now(), onComplete)
		}
		return
	}
	if chunkBytes <= 0 {
		chunkBytes = 64 << 10
	}
	remaining := total
	inFlight := 0
	sentAll := false
	var arrived func()
	checkDone := func() {
		if sentAll && inFlight == 0 && onComplete != nil {
			done := onComplete
			onComplete = nil
			done()
		}
	}
	// forward sends a chunk from link index i onwards.
	var forward func(i int, n int64)
	forward = func(i int, n int64) {
		if i == len(p) {
			arrived()
			return
		}
		p[i].Send(s, n,
			func() { forward(i+1, n) },
			func() {
				inFlight--
				if onDrop != nil {
					onDrop()
				}
				checkDone()
			})
	}
	arrived = func() {
		inFlight--
		checkDone()
	}
	for remaining > 0 {
		n := chunkBytes
		if n > remaining {
			n = remaining
		}
		remaining -= n
		inFlight++
		forward(0, n)
	}
	sentAll = true
	checkDone()
}

// Probe measures the round-trip time through a path at the current moment:
// a small packet out over the path and back over the same links. onRTT
// receives the measured RTT. Probes share queues with data traffic, so a
// loaded link yields an inflated RTT — this is how the bufferbloat
// experiments measure the queue.
func Probe(s *Simulator, p Path, probeBytes int64, onRTT func(rtt time.Duration)) {
	if probeBytes <= 0 {
		probeBytes = 64
	}
	start := s.Now()
	var back func(i int)
	var out func(i int)
	out = func(i int) {
		if i == len(p) {
			back(len(p) - 1)
			return
		}
		p[i].Send(s, probeBytes, func() { out(i + 1) }, func() { /* lost: no reply */ })
	}
	back = func(i int) {
		if i < 0 {
			if onRTT != nil {
				onRTT(s.Now() - start)
			}
			return
		}
		p[i].Send(s, probeBytes, func() { back(i - 1) }, func() { /* lost */ })
	}
	out(0)
}
