package netsim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := NewSimulator()
	var order []int
	s.Schedule(3*time.Millisecond, func() { order = append(order, 3) })
	s.Schedule(1*time.Millisecond, func() { order = append(order, 1) })
	s.Schedule(2*time.Millisecond, func() { order = append(order, 2) })
	end := s.Run()
	if end != 3*time.Millisecond {
		t.Errorf("end time = %v", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := NewSimulator()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestScheduleInPastClamps(t *testing.T) {
	s := NewSimulator()
	fired := false
	s.Schedule(time.Second, func() {
		s.Schedule(0, func() { fired = true }) // "in the past"
	})
	end := s.Run()
	if !fired {
		t.Error("past event never fired")
	}
	if end != time.Second {
		t.Errorf("end = %v", end)
	}
}

func TestRunUntil(t *testing.T) {
	s := NewSimulator()
	a, b := false, false
	s.Schedule(time.Second, func() { a = true })
	s.Schedule(2*time.Second, func() { b = true })
	s.RunUntil(1500 * time.Millisecond)
	if !a || b {
		t.Errorf("a=%v b=%v after RunUntil(1.5s)", a, b)
	}
	if s.Now() != 1500*time.Millisecond {
		t.Errorf("now = %v", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d", s.Pending())
	}
	s.Run()
	if !b {
		t.Error("b never fired")
	}
}

func TestNilAndNegativeSchedules(t *testing.T) {
	s := NewSimulator()
	s.Schedule(time.Second, nil) // must not panic or queue
	if s.Pending() != 0 {
		t.Error("nil event queued")
	}
}

func TestLinkBandwidth(t *testing.T) {
	// 10 Mbit over a 10 Mbps link = 1 s serialization + 10 ms propagation.
	s := NewSimulator()
	l := NewLink("dl", 10e6, 10*time.Millisecond, 0)
	var done time.Duration
	l.Send(s, 10e6/8, func() { done = s.Now() }, nil)
	s.Run()
	want := time.Second + 10*time.Millisecond
	if diff := done - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("delivery at %v, want %v", done, want)
	}
	if l.Delivered != 10e6/8 {
		t.Errorf("delivered bytes = %d", l.Delivered)
	}
}

func TestLinkSerialization(t *testing.T) {
	// Two back-to-back packets: the second waits for the first.
	s := NewSimulator()
	l := NewLink("dl", 8e6, 0, 0) // 1 MB/s
	var t1, t2 time.Duration
	l.Send(s, 1e6, func() { t1 = s.Now() }, nil)
	l.Send(s, 1e6, func() { t2 = s.Now() }, nil)
	s.Run()
	if t1 < 990*time.Millisecond || t1 > 1010*time.Millisecond {
		t.Errorf("first packet at %v", t1)
	}
	if t2 < 1990*time.Millisecond || t2 > 2010*time.Millisecond {
		t.Errorf("second packet at %v, want ~2s (serialized)", t2)
	}
}

func TestLinkDropTail(t *testing.T) {
	s := NewSimulator()
	l := NewLink("dl", 8e6, 0, 1500)
	delivered, dropped := 0, 0
	l.Send(s, 1000, func() { delivered++ }, func() { dropped++ })
	l.Send(s, 1000, func() { delivered++ }, func() { dropped++ }) // exceeds queue
	s.Run()
	if delivered != 1 || dropped != 1 {
		t.Errorf("delivered=%d dropped=%d, want 1/1", delivered, dropped)
	}
	if l.Dropped != 1000 {
		t.Errorf("dropped bytes = %d", l.Dropped)
	}
}

func TestZeroByteSend(t *testing.T) {
	s := NewSimulator()
	l := NewLink("dl", 1e6, 5*time.Millisecond, 0)
	var at time.Duration = -1
	l.Send(s, 0, func() { at = s.Now() }, nil)
	s.Run()
	if at != 5*time.Millisecond {
		t.Errorf("zero-byte delivery at %v, want prop only", at)
	}
}

func TestNewLinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero rate")
		}
	}()
	NewLink("bad", 0, 0, 0)
}

func TestTransferPipelining(t *testing.T) {
	// Two equal links: pipelined transfer takes ~ one serialization plus one
	// chunk time, not two serializations.
	s := NewSimulator()
	a := NewLink("a", 8e6, 0, 0)
	b := NewLink("b", 8e6, 0, 0)
	var done time.Duration
	total := int64(1e6) // 1 s at 1 MB/s
	Transfer(s, Path{a, b}, total, 64<<10, func() { done = s.Now() }, nil)
	s.Run()
	if done < time.Second {
		t.Errorf("transfer finished at %v, faster than line rate", done)
	}
	if done > 1200*time.Millisecond {
		t.Errorf("transfer at %v: pipelining broken (want ~1.07s, not ~2s)", done)
	}
}

func TestTransferBottleneck(t *testing.T) {
	// The slow link dominates.
	s := NewSimulator()
	fast := NewLink("fast", 80e6, 0, 0)
	slow := NewLink("slow", 8e6, 0, 0)
	var done time.Duration
	Transfer(s, Path{fast, slow}, 1e6, 64<<10, func() { done = s.Now() }, nil)
	s.Run()
	if done < time.Second || done > 1200*time.Millisecond {
		t.Errorf("bottleneck transfer at %v, want ~1s", done)
	}
}

func TestTransferEmptyAndDegenerate(t *testing.T) {
	s := NewSimulator()
	called := 0
	Transfer(s, nil, 100, 10, func() { called++ }, nil)
	Transfer(s, Path{NewLink("l", 1e6, 0, 0)}, 0, 10, func() { called++ }, nil)
	s.Run()
	if called != 2 {
		t.Errorf("degenerate transfers complete = %d, want 2", called)
	}
}

func TestTransferWithDrops(t *testing.T) {
	s := NewSimulator()
	l := NewLink("lossy", 8e6, 0, 100<<10) // 100 KB queue
	drops := 0
	completed := false
	// 10 MB dumped at once into a 100 KB queue: most chunks drop.
	Transfer(s, Path{l}, 10<<20, 64<<10, func() { completed = true }, func() { drops++ })
	s.Run()
	if drops == 0 {
		t.Error("expected drops with a tiny queue")
	}
	if !completed {
		t.Error("transfer should still report completion of surviving chunks")
	}
}

func TestProbeIdleVsLoaded(t *testing.T) {
	// An idle probe sees ~2*prop; a probe during a bulk transfer sees the
	// queue — the bufferbloat effect.
	mkPath := func() Path {
		return Path{NewLink("dl", 50e6, 15*time.Millisecond, 0)}
	}
	// Idle.
	s1 := NewSimulator()
	p1 := mkPath()
	var idle time.Duration
	Probe(s1, p1, 64, func(rtt time.Duration) { idle = rtt })
	s1.Run()
	if idle < 30*time.Millisecond || idle > 32*time.Millisecond {
		t.Errorf("idle RTT = %v, want ~30ms", idle)
	}
	// Loaded: 25 MB in flight on a 50 Mbps link = 4 s of queue.
	s2 := NewSimulator()
	p2 := mkPath()
	Transfer(s2, p2, 25<<20, 64<<10, nil, nil)
	var loaded time.Duration
	s2.Schedule(10*time.Millisecond, func() {
		Probe(s2, p2, 64, func(rtt time.Duration) { loaded = rtt })
	})
	s2.Run()
	if loaded < 200*time.Millisecond {
		t.Errorf("loaded RTT = %v, want inflated (>200ms, paper's bufferbloat)", loaded)
	}
}

func TestPathPropagationDelay(t *testing.T) {
	p := Path{
		NewLink("a", 1e6, 10*time.Millisecond, 0),
		NewLink("b", 1e6, 5*time.Millisecond, 0),
	}
	if d := p.PropagationDelay(); d != 15*time.Millisecond {
		t.Errorf("propagation = %v", d)
	}
}

func TestMaxQueueObserved(t *testing.T) {
	s := NewSimulator()
	l := NewLink("dl", 8e6, 0, 0)
	for i := 0; i < 10; i++ {
		l.Send(s, 1000, nil, nil)
	}
	if l.MaxQueueObs != 10000 {
		t.Errorf("max queue = %d, want 10000", l.MaxQueueObs)
	}
	s.Run()
	if l.QueuedBytes() != 0 {
		t.Errorf("queue not drained: %d", l.QueuedBytes())
	}
}
