package netsim

import (
	"time"
)

// This file adds loss injection and a simple reliable transfer on top of the
// raw links: a stop-and-wait-per-chunk ARQ with a retransmission budget.
// Experiments use it to verify that the latency conclusions survive packet
// loss on the satellite access link.

// LossyLink wraps a Link with independent random loss. Loss is decided by a
// deterministic counter-based pattern (every Nth chunk), keeping simulations
// reproducible without threading a random source through the event loop.
type LossyLink struct {
	*Link
	// DropEvery drops every Nth send (0 disables injection).
	DropEvery int
	sends     int
}

// NewLossyLink wraps a link with periodic loss.
func NewLossyLink(l *Link, dropEvery int) *LossyLink {
	return &LossyLink{Link: l, DropEvery: dropEvery}
}

// Send injects loss before delegating to the underlying link.
func (l *LossyLink) Send(s *Simulator, n int64, onDelivered func(), onDropped func()) {
	l.sends++
	if l.DropEvery > 0 && l.sends%l.DropEvery == 0 {
		l.Dropped += n
		if onDropped != nil {
			s.Schedule(s.Now(), onDropped)
		}
		return
	}
	l.Link.Send(s, n, onDelivered, onDropped)
}

// Sender abstracts Link and LossyLink for reliable transfers.
type Sender interface {
	Send(s *Simulator, n int64, onDelivered func(), onDropped func())
	TxTime(n int64) time.Duration
}

var (
	_ Sender = (*Link)(nil)
	_ Sender = (*LossyLink)(nil)
)

// ReliableResult summarizes a reliable transfer.
type ReliableResult struct {
	Completed   bool
	FinishedAt  time.Duration
	Retransmits int
	GaveUp      bool
}

// ReliableTransfer moves total bytes over a single (possibly lossy) sender
// using per-chunk retransmission: a dropped chunk is detected after the
// retransmission timeout rto and retried up to maxRetries times before the
// transfer aborts. onDone receives the outcome when the transfer finishes
// or gives up.
//
// The model is deliberately simpler than TCP — the experiments need loss to
// cost retransmission time, not a congestion-control study.
func ReliableTransfer(s *Simulator, link Sender, total, chunkBytes int64, maxRetries int, rto time.Duration, onDone func(ReliableResult)) {
	if total <= 0 {
		s.Schedule(s.Now(), func() {
			if onDone != nil {
				onDone(ReliableResult{Completed: true, FinishedAt: s.Now()})
			}
		})
		return
	}
	if chunkBytes <= 0 {
		chunkBytes = 64 << 10
	}
	if rto <= 0 {
		rto = 3 * link.TxTime(chunkBytes)
	}
	res := &ReliableResult{}
	remaining := total
	var sendNext func()
	sendNext = func() {
		if remaining <= 0 {
			res.Completed = true
			res.FinishedAt = s.Now()
			if onDone != nil {
				onDone(*res)
			}
			return
		}
		n := chunkBytes
		if n > remaining {
			n = remaining
		}
		attempts := 0
		var try func()
		try = func() {
			link.Send(s, n,
				func() {
					remaining -= n
					sendNext()
				},
				func() {
					attempts++
					res.Retransmits++
					if attempts > maxRetries {
						res.GaveUp = true
						res.FinishedAt = s.Now()
						if onDone != nil {
							onDone(*res)
						}
						return
					}
					// Loss is noticed only after the timeout fires.
					s.After(rto, try)
				})
		}
		try()
	}
	sendNext()
}
