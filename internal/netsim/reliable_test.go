package netsim

import (
	"testing"
	"time"
)

func TestLossyLinkDropsPeriodically(t *testing.T) {
	s := NewSimulator()
	l := NewLossyLink(NewLink("dl", 8e6, 0, 0), 3)
	delivered, dropped := 0, 0
	for i := 0; i < 9; i++ {
		l.Send(s, 1000, func() { delivered++ }, func() { dropped++ })
	}
	s.Run()
	if dropped != 3 || delivered != 6 {
		t.Errorf("delivered=%d dropped=%d, want 6/3", delivered, dropped)
	}
	if l.Dropped != 3000 {
		t.Errorf("dropped bytes = %d", l.Dropped)
	}
}

func TestLossyLinkZeroDisables(t *testing.T) {
	s := NewSimulator()
	l := NewLossyLink(NewLink("dl", 8e6, 0, 0), 0)
	delivered := 0
	for i := 0; i < 10; i++ {
		l.Send(s, 100, func() { delivered++ }, nil)
	}
	s.Run()
	if delivered != 10 {
		t.Errorf("delivered = %d with loss disabled", delivered)
	}
}

func TestLossyLinkDropEveryOneDropsAll(t *testing.T) {
	s := NewSimulator()
	l := NewLossyLink(NewLink("dl", 8e6, 0, 0), 1)
	delivered, dropped := 0, 0
	for i := 0; i < 5; i++ {
		l.Send(s, 200, func() { delivered++ }, func() { dropped++ })
	}
	s.Run()
	if delivered != 0 || dropped != 5 {
		t.Errorf("delivered=%d dropped=%d, want 0/5", delivered, dropped)
	}
	if l.Dropped != 1000 {
		t.Errorf("dropped bytes = %d, want 1000", l.Dropped)
	}
}

func TestLossyLinkNilOnDropped(t *testing.T) {
	// A dropped send with no drop callback must neither panic nor deliver;
	// the byte counter still advances.
	s := NewSimulator()
	l := NewLossyLink(NewLink("dl", 8e6, 0, 0), 1)
	delivered := 0
	l.Send(s, 300, func() { delivered++ }, nil)
	s.Run()
	if delivered != 0 {
		t.Errorf("delivered = %d from an all-drop link", delivered)
	}
	if l.Dropped != 300 {
		t.Errorf("dropped bytes = %d, want 300", l.Dropped)
	}
}

// TestReliableTransferRetryAccounting pins the exact retry arithmetic: with
// every second send dropped, a 4-chunk transfer loses chunks 2, 3 and 4 on
// their first attempt (sends 2, 4 and 6) and delivers each on the retry, so
// exactly 3 retransmissions and 3 chunks of dropped bytes.
func TestReliableTransferRetryAccounting(t *testing.T) {
	s := NewSimulator()
	l := NewLossyLink(NewLink("dl", 8e6, 0, 0), 2)
	var res ReliableResult
	const chunk = 64 << 10
	ReliableTransfer(s, l, 4*chunk, chunk, 5, 10*time.Millisecond, func(r ReliableResult) { res = r })
	s.Run()
	if !res.Completed || res.GaveUp {
		t.Fatalf("transfer failed: %+v", res)
	}
	if res.Retransmits != 3 {
		t.Errorf("retransmits = %d, want 3", res.Retransmits)
	}
	if l.Dropped != 3*chunk {
		t.Errorf("dropped bytes = %d, want %d", l.Dropped, 3*chunk)
	}
}

func TestReliableTransferLossless(t *testing.T) {
	s := NewSimulator()
	l := NewLink("dl", 8e6, 5*time.Millisecond, 0) // 1 MB/s
	var res ReliableResult
	ReliableTransfer(s, l, 1e6, 64<<10, 3, 0, func(r ReliableResult) { res = r })
	s.Run()
	if !res.Completed || res.GaveUp {
		t.Fatalf("transfer failed: %+v", res)
	}
	if res.Retransmits != 0 {
		t.Errorf("retransmits = %d on a lossless link", res.Retransmits)
	}
	// Stop-and-wait chunks don't pipeline, but serialization dominates here:
	// ~1s of bytes plus per-chunk propagation (16 chunks * 5 ms).
	want := time.Second + 16*5*time.Millisecond
	if res.FinishedAt < want-50*time.Millisecond || res.FinishedAt > want+150*time.Millisecond {
		t.Errorf("finished at %v, want ~%v", res.FinishedAt, want)
	}
}

func TestReliableTransferRecoversFromLoss(t *testing.T) {
	s := NewSimulator()
	l := NewLossyLink(NewLink("dl", 8e6, 0, 0), 4) // drop every 4th send
	var res ReliableResult
	ReliableTransfer(s, l, 1e6, 64<<10, 10, 50*time.Millisecond, func(r ReliableResult) { res = r })
	s.Run()
	if !res.Completed || res.GaveUp {
		t.Fatalf("transfer did not recover: %+v", res)
	}
	if res.Retransmits == 0 {
		t.Error("loss injected but no retransmissions recorded")
	}
	// Compare against lossless: the lossy transfer must be slower.
	s2 := NewSimulator()
	var clean ReliableResult
	ReliableTransfer(s2, NewLink("dl", 8e6, 0, 0), 1e6, 64<<10, 10, 50*time.Millisecond, func(r ReliableResult) { clean = r })
	s2.Run()
	if res.FinishedAt <= clean.FinishedAt {
		t.Errorf("lossy transfer (%v) not slower than clean (%v)", res.FinishedAt, clean.FinishedAt)
	}
}

func TestReliableTransferGivesUp(t *testing.T) {
	s := NewSimulator()
	l := NewLossyLink(NewLink("dl", 8e6, 0, 0), 1) // drop everything
	var res ReliableResult
	done := false
	ReliableTransfer(s, l, 1e6, 64<<10, 2, 10*time.Millisecond, func(r ReliableResult) { res = r; done = true })
	s.Run()
	if !done {
		t.Fatal("onDone never fired")
	}
	if res.Completed || !res.GaveUp {
		t.Errorf("expected give-up: %+v", res)
	}
	if res.Retransmits != 3 { // initial + 2 retries, all counted as drops
		t.Errorf("retransmits = %d, want 3", res.Retransmits)
	}
}

func TestReliableTransferEmpty(t *testing.T) {
	s := NewSimulator()
	var res ReliableResult
	ReliableTransfer(s, NewLink("dl", 1e6, 0, 0), 0, 10, 1, 0, func(r ReliableResult) { res = r })
	s.Run()
	if !res.Completed {
		t.Error("empty transfer should complete")
	}
}
