package netsim

import (
	"testing"
	"time"
)

// TestTapObservesQueueDropsDeliveries drives a slow bottleneck link past its
// queue bound and checks the tap sees every enqueue, drop and delivery the
// link's own counters record.
func TestTapObservesQueueDropsDeliveries(t *testing.T) {
	s := NewSimulator()
	// 1 KB queue, slow rate: the second and third packets queue, the fourth
	// drops.
	l := NewLink("bottleneck", 8_000, time.Millisecond, 1024)

	var queues, drops, delivers int
	var maxDepth, dropped, delivered int64
	s.SetTap(&Tap{
		OnQueue: func(link *Link, depth int64, at time.Duration) {
			if link != l {
				t.Error("wrong link in OnQueue")
			}
			queues++
			if depth > maxDepth {
				maxDepth = depth
			}
		},
		OnDrop: func(link *Link, n int64, at time.Duration) {
			drops++
			dropped += n
		},
		OnDeliver: func(link *Link, n int64, at time.Duration) {
			delivers++
			delivered += n
		},
	})

	for i := 0; i < 4; i++ {
		l.Send(s, 512, nil, nil)
	}
	s.Run()

	if queues != 2 || drops != 2 || delivers != 2 {
		t.Fatalf("queues=%d drops=%d delivers=%d, want 2/2/2", queues, drops, delivers)
	}
	if maxDepth != 1024 {
		t.Errorf("max observed depth = %d, want 1024", maxDepth)
	}
	if dropped != l.Dropped || delivered != l.Delivered {
		t.Errorf("tap totals (drop %d, deliver %d) disagree with link counters (%d, %d)",
			dropped, delivered, l.Dropped, l.Delivered)
	}
}

// TestTapOptionalAndRemovable: a nil tap and nil callbacks must not change
// behaviour.
func TestTapOptionalAndRemovable(t *testing.T) {
	s := NewSimulator()
	l := NewLink("plain", 1e6, 0, 0)
	s.SetTap(&Tap{}) // all callbacks nil
	done := 0
	l.Send(s, 100, func() { done++ }, nil)
	s.SetTap(nil)
	l.Send(s, 100, func() { done++ }, nil)
	s.Run()
	if done != 2 {
		t.Fatalf("deliveries = %d, want 2", done)
	}
}

func TestLinkUtilization(t *testing.T) {
	s := NewSimulator()
	l := NewLink("u", 8_000, 0, 0) // 1000 bytes/s
	l.Send(s, 500, nil, nil)       // 0.5 s of serialization
	s.Run()
	if got := l.Utilization(time.Second); got < 0.49 || got > 0.51 {
		t.Errorf("utilization = %v, want ~0.5", got)
	}
	if l.Utilization(0) != 0 {
		t.Error("zero window must read 0")
	}
	if l.Utilization(time.Nanosecond) != 1 {
		t.Error("overfull window must clamp to 1")
	}
}
