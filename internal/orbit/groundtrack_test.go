package orbit

import (
	"math"
	"testing"
	"time"

	"spacecdn/internal/geo"
)

func TestGroundTrack(t *testing.T) {
	e := Elements{AltitudeKm: 550, InclinationDeg: 53}
	track := e.GroundTrack(0, e.Period(), 30*time.Second)
	if len(track) < 100 {
		t.Fatalf("track samples = %d", len(track))
	}
	maxLat, minLat := -90.0, 90.0
	for i, p := range track {
		if !p.Valid() {
			t.Fatalf("invalid track point %d: %v", i, p)
		}
		if p.LatDeg > maxLat {
			maxLat = p.LatDeg
		}
		if p.LatDeg < minLat {
			minLat = p.LatDeg
		}
		// Successive sub-points move ~200 km per 30 s along the ground.
		if i > 0 {
			d := geo.HaversineKm(track[i-1], p)
			if d < 120 || d > 260 {
				t.Fatalf("track step %d moved %v km, want ~200", i, d)
			}
		}
	}
	// The track sweeps the full latitude band of the inclination.
	if maxLat < 50 || minLat > -50 {
		t.Errorf("latitude sweep [%v, %v], want +/-53-ish", minLat, maxLat)
	}
	if maxLat > 53.1 || minLat < -53.1 {
		t.Errorf("latitude exceeded inclination: [%v, %v]", minLat, maxLat)
	}
}

func TestGroundTrackWestwardDrift(t *testing.T) {
	// Equator crossings drift westward by ~24 degrees per orbit.
	e := Elements{AltitudeKm: 550, InclinationDeg: 53}
	first := e.SubPoint(0)
	after := e.SubPoint(e.Period())
	drift := geo.NormalizeLonDeg(after.LonDeg - first.LonDeg)
	if math.Abs(drift+24) > 2 {
		t.Errorf("per-orbit drift = %v deg, want ~-24", drift)
	}
}

func TestGroundTrackDegenerate(t *testing.T) {
	e := Elements{AltitudeKm: 550, InclinationDeg: 53}
	if e.GroundTrack(0, time.Minute, 0) != nil {
		t.Error("zero step should return nil")
	}
	if e.GroundTrack(time.Minute, 0, time.Second) != nil {
		t.Error("empty range should return nil")
	}
}
