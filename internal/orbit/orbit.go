// Package orbit implements circular low-Earth-orbit propagation and
// Walker-delta constellation geometry.
//
// Satellites are propagated on ideal circular orbits (no J2 drift, no drag):
// for latency studies over minutes-to-hours horizons the dominant effects are
// orbital geometry and Earth rotation, both of which are modelled exactly.
// Positions are reported in the Earth-centered Earth-fixed (ECEF) frame so
// they compose directly with ground coordinates from package geo.
package orbit

import (
	"fmt"
	"math"
	"time"

	"spacecdn/internal/geo"
)

const (
	// MuEarth is the standard gravitational parameter of Earth, km^3/s^2.
	MuEarth = 398600.4418
	// EarthRotationRadPerSec is Earth's sidereal rotation rate.
	EarthRotationRadPerSec = 7.2921150e-5
	// LightSpeedKmPerSec is the speed of light in vacuum, used for
	// free-space (radio and laser ISL) propagation delay.
	LightSpeedKmPerSec = 299792.458
)

// Elements describes a circular orbit by its altitude, inclination, right
// ascension of the ascending node (RAAN) and the phase of the satellite
// along the orbit at epoch t=0.
type Elements struct {
	AltitudeKm     float64
	InclinationDeg float64
	RAANDeg        float64
	PhaseDeg       float64 // argument of latitude at epoch
}

// Validate reports a descriptive error for physically meaningless elements.
func (e Elements) Validate() error {
	if e.AltitudeKm <= 0 {
		return fmt.Errorf("orbit: altitude must be positive, got %v", e.AltitudeKm)
	}
	if e.InclinationDeg < 0 || e.InclinationDeg > 180 {
		return fmt.Errorf("orbit: inclination must be in [0,180], got %v", e.InclinationDeg)
	}
	return nil
}

// RadiusKm returns the orbital radius from the Earth's centre.
func (e Elements) RadiusKm() float64 { return geo.EarthRadiusKm + e.AltitudeKm }

// MeanMotionRadPerSec returns the angular rate of the circular orbit.
func (e Elements) MeanMotionRadPerSec() float64 {
	r := e.RadiusKm()
	return math.Sqrt(MuEarth / (r * r * r))
}

// Period returns the orbital period.
func (e Elements) Period() time.Duration {
	return time.Duration(2 * math.Pi / e.MeanMotionRadPerSec() * float64(time.Second))
}

// OrbitalSpeedKmPerSec returns the magnitude of the orbital velocity.
func (e Elements) OrbitalSpeedKmPerSec() float64 {
	return e.MeanMotionRadPerSec() * e.RadiusKm()
}

// PositionECI returns the satellite position in the Earth-centered inertial
// frame at time t after epoch.
func (e Elements) PositionECI(t time.Duration) geo.Vec3 {
	n := e.MeanMotionRadPerSec()
	u := e.PhaseDeg*math.Pi/180 + n*t.Seconds() // argument of latitude
	inc := e.InclinationDeg * math.Pi / 180
	raan := e.RAANDeg * math.Pi / 180
	r := e.RadiusKm()

	// Position in the orbital plane, then rotate by inclination about X,
	// then by RAAN about Z.
	x := r * math.Cos(u)
	y := r * math.Sin(u)
	// Rx(inc)
	y2 := y * math.Cos(inc)
	z2 := y * math.Sin(inc)
	// Rz(raan)
	cr, sr := math.Cos(raan), math.Sin(raan)
	return geo.Vec3{
		X: x*cr - y2*sr,
		Y: x*sr + y2*cr,
		Z: z2,
	}
}

// PositionECEF returns the satellite position in the rotating Earth-fixed
// frame at time t after epoch. At t=0 the ECI and ECEF frames coincide.
func (e Elements) PositionECEF(t time.Duration) geo.Vec3 {
	p := e.PositionECI(t)
	theta := EarthRotationRadPerSec * t.Seconds()
	// ECEF = Rz(-theta) * ECI
	c, s := math.Cos(theta), math.Sin(theta)
	return geo.Vec3{
		X: p.X*c + p.Y*s,
		Y: -p.X*s + p.Y*c,
		Z: p.Z,
	}
}

// SubPoint returns the geographic point directly beneath the satellite at
// time t.
func (e Elements) SubPoint(t time.Duration) geo.Point {
	return e.PositionECEF(t).ToPoint()
}

// Walker describes a Walker-delta constellation i:T/P/F — T satellites in P
// evenly spaced planes at common inclination i, with inter-plane phasing
// factor F.
type Walker struct {
	AltitudeKm     float64
	InclinationDeg float64
	Planes         int
	SatsPerPlane   int
	PhasingF       int
}

// StarlinkShell1 is the configuration the paper simulates: Starlink's first
// shell, 72 planes x 22 satellites at 550 km and 53 degrees inclination.
// F=17 gives the checkerboard phasing commonly attributed to Shell 1.
func StarlinkShell1() Walker {
	return Walker{
		AltitudeKm:     550,
		InclinationDeg: 53,
		Planes:         72,
		SatsPerPlane:   22,
		PhasingF:       17,
	}
}

// StarlinkGen2 is a three-shell approximation of Starlink's Gen2 system as
// filed with the FCC: 7,500 satellites split across 525/530/535 km shells at
// 53, 43 and 33 degrees inclination. Plane counts and phasing follow the
// Gen2A modification; exact slot arithmetic matters less than the shape —
// three dense shells at distinct altitudes and inclinations.
func StarlinkGen2() []Walker {
	return []Walker{
		{AltitudeKm: 525, InclinationDeg: 53, Planes: 28, SatsPerPlane: 120, PhasingF: 13},
		{AltitudeKm: 530, InclinationDeg: 43, Planes: 28, SatsPerPlane: 120, PhasingF: 13},
		{AltitudeKm: 535, InclinationDeg: 33, Planes: 13, SatsPerPlane: 60, PhasingF: 5},
	}
}

// Kuiper is Amazon's Project Kuiper first-generation system: 3,236
// satellites across three shells at 630/610/590 km and 51.9/42/33 degrees
// inclination, per the FCC authorization.
func Kuiper() []Walker {
	return []Walker{
		{AltitudeKm: 630, InclinationDeg: 51.9, Planes: 34, SatsPerPlane: 34, PhasingF: 11},
		{AltitudeKm: 610, InclinationDeg: 42, Planes: 36, SatsPerPlane: 36, PhasingF: 13},
		{AltitudeKm: 590, InclinationDeg: 33, Planes: 28, SatsPerPlane: 28, PhasingF: 9},
	}
}

// Total returns the number of satellites in the constellation.
func (w Walker) Total() int { return w.Planes * w.SatsPerPlane }

// Validate reports a descriptive error for a malformed configuration.
func (w Walker) Validate() error {
	if w.Planes <= 0 || w.SatsPerPlane <= 0 {
		return fmt.Errorf("orbit: walker needs positive planes and sats/plane, got %d x %d",
			w.Planes, w.SatsPerPlane)
	}
	if w.PhasingF < 0 || w.PhasingF >= w.Planes {
		return fmt.Errorf("orbit: walker phasing F must be in [0,%d), got %d", w.Planes, w.PhasingF)
	}
	return (Elements{AltitudeKm: w.AltitudeKm, InclinationDeg: w.InclinationDeg}).Validate()
}

// Elements returns the orbital elements of satellite s (0-based) in plane p
// (0-based).
func (w Walker) Elements(p, s int) Elements {
	raan := 360 * float64(p) / float64(w.Planes)
	phase := 360*float64(s)/float64(w.SatsPerPlane) +
		360*float64(w.PhasingF)*float64(p)/float64(w.Planes*w.SatsPerPlane)
	return Elements{
		AltitudeKm:     w.AltitudeKm,
		InclinationDeg: w.InclinationDeg,
		RAANDeg:        math.Mod(raan, 360),
		PhaseDeg:       math.Mod(phase, 360),
	}
}

// All returns the elements of every satellite, indexed plane-major:
// index = plane*SatsPerPlane + sat.
func (w Walker) All() []Elements {
	out := make([]Elements, 0, w.Total())
	for p := 0; p < w.Planes; p++ {
		for s := 0; s < w.SatsPerPlane; s++ {
			out = append(out, w.Elements(p, s))
		}
	}
	return out
}

// PropagationDelay returns the one-way free-space propagation delay over a
// straight-line distance of km kilometres.
func PropagationDelay(km float64) time.Duration {
	return time.Duration(km / LightSpeedKmPerSec * float64(time.Second))
}

// RevisitPeriod returns the approximate interval after which some satellite
// of the same plane passes over the location previously served — the paper's
// "satellites revisit a location roughly every 90 minutes".
func (w Walker) RevisitPeriod() time.Duration {
	return (Elements{AltitudeKm: w.AltitudeKm, InclinationDeg: w.InclinationDeg}).Period()
}

// GroundTrack samples the satellite's sub-point over [from, to) with the
// given step. The track drifts westward between orbits as the Earth rotates
// beneath the orbit plane.
func (e Elements) GroundTrack(from, to, step time.Duration) []geo.Point {
	if step <= 0 || to <= from {
		return nil
	}
	var out []geo.Point
	for t := from; t < to; t += step {
		out = append(out, e.SubPoint(t))
	}
	return out
}
