package orbit

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"spacecdn/internal/geo"
)

func shell1Elements() Elements {
	return Elements{AltitudeKm: 550, InclinationDeg: 53}
}

func TestPeriodShell1(t *testing.T) {
	// A 550 km circular orbit has a period of roughly 95.6 minutes.
	p := shell1Elements().Period()
	if p < 94*time.Minute || p > 97*time.Minute {
		t.Errorf("period = %v, want ~95.6 min", p)
	}
}

func TestOrbitalSpeed(t *testing.T) {
	// The paper quotes ~27,000 km/h (7.5 km/s) for LEO satellites.
	v := shell1Elements().OrbitalSpeedKmPerSec()
	if v < 7.4 || v > 7.7 {
		t.Errorf("orbital speed = %v km/s, want ~7.6", v)
	}
}

func TestAltitudeInvariant(t *testing.T) {
	// Circular propagation must keep the radius constant in both frames.
	e := Elements{AltitudeKm: 550, InclinationDeg: 53, RAANDeg: 40, PhaseDeg: 10}
	prop := func(secs int64) bool {
		dt := time.Duration(secs%86400) * time.Second
		eci := e.PositionECI(dt).Norm()
		ecef := e.PositionECEF(dt).Norm()
		want := geo.EarthRadiusKm + 550
		return math.Abs(eci-want) < 1e-6 && math.Abs(ecef-want) < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("altitude drifted: %v", err)
	}
}

func TestInclinationBoundsLatitude(t *testing.T) {
	// The sub-satellite latitude can never exceed the inclination.
	e := Elements{AltitudeKm: 550, InclinationDeg: 53, RAANDeg: 123, PhaseDeg: 77}
	maxLat := 0.0
	for s := 0; s < 6000; s += 10 {
		lat := math.Abs(e.SubPoint(time.Duration(s) * time.Second).LatDeg)
		if lat > maxLat {
			maxLat = lat
		}
	}
	if maxLat > 53.01 {
		t.Errorf("max latitude %v exceeds inclination", maxLat)
	}
	// And over a full period it should actually reach near the inclination.
	if maxLat < 52 {
		t.Errorf("max latitude %v should approach 53", maxLat)
	}
}

func TestPeriodicityECI(t *testing.T) {
	e := Elements{AltitudeKm: 550, InclinationDeg: 53, RAANDeg: 10, PhaseDeg: 20}
	p0 := e.PositionECI(0)
	p1 := e.PositionECI(e.Period())
	if d := p0.Sub(p1).Norm(); d > 1.0 {
		t.Errorf("position after one period differs by %v km", d)
	}
}

func TestECEFRotation(t *testing.T) {
	// An equatorial satellite at zero inclination placed at lon 0 drifts
	// westward in ECEF more slowly than Earth rotates beneath it (prograde
	// orbit is faster than Earth rotation, so it drifts eastward relative to
	// the inertial frame but its ground track moves westward per orbit).
	e := Elements{AltitudeKm: 550, InclinationDeg: 0}
	start := e.SubPoint(0)
	afterOnePeriod := e.SubPoint(e.Period())
	if math.Abs(start.LonDeg) > 1e-6 {
		t.Fatalf("expected start at lon 0, got %v", start.LonDeg)
	}
	// Earth rotates ~24 degrees east in ~95.6 min, so the ground track
	// shifts ~24 degrees west.
	shift := geo.NormalizeLonDeg(afterOnePeriod.LonDeg - start.LonDeg)
	if shift > -20 || shift < -28 {
		t.Errorf("ground-track shift per orbit = %v deg, want ~-24", shift)
	}
}

func TestWalkerShell1Shape(t *testing.T) {
	w := StarlinkShell1()
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Total() != 1584 {
		t.Fatalf("Shell 1 total = %d, want 1584", w.Total())
	}
	all := w.All()
	if len(all) != 1584 {
		t.Fatalf("All() returned %d elements", len(all))
	}
	// RAANs must be evenly spaced over 360 degrees: plane spacing 5 deg.
	e0 := w.Elements(0, 0)
	e1 := w.Elements(1, 0)
	if d := math.Abs(e1.RAANDeg - e0.RAANDeg); math.Abs(d-5) > 1e-9 {
		t.Errorf("plane spacing = %v deg, want 5", d)
	}
	// In-plane spacing: 360/22 degrees.
	s0 := w.Elements(0, 0)
	s1 := w.Elements(0, 1)
	if d := math.Abs(s1.PhaseDeg - s0.PhaseDeg); math.Abs(d-360.0/22) > 1e-9 {
		t.Errorf("in-plane spacing = %v deg, want %v", d, 360.0/22)
	}
}

func TestWalkerValidation(t *testing.T) {
	bad := []Walker{
		{AltitudeKm: 550, InclinationDeg: 53, Planes: 0, SatsPerPlane: 22},
		{AltitudeKm: 550, InclinationDeg: 53, Planes: 72, SatsPerPlane: 0},
		{AltitudeKm: -1, InclinationDeg: 53, Planes: 72, SatsPerPlane: 22},
		{AltitudeKm: 550, InclinationDeg: 270, Planes: 72, SatsPerPlane: 22},
		{AltitudeKm: 550, InclinationDeg: 53, Planes: 72, SatsPerPlane: 22, PhasingF: 72},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, w)
		}
	}
}

func TestElementsValidation(t *testing.T) {
	if err := (Elements{AltitudeKm: 550, InclinationDeg: 53}).Validate(); err != nil {
		t.Errorf("valid elements rejected: %v", err)
	}
	if err := (Elements{AltitudeKm: 0, InclinationDeg: 53}).Validate(); err == nil {
		t.Error("zero altitude accepted")
	}
}

func TestUniquePositions(t *testing.T) {
	// No two Shell 1 satellites may occupy (nearly) the same position.
	w := StarlinkShell1()
	all := w.All()
	pos := make([]geo.Vec3, len(all))
	for i, e := range all {
		pos[i] = e.PositionECEF(0)
	}
	// Spot-check pairs rather than all 1584^2.
	for i := 0; i < len(pos); i += 97 {
		for j := i + 1; j < len(pos); j += 131 {
			if pos[i].Sub(pos[j]).Norm() < 1 {
				t.Fatalf("satellites %d and %d overlap", i, j)
			}
		}
	}
}

func TestPropagationDelay(t *testing.T) {
	// 299.79 km of vacuum is ~1 ms.
	d := PropagationDelay(LightSpeedKmPerSec / 1000)
	if d < 999*time.Microsecond || d > 1001*time.Microsecond {
		t.Errorf("PropagationDelay = %v, want ~1ms", d)
	}
	if PropagationDelay(0) != 0 {
		t.Error("zero distance should have zero delay")
	}
}

func TestRevisitPeriod(t *testing.T) {
	// The paper: "Satellites in LSN orbits revisit a location roughly every
	// 90 minutes".
	p := StarlinkShell1().RevisitPeriod()
	if p < 85*time.Minute || p > 100*time.Minute {
		t.Errorf("revisit period = %v, want ~90-96 min", p)
	}
}

func TestNeighborSatDistanceStable(t *testing.T) {
	// Intra-plane neighbours keep a constant separation on a circular orbit.
	w := StarlinkShell1()
	a := w.Elements(0, 0)
	b := w.Elements(0, 1)
	d0 := a.PositionECEF(0).Sub(b.PositionECEF(0)).Norm()
	for _, dt := range []time.Duration{time.Minute, 10 * time.Minute, time.Hour} {
		d := a.PositionECEF(dt).Sub(b.PositionECEF(dt)).Norm()
		if math.Abs(d-d0) > 1e-6 {
			t.Errorf("intra-plane distance changed: %v -> %v at %v", d0, d, dt)
		}
	}
	// And the expected chord for 1/22 of the orbit:
	r := geo.EarthRadiusKm + 550
	want := 2 * r * math.Sin(math.Pi/22)
	if math.Abs(d0-want) > 1e-6 {
		t.Errorf("intra-plane distance = %v, want %v", d0, want)
	}
}
