// Package parallel is the simulator's execution engine for embarrassingly
// parallel work: request batches, per-city dataset generation, and experiment
// sweeps. It provides a bounded worker pool over a fixed shard list.
//
// The package is built around one invariant: *sharding is independent of the
// worker count*. Callers partition their work into a deterministic number of
// shards (Split), give every shard its own deterministic random stream
// (stats.Rand.Split), and merge results in shard order. The worker count then
// only decides how many shards run at once — a run with 1 worker and a run
// with 16 produce byte-identical results, because no shard ever observes
// another shard's scheduling.
package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values <= 0 mean "one worker
// per available CPU" (GOMAXPROCS). The result is always at least 1.
func Workers(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Run invokes fn(shard) for every shard in [0, n) using at most workers
// goroutines (resolved via Workers, so workers <= 0 means GOMAXPROCS).
// Every shard runs even when earlier shards fail; the returned error joins
// the per-shard errors in shard order, so the error value — like the
// results — is independent of scheduling. A panicking shard propagates its
// panic to the caller after the remaining workers drain.
func Run(workers, n int, fn func(shard int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		// Inline fast path: the sequential reference execution.
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
		return joinInOrder(errs)
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return joinInOrder(errs)
}

// joinInOrder joins the non-nil errors, preserving shard order.
func joinInOrder(errs []error) error {
	var nonNil []error
	for _, err := range errs {
		if err != nil {
			nonNil = append(nonNil, err)
		}
	}
	return errors.Join(nonNil...)
}

// Span is a half-open index range [Lo, Hi) over a caller's item slice.
type Span struct{ Lo, Hi int }

// Len returns the number of items in the span.
func (s Span) Len() int { return s.Hi - s.Lo }

// Split partitions n items into at most k contiguous near-equal spans. The
// partition depends only on (n, k) — never on the worker count — so it is
// safe to key deterministic per-shard state (RNG streams, result slots) by
// span index. Fewer than k spans are returned when n < k; n <= 0 returns
// nil. It panics on k <= 0 (a construction bug, not a runtime condition).
func Split(n, k int) []Span {
	if k <= 0 {
		panic(fmt.Sprintf("parallel: non-positive shard count %d", k))
	}
	if n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	spans := make([]Span, k)
	base, rem := n/k, n%k
	lo := 0
	for i := range spans {
		size := base
		if i < rem {
			size++
		}
		spans[i] = Span{Lo: lo, Hi: lo + size}
		lo += size
	}
	return spans
}
