package parallel

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(4); got != 4 {
		t.Errorf("Workers(4) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-3); got != Workers(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS default %d", got, Workers(0))
	}
}

func TestSplit(t *testing.T) {
	cases := []struct {
		n, k    int
		wantLen int
	}{
		{n: 10, k: 3, wantLen: 3},
		{n: 3, k: 10, wantLen: 3}, // never more shards than items
		{n: 1, k: 1, wantLen: 1},
		{n: 0, k: 4, wantLen: 0},
		{n: -5, k: 4, wantLen: 0},
		{n: 64, k: 64, wantLen: 64},
	}
	for _, c := range cases {
		spans := Split(c.n, c.k)
		if len(spans) != c.wantLen {
			t.Errorf("Split(%d,%d) has %d spans, want %d", c.n, c.k, len(spans), c.wantLen)
			continue
		}
		// Spans tile [0, n) exactly, in order, each non-empty.
		lo := 0
		for i, s := range spans {
			if s.Lo != lo || s.Len() <= 0 {
				t.Errorf("Split(%d,%d)[%d] = %+v, want Lo=%d and positive length", c.n, c.k, i, s, lo)
			}
			lo = s.Hi
		}
		if c.wantLen > 0 && lo != c.n {
			t.Errorf("Split(%d,%d) covers [0,%d), want [0,%d)", c.n, c.k, lo, c.n)
		}
		// Near-equal: sizes differ by at most one.
		if len(spans) > 1 {
			min, max := spans[0].Len(), spans[0].Len()
			for _, s := range spans[1:] {
				if s.Len() < min {
					min = s.Len()
				}
				if s.Len() > max {
					max = s.Len()
				}
			}
			if max-min > 1 {
				t.Errorf("Split(%d,%d) span sizes range [%d,%d], want near-equal", c.n, c.k, min, max)
			}
		}
	}
}

func TestSplitPanicsOnBadShardCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Split(10, 0) did not panic")
		}
	}()
	Split(10, 0)
}

func TestRunExecutesEveryShardOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 32} {
		const n = 100
		var counts [n]atomic.Int32
		if err := Run(workers, n, func(shard int) error {
			counts[shard].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: shard %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRunZeroShards(t *testing.T) {
	if err := Run(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrorOrderIsDeterministic(t *testing.T) {
	fn := func(shard int) error {
		if shard%3 == 0 {
			return fmt.Errorf("shard %d failed", shard)
		}
		return nil
	}
	want := Run(1, 10, fn).Error()
	for _, workers := range []int{2, 4, 8} {
		for trial := 0; trial < 5; trial++ {
			err := Run(workers, 10, fn)
			if err == nil || err.Error() != want {
				t.Fatalf("workers=%d error = %v, want %q", workers, err, want)
			}
		}
	}
	// Failed shards do not stop later shards.
	var ran atomic.Int32
	_ = Run(2, 10, func(shard int) error {
		ran.Add(1)
		return errors.New("boom")
	})
	if ran.Load() != 10 {
		t.Errorf("ran %d shards after failures, want all 10", ran.Load())
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "shard panic") {
			t.Fatalf("unexpected panic payload %v", r)
		}
	}()
	_ = Run(4, 8, func(shard int) error {
		if shard == 3 {
			panic("shard panic")
		}
		return nil
	})
}

// TestRunStress hammers the pool from many goroutines; meaningful under
// -race, where it verifies the result slots and the work queue are
// race-clean.
func TestRunStress(t *testing.T) {
	const n = 512
	out := make([]int, n)
	if err := Run(16, n, func(shard int) error {
		out[shard] = shard * shard
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
}
