// Package report renders experiment results as aligned text tables, CSV and
// JSON. Every experiment and benchmark funnels its output through this
// package so the regenerated tables and figure series look uniform.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case float32:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return ""
	}
	return b.String()
}

// WriteCSV writes the table as CSV (headers first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes any value as indented JSON.
func WriteJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// Series is a named (x, y) sequence — the unit of "figure" output.
type Series struct {
	Name string      `json:"name"`
	X    []float64   `json:"x"`
	Y    []float64   `json:"y"`
	Meta interface{} `json:"meta,omitempty"`
}

// NewSeries builds a series, validating equal lengths.
func NewSeries(name string, x, y []float64) (Series, error) {
	if len(x) != len(y) {
		return Series{}, fmt.Errorf("report: series %q length mismatch %d vs %d", name, len(x), len(y))
	}
	return Series{Name: name, X: x, Y: y}, nil
}

// Figure is a set of series plus labels, serializable for external plotting.
type Figure struct {
	Title  string   `json:"title"`
	XLabel string   `json:"xlabel"`
	YLabel string   `json:"ylabel"`
	Series []Series `json:"series"`
}

// Render writes a compact textual sketch of the figure: per series, a
// handful of (x, y) anchor points.
func (f *Figure) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	fmt.Fprintf(&b, "x: %s, y: %s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%-24s", s.Name)
		n := len(s.X)
		if n == 0 {
			b.WriteString(" (empty)\n")
			continue
		}
		idx := []int{0, n / 4, n / 2, 3 * n / 4, n - 1}
		last := -1
		for _, i := range idx {
			if i == last {
				continue
			}
			last = i
			fmt.Fprintf(&b, "  (%.1f, %.2f)", s.X[i], s.Y[i])
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
