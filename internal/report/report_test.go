package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := NewTable("Demo", "Country", "RTT (ms)", "Distance")
	t.AddRow("MZ", 138.7, 8776)
	t.AddRow("ES", 33.0, 13)
	return t
}

func TestTableRender(t *testing.T) {
	tb := sampleTable()
	out := tb.String()
	if out == "" {
		t.Fatal("empty render")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + header + separator + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[0], "Demo") {
		t.Error("missing title")
	}
	if !strings.Contains(lines[1], "Country") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "138.7") {
		t.Error("float formatting broken")
	}
	if tb.Len() != 2 {
		t.Errorf("Len = %d", tb.Len())
	}
	// Columns align: header and rows start the second column at the same
	// byte offset.
	hIdx := strings.Index(lines[1], "RTT")
	rIdx := strings.Index(lines[3], "138.7")
	if hIdx != rIdx {
		t.Errorf("column misaligned: header at %d, row at %d", hIdx, rIdx)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "A")
	tb.AddRow(1)
	if strings.Contains(tb.String(), "==") {
		t.Error("title rendered for empty title")
	}
}

func TestTableCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(&buf)
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("csv rows = %d", len(recs))
	}
	if recs[0][0] != "Country" || recs[1][0] != "MZ" {
		t.Errorf("csv content wrong: %v", recs)
	}
}

func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	var got map[string]int
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got["a"] != 1 {
		t.Errorf("round trip failed: %v", got)
	}
}

func TestNewSeries(t *testing.T) {
	s, err := NewSeries("s", []float64{1, 2}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "s" || len(s.X) != 2 {
		t.Errorf("series = %+v", s)
	}
	if _, err := NewSeries("bad", []float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestFigureRender(t *testing.T) {
	s1, _ := NewSeries("starlink", []float64{1, 2, 3, 4, 5}, []float64{0.1, 0.3, 0.5, 0.8, 1})
	s2, _ := NewSeries("empty", nil, nil)
	f := Figure{Title: "Fig 7", XLabel: "ms", YLabel: "CDF", Series: []Series{s1, s2}}
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig 7") || !strings.Contains(out, "starlink") {
		t.Errorf("figure render missing content: %q", out)
	}
	if !strings.Contains(out, "(empty)") {
		t.Error("empty series not flagged")
	}
	// Anchor points include first and last.
	if !strings.Contains(out, "(1.0, 0.10)") || !strings.Contains(out, "(5.0, 1.00)") {
		t.Errorf("anchors missing: %q", out)
	}
}

func TestFigureJSONRoundTrip(t *testing.T) {
	s1, _ := NewSeries("a", []float64{1}, []float64{2})
	f := Figure{Title: "t", Series: []Series{s1}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, f); err != nil {
		t.Fatal(err)
	}
	var got Figure
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Title != "t" || len(got.Series) != 1 || got.Series[0].Name != "a" {
		t.Errorf("round trip = %+v", got)
	}
}
