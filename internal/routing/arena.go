package routing

import (
	"math"
	"sync"
)

// Scratch arenas for the graph algorithms. Every Dijkstra and BFS needs
// per-node state (tentative distance, predecessor, visited mark) plus a
// work list (priority queue or frontier). Allocating those per query is what
// made the request hot path allocation-bound, so the package keeps them in
// pooled, reusable scratch buffers:
//
//   - The per-node arrays are *epoch-stamped*: an entry is valid only when
//     its stamp equals the scratch's current epoch, and acquiring a scratch
//     bumps the epoch. Invalidating the whole arena is therefore one integer
//     increment instead of an O(n) clear. When the 32-bit epoch wraps, the
//     stamps are cleared once — every four billion queries, not every query.
//   - The priority queue is an index-based binary heap over a concrete item
//     type, so pushes and pops never box through the container/heap
//     interface. Its sift rules replicate container/heap exactly (strict
//     less-than, left child preferred on ties), which keeps the pop order —
//     and therefore the tie-breaking among equal-cost paths — bit-identical
//     to the previous implementation.
//
// Scratches are pooled per goroutine via sync.Pool, so a graph shared by a
// worker pool can run concurrent queries race-free with zero steady-state
// allocations.

// spItem is a priority-queue entry: a node and its tentative distance.
type spItem struct {
	dist float64
	node int32
}

// scratch is one reusable query workspace. The per-node slices grow to the
// largest graph seen and are then reused across queries and graph sizes.
type scratch struct {
	epoch uint32
	stamp []uint32 // dist/prev valid iff stamp[i] == epoch
	dist  []float64
	prev  []int32
	heap  []spItem // Dijkstra priority queue
	queue []int32  // BFS frontier, consumed via a head cursor
}

var scratchPool = sync.Pool{New: func() interface{} { return new(scratch) }}

// getScratch returns a scratch sized for n nodes with a fresh epoch.
func getScratch(n int) *scratch {
	sc := scratchPool.Get().(*scratch)
	if len(sc.stamp) < n {
		sc.stamp = make([]uint32, n)
		sc.dist = make([]float64, n)
		sc.prev = make([]int32, n)
	}
	sc.epoch++
	if sc.epoch == 0 {
		// Wrapped: stale stamps from four billion queries ago could collide
		// with the new epoch, so clear once and restart at 1.
		for i := range sc.stamp {
			sc.stamp[i] = 0
		}
		sc.epoch = 1
	}
	sc.heap = sc.heap[:0]
	sc.queue = sc.queue[:0]
	return sc
}

func putScratch(sc *scratch) { scratchPool.Put(sc) }

// seen reports whether node i carries state from the current query.
func (sc *scratch) seen(i int32) bool { return sc.stamp[i] == sc.epoch }

// mark stamps node i with distance d and predecessor p for this query.
func (sc *scratch) mark(i int32, d float64, p int32) {
	sc.stamp[i] = sc.epoch
	sc.dist[i] = d
	sc.prev[i] = p
}

// distAt returns node i's distance this query, or +Inf when untouched.
func (sc *scratch) distAt(i int32) float64 {
	if sc.stamp[i] == sc.epoch {
		return sc.dist[i]
	}
	return math.Inf(1)
}

// hpush appends an item and sifts it up. The comparison and swap pattern
// match container/heap's up() exactly.
func (sc *scratch) hpush(node int32, d float64) {
	sc.heap = append(sc.heap, spItem{dist: d, node: node})
	h := sc.heap
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

// hpop removes and returns the minimum item. It mirrors container/heap's
// Pop: swap root with the last element, sift down over the shortened heap
// (left child preferred unless the right is strictly smaller), then cut the
// tail — so ties pop in the same order as the boxed implementation did.
func (sc *scratch) hpop() spItem {
	h := sc.heap
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].dist < h[j1].dist {
			j = j2
		}
		if !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	it := h[n]
	sc.heap = h[:n]
	return it
}
