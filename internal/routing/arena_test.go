package routing

import (
	"math"
	"math/rand"
	"testing"
)

// randomGraph builds a connected-ish random undirected graph for equivalence
// testing: a ring backbone plus extra chords.
func randomGraph(rng *rand.Rand, n, extra int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		g.AddUndirected(NodeID(i), NodeID((i+1)%n), 1+rng.Float64()*9)
	}
	for i := 0; i < extra; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			g.AddUndirected(NodeID(a), NodeID(b), 1+rng.Float64()*9)
		}
	}
	return g
}

func TestScratchEpochWrap(t *testing.T) {
	g := NewGraph(4)
	g.AddUndirected(0, 1, 1)
	g.AddUndirected(1, 2, 1)
	g.AddUndirected(2, 3, 1)

	// Force the pooled scratch to the brink of wraparound, then run queries
	// across the wrap. Stale stamps from "four billion queries ago" must not
	// leak into the new epoch.
	sc := getScratch(4)
	sc.epoch = ^uint32(0) - 1
	// Plant state that would be "valid" if the wrap failed to clear stamps.
	sc.stamp[3] = 1 // will equal the post-wrap epoch unless cleared
	sc.dist[3] = 0.25
	putScratch(sc)

	for i := 0; i < 3; i++ {
		p, ok := g.ShortestPath(0, 3)
		if !ok || p.Cost != 3 || len(p.Nodes) != 4 {
			t.Fatalf("query %d across epoch wrap: got %+v ok=%v, want cost 3 over 4 nodes", i, p, ok)
		}
	}
}

func TestScratchGrowsAcrossGraphSizes(t *testing.T) {
	small := NewGraph(3)
	small.AddUndirected(0, 2, 5)
	big := NewGraph(64)
	for i := 0; i < 63; i++ {
		big.AddUndirected(NodeID(i), NodeID(i+1), 1)
	}
	// Interleave so the same pooled scratch serves both sizes.
	for i := 0; i < 4; i++ {
		if p, ok := small.ShortestPath(0, 2); !ok || p.Cost != 5 {
			t.Fatalf("small graph: got %+v ok=%v", p, ok)
		}
		if p, ok := big.ShortestPath(0, 63); !ok || p.Cost != 63 {
			t.Fatalf("big graph: got %+v ok=%v", p, ok)
		}
	}
}

func TestSPTreeMatchesShortestPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 60, 120)
	tree := g.SPTreeFrom(4)
	if tree == nil || tree.Src() != 4 || tree.Len() != 60 {
		t.Fatalf("bad tree: %+v", tree)
	}
	dist := g.ShortestPathsFrom(4)
	for n := 0; n < 60; n++ {
		if tree.Dist(NodeID(n)) != dist[n] {
			t.Fatalf("node %d: tree dist %v != ShortestPathsFrom %v", n, tree.Dist(NodeID(n)), dist[n])
		}
		p, ok := g.ShortestPath(4, NodeID(n))
		if !ok {
			continue
		}
		if hops, hok := tree.HopsTo(NodeID(n)); !hok || hops != p.Hops() {
			t.Fatalf("node %d: tree hops %d ok=%v != path hops %d", n, hops, hok, p.Hops())
		}
		tp, tok := tree.PathTo(NodeID(n))
		if !tok || tp.Cost != p.Cost || len(tp.Nodes) != len(p.Nodes) {
			t.Fatalf("node %d: tree path %+v != dijkstra path %+v", n, tp, p)
		}
		for i := range tp.Nodes {
			if tp.Nodes[i] != p.Nodes[i] {
				t.Fatalf("node %d: tree path nodes %v != %v", n, tp.Nodes, p.Nodes)
			}
		}
	}
}

func TestSPTreeFromWithinSettlesInsideBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 50, 80)
	full := g.SPTreeFrom(0)
	bound := 12.0
	partial := g.SPTreeFromWithin(0, bound)
	for n := 0; n < 50; n++ {
		want := full.Dist(NodeID(n))
		got := partial.Dist(NodeID(n))
		if want <= bound {
			if got != want {
				t.Fatalf("node %d inside bound: got %v want %v", n, got, want)
			}
			wh, _ := full.HopsTo(NodeID(n))
			gh, ok := partial.HopsTo(NodeID(n))
			if !ok || gh != wh {
				t.Fatalf("node %d inside bound: hops got %d ok=%v want %d", n, gh, ok, wh)
			}
		} else if !math.IsInf(got, 1) && got != want {
			// Beyond the bound a node may be settled (if popped before the
			// cutoff) or unreachable, but never carry a wrong distance.
			t.Fatalf("node %d beyond bound: got %v want %v or +Inf", n, got, want)
		}
	}
}

func TestSPTreeOutOfRange(t *testing.T) {
	g := NewGraph(3)
	if g.SPTreeFrom(-1) != nil || g.SPTreeFrom(3) != nil {
		t.Fatal("SPTreeFrom out of range should return nil")
	}
	tree := g.SPTreeFrom(0)
	if tree.Reachable(5) || tree.Reachable(-1) {
		t.Fatal("out-of-range nodes must read unreachable")
	}
	if _, ok := tree.HopsTo(9); ok {
		t.Fatal("HopsTo out of range should report !ok")
	}
	if _, ok := tree.PathTo(9); ok {
		t.Fatal("PathTo out of range should report !ok")
	}
}

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Any() || b.Count() != 0 {
		t.Fatal("fresh bitset should be empty")
	}
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d should be set", i)
		}
	}
	if b.Count() != 4 || !b.Any() {
		t.Fatalf("count = %d, want 4", b.Count())
	}
	b.Clear(64)
	if b.Test(64) || b.Count() != 3 {
		t.Fatal("clear failed")
	}
	// Out-of-range ops are no-ops / false.
	b.Set(-1)
	b.Set(1000)
	b.Clear(1000)
	if b.Test(-1) || b.Test(1000) || b.Count() != 3 {
		t.Fatal("out-of-range ops must not disturb the set")
	}
	var nilSet Bitset
	if nilSet.Test(0) || nilSet.Any() || nilSet.Count() != 0 {
		t.Fatal("nil bitset must behave as the empty set")
	}
}

func TestBitsetIntersectsAny(t *testing.T) {
	a := NewBitset(130)
	b := NewBitset(130)
	if a.IntersectsAny(b) {
		t.Fatal("two empty sets must not intersect")
	}
	a.Set(5)
	a.Set(129)
	b.Set(64)
	if a.IntersectsAny(b) || b.IntersectsAny(a) {
		t.Fatal("disjoint sets must not intersect")
	}
	b.Set(129)
	if !a.IntersectsAny(b) || !b.IntersectsAny(a) {
		t.Fatal("sets sharing bit 129 must intersect")
	}
	// Mismatched lengths compare over the shared prefix; nil is empty.
	short := NewBitset(64)
	short.Set(5)
	if !a.IntersectsAny(short) || !short.IntersectsAny(a) {
		t.Fatal("shared prefix intersection missed")
	}
	var nilSet Bitset
	if a.IntersectsAny(nilSet) || nilSet.IntersectsAny(a) || nilSet.IntersectsAny(nilSet) {
		t.Fatal("nil operand must behave as the empty set")
	}
}

func TestNearestInSetMatchesNearestMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := randomGraph(rng, 80, 60)
	for trial := 0; trial < 50; trial++ {
		members := NewBitset(80)
		for i := 0; i < 80; i++ {
			if rng.Float64() < 0.1 {
				members.Set(i)
			}
		}
		var active Bitset
		if trial%2 == 1 {
			active = NewBitset(80)
			for i := 0; i < 80; i++ {
				if rng.Float64() < 0.7 {
					active.Set(i)
				}
			}
		}
		src := NodeID(rng.Intn(80))
		maxHops := rng.Intn(6)
		match := func(n NodeID) bool {
			return members.Test(int(n)) && (active == nil || active.Test(int(n)))
		}
		want, wok := g.NearestMatch(src, maxHops, match)
		got, gok := g.NearestInSet(src, maxHops, members, active)
		if wok != gok || want != got {
			t.Fatalf("trial %d src=%d maxHops=%d: NearestInSet=(%+v,%v) NearestMatch=(%+v,%v)",
				trial, src, maxHops, got, gok, want, wok)
		}
	}
}

func TestNearestInSetEmptyMembers(t *testing.T) {
	g := NewGraph(4)
	g.AddUndirected(0, 1, 1)
	if _, ok := g.NearestInSet(0, 4, nil, nil); ok {
		t.Fatal("nil members must miss")
	}
	if _, ok := g.NearestInSet(0, 4, NewBitset(4), nil); ok {
		t.Fatal("empty members must miss")
	}
}

func TestShortestPathZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on the hot path")
	}
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 128, 100)
	// Warm the pool.
	g.ShortestPathsFrom(0)
	members := NewBitset(128)
	members.Set(90)
	allocs := testing.AllocsPerRun(200, func() {
		g.NearestInSet(5, 8, members, nil)
	})
	if allocs != 0 {
		t.Fatalf("NearestInSet allocs/op = %v, want 0", allocs)
	}
}

func BenchmarkShortestPathsFrom(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 1584, 3168)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ShortestPathsFrom(NodeID(i % 1584))
	}
}

func BenchmarkSPTreeFrom(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 1584, 3168)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SPTreeFrom(NodeID(i % 1584))
	}
}
