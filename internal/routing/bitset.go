package routing

import (
	"math/bits"
	"time"
)

// Bitset is a dense node-membership set over graph nodes 0..N-1, one bit per
// node. The resolve hot path keeps replica locations and duty-cycle active
// sets as bitsets so a BFS membership probe is a single word test instead of
// a virtual method call per visited node.
type Bitset []uint64

// NewBitset returns a bitset sized for n nodes.
func NewBitset(n int) Bitset {
	if n < 0 {
		n = 0
	}
	return make(Bitset, (n+63)/64)
}

// Set marks node i as a member. Out-of-range indices are ignored.
func (b Bitset) Set(i int) {
	if w := i >> 6; i >= 0 && w < len(b) {
		b[w] |= 1 << (uint(i) & 63)
	}
}

// Clear removes node i. Out-of-range indices are ignored.
func (b Bitset) Clear(i int) {
	if w := i >> 6; i >= 0 && w < len(b) {
		b[w] &^= 1 << (uint(i) & 63)
	}
}

// Test reports whether node i is a member. Out-of-range reads are false, so
// a nil Bitset is the empty set.
func (b Bitset) Test(i int) bool {
	w := i >> 6
	return i >= 0 && w < len(b) && b[w]>>(uint(i)&63)&1 == 1
}

// Count returns the number of members.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether the set is non-empty.
func (b Bitset) Any() bool {
	for _, w := range b {
		if w != 0 {
			return true
		}
	}
	return false
}

// IntersectsAny reports whether the two sets share at least one member.
// Either side may be nil (the empty set); lengths need not match.
func (b Bitset) IntersectsAny(other Bitset) bool {
	n := len(b)
	if len(other) < n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		if b[i]&other[i] != 0 {
			return true
		}
	}
	return false
}

// NearestInSet is NearestMatch with the predicate "member of members, and of
// active when active is non-nil" evaluated as bitset word tests — the
// allocation-free form of the replica search, where members holds the
// satellites caching the object and active the duty-cycled-on fleet. The
// traversal order, and therefore the returned node on any input, is
// identical to NearestMatch with the equivalent closure; a nil or empty
// members set short-circuits to a miss without touching the graph.
func (g *Graph) NearestInSet(src NodeID, maxHops int, members, active Bitset) (HopResult, bool) {
	if src < 0 || int(src) >= len(g.adj) || maxHops < 0 || !members.Any() {
		return HopResult{}, false
	}
	inSet := func(n int32) bool {
		return members.Test(int(n)) && (active == nil || active.Test(int(n)))
	}
	start := time.Now()
	defer func() {
		ops.bfsSearches.Add(1)
		ops.bfsNanos.Add(int64(time.Since(start)))
	}()
	if inSet(int32(src)) {
		return HopResult{Node: src, Hops: 0}, true
	}
	sc := getScratch(len(g.adj))
	defer putScratch(sc)
	sc.mark(int32(src), 0, -1)
	sc.queue = append(sc.queue, int32(src))
	head := 0
	for h := 1; h <= maxHops && head < len(sc.queue); h++ {
		levelEnd := len(sc.queue)
		for ; head < levelEnd; head++ {
			for _, e := range g.adj[sc.queue[head]] {
				to := int32(e.To)
				if sc.seen(to) {
					continue
				}
				sc.mark(to, float64(h), -1)
				if inSet(to) {
					return HopResult{Node: e.To, Hops: h}, true
				}
				sc.queue = append(sc.queue, to)
			}
		}
	}
	return HopResult{}, false
}
