package routing

import "testing"

func TestOpCounters(t *testing.T) {
	ResetCounters()
	g := NewGraph(4)
	g.AddUndirected(0, 1, 1)
	g.AddUndirected(1, 2, 1)
	g.AddUndirected(2, 3, 1)

	if _, ok := g.ShortestPath(0, 3); !ok {
		t.Fatal("path expected")
	}
	_ = g.ShortestPathsFrom(0)
	_ = g.WithinHops(0, 2)
	if _, ok := g.NearestMatch(0, 3, func(n NodeID) bool { return n == 3 }); !ok {
		t.Fatal("match expected")
	}
	if _, ok := g.HopDistance(0, 2); !ok {
		t.Fatal("hop distance expected")
	}

	c := Counters()
	if c.Dijkstras != 2 {
		t.Errorf("Dijkstras = %d, want 2", c.Dijkstras)
	}
	// WithinHops + NearestMatch + HopDistance (via NearestMatch) = 3.
	if c.BFSSearches != 3 {
		t.Errorf("BFSSearches = %d, want 3", c.BFSSearches)
	}
	if c.DijkstraNanos < 0 || c.BFSNanos < 0 {
		t.Errorf("negative wall time: %+v", c)
	}

	// Out-of-range calls short-circuit before counting.
	_ = g.ShortestPathsFrom(99)
	_ = g.WithinHops(99, 1)
	if c2 := Counters(); c2.Dijkstras != c.Dijkstras || c2.BFSSearches != c.BFSSearches {
		t.Errorf("invalid inputs must not count: %+v vs %+v", c2, c)
	}

	ResetCounters()
	if c := Counters(); c != (OpStats{}) {
		t.Errorf("reset left %+v", c)
	}
}
