package routing

import (
	"fmt"
	"math"
)

// This file provides the compressed-sparse-row construction path used by
// time-sweep consumers. A constellation's +grid ISL adjacency is immutable
// over time — only the edge weights (propagation delays) change as the
// satellites move — so the adjacency structure is computed once per
// constellation and every snapshot materializes its graph by filling one
// contiguous edge array with that step's weights. The per-directed-edge
// weight index additionally lets an existing graph refresh its weights in
// place between sweep steps, with zero allocation.

// NewGraphCSR builds a graph over len(offsets)-1 nodes whose adjacency lists
// are views into one contiguous edge array (compressed sparse row layout).
// Directed edge k runs from the node whose offset range contains k to
// targets[k], with weight weights[weightIdx[k]]; sharing a weight slot
// between the two directions of an undirected edge keeps the weight array at
// one entry per physical link. The adjacency order within each node is
// exactly the order of the targets slice, so a CSR build can reproduce the
// insertion order of an AddEdge-based construction bit for bit.
//
// The offsets, targets and weightIdx slices are retained by the graph and
// must not be mutated afterwards; weights is read during construction (and
// again on SetCSRWeights) but not retained.
func NewGraphCSR(offsets, targets, weightIdx []int32, weights []float64) *Graph {
	if len(offsets) == 0 || offsets[0] != 0 || int(offsets[len(offsets)-1]) != len(targets) {
		panic(fmt.Sprintf("routing: malformed CSR offsets (len %d, targets %d)", len(offsets), len(targets)))
	}
	if len(weightIdx) != len(targets) {
		panic(fmt.Sprintf("routing: CSR weightIdx length %d != targets length %d", len(weightIdx), len(targets)))
	}
	n := len(offsets) - 1
	edges := make([]Edge, len(targets))
	g := &Graph{
		adj:      make([][]Edge, n),
		csrEdges: edges,
		csrWidx:  weightIdx,
	}
	for k, to := range targets {
		if to < 0 || int(to) >= n {
			panic(fmt.Sprintf("routing: CSR target %d out of range [0,%d)", to, n))
		}
		edges[k].To = NodeID(to)
	}
	for i := 0; i < n; i++ {
		lo, hi := offsets[i], offsets[i+1]
		if lo > hi {
			panic("routing: CSR offsets not non-decreasing")
		}
		// Full-slice expression: an accidental append through adj[i] may
		// never spill into the neighbouring node's edges.
		g.adj[i] = edges[lo:hi:hi]
	}
	g.SetCSRWeights(weights)
	return g
}

// SetCSRWeights refreshes every edge weight of a CSR-built graph in place
// from the per-link weight slice and recomputes the max-weight bound. It is
// the sweep engine's per-step "rebuild": the adjacency structure is untouched
// and nothing allocates. The caller must guarantee no concurrent readers.
// Panics when the graph was not built by NewGraphCSR.
// SetCSRWeightsUndirected is the fused form of SetCSRWeights for callers that
// know the two directed slots of each undirected edge (slotA[k], slotB[k]):
// one pass over the physical links writes both directions and recomputes the
// max-weight bound, halving the refresh work on the sweep engine's hot path.
// The result is identical to SetCSRWeights — the same weights land in the
// same slots, and max over the same multiset is order-independent.
func (g *Graph) SetCSRWeightsUndirected(slotA, slotB []int32, weights []float64) {
	if g.csrEdges == nil {
		panic("routing: SetCSRWeightsUndirected on a non-CSR graph")
	}
	maxW := 0.0
	for k, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("routing: invalid edge weight %v", w))
		}
		g.csrEdges[slotA[k]].Weight = w
		g.csrEdges[slotB[k]].Weight = w
		if w > maxW {
			maxW = w
		}
	}
	g.maxW = maxW
}

func (g *Graph) SetCSRWeights(weights []float64) {
	if g.csrEdges == nil {
		panic("routing: SetCSRWeights on a non-CSR graph")
	}
	maxW := 0.0
	for k := range g.csrEdges {
		w := weights[g.csrWidx[k]]
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("routing: invalid edge weight %v", w))
		}
		g.csrEdges[k].Weight = w
		if w > maxW {
			maxW = w
		}
	}
	g.maxW = maxW
}
