// Package routing provides the graph algorithms the simulator uses on
// inter-satellite-link topologies: shortest weighted paths (Dijkstra),
// bounded-hop breadth-first search for replica discovery, and path objects
// carrying both hop counts and accumulated cost.
package routing

import (
	"container/heap"
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Process-wide operation counters. Graphs are rebuilt per snapshot and
// shared across systems, so per-graph instrumentation would either miss
// rebuilds or double count; instead the package keeps cheap atomic tallies
// that telemetry collectors export as gauges. The per-op overhead is two
// clock reads against algorithms that traverse the whole constellation.
var ops struct {
	dijkstras     atomic.Int64
	dijkstraNanos atomic.Int64
	bfsSearches   atomic.Int64
	bfsNanos      atomic.Int64
}

// OpStats is a snapshot of the package-wide path-computation counters.
type OpStats struct {
	// Dijkstras counts weighted shortest-path runs (single-target and
	// all-targets alike); DijkstraNanos is their summed wall time.
	Dijkstras     int64
	DijkstraNanos int64
	// BFSSearches counts bounded-hop searches (WithinHops, NearestMatch,
	// HopDistance); BFSNanos is their summed wall time.
	BFSSearches int64
	BFSNanos    int64
}

// Counters returns the current process-wide op counters.
func Counters() OpStats {
	return OpStats{
		Dijkstras:     ops.dijkstras.Load(),
		DijkstraNanos: ops.dijkstraNanos.Load(),
		BFSSearches:   ops.bfsSearches.Load(),
		BFSNanos:      ops.bfsNanos.Load(),
	}
}

// ResetCounters zeroes the op counters (test isolation).
func ResetCounters() {
	ops.dijkstras.Store(0)
	ops.dijkstraNanos.Store(0)
	ops.bfsSearches.Store(0)
	ops.bfsNanos.Store(0)
}

// NodeID identifies a vertex. Satellite graphs use dense indices, so the
// graph is backed by slices.
type NodeID int

// Edge is a weighted, directed edge. Undirected graphs add both directions.
type Edge struct {
	To     NodeID
	Weight float64
}

// Graph is an adjacency-list weighted graph over nodes 0..N-1.
type Graph struct {
	adj [][]Edge
}

// NewGraph creates a graph with n nodes and no edges.
func NewGraph(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{adj: make([][]Edge, n)}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.adj) }

// AddEdge adds a directed edge. It panics on out-of-range nodes or negative
// weights — both indicate construction bugs, not runtime conditions.
func (g *Graph) AddEdge(from, to NodeID, w float64) {
	if from < 0 || int(from) >= len(g.adj) || to < 0 || int(to) >= len(g.adj) {
		panic(fmt.Sprintf("routing: edge %d->%d out of range [0,%d)", from, to, len(g.adj)))
	}
	if w < 0 || math.IsNaN(w) {
		panic(fmt.Sprintf("routing: invalid edge weight %v", w))
	}
	g.adj[from] = append(g.adj[from], Edge{To: to, Weight: w})
}

// AddUndirected adds the edge in both directions with the same weight.
func (g *Graph) AddUndirected(a, b NodeID, w float64) {
	g.AddEdge(a, b, w)
	g.AddEdge(b, a, w)
}

// Neighbors returns the outgoing edges of n. The returned slice is shared
// with the graph; callers must not modify it.
func (g *Graph) Neighbors(n NodeID) []Edge {
	if n < 0 || int(n) >= len(g.adj) {
		return nil
	}
	return g.adj[n]
}

// EdgeCount returns the number of directed edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, es := range g.adj {
		total += len(es)
	}
	return total
}

// Path is a route through the graph with its accumulated weight.
type Path struct {
	Nodes []NodeID
	Cost  float64
}

// Hops returns the number of edges on the path.
func (p Path) Hops() int {
	if len(p.Nodes) == 0 {
		return 0
	}
	return len(p.Nodes) - 1
}

// item is a priority-queue entry for Dijkstra.
type item struct {
	node NodeID
	dist float64
}

type pq []item

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(item)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestPath runs Dijkstra from src to dst and returns the minimum-weight
// path. ok is false when dst is unreachable or either node is out of range.
func (g *Graph) ShortestPath(src, dst NodeID) (Path, bool) {
	dist, prev := g.dijkstra(src, dst)
	if dist == nil {
		return Path{}, false
	}
	if math.IsInf(dist[dst], 1) {
		return Path{}, false
	}
	return reconstruct(prev, src, dst, dist[dst]), true
}

// ShortestPathsFrom runs Dijkstra from src to every node and returns the
// distance slice (math.Inf(1) for unreachable nodes). Returns nil when src is
// out of range.
func (g *Graph) ShortestPathsFrom(src NodeID) []float64 {
	dist, _ := g.dijkstra(src, -1)
	return dist
}

func (g *Graph) dijkstra(src, stopAt NodeID) (dist []float64, prev []NodeID) {
	n := len(g.adj)
	if src < 0 || int(src) >= n {
		return nil, nil
	}
	start := time.Now()
	defer func() {
		ops.dijkstras.Add(1)
		ops.dijkstraNanos.Add(int64(time.Since(start)))
	}()
	dist = make([]float64, n)
	prev = make([]NodeID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	q := &pq{{node: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(item)
		if it.dist > dist[it.node] {
			continue // stale entry
		}
		if it.node == stopAt {
			return dist, prev
		}
		for _, e := range g.adj[it.node] {
			if nd := it.dist + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = it.node
				heap.Push(q, item{node: e.To, dist: nd})
			}
		}
	}
	return dist, prev
}

func reconstruct(prev []NodeID, src, dst NodeID, cost float64) Path {
	var rev []NodeID
	for at := dst; at != -1; at = prev[at] {
		rev = append(rev, at)
		if at == src {
			break
		}
	}
	nodes := make([]NodeID, len(rev))
	for i, n := range rev {
		nodes[len(rev)-1-i] = n
	}
	return Path{Nodes: nodes, Cost: cost}
}

// HopResult describes a node found by bounded-hop search.
type HopResult struct {
	Node NodeID
	Hops int
}

// WithinHops returns all nodes reachable from src in at most maxHops edges
// (including src itself at 0 hops), in breadth-first order.
func (g *Graph) WithinHops(src NodeID, maxHops int) []HopResult {
	if src < 0 || int(src) >= len(g.adj) || maxHops < 0 {
		return nil
	}
	start := time.Now()
	defer func() {
		ops.bfsSearches.Add(1)
		ops.bfsNanos.Add(int64(time.Since(start)))
	}()
	visited := make([]bool, len(g.adj))
	visited[src] = true
	out := []HopResult{{Node: src, Hops: 0}}
	frontier := []NodeID{src}
	for h := 1; h <= maxHops && len(frontier) > 0; h++ {
		var next []NodeID
		for _, n := range frontier {
			for _, e := range g.adj[n] {
				if !visited[e.To] {
					visited[e.To] = true
					out = append(out, HopResult{Node: e.To, Hops: h})
					next = append(next, e.To)
				}
			}
		}
		frontier = next
	}
	return out
}

// NearestMatch performs a breadth-first search from src and returns the first
// node (by hop count) satisfying match, up to maxHops. The weighted cost of
// the BFS path is not minimized; use ShortestPath for that. ok is false when
// no node matches within the bound.
func (g *Graph) NearestMatch(src NodeID, maxHops int, match func(NodeID) bool) (HopResult, bool) {
	if src < 0 || int(src) >= len(g.adj) || maxHops < 0 || match == nil {
		return HopResult{}, false
	}
	start := time.Now()
	defer func() {
		ops.bfsSearches.Add(1)
		ops.bfsNanos.Add(int64(time.Since(start)))
	}()
	if match(src) {
		return HopResult{Node: src, Hops: 0}, true
	}
	visited := make([]bool, len(g.adj))
	visited[src] = true
	frontier := []NodeID{src}
	for h := 1; h <= maxHops && len(frontier) > 0; h++ {
		var next []NodeID
		for _, n := range frontier {
			for _, e := range g.adj[n] {
				if visited[e.To] {
					continue
				}
				visited[e.To] = true
				if match(e.To) {
					return HopResult{Node: e.To, Hops: h}, true
				}
				next = append(next, e.To)
			}
		}
		frontier = next
	}
	return HopResult{}, false
}

// HopDistance returns the minimum hop count between src and dst, ignoring
// weights. ok is false when unreachable.
func (g *Graph) HopDistance(src, dst NodeID) (int, bool) {
	res, ok := g.NearestMatch(src, len(g.adj), func(n NodeID) bool { return n == dst })
	if !ok {
		return 0, false
	}
	return res.Hops, true
}
