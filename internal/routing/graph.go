// Package routing provides the graph algorithms the simulator uses on
// inter-satellite-link topologies: shortest weighted paths (Dijkstra),
// bounded-hop breadth-first search for replica discovery, and path objects
// carrying both hop counts and accumulated cost.
package routing

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// Process-wide operation counters. Graphs are rebuilt per snapshot and
// shared across systems, so per-graph instrumentation would either miss
// rebuilds or double count; instead the package keeps cheap atomic tallies
// that telemetry collectors export as gauges. The per-op overhead is two
// clock reads against algorithms that traverse the whole constellation.
var ops struct {
	dijkstras     atomic.Int64
	dijkstraNanos atomic.Int64
	bfsSearches   atomic.Int64
	bfsNanos      atomic.Int64
}

// OpStats is a snapshot of the package-wide path-computation counters.
type OpStats struct {
	// Dijkstras counts weighted shortest-path runs (single-target and
	// all-targets alike); DijkstraNanos is their summed wall time.
	Dijkstras     int64
	DijkstraNanos int64
	// BFSSearches counts bounded-hop searches (WithinHops, NearestMatch,
	// HopDistance); BFSNanos is their summed wall time.
	BFSSearches int64
	BFSNanos    int64
}

// Counters returns the current process-wide op counters.
func Counters() OpStats {
	return OpStats{
		Dijkstras:     ops.dijkstras.Load(),
		DijkstraNanos: ops.dijkstraNanos.Load(),
		BFSSearches:   ops.bfsSearches.Load(),
		BFSNanos:      ops.bfsNanos.Load(),
	}
}

// ResetCounters zeroes the op counters (test isolation).
func ResetCounters() {
	ops.dijkstras.Store(0)
	ops.dijkstraNanos.Store(0)
	ops.bfsSearches.Store(0)
	ops.bfsNanos.Store(0)
}

// NodeID identifies a vertex. Satellite graphs use dense indices, so the
// graph is backed by slices.
type NodeID int

// Edge is a weighted, directed edge. Undirected graphs add both directions.
type Edge struct {
	To     NodeID
	Weight float64
}

// Graph is an adjacency-list weighted graph over nodes 0..N-1.
type Graph struct {
	adj  [][]Edge
	maxW float64 // largest edge weight added; bounds any h-hop path at h*maxW

	// CSR-built graphs (NewGraphCSR) keep the contiguous edge backing and
	// the per-directed-edge weight index so SetCSRWeights can refresh all
	// weights in place between sweep steps. Nil for AddEdge-built graphs.
	csrEdges []Edge
	csrWidx  []int32
}

// NewGraph creates a graph with n nodes and no edges.
func NewGraph(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{adj: make([][]Edge, n)}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.adj) }

// AddEdge adds a directed edge. It panics on out-of-range nodes or negative
// weights — both indicate construction bugs, not runtime conditions.
func (g *Graph) AddEdge(from, to NodeID, w float64) {
	if g.csrEdges != nil {
		// Appending through a CSR adjacency view would detach that node's
		// list from the shared edge backing and silently decouple it from
		// SetCSRWeights refreshes.
		panic("routing: AddEdge on a CSR-built graph")
	}
	if from < 0 || int(from) >= len(g.adj) || to < 0 || int(to) >= len(g.adj) {
		panic(fmt.Sprintf("routing: edge %d->%d out of range [0,%d)", from, to, len(g.adj)))
	}
	if w < 0 || math.IsNaN(w) {
		panic(fmt.Sprintf("routing: invalid edge weight %v", w))
	}
	if w > g.maxW {
		g.maxW = w
	}
	g.adj[from] = append(g.adj[from], Edge{To: to, Weight: w})
}

// MaxEdgeWeight returns the largest edge weight in the graph (0 for an
// edgeless graph). Any path of h hops costs at most h*MaxEdgeWeight, which
// makes it the natural cost bound for hop-limited bounded searches.
func (g *Graph) MaxEdgeWeight() float64 { return g.maxW }

// AddUndirected adds the edge in both directions with the same weight.
func (g *Graph) AddUndirected(a, b NodeID, w float64) {
	g.AddEdge(a, b, w)
	g.AddEdge(b, a, w)
}

// Neighbors returns the outgoing edges of n. The returned slice is shared
// with the graph; callers must not modify it.
func (g *Graph) Neighbors(n NodeID) []Edge {
	if n < 0 || int(n) >= len(g.adj) {
		return nil
	}
	return g.adj[n]
}

// EdgeCount returns the number of directed edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, es := range g.adj {
		total += len(es)
	}
	return total
}

// Path is a route through the graph with its accumulated weight.
type Path struct {
	Nodes []NodeID
	Cost  float64
}

// Hops returns the number of edges on the path.
func (p Path) Hops() int {
	if len(p.Nodes) == 0 {
		return 0
	}
	return len(p.Nodes) - 1
}

// ShortestPath runs Dijkstra from src to dst and returns the minimum-weight
// path. ok is false when dst is unreachable or either node is out of range.
func (g *Graph) ShortestPath(src, dst NodeID) (Path, bool) {
	n := len(g.adj)
	if src < 0 || int(src) >= n {
		return Path{}, false
	}
	sc := getScratch(n)
	defer putScratch(sc)
	g.runDijkstra(sc, src, dst, math.Inf(1))
	if math.IsInf(sc.distAt(int32(dst)), 1) {
		return Path{}, false
	}
	return sc.pathTo(src, dst), true
}

// ShortestPathsFrom runs Dijkstra from src to every node and returns the
// distance slice (math.Inf(1) for unreachable nodes). Returns nil when src is
// out of range.
func (g *Graph) ShortestPathsFrom(src NodeID) []float64 {
	n := len(g.adj)
	if src < 0 || int(src) >= n {
		return nil
	}
	sc := getScratch(n)
	defer putScratch(sc)
	g.runDijkstra(sc, src, -1, math.Inf(1))
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = sc.distAt(int32(i))
	}
	return dist
}

// runDijkstra executes Dijkstra from src into the scratch arena. It stops
// early when stopAt is settled (pass -1 to settle everything) or when the
// frontier's distance exceeds maxCost (pass +Inf for no bound); because pops
// are non-decreasing, every node whose true distance is within the bound is
// settled — with the exact distance and predecessor the unbounded run would
// produce — before the cutoff triggers. The caller must own sc and read
// results through the same epoch.
func (g *Graph) runDijkstra(sc *scratch, src, stopAt NodeID, maxCost float64) {
	start := time.Now()
	defer func() {
		ops.dijkstras.Add(1)
		ops.dijkstraNanos.Add(int64(time.Since(start)))
	}()
	sc.mark(int32(src), 0, -1)
	sc.hpush(int32(src), 0)
	for len(sc.heap) > 0 {
		it := sc.hpop()
		if it.dist > maxCost {
			return
		}
		if it.dist > sc.dist[it.node] {
			continue // stale entry
		}
		if NodeID(it.node) == stopAt {
			return
		}
		for _, e := range g.adj[it.node] {
			to := int32(e.To)
			if nd := it.dist + e.Weight; !sc.seen(to) || nd < sc.dist[to] {
				sc.mark(to, nd, it.node)
				sc.hpush(to, nd)
			}
		}
	}
}

// pathTo materializes the predecessor chain ending at dst as a Path. It
// walks the chain twice — once to count, once to fill — so the result is a
// single exact-size allocation.
func (sc *scratch) pathTo(src, dst NodeID) Path {
	steps := 1
	for at := int32(dst); NodeID(at) != src && sc.prev[at] != -1; at = sc.prev[at] {
		steps++
	}
	nodes := make([]NodeID, steps)
	at := int32(dst)
	for i := steps - 1; ; i-- {
		nodes[i] = NodeID(at)
		if NodeID(at) == src || sc.prev[at] == -1 {
			break
		}
		at = sc.prev[at]
	}
	return Path{Nodes: nodes, Cost: sc.dist[dst]}
}

// HopResult describes a node found by bounded-hop search.
type HopResult struct {
	Node NodeID
	Hops int
}

// WithinHops returns all nodes reachable from src in at most maxHops edges
// (including src itself at 0 hops), in breadth-first order.
func (g *Graph) WithinHops(src NodeID, maxHops int) []HopResult {
	if src < 0 || int(src) >= len(g.adj) || maxHops < 0 {
		return nil
	}
	start := time.Now()
	defer func() {
		ops.bfsSearches.Add(1)
		ops.bfsNanos.Add(int64(time.Since(start)))
	}()
	sc := getScratch(len(g.adj))
	defer putScratch(sc)
	sc.mark(int32(src), 0, -1)
	sc.queue = append(sc.queue, int32(src))
	out := []HopResult{{Node: src, Hops: 0}}
	head := 0
	for h := 1; h <= maxHops && head < len(sc.queue); h++ {
		levelEnd := len(sc.queue)
		for ; head < levelEnd; head++ {
			for _, e := range g.adj[sc.queue[head]] {
				to := int32(e.To)
				if !sc.seen(to) {
					sc.mark(to, float64(h), -1)
					out = append(out, HopResult{Node: e.To, Hops: h})
					sc.queue = append(sc.queue, to)
				}
			}
		}
	}
	return out
}

// NearestMatch performs a breadth-first search from src and returns the first
// node (by hop count) satisfying match, up to maxHops. The weighted cost of
// the BFS path is not minimized; use ShortestPath for that. ok is false when
// no node matches within the bound.
func (g *Graph) NearestMatch(src NodeID, maxHops int, match func(NodeID) bool) (HopResult, bool) {
	if src < 0 || int(src) >= len(g.adj) || maxHops < 0 || match == nil {
		return HopResult{}, false
	}
	start := time.Now()
	defer func() {
		ops.bfsSearches.Add(1)
		ops.bfsNanos.Add(int64(time.Since(start)))
	}()
	if match(src) {
		return HopResult{Node: src, Hops: 0}, true
	}
	sc := getScratch(len(g.adj))
	defer putScratch(sc)
	sc.mark(int32(src), 0, -1)
	sc.queue = append(sc.queue, int32(src))
	head := 0
	for h := 1; h <= maxHops && head < len(sc.queue); h++ {
		levelEnd := len(sc.queue)
		for ; head < levelEnd; head++ {
			for _, e := range g.adj[sc.queue[head]] {
				to := int32(e.To)
				if sc.seen(to) {
					continue
				}
				sc.mark(to, float64(h), -1)
				if match(e.To) {
					return HopResult{Node: e.To, Hops: h}, true
				}
				sc.queue = append(sc.queue, to)
			}
		}
	}
	return HopResult{}, false
}

// HopDistance returns the minimum hop count between src and dst, ignoring
// weights. ok is false when unreachable.
func (g *Graph) HopDistance(src, dst NodeID) (int, bool) {
	res, ok := g.NearestMatch(src, len(g.adj), func(n NodeID) bool { return n == dst })
	if !ok {
		return 0, false
	}
	return res.Hops, true
}
