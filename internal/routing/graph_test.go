package routing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// ring builds an undirected ring of n nodes with unit weights.
func ring(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		g.AddUndirected(NodeID(i), NodeID((i+1)%n), 1)
	}
	return g
}

// grid builds an undirected w x h torus grid, unit weights — the same shape
// as a +grid ISL topology.
func grid(w, h int) *Graph {
	g := NewGraph(w * h)
	id := func(x, y int) NodeID { return NodeID(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.AddUndirected(id(x, y), id((x+1)%w, y), 1)
			g.AddUndirected(id(x, y), id(x, (y+1)%h), 1)
		}
	}
	return g
}

func TestShortestPathLine(t *testing.T) {
	g := NewGraph(4)
	g.AddUndirected(0, 1, 1)
	g.AddUndirected(1, 2, 2)
	g.AddUndirected(2, 3, 3)
	p, ok := g.ShortestPath(0, 3)
	if !ok {
		t.Fatal("path not found")
	}
	if p.Cost != 6 || p.Hops() != 3 {
		t.Errorf("path = %+v, want cost 6 hops 3", p)
	}
	if p.Nodes[0] != 0 || p.Nodes[len(p.Nodes)-1] != 3 {
		t.Errorf("endpoints wrong: %v", p.Nodes)
	}
}

func TestShortestPathPrefersLowWeight(t *testing.T) {
	// Two routes 0->3: direct edge weight 10, detour 0-1-2-3 weight 3.
	g := NewGraph(4)
	g.AddUndirected(0, 3, 10)
	g.AddUndirected(0, 1, 1)
	g.AddUndirected(1, 2, 1)
	g.AddUndirected(2, 3, 1)
	p, ok := g.ShortestPath(0, 3)
	if !ok || p.Cost != 3 || p.Hops() != 3 {
		t.Errorf("path = %+v ok=%v, want detour cost 3", p, ok)
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := ring(5)
	p, ok := g.ShortestPath(2, 2)
	if !ok || p.Cost != 0 || p.Hops() != 0 || len(p.Nodes) != 1 {
		t.Errorf("self path = %+v ok=%v", p, ok)
	}
}

func TestUnreachable(t *testing.T) {
	g := NewGraph(3)
	g.AddUndirected(0, 1, 1)
	if _, ok := g.ShortestPath(0, 2); ok {
		t.Error("disconnected node reported reachable")
	}
	if _, ok := g.HopDistance(0, 2); ok {
		t.Error("hop distance to disconnected node reported")
	}
	d := g.ShortestPathsFrom(0)
	if !math.IsInf(d[2], 1) {
		t.Errorf("distance to disconnected = %v, want +Inf", d[2])
	}
}

func TestOutOfRange(t *testing.T) {
	g := ring(4)
	if _, ok := g.ShortestPath(-1, 2); ok {
		t.Error("negative src accepted")
	}
	if g.ShortestPathsFrom(99) != nil {
		t.Error("out-of-range src returned distances")
	}
	if g.Neighbors(-1) != nil {
		t.Error("out-of-range Neighbors returned edges")
	}
	if g.WithinHops(99, 2) != nil {
		t.Error("out-of-range WithinHops returned results")
	}
}

func TestAddEdgePanics(t *testing.T) {
	cases := []func(*Graph){
		func(g *Graph) { g.AddEdge(0, 9, 1) },
		func(g *Graph) { g.AddEdge(-1, 0, 1) },
		func(g *Graph) { g.AddEdge(0, 1, -1) },
		func(g *Graph) { g.AddEdge(0, 1, math.NaN()) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f(ring(3))
		}()
	}
}

func TestRingDistances(t *testing.T) {
	n := 22 // one Starlink orbital plane
	g := ring(n)
	for dst := 0; dst < n; dst++ {
		want := dst
		if n-dst < want {
			want = n - dst
		}
		p, ok := g.ShortestPath(0, NodeID(dst))
		if !ok {
			t.Fatalf("no path 0->%d", dst)
		}
		if p.Hops() != want {
			t.Errorf("ring hops 0->%d = %d, want %d", dst, p.Hops(), want)
		}
	}
}

func TestWithinHopsRing(t *testing.T) {
	g := ring(22)
	res := g.WithinHops(0, 3)
	// 0 hops: 1 node; each extra hop adds 2 nodes on a ring.
	if len(res) != 1+2*3 {
		t.Errorf("WithinHops(0,3) returned %d nodes, want 7", len(res))
	}
	for _, r := range res {
		if r.Hops > 3 {
			t.Errorf("node %d at %d hops exceeds bound", r.Node, r.Hops)
		}
	}
	if res[0].Node != 0 || res[0].Hops != 0 {
		t.Errorf("first result should be src at 0 hops: %+v", res[0])
	}
}

func TestWithinHopsZero(t *testing.T) {
	g := ring(5)
	res := g.WithinHops(1, 0)
	if len(res) != 1 || res[0].Node != 1 {
		t.Errorf("WithinHops(,0) = %+v", res)
	}
}

func TestNearestMatch(t *testing.T) {
	g := ring(22)
	target := map[NodeID]bool{5: true, 17: true} // 17 is 5 hops the other way
	res, ok := g.NearestMatch(0, 10, func(n NodeID) bool { return target[n] })
	if !ok {
		t.Fatal("no match found")
	}
	if res.Hops != 5 {
		t.Errorf("nearest match at %d hops, want 5", res.Hops)
	}
	if res.Node != 5 && res.Node != 17 {
		t.Errorf("unexpected match %d", res.Node)
	}
	// Bounded search that cannot reach any target.
	if _, ok := g.NearestMatch(0, 2, func(n NodeID) bool { return target[n] }); ok {
		t.Error("match found beyond hop bound")
	}
	// src itself matching.
	res, ok = g.NearestMatch(5, 3, func(n NodeID) bool { return target[n] })
	if !ok || res.Hops != 0 || res.Node != 5 {
		t.Errorf("self match = %+v ok=%v", res, ok)
	}
	if _, ok := g.NearestMatch(0, 3, nil); ok {
		t.Error("nil matcher should not match")
	}
}

func TestGridHopDistance(t *testing.T) {
	// On a torus grid, hop distance is the sum of wrapped axis distances.
	w, h := 12, 10
	g := grid(w, h)
	id := func(x, y int) NodeID { return NodeID(y*w + x) }
	wrap := func(d, n int) int {
		if d < 0 {
			d = -d
		}
		if n-d < d {
			return n - d
		}
		return d
	}
	for _, c := range []struct{ x1, y1, x2, y2 int }{
		{0, 0, 3, 4}, {0, 0, 11, 9}, {5, 5, 5, 5}, {2, 9, 10, 0},
	} {
		got, ok := g.HopDistance(id(c.x1, c.y1), id(c.x2, c.y2))
		if !ok {
			t.Fatalf("unreachable on torus: %+v", c)
		}
		want := wrap(c.x2-c.x1, w) + wrap(c.y2-c.y1, h)
		if got != want {
			t.Errorf("hop distance %+v = %d, want %d", c, got, want)
		}
	}
}

func TestDijkstraMatchesBFSOnUnitWeights(t *testing.T) {
	// Property: with unit weights, Dijkstra cost equals BFS hop count.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 20 + rng.Intn(30)
		g := NewGraph(n)
		// Random connected-ish graph: ring + random chords.
		for i := 0; i < n; i++ {
			g.AddUndirected(NodeID(i), NodeID((i+1)%n), 1)
		}
		for k := 0; k < n/2; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g.AddUndirected(NodeID(a), NodeID(b), 1)
			}
		}
		src := NodeID(rng.Intn(n))
		dst := NodeID(rng.Intn(n))
		p, ok1 := g.ShortestPath(src, dst)
		hd, ok2 := g.HopDistance(src, dst)
		if ok1 != ok2 {
			t.Fatalf("reachability disagreement src=%d dst=%d", src, dst)
		}
		if ok1 && int(p.Cost) != hd {
			t.Errorf("dijkstra cost %v != bfs hops %d (src=%d dst=%d)", p.Cost, hd, src, dst)
		}
	}
}

func TestPathCostConsistency(t *testing.T) {
	// Property: the reported cost equals the sum of edge weights on the path.
	rng := rand.New(rand.NewSource(7))
	n := 40
	g := NewGraph(n)
	type key struct{ a, b NodeID }
	weights := map[key]float64{}
	addEdge := func(a, b NodeID, w float64) {
		g.AddUndirected(a, b, w)
		weights[key{a, b}] = w
		weights[key{b, a}] = w
	}
	for i := 0; i < n; i++ {
		addEdge(NodeID(i), NodeID((i+1)%n), 1+rng.Float64()*10)
	}
	for k := 0; k < n; k++ {
		a, b := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if a != b {
			if _, dup := weights[key{a, b}]; !dup {
				addEdge(a, b, 1+rng.Float64()*10)
			}
		}
	}
	for trial := 0; trial < 50; trial++ {
		src, dst := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		p, ok := g.ShortestPath(src, dst)
		if !ok {
			t.Fatalf("ring graph must be connected")
		}
		sum := 0.0
		for i := 1; i < len(p.Nodes); i++ {
			w, exists := weights[key{p.Nodes[i-1], p.Nodes[i]}]
			if !exists {
				t.Fatalf("path uses nonexistent edge %d->%d", p.Nodes[i-1], p.Nodes[i])
			}
			sum += w
		}
		if math.Abs(sum-p.Cost) > 1e-9 {
			t.Errorf("cost mismatch: reported %v, recomputed %v", p.Cost, sum)
		}
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	// dist(a,c) <= dist(a,b) + dist(b,c) for shortest-path distances.
	g := grid(8, 8)
	prop := func(a, b, c uint8) bool {
		n := NodeID(int(a) % g.Len())
		m := NodeID(int(b) % g.Len())
		k := NodeID(int(c) % g.Len())
		dn := g.ShortestPathsFrom(n)
		dm := g.ShortestPathsFrom(m)
		return dn[k] <= dn[m]+dm[k]+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("triangle inequality violated: %v", err)
	}
}

func TestEdgeCount(t *testing.T) {
	g := grid(4, 4)
	// Each node has degree 4 on a torus; 16 nodes * 4 = 64 directed edges.
	if g.EdgeCount() != 64 {
		t.Errorf("EdgeCount = %d, want 64", g.EdgeCount())
	}
	if NewGraph(0).EdgeCount() != 0 {
		t.Error("empty graph should have no edges")
	}
}
