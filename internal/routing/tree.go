package routing

import "math"

// SPTree is a materialized single-source shortest-path tree: the distances
// and predecessors Dijkstra settles from one source. It is immutable once
// built and safe for concurrent readers, which makes it the unit of sharing
// for per-snapshot memoization — every request resolving through the same
// uplink satellite prices its candidate paths off one shared tree instead of
// re-running Dijkstra.
type SPTree struct {
	src  NodeID
	dist []float64 // +Inf where unreachable (or beyond a build bound)
	prev []int32   // -1 where no predecessor
}

// SPTreeFrom runs Dijkstra from src over the whole graph and returns the
// settled tree. Returns nil when src is out of range.
func (g *Graph) SPTreeFrom(src NodeID) *SPTree {
	return g.SPTreeFromWithin(src, math.Inf(1))
}

// SPTreeFromWithin is the cost-bounded variant of SPTreeFrom: the search
// stops expanding once the frontier exceeds maxCost. Every node whose true
// distance is at most maxCost carries the exact distance and predecessor the
// unbounded run would produce; nodes beyond the bound read as unreachable.
// Use it when the caller can bound the interesting radius — e.g. pricing an
// n-hop neighbourhood costs at most n*MaxEdgeWeight.
func (g *Graph) SPTreeFromWithin(src NodeID, maxCost float64) *SPTree {
	n := len(g.adj)
	if src < 0 || int(src) >= n {
		return nil
	}
	sc := getScratch(n)
	defer putScratch(sc)
	g.runDijkstra(sc, src, -1, maxCost)
	t := &SPTree{src: src, dist: make([]float64, n), prev: make([]int32, n)}
	for i := 0; i < n; i++ {
		if sc.seen(int32(i)) {
			t.dist[i] = sc.dist[i]
			t.prev[i] = sc.prev[i]
		} else {
			t.dist[i] = math.Inf(1)
			t.prev[i] = -1
		}
	}
	return t
}

// Src returns the tree's source node.
func (t *SPTree) Src() NodeID { return t.src }

// Len returns the number of nodes the tree covers.
func (t *SPTree) Len() int { return len(t.dist) }

// Dist returns the settled distance from the source to n, or +Inf when n is
// unreachable, beyond the build bound, or out of range.
func (t *SPTree) Dist(n NodeID) float64 {
	if n < 0 || int(n) >= len(t.dist) {
		return math.Inf(1)
	}
	return t.dist[n]
}

// Reachable reports whether n was settled within the tree's bound.
func (t *SPTree) Reachable(n NodeID) bool { return !math.IsInf(t.Dist(n), 1) }

// HopsTo returns the edge count of the settled shortest path from the source
// to n by walking the predecessor chain — no allocation. ok is false when n
// is unreachable or out of range.
func (t *SPTree) HopsTo(n NodeID) (int, bool) {
	if !t.Reachable(n) {
		return 0, false
	}
	hops := 0
	for at := int32(n); NodeID(at) != t.src && t.prev[at] != -1; at = t.prev[at] {
		hops++
	}
	return hops, true
}

// PathTo materializes the settled path from the source to n. ok is false
// when n is unreachable or out of range.
func (t *SPTree) PathTo(n NodeID) (Path, bool) {
	hops, ok := t.HopsTo(n)
	if !ok {
		return Path{}, false
	}
	nodes := make([]NodeID, hops+1)
	at := int32(n)
	for i := hops; ; i-- {
		nodes[i] = NodeID(at)
		if NodeID(at) == t.src || t.prev[at] == -1 {
			break
		}
		at = t.prev[at]
	}
	return Path{Nodes: nodes, Cost: t.dist[n]}, true
}
