// Package loadgen is the serve daemon's load-test harness: closed-loop
// workers driving the resolve path, either in-process (calling
// Server.ResolveOnce directly — measures the serving core without network
// costs) or as HTTP clients against a real listener (measures the full
// daemon surface). Both modes share one workload and one counter, so a
// sweep over worker counts compares like with like.
package loadgen

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"spacecdn/internal/serve"
	"spacecdn/internal/spacecdn"
	"spacecdn/internal/stats"
)

// Mode selects how workers drive the server.
type Mode int

const (
	// InProcess workers call Server.ResolveOnce directly.
	InProcess Mode = iota
	// HTTP workers issue GET /resolve against BaseURL over real sockets.
	HTTP
)

// Config parameterizes one load-generation run.
type Config struct {
	// Workers is the closed-loop goroutine count (each runs request after
	// request with no think time).
	Workers int
	// Requests is the total request budget shared by all workers.
	Requests int
	Mode     Mode
	// BaseURL is the daemon root for HTTP mode, e.g. "http://127.0.0.1:8080".
	BaseURL string
}

// Result summarizes one run. Latency percentiles are wall-clock per
// request as observed by the workers.
type Result struct {
	Workers   int
	Requests  int64
	Errors    int64
	Stale     int64
	Wall      time.Duration
	ReqPerSec float64
	P50Ms     float64
	P95Ms     float64
	P99Ms     float64
}

// Run drives the server with cfg.Workers closed-loop workers until the
// request budget is spent. Workers pull request indices from one shared
// counter, so the workload mix is identical for every worker count.
func Run(srv *serve.Server, wl *serve.Workload, cfg Config) (Result, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Requests <= 0 {
		return Result{}, fmt.Errorf("loadgen: request budget must be positive")
	}
	if cfg.Mode == HTTP && cfg.BaseURL == "" {
		return Result{}, fmt.Errorf("loadgen: HTTP mode requires BaseURL")
	}
	var next atomic.Uint64
	var errs, stale atomic.Int64
	lats := make([][]float64, cfg.Workers)
	var wg sync.WaitGroup
	begin := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			my := make([]float64, 0, cfg.Requests/cfg.Workers+1)
			var sc *serve.Scratch
			var client *http.Client
			if cfg.Mode == InProcess {
				sc = srv.AcquireScratch()
				defer srv.ReleaseScratch(sc)
			} else {
				client = &http.Client{}
			}
			for {
				i := next.Add(1) - 1
				if i >= uint64(cfg.Requests) {
					break
				}
				req := wl.Request(i)
				t0 := time.Now()
				if cfg.Mode == InProcess {
					res, err := srv.ResolveOnce(req, sc)
					if err != nil {
						errs.Add(1)
						continue
					}
					if res.Stale {
						stale.Add(1)
					}
				} else {
					if err := httpResolve(client, cfg.BaseURL, req); err != nil {
						errs.Add(1)
						continue
					}
				}
				my = append(my, float64(time.Since(t0))/float64(time.Millisecond))
			}
			lats[w] = my
		}(w)
	}
	wg.Wait()
	wall := time.Since(begin)
	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	res := Result{
		Workers:   cfg.Workers,
		Requests:  int64(len(all)) + errs.Load(),
		Errors:    errs.Load(),
		Stale:     stale.Load(),
		Wall:      wall,
		ReqPerSec: float64(cfg.Requests) / wall.Seconds(),
	}
	if len(all) > 0 {
		cdf := stats.NewCDF(all)
		res.P50Ms = cdf.Median()
		res.P95Ms = cdf.Quantile(0.95)
		res.P99Ms = cdf.Quantile(0.99)
	}
	return res, nil
}

// httpResolve issues one GET /resolve and drains the body so the
// connection is reused.
func httpResolve(client *http.Client, base string, req spacecdn.Request) error {
	url := base + "/resolve?lat=" + strconv.FormatFloat(req.Client.LatDeg, 'f', 4, 64) +
		"&lon=" + strconv.FormatFloat(req.Client.LonDeg, 'f', 4, 64) +
		"&iso2=" + req.ISO2 + "&obj=" + string(req.Obj.ID)
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: %s: status %d", url, resp.StatusCode)
	}
	return nil
}

// MeasureAllocs reports steady-state heap allocations per request on the
// in-process path: one warmup pass over the request set (fills the scratch
// pool, path memos, and histogram shards), then a measured pass on a
// single goroutine between two MemStats readings. Pass only space-served
// requests — the ground stage legitimately allocates its path, mirroring
// the resolve benchmark's steady-state definition.
func MeasureAllocs(srv *serve.Server, reqs []spacecdn.Request) (float64, error) {
	if len(reqs) == 0 {
		return 0, fmt.Errorf("loadgen: no steady-state requests to measure")
	}
	sc := srv.AcquireScratch()
	defer srv.ReleaseScratch(sc)
	for _, r := range reqs {
		if _, err := srv.ResolveOnce(r, sc); err != nil {
			return 0, err
		}
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for _, r := range reqs {
		if _, err := srv.ResolveOnce(r, sc); err != nil {
			return 0, err
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(len(reqs)), nil
}
