package loadgen

import (
	"testing"
	"time"

	"spacecdn/internal/constellation"
	"spacecdn/internal/groundseg"
	"spacecdn/internal/lsn"
	"spacecdn/internal/serve"
	"spacecdn/internal/spacecdn"
)

var (
	testConst = constellation.MustNew(constellation.DefaultConfig())
	testLSN   = lsn.NewModel(testConst, groundseg.NewCatalog(), lsn.DefaultConfig())
)

func newServer(t *testing.T, cfg serve.Config) (*serve.Server, *serve.Workload) {
	t.Helper()
	sys, err := spacecdn.NewSystem(spacecdn.DefaultConfig(), testConst, testLSN)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := srv.PlaceWorkload(8)
	if err != nil {
		t.Fatal(err)
	}
	return srv, wl
}

func TestLoadgenInProcess(t *testing.T) {
	srv, wl := newServer(t, serve.Config{Seed: 11})
	defer srv.Close()
	const n = 200
	res, err := Run(srv, wl, Config{Workers: 4, Requests: n})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 4 || res.Requests != n || res.Errors != 0 {
		t.Fatalf("result %+v, want %d clean requests on 4 workers", res, n)
	}
	if res.ReqPerSec <= 0 || res.Wall <= 0 {
		t.Fatalf("throughput not measured: %+v", res)
	}
	if res.P50Ms < 0 || res.P50Ms > res.P95Ms || res.P95Ms > res.P99Ms {
		t.Fatalf("percentiles out of order: p50=%v p95=%v p99=%v", res.P50Ms, res.P95Ms, res.P99Ms)
	}
	if got := srv.Stats().Requests; got != n {
		t.Fatalf("server saw %d requests, want %d", got, n)
	}
}

func TestLoadgenHTTP(t *testing.T) {
	srv, wl := newServer(t, serve.Config{Seed: 12, Addr: "127.0.0.1:0", Interval: 5 * time.Millisecond})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const n = 60
	res, err := Run(srv, wl, Config{Workers: 2, Requests: n, Mode: HTTP, BaseURL: "http://" + srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != n || res.Errors != 0 {
		t.Fatalf("HTTP run %+v, want %d clean requests", res, n)
	}
	if got := srv.Stats().Requests; got != n {
		t.Fatalf("server saw %d requests over HTTP, want %d", got, n)
	}
}

func TestLoadgenConfigErrors(t *testing.T) {
	srv, wl := newServer(t, serve.Config{Seed: 13})
	defer srv.Close()
	if _, err := Run(srv, wl, Config{Workers: 1}); err == nil {
		t.Fatal("zero request budget accepted")
	}
	if _, err := Run(srv, wl, Config{Workers: 1, Requests: 5, Mode: HTTP}); err == nil {
		t.Fatal("HTTP mode without BaseURL accepted")
	}
}

func TestMeasureAllocsSteadyZero(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not exact under the race detector")
	}
	srv, wl := newServer(t, serve.Config{Seed: 14})
	defer srv.Close()
	sc := srv.AcquireScratch()
	var steady []spacecdn.Request
	for i := 0; i < 120; i++ {
		req := wl.Request(uint64(i))
		res, err := srv.ResolveOnce(req, sc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Res.Source != spacecdn.SourceGround {
			steady = append(steady, req)
		}
	}
	srv.ReleaseScratch(sc)
	if len(steady) == 0 {
		t.Fatal("no space-served requests in workload")
	}
	perReq, err := MeasureAllocs(srv, steady)
	if err != nil {
		t.Fatal(err)
	}
	if perReq != 0 {
		t.Errorf("steady-state allocations = %v/req, want 0", perReq)
	}
	if _, err := MeasureAllocs(srv, nil); err == nil {
		t.Fatal("empty steady set accepted")
	}
}
