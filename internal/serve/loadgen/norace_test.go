//go:build !race

package loadgen

// raceEnabled skips exact-zero allocation assertions under the race
// detector, whose instrumentation allocates on otherwise alloc-free paths.
const raceEnabled = false
