package serve

import (
	"bytes"
	"fmt"

	"spacecdn/internal/parallel"
	"spacecdn/internal/spacecdn"
	"spacecdn/internal/stats"
)

// replayShardTarget is the replay fan-out's determinism constant, mirroring
// ResolveAll's batchShardTarget: the shard count derives from the log size
// only, never the worker count. Replay output is invariant to it regardless
// (each request has its own rng stream), but a fixed value keeps shard
// boundaries stable for profiling comparisons.
const replayShardTarget = 64

// Replay resolves a recorded request log deterministically and returns the
// concatenated response stream — the same bytes, in log order, that the
// HTTP handler would emit for those requests. Request i always draws from
// rng stream mix(ReplaySeed, i) and resolves against the currently
// published epoch, so the output is byte-identical for any worker count
// (workers <= 0 means GOMAXPROCS).
//
// Byte-identity holds because resolution is read-only over cache
// membership; run Replay against a pinned epoch (Interval <= 0) on a
// system without an active lifecycle manager — lifecycle fills mutate
// membership mid-stream, which is load-order-dependent by design.
func (s *Server) Replay(log []spacecdn.Request, workers int) ([]byte, error) {
	if s.cfg.ReplaySeed == 0 {
		return nil, fmt.Errorf("serve: replay requires a non-zero ReplaySeed")
	}
	ep := s.epoch.Load()
	outs := make([][]byte, len(log))
	spans := parallel.Split(len(log), replayShardTarget)
	_ = parallel.Run(workers, len(spans), func(shard int) error {
		rng := stats.NewRand(0)
		for i := spans[shard].Lo; i < spans[shard].Hi; i++ {
			rng.Seed(mixStream(s.cfg.ReplaySeed, uint64(i)))
			res, err := s.sys.ResolveAt(ep, log[i].Client, log[i].ISO2, log[i].Obj, rng)
			if err != nil {
				outs[i] = []byte(fmt.Sprintf("{\"error\":%q}\n", err.Error()))
				continue
			}
			outs[i] = appendResponse(nil, Result{Res: res, Epoch: ep.Seq(), SimTime: ep.Time()})
		}
		return nil
	})
	return bytes.Join(outs, nil), nil
}
