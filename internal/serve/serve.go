// Package serve is the spacecdnd daemon core: a long-running HTTP front end
// over one SpaceCDN system, serving the resolve path while a background
// sweeper advances the constellation underneath it.
//
// The concurrency design is epoch publication (DESIGN.md §16). The sweeper
// goroutine owns all state transitions: each tick it builds a fresh
// immutable snapshot at the next sim instant, finishes every lazy structure
// a request could touch (ISL graph, pinned fault view), wraps the result in
// a spacecdn.Epoch, and publishes it with one atomic pointer store. Request
// goroutines pin the current epoch with one atomic load and resolve against
// it lock-free; superseded epochs stay valid for the requests still holding
// them and are reclaimed by the garbage collector when the last borrower
// returns. Readers therefore never block the sweeper, the sweeper never
// blocks readers, and no request ever observes a half-advanced topology —
// at the price that a request racing a swap is served on a stale-but-valid
// epoch, which the serve_stale_epoch_total counter makes visible.
//
// Per-request state (rng stream, response buffer) comes from a sync.Pool of
// Scratch values, so the steady-state in-process request path allocates
// nothing. The one write path — lifecycle intent application — funnels
// through the System's single-writer applier, keeping origin-fetch
// coalescing deterministic under concurrent misses.
package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"spacecdn/internal/content"
	"spacecdn/internal/geo"
	"spacecdn/internal/spacecdn"
	"spacecdn/internal/stats"
	"spacecdn/internal/telemetry"
)

// Config parameterizes a serving daemon.
type Config struct {
	// Addr is the HTTP listen address ("host:0" lets the kernel pick a
	// port); empty serves in-process only.
	Addr string
	// Seed derives every per-connection rng stream.
	Seed int64
	// Start is the sim instant of the first epoch; Step is how far each
	// sweep advances sim time.
	Start, Step time.Duration
	// Interval is the wall-clock period between sweeps. Zero or negative
	// pins the initial epoch forever (no sweeper goroutine) — the replay
	// and allocation-measurement configuration.
	Interval time.Duration
	// ReplaySeed, when non-zero, switches request rng to per-request-index
	// streams: request i always draws from stream mix(ReplaySeed, i), so a
	// recorded request log replays byte-identically (see Replay).
	ReplaySeed int64
	// TraceSample is the request-trace sampling rate for a telemetry bundle
	// the server creates itself (ignored when the system already has one).
	TraceSample float64
	// ShutdownTimeout bounds the HTTP drain on Close; zero means 5s.
	ShutdownTimeout time.Duration
}

// DefaultConfig returns a live-daemon configuration: 100 ms sweeps, each
// advancing sim time 15 s.
func DefaultConfig() Config {
	return Config{
		Seed:     42,
		Step:     15 * time.Second,
		Interval: 100 * time.Millisecond,
	}
}

// Scratch is the pooled per-request state: a private rng stream and a
// response encode buffer. Acquire one per worker (or borrow per request)
// and release it when done; a Scratch must not be used concurrently.
type Scratch struct {
	rng *stats.Rand
	buf []byte
}

// Result is one served request: the resolution plus the epoch it was
// pinned to.
type Result struct {
	Res spacecdn.Resolution
	// Epoch is the pinned epoch's sequence number; SimTime its instant.
	Epoch   uint64
	SimTime time.Duration
	// Stale reports the request finished after its epoch was superseded —
	// served on a stale-but-valid epoch.
	Stale bool
}

// Server is a running serving daemon.
type Server struct {
	cfg Config
	sys *spacecdn.System
	tel *telemetry.Telemetry

	// epoch is the published serving state; seq trails it (store epoch,
	// then seq), so a reader comparing its pinned epoch against seq can
	// flag stale serves without ever false-flagging the freshest epoch.
	epoch atomic.Pointer[spacecdn.Epoch]
	seq   atomic.Uint64

	reqIdx  atomic.Uint64 // request index for replay-mode rng streams
	streams atomic.Int64  // scratch stream counter for live-mode rng forks
	scratch sync.Pool

	objects map[content.ID]content.Object // HTTP lookup; frozen at Start

	reqs, errs, stale, swaps *telemetry.Counter
	latMs, swapMs            *telemetry.Histogram

	served, errCount, staleCount atomic.Int64

	mu        sync.Mutex
	swapDurMs []float64

	ln          net.Listener
	hsrv        *http.Server
	sweepStop   chan struct{}
	sweepDone   chan struct{}
	applierStop func()
	started     bool
	closed      bool
}

// New builds a server over a deployed system and publishes the initial
// epoch (swap #1), so ResolveOnce works immediately — Start is only needed
// for the listener and the background sweeper. When the system has no
// telemetry attached, New attaches a fresh bundle sampling cfg.TraceSample.
func New(sys *spacecdn.System, cfg Config) (*Server, error) {
	if cfg.Step <= 0 {
		cfg.Step = 15 * time.Second
	}
	if cfg.ShutdownTimeout <= 0 {
		cfg.ShutdownTimeout = 5 * time.Second
	}
	tel := sys.Telemetry()
	if tel == nil {
		tel = telemetry.New(cfg.TraceSample)
		sys.SetTelemetry(tel)
	}
	reg := tel.Registry()
	s := &Server{
		cfg:     cfg,
		sys:     sys,
		tel:     tel,
		objects: make(map[content.ID]content.Object),
		reqs:    reg.Counter("serve_requests_total"),
		errs:    reg.Counter("serve_errors_total"),
		stale:   reg.Counter("serve_stale_epoch_total"),
		swaps:   reg.Counter("serve_epoch_swaps_total"),
		latMs:   reg.Histogram("serve_request_latency_ms", telemetry.LatencyBucketsMs),
		swapMs:  reg.Histogram("serve_epoch_swap_ms", telemetry.LatencyBucketsMs),
	}
	s.scratch.New = func() any {
		return &Scratch{
			rng: stats.NewRand(mixStream(cfg.Seed, uint64(s.streams.Add(1)))),
			buf: make([]byte, 0, 192),
		}
	}
	s.advance()
	return s, nil
}

// mixStream derives stream i from a seed with two FNV-1a rounds, matching
// the package-wide mixing idiom so adjacent streams share no low bits.
func mixStream(seed int64, i uint64) int64 {
	h := uint64(1469598103934665603) ^ uint64(seed)
	h *= 1099511628211
	h ^= i
	h *= 1099511628211
	return int64(h)
}

// System returns the served system.
func (s *Server) System() *spacecdn.System { return s.sys }

// Telemetry returns the server's telemetry bundle.
func (s *Server) Telemetry() *telemetry.Telemetry { return s.tel }

// Epoch returns the currently published epoch.
func (s *Server) Epoch() *spacecdn.Epoch { return s.epoch.Load() }

// RegisterObjects adds objects to the HTTP /resolve lookup table. The table
// is frozen once serving starts: call before Start, never concurrently
// with requests.
func (s *Server) RegisterObjects(objs ...content.Object) {
	for _, o := range objs {
		s.objects[o.ID] = o
	}
}

// AcquireScratch borrows per-request state from the pool.
func (s *Server) AcquireScratch() *Scratch { return s.scratch.Get().(*Scratch) }

// ReleaseScratch returns a Scratch to the pool.
func (s *Server) ReleaseScratch(sc *Scratch) { s.scratch.Put(sc) }

// advance builds and publishes the next epoch. Only New and the sweeper
// goroutine call it, so seq increments are single-writer; the epoch store
// happens before the seq store, which keeps the reader-side staleness test
// (pinned seq < current seq) free of false positives on the fresh epoch.
func (s *Server) advance() {
	n := s.seq.Load() + 1
	t := s.cfg.Start + time.Duration(n-1)*s.cfg.Step
	begin := time.Now()
	ep := s.sys.NewEpoch(n, s.sys.Constellation().Snapshot(t))
	s.epoch.Store(ep)
	s.seq.Store(n)
	ms := float64(time.Since(begin)) / float64(time.Millisecond)
	s.swaps.Inc()
	s.swapMs.Observe(ms)
	s.mu.Lock()
	s.swapDurMs = append(s.swapDurMs, ms)
	s.mu.Unlock()
}

// ResolveOnce serves one request against the currently published epoch —
// the in-process entry shared by the HTTP handler and the load generator.
// The Scratch must be goroutine-local; at steady state the call allocates
// nothing.
func (s *Server) ResolveOnce(req spacecdn.Request, sc *Scratch) (Result, error) {
	begin := time.Now()
	if s.cfg.ReplaySeed != 0 {
		sc.rng.Seed(mixStream(s.cfg.ReplaySeed, s.reqIdx.Add(1)-1))
	}
	ep := s.epoch.Load()
	res, err := s.sys.ResolveAt(ep, req.Client, req.ISO2, req.Obj, sc.rng)
	r := Result{Res: res, Epoch: ep.Seq(), SimTime: ep.Time()}
	if err != nil {
		s.errCount.Add(1)
		s.errs.Inc()
		return r, err
	}
	if ep.Seq() < s.seq.Load() {
		r.Stale = true
		s.staleCount.Add(1)
		s.stale.Inc()
	}
	s.served.Add(1)
	s.reqs.Inc()
	s.latMs.ObserveDuration(time.Since(begin))
	return r, nil
}

// Start brings up the background sweeper (when Interval > 0), the
// lifecycle applier (when the system has a lifecycle manager), and the
// HTTP listener (when Addr is set).
func (s *Server) Start() error {
	if s.started {
		return fmt.Errorf("serve: already started")
	}
	s.started = true
	if s.sys.Lifecycle() != nil {
		s.applierStop = s.sys.StartLifecycleApplier(0)
	}
	if s.cfg.Interval > 0 {
		s.sweepStop = make(chan struct{})
		s.sweepDone = make(chan struct{})
		go s.sweepLoop()
	}
	if s.cfg.Addr != "" {
		ln, err := net.Listen("tcp", s.cfg.Addr)
		if err != nil {
			return fmt.Errorf("serve: listen %s: %w", s.cfg.Addr, err)
		}
		s.ln = ln
		s.hsrv = &http.Server{Handler: s.handler()}
		go func() {
			// ErrServerClosed is the normal Shutdown path; anything else
			// already went through http.Server's own error logging.
			_ = s.hsrv.Serve(ln)
		}()
	}
	return nil
}

// Addr returns the bound HTTP address, or "" when serving in-process only.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

func (s *Server) sweepLoop() {
	defer close(s.sweepDone)
	ticker := time.NewTicker(s.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case <-ticker.C:
			s.advance()
		}
	}
}

// Close shuts the daemon down in dependency order: drain in-flight HTTP
// requests (bounded by ShutdownTimeout), stop the sweeper, then stop the
// lifecycle applier — requests must have stopped before the applier does,
// which the HTTP drain guarantees for the network path. In-process callers
// (load generators) must finish before Close. Idempotent.
func (s *Server) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.hsrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownTimeout)
		err = s.hsrv.Shutdown(ctx)
		cancel()
	}
	if s.sweepStop != nil {
		close(s.sweepStop)
		<-s.sweepDone
	}
	if s.applierStop != nil {
		s.applierStop()
	}
	return err
}

// Stats is a point-in-time summary of the serving counters.
type Stats struct {
	Requests, Errors int64
	// StaleServed counts requests that finished on a superseded epoch.
	StaleServed int64
	// Epochs is the published epoch count (the initial publication is #1).
	Epochs uint64
	// SwapP50Ms / SwapP99Ms summarize epoch build-and-publish latency.
	SwapP50Ms, SwapP99Ms float64
}

// Stats returns the serving counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Requests:    s.served.Load(),
		Errors:      s.errCount.Load(),
		StaleServed: s.staleCount.Load(),
		Epochs:      s.seq.Load(),
	}
	s.mu.Lock()
	durs := append([]float64(nil), s.swapDurMs...)
	s.mu.Unlock()
	if len(durs) > 0 {
		cdf := stats.NewCDF(durs)
		st.SwapP50Ms = cdf.Median()
		st.SwapP99Ms = cdf.Quantile(0.99)
	}
	return st
}

// handler mounts /resolve next to the full telemetry introspection surface
// (/metrics /series /traces /healthz /debug/pprof).
func (s *Server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/resolve", s.handleResolve)
	mux.Handle("/", telemetry.Handler(s.tel))
	return mux
}

func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	lat, errLat := strconv.ParseFloat(q.Get("lat"), 64)
	lon, errLon := strconv.ParseFloat(q.Get("lon"), 64)
	if errLat != nil || errLon != nil {
		http.Error(w, "bad lat/lon", http.StatusBadRequest)
		return
	}
	obj, ok := s.objects[content.ID(q.Get("obj"))]
	if !ok {
		http.Error(w, "unknown object", http.StatusNotFound)
		return
	}
	sc := s.AcquireScratch()
	defer s.ReleaseScratch(sc)
	res, err := s.ResolveOnce(spacecdn.Request{
		Client: geo.NewPoint(lat, lon),
		ISO2:   q.Get("iso2"),
		Obj:    obj,
	}, sc)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	sc.buf = appendResponse(sc.buf[:0], res)
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(sc.buf)
}

// appendResponse encodes one response line into b. The encoder is shared
// by the HTTP handler and Replay, so the deterministic-replay guarantee
// covers the exact bytes a network client sees.
func appendResponse(b []byte, r Result) []byte {
	b = append(b, `{"epoch":`...)
	b = strconv.AppendUint(b, r.Epoch, 10)
	b = append(b, `,"t_ms":`...)
	b = strconv.AppendInt(b, int64(r.SimTime/time.Millisecond), 10)
	b = append(b, `,"source":"`...)
	b = append(b, r.Res.Source.String()...)
	b = append(b, `","sat":`...)
	b = strconv.AppendInt(b, int64(r.Res.Sat), 10)
	b = append(b, `,"hops":`...)
	b = strconv.AppendInt(b, int64(r.Res.Hops), 10)
	b = append(b, `,"rtt_us":`...)
	b = strconv.AppendInt(b, int64(r.Res.RTT/time.Microsecond), 10)
	b = append(b, "}\n"...)
	return b
}
