package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"spacecdn/internal/constellation"
	"spacecdn/internal/groundseg"
	"spacecdn/internal/lsn"
	"spacecdn/internal/spacecdn"
)

var (
	testConst = constellation.MustNew(constellation.DefaultConfig())
	testLSN   = lsn.NewModel(testConst, groundseg.NewCatalog(), lsn.DefaultConfig())
)

// newTestServer builds a server (and its workload) over a fresh system.
func newTestServer(t *testing.T, cfg Config) (*Server, *Workload) {
	t.Helper()
	sys, err := spacecdn.NewSystem(spacecdn.DefaultConfig(), testConst, testLSN)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := srv.PlaceWorkload(8)
	if err != nil {
		t.Fatal(err)
	}
	return srv, wl
}

func TestServeInProcess(t *testing.T) {
	srv, wl := newTestServer(t, Config{Seed: 1})
	defer srv.Close()
	if got := srv.Stats().Epochs; got != 1 {
		t.Fatalf("initial epochs = %d, want 1 (New publishes the first epoch)", got)
	}
	sc := srv.AcquireScratch()
	defer srv.ReleaseScratch(sc)
	const n = 60
	for i := 0; i < n; i++ {
		res, err := srv.ResolveOnce(wl.Request(uint64(i)), sc)
		if err != nil {
			t.Fatalf("req %d: %v", i, err)
		}
		if res.Epoch != 1 || res.SimTime != 0 || res.Stale {
			t.Fatalf("req %d: pinned-epoch result %+v, want epoch 1 t=0 fresh", i, res)
		}
	}
	st := srv.Stats()
	if st.Requests != n || st.Errors != 0 || st.StaleServed != 0 {
		t.Fatalf("stats = %+v, want %d clean requests", st, n)
	}
	// Telemetry counters track the always-on stats exactly.
	reg := srv.Telemetry().Registry()
	if v := reg.Counter("serve_requests_total").Value(); v != n {
		t.Fatalf("serve_requests_total = %d, want %d", v, n)
	}
	if v := reg.Counter("serve_epoch_swaps_total").Value(); v != 1 {
		t.Fatalf("serve_epoch_swaps_total = %d, want 1", v)
	}
	if c := reg.Histogram("serve_request_latency_ms", nil).Count(); c != n {
		t.Fatalf("latency histogram count = %d, want %d", c, n)
	}
	// The workload mix reached space: hot requests must not all fall to
	// ground.
	res, err := srv.ResolveOnce(wl.Request(0), sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Res.Source == spacecdn.SourceGround {
		t.Fatalf("hot request served from ground: %+v", res)
	}
}

func TestServeSweeperAdvances(t *testing.T) {
	srv, wl := newTestServer(t, Config{Seed: 2, Step: 15 * time.Second, Interval: time.Millisecond})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	sc := srv.AcquireScratch()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Epochs < 4 && time.Now().Before(deadline) {
		if _, err := srv.ResolveOnce(wl.Request(0), sc); err != nil {
			t.Fatal(err)
		}
	}
	srv.ReleaseScratch(sc)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Epochs < 4 {
		t.Fatalf("sweeper published %d epochs, want >= 4", st.Epochs)
	}
	if ep := srv.Epoch(); ep.Time() != time.Duration(ep.Seq()-1)*15*time.Second {
		t.Fatalf("epoch %d pins t=%v, want lockstep with seq", ep.Seq(), ep.Time())
	}
	if st.SwapP99Ms <= 0 {
		t.Fatalf("swap latency p99 = %v, want positive", st.SwapP99Ms)
	}
	// Close is idempotent and the sweeper must have stopped.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	epochs := srv.Stats().Epochs
	time.Sleep(5 * time.Millisecond)
	if got := srv.Stats().Epochs; got != epochs {
		t.Fatalf("sweeper still publishing after Close: %d -> %d", epochs, got)
	}
}

func TestServeHTTP(t *testing.T) {
	srv, wl := newTestServer(t, Config{Seed: 3, Addr: "127.0.0.1:0", Interval: 5 * time.Millisecond})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	city := wl.Cities[0]

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	code, body := get("/resolve?lat=" + floatQ(city.Loc.LatDeg) + "&lon=" + floatQ(city.Loc.LonDeg) +
		"&iso2=" + city.Country + "&obj=" + string(wl.Hot.ID))
	if code != http.StatusOK {
		t.Fatalf("/resolve status %d: %s", code, body)
	}
	var decoded struct {
		Epoch  uint64 `json:"epoch"`
		TMs    int64  `json:"t_ms"`
		Source string `json:"source"`
		Sat    int    `json:"sat"`
		Hops   int    `json:"hops"`
		RTTUs  int64  `json:"rtt_us"`
	}
	if err := json.Unmarshal([]byte(body), &decoded); err != nil {
		t.Fatalf("response not JSON: %v (%s)", err, body)
	}
	if decoded.Epoch == 0 || decoded.RTTUs <= 0 {
		t.Fatalf("implausible response %+v", decoded)
	}
	if _, ok := spacecdn.SourceFromString(decoded.Source); !ok {
		t.Fatalf("unknown source %q", decoded.Source)
	}

	if code, _ := get("/resolve?lat=x&lon=0&iso2=MZ&obj=" + string(wl.Hot.ID)); code != http.StatusBadRequest {
		t.Fatalf("bad lat: status %d, want 400", code)
	}
	if code, _ := get("/resolve?lat=0&lon=0&iso2=MZ&obj=no-such-object"); code != http.StatusNotFound {
		t.Fatalf("unknown object: status %d, want 404", code)
	}

	// The telemetry introspection surface is mounted next to /resolve.
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "serve_requests_total") {
		t.Fatalf("/metrics missing serve counters: %d", code)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("clean shutdown: %v", err)
	}
}

func floatQ(f float64) string {
	b, _ := json.Marshal(f)
	return string(b)
}

// TestReplayDeterministic is the replay acceptance bar: same seed + same
// recorded request log => byte-identical response stream, regardless of
// serving concurrency.
func TestReplayDeterministic(t *testing.T) {
	cfg := Config{Seed: 4, ReplaySeed: 99}
	srv, wl := newTestServer(t, cfg)
	defer srv.Close()
	log := wl.Log(240)
	base, err := srv.Replay(log, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(base, []byte("\n")); n != len(log) {
		t.Fatalf("replay emitted %d lines, want %d", n, len(log))
	}
	for _, workers := range []int{2, 8} {
		got, err := srv.Replay(log, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, base) {
			t.Fatalf("workers=%d replay diverged from sequential stream", workers)
		}
	}
	// A live single-connection client sees the same bytes: arrival order is
	// log order, so the per-request-index streams line up with Replay's.
	srv2, wl2 := newTestServer(t, cfg)
	defer srv2.Close()
	sc := srv2.AcquireScratch()
	defer srv2.ReleaseScratch(sc)
	var live []byte
	for i := range log {
		res, err := srv2.ResolveOnce(wl2.Request(uint64(i)), sc)
		if err != nil {
			t.Fatalf("live req %d: %v", i, err)
		}
		live = appendResponse(live, res)
	}
	if !bytes.Equal(live, base) {
		t.Fatal("sequential live serving diverged from replay stream")
	}
	// Replay demands a replay seed.
	srv3, wl3 := newTestServer(t, Config{Seed: 4})
	defer srv3.Close()
	if _, err := srv3.Replay(wl3.Log(3), 1); err == nil {
		t.Fatal("replay without ReplaySeed must error")
	}
}

// TestServeSteadyAllocsFree pins the tentpole's allocation contract: the
// in-process request path allocates nothing at steady state (space-served
// requests, warmed pools and memos, telemetry attached with trace
// sampling off).
func TestServeSteadyAllocsFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not exact under the race detector")
	}
	srv, wl := newTestServer(t, Config{Seed: 5})
	defer srv.Close()
	sc := srv.AcquireScratch()
	defer srv.ReleaseScratch(sc)
	// Steady subset: requests the pinned epoch serves from space.
	var steady []spacecdn.Request
	for i := 0; i < 120; i++ {
		req := wl.Request(uint64(i))
		res, err := srv.ResolveOnce(req, sc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Res.Source != spacecdn.SourceGround {
			steady = append(steady, req)
		}
	}
	if len(steady) == 0 {
		t.Fatal("no space-served requests in workload")
	}
	allocs := testing.AllocsPerRun(50, func() {
		for _, r := range steady {
			if _, err := srv.ResolveOnce(r, sc); err != nil {
				t.Fatal(err)
			}
		}
	})
	if perReq := allocs / float64(len(steady)); perReq != 0 {
		t.Errorf("steady-state allocations = %v/req, want 0", perReq)
	}
}
