package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spacecdn/internal/faults"
	"spacecdn/internal/lifecycle"
	"spacecdn/internal/spacecdn"
)

// TestEpochSwapStress hammers the epoch-publication protocol: N resolver
// goroutines serve continuously while the sweeper advances sim time every
// millisecond, a fault plan activates and repairs mid-run, and the
// lifecycle applier fields cold-object misses. Run under -race this is the
// torn-read detector for the whole serving core; the in-test assertions
// add the semantic half — every response carries an (epoch, sim-time) pair
// the sweeper actually published, and the telemetry counters balance
// against what the workers observed.
func TestEpochSwapStress(t *testing.T) {
	const (
		step       = 15 * time.Second
		faultFrom  = 30 * time.Second  // outage covers epochs 3..20
		faultUntil = 300 * time.Second // repaired from epoch 21 on
		wantEpochs = 25                // run past activation AND repair
		workers    = 8
	)
	sys, err := spacecdn.NewSystem(spacecdn.DefaultConfig(), testConst, testLSN)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetFaultPlan(faults.NewPlanFromOutages(testConst.Total(), []faults.Outage{
		{Kind: faults.KindSatellite, Sat: 3, Start: faultFrom, End: faultUntil},
		{Kind: faults.KindSatellite, Sat: 11, Start: faultFrom, End: faultUntil},
	}))
	sys.SetLifecycle(lifecycle.NewManager(lifecycle.DefaultPolicy(), testConst.Total()))
	srv, err := New(sys, Config{Seed: 7, Step: step, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	wl, err := srv.PlaceWorkload(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	var (
		idx      atomic.Uint64 // shared request-index counter
		okTotal  atomic.Int64
		errTotal atomic.Int64
		stale    atomic.Int64
		maxEpoch atomic.Uint64
		stop     = make(chan struct{})
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := srv.AcquireScratch()
			defer srv.ReleaseScratch(sc)
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := srv.ResolveOnce(wl.Request(idx.Add(1)-1), sc)
				if err != nil {
					errTotal.Add(1)
					continue
				}
				okTotal.Add(1)
				if res.Stale {
					stale.Add(1)
				}
				// Torn-read checks: the (epoch, sim-time) pair must be one
				// the sweeper published as a unit — sim time advances in
				// lockstep with the sequence number — and the epoch must be
				// a real publication (monotonicity against the final count
				// is asserted after shutdown via maxEpoch).
				if res.Epoch == 0 || res.SimTime != time.Duration(res.Epoch-1)*step {
					t.Errorf("torn epoch read: seq %d paired with t=%v", res.Epoch, res.SimTime)
					return
				}
				for {
					seen := maxEpoch.Load()
					if res.Epoch <= seen || maxEpoch.CompareAndSwap(seen, res.Epoch) {
						break
					}
				}
			}
		}()
	}

	deadline := time.Now().Add(30 * time.Second)
	for srv.Stats().Epochs < wantEpochs && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait() // resolvers drain before Close stops the applier
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	st := srv.Stats()
	if st.Epochs < wantEpochs {
		t.Fatalf("sweeper published %d epochs in 30s, want >= %d", st.Epochs, wantEpochs)
	}
	if got := maxEpoch.Load(); got > st.Epochs {
		t.Fatalf("served epoch %d was never published (max %d)", got, st.Epochs)
	}
	if okTotal.Load() == 0 {
		t.Fatal("no successful requests under stress")
	}

	// Counters balance: the serve-layer counters match what the workers
	// observed, and the per-source resolve counters account for every
	// successful request exactly once.
	if st.Requests != okTotal.Load() || st.Errors != errTotal.Load() || st.StaleServed != stale.Load() {
		t.Fatalf("stats %+v disagree with workers (ok=%d errs=%d stale=%d)",
			st, okTotal.Load(), errTotal.Load(), stale.Load())
	}
	reg := srv.Telemetry().Registry()
	if v := reg.Counter("serve_requests_total").Value(); v != st.Requests {
		t.Fatalf("serve_requests_total = %d, want %d", v, st.Requests)
	}
	if v := reg.Counter("serve_errors_total").Value(); v != st.Errors {
		t.Fatalf("serve_errors_total = %d, want %d", v, st.Errors)
	}
	if v := reg.Counter("serve_stale_epoch_total").Value(); v != st.StaleServed {
		t.Fatalf("serve_stale_epoch_total = %d, want %d", v, st.StaleServed)
	}
	if v := reg.Counter("serve_epoch_swaps_total").Value(); uint64(v) != st.Epochs {
		t.Fatalf("serve_epoch_swaps_total = %d, want %d", v, st.Epochs)
	}
	var perSource int64
	for _, src := range spacecdn.Sources() {
		perSource += reg.Counter("spacecdn_resolve_requests_total", "source", src.String()).Value()
	}
	if perSource != st.Requests {
		t.Fatalf("per-source resolve counters sum to %d, want %d", perSource, st.Requests)
	}
	if v := reg.Histogram("serve_request_latency_ms", nil).Count(); v != st.Requests {
		t.Fatalf("latency histogram count = %d, want %d", v, st.Requests)
	}

	// The fault plan activated mid-run (epochs pinned degraded views) and
	// the run outlived the repair.
	if fs := sys.FaultStats(); fs.DegradedRequests == 0 {
		t.Fatal("fault plan never activated: zero degraded resolves")
	}
	if final := srv.Epoch(); final.Degraded() {
		t.Fatalf("final epoch %d still degraded after repair at %v", final.Seq(), faultUntil)
	}
}
