package serve

import (
	"fmt"

	"spacecdn/internal/content"
	"spacecdn/internal/geo"
	"spacecdn/internal/spacecdn"
)

// Workload is the daemon's standard serving mix: the hot/warm/cold object
// triple from experiments.ResolveWorkload, requested from every
// Starlink-covered client city. Request synthesis is a pure function of the
// request index, so a load generator can reconstruct any request stream
// (and a replay can re-derive a recorded log) without shared state.
type Workload struct {
	Cities []geo.City
	// Hot is pinned on each city's overhead satellite at placement time,
	// Warm is sparsely replicated so it resolves over ISLs, Cold lives only
	// on the ground CDN.
	Hot, Warm, Cold content.Object
}

// PlaceWorkload seeds the serving mix against the currently published
// epoch's snapshot and registers the objects for HTTP lookup. maxCities
// caps the client set (<= 0 keeps every Starlink-covered city). Placement
// mutates caches: call before serving starts, never during it.
func (s *Server) PlaceWorkload(maxCities int) (*Workload, error) {
	w := &Workload{
		Hot:  content.Object{ID: "srv-hot", Bytes: 64 << 20, Region: geo.RegionEurope, Class: content.ClassStatic},
		Warm: content.Object{ID: "srv-warm", Bytes: 256 << 20, Region: geo.RegionEurope, Class: content.ClassStatic},
		Cold: content.Object{ID: "srv-cold", Bytes: 1 << 30, Region: geo.RegionEurope, Class: content.ClassNews},
	}
	for _, c := range geo.Cities() {
		country, ok := geo.CountryByISO(c.Country)
		if !ok || !country.Starlink {
			continue
		}
		w.Cities = append(w.Cities, c)
	}
	if maxCities > 0 && len(w.Cities) > maxCities {
		w.Cities = w.Cities[:maxCities]
	}
	if len(w.Cities) == 0 {
		return nil, fmt.Errorf("serve: no Starlink-covered client cities")
	}
	snap := s.Epoch().Snapshot()
	now := snap.Time()
	for _, city := range w.Cities {
		if up, ok := snap.BestVisible(city.Loc); ok {
			s.sys.StoreVersioned(up.ID, w.Hot, now)
		}
	}
	if _, err := spacecdn.Apply(s.sys, spacecdn.PerPlaneSpacing{ReplicasPerPlane: 1}, w.Warm); err != nil {
		return nil, err
	}
	s.RegisterObjects(w.Hot, w.Warm, w.Cold)
	return w, nil
}

// Request synthesizes request i of the workload stream: the object class
// cycles hot/warm/cold and the client city advances every full cycle.
func (w *Workload) Request(i uint64) spacecdn.Request {
	city := w.Cities[int(i/3)%len(w.Cities)]
	var obj content.Object
	switch i % 3 {
	case 0:
		obj = w.Hot
	case 1:
		obj = w.Warm
	default:
		obj = w.Cold
	}
	return spacecdn.Request{Client: city.Loc, ISO2: city.Country, Obj: obj}
}

// Log materializes the first n workload requests — a recorded request log
// for Replay.
func (w *Workload) Log(n int) []spacecdn.Request {
	out := make([]spacecdn.Request, n)
	for i := range out {
		out[i] = w.Request(uint64(i))
	}
	return out
}
