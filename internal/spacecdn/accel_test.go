package spacecdn

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"spacecdn/internal/cache"
	"spacecdn/internal/constellation"
	"spacecdn/internal/content"
	"spacecdn/internal/geo"
	"spacecdn/internal/groundseg"
	"spacecdn/internal/lsn"
	"spacecdn/internal/stats"
)

// seedMixedWorkload stores the same placement into a system: per-city "hot"
// objects on the serving satellite, "warm" objects scattered over the fleet
// (reachable over ISLs), and nothing for "cold" objects. Returns the request
// mix covering all three resolution sources.
type accelReq struct {
	city geo.City
	obj  content.Object
}

func seedMixedWorkload(s *System, snap *constellation.Snapshot, cities []geo.City) []accelReq {
	var reqs []accelReq
	total := s.Constellation().Total()
	for i, city := range cities {
		hot := testObject(fmt.Sprintf("accel-hot-%d", i))
		if up, ok := snap.BestVisible(city.Loc); ok {
			s.Store(up.ID, hot)
		}
		warm := testObject(fmt.Sprintf("accel-warm-%d", i))
		s.Store(constellation.SatID((i*37+11)%total), warm)
		cold := testObject(fmt.Sprintf("accel-cold-%d", i))
		reqs = append(reqs,
			accelReq{city, hot}, accelReq{city, warm}, accelReq{city, cold})
	}
	return reqs
}

// TestResolveMatchesReference drives the accelerated Resolve and the
// preserved naive pipeline (ResolveReference) over identical systems, request
// streams and rng seeds, and requires byte-identical Resolution streams —
// the acceptance bar for the acceleration layer.
func TestResolveMatchesReference(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"always-on", DefaultConfig()},
		{"duty-cycled", func() Config {
			cfg := DefaultConfig()
			cfg.DutyCycle = &DutyCycleConfig{Fraction: 0.5, Slot: time.Minute, Seed: 7}
			return cfg
		}()},
	}
	cities := geo.Cities()
	if len(cities) > 25 {
		cities = cities[:25]
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fast := newSystem(t, tc.cfg)
			naive := newSystem(t, tc.cfg)
			for _, tm := range []time.Duration{0, 42 * time.Second} {
				// Fresh snapshots per system so memo state cannot leak
				// between the two pipelines.
				snapFast := testConst.Snapshot(tm)
				snapNaive := testConst.Snapshot(tm)
				reqsFast := seedMixedWorkload(fast, snapFast, cities)
				reqsNaive := seedMixedWorkload(naive, snapNaive, cities)
				rngFast := stats.NewRand(99)
				rngNaive := stats.NewRand(99)
				for i := range reqsFast {
					rf, errF := fast.Resolve(reqsFast[i].city.Loc, reqsFast[i].city.Country, reqsFast[i].obj, snapFast, rngFast)
					rn, errN := naive.ResolveReference(reqsNaive[i].city.Loc, reqsNaive[i].city.Country, reqsNaive[i].obj, snapNaive, rngNaive)
					if (errF == nil) != (errN == nil) {
						t.Fatalf("t=%v req %d (%s): err mismatch fast=%v naive=%v", tm, i, reqsFast[i].obj.ID, errF, errN)
					}
					if rf != rn {
						t.Fatalf("t=%v req %d (%s): fast %+v != naive %+v", tm, i, reqsFast[i].obj.ID, rf, rn)
					}
				}
				// The side-effect streams must match too: identical cache
				// stats on every satellite.
				for id := 0; id < testConst.Total(); id++ {
					sf := fast.CacheOf(constellation.SatID(id)).Stats()
					sn := naive.CacheOf(constellation.SatID(id)).Stats()
					if sf != sn {
						t.Fatalf("t=%v sat %d: stats diverged: fast %+v naive %+v", tm, id, sf, sn)
					}
				}
				fast.ClearAll()
				naive.ClearAll()
			}
		})
	}
}

// TestSteadyStateResolveZeroAlloc pins the warm request path — overhead hits
// and ISL hits with telemetry detached — to zero allocations per resolve.
func TestSteadyStateResolveZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on the hot path")
	}
	s := newSystem(t, DefaultConfig())
	snap := testConst.Snapshot(0)
	city := geo.NewPoint(40.4168, -3.7038) // Madrid
	up, ok := snap.BestVisible(city)
	if !ok {
		t.Fatal("no satellite visible")
	}
	hot := testObject("zeroalloc-hot")
	s.Store(up.ID, hot)
	warm := testObject("zeroalloc-warm")
	// Place the warm object a few ISL hops out so stage 2 resolves it.
	g := snap.ISLGraph()
	ring := g.WithinHops(1, 0) // unused guard; keep graph built
	_ = ring
	warmSat := snap.ISLNeighbors(up.ID)[0]
	warmSat2 := snap.ISLNeighbors(warmSat)[0]
	s.Store(warmSat2, warm)
	rng := stats.NewRand(5)

	for _, tc := range []struct {
		name string
		obj  content.Object
		want Source
	}{
		{"overhead", hot, SourceOverhead},
		{"isl", warm, SourceISL},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Warm every layer: grid, memo, scratch pools.
			res, err := s.Resolve(city, "ES", tc.obj, snap, rng)
			if err != nil || res.Source != tc.want {
				t.Fatalf("warmup: res %+v err %v, want source %v", res, err, tc.want)
			}
			allocs := testing.AllocsPerRun(200, func() {
				if _, err := s.Resolve(city, "ES", tc.obj, snap, rng); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state %s Resolve allocs/op = %v, want 0", tc.name, allocs)
			}
		})
	}
}

// TestIslOneWayUnreachable is the regression test for the silent-(0,0) bug:
// with cross-plane ISLs disabled every plane is an isolated ring, and pricing
// a path into another plane must report unreachable, not free.
func TestIslOneWayUnreachable(t *testing.T) {
	ccfg := constellation.DefaultConfig()
	ccfg.CrossPlaneISLs = false
	c := constellation.MustNew(ccfg)
	l := lsn.NewModel(c, groundseg.NewCatalog(), lsn.DefaultConfig())
	s, err := NewSystem(DefaultConfig(), c, l)
	if err != nil {
		t.Fatal(err)
	}
	snap := c.Snapshot(0)
	inPlane := c.ID(0, 3)
	otherPlane := c.ID(1, 0)

	if d, h, ok := s.islOneWay(snap, c.ID(0, 0), inPlane); !ok || h == 0 || d <= 0 {
		t.Fatalf("intra-plane path should be reachable, got (%v, %d, %v)", d, h, ok)
	}
	if d, h, ok := s.islOneWay(snap, c.ID(0, 0), otherPlane); ok || d != 0 || h != 0 {
		t.Fatalf("cross-plane path in a partitioned graph must be (0, 0, false), got (%v, %d, %v)", d, h, ok)
	}

	// End to end: a replica that exists only in an unreachable plane must
	// fall through to the ground stage instead of being served for free.
	city := geo.NewPoint(40.4168, -3.7038)
	up, ok := snap.BestVisible(city)
	if !ok {
		t.Fatal("no satellite visible")
	}
	obj := testObject("partitioned")
	stored := false
	for p := 0; p < c.Planes(); p++ {
		id := c.ID(p, 0)
		if c.Plane(up.ID) != p {
			s.Store(id, obj)
			stored = true
			break
		}
	}
	if !stored {
		t.Fatal("could not place replica off-plane")
	}
	res, err := s.Resolve(city, "ES", obj, snap, stats.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceGround {
		t.Fatalf("unreachable replica resolved from %v, want ground", res.Source)
	}
	if _, _, found := s.NearestReplicaRTT(city, obj.ID, snap, stats.NewRand(3)); found {
		t.Fatal("NearestReplicaRTT found an unreachable replica")
	}
}

// TestReplicaIndexTracksCaches drives random placement and eviction through
// every mutation path and checks the bitset index against a Peek scan.
func TestReplicaIndexTracksCaches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheBytesPerSat = 3 << 20 // three 1 MiB objects per satellite: forces capacity evictions
	s := newSystem(t, cfg)
	total := testConst.Total()
	rng := rand.New(rand.NewSource(17))
	objs := make([]content.Object, 12)
	for i := range objs {
		objs[i] = testObject(fmt.Sprintf("ri-%d", i))
	}
	check := func(when string) {
		t.Helper()
		for _, o := range objs {
			want := 0
			for id := 0; id < total; id++ {
				if s.CacheOf(constellation.SatID(id)).Peek(cache.Key(o.ID)) {
					want++
				}
			}
			if got := s.ReplicaCount(o.ID); got != want {
				t.Fatalf("%s: object %s: index count %d != peek scan %d", when, o.ID, got, want)
			}
			set := s.ReplicaSet(o.ID)
			for id := 0; id < total; id++ {
				if set.Test(id) != s.CacheOf(constellation.SatID(id)).Peek(cache.Key(o.ID)) {
					t.Fatalf("%s: object %s sat %d: bitset disagrees with cache", when, o.ID, id)
				}
			}
		}
	}
	for round := 0; round < 40; round++ {
		id := constellation.SatID(rng.Intn(64)) // small satellite pool → churn
		o := objs[rng.Intn(len(objs))]
		if rng.Float64() < 0.7 {
			s.Store(id, o)
		} else {
			s.Evict(id, o.ID)
		}
	}
	check("after churn")

	// Region-change eviction path (GeoAware makeRoom) also feeds the index.
	gc := s.GeoCacheOf(3)
	gc.SetRegion(geo.RegionEurope.String())
	for i := 0; i < 4; i++ { // overflow: out-of-region objects evicted first
		s.Store(3, objs[i])
	}
	check("after region churn")

	s.ClearAll()
	for _, o := range objs {
		if s.ReplicaCount(o.ID) != 0 {
			t.Fatalf("ClearAll left %s with replicas", o.ID)
		}
	}
	// Listeners must be rewired after ClearAll.
	s.Store(9, objs[0])
	if s.ReplicaCount(objs[0].ID) != 1 || !s.ReplicaSet(objs[0].ID).Test(9) {
		t.Fatal("index not rewired after ClearAll")
	}
}

// TestActiveSetMatchesActive checks the cached duty-cycle bitset bit-for-bit
// against the per-satellite predicate, across slots.
func TestActiveSetMatchesActive(t *testing.T) {
	d := NewDutyCycler(DutyCycleConfig{Fraction: 0.3, Slot: time.Minute, Seed: 11}, 500)
	for _, tm := range []time.Duration{0, 30 * time.Second, time.Minute, 5 * time.Minute} {
		set := d.ActiveSet(tm)
		for i := 0; i < 500; i++ {
			if set.Test(i) != d.Active(constellation.SatID(i), tm) {
				t.Fatalf("t=%v sat %d: bitset %v != Active %v", tm, i, set.Test(i), d.Active(constellation.SatID(i), tm))
			}
		}
	}
	// Within one slot the cached set is reused without allocation.
	d.ActiveSet(0)
	allocs := testing.AllocsPerRun(50, func() { d.ActiveSet(10 * time.Second) })
	if allocs != 0 {
		t.Fatalf("same-slot ActiveSet allocs/op = %v, want 0", allocs)
	}
}

func BenchmarkResolveAccelerated(b *testing.B) {
	s, err := NewSystem(DefaultConfig(), testConst, testLSN)
	if err != nil {
		b.Fatal(err)
	}
	snap := testConst.Snapshot(0)
	city := geo.NewPoint(40.4168, -3.7038)
	up, _ := snap.BestVisible(city)
	warm := testObject("bench-warm")
	s.Store(snap.ISLNeighbors(snap.ISLNeighbors(up.ID)[0])[0], warm)
	rng := stats.NewRand(1)
	s.Resolve(city, "ES", warm, snap, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Resolve(city, "ES", warm, snap, rng)
	}
}

func BenchmarkResolveReference(b *testing.B) {
	s, err := NewSystem(DefaultConfig(), testConst, testLSN)
	if err != nil {
		b.Fatal(err)
	}
	snap := testConst.Snapshot(0)
	city := geo.NewPoint(40.4168, -3.7038)
	up, _ := snap.BestVisible(city)
	warm := testObject("bench-warm")
	s.Store(snap.ISLNeighbors(snap.ISLNeighbors(up.ID)[0])[0], warm)
	rng := stats.NewRand(1)
	s.ResolveReference(city, "ES", warm, snap, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResolveReference(city, "ES", warm, snap, rng)
	}
}
