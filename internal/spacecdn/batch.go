package spacecdn

import (
	"spacecdn/internal/constellation"
	"spacecdn/internal/content"
	"spacecdn/internal/geo"
	"spacecdn/internal/parallel"
	"spacecdn/internal/stats"
)

// Batch resolution: the parallel counterpart of Resolve. A batch is sharded
// into a fixed number of contiguous spans — fixed meaning derived from the
// batch size only, never from the worker count — and every shard gets its
// own random stream split off the caller's rng. Workers then execute shards
// concurrently, writing each result into its request's slot. Because no
// request's outcome depends on another shard's schedule, a workers=1 run and
// a workers=N run produce byte-identical results for the same seed.
//
// Resolution is read-only over cache *membership*: Resolve never inserts or
// evicts, and the per-cache hit accounting it performs is mutex-protected
// and commutative (counter increments), so concurrent shards are race-clean
// and the final counters are schedule-independent. Placement (Store/Apply)
// must happen before the batch, not during it.

// Request is one client object request in a batch.
type Request struct {
	Client geo.Point
	ISO2   string
	Obj    content.Object
}

// BatchResult is the outcome of one request: a Resolution or an error.
type BatchResult struct {
	Resolution
	Err error
}

// batchShardTarget is the default shard count for ResolveAll. It is a
// determinism constant, not a tuning knob: results are identical for any
// value, but changing it reshuffles the per-shard random streams and thus
// the sampled jitter, so it stays fixed. 64 shards keep 16 workers busy
// with uneven per-request costs (ground fallbacks are ~10x an overhead hit).
const batchShardTarget = 64

// ResolveAll resolves every request against one constellation snapshot,
// fanning the batch across at most workers goroutines (workers <= 0 means
// GOMAXPROCS). Results are returned in request order. The rng is consumed
// deterministically: ResolveAll splits it into one stream per shard, so two
// calls with equal batches, snapshots and rng states return identical
// results regardless of the worker count.
//
// Attached telemetry observes every request exactly as the sequential path
// does; counter totals are schedule-independent, while the *identity* of
// trace-sampled requests (1-in-stride over arrival order) depends on the
// interleaving.
func (s *System) ResolveAll(reqs []Request, snap *constellation.Snapshot, rng *stats.Rand, workers int) []BatchResult {
	if len(reqs) == 0 {
		return nil
	}
	// An active lifecycle manager switches to the two-phase batch form
	// (read-only sharded resolve, then sequential intent application with
	// request coalescing) — unless active faults claim the batch first, in
	// which case the degraded pipeline runs per request as usual. Both paths
	// are byte-identical across worker counts.
	if s.lc != nil && s.lc.Active() {
		if s.faults == nil || s.faults.ViewAt(snap.Time()).Empty() {
			return s.resolveAllLifecycle(reqs, snap, rng, workers)
		}
	}
	out := make([]BatchResult, len(reqs))
	spans := parallel.Split(len(reqs), batchShardTarget)
	rngs := rng.Split(len(spans))
	// Force the lazy ISL graph build before the fan-out so shards never
	// contend on the sync.Once, and the build is never timed into a shard.
	snap.ISLGraph()
	// Shard functions only write their own spans' slots; Run's error joining
	// is unused because per-request errors are data, not failures.
	_ = parallel.Run(workers, len(spans), func(shard int) error {
		r := rngs[shard]
		for i := spans[shard].Lo; i < spans[shard].Hi; i++ {
			req := reqs[i]
			res, err := s.Resolve(req.Client, req.ISO2, req.Obj, snap, r)
			out[i] = BatchResult{Resolution: res, Err: err}
		}
		return nil
	})
	return out
}
