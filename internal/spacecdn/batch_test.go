package spacecdn

import (
	"sync"
	"testing"

	"spacecdn/internal/constellation"
	"spacecdn/internal/content"
	"spacecdn/internal/geo"
	"spacecdn/internal/stats"
	"spacecdn/internal/telemetry"
)

// batchRequests builds a mixed batch: a pinned object on each client's
// overhead satellite (overhead hits), a sparsely replicated one (ISL
// searches) and an unreplicated one (ground fallback) from a spread of
// client cities, repeated until the batch has n requests. Placement happens
// here — before the batch — matching ResolveAll's read-only contract.
func batchRequests(t *testing.T, s *System, snap *constellation.Snapshot, n int) []Request {
	t.Helper()
	hot := content.Object{ID: "batch-hot", Bytes: 1 << 20, Region: geo.RegionEurope}
	sparse := content.Object{ID: "batch-sparse", Bytes: 1 << 20, Region: geo.RegionEurope}
	cold := content.Object{ID: "batch-cold", Bytes: 1 << 20, Region: geo.RegionEurope}
	if _, err := Apply(s, PerPlaneSpacing{ReplicasPerPlane: 1}, sparse); err != nil {
		t.Fatal(err)
	}
	clients := []struct {
		loc geo.Point
		iso string
	}{
		{geo.NewPoint(-25.97, 32.57), "MZ"},
		{geo.NewPoint(-1.29, 36.82), "KE"},
		{geo.NewPoint(50.11, 8.68), "DE"},
		{geo.NewPoint(40.42, -3.70), "ES"},
		{geo.NewPoint(-34.60, -58.38), "AR"},
	}
	for _, c := range clients {
		if up, ok := snap.BestVisible(c.loc); ok {
			s.Store(up.ID, hot)
		}
	}
	objs := []content.Object{hot, sparse, cold}
	reqs := make([]Request, 0, n)
	for i := 0; len(reqs) < n; i++ {
		c := clients[i%len(clients)]
		reqs = append(reqs, Request{Client: c.loc, ISO2: c.iso, Obj: objs[i%len(objs)]})
	}
	return reqs
}

// TestResolveAllMatchesSequential is the core determinism contract: for the
// same seed, a parallel batch is byte-identical to the workers=1 batch, and
// both match issuing the same per-shard streams through Resolve by hand.
func TestResolveAllMatchesSequential(t *testing.T) {
	sysA := newSystem(t, DefaultConfig())
	sysB := newSystem(t, DefaultConfig())
	snap := testConst.Snapshot(0)
	reqsA := batchRequests(t, sysA, snap, 300)
	reqsB := batchRequests(t, sysB, snap, 300)

	seq := sysA.ResolveAll(reqsA, snap, stats.NewRand(99), 1)
	par := sysB.ResolveAll(reqsB, snap, stats.NewRand(99), 8)
	if len(seq) != len(par) {
		t.Fatalf("result lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if (seq[i].Err == nil) != (par[i].Err == nil) {
			t.Fatalf("request %d error mismatch: %v vs %v", i, seq[i].Err, par[i].Err)
		}
		if seq[i].Resolution != par[i].Resolution {
			t.Fatalf("request %d differs:\n  seq %+v\n  par %+v", i, seq[i].Resolution, par[i].Resolution)
		}
	}
	// The batch exercised every source, or the test proves nothing.
	seen := map[Source]int{}
	for _, r := range seq {
		if r.Err == nil {
			seen[r.Source]++
		}
	}
	for _, src := range Sources() {
		if seen[src] == 0 {
			t.Errorf("batch never hit source %s: %v", src, seen)
		}
	}
}

// TestResolveAllRepeatable: two parallel runs over identical fresh systems
// agree with each other (no hidden scheduling dependence).
func TestResolveAllRepeatable(t *testing.T) {
	run := func() []BatchResult {
		sys := newSystem(t, DefaultConfig())
		snap := testConst.Snapshot(0)
		reqs := batchRequests(t, sys, snap, 200)
		return sys.ResolveAll(reqs, snap, stats.NewRand(5), 4)
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Resolution != b[i].Resolution {
			t.Fatalf("request %d differs across runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestResolveAllSeedMatters: a different seed must actually change the
// sampled jitter.
func TestResolveAllSeedMatters(t *testing.T) {
	sys := newSystem(t, DefaultConfig())
	snap := testConst.Snapshot(0)
	reqs := batchRequests(t, sys, snap, 60)
	a := sys.ResolveAll(reqs, snap, stats.NewRand(1), 4)
	b := sys.ResolveAll(reqs, snap, stats.NewRand(2), 4)
	same := true
	for i := range a {
		if a[i].Resolution != b[i].Resolution {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical batches")
	}
}

func TestResolveAllEmpty(t *testing.T) {
	sys := newSystem(t, DefaultConfig())
	if out := sys.ResolveAll(nil, testConst.Snapshot(0), stats.NewRand(1), 4); out != nil {
		t.Errorf("empty batch returned %v", out)
	}
}

// TestResolveAllTelemetryTotals: batch totals match the per-request results
// and the histogram count, regardless of parallel interleaving.
func TestResolveAllTelemetryTotals(t *testing.T) {
	sys := newSystem(t, DefaultConfig())
	tel := telemetry.New(0.1)
	sys.SetTelemetry(tel)
	defer sys.SetTelemetry(nil)
	snap := testConst.Snapshot(0)
	reqs := batchRequests(t, sys, snap, 240)
	out := sys.ResolveAll(reqs, snap, stats.NewRand(7), 6)

	want := map[string]int64{}
	var wantOK int64
	for _, r := range out {
		if r.Err == nil {
			want[r.Source.String()]++
			wantOK++
		}
	}
	ts := tel.Snapshot()
	for src, n := range want {
		cv, ok := ts.Counter("spacecdn_resolve_requests_total", map[string]string{"source": src})
		if !ok || cv.Value != n {
			t.Errorf("counter{source=%s} = %+v, want %d", src, cv, n)
		}
	}
	hv, ok := ts.Histogram("spacecdn_resolve_rtt_ms")
	if !ok || hv.Count != wantOK {
		t.Errorf("rtt histogram count = %+v, want %d", hv, wantOK)
	}
	if len(ts.Traces) == 0 {
		t.Error("no traces sampled from the batch")
	}
}

// TestResolveAllRaceStress hammers one system — and one telemetry registry —
// with concurrent ResolveAll batches and direct Resolve calls. Its job is to
// fail under -race if any shared state on the resolve path (snapshot graph,
// caches, counters, trace sink) is unsynchronized.
func TestResolveAllRaceStress(t *testing.T) {
	sys := newSystem(t, DefaultConfig())
	sys.SetTelemetry(telemetry.New(0.05))
	defer sys.SetTelemetry(nil)
	// A fresh snapshot so the lazy ISL graph build itself is part of the race.
	snap := testConst.Snapshot(123)
	reqs := batchRequests(t, sys, snap, 120)

	const batches = 4
	var wg sync.WaitGroup
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			out := sys.ResolveAll(reqs, snap, stats.NewRand(int64(b)), 4)
			for i, r := range out {
				if r.Err == nil && r.RTT <= 0 {
					t.Errorf("batch %d request %d: non-positive RTT %v", b, i, r.RTT)
				}
			}
		}(b)
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			rng := stats.NewRand(int64(100 + b))
			for i := 0; i < 40; i++ {
				req := reqs[i%len(reqs)]
				if _, err := sys.Resolve(req.Client, req.ISO2, req.Obj, snap, rng); err != nil && req.Obj.ID != "batch-cold" {
					t.Errorf("resolve %d: %v", i, err)
				}
			}
		}(b)
	}
	wg.Wait()
}
