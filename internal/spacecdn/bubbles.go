package spacecdn

import (
	"time"

	"spacecdn/internal/constellation"
	"spacecdn/internal/content"
	"spacecdn/internal/geo"
)

// Content bubbles (paper §5): satellite orbits and regional content
// popularity are both predictable, so a satellite approaching a region's
// field of view can prefetch that region's popular content and evict the
// content of the region it is leaving — "the infrastructure moves but the
// content remains accessible".

// BubbleConfig parameterizes the bubble manager.
type BubbleConfig struct {
	// TopN popular objects per region are kept in the bubble.
	TopN int
	// LookaheadTime is how far ahead of the satellite's motion the region
	// is predicted (prefetch before arrival).
	Lookahead time.Duration
}

// DefaultBubbleConfig prefetches each region's top 50 objects two minutes
// before a satellite enters the region.
func DefaultBubbleConfig() BubbleConfig {
	return BubbleConfig{TopN: 50, Lookahead: 2 * time.Minute}
}

// BubbleManager maintains localized content bubbles on the moving fleet.
type BubbleManager struct {
	sys *System
	cat *content.Catalog
	cfg BubbleConfig
	// lastRegion remembers each satellite's current bubble region.
	lastRegion []geo.Region
}

// NewBubbleManager creates a manager over a system and catalog.
func NewBubbleManager(sys *System, cat *content.Catalog, cfg BubbleConfig) *BubbleManager {
	return &BubbleManager{
		sys:        sys,
		cat:        cat,
		cfg:        cfg,
		lastRegion: make([]geo.Region, sys.Constellation().Total()),
	}
}

// RegionUnder returns the content region a satellite serves at time t:
// the region of the country whose reference city is nearest to the
// satellite's (lookahead-predicted) sub-point. Ocean passes return the
// nearest region as well — content for the coast ahead.
func (m *BubbleManager) RegionUnder(id constellation.SatID, t time.Duration) geo.Region {
	el := m.sys.Constellation().Elements(id)
	sub := el.SubPoint(t + m.cfg.Lookahead)
	best := geo.RegionUnknown
	bestD := -1.0
	for _, city := range geo.Cities() {
		d := geo.HaversineKm(sub, city.Loc)
		if bestD < 0 || d < bestD {
			bestD = d
			best = city.Region
		}
	}
	return best
}

// Update refreshes the bubbles at time t: for every satellite whose
// (predicted) region changed, it retargets the geo-aware cache and
// prefetches the new region's top-N objects. It returns the number of
// satellites whose bubbles were retargeted.
func (m *BubbleManager) Update(t time.Duration) int {
	changed := 0
	for i := 0; i < m.sys.Constellation().Total(); i++ {
		id := constellation.SatID(i)
		r := m.RegionUnder(id, t)
		if r == m.lastRegion[i] {
			continue
		}
		m.lastRegion[i] = r
		changed++
		gc := m.sys.GeoCacheOf(id)
		gc.SetRegion(r.String())
		// Prefetch the new region's top objects; the geo-aware policy
		// evicts the old region's content first as space is needed.
		top := m.cat.TopN(r, m.cfg.TopN)
		for _, o := range top {
			m.sys.Store(id, o)
		}
	}
	return changed
}

// LocalHitRate measures how well bubbles serve local interest: the fraction
// of the region's top-N objects resolvable from satellites currently
// overhead (within the client's view) at time t, for a client at loc.
func (m *BubbleManager) LocalHitRate(loc geo.Point, region geo.Region, snap *constellation.Snapshot) float64 {
	vis := snap.Visible(loc)
	if len(vis) == 0 {
		return 0
	}
	top := m.cat.TopN(region, m.cfg.TopN)
	if len(top) == 0 {
		return 0
	}
	hits := 0
	for _, o := range top {
		for _, v := range vis {
			if m.sys.HasObject(v.ID, o.ID, snap.Time()) {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(top))
}
