package spacecdn

import (
	"testing"
	"time"

	"spacecdn/internal/cache"
	"spacecdn/internal/constellation"
	"spacecdn/internal/content"
	"spacecdn/internal/geo"
)

func bubbleCatalog(t *testing.T) *content.Catalog {
	t.Helper()
	cat, err := content.GenerateCatalog(content.CatalogConfig{
		Objects: 600, MeanObjectBytes: 1 << 20, ZipfS: 0.9, RegionBoost: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestRegionUnder(t *testing.T) {
	s := newSystem(t, DefaultConfig())
	m := NewBubbleManager(s, bubbleCatalog(t), BubbleConfig{TopN: 20, Lookahead: 0})
	snap := testConst.Snapshot(0)
	// The satellite over Frankfurt should be in the European bubble; the one
	// over Nairobi in the African one.
	fra := snap.Nearest(geo.NewPoint(50.11, 8.68))
	if r := m.RegionUnder(fra.ID, 0); r != geo.RegionEurope {
		t.Errorf("region under Frankfurt sat = %v", r)
	}
	nbo := snap.Nearest(geo.NewPoint(-1.29, 36.82))
	if r := m.RegionUnder(nbo.ID, 0); r != geo.RegionAfrica {
		t.Errorf("region under Nairobi sat = %v", r)
	}
}

func TestBubbleUpdatePrefetches(t *testing.T) {
	s := newSystem(t, DefaultConfig())
	cat := bubbleCatalog(t)
	m := NewBubbleManager(s, cat, BubbleConfig{TopN: 10, Lookahead: 0})
	changed := m.Update(0)
	if changed != testConst.Total() {
		t.Errorf("first update changed %d, want all %d", changed, testConst.Total())
	}
	// Second update at the same time: regions unchanged, nothing to do.
	if again := m.Update(0); again != 0 {
		t.Errorf("immediate re-update changed %d, want 0", again)
	}
	// The satellite over Nairobi must now hold Africa's hottest object.
	snap := testConst.Snapshot(0)
	nbo := snap.Nearest(geo.NewPoint(-1.29, 36.82))
	hot := cat.ByRank(geo.RegionAfrica, 0)
	if !s.HasObject(nbo.ID, hot.ID, 0) {
		t.Error("hottest African object not prefetched over Nairobi")
	}
}

func TestBubbleLocalHitRate(t *testing.T) {
	s := newSystem(t, DefaultConfig())
	cat := bubbleCatalog(t)
	m := NewBubbleManager(s, cat, BubbleConfig{TopN: 15, Lookahead: 0})
	snap := testConst.Snapshot(0)
	loc := geo.NewPoint(-25.97, 32.57) // Maputo
	if hr := m.LocalHitRate(loc, geo.RegionAfrica, snap); hr != 0 {
		t.Errorf("hit rate before any placement = %v", hr)
	}
	m.Update(0)
	hr := m.LocalHitRate(loc, geo.RegionAfrica, snap)
	if hr < 0.5 {
		t.Errorf("local hit rate after bubble update = %v, want >= 0.5", hr)
	}
	// No coverage: zero.
	if got := m.LocalHitRate(geo.NewPoint(89.9, 0), geo.RegionEurope, snap); got != 0 {
		t.Errorf("polar hit rate = %v", got)
	}
}

func TestBubblesFollowMotion(t *testing.T) {
	// As time advances half an orbit, satellites change regions, and a new
	// Update retargets a significant share of the fleet.
	s := newSystem(t, DefaultConfig())
	m := NewBubbleManager(s, bubbleCatalog(t), BubbleConfig{TopN: 5, Lookahead: 0})
	m.Update(0)
	changed := m.Update(45 * time.Minute)
	if changed < testConst.Total()/4 {
		t.Errorf("after half an orbit only %d/%d bubbles moved", changed, testConst.Total())
	}
}

func TestBubbleEvictionUsesGeoPolicy(t *testing.T) {
	// A tiny cache forces eviction: after crossing regions the old region's
	// content should be evicted before the new region's.
	cfg := DefaultConfig()
	cfg.CacheBytesPerSat = 8 << 20 // fits only a few objects
	s := newSystem(t, cfg)
	cat := bubbleCatalog(t)

	sat := constellation.SatID(0)
	gc := s.GeoCacheOf(sat)
	gc.SetRegion(geo.RegionAfrica.String())
	afHot := cat.TopN(geo.RegionAfrica, 3)
	for _, o := range afHot {
		if o.Bytes < cfg.CacheBytesPerSat {
			s.Store(sat, o)
		}
	}
	// Cross to Europe and fill with European content.
	gc.SetRegion(geo.RegionEurope.String())
	for _, o := range cat.TopN(geo.RegionEurope, 12) {
		if o.Bytes < cfg.CacheBytesPerSat {
			s.Store(sat, o)
		}
	}
	// African items should be gone (they were out-of-region ballast).
	remainingAfrican := 0
	for _, o := range afHot {
		if o.Region == geo.RegionAfrica && s.CacheOf(sat).Peek(cache.Key(o.ID)) {
			remainingAfrican++
		}
	}
	if remainingAfrican > 1 {
		t.Errorf("%d African objects survived the European fill", remainingAfrican)
	}
}
