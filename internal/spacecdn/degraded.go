package spacecdn

import (
	"fmt"

	"spacecdn/internal/cache"
	"spacecdn/internal/constellation"
	"spacecdn/internal/content"
	"spacecdn/internal/faults"
	"spacecdn/internal/geo"
	"spacecdn/internal/orbit"
	"spacecdn/internal/routing"
	"spacecdn/internal/stats"
)

// FailoverKind classifies degraded-mode reroutes, one per stage of the
// resolve pipeline.
type FailoverKind int

const (
	// FailoverUplink: the healthy overhead satellite is dead; the request
	// re-homed to the next surviving visible satellite.
	FailoverUplink FailoverKind = iota
	// FailoverReplica: the object's replica set intersects the dead mask;
	// the ISL search had to route past dead holders.
	FailoverReplica
	// FailoverPoP: the ground fallback served from a PoP other than the
	// client's healthy assignment.
	FailoverPoP

	numFailoverKinds // keep last: sizes the name table and label arrays
)

// failoverNames is the exhaustive name table; the [numFailoverKinds] bound
// makes a constant added without a name a compile error.
var failoverNames = [numFailoverKinds]string{
	FailoverUplink:  "uplink",
	FailoverReplica: "replica",
	FailoverPoP:     "pop",
}

func (k FailoverKind) String() string {
	if k >= 0 && int(k) < len(failoverNames) {
		return failoverNames[k]
	}
	return fmt.Sprintf("failover(%d)", int(k))
}

// FailoverKinds returns every failover kind, in declaration order.
func FailoverKinds() []FailoverKind {
	out := make([]FailoverKind, numFailoverKinds)
	for i := range out {
		out[i] = FailoverKind(i)
	}
	return out
}

// resolveDegraded is the fault-aware resolve pipeline, entered only when the
// attached fault plan has at least one active outage at the snapshot time.
// It preserves the three-stage strategy of resolve but reroutes around dead
// hardware, in failover order:
//
//  1. dead overhead satellite → the next surviving visible one (the masked
//     view's BestVisible);
//  2. dead replica holders and relays → excluded from the ISL search, which
//     runs over the masked graph where dead satellites have no edges;
//  3. dead PoP → the next-nearest live PoP (lsn.ResolvePathDegraded).
//
// A request errors only when no path — space or ground — survives the fault
// state. Each failover advances its always-on counter and, when telemetry is
// attached, its labelled counter and the degraded-source histogram.
func (s *System) resolveDegraded(client geo.Point, iso2 string, obj content.Object, snap *constellation.Snapshot, fv *faults.View, rng *stats.Rand, d *resolveDetail) (Resolution, error) {
	s.fstats.degraded.Add(1)
	if d != nil {
		d.degraded = true
	}
	view := snap.Masked(fv.Epoch, fv.DeadSats, fv.DeadLinks)

	up, ok := snap.BestVisible(client)
	if ok && fv.SatDead(up.ID) {
		s.fstats.uplinkFO.Add(1)
		if d != nil {
			d.uplinkFailover = true
		}
		up, ok = view.BestVisible(client)
	}
	if !ok {
		return Resolution{}, fmt.Errorf("spacecdn: no surviving satellite visible from %v", client)
	}
	t := snap.Time()
	upDelay := orbit.PropagationDelay(up.SlantKm)
	sched := s.schedDelay(rng)
	if d != nil {
		d.uplinkRTT = 2 * upDelay
	}

	// Stage 1: directly overhead. The serving satellite is alive by
	// construction; duty cycling and cache contents gate as in health.
	if s.Active(up.ID, t) && s.cacheGet(up.ID, obj.ID) {
		return Resolution{Source: SourceOverhead, Sat: up.ID, RTT: 2*upDelay + sched}, nil
	}

	// Stage 2: nearest surviving replica over the masked ISL graph. Dead
	// satellites have no edges there, so the search can neither pick a dead
	// holder nor relay through a dead satellite; a replica set touching the
	// dead mask records the replica failover.
	g := view.ISLGraph()
	members := s.replicas.bitset(cache.Key(obj.ID))
	if members.IntersectsAny(fv.DeadSats) {
		s.fstats.replicaFO.Add(1)
		if d != nil {
			d.replicaFailover = true
		}
	}
	if hit, ok := g.NearestInSet(routing.NodeID(up.ID), s.cfg.MaxISLSearchHops, members, s.activeSet(t)); ok {
		target := constellation.SatID(hit.Node)
		if islRTT, hops, reachable := s.islRoundTrip(view, up.ID, target); reachable {
			s.caches[int(target)].Get(cache.Key(obj.ID))
			if d != nil {
				d.islRTT = islRTT
			}
			return Resolution{
				Source: SourceISL,
				Sat:    target,
				Hops:   hops,
				RTT:    2*upDelay + islRTT + sched,
			}, nil
		}
	}

	// Stage 3: ground fallback with PoP failover.
	if s.lsn == nil {
		return Resolution{}, fmt.Errorf("spacecdn: no ground fallback configured and object %s not in space", obj.ID)
	}
	path, popFailover, err := s.lsn.ResolvePathDegraded(client, iso2, view, fv.PoPDead)
	if err != nil {
		return Resolution{}, fmt.Errorf("spacecdn: degraded ground fallback: %w", err)
	}
	if popFailover {
		s.fstats.popFO.Add(1)
		if d != nil {
			d.popFailover = true
		}
	}
	if d != nil {
		d.ground = path
		d.hasGround = true
	}
	return Resolution{Source: SourceGround, RTT: s.lsn.SampleRTTToPoP(path, rng)}, nil
}
