package spacecdn

import (
	"fmt"
	"testing"
	"time"

	"spacecdn/internal/constellation"
	"spacecdn/internal/faults"
	"spacecdn/internal/geo"
	"spacecdn/internal/groundseg"
	"spacecdn/internal/routing"
	"spacecdn/internal/stats"
	"spacecdn/internal/telemetry"
)

// wholeWindowOutage builds an outage covering [0, 1h) — active at every
// snapshot time the tests use.
func wholeWindowOutage(kind faults.Kind) faults.Outage {
	return faults.Outage{Kind: kind, Start: 0, End: time.Hour}
}

func satOutage(id constellation.SatID) faults.Outage {
	o := wholeWindowOutage(faults.KindSatellite)
	o.Sat = id
	return o
}

// TestResolveEmptyFaultPlanMatchesReference is the zero-fault acceptance
// bar: with an empty plan attached, the Resolution stream must stay
// byte-identical to the naive reference pipeline, including duty-cycled
// configurations and cache side effects.
func TestResolveEmptyFaultPlanMatchesReference(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"always-on", DefaultConfig()},
		{"duty-cycled", func() Config {
			cfg := DefaultConfig()
			cfg.DutyCycle = &DutyCycleConfig{Fraction: 0.5, Slot: time.Minute, Seed: 7}
			return cfg
		}()},
	}
	cities := geo.Cities()
	if len(cities) > 25 {
		cities = cities[:25]
	}
	emptyPlan, err := faults.NewPlan(faults.DefaultConfig(), testConst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !emptyPlan.Empty() {
		t.Fatal("default fault config must yield an empty plan")
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			faulty := newSystem(t, tc.cfg)
			faulty.SetFaultPlan(emptyPlan)
			naive := newSystem(t, tc.cfg)
			for _, tm := range []time.Duration{0, 42 * time.Second} {
				snapFaulty := testConst.Snapshot(tm)
				snapNaive := testConst.Snapshot(tm)
				reqsFaulty := seedMixedWorkload(faulty, snapFaulty, cities)
				reqsNaive := seedMixedWorkload(naive, snapNaive, cities)
				rngFaulty := stats.NewRand(99)
				rngNaive := stats.NewRand(99)
				for i := range reqsFaulty {
					rf, errF := faulty.Resolve(reqsFaulty[i].city.Loc, reqsFaulty[i].city.Country, reqsFaulty[i].obj, snapFaulty, rngFaulty)
					rn, errN := naive.ResolveReference(reqsNaive[i].city.Loc, reqsNaive[i].city.Country, reqsNaive[i].obj, snapNaive, rngNaive)
					if (errF == nil) != (errN == nil) {
						t.Fatalf("t=%v req %d: err mismatch faulty=%v naive=%v", tm, i, errF, errN)
					}
					if rf != rn {
						t.Fatalf("t=%v req %d (%s): faulty %+v != naive %+v", tm, i, reqsFaulty[i].obj.ID, rf, rn)
					}
				}
				for id := 0; id < testConst.Total(); id++ {
					sf := faulty.CacheOf(constellation.SatID(id)).Stats()
					sn := naive.CacheOf(constellation.SatID(id)).Stats()
					if sf != sn {
						t.Fatalf("t=%v sat %d: stats diverged: faulty %+v naive %+v", tm, id, sf, sn)
					}
				}
				faulty.ClearAll()
				naive.ClearAll()
			}
			if fs := faulty.FaultStats(); fs != (FaultStats{}) {
				t.Fatalf("empty plan must never enter the degraded pipeline: %+v", fs)
			}
		})
	}
}

// TestResolveFaultFreeTimeUsesHealthyPath: a plan whose outages all start
// later must leave resolutions at earlier times untouched.
func TestResolveFaultFreeTimeUsesHealthyPath(t *testing.T) {
	city := geo.NewPoint(40.4168, -3.7038) // Madrid
	snapA := testConst.Snapshot(0)
	snapB := testConst.Snapshot(0)
	up, ok := snapA.BestVisible(city)
	if !ok {
		t.Fatal("no satellite visible")
	}
	o := satOutage(up.ID)
	o.Start = 30 * time.Minute
	plan := faults.NewPlanFromOutages(testConst.Total(), []faults.Outage{o})

	faulty := newSystem(t, DefaultConfig())
	faulty.SetFaultPlan(plan)
	plain := newSystem(t, DefaultConfig())
	hot := testObject("prefault-hot")
	faulty.Store(up.ID, hot)
	plain.Store(up.ID, hot)

	rf, errF := faulty.Resolve(city, "ES", hot, snapA, stats.NewRand(4))
	rp, errP := plain.Resolve(city, "ES", hot, snapB, stats.NewRand(4))
	if errF != nil || errP != nil {
		t.Fatalf("errs: %v / %v", errF, errP)
	}
	if rf != rp {
		t.Fatalf("pre-outage resolution diverged: %+v vs %+v", rf, rp)
	}
	if fs := faulty.FaultStats(); fs.DegradedRequests != 0 {
		t.Fatalf("no outage active yet, but degraded pipeline ran: %+v", fs)
	}
}

// TestResolveDegradedUplinkFailover kills the serving satellite and expects
// the request re-homed to the next surviving visible one.
func TestResolveDegradedUplinkFailover(t *testing.T) {
	city := geo.NewPoint(40.4168, -3.7038)
	snap := testConst.Snapshot(0)
	vis := snap.Visible(city)
	if len(vis) < 2 {
		t.Fatalf("need two visible satellites, have %d", len(vis))
	}
	dead, next := vis[0], vis[1]

	s := newSystem(t, DefaultConfig())
	s.SetFaultPlan(faults.NewPlanFromOutages(testConst.Total(), []faults.Outage{satOutage(dead.ID)}))
	// The object sits on both the dead satellite and its successor: a
	// healthy system would serve it from `dead` overhead.
	hot := testObject("fo-hot")
	s.Store(dead.ID, hot)
	s.Store(next.ID, hot)

	res, err := s.Resolve(city, "ES", hot, snap, stats.NewRand(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sat == dead.ID {
		t.Fatalf("served from the dead satellite: %+v", res)
	}
	if res.Source != SourceOverhead || res.Sat != next.ID {
		t.Fatalf("want overhead hit on the surviving satellite %d, got %+v", next.ID, res)
	}
	fs := s.FaultStats()
	if fs.DegradedRequests != 1 || fs.UplinkFailovers != 1 {
		t.Fatalf("stats = %+v, want 1 degraded / 1 uplink failover", fs)
	}
}

// TestResolveDegradedReplicaExclusion: when the only ISL replica is dead the
// search must skip it and fall through to ground, recording the replica
// failover.
func TestResolveDegradedReplicaExclusion(t *testing.T) {
	city := geo.NewPoint(40.4168, -3.7038)
	snap := testConst.Snapshot(0)
	up, ok := snap.BestVisible(city)
	if !ok {
		t.Fatal("no satellite visible")
	}
	holder := snap.ISLNeighbors(snap.ISLNeighbors(up.ID)[0])[0]

	s := newSystem(t, DefaultConfig())
	warm := testObject("fo-warm")
	s.Store(holder, warm)

	// Healthy control: the replica serves over ISLs.
	if res, err := s.Resolve(city, "ES", warm, snap, stats.NewRand(8)); err != nil || res.Source != SourceISL {
		t.Fatalf("healthy control: %+v err=%v, want ISL", res, err)
	}

	s.SetFaultPlan(faults.NewPlanFromOutages(testConst.Total(), []faults.Outage{satOutage(holder)}))
	res, err := s.Resolve(city, "ES", warm, snap, stats.NewRand(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceGround {
		t.Fatalf("dead-only replica must fall to ground, got %+v", res)
	}
	fs := s.FaultStats()
	if fs.ReplicaFailovers != 1 {
		t.Fatalf("stats = %+v, want 1 replica failover", fs)
	}
}

// TestResolveDegradedPoPFailover blacks out the client's assigned PoP and
// expects the ground fallback served from another, without error.
func TestResolveDegradedPoPFailover(t *testing.T) {
	city := geo.NewPoint(40.4168, -3.7038)
	snap := testConst.Snapshot(0)
	o := wholeWindowOutage(faults.KindPoP)
	o.PoP = "mad" // Madrid's assigned PoP
	s := newSystem(t, DefaultConfig())
	s.SetFaultPlan(faults.NewPlanFromOutages(testConst.Total(), []faults.Outage{o}))

	cold := testObject("fo-cold")
	res, err := s.Resolve(city, "ES", cold, snap, stats.NewRand(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceGround {
		t.Fatalf("cold object should resolve from ground, got %+v", res)
	}
	fs := s.FaultStats()
	if fs.PoPFailovers != 1 {
		t.Fatalf("stats = %+v, want 1 PoP failover", fs)
	}
}

// TestResolvePartitionedConstellationNoErrors is the graceful-degradation
// regression: with EVERY inter-satellite link down, stage 2 can serve
// nothing and ground paths shrink to shared-visibility satellites — yet no
// request may error, because a ground path still exists (the PoP failover
// sweep finds a station whose sky overlaps the client's).
func TestResolvePartitionedConstellationNoErrors(t *testing.T) {
	snap := testConst.Snapshot(0)
	g := snap.ISLGraph()
	var outages []faults.Outage
	for n := 0; n < g.Len(); n++ {
		for _, e := range g.Neighbors(routing.NodeID(n)) {
			if int(e.To) < n {
				continue
			}
			o := wholeWindowOutage(faults.KindISL)
			o.Link = constellation.LinkID{A: constellation.SatID(n), B: constellation.SatID(e.To)}
			outages = append(outages, o)
		}
	}
	s := newSystem(t, DefaultConfig())
	s.SetFaultPlan(faults.NewPlanFromOutages(testConst.Total(), outages))

	cities := geo.Cities()
	if len(cities) > 20 {
		cities = cities[:20]
	}
	// groundPathExists is the oracle for "any ground path is reachable":
	// with zero ISLs a path exists iff some satellite is visible from both
	// the client and a ground station of any PoP.
	ground := groundseg.NewCatalog()
	groundPathExists := func(client geo.Point) bool {
		clientVis := routing.NewBitset(testConst.Total())
		for _, v := range snap.Visible(client) {
			clientVis.Set(int(v.ID))
		}
		for _, pop := range ground.PoPs() {
			for _, gs := range ground.StationsForPoP(pop.Name) {
				for _, v := range snap.Visible(gs.Loc) {
					if clientVis.Test(int(v.ID)) {
						return true
					}
				}
			}
		}
		return false
	}

	reqs := seedMixedWorkload(s, snap, cities)
	rng := stats.NewRand(12)
	for i, rq := range reqs {
		res, err := s.Resolve(rq.city.Loc, rq.city.Country, rq.obj, snap, rng)
		if err != nil {
			// Errors are allowed only when no ground path survives at all
			// (e.g. a client whose sky shares no satellite with any station).
			if groundPathExists(rq.city.Loc) {
				t.Fatalf("req %d (%s from %s): errored while a ground path exists: %v",
					i, rq.obj.ID, rq.city.Name, err)
			}
			continue
		}
		// With zero ISLs, nothing can be served over stage 2 more than 0
		// hops away.
		if res.Source == SourceISL && res.Hops > 0 {
			t.Fatalf("req %d served over a dead ISL: %+v", i, res)
		}
	}
	if fs := s.FaultStats(); fs.DegradedRequests != int64(len(reqs)) {
		t.Fatalf("every request should have run degraded: %+v, want %d", fs.DegradedRequests, len(reqs))
	}
}

// TestResolveAllWorkerInvarianceUnderFaults: same seed + same fault plan
// must produce identical batch results for any worker count.
func TestResolveAllWorkerInvarianceUnderFaults(t *testing.T) {
	cfg := faults.DefaultConfig()
	cfg.Seed = 21
	cfg.SatFraction = 0.3
	cfg.ISLFraction = 0.1
	cfg.PoPFraction = 0.2
	plan, err := faults.NewPlan(cfg, testConst, []string{"mad", "fra", "sea", "syd"})
	if err != nil {
		t.Fatal(err)
	}
	cities := geo.Cities()
	if len(cities) > 20 {
		cities = cities[:20]
	}
	run := func(workers int) []BatchResult {
		s := newSystem(t, DefaultConfig())
		s.SetFaultPlan(plan)
		snap := testConst.Snapshot(10 * time.Minute)
		seeded := seedMixedWorkload(s, snap, cities)
		reqs := make([]Request, len(seeded))
		for i, rq := range seeded {
			reqs[i] = Request{Client: rq.city.Loc, ISO2: rq.city.Country, Obj: rq.obj}
		}
		return s.ResolveAll(reqs, snap, stats.NewRand(77), workers)
	}
	base := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: length %d != %d", workers, len(got), len(base))
		}
		for i := range base {
			if (base[i].Err == nil) != (got[i].Err == nil) || base[i].Resolution != got[i].Resolution {
				t.Fatalf("workers=%d req %d: %+v (err %v) != %+v (err %v)",
					workers, i, got[i].Resolution, got[i].Err, base[i].Resolution, base[i].Err)
			}
		}
	}
}

// TestDegradedTelemetryCounters checks the labelled failover counters and
// degraded histograms advance when telemetry is attached.
func TestDegradedTelemetryCounters(t *testing.T) {
	city := geo.NewPoint(40.4168, -3.7038)
	snap := testConst.Snapshot(0)
	vis := snap.Visible(city)
	if len(vis) < 2 {
		t.Fatal("need two visible satellites")
	}
	s := newSystem(t, DefaultConfig())
	tel := telemetry.New(0)
	s.SetTelemetry(tel)
	o := wholeWindowOutage(faults.KindPoP)
	o.PoP = "mad"
	s.SetFaultPlan(faults.NewPlanFromOutages(testConst.Total(), []faults.Outage{
		satOutage(vis[0].ID), o,
	}))
	hot := testObject("tel-hot")
	s.Store(vis[0].ID, hot)
	s.Store(vis[1].ID, hot)
	if _, err := s.Resolve(city, "ES", hot, snap, stats.NewRand(6)); err != nil {
		t.Fatal(err)
	}
	cold := testObject("tel-cold")
	if _, err := s.Resolve(city, "ES", cold, snap, stats.NewRand(6)); err != nil {
		t.Fatal(err)
	}
	reg := tel.Registry()
	// Both requests re-homed off the dead overhead satellite.
	if v := reg.Counter("spacecdn_failover_total", "kind", "uplink").Value(); v != 2 {
		t.Fatalf("uplink failover counter = %d, want 2", v)
	}
	if v := reg.Counter("spacecdn_failover_total", "kind", "pop").Value(); v != 1 {
		t.Fatalf("pop failover counter = %d, want 1", v)
	}
	srcBuckets := make([]float64, numSources)
	for i := range srcBuckets {
		srcBuckets[i] = float64(i)
	}
	if n := reg.Histogram("spacecdn_degraded_source", srcBuckets).Count(); n != 2 {
		t.Fatalf("degraded source histogram count = %d, want 2", n)
	}
	// Each failover also heats the client's lat/lon cell in the spatial table.
	var failovers int64
	for _, cell := range tel.Spatial().Snapshot().Cells {
		failovers += cell.Failovers
	}
	if failovers != 3 {
		t.Fatalf("spatial failover count = %d, want 3 (2 uplink + 1 pop)", failovers)
	}
}

// TestFailoverKindStringRoundTrip pins the name table to the constants.
func TestFailoverKindStringRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range FailoverKinds() {
		name := k.String()
		if name == "" || seen[name] {
			t.Fatalf("kind %d: bad or duplicate name %q", int(k), name)
		}
		seen[name] = true
	}
	if got := FailoverKind(42).String(); got != fmt.Sprintf("failover(%d)", 42) {
		t.Fatalf("out-of-range stringer = %q", got)
	}
}
