package spacecdn

import (
	"fmt"
	"sync"
	"time"

	"spacecdn/internal/constellation"
	"spacecdn/internal/routing"
)

// DutyCycleConfig configures fractional caching (paper §5, Figure 8): in
// each time slot only Fraction of the fleet serves cache hits; the rest
// relay requests over ISLs toward active caches.
type DutyCycleConfig struct {
	// Fraction of satellites active per slot, in (0, 1].
	Fraction float64
	// Slot is the duty-cycle period. Each slot draws a fresh active set.
	Slot time.Duration
	// Seed makes the slot permutations deterministic.
	Seed int64
}

// Validate reports a descriptive error for unusable parameters.
func (c DutyCycleConfig) Validate() error {
	if c.Fraction <= 0 || c.Fraction > 1 {
		return fmt.Errorf("spacecdn: duty-cycle fraction %v outside (0,1]", c.Fraction)
	}
	if c.Slot <= 0 {
		return fmt.Errorf("spacecdn: duty-cycle slot must be positive")
	}
	return nil
}

// DutyCycler decides which satellites cache in which slot. Decisions are
// deterministic in (satellite, slot, seed) and uniform: each satellite is
// active in a Fraction of slots, and each slot has ~Fraction of the fleet
// active.
type DutyCycler struct {
	cfg   DutyCycleConfig
	total int

	// Cached active set for one slot. A slot change allocates a fresh bitset
	// rather than mutating in place, so readers holding the previous slot's
	// set are never racing a writer.
	mu   sync.Mutex
	slot int64
	set  routing.Bitset
}

// NewDutyCycler builds a duty cycler for a fleet of total satellites.
func NewDutyCycler(cfg DutyCycleConfig, total int) *DutyCycler {
	return &DutyCycler{cfg: cfg, total: total}
}

// Slot returns the slot index containing time t.
func (d *DutyCycler) Slot(t time.Duration) int64 {
	if t < 0 {
		t = 0
	}
	return int64(t / d.cfg.Slot)
}

// Active reports whether satellite id serves cache hits at time t.
func (d *DutyCycler) Active(id constellation.SatID, t time.Duration) bool {
	h := splitmix64(uint64(d.Slot(t))*0x9E3779B97F4A7C15 ^ uint64(id)*0xBF58476D1CE4E5B9 ^ uint64(d.cfg.Seed))
	// Map to [0,1) and compare with the fraction.
	u := float64(h>>11) / float64(1<<53)
	return u < d.cfg.Fraction
}

// ActiveSet returns the bitset of satellites active at time t. Bit i equals
// Active(i, t). The set is computed once per slot and cached; callers get an
// immutable snapshot and must not mutate it. Repeated calls within one slot
// allocate nothing.
func (d *DutyCycler) ActiveSet(t time.Duration) routing.Bitset {
	s := d.Slot(t)
	d.mu.Lock()
	if d.set == nil || d.slot != s {
		set := routing.NewBitset(d.total)
		for i := 0; i < d.total; i++ {
			if d.Active(constellation.SatID(i), t) {
				set.Set(i)
			}
		}
		d.slot, d.set = s, set
	}
	out := d.set
	d.mu.Unlock()
	return out
}

// ActiveCount returns how many satellites are active at time t.
func (d *DutyCycler) ActiveCount(t time.Duration) int {
	n := 0
	for i := 0; i < d.total; i++ {
		if d.Active(constellation.SatID(i), t) {
			n++
		}
	}
	return n
}

// splitmix64 is the standard 64-bit finalizer; deterministic, stateless and
// well distributed.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
