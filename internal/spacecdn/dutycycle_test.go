package spacecdn

import (
	"testing"
	"time"

	"spacecdn/internal/constellation"
	"spacecdn/internal/content"
	"spacecdn/internal/geo"
	"spacecdn/internal/stats"
)

func TestDutyCycleValidation(t *testing.T) {
	bad := []DutyCycleConfig{
		{Fraction: 0, Slot: time.Minute},
		{Fraction: -0.5, Slot: time.Minute},
		{Fraction: 1.01, Slot: time.Minute},
		{Fraction: 0.5, Slot: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: %+v accepted", i, cfg)
		}
	}
	if err := (DutyCycleConfig{Fraction: 1, Slot: time.Minute}).Validate(); err != nil {
		t.Errorf("full fraction rejected: %v", err)
	}
}

func TestDutyCycleFractionHolds(t *testing.T) {
	for _, f := range []float64{0.3, 0.5, 0.8} {
		d := NewDutyCycler(DutyCycleConfig{Fraction: f, Slot: time.Minute, Seed: 1}, 1584)
		for _, at := range []time.Duration{0, time.Minute, time.Hour} {
			got := float64(d.ActiveCount(at)) / 1584
			if got < f-0.05 || got > f+0.05 {
				t.Errorf("fraction %v at %v: active share %v", f, at, got)
			}
		}
	}
}

func TestDutyCycleDeterministic(t *testing.T) {
	a := NewDutyCycler(DutyCycleConfig{Fraction: 0.5, Slot: time.Minute, Seed: 7}, 100)
	b := NewDutyCycler(DutyCycleConfig{Fraction: 0.5, Slot: time.Minute, Seed: 7}, 100)
	for i := 0; i < 100; i++ {
		if a.Active(constellation.SatID(i), 90*time.Second) != b.Active(constellation.SatID(i), 90*time.Second) {
			t.Fatal("duty cycle not deterministic")
		}
	}
}

func TestDutyCycleRotates(t *testing.T) {
	d := NewDutyCycler(DutyCycleConfig{Fraction: 0.5, Slot: time.Minute, Seed: 3}, 500)
	changed := 0
	for i := 0; i < 500; i++ {
		if d.Active(constellation.SatID(i), 0) != d.Active(constellation.SatID(i), time.Minute) {
			changed++
		}
	}
	// About half the satellites should flip between independent slots.
	if changed < 150 || changed > 350 {
		t.Errorf("slot rotation flipped %d/500 satellites, want ~250", changed)
	}
	// Within a slot the set is stable.
	for i := 0; i < 500; i++ {
		if d.Active(constellation.SatID(i), time.Second) != d.Active(constellation.SatID(i), 59*time.Second) {
			t.Fatal("active set changed within a slot")
		}
	}
	if d.Slot(-5*time.Second) != 0 {
		t.Error("negative time should clamp to slot 0")
	}
}

func TestDutyCycledResolution(t *testing.T) {
	// With duty cycling, an inactive overhead satellite's cache is skipped
	// and the request forwards to an active replica.
	cfg := DefaultConfig()
	cfg.DutyCycle = &DutyCycleConfig{Fraction: 0.5, Slot: time.Minute, Seed: 11}
	s := newSystem(t, cfg)
	snap := testConst.Snapshot(0)
	loc := geo.NewPoint(40.42, -3.70) // Madrid
	o := content.Object{ID: "dc", Bytes: 1 << 20, Region: geo.RegionEurope}

	// Place on every satellite: resolution source now depends purely on the
	// duty cycle.
	for i := 0; i < testConst.Total(); i++ {
		s.Store(constellation.SatID(i), o)
	}
	rng := stats.NewRand(1)
	res, err := s.Resolve(loc, "ES", o, snap, rng)
	if err != nil {
		t.Fatal(err)
	}
	up, _ := snap.BestVisible(loc)
	if s.Active(up.ID, 0) {
		if res.Source != SourceOverhead {
			t.Errorf("active overhead sat should serve: %+v", res)
		}
	} else {
		if res.Source != SourceISL {
			t.Errorf("inactive overhead sat should forward over ISLs: %+v", res)
		}
		if res.Hops < 1 {
			t.Error("forwarded resolution must have hops")
		}
	}
}

func TestDutyCycleLatencyOrdering(t *testing.T) {
	// Lower duty fractions mean longer searches: median RTT(30%) >=
	// median RTT(80%) over a client population (paper Fig. 8 shape).
	medians := map[float64]float64{}
	for _, f := range []float64{0.3, 0.8} {
		cfg := DefaultConfig()
		cfg.DutyCycle = &DutyCycleConfig{Fraction: f, Slot: time.Minute, Seed: 5}
		s := newSystem(t, cfg)
		o := content.Object{ID: "pop", Bytes: 1 << 20, Region: geo.RegionEurope}
		// Dense placement, as for popular content.
		if _, err := Apply(s, PerPlaneSpacing{ReplicasPerPlane: 4}, o); err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRand(2)
		var rtts []float64
		snap := testConst.Snapshot(0)
		for _, city := range geo.Cities()[:40] {
			if rtt, _, found := s.NearestReplicaRTT(city.Loc, o.ID, snap, rng); found {
				rtts = append(rtts, ms(rtt))
			}
		}
		if len(rtts) < 20 {
			t.Fatalf("too few resolutions at fraction %v", f)
		}
		medians[f] = stats.Median(rtts)
	}
	if medians[0.3] < medians[0.8] {
		t.Errorf("median RTT at 30%% (%v) should be >= at 80%% (%v)", medians[0.3], medians[0.8])
	}
}
