package spacecdn

import (
	"sync"
	"time"

	"spacecdn/internal/constellation"
	"spacecdn/internal/content"
	"spacecdn/internal/faults"
	"spacecdn/internal/geo"
	"spacecdn/internal/lifecycle"
	"spacecdn/internal/stats"
)

// Concurrent serving support: the serve daemon advances the constellation in
// a background sweeper and publishes each step as an immutable Epoch; request
// goroutines pin one epoch with a single atomic pointer load and resolve
// against it with ResolveAt. The epoch carries everything a resolution reads
// from time-varying state — the snapshot (with its ISL graph and path-tree
// memos) and the fault view for the snapshot instant — so a request never
// observes a half-advanced topology and never takes a lock on the hot path.
//
// Ownership: the sweeper owns epoch construction (NewEpoch forces the lazy
// graph build so readers only ever see a finished topology), readers own
// nothing — they borrow the epoch for the duration of one resolution and the
// garbage collector reclaims superseded epochs once the last borrower
// returns. Lifecycle mutation is the one write the serve path performs; it is
// funneled through the single-writer applier (StartLifecycleApplier) so
// origin-fetch coalescing stays deterministic under concurrent misses.

// Epoch pins the time-varying inputs of one resolution instant: a finished
// constellation snapshot and the fault view active at its time. Epochs are
// immutable after construction and safe to share across any number of
// request goroutines.
type Epoch struct {
	seq  uint64
	snap *constellation.Snapshot
	fv   *faults.View
}

// NewEpoch builds a publishable epoch over a finished snapshot. It forces
// the snapshot's lazy ISL-graph build and pins the attached fault plan's
// view at the snapshot time, so every cost of epoch construction lands on
// the sweeper, never on a request goroutine. The seq is the publisher's
// monotonic epoch counter; readers use it to detect serving on a
// stale-but-valid epoch.
func (s *System) NewEpoch(seq uint64, snap *constellation.Snapshot) *Epoch {
	snap.ISLGraph()
	ep := &Epoch{seq: seq, snap: snap}
	if s.faults != nil {
		ep.fv = s.faults.ViewAt(snap.Time())
	}
	return ep
}

// Seq returns the publisher's epoch counter.
func (e *Epoch) Seq() uint64 { return e.seq }

// Time returns the simulation instant the epoch pins.
func (e *Epoch) Time() time.Duration { return e.snap.Time() }

// Snapshot returns the pinned constellation snapshot.
func (e *Epoch) Snapshot() *constellation.Snapshot { return e.snap }

// Degraded reports whether the epoch pins an active-outage fault view, i.e.
// resolutions against it run the fault-aware pipeline.
func (e *Epoch) Degraded() bool { return e.fv != nil && !e.fv.Empty() }

// ResolveAt serves one request against a pinned epoch. It is the
// concurrency-safe counterpart of Resolve: where Resolve consults the fault
// plan at call time, ResolveAt uses the view pinned at epoch construction,
// so every request on one epoch sees one consistent outage state even while
// the plan's interval cache is warming under other epochs. The rng must be
// goroutine-local (fork one stream per connection or per request); all other
// inputs are shared and read-only.
//
// For equal snapshot, fault state, and rng state, ResolveAt returns the
// byte-identical Resolution stream Resolve would — the epoch changes when
// state is read, never what is computed.
func (s *System) ResolveAt(ep *Epoch, client geo.Point, iso2 string, obj content.Object, rng *stats.Rand) (Resolution, error) {
	in := s.inst
	if in == nil {
		return s.resolveAtAny(ep, client, iso2, obj, rng, nil)
	}
	var d resolveDetail
	d.client = client
	res, err := s.resolveAtAny(ep, client, iso2, obj, rng, &d)
	in.record(res, err, &d)
	return res, err
}

// resolveAtAny routes an epoch-pinned request down the same three pipelines
// as resolveAny, substituting the pinned fault view for a plan lookup and
// the queued lifecycle form for the inline one.
func (s *System) resolveAtAny(ep *Epoch, client geo.Point, iso2 string, obj content.Object, rng *stats.Rand, d *resolveDetail) (Resolution, error) {
	if ep.fv != nil && !ep.fv.Empty() {
		return s.resolveDegraded(client, iso2, obj, ep.snap, ep.fv, rng, d)
	}
	if s.lc != nil && s.lc.Active() {
		return s.resolveLifecycleQueued(client, iso2, obj, ep.snap, rng, d)
	}
	return s.resolve(client, iso2, obj, ep.snap, rng, d)
}

// intentMsg carries one request's lifecycle intent to the applier.
type intentMsg struct {
	it *lcIntent
	t  time.Duration
}

// lcApplier is the single-writer lifecycle apply loop. All cache mutation
// the serve path performs (fills, drops, hit accounting, tier promotion)
// funnels through its channel, so coalescing-winner selection is a plain
// map probe with no locking and arrival order fully determines outcomes.
type lcApplier struct {
	ch   chan intentMsg
	done chan struct{}
}

// intentPool recycles lifecycle intents between the resolve goroutine that
// fills one and the applier goroutine that retires it, keeping the
// lifecycle serve path allocation-free at steady state.
var intentPool = sync.Pool{New: func() any { return new(lcIntent) }}

// StartLifecycleApplier starts the single-writer apply goroutine and routes
// subsequent ResolveAt lifecycle intents through it. Origin fetches
// coalesce per {object, version, cell} within one epoch: the flights map
// resets whenever the applied intent's sim time changes, so one epoch is
// one coalescing window — mirroring ResolveAll's per-batch window.
//
// The returned stop function detaches the applier, drains queued intents,
// and waits for the goroutine to exit. Contract: stop resolving before
// calling stop (the same attach-before-concurrent-resolves discipline as
// SetFaultPlan and SetLifecycle) — a resolve racing stop could submit to a
// closed channel. Without a started applier, ResolveAt applies intents
// inline with no coalescing, exactly like a single Resolve.
func (s *System) StartLifecycleApplier(buf int) (stop func()) {
	if buf <= 0 {
		buf = 256
	}
	a := &lcApplier{ch: make(chan intentMsg, buf), done: make(chan struct{})}
	go func() {
		defer close(a.done)
		flights := make(map[lifecycle.FlightKey]struct{})
		cur := time.Duration(-1)
		for m := range a.ch {
			if m.t != cur {
				clear(flights)
				cur = m.t
			}
			s.applyLcIntent(m.it, m.t, flights)
			*m.it = lcIntent{}
			intentPool.Put(m.it)
		}
	}()
	s.applier.Store(a)
	return func() {
		s.applier.Store(nil)
		close(a.ch)
		<-a.done
	}
}

// resolveLifecycleQueued is the serve-path lifecycle form: the read-only
// resolve fills a pooled intent, which is handed to the single-writer
// applier (or applied inline, un-coalesced, when none is attached). The
// response returns before the intent applies — a served stale copy is
// reported immediately while its revalidating refill commits behind it,
// which is exactly a CDN's stale-while-revalidate contract.
func (s *System) resolveLifecycleQueued(client geo.Point, iso2 string, obj content.Object, snap *constellation.Snapshot, rng *stats.Rand, d *resolveDetail) (Resolution, error) {
	it := intentPool.Get().(*lcIntent)
	res, err := s.resolveLifecycleOne(client, iso2, obj, snap, rng, d, it)
	if a := s.applier.Load(); a != nil {
		a.ch <- intentMsg{it: it, t: snap.Time()}
		return res, err
	}
	s.applyLcIntent(it, snap.Time(), nil)
	*it = lcIntent{}
	intentPool.Put(it)
	return res, err
}
