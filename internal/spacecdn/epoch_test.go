package spacecdn

import (
	"sync"
	"testing"
	"time"

	"spacecdn/internal/constellation"
	"spacecdn/internal/content"
	"spacecdn/internal/faults"
	"spacecdn/internal/geo"
	"spacecdn/internal/lifecycle"
	"spacecdn/internal/stats"
)

// epochTestRequests builds a mixed request stream (space hits and ground
// fallbacks) over the first few cities.
func epochTestRequests(s *System, n int) []Request {
	cities := geo.Cities()
	if len(cities) > 8 {
		cities = cities[:8]
	}
	place := testConst.Snapshot(0)
	var objs []content.Object
	for i, city := range cities {
		hot := testObject("ep-hot-" + city.Name)
		if up, ok := place.BestVisible(city.Loc); ok {
			s.Store(up.ID, hot)
		}
		warm := testObject("ep-warm-" + city.Name)
		s.Store(constellation.SatID((i*41+7)%testConst.Total()), warm)
		objs = append(objs, hot, warm, testObject("ep-cold-"+city.Name))
	}
	reqs := make([]Request, n)
	for i := range reqs {
		city := cities[i%len(cities)]
		reqs[i] = Request{Client: city.Loc, ISO2: city.Country, Obj: objs[i%len(objs)]}
	}
	return reqs
}

// TestResolveAtMatchesResolve is the equivalence bar for the epoch entry
// point: for equal snapshot, fault state, and rng state, ResolveAt must
// return the byte-identical Resolution stream Resolve does — healthy,
// degraded, and inert-lifecycle alike.
func TestResolveAtMatchesResolve(t *testing.T) {
	cases := []struct {
		name  string
		wire  func(s *System)
		tAt   time.Duration
		wantD bool
	}{
		{name: "healthy", wire: func(*System) {}, tAt: 0},
		{name: "inert-lifecycle", wire: func(s *System) { s.SetLifecycle(inertManager()) }, tAt: 0},
		{
			name: "degraded",
			wire: func(s *System) {
				s.SetFaultPlan(faults.NewPlanFromOutages(testConst.Total(), []faults.Outage{
					{Kind: faults.KindSatellite, Sat: 3, Start: 0, End: time.Hour},
					{Kind: faults.KindSatellite, Sat: 97, Start: 0, End: time.Hour},
				}))
			},
			tAt:   time.Second,
			wantD: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := newSystem(t, DefaultConfig())
			b := newSystem(t, DefaultConfig())
			tc.wire(a)
			tc.wire(b)
			reqsA := epochTestRequests(a, 60)
			epochTestRequests(b, 60)
			snapA := testConst.Snapshot(tc.tAt)
			snapB := testConst.Snapshot(tc.tAt)
			ep := a.NewEpoch(7, snapA)
			if ep.Seq() != 7 || ep.Time() != tc.tAt || ep.Snapshot() != snapA {
				t.Fatalf("epoch accessors: seq=%d t=%v", ep.Seq(), ep.Time())
			}
			if ep.Degraded() != tc.wantD {
				t.Fatalf("Degraded() = %v, want %v", ep.Degraded(), tc.wantD)
			}
			rngA, rngB := stats.NewRand(11), stats.NewRand(11)
			for i, rq := range reqsA {
				ra, errA := a.ResolveAt(ep, rq.Client, rq.ISO2, rq.Obj, rngA)
				rb, errB := b.Resolve(rq.Client, rq.ISO2, rq.Obj, snapB, rngB)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("req %d: err mismatch at=%v resolve=%v", i, errA, errB)
				}
				if ra != rb {
					t.Fatalf("req %d (%s): ResolveAt %+v != Resolve %+v", i, rq.Obj.ID, ra, rb)
				}
			}
			if a.FaultStats() != b.FaultStats() {
				t.Fatalf("fault counters diverged: %+v vs %+v", a.FaultStats(), b.FaultStats())
			}
		})
	}
}

// TestResolveAtPinsFaultView: the epoch pins the fault view of its own
// instant, so a request resolving on an older epoch after an outage starts
// still sees the healthy pipeline — by design, staleness is bounded by the
// sweep interval, never torn mid-request.
func TestResolveAtPinsFaultView(t *testing.T) {
	s := newSystem(t, DefaultConfig())
	s.SetFaultPlan(faults.NewPlanFromOutages(testConst.Total(), []faults.Outage{
		{Kind: faults.KindSatellite, Sat: 5, Start: 30 * time.Second, End: time.Hour},
	}))
	healthy := s.NewEpoch(1, testConst.Snapshot(0))
	if healthy.Degraded() {
		t.Fatal("epoch before the outage must be healthy")
	}
	faulty := s.NewEpoch(2, testConst.Snapshot(time.Minute))
	if !faulty.Degraded() {
		t.Fatal("epoch inside the outage must pin the degraded view")
	}
	maputo := geo.NewPoint(-25.9692, 32.5732)
	if _, err := s.ResolveAt(healthy, maputo, "MZ", testObject("pin"), stats.NewRand(1)); err != nil {
		t.Fatal(err)
	}
	if got := s.FaultStats().DegradedRequests; got != 0 {
		t.Fatalf("healthy-epoch resolve ran degraded pipeline (%d)", got)
	}
	if _, err := s.ResolveAt(faulty, maputo, "MZ", testObject("pin"), stats.NewRand(1)); err != nil {
		t.Fatal(err)
	}
	if got := s.FaultStats().DegradedRequests; got != 1 {
		t.Fatalf("degraded requests = %d, want 1", got)
	}
}

// TestLifecycleApplierCoalescing: N concurrent misses for one object from
// one cell, resolved through ResolveAt with the single-writer applier
// attached, collapse to a single origin flight with N-1 coalesced
// followers — the serve-path equivalent of the batch flash-crowd test.
func TestLifecycleApplierCoalescing(t *testing.T) {
	s := newSystem(t, DefaultConfig())
	s.SetLifecycle(lifecycle.NewManager(lifecycle.DefaultPolicy(), testConst.Total()))
	stop := s.StartLifecycleApplier(0)
	ep := s.NewEpoch(1, testConst.Snapshot(0))
	maputo := geo.NewPoint(-25.9692, 32.5732)
	obj := classedObject("applier-flash", content.ClassNews)

	const crowd = 24
	var wg sync.WaitGroup
	errs := make([]error, crowd)
	for i := 0; i < crowd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := stats.NewRand(int64(100 + i))
			res, err := s.ResolveAt(ep, maputo, "MZ", obj, rng)
			if err == nil && res.Source != SourceGround {
				// All goroutines race the winner's fill: a late resolver can
				// legitimately hit the filled copy in space.
				_ = res
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	stop()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("req %d: %v", i, err)
		}
	}
	ls := s.LifecycleStats()
	if ls.OriginFetches != 1 {
		t.Fatalf("origin fetches = %d, want 1 (coalesced=%d needed=%d)", ls.OriginFetches, ls.Coalesced, ls.OriginNeeded)
	}
	if ls.OriginNeeded != ls.OriginFetches+ls.Coalesced {
		t.Fatalf("flight accounting does not balance: %+v", ls)
	}
	total := ls.MissServes + ls.FreshServes + ls.StaleServes + ls.ExpiredServes
	if total != crowd {
		t.Fatalf("serve classes sum to %d, want %d", total, crowd)
	}
	// The winner's fill landed: a fresh request is a space hit.
	res, err := s.Resolve(maputo, "MZ", obj, testConst.Snapshot(0), stats.NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Source == SourceGround {
		t.Fatal("post-fill request fell through to ground")
	}
}

// TestLifecycleApplierWindowReset: the applier's coalescing window is one
// sim instant — intents from a later epoch dispatch their own flight even
// for an identical flight key.
func TestLifecycleApplierWindowReset(t *testing.T) {
	s := newSystem(t, DefaultConfig())
	s.SetLifecycle(lifecycle.NewManager(lifecycle.DefaultPolicy(), testConst.Total()))
	stop := s.StartLifecycleApplier(4)
	maputo := geo.NewPoint(-25.9692, 32.5732)
	// An API-class object: its 1s TTL expires between the two instants, so
	// the second-epoch request needs origin again rather than serving fresh.
	obj := classedObject("applier-window", content.ClassAPI)
	for i, tm := range []time.Duration{0, 30 * time.Second} {
		ep := s.NewEpoch(uint64(i+1), testConst.Snapshot(tm))
		if _, err := s.ResolveAt(ep, maputo, "MZ", obj, stats.NewRand(int64(i))); err != nil {
			t.Fatalf("epoch %d: %v", i, err)
		}
	}
	stop()
	ls := s.LifecycleStats()
	if ls.OriginFetches != 2 || ls.Coalesced != 0 {
		t.Fatalf("fetches/coalesced = %d/%d, want 2/0 (window must reset across epochs)", ls.OriginFetches, ls.Coalesced)
	}
}

// TestResolveAtWithoutApplier: ResolveAt on an active-lifecycle system with
// no applier attached applies intents inline, matching Resolve exactly.
func TestResolveAtWithoutApplier(t *testing.T) {
	a := newSystem(t, DefaultConfig())
	b := newSystem(t, DefaultConfig())
	a.SetLifecycle(lifecycle.NewManager(lifecycle.DefaultPolicy(), testConst.Total()))
	b.SetLifecycle(lifecycle.NewManager(lifecycle.DefaultPolicy(), testConst.Total()))
	snapA, snapB := testConst.Snapshot(0), testConst.Snapshot(0)
	ep := a.NewEpoch(1, snapA)
	maputo := geo.NewPoint(-25.9692, 32.5732)
	obj := classedObject("no-applier", content.ClassNews)
	rngA, rngB := stats.NewRand(3), stats.NewRand(3)
	for i := 0; i < 3; i++ {
		ra, errA := a.ResolveAt(ep, maputo, "MZ", obj, rngA)
		rb, errB := b.Resolve(maputo, "MZ", obj, snapB, rngB)
		if (errA == nil) != (errB == nil) || ra != rb {
			t.Fatalf("round %d: ResolveAt %+v (%v) != Resolve %+v (%v)", i, ra, errA, rb, errB)
		}
	}
	if a.LifecycleStats() != b.LifecycleStats() {
		t.Fatalf("lifecycle stats diverged: %+v vs %+v", a.LifecycleStats(), b.LifecycleStats())
	}
}
