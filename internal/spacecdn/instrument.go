package spacecdn

import (
	"sync/atomic"
	"time"

	"spacecdn/internal/cache"
	"spacecdn/internal/geo"
	"spacecdn/internal/lsn"
	"spacecdn/internal/routing"
	"spacecdn/internal/telemetry"
)

// Telemetry wiring for the resolve path. The handle pattern keeps the hot
// path cheap: SetTelemetry resolves every named instrument once, and Resolve
// only touches pre-resolved atomic handles — no map lookups or allocations
// per request, and a single nil check when telemetry is detached.

// instruments holds the pre-resolved metric handles the resolve path updates.
type instruments struct {
	tel *telemetry.Telemetry

	// requests is indexed by Source; the numSources sentinel sizes it so a
	// new source cannot be added without a label slot.
	requests [numSources]*telemetry.Counter
	errors   *telemetry.Counter
	rttMs    *telemetry.Histogram
	hops     *telemetry.Histogram

	// Degraded-mode instruments: one labelled counter per failover kind, a
	// histogram over the source index of degraded requests (the paper-style
	// source-mix shift under faults), and the degraded RTT distribution.
	failovers   [numFailoverKinds]*telemetry.Counter
	degradedSrc *telemetry.Histogram
	degradedRTT *telemetry.Histogram

	// Lifecycle instruments: serve mix by freshness, coalescing savings,
	// inconsistency-window serves, and the purge propagation distribution.
	lcServes       [numServeClasses]*telemetry.Counter
	lcCoalesced    *telemetry.Counter
	lcInconsistent *telemetry.Counter
	lcPurgeMs      *telemetry.Histogram

	// spatial attributes each request to the serving satellite and the
	// client's lat/lon cell — the where-in-orbit heatmap. Shared across every
	// system wired to the same telemetry bundle.
	spatial *telemetry.Spatial

	seq atomic.Uint64 // request sequence for trace identity
}

// spatialSourceEvents maps a Source to its spatial event kind; the
// [numSources] bound makes a source added without a mapping a compile error.
var spatialSourceEvents = [numSources]telemetry.SpatialEvent{
	SourceOverhead: telemetry.SpatialOverhead,
	SourceISL:      telemetry.SpatialISL,
	SourceGround:   telemetry.SpatialGround,
}

// resolveDetail carries the latency components of one resolution so record
// can decompose the RTT into trace spans. It is filled by assignment only —
// the instrumented path allocates nothing until a request is sampled.
type resolveDetail struct {
	client    geo.Point     // requesting terminal, for spatial attribution
	uplinkRTT time.Duration // two-way terminal <-> overhead satellite
	islRTT    time.Duration // two-way ISL leg incl. per-hop switching (ISL source)
	ground    lsn.Path      // resolved ground path (ground source)
	hasGround bool

	// Degraded-mode flags (set only by resolveDegraded).
	degraded        bool // the request ran the fault-aware pipeline
	uplinkFailover  bool // overhead satellite was dead, re-homed
	replicaFailover bool // replica set intersected the dead mask
	popFailover     bool // served by a non-assigned PoP
}

// SetTelemetry attaches (or, with nil, detaches) telemetry. Attaching wires
// the per-request instruments and registers a collector that exports the
// point-in-time fleet view — cache hit/miss/eviction counters (with a
// per-reason breakdown), bytes used, and the routing package's path
// computation counters — at every exposition.
func (s *System) SetTelemetry(t *telemetry.Telemetry) {
	if t == nil {
		s.inst = nil
		if s.lsn != nil {
			s.lsn.SetTelemetry(nil)
		}
		return
	}
	reg := t.Registry()
	in := &instruments{
		tel:    t,
		errors: reg.Counter("spacecdn_resolve_errors_total"),
		rttMs:  reg.Histogram("spacecdn_resolve_rtt_ms", telemetry.LatencyBucketsMs),
		hops:   reg.Histogram("spacecdn_resolve_isl_hops", telemetry.HopBuckets),
	}
	for _, src := range Sources() {
		in.requests[src] = reg.Counter("spacecdn_resolve_requests_total", "source", src.String())
	}
	for _, k := range FailoverKinds() {
		in.failovers[k] = reg.Counter("spacecdn_failover_total", "kind", k.String())
	}
	srcBuckets := make([]float64, numSources)
	for i := range srcBuckets {
		srcBuckets[i] = float64(i)
	}
	in.degradedSrc = reg.Histogram("spacecdn_degraded_source", srcBuckets)
	in.degradedRTT = reg.Histogram("spacecdn_degraded_rtt_ms", telemetry.LatencyBucketsMs)
	for _, sc := range ServeClasses() {
		in.lcServes[sc] = reg.Counter("lifecycle_serve_total", "freshness", sc.String())
	}
	in.lcCoalesced = reg.Counter("lifecycle_coalesced_total")
	in.lcInconsistent = reg.Counter("lifecycle_inconsistent_serves_total")
	in.lcPurgeMs = reg.Histogram("lifecycle_purge_propagation_ms", telemetry.LatencyBucketsMs)
	in.spatial = t.EnableSpatial(len(s.caches))

	// Fleet and routing state is cheap to read but pointless to push per
	// request; a collector samples it at exposition time. The collector only
	// Sets gauges, so re-attaching the same Telemetry is harmless.
	fleetHits := reg.Gauge("spacecdn_cache_hits")
	fleetMisses := reg.Gauge("spacecdn_cache_misses")
	fleetEvictions := reg.Gauge("spacecdn_cache_evictions")
	fleetInserts := reg.Gauge("spacecdn_cache_inserts")
	fleetUsed := reg.Gauge("spacecdn_cache_bytes_used")
	fleetItems := reg.Gauge("spacecdn_cache_items")
	evictReasons := cache.EvictionReasons()
	byReason := make([]*telemetry.Gauge, len(evictReasons))
	for i, r := range evictReasons {
		byReason[i] = reg.Gauge("spacecdn_cache_evictions_by_reason", "reason", r.String())
	}
	tierHits := [2]*telemetry.Gauge{
		reg.Gauge("spacecdn_tier_hits", "tier", "hot"),
		reg.Gauge("spacecdn_tier_hits", "tier", "bulk"),
	}
	tierItems := [2]*telemetry.Gauge{
		reg.Gauge("spacecdn_tier_items", "tier", "hot"),
		reg.Gauge("spacecdn_tier_items", "tier", "bulk"),
	}
	tierPromotions := reg.Gauge("spacecdn_tier_promotions")
	tierDemotions := reg.Gauge("spacecdn_tier_demotions")
	dijkstras := reg.Gauge("routing_dijkstras_total")
	dijkstraMs := reg.Gauge("routing_dijkstra_ms_total")
	bfs := reg.Gauge("routing_bfs_searches_total")
	bfsMs := reg.Gauge("routing_bfs_ms_total")
	memoHits := reg.Gauge("constellation_path_memo_hits_total")
	memoMisses := reg.Gauge("constellation_path_memo_misses_total")
	reg.RegisterCollector(func() {
		m := s.Metrics()
		fleetHits.Set(float64(m.Hits))
		fleetMisses.Set(float64(m.Misses))
		fleetEvictions.Set(float64(m.Evictions))
		fleetInserts.Set(float64(m.Inserts))
		fleetUsed.Set(float64(m.UsedBytes))
		fleetItems.Set(float64(m.Items))
		totals := make([]int64, len(evictReasons))
		for _, c := range s.caches {
			st := c.Stats()
			for r, n := range st.ByReason {
				totals[r] += n
			}
		}
		for i, g := range byReason {
			g.Set(float64(totals[i]))
		}
		// Two-tier store occupancy and movement; all-zero when the tiered
		// store is not in use (the gate keeps the fleet walk off the common
		// path).
		if s.tierCfg != nil {
			var ts cache.TieredStats
			for _, c := range s.caches {
				if tc, ok := c.(*cache.Tiered); ok {
					one := tc.TierStats()
					ts.HotHits += one.HotHits
					ts.BulkHits += one.BulkHits
					ts.HotLen += one.HotLen
					ts.BulkLen += one.BulkLen
					ts.Promotions += one.Promotions
					ts.Demotions += one.Demotions
				}
			}
			tierHits[0].Set(float64(ts.HotHits))
			tierHits[1].Set(float64(ts.BulkHits))
			tierItems[0].Set(float64(ts.HotLen))
			tierItems[1].Set(float64(ts.BulkLen))
			tierPromotions.Set(float64(ts.Promotions))
			tierDemotions.Set(float64(ts.Demotions))
		}
		ops := routing.Counters()
		dijkstras.Set(float64(ops.Dijkstras))
		dijkstraMs.Set(float64(ops.DijkstraNanos) / float64(time.Millisecond))
		bfs.Set(float64(ops.BFSSearches))
		bfsMs.Set(float64(ops.BFSNanos) / float64(time.Millisecond))
		// Memo counters are per constellation, so a process running several
		// systems (multi-shell scale sweeps) reports this system's own
		// effectiveness rather than a process-wide aggregate.
		hits, misses := s.consts.PathMemoCounters()
		memoHits.Set(float64(hits))
		memoMisses.Set(float64(misses))
	})

	if s.lsn != nil {
		s.lsn.SetTelemetry(t)
	}
	s.inst = in
}

// Telemetry returns the attached telemetry, or nil.
func (s *System) Telemetry() *telemetry.Telemetry {
	if s.inst == nil {
		return nil
	}
	return s.inst.tel
}

// record accounts one Resolve outcome: counters and histograms always, a
// full trace only when the sink samples this request.
func (in *instruments) record(res Resolution, err error, d *resolveDetail) {
	seq := in.seq.Add(1)
	if d.degraded {
		// Failovers count even when the request ultimately errors: the
		// reroute attempt happened. They heat the client's cell (the region
		// degraded service hit), not a satellite.
		if d.uplinkFailover {
			in.failovers[FailoverUplink].Inc()
			in.spatial.RecordCell(d.client.LatDeg, d.client.LonDeg, telemetry.SpatialFailover)
		}
		if d.replicaFailover {
			in.failovers[FailoverReplica].Inc()
			in.spatial.RecordCell(d.client.LatDeg, d.client.LonDeg, telemetry.SpatialFailover)
		}
		if d.popFailover {
			in.failovers[FailoverPoP].Inc()
			in.spatial.RecordCell(d.client.LatDeg, d.client.LonDeg, telemetry.SpatialFailover)
		}
	}
	if err != nil {
		in.errors.Inc()
		return
	}
	if d.degraded {
		in.degradedSrc.Observe(float64(res.Source))
		in.degradedRTT.ObserveDuration(res.RTT)
	}
	in.requests[res.Source].Inc()
	ev := spatialSourceEvents[res.Source]
	in.spatial.RecordCell(d.client.LatDeg, d.client.LonDeg, ev)
	if res.Source != SourceGround {
		// Space sources heat the serving satellite; every space serve is by
		// definition a cache hit on that satellite's shard.
		in.spatial.RecordSat(int(res.Sat), ev)
		in.spatial.RecordSat(int(res.Sat), telemetry.SpatialCacheHit)
	}
	in.rttMs.ObserveDuration(res.RTT)
	hops := res.Hops
	if res.Source == SourceGround && d.hasGround {
		hops = d.ground.ISLHops
	}
	in.hops.Observe(float64(hops))

	sink := in.tel.Traces()
	if !sink.ShouldSample() {
		return
	}
	sink.Add(buildTrace(seq, res, d))
}

// buildTrace decomposes a resolution's RTT into typed spans. The spans sum
// to the RTT exactly: closed-form components are assigned directly and the
// scheduling span absorbs the residual (MAC schedule, gateway processing and
// sampled jitter), so the trace is a decomposition, not a re-measurement.
func buildTrace(seq uint64, res Resolution, d *resolveDetail) telemetry.RequestTrace {
	tr := telemetry.RequestTrace{
		Seq:    seq,
		Source: res.Source.String(),
		Sat:    int(res.Sat),
		Hops:   res.Hops,
		RTT:    res.RTT,
	}
	switch res.Source {
	case SourceOverhead:
		tr.Spans = []telemetry.Span{
			{Kind: telemetry.SpanUplink, Dur: d.uplinkRTT},
			{Kind: telemetry.SpanCacheProbe},
			{Kind: telemetry.SpanSched, Dur: res.RTT - d.uplinkRTT},
		}
	case SourceISL:
		spans := make([]telemetry.Span, 0, res.Hops+3)
		spans = append(spans,
			telemetry.Span{Kind: telemetry.SpanUplink, Dur: d.uplinkRTT},
			telemetry.Span{Kind: telemetry.SpanCacheProbe})
		spans = appendHopSpans(spans, d.islRTT, res.Hops)
		spans = append(spans, telemetry.Span{
			Kind: telemetry.SpanSched,
			Dur:  res.RTT - d.uplinkRTT - d.islRTT,
		})
		tr.Spans = spans
	case SourceGround:
		tr.Sat = -1
		p := d.ground
		tr.Hops = p.ISLHops
		uplink := 2 * p.UplinkDelay
		islRTT := 2 * p.ISLDelay
		ground := 2 * (p.DownlinkDelay + p.GSFiberDelay)
		spans := make([]telemetry.Span, 0, p.ISLHops+3)
		spans = append(spans, telemetry.Span{Kind: telemetry.SpanUplink, Dur: uplink})
		spans = appendHopSpans(spans, islRTT, p.ISLHops)
		spans = append(spans,
			telemetry.Span{Kind: telemetry.SpanGroundRTT, Dur: ground},
			telemetry.Span{
				Kind: telemetry.SpanSched,
				Dur:  res.RTT - uplink - islRTT - ground,
			})
		tr.Spans = spans
	}
	return tr
}

// appendHopSpans splits a two-way ISL latency across hop spans 1..hops,
// putting the integer-division remainder on the last hop so the spans sum to
// total exactly. A positive total with zero hops (degenerate path) becomes a
// single hop span.
func appendHopSpans(spans []telemetry.Span, total time.Duration, hops int) []telemetry.Span {
	if hops <= 0 {
		if total > 0 {
			spans = append(spans, telemetry.Span{Kind: telemetry.SpanISLHop, Hop: 1, Dur: total})
		}
		return spans
	}
	per := total / time.Duration(hops)
	var acc time.Duration
	for i := 1; i <= hops; i++ {
		dur := per
		if i == hops {
			dur = total - acc
		}
		spans = append(spans, telemetry.Span{Kind: telemetry.SpanISLHop, Hop: i, Dur: dur})
		acc += per
	}
	return spans
}
