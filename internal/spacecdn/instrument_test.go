package spacecdn

import (
	"testing"

	"spacecdn/internal/constellation"
	"spacecdn/internal/content"
	"spacecdn/internal/geo"
	"spacecdn/internal/routing"
	"spacecdn/internal/stats"
	"spacecdn/internal/telemetry"
)

func TestSourceStringRoundTrip(t *testing.T) {
	srcs := Sources()
	if len(srcs) != int(numSources) {
		t.Fatalf("Sources() = %d entries, want %d", len(srcs), numSources)
	}
	seen := map[string]bool{}
	for _, s := range srcs {
		name := s.String()
		if name == "" || seen[name] {
			t.Fatalf("source %d has empty or duplicate name %q", s, name)
		}
		seen[name] = true
		back, ok := SourceFromString(name)
		if !ok || back != s {
			t.Errorf("round trip %v -> %q -> %v (ok=%v)", s, name, back, ok)
		}
	}
	if got := Source(99).String(); got != "source(99)" {
		t.Errorf("out-of-range String = %q", got)
	}
	if _, ok := SourceFromString("nope"); ok {
		t.Error("unknown name must not resolve")
	}
}

// telemetryFixture stores one object overhead of the client, one 3 ISL hops
// away, and returns a cold one, so the three resolves below exercise every
// source.
func telemetryFixture(t *testing.T, s *System, snap *constellation.Snapshot, client geo.Point) (hot, warm, cold content.Object) {
	t.Helper()
	up, ok := snap.BestVisible(client)
	if !ok {
		t.Fatal("no visibility")
	}
	hot = testObject("tl-hot")
	s.Store(up.ID, hot)
	warm = testObject("tl-warm")
	placed := false
	for _, hr := range snap.ISLGraph().WithinHops(routing.NodeID(up.ID), 3) {
		if hr.Hops == 3 {
			s.Store(constellation.SatID(hr.Node), warm)
			placed = true
			break
		}
	}
	if !placed {
		t.Fatal("no 3-hop satellite for warm object")
	}
	return hot, warm, testObject("tl-cold")
}

// TestResolveTelemetry drives one request through each of the three sources
// with a sample-everything sink and checks counters, histograms, and the
// trace invariant: span durations sum to the resolution RTT exactly.
func TestResolveTelemetry(t *testing.T) {
	s := newSystem(t, DefaultConfig())
	tel := telemetry.New(1)
	s.SetTelemetry(tel)
	t.Cleanup(func() { s.SetTelemetry(nil) }) // testLSN is shared across tests
	if s.Telemetry() != tel {
		t.Fatal("Telemetry() accessor broken")
	}
	snap := testConst.Snapshot(0)
	maputo := geo.NewPoint(-25.9692, 32.5732)
	rng := stats.NewRand(7)
	hot, warm, cold := telemetryFixture(t, s, snap, maputo)

	want := map[content.ID]Source{
		hot.ID:  SourceOverhead,
		warm.ID: SourceISL,
		cold.ID: SourceGround,
	}
	bySeq := map[uint64]Resolution{}
	for _, o := range []content.Object{hot, warm, cold} {
		res, err := s.Resolve(maputo, "MZ", o, snap, rng)
		if err != nil {
			t.Fatalf("resolve %s: %v", o.ID, err)
		}
		if res.Source != want[o.ID] {
			t.Fatalf("%s served from %v, want %v", o.ID, res.Source, want[o.ID])
		}
		bySeq[uint64(len(bySeq)+1)] = res
	}

	snapshot := tel.Snapshot()
	for _, src := range Sources() {
		cv, ok := snapshot.Counter("spacecdn_resolve_requests_total",
			map[string]string{"source": src.String()})
		if !ok || cv.Value != 1 {
			t.Errorf("requests{source=%s} = %+v, want 1", src, cv)
		}
	}
	hv, ok := snapshot.Histogram("spacecdn_resolve_rtt_ms")
	if !ok || hv.Count != 3 {
		t.Fatalf("rtt histogram = %+v, want 3 observations", hv)
	}
	if hv.P50 <= 0 || hv.P99 < hv.P50 {
		t.Errorf("rtt quantiles malformed: p50=%v p99=%v", hv.P50, hv.P99)
	}
	if hopsHV, ok := snapshot.Histogram("spacecdn_resolve_isl_hops"); !ok || hopsHV.Count != 3 {
		t.Errorf("hops histogram = %+v, want 3 observations", hopsHV)
	}
	// The collector exports the fleet view at exposition time.
	if len(snapshot.Gauges) == 0 {
		t.Error("no gauges collected")
	}
	foundHits := false
	for _, g := range snapshot.Gauges {
		if g.Name == "spacecdn_cache_hits" && g.Value >= 2 {
			foundHits = true
		}
	}
	if !foundHits {
		t.Error("collector did not export fleet cache hits")
	}

	traces := tel.Traces().Traces()
	if len(traces) != 3 {
		t.Fatalf("traces = %d, want 3 at sample rate 1", len(traces))
	}
	for _, tr := range traces {
		res, ok := bySeq[tr.Seq]
		if !ok {
			t.Fatalf("trace has unknown seq %d", tr.Seq)
		}
		if tr.Source != res.Source.String() || tr.RTT != res.RTT {
			t.Errorf("trace %d = {%s %v}, want {%s %v}", tr.Seq, tr.Source, tr.RTT, res.Source, res.RTT)
		}
		if got := tr.SpanSum(); got != tr.RTT {
			t.Errorf("trace %d (%s): span sum %v != RTT %v", tr.Seq, tr.Source, got, tr.RTT)
		}
		switch res.Source {
		case SourceOverhead:
			if tr.Sat != int(res.Sat) || tr.Hops != 0 {
				t.Errorf("overhead trace = %+v", tr)
			}
		case SourceISL:
			hopSpans := 0
			for _, sp := range tr.Spans {
				if sp.Kind == telemetry.SpanISLHop {
					hopSpans++
				}
			}
			if hopSpans != res.Hops || tr.Hops != res.Hops {
				t.Errorf("isl trace has %d hop spans / hops %d, want %d", hopSpans, tr.Hops, res.Hops)
			}
		case SourceGround:
			if tr.Sat != -1 {
				t.Errorf("ground trace sat = %d, want -1", tr.Sat)
			}
			hasGround := false
			for _, sp := range tr.Spans {
				if sp.Kind == telemetry.SpanGroundRTT {
					hasGround = true
				}
			}
			if !hasGround {
				t.Errorf("ground trace missing ground-rtt span: %+v", tr.Spans)
			}
		}
	}
}

func TestResolveTelemetryErrors(t *testing.T) {
	s := newSystem(t, DefaultConfig())
	tel := telemetry.New(1)
	s.SetTelemetry(tel)
	snap := testConst.Snapshot(0)
	maputo := geo.NewPoint(-25.9692, 32.5732)
	// Cold object with an unknown country: the ground fallback fails.
	if _, err := s.Resolve(maputo, "??", testObject("tl-err"), snap, stats.NewRand(1)); err == nil {
		t.Fatal("unknown country must fail")
	}
	snapshot := tel.Snapshot()
	cv, ok := snapshot.Counter("spacecdn_resolve_errors_total", nil)
	if !ok || cv.Value != 1 {
		t.Fatalf("errors counter = %+v, want 1", cv)
	}
	if hv, _ := snapshot.Histogram("spacecdn_resolve_rtt_ms"); hv.Count != 0 {
		t.Error("failed resolves must not observe an RTT")
	}

	// Detach: the resolve path reverts to uninstrumented.
	s.SetTelemetry(nil)
	if s.Telemetry() != nil {
		t.Fatal("detach left telemetry attached")
	}
	hot := testObject("tl-after")
	up, _ := snap.BestVisible(maputo)
	s.Store(up.ID, hot)
	if _, err := s.Resolve(maputo, "MZ", hot, snap, stats.NewRand(2)); err != nil {
		t.Fatal(err)
	}
	// Failed resolves never reach the sink, and neither do requests after
	// detach.
	if got := tel.Traces().Seen(); got != 0 {
		t.Errorf("sink saw %d requests, want 0 (errors and detached resolves bypass it)", got)
	}
}

// TestResolveSpatialHeatmap drives one request through each source and
// checks the spatial attribution: the client's cell accumulates one event per
// source, and every space-served request heats the serving satellite with its
// source event plus a cache hit.
func TestResolveSpatialHeatmap(t *testing.T) {
	s := newSystem(t, DefaultConfig())
	tel := telemetry.New(0)
	s.SetTelemetry(tel)
	t.Cleanup(func() { s.SetTelemetry(nil) })
	snap := testConst.Snapshot(0)
	maputo := geo.NewPoint(-25.9692, 32.5732)
	rng := stats.NewRand(7)
	hot, warm, cold := telemetryFixture(t, s, snap, maputo)

	sats := map[content.ID]constellation.SatID{}
	for _, o := range []content.Object{hot, warm, cold} {
		res, err := s.Resolve(maputo, "MZ", o, snap, rng)
		if err != nil {
			t.Fatalf("resolve %s: %v", o.ID, err)
		}
		sats[o.ID] = res.Sat
	}

	sp := tel.Spatial()
	if sp == nil {
		t.Fatal("SetTelemetry did not provision the spatial accumulator")
	}
	if sp.NumSats() != testConst.Total() {
		t.Fatalf("spatial sized for %d sats, want %d", sp.NumSats(), testConst.Total())
	}
	heat := sp.Snapshot()
	// All three requests came from one client, so exactly one cell is hot,
	// with one event per source.
	if len(heat.Cells) != 1 {
		t.Fatalf("hot cells = %+v, want exactly one (the client's)", heat.Cells)
	}
	cell := heat.Cells[0]
	if cell.Overhead != 1 || cell.ISL != 1 || cell.Ground != 1 || cell.Failovers != 0 {
		t.Errorf("client cell counts = %+v, want one of each source", cell.HeatCounts)
	}
	// The cell really is Maputo's: its center sits within half a cell width.
	if d := cell.LatDeg - maputo.LatDeg; d < -5 || d > 5 {
		t.Errorf("cell center lat %v too far from client %v", cell.LatDeg, maputo.LatDeg)
	}

	bySat := map[int]telemetry.SatHeat{}
	for _, sh := range heat.Sats {
		bySat[sh.Sat] = sh
	}
	over := bySat[int(sats[hot.ID])]
	if over.Overhead != 1 || over.CacheHits != 1 {
		t.Errorf("overhead sat heat = %+v, want overhead=1 cacheHits=1", over.HeatCounts)
	}
	isl := bySat[int(sats[warm.ID])]
	if isl.ISL != 1 || isl.CacheHits != 1 {
		t.Errorf("isl sat heat = %+v, want isl=1 cacheHits=1", isl.HeatCounts)
	}
	// The ground-served request heats no satellite.
	var total int64
	for _, sh := range heat.Sats {
		total += sh.Total()
	}
	if total != 4 {
		t.Errorf("summed satellite heat = %d, want 4 (2 sources + 2 cache hits)", total)
	}
}

// TestResolveDisabledPathAllocs pins the telemetry cost model: a detached
// system resolves with exactly the allocations of a never-instrumented one,
// and an attached-but-unsampled request adds none on top (counters and
// histograms are pure atomics).
func TestResolveDisabledPathAllocs(t *testing.T) {
	snap := testConst.Snapshot(0)
	maputo := geo.NewPoint(-25.9692, 32.5732)
	up, ok := snap.BestVisible(maputo)
	if !ok {
		t.Fatal("no visibility")
	}
	hot := testObject("alloc-hot")

	run := func(s *System) float64 {
		rng := stats.NewRand(3)
		return testing.AllocsPerRun(200, func() {
			if _, err := s.Resolve(maputo, "MZ", hot, snap, rng); err != nil {
				t.Fatal(err)
			}
		})
	}

	base := newSystem(t, DefaultConfig())
	base.Store(up.ID, hot)
	baseAllocs := run(base)

	detached := newSystem(t, DefaultConfig())
	detached.Store(up.ID, hot)
	detached.SetTelemetry(telemetry.New(1))
	detached.SetTelemetry(nil)
	if got := run(detached); got != baseAllocs {
		t.Errorf("detached path allocates %v/op, baseline %v/op", got, baseAllocs)
	}

	unsampled := newSystem(t, DefaultConfig())
	unsampled.Store(up.ID, hot)
	unsampled.SetTelemetry(telemetry.New(0)) // metrics on, tracing off
	t.Cleanup(func() { unsampled.SetTelemetry(nil) })
	if got := run(unsampled); got != baseAllocs {
		t.Errorf("unsampled instrumented path allocates %v/op, baseline %v/op", got, baseAllocs)
	}
}
